package hom

import (
	"context"

	"cqapprox/internal/cq"
	"cqapprox/internal/relstr"
)

// Core computes the core of the structure s with distinguished tuple
// dist: a minimal retract of (s, dist). The returned retraction maps
// each element of s to its image in the core; distinguished elements
// are fixed pointwise. Cores are unique up to isomorphism
// (Hell–Nešetřil), so the result is canonical up to renaming.
//
// The algorithm repeatedly looks for an endomorphism into the
// substructure avoiding some element; any non-core structure admits one
// that avoids at least one element, because a fact-losing endomorphism
// of a finite structure cannot be injective on the active domain.
func Core(s *relstr.Structure, dist []int) (*relstr.Structure, map[int]int) {
	c, r, _ := CoreCtx(nil, s, dist)
	return c, r
}

// CoreCtx is Core under a context: cancellation aborts the retraction
// search and returns a cqerr-wrapped error.
func CoreCtx(ctx context.Context, s *relstr.Structure, dist []int) (*relstr.Structure, map[int]int, error) {
	cur := s.Clone()
	// retract maps original elements to their current images.
	retract := map[int]int{}
	for _, e := range s.Domain() {
		retract[e] = e
	}
	fixed := map[int]bool{}
	pre := map[int]int{}
	for _, d := range dist {
		fixed[d] = true
		pre[d] = d
	}
	for {
		improved := false
		for _, v := range cur.Domain() {
			if fixed[v] {
				continue
			}
			sub := cur.Without(v)
			h, ok, err := FindCtx(ctx, cur, sub, pre)
			if err != nil {
				return nil, nil, err
			}
			if !ok {
				continue
			}
			cur = cur.Map(func(e int) int { return h[e] })
			for orig, img := range retract {
				retract[orig] = h[img]
			}
			improved = true
			break
		}
		if !improved {
			return cur, retract, nil
		}
	}
}

// IsCore reports whether (s, dist) is a core: no homomorphism into a
// strictly contained substructure fixing dist pointwise.
func IsCore(s *relstr.Structure, dist []int) bool {
	pre := map[int]int{}
	fixed := map[int]bool{}
	for _, d := range dist {
		pre[d] = d
		fixed[d] = true
	}
	for _, v := range s.Domain() {
		if fixed[v] {
			continue
		}
		if Exists(s, s.Without(v), pre) {
			return false
		}
	}
	return true
}

// Minimize returns the canonical minimal CQ equivalent to q: the query
// whose tableau is core(T_Q, x̄). Variable names from q are preserved
// where the corresponding elements survive.
func Minimize(q *cq.Query) *cq.Query {
	m, _ := MinimizeCtx(nil, q)
	return m
}

// MinimizeCtx is Minimize under a context.
func MinimizeCtx(ctx context.Context, q *cq.Query) (*cq.Query, error) {
	tb := q.Tableau()
	core, retract, err := CoreCtx(ctx, tb.S, tb.Dist)
	if err != nil {
		return nil, err
	}
	dist := make([]int, len(tb.Dist))
	for i, d := range tb.Dist {
		dist[i] = retract[d]
	}
	names := map[int]string{}
	for e, n := range tb.Var {
		img := retract[e]
		if img == e {
			names[img] = n
		}
	}
	out := cq.FromTableau(core, dist, names)
	out.Name = q.Name
	return out, nil
}

// IsMinimized reports whether q's tableau is a core (i.e., q equals its
// own minimization up to renaming).
func IsMinimized(q *cq.Query) bool {
	tb := q.Tableau()
	return IsCore(tb.S, tb.Dist)
}
