package hom

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cqapprox/internal/cq"
	"cqapprox/internal/relstr"
)

// dicycle returns the directed cycle on n nodes.
func dicycle(n int) *relstr.Structure {
	s := relstr.New()
	for i := 0; i < n; i++ {
		s.Add("E", i, (i+1)%n)
	}
	return s
}

// dipath returns the directed path 0→1→…→n.
func dipath(n int) *relstr.Structure {
	s := relstr.New()
	for i := 0; i < n; i++ {
		s.Add("E", i, i+1)
	}
	return s
}

// k2both is K2 with edges in both directions (the paper's K2↔).
func k2both() *relstr.Structure {
	s := relstr.New()
	s.Add("E", 0, 1)
	s.Add("E", 1, 0)
	return s
}

func loop() *relstr.Structure {
	s := relstr.New()
	s.Add("E", 0, 0)
	return s
}

func TestExistsBasics(t *testing.T) {
	if !Exists(dipath(3), dipath(3), nil) {
		t.Fatal("identity homomorphism not found")
	}
	if !Exists(dipath(3), dipath(5), nil) {
		t.Fatal("path 3 should map into path 5")
	}
	if Exists(dipath(5), dipath(3), nil) {
		t.Fatal("path 5 cannot map into path 3 (levels)")
	}
	if !Exists(dicycle(3), loop(), nil) {
		t.Fatal("everything maps to the loop")
	}
	if Exists(dicycle(3), dipath(10), nil) {
		t.Fatal("a directed cycle cannot map into a path")
	}
	if Exists(dicycle(3), k2both(), nil) {
		t.Fatal("odd cycle is not 2-colorable")
	}
	if !Exists(dicycle(4), k2both(), nil) {
		t.Fatal("C4 is 2-colorable")
	}
	if !Exists(dicycle(6), dicycle(3), nil) {
		t.Fatal("C6 wraps around C3")
	}
	if Exists(dicycle(3), dicycle(6), nil) {
		t.Fatal("C3 should not map to C6")
	}
}

func TestExistsEmptyTargetRelation(t *testing.T) {
	a := relstr.New()
	a.Add("E", 0, 1)
	b := relstr.New()
	b.Add("F", 0, 1)
	if Exists(a, b, nil) {
		t.Fatal("target lacks relation E entirely")
	}
}

func TestFindReturnsValidHom(t *testing.T) {
	a := dicycle(6)
	b := dicycle(3)
	h, ok := Find(a, b, nil)
	if !ok {
		t.Fatal("no hom found")
	}
	for _, tpl := range a.Tuples("E") {
		if !b.Has("E", h[tpl[0]], h[tpl[1]]) {
			t.Fatalf("h does not preserve edge %v", tpl)
		}
	}
}

func TestFindWithPre(t *testing.T) {
	a := dipath(2) // 0→1→2
	b := dipath(4)
	h, ok := Find(a, b, map[int]int{0: 1})
	if !ok || h[0] != 1 || h[1] != 2 || h[2] != 3 {
		t.Fatalf("h = %v, ok = %v", h, ok)
	}
	if _, ok := Find(a, b, map[int]int{0: 4}); ok {
		t.Fatal("pre mapping start of path to sink should fail")
	}
}

func TestPreInconsistentWithAtoms(t *testing.T) {
	a := relstr.New()
	a.Add("E", 0, 1)
	b := relstr.New()
	b.Add("E", 5, 6)
	if Exists(a, b, map[int]int{0: 6, 1: 5}) {
		t.Fatal("pre reverses the edge; must fail")
	}
	if !Exists(a, b, map[int]int{0: 5, 1: 6}) {
		t.Fatal("pre along the edge must succeed")
	}
}

func TestCountHoms(t *testing.T) {
	// Single edge into K2↔: 2 homs (0↦0,1↦1) and (0↦1,1↦0).
	if n := Count(dipath(1), k2both(), nil); n != 2 {
		t.Fatalf("Count(edge→K2↔) = %d, want 2", n)
	}
	// Single edge into loop: 1 hom.
	if n := Count(dipath(1), loop(), nil); n != 1 {
		t.Fatalf("Count(edge→loop) = %d, want 1", n)
	}
	// Edge into path of length 2: 0→1,1→2: 2 homs.
	if n := Count(dipath(1), dipath(2), nil); n != 2 {
		t.Fatalf("Count(edge→P2) = %d, want 2", n)
	}
	// C4 into K2↔: homs = proper 2-colorings with orientation... count
	// directly: each node maps to 0/1 alternating; 2 choices.
	if n := Count(dicycle(4), k2both(), nil); n != 2 {
		t.Fatalf("Count(C4→K2↔) = %d, want 2", n)
	}
}

func TestHigherArityPatterns(t *testing.T) {
	a := relstr.New()
	a.Add("R", 0, 0, 1) // repeated variable in one atom
	b := relstr.New()
	b.Add("R", 1, 2, 3) // no repeat at positions 0,1
	if Exists(a, b, nil) {
		t.Fatal("R(x,x,y) should not map to R(1,2,3)")
	}
	b.Add("R", 4, 4, 5)
	if !Exists(a, b, nil) {
		t.Fatal("R(x,x,y) should map to R(4,4,5)")
	}
}

func TestProjectEvaluatesQueries(t *testing.T) {
	// Query Q(x) :- E(x,y),E(y,x) on a graph with one 2-cycle and one
	// stray edge: answers are the 2-cycle's nodes.
	q := cq.MustParse("Q(x) :- E(x,y), E(y,x)")
	tb := q.Tableau()
	db := relstr.New()
	db.Add("E", 10, 11)
	db.Add("E", 11, 10)
	db.Add("E", 11, 12)
	var got []int
	Project(tb.S, db, nil, tb.Dist, func(vals []int) bool {
		got = append(got, vals[0])
		return true
	})
	if len(got) != 2 {
		t.Fatalf("answers = %v, want the two 2-cycle nodes", got)
	}
	seen := map[int]bool{got[0]: true, got[1]: true}
	if !seen[10] || !seen[11] {
		t.Fatalf("answers = %v, want {10,11}", got)
	}
}

func TestProjectBooleanQuery(t *testing.T) {
	q := cq.MustParse("Q() :- E(x,y), E(y,z), E(z,x)")
	tb := q.Tableau()
	tri := dicycle(3)
	calls := 0
	Project(tb.S, tri, nil, tb.Dist, func(vals []int) bool {
		if len(vals) != 0 {
			t.Fatalf("Boolean answer has values %v", vals)
		}
		calls++
		return true
	})
	if calls != 1 {
		t.Fatalf("Boolean true should emit exactly one empty tuple, got %d", calls)
	}
	calls = 0
	Project(tb.S, dipath(5), nil, tb.Dist, func([]int) bool { calls++; return true })
	if calls != 0 {
		t.Fatal("Boolean false should emit nothing")
	}
}

func TestCoreOfAugmentedLoop(t *testing.T) {
	s := relstr.New()
	s.Add("E", 0, 1)
	s.Add("E", 1, 1)
	core, retract := Core(s, nil)
	if core.DomainSize() != 1 || !core.Has("E", 1, 1) {
		t.Fatalf("core = %v, want single loop on 1", core)
	}
	if retract[0] != 1 || retract[1] != 1 {
		t.Fatalf("retract = %v", retract)
	}
}

func TestCoreRespectsDistinguished(t *testing.T) {
	// Same structure, but 0 is distinguished: cannot be collapsed.
	s := relstr.New()
	s.Add("E", 0, 1)
	s.Add("E", 1, 1)
	core, _ := Core(s, []int{0})
	if core.DomainSize() != 2 {
		t.Fatalf("core with dist = %v, want both elements", core)
	}
}

func TestCoreOfEvenCycle(t *testing.T) {
	// C4 (directed) is a core: no proper retract (C4 ↛ shorter directed
	// structures of itself).
	c4 := dicycle(4)
	core, _ := Core(c4, nil)
	if core.DomainSize() != 4 {
		t.Fatalf("directed C4 should be a core, got %v", core)
	}
	if !IsCore(c4, nil) {
		t.Fatal("IsCore(C4) = false")
	}
}

func TestCoreBipartiteDoubleEdge(t *testing.T) {
	// An undirected even cycle (as digraph with both directions) of
	// length 4 retracts onto K2↔.
	s := relstr.New()
	for i := 0; i < 4; i++ {
		s.Add("E", i, (i+1)%4)
		s.Add("E", (i+1)%4, i)
	}
	core, _ := Core(s, nil)
	if core.DomainSize() != 2 || core.NumFacts() != 2 {
		t.Fatalf("core of C4↔ = %v, want K2↔", core)
	}
}

func TestMinimize(t *testing.T) {
	q := cq.MustParse("Q() :- E(x,y), E(x,z)")
	m := Minimize(q)
	if len(m.Atoms) != 1 {
		t.Fatalf("Minimize = %v, want single atom", m)
	}
	if !Equivalent(q, m) {
		t.Fatal("minimized query not equivalent")
	}
	// Free variables block collapses.
	q2 := cq.MustParse("Q(y,z) :- E(x,y), E(x,z)")
	m2 := Minimize(q2)
	if len(m2.Atoms) != 2 {
		t.Fatalf("Minimize(%v) = %v, should keep both atoms", q2, m2)
	}
}

func TestMinimizePreservesHead(t *testing.T) {
	q := cq.MustParse("Q(x,x) :- E(x,y), E(y,x), E(x,z), E(z,x)")
	m := Minimize(q)
	if len(m.Head) != 2 || m.Head[0] != m.Head[1] {
		t.Fatalf("head = %v", m.Head)
	}
	if !Equivalent(q, m) {
		t.Fatal("not equivalent after minimize")
	}
}

func TestContainment(t *testing.T) {
	long := cq.MustParse("Q() :- E(x,y), E(y,z)")
	short := cq.MustParse("Q() :- E(x,y)")
	if !Contained(long, short) {
		t.Fatal("path-2 query should be contained in edge query")
	}
	if Contained(short, long) {
		t.Fatal("edge query is not contained in path-2 query")
	}
	if !ProperlyContained(long, short) {
		t.Fatal("containment should be proper")
	}
	// Classic: C3 query vs loop query.
	c3 := cq.MustParse("Q() :- E(x,y), E(y,z), E(z,x)")
	lp := cq.MustParse("Q() :- E(x,x)")
	if !Contained(lp, c3) {
		t.Fatal("loop query ⊆ C3 query")
	}
	if Contained(c3, lp) {
		t.Fatal("C3 query ⊄ loop query")
	}
}

func TestContainmentWithHeads(t *testing.T) {
	a := cq.MustParse("Q(x) :- E(x,y)")
	b := cq.MustParse("Q(x) :- E(x,y), E(y,z)")
	if !Contained(b, a) || Contained(a, b) {
		t.Fatal("head-preserving containment broken")
	}
	bool1 := cq.MustParse("Q() :- E(x,y)")
	if Contained(a, bool1) || Contained(bool1, a) {
		t.Fatal("different arities must be incomparable")
	}
}

func TestEquivalentDifferentShapes(t *testing.T) {
	a := cq.MustParse("Q() :- E(x,y), E(y,z), E(x,w)")
	b := cq.MustParse("Q() :- E(x,y), E(y,z)")
	if !Equivalent(a, b) {
		t.Fatal("redundant-atom query should be equivalent to its core")
	}
}

func TestMapsPointed(t *testing.T) {
	p3 := Pointed{S: dipath(3), Dist: []int{0, 3}}
	p5 := Pointed{S: dipath(5), Dist: []int{0, 5}}
	// P3 with endpoints dist → P5 with endpoints dist: needs endpoints
	// to land on 0 and 5 but a 3-path can't stretch: no hom.
	if Maps(p3, p5) {
		t.Fatal("P3 endpoints cannot map onto P5 endpoints")
	}
	// Without endpoint constraints it maps fine.
	if !Maps(Pointed{S: dipath(3)}, Pointed{S: dipath(5)}) {
		t.Fatal("P3 → P5 should hold")
	}
}

func TestMapsRepeatedDistinguished(t *testing.T) {
	// Dist (x,x) forces both positions to the same target element.
	s := relstr.New()
	s.Add("E", 0, 1)
	a := Pointed{S: s, Dist: []int{0, 0}}
	b := Pointed{S: k2both(), Dist: []int{0, 1}}
	if Maps(a, b) {
		t.Fatal("repeated dist cannot map to distinct dist")
	}
	c := Pointed{S: k2both(), Dist: []int{0, 0}}
	if !Maps(a, c) {
		t.Fatal("repeated dist to repeated dist should map")
	}
}

func TestMinimalElements(t *testing.T) {
	// loop ⥿ K2↔ ⥿ C4: minimal (in →) is the loop... order: loop → K2↔?
	// loop maps nowhere but to loops. K2↔ → loop. C4 → K2↔ → loop.
	// Minimal = elements with nothing strictly below: the loop has
	// nothing mapping into it without a back-map except... K2↔ → loop
	// and loop ↛ K2↔, so loop is NOT minimal. C4: K2↔→C4? K2↔ needs a
	// 2-cycle in C4: no. loop→C4: no. So C4 is minimal. K2↔: C4 → K2↔
	// and K2↔ ↛ C4, so K2↔ not minimal.
	items := []Pointed{
		{S: loop()},
		{S: k2both()},
		{S: dicycle(4)},
	}
	min := MinimalElements(items)
	if len(min) != 1 || min[0] != 2 {
		t.Fatalf("MinimalElements = %v, want [2]", min)
	}
}

func TestEquivClasses(t *testing.T) {
	items := []Pointed{
		{S: dipath(3)},
		{S: dipath(3)},
		{S: loop()},
		{S: dipath(2)}, // P2 ≁ P3 (levels), so its own class
	}
	classes := EquivClasses(items)
	if len(classes) != 3 {
		t.Fatalf("classes = %v, want 3 classes", classes)
	}
	if len(classes[0]) != 2 {
		t.Fatalf("first class = %v, want {0,1}", classes[0])
	}
}

// Property: core is hom-equivalent to the original and idempotent.
func TestQuickCoreProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := relstr.New()
		n := 2 + rng.Intn(4)
		for i := 0; i < n+2; i++ {
			s.Add("E", rng.Intn(n), rng.Intn(n))
		}
		core, _ := Core(s, nil)
		if !Exists(s, core, nil) || !Exists(core, s, nil) {
			return false
		}
		core2, _ := Core(core, nil)
		return core2.DomainSize() == core.DomainSize() &&
			core2.NumFacts() == core.NumFacts() && IsCore(core, nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: homomorphisms compose.
func TestQuickComposition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func(n, m int) *relstr.Structure {
			s := relstr.New()
			s.Declare("E", 2)
			for i := 0; i < m; i++ {
				s.Add("E", rng.Intn(n), rng.Intn(n))
			}
			return s
		}
		a, b := mk(4, 5), mk(4, 7)
		h, ok := Find(a, b, nil)
		if !ok {
			return true
		}
		c := mk(3, 8)
		g, ok := Find(b, c, nil)
		if !ok {
			return true
		}
		// g∘h must be a homomorphism a → c.
		for _, tpl := range a.Tuples("E") {
			if !c.Has("E", g[h[tpl[0]]], g[h[tpl[1]]]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: quotient maps are homomorphisms: T → T/π for every π.
func TestQuickQuotientIsHom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := relstr.New()
		s.Declare("E", 2)
		n := 2 + rng.Intn(3)
		for i := 0; i < n+1; i++ {
			s.Add("E", rng.Intn(n), rng.Intn(n))
		}
		ok := true
		relstr.Partitions(s.Domain(), func(p relstr.Partition) bool {
			q := s.QuotientBy(p)
			if !Exists(s, q, nil) {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
