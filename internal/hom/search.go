// Package hom implements homomorphism search between relational
// structures, along with the derived notions the paper builds on:
// cores, CQ minimization, containment and equivalence of CQs, and the
// homomorphism preorder on tableaux.
//
// The search is a backtracking constraint solver with per-position
// indexes on the target, dynamic most-constrained-variable selection,
// and candidate filtering through partially assigned atoms. It is exact
// (CQ evaluation / homomorphism existence is NP-complete; the paper's
// Section 2).
package hom

import (
	"context"
	"sort"

	"cqapprox/internal/cqerr"
	"cqapprox/internal/relstr"
)

// patom is an atom of the source structure, as element IDs.
type patom struct {
	rel  string
	args []int
}

// relIndex indexes the target's tuples of one relation by position and
// value.
type relIndex struct {
	tuples   []relstr.Tuple
	byPosVal []map[int][]int // position → value → tuple indices
}

// problem is a compiled homomorphism-search instance from a to b.
type problem struct {
	atoms    []patom
	varAtoms map[int][]int // source element → indices into atoms
	varNbrs  map[int][]int // source element → co-occurring elements
	idx      map[string]*relIndex
	bDom     []int
	posCand  map[int][]int // static candidate list per source element; nil = whole domain
	aDom     []int
	unsat    bool

	// Cooperative cancellation: when ctx is non-nil the solver polls it
	// every cancelEvery search nodes and abandons the search, leaving
	// canceled set so callers can distinguish "exhausted" from
	// "interrupted by the context".
	ctx      context.Context
	steps    uint
	canceled bool
}

// cancelEvery is how many solver nodes pass between context polls: a
// power of two so the check compiles to a mask, small enough that
// cancellation is observed within microseconds on realistic instances.
const cancelEvery = 256

// cancelled polls the problem's context (if any) at a bounded rate and
// latches the result.
func (p *problem) cancelled() bool {
	if p.canceled {
		return true
	}
	if p.ctx == nil {
		return false
	}
	// Poll on the first node (so an already-expired context is seen
	// even on tiny instances) and every cancelEvery nodes after.
	p.steps++
	if p.steps%cancelEvery == 1 && p.ctx.Err() != nil {
		p.canceled = true
	}
	return p.canceled
}

// cancelErr converts the latched cancellation flag into a typed error.
func (p *problem) cancelErr() error {
	if p.canceled {
		return cqerr.Canceled(p.ctx)
	}
	return nil
}

func compile(a, b *relstr.Structure) *problem { return compileRestricted(a, b, nil) }

// compileRestricted additionally intersects each source element's
// candidates with allowed[e] when present (used for level-based
// restrictions on balanced digraphs, Lemma 4.5).
func compileRestricted(a, b *relstr.Structure, allowed map[int][]int) *problem {
	p := &problem{
		varAtoms: map[int][]int{},
		varNbrs:  map[int][]int{},
		idx:      map[string]*relIndex{},
		posCand:  map[int][]int{},
	}
	p.bDom = b.Domain()
	p.aDom = a.Domain()

	for _, rel := range a.Relations() {
		ts := a.Tuples(rel)
		if len(ts) == 0 {
			continue
		}
		bts := b.Tuples(rel)
		if len(bts) == 0 {
			p.unsat = true
			return p
		}
		if _, ok := p.idx[rel]; !ok {
			ri := &relIndex{tuples: bts, byPosVal: make([]map[int][]int, b.Arity(rel))}
			for pos := range ri.byPosVal {
				ri.byPosVal[pos] = map[int][]int{}
			}
			for ti, t := range bts {
				for pos, v := range t {
					ri.byPosVal[pos][v] = append(ri.byPosVal[pos][v], ti)
				}
			}
			p.idx[rel] = ri
		}
		for _, t := range ts {
			ai := len(p.atoms)
			args := make([]int, len(t))
			copy(args, t)
			p.atoms = append(p.atoms, patom{rel: rel, args: args})
			seen := map[int]bool{}
			for _, e := range args {
				if !seen[e] {
					seen[e] = true
					p.varAtoms[e] = append(p.varAtoms[e], ai)
				}
			}
			for e := range seen {
				for f := range seen {
					if e != f {
						p.varNbrs[e] = append(p.varNbrs[e], f)
					}
				}
			}
		}
	}

	// Static per-position candidate sets.
	for _, e := range p.aDom {
		var cand map[int]bool
		if allowed != nil {
			if list, ok := allowed[e]; ok {
				cand = map[int]bool{}
				for _, v := range list {
					cand[v] = true
				}
			}
		}
		for _, ai := range p.varAtoms[e] {
			at := p.atoms[ai]
			ri := p.idx[at.rel]
			for pos, arg := range at.args {
				if arg != e {
					continue
				}
				vals := map[int]bool{}
				for v := range ri.byPosVal[pos] {
					vals[v] = true
				}
				if cand == nil {
					cand = vals
				} else {
					for v := range cand {
						if !vals[v] {
							delete(cand, v)
						}
					}
				}
			}
		}
		if cand == nil {
			p.posCand[e] = nil // unconstrained element: whole target domain
			continue
		}
		list := make([]int, 0, len(cand))
		for v := range cand {
			list = append(list, v)
		}
		sort.Ints(list)
		if len(list) == 0 {
			p.unsat = true
			return p
		}
		p.posCand[e] = list
	}
	return p
}

// candidates returns the feasible target values for source element v
// under the partial assignment, by filtering target tuples through
// every atom of v that has at least one assigned argument.
func (p *problem) candidates(v int, assign map[int]int) []int {
	var cand map[int]bool
	base := p.posCand[v]
	if base == nil {
		base = p.bDom
	}
	restrict := func(vals map[int]bool) {
		if cand == nil {
			cand = vals
			return
		}
		for x := range cand {
			if !vals[x] {
				delete(cand, x)
			}
		}
	}
	for _, ai := range p.varAtoms[v] {
		at := p.atoms[ai]
		hasAssigned := false
		for _, arg := range at.args {
			if _, ok := assign[arg]; ok {
				hasAssigned = true
				break
			}
		}
		if !hasAssigned {
			continue
		}
		ri := p.idx[at.rel]
		// Pick the assigned position with the fewest matching tuples.
		bestPos, bestLen := -1, -1
		for pos, arg := range at.args {
			if val, ok := assign[arg]; ok {
				l := len(ri.byPosVal[pos][val])
				if bestPos == -1 || l < bestLen {
					bestPos, bestLen = pos, l
				}
			}
		}
		val := assign[at.args[bestPos]]
		vals := map[int]bool{}
	tuples:
		for _, ti := range ri.byPosVal[bestPos][val] {
			t := ri.tuples[ti]
			// Full pattern check: assigned args must match; repeated
			// unassigned vars must agree within the tuple.
			pat := map[int]int{}
			for pos, arg := range at.args {
				if w, ok := assign[arg]; ok {
					if t[pos] != w {
						continue tuples
					}
					continue
				}
				if prev, ok := pat[arg]; ok {
					if prev != t[pos] {
						continue tuples
					}
				} else {
					pat[arg] = t[pos]
				}
			}
			if w, ok := pat[v]; ok {
				vals[w] = true
			}
		}
		restrict(vals)
		if len(cand) == 0 {
			return nil
		}
	}
	if cand == nil {
		return base
	}
	out := make([]int, 0, len(cand))
	for x := range cand {
		// Respect the static positional candidates.
		out = append(out, x)
	}
	if p.posCand[v] != nil {
		allowed := map[int]bool{}
		for _, x := range p.posCand[v] {
			allowed[x] = true
		}
		filtered := out[:0]
		for _, x := range out {
			if allowed[x] {
				filtered = append(filtered, x)
			}
		}
		out = filtered
	}
	sort.Ints(out)
	return out
}

// atomSatisfied checks, after assigning element v, every atom of v that
// became fully assigned.
func (p *problem) atomsOK(v int, assign map[int]int) bool {
	for _, ai := range p.varAtoms[v] {
		at := p.atoms[ai]
		ri := p.idx[at.rel]
		full := true
		img := make([]int, len(at.args))
		for pos, arg := range at.args {
			w, ok := assign[arg]
			if !ok {
				full = false
				break
			}
			img[pos] = w
		}
		if !full {
			continue
		}
		// Membership check via the smallest index list.
		bestPos, bestLen := 0, -1
		for pos := range img {
			l := len(ri.byPosVal[pos][img[pos]])
			if bestLen == -1 || l < bestLen {
				bestPos, bestLen = pos, l
			}
		}
		found := false
	search:
		for _, ti := range ri.byPosVal[bestPos][img[bestPos]] {
			t := ri.tuples[ti]
			for pos := range img {
				if t[pos] != img[pos] {
					continue search
				}
			}
			found = true
			break
		}
		if !found {
			return false
		}
	}
	return true
}

// selectVar picks the next element to assign: the most-constrained
// frontier element (one sharing an atom with an assigned element), or —
// when the frontier is empty, e.g. at the start or on a fresh connected
// component — the element with the smallest static candidate list.
// It returns the index into remaining and the candidate values.
func (p *problem) selectVar(assign map[int]int, remaining []int, frontier map[int]int) (int, []int) {
	bestI := -1
	var bestCand []int
	onFrontier := false
	for i, v := range remaining {
		if frontier[v] > 0 {
			c := p.candidates(v, assign)
			if !onFrontier || len(c) < len(bestCand) {
				bestI, bestCand, onFrontier = i, c, true
				if len(c) == 0 {
					return bestI, bestCand
				}
			}
		}
	}
	if onFrontier {
		return bestI, bestCand
	}
	// Fresh component: smallest static candidate list.
	bestLen := -1
	for i, v := range remaining {
		l := len(p.posCand[v])
		if p.posCand[v] == nil {
			l = len(p.bDom)
		}
		if bestLen == -1 || l < bestLen {
			bestI, bestLen = i, l
		}
	}
	v := remaining[bestI]
	if p.posCand[v] == nil {
		return bestI, p.bDom
	}
	return bestI, p.posCand[v]
}

// solve enumerates assignments of the elements in remaining, extending
// assign. frontier counts, per unassigned element, how many of its
// co-occurring elements are assigned. fn is invoked on every complete
// assignment; if it returns false the search stops and solve returns
// false ("interrupted"); otherwise solve returns true after exhausting
// the space.
func (p *problem) solve(assign map[int]int, remaining []int, frontier map[int]int, fn func() bool) bool {
	if p.cancelled() {
		return false
	}
	if len(remaining) == 0 {
		return fn()
	}
	bestI, bestCand := p.selectVar(assign, remaining, frontier)
	if len(bestCand) == 0 {
		return true // dead end: continue overall search
	}
	v := remaining[bestI]
	rest := make([]int, 0, len(remaining)-1)
	rest = append(rest, remaining[:bestI]...)
	rest = append(rest, remaining[bestI+1:]...)
	for _, w := range p.varNbrs[v] {
		frontier[w]++
	}
	for _, val := range bestCand {
		assign[v] = val
		if p.atomsOK(v, assign) {
			if !p.solve(assign, rest, frontier, fn) {
				delete(assign, v)
				for _, w := range p.varNbrs[v] {
					frontier[w]--
				}
				return false
			}
		}
		delete(assign, v)
	}
	for _, w := range p.varNbrs[v] {
		frontier[w]--
	}
	return true
}

// initFrontier counts assigned neighbors for the initial assignment.
func (p *problem) initFrontier(assign map[int]int) map[int]int {
	frontier := map[int]int{}
	for e := range assign {
		for _, w := range p.varNbrs[e] {
			frontier[w]++
		}
	}
	return frontier
}

// prepare validates the pre-assignment and returns the initial
// assignment plus the list of unassigned elements, or ok=false if pre
// is immediately inconsistent.
func (p *problem) prepare(pre map[int]int) (assign map[int]int, remaining []int, ok bool) {
	if p.unsat {
		return nil, nil, false
	}
	assign = make(map[int]int, len(pre))
	inDom := map[int]bool{}
	for _, e := range p.aDom {
		inDom[e] = true
	}
	for e, w := range pre {
		if !inDom[e] {
			continue // pre may mention elements outside the active domain
		}
		assign[e] = w
	}
	// Check atoms already fully assigned and positional feasibility.
	for e := range assign {
		if !p.atomsOK(e, assign) {
			return nil, nil, false
		}
		if pc := p.posCand[e]; pc != nil {
			i := sort.SearchInts(pc, assign[e])
			if i >= len(pc) || pc[i] != assign[e] {
				return nil, nil, false
			}
		}
	}
	for _, e := range p.aDom {
		if _, done := assign[e]; !done {
			remaining = append(remaining, e)
		}
	}
	return assign, remaining, true
}

// Exists reports whether there is a homomorphism from a to b extending
// the partial map pre.
func Exists(a, b *relstr.Structure, pre map[int]int) bool {
	_, ok := Find(a, b, pre)
	return ok
}

// ExistsCtx is Exists under a context: it returns cqerr-wrapped
// cancellation when ctx expires mid-search.
func ExistsCtx(ctx context.Context, a, b *relstr.Structure, pre map[int]int) (bool, error) {
	_, ok, err := findCtx(ctx, a, b, pre)
	return ok, err
}

// Find returns a homomorphism from a to b extending pre, if one exists.
func Find(a, b *relstr.Structure, pre map[int]int) (map[int]int, bool) {
	h, ok, _ := findCtx(nil, a, b, pre)
	return h, ok
}

// FindCtx is Find under a context.
func FindCtx(ctx context.Context, a, b *relstr.Structure, pre map[int]int) (map[int]int, bool, error) {
	return findCtx(ctx, a, b, pre)
}

func findCtx(ctx context.Context, a, b *relstr.Structure, pre map[int]int) (map[int]int, bool, error) {
	p := compile(a, b)
	p.ctx = ctx
	assign, remaining, ok := p.prepare(pre)
	if !ok {
		return nil, false, nil
	}
	var found map[int]int
	p.solve(assign, remaining, p.initFrontier(assign), func() bool {
		found = make(map[int]int, len(assign))
		for k, v := range assign {
			found[k] = v
		}
		return false // stop at first solution
	})
	if err := p.cancelErr(); err != nil {
		return nil, false, err
	}
	if found == nil {
		return nil, false, nil
	}
	return found, true, nil
}

// ForEach enumerates every homomorphism from a to b extending pre,
// invoking fn on each. If fn returns false the enumeration stops early
// and ForEach returns false; otherwise it returns true.
func ForEach(a, b *relstr.Structure, pre map[int]int, fn func(h map[int]int) bool) bool {
	done, _ := ForEachCtx(nil, a, b, pre, fn)
	return done
}

// ForEachCtx is ForEach under a context. It returns (false, non-nil)
// when the context expired before the enumeration finished.
func ForEachCtx(ctx context.Context, a, b *relstr.Structure, pre map[int]int, fn func(h map[int]int) bool) (bool, error) {
	p := compile(a, b)
	p.ctx = ctx
	assign, remaining, ok := p.prepare(pre)
	if !ok {
		return true, nil
	}
	done := p.solve(assign, remaining, p.initFrontier(assign), func() bool {
		h := make(map[int]int, len(assign))
		for k, v := range assign {
			h[k] = v
		}
		return fn(h)
	})
	if err := p.cancelErr(); err != nil {
		return false, err
	}
	return done, nil
}

// Count returns the number of homomorphisms from a to b extending pre.
func Count(a, b *relstr.Structure, pre map[int]int) int {
	n := 0
	ForEach(a, b, pre, func(map[int]int) bool { n++; return true })
	return n
}

// Project enumerates the distinct values taken by the projection
// elements proj across all homomorphisms from a to b extending pre.
// For each distinct tuple of values for proj that extends to a full
// homomorphism, fn is called once. This is CQ evaluation when a is a
// tableau, proj its distinguished tuple and b a database. If fn returns
// false enumeration stops early (Project then returns false).
func Project(a, b *relstr.Structure, pre map[int]int, proj []int, fn func(vals []int) bool) bool {
	done, _ := ProjectCtx(nil, a, b, pre, proj, fn)
	return done
}

// ProjectCtx is Project under a context. It returns (false, non-nil)
// when the context expired before the enumeration finished; answers
// already delivered to fn remain valid (they are sound regardless of
// where the search stopped).
func ProjectCtx(ctx context.Context, a, b *relstr.Structure, pre map[int]int, proj []int, fn func(vals []int) bool) (bool, error) {
	p := compile(a, b)
	p.ctx = ctx
	assign, remaining, ok := p.prepare(pre)
	if !ok {
		return true, nil
	}
	// Split remaining into projection elements (assigned first) and the
	// rest (existence-checked).
	isProj := map[int]bool{}
	for _, e := range proj {
		isProj[e] = true
	}
	var projRemaining, rest []int
	for _, e := range remaining {
		if isProj[e] {
			projRemaining = append(projRemaining, e)
		} else {
			rest = append(rest, e)
		}
	}
	var seen relstr.TupleSet
	var assignProj func(rem []int) bool
	assignProj = func(rem []int) bool {
		if p.cancelled() {
			return false
		}
		if len(rem) == 0 {
			// All projection elements assigned; does a completion exist?
			complete := false
			p.solve(assign, rest, p.initFrontier(assign), func() bool { complete = true; return false })
			if !complete {
				return true
			}
			vals := make([]int, len(proj))
			for i, e := range proj {
				vals[i] = assign[e]
			}
			if !seen.Add(vals) {
				return true
			}
			return fn(vals)
		}
		// MRV within the projection elements.
		bestI := -1
		var bestCand []int
		for i, v := range rem {
			c := p.candidates(v, assign)
			if bestI == -1 || len(c) < len(bestCand) {
				bestI, bestCand = i, c
				if len(c) == 0 {
					break
				}
			}
		}
		if len(bestCand) == 0 {
			return true
		}
		v := rem[bestI]
		next := make([]int, 0, len(rem)-1)
		next = append(next, rem[:bestI]...)
		next = append(next, rem[bestI+1:]...)
		for _, val := range bestCand {
			assign[v] = val
			if p.atomsOK(v, assign) {
				if !assignProj(next) {
					delete(assign, v)
					return false
				}
			}
			delete(assign, v)
		}
		return true
	}
	done := assignProj(projRemaining)
	if err := p.cancelErr(); err != nil {
		return false, err
	}
	return done, nil
}
