package hom

import (
	"context"

	"cqapprox/internal/cq"
	"cqapprox/internal/relstr"
)

// A Pointed structure is a structure with a distinguished tuple: the
// objects of the paper's homomorphism preorder (tableaux of CQs).
type Pointed struct {
	S    *relstr.Structure
	Dist []int
}

// Maps reports whether (a, ā) → (b, b̄): a homomorphism from a.S to b.S
// sending a.Dist pointwise to b.Dist. Both tuples must have the same
// length.
func Maps(a, b Pointed) bool {
	ok, _ := MapsCtx(nil, a, b)
	return ok
}

// MapsCtx is Maps under a context.
func MapsCtx(ctx context.Context, a, b Pointed) (bool, error) {
	if len(a.Dist) != len(b.Dist) {
		return false, nil
	}
	pre := map[int]int{}
	for i, d := range a.Dist {
		if w, ok := pre[d]; ok && w != b.Dist[i] {
			return false, nil
		}
		pre[d] = b.Dist[i]
	}
	return ExistsCtx(ctx, a.S, b.S, pre)
}

// Equivalentp reports homomorphic equivalence of pointed structures:
// maps in both directions.
func Equivalentp(a, b Pointed) bool { return Maps(a, b) && Maps(b, a) }

// StrictlyBelow implements the paper's relation a ⥿ b: a → b holds but
// b → a does not.
func StrictlyBelow(a, b Pointed) bool { return Maps(a, b) && !Maps(b, a) }

// TableauOf returns the pointed structure of q's tableau.
func TableauOf(q *cq.Query) Pointed {
	tb := q.Tableau()
	return Pointed{S: tb.S, Dist: tb.Dist}
}

// Contained reports q1 ⊆ q2 (answers of q1 are always a subset of
// answers of q2). By Chandra–Merlin, q1 ⊆ q2 iff (T_{q2}, x̄2) →
// (T_{q1}, x̄1). Queries with different head arities are incomparable.
func Contained(q1, q2 *cq.Query) bool {
	if len(q1.Head) != len(q2.Head) {
		return false
	}
	return Maps(TableauOf(q2), TableauOf(q1))
}

// ProperlyContained reports q1 ⊂ q2.
func ProperlyContained(q1, q2 *cq.Query) bool {
	return Contained(q1, q2) && !Contained(q2, q1)
}

// Equivalent reports q1 ≡ q2 (same answers on every database).
func Equivalent(q1, q2 *cq.Query) bool {
	return Contained(q1, q2) && Contained(q2, q1)
}

// MinimalElements returns the indices of the →-minimal elements of
// items: those i such that no j satisfies items[j] ⥿ items[i]. In the
// tableau view of the paper, minimal tableaux correspond to
// ⊆-maximal queries. The comparisons are memoised in a relation matrix.
func MinimalElements(items []Pointed) []int {
	n := len(items)
	maps := make([][]int8, n) // -1 unknown, 0 no, 1 yes
	for i := range maps {
		maps[i] = make([]int8, n)
		for j := range maps[i] {
			maps[i][j] = -1
		}
	}
	arrow := func(i, j int) bool {
		if maps[i][j] == -1 {
			if Maps(items[i], items[j]) {
				maps[i][j] = 1
			} else {
				maps[i][j] = 0
			}
		}
		return maps[i][j] == 1
	}
	var out []int
	for i := 0; i < n; i++ {
		minimal := true
		for j := 0; j < n && minimal; j++ {
			if j == i {
				continue
			}
			if arrow(j, i) && !arrow(i, j) {
				minimal = false
			}
		}
		if minimal {
			out = append(out, i)
		}
	}
	return out
}

// EquivClasses partitions items into homomorphic-equivalence classes,
// returning for each class the indices of its members. Class order
// follows the first member's index.
func EquivClasses(items []Pointed) [][]int {
	n := len(items)
	assigned := make([]int, n)
	for i := range assigned {
		assigned[i] = -1
	}
	var classes [][]int
	for i := 0; i < n; i++ {
		if assigned[i] != -1 {
			continue
		}
		cls := []int{i}
		assigned[i] = len(classes)
		for j := i + 1; j < n; j++ {
			if assigned[j] != -1 {
				continue
			}
			if Equivalentp(items[i], items[j]) {
				assigned[j] = len(classes)
				cls = append(cls, j)
			}
		}
		classes = append(classes, cls)
	}
	return classes
}
