package hom

import "cqapprox/internal/relstr"

// ExistsRestricted reports whether a homomorphism from a to b extending
// pre exists in which every source element e with an entry in allowed
// maps into allowed[e]. The restriction must be sound for the intended
// use — e.g. restricting balanced digraphs to level-preserving maps is
// justified by Lemma 4.5 of the paper (homomorphisms between balanced
// digraphs of equal height preserve levels).
func ExistsRestricted(a, b *relstr.Structure, pre map[int]int, allowed map[int][]int) bool {
	_, ok := FindRestricted(a, b, pre, allowed)
	return ok
}

// FindRestricted is Find under the candidate restriction allowed
// (see ExistsRestricted).
func FindRestricted(a, b *relstr.Structure, pre map[int]int, allowed map[int][]int) (map[int]int, bool) {
	p := compileRestricted(a, b, allowed)
	assign, remaining, ok := p.prepare(pre)
	if !ok {
		return nil, false
	}
	var found map[int]int
	p.solve(assign, remaining, p.initFrontier(assign), func() bool {
		found = make(map[int]int, len(assign))
		for k, v := range assign {
			found[k] = v
		}
		return false
	})
	if found == nil {
		return nil, false
	}
	return found, true
}

// ForEachRestricted enumerates homomorphisms under the candidate
// restriction allowed; semantics otherwise match ForEach.
func ForEachRestricted(a, b *relstr.Structure, pre map[int]int, allowed map[int][]int, fn func(h map[int]int) bool) bool {
	p := compileRestricted(a, b, allowed)
	assign, remaining, ok := p.prepare(pre)
	if !ok {
		return true
	}
	return p.solve(assign, remaining, p.initFrontier(assign), func() bool {
		h := make(map[int]int, len(assign))
		for k, v := range assign {
			h[k] = v
		}
		return fn(h)
	})
}

// CountRestricted counts homomorphisms under the candidate restriction.
func CountRestricted(a, b *relstr.Structure, pre map[int]int, allowed map[int][]int) int {
	n := 0
	ForEachRestricted(a, b, pre, allowed, func(map[int]int) bool { n++; return true })
	return n
}
