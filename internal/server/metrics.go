package server

import (
	"expvar"
	"net/http"
	"time"

	"cqapprox/api"
)

// endpointMetrics counts one endpoint's traffic. The counters are
// expvar vars (atomic, individually exportable); Vars assembles them
// into an expvar.Map so cqapproxd can publish the whole set under one
// name without the tests' many Server instances colliding in the
// process-global expvar registry.
type endpointMetrics struct {
	requests  expvar.Int
	errors    expvar.Int // responses with status >= 400
	rejected  expvar.Int // 429s from admission control (also counted in errors)
	inflight  expvar.Int
	latencyNS expvar.Int // cumulative handler latency
}

func (em *endpointMetrics) snapshot() api.EndpointStats {
	return api.EndpointStats{
		Requests:       em.requests.Value(),
		Errors:         em.errors.Value(),
		Rejected:       em.rejected.Value(),
		InFlight:       em.inflight.Value(),
		LatencyTotalMS: float64(em.latencyNS.Value()) / 1e6,
	}
}

type metrics struct {
	byName map[string]*endpointMetrics
}

func newMetrics(names ...string) *metrics {
	m := &metrics{byName: make(map[string]*endpointMetrics, len(names))}
	for _, n := range names {
		m.byName[n] = &endpointMetrics{}
	}
	return m
}

func (m *metrics) snapshot() map[string]api.EndpointStats {
	out := make(map[string]api.EndpointStats, len(m.byName))
	for name, em := range m.byName {
		out[name] = em.snapshot()
	}
	return out
}

// Vars returns the counters as an unpublished expvar.Map tree
// (endpoint → counter → value) for cmd/cqapproxd to expvar.Publish.
func (m *metrics) Vars() *expvar.Map {
	root := new(expvar.Map).Init()
	for name, em := range m.byName {
		sub := new(expvar.Map).Init()
		sub.Set("requests", &em.requests)
		sub.Set("errors", &em.errors)
		sub.Set("rejected", &em.rejected)
		sub.Set("in_flight", &em.inflight)
		sub.Set("latency_ns", &em.latencyNS)
		root.Set(name, sub)
	}
	return root
}

// MetricsVars exposes the server's counters for expvar publication.
func (s *Server) MetricsVars() *expvar.Map { return s.metrics.Vars() }

// statusRecorder captures the response status for metrics while
// passing Flush through, so instrumented streaming still streams.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.status == 0 {
		sr.status = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	return sr.ResponseWriter.Write(b)
}

func (sr *statusRecorder) Flush() {
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps a handler with the endpoint's request, error,
// rejection, in-flight and latency counters.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	em := s.metrics.byName[name]
	return func(w http.ResponseWriter, r *http.Request) {
		em.requests.Add(1)
		em.inflight.Add(1)
		start := time.Now()
		sr := &statusRecorder{ResponseWriter: w}
		h(sr, r)
		em.latencyNS.Add(time.Since(start).Nanoseconds())
		em.inflight.Add(-1)
		if sr.status >= 400 {
			em.errors.Add(1)
		}
		if sr.status == http.StatusTooManyRequests {
			em.rejected.Add(1)
		}
	}
}
