package server

import (
	"encoding/json"
	"expvar"
	"math"
	"net/http"
	"sync/atomic"
	"time"

	"cqapprox"
	"cqapprox/api"
)

// latencyBucketsMS are the upper bounds (milliseconds) of the
// fixed-bucket latency histogram every endpoint records into; a final
// implicit +Inf bucket catches the rest. Exponential-ish spacing from
// 100µs to 5s covers everything from a cache-hit prepare to a deadline
// running out.
var latencyBucketsMS = [...]float64{0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}

// endpointMetrics counts one endpoint's traffic. The counters are
// expvar vars (atomic, individually exportable); Vars assembles them
// into an expvar.Map so cqapproxd can publish the whole set under one
// name without the tests' many Server instances colliding in the
// process-global expvar registry. Latencies additionally feed a
// fixed-bucket histogram plus exact min/max, from which snapshot
// derives the p50/p95/p99 of /v1/stats.
type endpointMetrics struct {
	requests  expvar.Int
	errors    expvar.Int // responses with status >= 400
	rejected  expvar.Int // 429s from admission control (also counted in errors)
	inflight  expvar.Int
	latencyNS expvar.Int // cumulative handler latency

	samples atomic.Int64
	minNS   atomic.Int64 // exact; initialized to MaxInt64, valid once samples > 0
	maxNS   atomic.Int64
	buckets [len(latencyBucketsMS) + 1]atomic.Int64
}

// record folds one handler latency into the counters, the histogram
// and the min/max.
func (em *endpointMetrics) record(d time.Duration) {
	ns := d.Nanoseconds()
	em.latencyNS.Add(ns)
	ms := float64(ns) / 1e6
	i := 0
	for i < len(latencyBucketsMS) && ms > latencyBucketsMS[i] {
		i++
	}
	em.buckets[i].Add(1)
	for {
		cur := em.minNS.Load()
		if ns >= cur || em.minNS.CompareAndSwap(cur, ns) {
			break
		}
	}
	for {
		cur := em.maxNS.Load()
		if ns <= cur || em.maxNS.CompareAndSwap(cur, ns) {
			break
		}
	}
	em.samples.Add(1)
}

func (em *endpointMetrics) snapshot() api.EndpointStats {
	st := api.EndpointStats{
		Requests:       em.requests.Value(),
		Errors:         em.errors.Value(),
		Rejected:       em.rejected.Value(),
		InFlight:       em.inflight.Value(),
		LatencyTotalMS: float64(em.latencyNS.Value()) / 1e6,
	}
	n := em.samples.Load()
	if n == 0 {
		return st
	}
	st.LatencyMinMS = float64(em.minNS.Load()) / 1e6
	st.LatencyMaxMS = float64(em.maxNS.Load()) / 1e6
	st.LatencyP50MS = em.quantile(n, 0.50, st.LatencyMaxMS)
	st.LatencyP95MS = em.quantile(n, 0.95, st.LatencyMaxMS)
	st.LatencyP99MS = em.quantile(n, 0.99, st.LatencyMaxMS)
	return st
}

// quantile is the nearest-rank quantile over the histogram: the upper
// bound of the first bucket whose cumulative count reaches ⌈q·n⌉. The
// +Inf bucket reports the observed max instead of infinity.
func (em *endpointMetrics) quantile(n int64, q float64, maxMS float64) float64 {
	rank := int64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range em.buckets {
		cum += em.buckets[i].Load()
		if cum >= rank {
			if i < len(latencyBucketsMS) {
				return latencyBucketsMS[i]
			}
			return maxMS
		}
	}
	return maxMS
}

// latencyVars is the /debug/vars view of the latency distribution,
// derived from the same histogram as /v1/stats so the two surfaces
// can never disagree.
func (em *endpointMetrics) latencyVars() any {
	st := em.snapshot()
	return map[string]float64{
		"min_ms": st.LatencyMinMS,
		"max_ms": st.LatencyMaxMS,
		"p50_ms": st.LatencyP50MS,
		"p95_ms": st.LatencyP95MS,
		"p99_ms": st.LatencyP99MS,
	}
}

type metrics struct {
	byName map[string]*endpointMetrics
}

func newMetrics(names ...string) *metrics {
	m := &metrics{byName: make(map[string]*endpointMetrics, len(names))}
	for _, n := range names {
		em := &endpointMetrics{}
		em.minNS.Store(math.MaxInt64)
		m.byName[n] = em
	}
	return m
}

func (m *metrics) snapshot() map[string]api.EndpointStats {
	out := make(map[string]api.EndpointStats, len(m.byName))
	for name, em := range m.byName {
		out[name] = em.snapshot()
	}
	return out
}

// Vars returns the counters as an unpublished expvar.Map tree
// (endpoint → counter → value) for cmd/cqapproxd to expvar.Publish.
func (m *metrics) Vars() *expvar.Map {
	root := new(expvar.Map).Init()
	for name, em := range m.byName {
		em := em
		sub := new(expvar.Map).Init()
		sub.Set("requests", &em.requests)
		sub.Set("errors", &em.errors)
		sub.Set("rejected", &em.rejected)
		sub.Set("in_flight", &em.inflight)
		sub.Set("latency_ns", &em.latencyNS)
		sub.Set("latency_ms", expvar.Func(em.latencyVars))
		root.Set(name, sub)
	}
	return root
}

// MetricsVars exposes the server's counters for expvar publication.
func (s *Server) MetricsVars() *expvar.Map { return s.metrics.Vars() }

// statusRecorder captures the response status for metrics while
// passing Flush through, so instrumented streaming still streams. A
// handler that ran a traced evaluation parks the trace here so the
// slow-query log can include it.
type statusRecorder struct {
	http.ResponseWriter
	status int
	trace  *cqapprox.ExecTrace
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.status == 0 {
		sr.status = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	return sr.ResponseWriter.Write(b)
}

func (sr *statusRecorder) Flush() {
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// setTrace parks a traced evaluation's trace on the instrumented
// response writer for the slow-query log; a no-op on uninstrumented
// writers (plain httptest recorders in unit tests).
func setTrace(w http.ResponseWriter, tr *cqapprox.ExecTrace) {
	if sr, ok := w.(*statusRecorder); ok {
		sr.trace = tr
	}
}

// instrument wraps a handler with the endpoint's request, error,
// rejection, in-flight, latency-histogram counters and — when the
// server has a logger — structured request logging.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	em := s.metrics.byName[name]
	return func(w http.ResponseWriter, r *http.Request) {
		em.requests.Add(1)
		em.inflight.Add(1)
		start := time.Now()
		sr := &statusRecorder{ResponseWriter: w}
		h(sr, r)
		elapsed := time.Since(start)
		em.record(elapsed)
		em.inflight.Add(-1)
		if sr.status >= 400 {
			em.errors.Add(1)
		}
		if sr.status == http.StatusTooManyRequests {
			em.rejected.Add(1)
		}
		s.logRequest(name, sr, elapsed)
	}
}

// logRequest emits one structured line per request when the server has
// a logger: Info normally, Warn — with the execution trace, when the
// request ran traced — once the latency crosses Config.SlowQuery.
func (s *Server) logRequest(name string, sr *statusRecorder, elapsed time.Duration) {
	lg := s.cfg.Logger
	if lg == nil {
		return
	}
	attrs := []any{
		"id", s.reqID.Add(1),
		"endpoint", name,
		"status", sr.status,
		"elapsed_ms", float64(elapsed.Nanoseconds()) / 1e6,
	}
	if s.cfg.SlowQuery > 0 && elapsed >= s.cfg.SlowQuery {
		if sr.trace != nil {
			if buf, err := json.Marshal(sr.trace); err == nil {
				attrs = append(attrs, "trace", string(buf))
			}
		}
		lg.Warn("slow request", attrs...)
		return
	}
	lg.Info("request", attrs...)
}
