package server

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"cqapprox"
	"cqapprox/api"
)

// newTestServer spins an httptest server over a fresh engine and
// returns both plus the Server for white-box access (hooks, Stats).
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cqapprox.NewEngine(), cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t *testing.T, ts *httptest.Server, path, body string) (int, http.Header, string) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, strings.TrimRight(string(b), "\n")
}

// The key /v1/prepare returns for the TW(1) triangle below: the
// engine's canonical cache key (stable across alpha-equivalent
// queries), base64-encoded.
const triangleTW1Key = "Y3xuMztkMCw7RSgyKTowLDJ8MSwwfDIsMQBjb3JlLnR3Q2xhc3M6VFcoMSkAMTAvMS8w"

// Golden-JSON coverage of every endpoint and every reachable error
// code. Bodies are compared byte-for-byte: responses are part of the
// wire contract, and all of them are deterministic (canonical variable
// renaming at prepare time, sorted answer sets, fixed error strings).
func TestEndpointGolden(t *testing.T) {
	c11 := "Q() :- E(x0,x1), E(x1,x2), E(x2,x3), E(x3,x4), E(x4,x5), E(x5,x6), E(x6,x7), E(x7,x8), E(x8,x9), E(x9,x10), E(x10,x0)"
	c9 := "Q() :- E(x0,x1), E(x1,x2), E(x2,x3), E(x3,x4), E(x4,x5), E(x5,x6), E(x6,x7), E(x7,x8), E(x8,x0)"
	steps := []struct {
		name       string
		path, body string
		wantStatus int
		wantBody   string
	}{
		{
			name:       "prepare miss",
			path:       "/v1/prepare",
			body:       `{"query":"Q(x) :- E(x,y), E(y,z), E(z,x)","class":"TW1"}`,
			wantStatus: 200,
			wantBody:   `{"key":"` + triangleTW1Key + `","query":"Q(x) :- E(x,y), E(y,z), E(z,x)","minimized":"Q(v0) :- E(v0,v1), E(v1,v2), E(v2,v0)","class":"TW(1)","approximation":"Q_approx(x0) :- E(x0,x1), E(x1,x0), E(x1,x1)","approximations":["Q_approx(x0) :- E(x0,x1), E(x1,x0), E(x1,x1)"],"plan":"yannakakis","candidates_inspected":4,"cache_hit":false}`,
		},
		{
			name:       "prepare hit of an alpha-variant",
			path:       "/v1/prepare",
			body:       `{"query":"P(a) :- E(c,a), E(a,b), E(b,c)","class":"TW1"}`,
			wantStatus: 200,
			wantBody:   `{"key":"` + triangleTW1Key + `","query":"P(a) :- E(c,a), E(a,b), E(b,c)","minimized":"P(v0) :- E(v0,v1), E(v1,v2), E(v2,v0)","class":"TW(1)","approximation":"P_approx(x0) :- E(x0,x1), E(x1,x0), E(x1,x1)","approximations":["P_approx(x0) :- E(x0,x1), E(x1,x0), E(x1,x1)"],"plan":"yannakakis","candidates_inspected":0,"cache_hit":true}`,
		},
		{
			name:       "prepare exact",
			path:       "/v1/prepare",
			body:       `{"query":"Q(x,z) :- E(x,y), E(y,z)","exact":true}`,
			wantStatus: 200,
			wantBody:   `{"key":"Y3xuMztkMCwxLDtFKDIpOjAsMnwyLDEAZXhhY3QAMTAvMS8w","query":"Q(x,z) :- E(x,y), E(y,z)","minimized":"Q(v0,v1) :- E(v0,v2), E(v2,v1)","plan":"yannakakis","candidates_inspected":0,"cache_hit":false}`,
		},
		{
			name:       "eval inline",
			path:       "/v1/eval",
			body:       `{"query":"Q(x,z) :- E(x,y), E(y,z)","exact":true,"database":{"E":[[1,2],[2,3],[3,4]]}}`,
			wantStatus: 200,
			wantBody:   `{"answers":[[1,3],[2,4]],"count":2}`,
		},
		{
			name:       "eval by key",
			path:       "/v1/eval",
			body:       `{"key":"` + triangleTW1Key + `","database":{"E":[[1,2],[2,1],[2,2]]}}`,
			wantStatus: 200,
			wantBody:   `{"answers":[[1],[2]],"count":2}`,
		},
		{
			name:       "eval empty answers",
			path:       "/v1/eval",
			body:       `{"query":"Q(x,z) :- E(x,y), E(y,z)","exact":true,"database":{}}`,
			wantStatus: 200,
			wantBody:   `{"answers":[],"count":0}`,
		},
		{
			name:       "eval/bool",
			path:       "/v1/eval/bool",
			body:       `{"query":"Q() :- E(x,x)","exact":true,"database":{"E":[[1,2],[2,2]]}}`,
			wantStatus: 200,
			wantBody:   `{"result":true}`,
		},
		{
			name:       "stream NDJSON",
			path:       "/v1/stream",
			body:       `{"query":"Q(x,z) :- E(x,y), E(y,z)","exact":true,"database":{"E":[[1,2],[2,3],[3,4]]}}`,
			wantStatus: 200,
			wantBody:   "[1,3]\n[2,4]",
		},
		{
			name:       "unknown key: 404 unknown_key",
			path:       "/v1/eval",
			body:       `{"key":"bm90LWEta2V5","database":{}}`,
			wantStatus: 404,
			wantBody:   `{"error":{"code":"unknown_key","message":"no prepared query under this key (evicted or never prepared here); re-prepare"}}`,
		},
		{
			name:       "malformed key: 400 bad_request",
			path:       "/v1/eval",
			body:       `{"key":"%%%","database":{}}`,
			wantStatus: 400,
			wantBody:   `{"error":{"code":"bad_request","message":"malformed key: illegal base64 data at input byte 0"}}`,
		},
		{
			name:       "syntax error: 400 parse_error with position",
			path:       "/v1/prepare",
			body:       `{"query":"Q(x) :- E(x,","class":"TW1"}`,
			wantStatus: 400,
			wantBody:   `{"error":{"code":"parse_error","message":"cq: parse error at 1:13 (offset 12): expected identifier","line":1,"col":13}}`,
		},
		{
			name:       "unknown class: 400 bad_request",
			path:       "/v1/prepare",
			body:       `{"query":"Q(x) :- E(x,y)","class":"TW9"}`,
			wantStatus: 400,
			wantBody:   `{"error":{"code":"bad_request","message":"unknown class \"TW9\" (want TW1, TW2, TW3, AC, HTW1, HTW2, GHTW1, GHTW2)"}}`,
		},
		{
			name:       "missing class: 400 bad_request",
			path:       "/v1/prepare",
			body:       `{"query":"Q(x) :- E(x,y)"}`,
			wantStatus: 400,
			wantBody:   `{"error":{"code":"bad_request","message":"class required (or set exact for the unapproximated query)"}}`,
		},
		{
			name:       "class plus exact: 400 bad_request",
			path:       "/v1/prepare",
			body:       `{"query":"Q(x) :- E(x,y)","class":"TW1","exact":true}`,
			wantStatus: 400,
			wantBody:   `{"error":{"code":"bad_request","message":"class and exact are mutually exclusive"}}`,
		},
		{
			name:       "options with exact: 400 bad_request",
			path:       "/v1/prepare",
			body:       `{"query":"Q(x) :- E(x,y)","exact":true,"options":{"max_vars":20}}`,
			wantStatus: 400,
			wantBody:   `{"error":{"code":"bad_request","message":"options apply to class preparations only; exact uses the server defaults"}}`,
		},
		{
			name:       "partial options inherit defaults for the rest",
			path:       "/v1/prepare",
			body:       `{"query":"Q() :- E(x,y)","class":"AC","options":{"max_vars":12}}`,
			wantStatus: 200,
			wantBody:   `{"key":"Y3xuMjtkO0UoMik6MCwxAGNvcmUuYWNDbGFzczpBQwAxMi8xLzA","query":"Q() :- E(x,y)","minimized":"Q() :- E(v0,v1)","class":"AC","approximation":"Q_approx() :- E(x0,x1)","approximations":["Q_approx() :- E(x0,x1)"],"plan":"yannakakis","candidates_inspected":1,"cache_hit":false}`,
		},
		{
			name:       "malformed JSON: 400 bad_request",
			path:       "/v1/prepare",
			body:       `not json`,
			wantStatus: 400,
			wantBody:   `{"error":{"code":"bad_request","message":"decoding request body: invalid character 'o' in literal null (expecting 'u')"}}`,
		},
		{
			name:       "ragged database: 400 bad_request",
			path:       "/v1/eval",
			body:       `{"query":"Q(x) :- E(x,x)","exact":true,"database":{"E":[[1,2],[1,2,3]]}}`,
			wantStatus: 400,
			wantBody:   `{"error":{"code":"bad_request","message":"database: relation \"E\" mixes arities 2 and 3"}}`,
		},
		{
			name:       "over budget: 422 budget_exceeded",
			path:       "/v1/prepare",
			body:       `{"query":"` + c11 + `","class":"TW1"}`,
			wantStatus: 422,
			wantBody:   `{"error":{"code":"budget_exceeded","message":"core: query has 11 variables; limit is 10 (raise Options.MaxVars): search budget exceeded"}}`,
		},
		{
			name:       "deadline mid-search: 504 canceled",
			path:       "/v1/prepare",
			body:       `{"query":"` + c9 + `","class":"TW1","timeout_ms":30}`,
			wantStatus: 504,
			wantBody:   `{"error":{"code":"canceled","message":"canceled: context deadline exceeded"}}`,
		},
	}
	_, ts := newTestServer(t, Config{})
	for _, step := range steps {
		t.Run(step.name, func(t *testing.T) {
			status, _, body := post(t, ts, step.path, step.body)
			if status != step.wantStatus {
				t.Fatalf("status = %d, want %d (body %s)", status, step.wantStatus, body)
			}
			if body != step.wantBody {
				t.Fatalf("body:\n got %s\nwant %s", body, step.wantBody)
			}
		})
	}
}

// not_in_class cannot be provoked through well-formed HTTP input (it
// needs an incompatible head arity the parser already rejects), so its
// mapping is pinned directly, along with the internal fallback.
func TestErrorMapping(t *testing.T) {
	e := mapError(fmt.Errorf("wrapped: %w", cqapprox.ErrNotInClass))
	if e.status != http.StatusUnprocessableEntity || e.info.Code != api.CodeNotInClass {
		t.Fatalf("ErrNotInClass mapped to %d/%s", e.status, e.info.Code)
	}
	e = mapError(errors.New("boom"))
	if e.status != http.StatusInternalServerError || e.info.Code != api.CodeInternal {
		t.Fatalf("unknown error mapped to %d/%s", e.status, e.info.Code)
	}
}

// /v1/stats aggregates the engine cache counters and the per-endpoint
// metrics the instrumented handlers maintain.
func TestStats(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	post(t, ts, "/v1/prepare", `{"query":"Q(x) :- E(x,y), E(y,z), E(z,x)","class":"TW1"}`)
	post(t, ts, "/v1/prepare", `{"query":"Q(x) :- E(x,y), E(y,z), E(z,x)","class":"TW1"}`)
	post(t, ts, "/v1/eval", `{"query":"Q(x) :- E(x,y), E(y,z), E(z,x)","class":"TW1","database":{"E":[[1,2],[2,1]]}}`)
	post(t, ts, "/v1/eval", `not json`)

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats api.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Cache.Misses != 1 || stats.Cache.Hits != 2 || stats.Cache.Entries != 1 {
		t.Fatalf("cache stats = %+v", stats.Cache)
	}
	// The one /v1/eval ran the indexed runtime over the cached plan.
	if stats.Cache.IndexedEvals != 1 || stats.Cache.IndexBuilds == 0 {
		t.Fatalf("index stats = %+v", stats.Cache)
	}
	ep := stats.Endpoints["/v1/prepare"]
	if ep.Requests != 2 || ep.Errors != 0 {
		t.Fatalf("/v1/prepare stats = %+v", ep)
	}
	ep = stats.Endpoints["/v1/eval"]
	if ep.Requests != 2 || ep.Errors != 1 || ep.LatencyTotalMS <= 0 {
		t.Fatalf("/v1/eval stats = %+v", ep)
	}
	// The HTTP payload and the white-box snapshot agree.
	if got := s.Stats().Endpoints["/v1/eval"].Requests; got != 2 {
		t.Fatalf("Stats() disagrees with /v1/stats: %d", got)
	}
}

// Admission control: the prepare and eval pools are separate, saturate
// independently, and reject with 429 + Retry-After instead of queueing.
// Deterministic: the slot-holding preparation parks on the
// onPrepareStart seam after claiming its slot, so every saturation
// check below runs while the slot is provably held — no timing, no
// Bell-number search to keep a slot busy "long enough".
func TestAdmissionControl(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInflightPrepare: 1, MaxInflightEval: 1})

	// Warm the loop query into the cache directly on the engine (the
	// HTTP path would trip the hook below): cached evaluations must
	// keep flowing even when the prepare pool is saturated.
	warm, err := cqapprox.Parse("Q(x) :- E(x,x)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.eng.PrepareExact(context.Background(), warm); err != nil {
		t.Fatal(err)
	}

	// The first uncached preparation through the server signals entry
	// and parks, holding the only prepare slot until released.
	entered := make(chan struct{})
	releaseSlot := make(chan struct{})
	var once sync.Once
	s.onPrepareStart = func() {
		once.Do(func() {
			close(entered)
			<-releaseSlot
		})
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		status, _, body := post(t, ts, "/v1/prepare", `{"query":"Q(a) :- R(a,b)","exact":true}`)
		if status != 200 {
			t.Errorf("slot-holding prepare: status %d, body %s", status, body)
		}
	}()
	<-entered // the slot is now held, deterministically

	status, hdr, body := post(t, ts, "/v1/prepare", `{"query":"Q(x) :- E(x,y)","class":"TW1"}`)
	if status != http.StatusTooManyRequests {
		t.Fatalf("saturated prepare: status %d, body %s", status, body)
	}
	if hdr.Get("Retry-After") != "1" {
		t.Fatalf("429 must carry Retry-After: %v", hdr)
	}
	want := `{"error":{"code":"overloaded","message":"server at capacity for this endpoint; retry shortly"}}`
	if body != want {
		t.Fatalf("429 body:\n got %s\nwant %s", body, want)
	}

	// The eval pool is independent: a *cached* inline query still flows.
	if status, _, body := post(t, ts, "/v1/eval",
		`{"query":"Q(x) :- E(x,x)","exact":true,"database":{"E":[[3,3]]}}`); status != 200 {
		t.Fatalf("cached eval while prepare saturated: status %d, body %s", status, body)
	}
	// But an *uncached* inline query needs a prepare slot even on the
	// eval path — the NP-hard search must not sneak past its bound.
	if status, _, body := post(t, ts, "/v1/eval",
		`{"query":"Q(x,z) :- E(x,y), E(y,z)","exact":true,"database":{"E":[[3,3]]}}`); status != http.StatusTooManyRequests {
		t.Fatalf("uncached inline eval during prepare saturation: status %d, body %s", status, body)
	}

	close(releaseSlot) // let the parked preparation finish
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("slot-holding prepare did not finish after release")
	}
	// The metric updates land after the handler returns; poll for the
	// final counter state rather than racing it.
	waitFor(t, 10*time.Second, func() bool {
		ep := s.Stats().Endpoints["/v1/prepare"]
		return ep.InFlight == 0 && ep.Rejected == 1
	})
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// The register-once database flow: POST /v1/db freezes a snapshot,
// eval/eval-bool/stream address it by name without re-shipping data,
// results match the inline path exactly, and /v1/stats exposes the
// registry counters.
func TestRegisterDBFlow(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	status, _, body := post(t, ts, "/v1/db",
		`{"name":"social","database":{"E":[[1,2],[2,3],[3,4],[4,1]]}}`)
	if status != 200 {
		t.Fatalf("register: status %d, body %s", status, body)
	}
	var reg api.RegisterDBResponse
	if err := json.Unmarshal([]byte(body), &reg); err != nil {
		t.Fatal(err)
	}
	if reg.Name != "social" || reg.Relations != 1 || reg.Facts != 4 || reg.Replaced || reg.Version == 0 {
		t.Fatalf("register response = %+v", reg)
	}

	// Re-registering the same name replaces it and says so.
	status, _, body = post(t, ts, "/v1/db",
		`{"name":"social","database":{"E":[[1,2],[2,3],[3,4],[4,1]]}}`)
	if status != 200 {
		t.Fatalf("re-register: status %d, body %s", status, body)
	}
	var reg2 api.RegisterDBResponse
	if err := json.Unmarshal([]byte(body), &reg2); err != nil {
		t.Fatal(err)
	}
	if !reg2.Replaced || reg2.Version <= reg.Version {
		t.Fatalf("re-register response = %+v (first %+v)", reg2, reg)
	}

	const query = `"query":"Q(x,z) :- E(x,y), E(y,z)","exact":true`

	// eval by name ≡ eval inline.
	status, _, byName := post(t, ts, "/v1/eval", `{`+query+`,"db":"social"}`)
	if status != 200 {
		t.Fatalf("eval by name: status %d, body %s", status, byName)
	}
	status, _, inline := post(t, ts, "/v1/eval", `{`+query+`,"database":{"E":[[1,2],[2,3],[3,4],[4,1]]}}`)
	if status != 200 || byName != inline {
		t.Fatalf("eval by name %q, inline %q (status %d)", byName, inline, status)
	}

	// eval/bool and stream accept the name too.
	if status, _, body := post(t, ts, "/v1/eval/bool", `{`+query+`,"db":"social"}`); status != 200 || body != `{"result":true}` {
		t.Fatalf("eval/bool by name: status %d, body %s", status, body)
	}
	status, _, body = post(t, ts, "/v1/stream", `{`+query+`,"db":"social"}`)
	if status != 200 || !strings.Contains(body, "[1,3]") {
		t.Fatalf("stream by name: status %d, body %s", status, body)
	}

	// Unknown name: 404 unknown_db.
	status, _, body = post(t, ts, "/v1/eval", `{`+query+`,"db":"nope"}`)
	if status != 404 || !strings.Contains(body, `"code":"unknown_db"`) {
		t.Fatalf("unknown db: status %d, body %s", status, body)
	}

	// Naming and shipping at once: 400.
	status, _, body = post(t, ts, "/v1/eval", `{`+query+`,"db":"social","database":{"E":[[1,2]]}}`)
	if status != 400 || !strings.Contains(body, "mutually exclusive") {
		t.Fatalf("db+database: status %d, body %s", status, body)
	}

	// Registration without a name: 400.
	if status, _, body := post(t, ts, "/v1/db", `{"database":{"E":[[1,2]]}}`); status != 400 {
		t.Fatalf("nameless register: status %d, body %s", status, body)
	}

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats api.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	// Lookups: 3 by-name hits, 1 miss ("nope"); registrations never
	// probe (Replaced is reported atomically by RegisterDB) and the
	// db+database conflict is rejected before any lookup.
	if d := stats.DBs; d.Entries != 1 || d.Registered != 2 || d.Hits != 3 || d.Misses != 1 {
		t.Fatalf("dbs stats = %+v", d)
	}
	// The three by-name evaluations warmed and then reused the
	// snapshot's index cache.
	if d := stats.DBs; d.IndexBuilds == 0 || d.IndexHits == 0 {
		t.Fatalf("dbs index stats = %+v", d)
	}
	ep := stats.Endpoints["/v1/db"]
	if ep.Requests != 3 || ep.Errors != 1 {
		t.Fatalf("/v1/db endpoint stats = %+v", ep)
	}
}

// /v1/count end to end: exact counting over inline and registered
// databases, the seeded estimator, knob validation, and the count
// counters in /v1/stats.
func TestCountEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	const edges = `{"E":[[1,2],[2,3],[3,4],[4,5]]}`

	// Exact count of a full-join head: the multiplicity DP, no answer
	// materialization. The path 1→2→3→4→5 has three 2-step walks.
	status, _, body := post(t, ts, "/v1/count",
		`{"query":"Q(x,y,z) :- E(x,y), E(y,z)","exact":true,"database":`+edges+`}`)
	if status != 200 {
		t.Fatalf("count: status %d, body %s", status, body)
	}
	var res api.CountResponse
	if err := json.Unmarshal([]byte(body), &res); err != nil {
		t.Fatal(err)
	}
	if res.Count != 3 || res.Estimated || res.Mode != "exact-dp" {
		t.Fatalf("count response = %+v", res)
	}

	// Registered databases work exactly like /v1/eval's db field.
	if status, _, body := post(t, ts, "/v1/db", `{"name":"path","database":`+edges+`}`); status != 200 {
		t.Fatalf("register: status %d, body %s", status, body)
	}
	status, _, body = post(t, ts, "/v1/count",
		`{"query":"Q(x,y,z) :- E(x,y), E(y,z)","exact":true,"db":"path"}`)
	if status != 200 || !strings.Contains(body, `"count":3`) {
		t.Fatalf("count by name: status %d, body %s", status, body)
	}

	// The estimator leg: a projection head classifies as sampling, and
	// a pinned seed makes the response deterministic.
	estReq := `{"query":"Q(x,z) :- E(x,y), E(y,z)","exact":true,"db":"path","estimate":true,"epsilon":0.25,"seed":7}`
	status, _, body = post(t, ts, "/v1/count", estReq)
	if status != 200 {
		t.Fatalf("estimate: status %d, body %s", status, body)
	}
	var est api.CountResponse
	if err := json.Unmarshal([]byte(body), &est); err != nil {
		t.Fatal(err)
	}
	if !est.Estimated || est.Mode != "estimate" || est.Samples == 0 || est.Batches == 0 {
		t.Fatalf("estimate response = %+v", est)
	}
	if est.Epsilon != 0.25 || est.Delta == 0 {
		t.Fatalf("estimate knobs not echoed: %+v", est)
	}
	if rel := est.Estimate/3 - 1; rel > 0.25 || rel < -0.25 {
		t.Fatalf("estimate %v for true count 3 misses ε=0.25", est.Estimate)
	}
	if _, _, again := post(t, ts, "/v1/count", estReq); again != body {
		t.Fatalf("seeded estimate not deterministic:\n %s\n %s", body, again)
	}

	// Knob validation happens before any work runs.
	for name, req := range map[string]string{
		"knobs without estimate": `{"query":"Q(x) :- E(x,y)","exact":true,"db":"path","epsilon":0.1}`,
		"epsilon out of range":   `{"query":"Q(x) :- E(x,y)","exact":true,"db":"path","estimate":true,"epsilon":1.5}`,
		"delta out of range":     `{"query":"Q(x) :- E(x,y)","exact":true,"db":"path","estimate":true,"delta":1}`,
		"negative max_samples":   `{"query":"Q(x) :- E(x,y)","exact":true,"db":"path","estimate":true,"max_samples":-1}`,
	} {
		status, _, body := post(t, ts, "/v1/count", req)
		if status != 400 || !strings.Contains(body, `"code":"bad_request"`) {
			t.Fatalf("%s: status %d, body %s", name, status, body)
		}
	}

	// The counting work surfaced in the cache counters and the endpoint
	// metrics (4 of the 8 requests above were validation failures).
	stats := s.Stats()
	if c := stats.Cache; c.ExactCounts != 2 || c.EstimatedCounts != 2 || c.SampleBatches == 0 {
		t.Fatalf("count cache stats = %+v", c)
	}
	if ep := stats.Endpoints[epCount]; ep.Requests != 8 || ep.Errors != 4 {
		t.Fatalf("%s endpoint stats = %+v", epCount, ep)
	}
}

// The parallelism knob end to end: an explicit request budget is
// clamped to the configured cap and recorded in the engine's
// parallel-eval counter; /v1/stats reports the effective server
// limits. Answers are identical at any budget.
func TestParallelismClampAndStats(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxParallelism: 2, MaxInflightPrepare: 4, MaxInflightEval: 8})
	eval := `{"query":"Q(x) :- E(x,y), E(y,z)","exact":true,"database":{"E":[[1,2],[2,3]]},"parallelism":%d}`

	status, _, serialBody := post(t, ts, "/v1/eval", fmt.Sprintf(eval, 0))
	if status != http.StatusOK {
		t.Fatalf("serial eval: %d %s", status, serialBody)
	}
	if got := s.Stats().Cache.ParallelEvals; got != 0 {
		t.Fatalf("serial eval counted as parallel: %d", got)
	}

	// A budget far above the cap is clamped (to 2 > 1), not rejected.
	status, _, parBody := post(t, ts, "/v1/eval", fmt.Sprintf(eval, 64))
	if status != http.StatusOK {
		t.Fatalf("parallel eval: %d %s", status, parBody)
	}
	if parBody != serialBody {
		t.Fatalf("parallel answers differ:\n  serial   %s\n  parallel %s", serialBody, parBody)
	}
	stats := s.Stats()
	if stats.Cache.ParallelEvals != 1 {
		t.Fatalf("parallel_evals = %d, want 1", stats.Cache.ParallelEvals)
	}
	if stats.Server.MaxParallelism != 2 || stats.Server.MaxInflightPrepare != 4 || stats.Server.MaxInflightEval != 8 {
		t.Fatalf("server limits = %+v", stats.Server)
	}

	// The same stats shape arrives over the wire.
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var wire api.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&wire); err != nil {
		t.Fatal(err)
	}
	if wire.Server != stats.Server || wire.Cache.ParallelEvals != 1 {
		t.Fatalf("wire stats = %+v", wire)
	}
}

// GOMAXPROCS-derived admission defaults: the zero Config sizes both
// pools from the host's core count and caps request parallelism at
// GOMAXPROCS.
func TestConfigDefaultsFromGOMAXPROCS(t *testing.T) {
	cfg := Config{}.withDefaults()
	procs := runtime.GOMAXPROCS(0)
	if want := max(2, procs/2); cfg.MaxInflightPrepare != want {
		t.Fatalf("MaxInflightPrepare = %d, want %d", cfg.MaxInflightPrepare, want)
	}
	if want := 8 * procs; cfg.MaxInflightEval != want {
		t.Fatalf("MaxInflightEval = %d, want %d", cfg.MaxInflightEval, want)
	}
	if cfg.MaxParallelism != procs {
		t.Fatalf("MaxParallelism = %d, want %d", cfg.MaxParallelism, procs)
	}
	// Negative values still mean unbounded pools / serial-only eval.
	cfg = Config{MaxInflightPrepare: -1, MaxInflightEval: -1, MaxParallelism: -1}.withDefaults()
	if cfg.MaxInflightPrepare != 0 || cfg.MaxInflightEval != 0 || cfg.MaxParallelism != 1 {
		t.Fatalf("negative config = %+v", cfg)
	}
}

// /v1/explain end to end: the structured plan view of an inline query,
// the stable text rendering, explain-by-key, and the parse/prepare
// phase timings.
func TestExplainEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	status, _, body := post(t, ts, "/v1/explain",
		`{"query":"Q(x) :- E(x,y), E(y,z), E(z,x)","class":"TW1"}`)
	if status != 200 {
		t.Fatalf("explain: status %d, body %s", status, body)
	}
	var res api.ExplainResponse
	if err := json.Unmarshal([]byte(body), &res); err != nil {
		t.Fatal(err)
	}
	if res.Key != triangleTW1Key {
		t.Fatalf("explain key = %q, want %q", res.Key, triangleTW1Key)
	}
	ex := res.Explain
	if ex == nil || ex.Mode != "yannakakis" || ex.Class != "TW(1)" || ex.Candidates != 4 {
		t.Fatalf("explain = %+v", ex)
	}
	if len(ex.Trees) != 1 || len(ex.Trees[0].Nodes) != 3 {
		t.Fatalf("explain forest shape = %+v", ex.Trees)
	}
	// The prepare phases: parse prepended by the handler, then the
	// engine's minimize/search/plan, in that order.
	var names []string
	for _, p := range ex.Prepare {
		names = append(names, p.Name)
	}
	if got := strings.Join(names, ","); got != "parse,minimize,search,plan" {
		t.Fatalf("prepare phases = %s", got)
	}
	// The text rendering is the struct's own (stable) rendering.
	if res.Text != ex.Text() || !strings.Contains(res.Text, "plan: yannakakis") {
		t.Fatalf("explain text:\n%s", res.Text)
	}

	// Explain by key returns the same plan, without a parse phase.
	status, _, body = post(t, ts, "/v1/explain", `{"key":"`+triangleTW1Key+`"}`)
	if status != 200 {
		t.Fatalf("explain by key: status %d, body %s", status, body)
	}
	var byKey api.ExplainResponse
	if err := json.Unmarshal([]byte(body), &byKey); err != nil {
		t.Fatal(err)
	}
	if byKey.Text != res.Text {
		t.Fatalf("explain by key text differs:\n%s\nvs\n%s", byKey.Text, res.Text)
	}
	if len(byKey.Explain.Prepare) > 0 && byKey.Explain.Prepare[0].Name == "parse" {
		t.Fatalf("explain by key has a parse phase: %+v", byKey.Explain.Prepare)
	}

	// Unknown key: the usual 404.
	if status, _, body := post(t, ts, "/v1/explain", `{"key":"bm90LWEta2V5"}`); status != 404 {
		t.Fatalf("explain unknown key: status %d, body %s", status, body)
	}
}

// trace:true end to end on /v1/eval, /v1/eval/bool and /v1/count: the
// response carries an execution trace with per-node row counts and
// phase timings; untraced responses stay byte-identical to before.
func TestTraceEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	const db = `{"E":[[1,2],[2,3],[3,4],[4,5]]}`

	status, _, body := post(t, ts, "/v1/eval",
		`{"query":"Q(x,z) :- E(x,y), E(y,z)","exact":true,"database":`+db+`,"trace":true}`)
	if status != 200 {
		t.Fatalf("traced eval: status %d, body %s", status, body)
	}
	var res api.EvalResponse
	if err := json.Unmarshal([]byte(body), &res); err != nil {
		t.Fatal(err)
	}
	if res.Count != 3 || res.Trace == nil {
		t.Fatalf("traced eval response = %+v", res)
	}
	tr := res.Trace
	if tr.Mode != "yannakakis" || tr.TotalNS <= 0 || len(tr.Nodes) != 2 {
		t.Fatalf("trace = %+v", tr)
	}
	for _, n := range tr.Nodes {
		if n.Rows == 0 || n.Atom == "" {
			t.Fatalf("node trace missing rows/atom: %+v", n)
		}
	}
	var phaseNS int64
	for _, p := range tr.Phases {
		phaseNS += p.NS
	}
	if len(tr.Phases) == 0 || phaseNS > tr.TotalNS {
		t.Fatalf("trace phases = %+v (total %d)", tr.Phases, tr.TotalNS)
	}

	// Untraced responses carry no trace block at all.
	status, _, body = post(t, ts, "/v1/eval",
		`{"query":"Q(x,z) :- E(x,y), E(y,z)","exact":true,"database":`+db+`}`)
	if status != 200 || strings.Contains(body, `"trace"`) {
		t.Fatalf("untraced eval leaked a trace: status %d, body %s", status, body)
	}

	// eval/bool and count trace too.
	status, _, body = post(t, ts, "/v1/eval/bool",
		`{"query":"Q() :- E(x,y)","exact":true,"database":`+db+`,"trace":true}`)
	if status != 200 || !strings.Contains(body, `"trace"`) {
		t.Fatalf("traced eval/bool: status %d, body %s", status, body)
	}
	status, _, body = post(t, ts, "/v1/count",
		`{"query":"Q(x,y,z) :- E(x,y), E(y,z)","exact":true,"database":`+db+`,"trace":true}`)
	if status != 200 {
		t.Fatalf("traced count: status %d, body %s", status, body)
	}
	var cnt api.CountResponse
	if err := json.Unmarshal([]byte(body), &cnt); err != nil {
		t.Fatal(err)
	}
	if cnt.Count != 3 || cnt.Mode != "exact-dp" || cnt.Trace == nil {
		t.Fatalf("traced count response = %+v", cnt)
	}
	found := false
	for _, p := range cnt.Trace.Phases {
		if p.Name == "count" {
			found = true
		}
	}
	if !found {
		t.Fatalf("count trace lacks a count phase: %+v", cnt.Trace.Phases)
	}
}

// The slow-query log: with a logger and a zero threshold every request
// logs a Warn line, and a traced request's line embeds the trace JSON.
func TestSlowQueryLog(t *testing.T) {
	var mu sync.Mutex
	var buf strings.Builder
	logger := slog.New(slog.NewJSONHandler(lockedWriter{&mu, &buf}, nil))
	s := New(cqapprox.NewEngine(), Config{Logger: logger, SlowQuery: time.Nanosecond})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	post(t, ts, "/v1/eval",
		`{"query":"Q(x,z) :- E(x,y), E(y,z)","exact":true,"database":{"E":[[1,2],[2,3]]},"trace":true}`)
	// The log line lands after the handler returns; poll for it.
	read := func() string {
		mu.Lock()
		defer mu.Unlock()
		return buf.String()
	}
	waitFor(t, 5*time.Second, func() bool { return strings.Contains(read(), `"slow request"`) })
	out := read()
	if !strings.Contains(out, `"endpoint":"/v1/eval"`) {
		t.Fatalf("slow-query log missing the endpoint: %s", out)
	}
	if !strings.Contains(out, "semijoin_rows_in") {
		t.Fatalf("slow-query log lacks the trace: %s", out)
	}
	if !strings.Contains(out, `"id":`) {
		t.Fatalf("slow-query log lacks a request id: %s", out)
	}
}

type lockedWriter struct {
	mu *sync.Mutex
	w  *strings.Builder
}

func (lw lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}

// The latency histogram behind /v1/stats: min/max/quantiles appear
// once an endpoint has served a request, are consistent with each
// other, and /debug/vars derives from the same histogram.
func TestLatencyHistogram(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	for i := 0; i < 5; i++ {
		post(t, ts, "/v1/eval",
			`{"query":"Q(x) :- E(x,y)","exact":true,"database":{"E":[[1,2]]}}`)
	}
	// record() runs after each handler returns; wait for the last one.
	waitFor(t, 5*time.Second, func() bool {
		ep := s.Stats().Endpoints["/v1/eval"]
		return ep.LatencyMinMS > 0 && ep.LatencyTotalMS > 0
	})
	ep := s.Stats().Endpoints["/v1/eval"]
	if ep.Requests != 5 || ep.LatencyMinMS <= 0 || ep.LatencyMaxMS < ep.LatencyMinMS {
		t.Fatalf("histogram min/max = %+v", ep)
	}
	if ep.LatencyP50MS <= 0 || ep.LatencyP95MS < ep.LatencyP50MS || ep.LatencyP99MS < ep.LatencyP95MS {
		t.Fatalf("histogram quantiles = %+v", ep)
	}
	// Quantiles are upper bucket bounds, so p99 never exceeds the
	// observed max and never undershoots the min's bucket.
	if ep.LatencyP99MS > ep.LatencyMaxMS && ep.LatencyP99MS > latencyBucketsMS[len(latencyBucketsMS)-1] {
		t.Fatalf("p99 %v above max %v", ep.LatencyP99MS, ep.LatencyMaxMS)
	}
	// An idle endpoint reports no distribution at all.
	if st := s.Stats().Endpoints["/v1/stream"]; st.LatencyMinMS != 0 || st.LatencyP99MS != 0 {
		t.Fatalf("idle endpoint has latency stats: %+v", st)
	}
	// /debug/vars sees the same numbers.
	v := s.MetricsVars().Get("/v1/eval").(*expvar.Map).Get("latency_ms")
	var wire map[string]float64
	if err := json.Unmarshal([]byte(v.String()), &wire); err != nil {
		t.Fatal(err)
	}
	if wire["min_ms"] != ep.LatencyMinMS || wire["p99_ms"] != ep.LatencyP99MS {
		t.Fatalf("/debug/vars %v disagrees with /v1/stats %+v", wire, ep)
	}
}

// An engine-wide parallelism default is inherited by requests that
// carry no explicit budget — and still bounded by the server cap.
func TestParallelismEngineDefaultClamped(t *testing.T) {
	eng := cqapprox.NewEngine(cqapprox.WithParallelism(8))
	s := New(eng, Config{MaxParallelism: 2})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	status, _, body := post(t, ts, "/v1/eval",
		`{"query":"Q(x) :- E(x,y), E(y,z)","exact":true,"database":{"E":[[1,2],[2,3]]}}`)
	if status != http.StatusOK {
		t.Fatalf("eval: %d %s", status, body)
	}
	// The inherited budget (8, clamped to 2) still counts as parallel;
	// had the clamp been bypassed or the default dropped to serial,
	// the counter would read 0 — or the budget 8 would exceed the cap.
	if got := s.Stats().Cache.ParallelEvals; got != 1 {
		t.Fatalf("parallel_evals = %d, want 1 (engine default inherited + clamped)", got)
	}
}
