package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"cqapprox/api"
	"cqapprox/client"
)

// subConn is one open /v1/subscribe connection under test.
type subConn struct {
	resp *http.Response
	dec  *json.Decoder
}

// subscribe opens a subscription and fails the test on a non-200
// handshake. The caller reads frames with frame().
func subscribe(t *testing.T, ts *httptest.Server, body string) *subConn {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/subscribe", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		var e api.ErrorResponse
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("subscribe: status %d, error %+v", resp.StatusCode, e.Error)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return &subConn{resp: resp, dec: json.NewDecoder(resp.Body)}
}

// frame reads the next NDJSON diff frame, failing the test if none
// arrives within 10s.
func (c *subConn) frame(t *testing.T) api.DiffFrame {
	t.Helper()
	type res struct {
		f   api.DiffFrame
		err error
	}
	ch := make(chan res, 1)
	go func() {
		var f api.DiffFrame
		err := c.dec.Decode(&f)
		ch <- res{f, err}
	}()
	select {
	case r := <-ch:
		if r.err != nil {
			t.Fatalf("read frame: %v", r.err)
		}
		return r.f
	case <-time.After(10 * time.Second):
		t.Fatal("no frame within 10s")
	}
	panic("unreachable")
}

func registerDB(t *testing.T, ts *httptest.Server, name, database string) uint64 {
	t.Helper()
	status, _, body := post(t, ts, "/v1/db", `{"name":"`+name+`","database":`+database+`}`)
	if status != 200 {
		t.Fatalf("register %s: status %d: %s", name, status, body)
	}
	var resp api.RegisterDBResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	return resp.Version
}

func applyDelta(t *testing.T, ts *httptest.Server, name, delta string) uint64 {
	t.Helper()
	status, _, body := post(t, ts, "/v1/db", `{"name":"`+name+`","delta":`+delta+`}`)
	if status != 200 {
		t.Fatalf("delta on %s: status %d: %s", name, status, body)
	}
	var resp api.RegisterDBResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Applied || !resp.Replaced {
		t.Fatalf("delta response = %+v, want applied and replaced", resp)
	}
	return resp.Version
}

const subBody = `{"query":"Q(x) :- E(x,y)","exact":true,"db":"g"}`

// The core subscription flow: init frame carries the full answer set,
// each delta applied via POST /v1/db pushes one exact diff frame, and
// the stats counters account for all of it.
func TestSubscribeUpdateNotify(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	registerDB(t, ts, "g", `{"E":[[1,2]]}`)

	c := subscribe(t, ts, subBody)
	init := c.frame(t)
	if !init.Init || init.Resync || init.Error != nil {
		t.Fatalf("init frame = %+v", init)
	}
	if fmt.Sprint(init.Added) != "[[1]]" || len(init.Removed) != 0 {
		t.Fatalf("init frame carries %v / %v, want [[1]] / []", init.Added, init.Removed)
	}

	v1 := applyDelta(t, ts, "g", `{"insert":{"E":[[2,3]]}}`)
	f := c.frame(t)
	if f.Fallback {
		t.Fatalf("delta propagated via fallback: %s", f.Reason)
	}
	if f.Version != v1 || fmt.Sprint(f.Added) != "[[2]]" || len(f.Removed) != 0 {
		t.Fatalf("insert frame = %+v, want version %d added [[2]]", f, v1)
	}

	v2 := applyDelta(t, ts, "g", `{"delete":{"E":[[1,2]]}}`)
	f = c.frame(t)
	if f.Version != v2 || len(f.Added) != 0 || fmt.Sprint(f.Removed) != "[[1]]" {
		t.Fatalf("delete frame = %+v, want version %d removed [[1]]", f, v2)
	}

	st := s.Stats()
	sub := st.Subscriptions
	if sub.Active != 1 || sub.Subscriptions != 1 || sub.Notifications != 3 ||
		sub.Resyncs != 0 || sub.SlowConsumerDrops != 0 {
		t.Fatalf("subscription stats = %+v", sub)
	}
	if st.Cache.IncrementalEvals < 2 {
		t.Fatalf("incremental_evals = %d, want >= 2", st.Cache.IncrementalEvals)
	}
	if got := st.Endpoints["/v1/subscribe"]; got.InFlight != 1 || got.Requests != 1 {
		t.Fatalf("endpoint stats = %+v", got)
	}

	c.resp.Body.Close()
	waitFor(t, 10*time.Second, func() bool {
		return s.Stats().Subscriptions.Active == 0
	})
}

// Replacing the registered database wholesale (POST /v1/db with a
// database) forces a resynchronising re-evaluation: the frame reports
// the fallback but its diff is still exact.
func TestSubscribeReplacementFallback(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerDB(t, ts, "g", `{"E":[[1,2]]}`)

	c := subscribe(t, ts, subBody)
	c.frame(t) // init

	v := registerDB(t, ts, "g", `{"E":[[5,6]]}`)
	f := c.frame(t)
	if !f.Fallback || f.Reason == "" {
		t.Fatalf("replacement frame = %+v, want a reported fallback", f)
	}
	if f.Version != v || fmt.Sprint(f.Added) != "[[5]]" || fmt.Sprint(f.Removed) != "[[1]]" {
		t.Fatalf("replacement frame = %+v, want version %d added [[5]] removed [[1]]", f, v)
	}
}

// With a coalesce window, an insert/delete burst nets out into a
// single frame — here to an empty one at the burst's final version.
func TestSubscribeCoalesce(t *testing.T) {
	s, ts := newTestServer(t, Config{CoalesceWindow: 300 * time.Millisecond})
	registerDB(t, ts, "g", `{"E":[[1,2]]}`)

	c := subscribe(t, ts, subBody)
	c.frame(t) // init

	applyDelta(t, ts, "g", `{"insert":{"E":[[7,8]]}}`)
	v2 := applyDelta(t, ts, "g", `{"delete":{"E":[[7,8]]}}`)
	f := c.frame(t)
	if f.Version != v2 || len(f.Added) != 0 || len(f.Removed) != 0 {
		t.Fatalf("coalesced frame = %+v, want empty diff at version %d", f, v2)
	}
	if n := s.Stats().Subscriptions.Notifications; n != 2 {
		t.Fatalf("notifications = %d, want 2 (init + one coalesced frame)", n)
	}
}

// park wires the onSubscribeFrame seam to block the subscriber loop
// after the init frame until release is closed, so tests can overflow
// its queue deterministically.
func park(s *Server) (parked, release chan struct{}) {
	parked, release = make(chan struct{}), make(chan struct{})
	s.onSubscribeFrame = func(n int) {
		if n == 1 {
			close(parked)
			<-release
		}
	}
	return parked, release
}

// Queue overflow under the default resync policy: the backlog is
// dropped and one resync frame replaces the client's state with the
// full answer set at the current version.
func TestSubscribeSlowConsumerResync(t *testing.T) {
	s, ts := newTestServer(t, Config{SubscriberQueue: -1}) // queue depth 1
	parked, release := park(s)
	registerDB(t, ts, "g", `{"E":[[1,2]]}`)

	c := subscribe(t, ts, subBody)
	c.frame(t) // init
	<-parked

	applyDelta(t, ts, "g", `{"insert":{"E":[[3,4]]}}`) // fills the queue
	applyDelta(t, ts, "g", `{"insert":{"E":[[4,5]]}}`) // overflows
	v := applyDelta(t, ts, "g", `{"insert":{"E":[[5,6]]}}`)
	close(release)

	f := c.frame(t)
	if !f.Resync || f.Version != v {
		t.Fatalf("frame = %+v, want a resync at version %d", f, v)
	}
	if fmt.Sprint(f.Added) != "[[1] [3] [4] [5]]" || len(f.Removed) != 0 {
		t.Fatalf("resync frame carries %v / %v, want the full set", f.Added, f.Removed)
	}
	if n := s.Stats().Subscriptions.Resyncs; n != 1 {
		t.Fatalf("resyncs = %d, want 1", n)
	}
}

// Queue overflow under the disconnect policy: a terminal frame with
// the stable error code slow_consumer, then EOF.
func TestSubscribeSlowConsumerDisconnect(t *testing.T) {
	s, ts := newTestServer(t, Config{SubscriberQueue: -1, SlowConsumerPolicy: SlowConsumerDisconnect})
	parked, release := park(s)
	registerDB(t, ts, "g", `{"E":[[1,2]]}`)

	c := subscribe(t, ts, subBody)
	c.frame(t) // init
	<-parked

	applyDelta(t, ts, "g", `{"insert":{"E":[[3,4]]}}`) // fills the queue
	applyDelta(t, ts, "g", `{"insert":{"E":[[4,5]]}}`) // overflows: kick
	close(release)

	// The queued update may still be delivered before the terminal
	// frame; the terminal frame must come, carrying the stable code.
	var f api.DiffFrame
	for i := 0; i < 3; i++ {
		f = c.frame(t)
		if f.Error != nil {
			break
		}
	}
	if f.Error == nil || f.Error.Code != api.CodeSlowConsumer {
		t.Fatalf("terminal frame = %+v, want error code %q", f, api.CodeSlowConsumer)
	}
	var after api.DiffFrame
	if err := c.dec.Decode(&after); err == nil {
		t.Fatalf("frame after terminal: %+v", after)
	}
	st := s.Stats()
	if st.Subscriptions.SlowConsumerDrops != 1 {
		t.Fatalf("slow_consumer_drops = %d, want 1", st.Subscriptions.SlowConsumerDrops)
	}
	if st.Endpoints["/v1/subscribe"].Errors != 1 {
		t.Fatalf("endpoint errors = %+v, want 1", st.Endpoints["/v1/subscribe"])
	}
}

// Validation errors on /v1/subscribe and the /v1/db delta form reuse
// the shared taxonomy: bad_request for shape errors, unknown_db for
// absent registrations.
func TestSubscribeValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerDB(t, ts, "g", `{"E":[[1,2]]}`)
	steps := []struct {
		name, path, body string
		wantStatus       int
		wantCode         string
	}{
		{"subscribe without db", "/v1/subscribe",
			`{"query":"Q(x) :- E(x,y)","exact":true}`, 400, api.CodeBadRequest},
		{"subscribe unknown db", "/v1/subscribe",
			`{"query":"Q(x) :- E(x,y)","exact":true,"db":"nope"}`, 404, api.CodeUnknownDB},
		{"subscribe bad query", "/v1/subscribe",
			`{"query":"Q(x :-","exact":true,"db":"g"}`, 400, api.CodeParseError},
		{"db with both database and delta", "/v1/db",
			`{"name":"g","database":{"E":[[1,2]]},"delta":{"insert":{"E":[[3,4]]}}}`, 400, api.CodeBadRequest},
		{"delta on unknown db", "/v1/db",
			`{"name":"nope","delta":{"insert":{"E":[[3,4]]}}}`, 404, api.CodeUnknownDB},
		{"delta with empty relation name", "/v1/db",
			`{"name":"g","delta":{"insert":{"":[[3,4]]}}}`, 400, api.CodeBadRequest},
	}
	for _, tc := range steps {
		status, _, body := post(t, ts, tc.path, tc.body)
		var e api.ErrorResponse
		if err := json.Unmarshal([]byte(body), &e); err != nil {
			t.Fatalf("%s: non-JSON error body %q", tc.name, body)
		}
		if status != tc.wantStatus || e.Error.Code != tc.wantCode {
			t.Fatalf("%s: status %d code %q, want %d %q (%s)",
				tc.name, status, e.Error.Code, tc.wantStatus, tc.wantCode, e.Error.Message)
		}
	}
}

// Subscriptions tear down cleanly on both client disconnect and server
// drain: the active gauge returns to zero and no goroutines leak
// (mirrors TestStreamClientDisconnect).
func TestSubscribeTeardownNoLeak(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	registerDB(t, ts, "g", `{"E":[[1,2]]}`)

	// Dedicated client: closing its idle connections later makes the
	// goroutine baseline comparison exact.
	tr := &http.Transport{}
	httpc := &http.Client{Transport: tr}
	baseline := runtime.NumGoroutine()

	const n = 4
	conns := make([]*subConn, n)
	for i := range conns {
		resp, err := httpc.Post(ts.URL+"/v1/subscribe", "application/json", strings.NewReader(subBody))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("subscribe %d: status %d", i, resp.StatusCode)
		}
		conns[i] = &subConn{resp: resp, dec: json.NewDecoder(resp.Body)}
		conns[i].frame(t) // init
	}
	applyDelta(t, ts, "g", `{"insert":{"E":[[2,3]]}}`)
	for _, c := range conns {
		if f := c.frame(t); fmt.Sprint(f.Added) != "[[2]]" {
			t.Fatalf("live frame = %+v", f)
		}
	}

	// Half the subscribers disconnect mid-stream ...
	conns[0].resp.Body.Close()
	conns[1].resp.Body.Close()
	waitFor(t, 10*time.Second, func() bool {
		return s.Stats().Subscriptions.Active == 2
	})
	// ... the rest are ended by a server drain, as on shutdown.
	s.Drain()
	waitFor(t, 10*time.Second, func() bool {
		st := s.Stats()
		return st.Subscriptions.Active == 0 && st.Endpoints["/v1/subscribe"].InFlight == 0
	})
	conns[2].resp.Body.Close()
	conns[3].resp.Body.Close()

	tr.CloseIdleConnections()
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before subscribing, %d after teardown", baseline, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// The typed client round-trips a subscription: init frame, a pushed
// diff after a delta, clean break, and — after a Drain — a clean end.
func TestClientSubscribe(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	ctx := context.Background()
	c := client.New(ts.URL)
	if _, err := c.RegisterDB(ctx, api.RegisterDBRequest{
		Name: "g", Database: api.Database{"E": [][]int{{1, 2}}},
	}); err != nil {
		t.Fatal(err)
	}

	frames := make(chan api.DiffFrame)
	errc := make(chan error, 1)
	go func() {
		seq, errf := c.Subscribe(ctx, api.SubscribeRequest{
			Query: "Q(x) :- E(x,y)", Exact: true, DB: "g",
		})
		for f := range seq {
			frames <- f
		}
		errc <- errf()
	}()

	init := <-frames
	if !init.Init || fmt.Sprint(init.Added) != "[[1]]" {
		t.Fatalf("init frame = %+v", init)
	}
	if _, err := c.RegisterDB(ctx, api.RegisterDBRequest{
		Name: "g", Delta: &api.DeltaChange{Insert: api.Database{"E": [][]int{{2, 3}}}},
	}); err != nil {
		t.Fatal(err)
	}
	if f := <-frames; fmt.Sprint(f.Added) != "[[2]]" || len(f.Removed) != 0 {
		t.Fatalf("diff frame = %+v", f)
	}

	s.Drain() // server shutdown path: the stream ends cleanly
	if err := <-errc; err != nil {
		t.Fatalf("errf after drain = %v", err)
	}
}

// Concurrent writers hammer /v1/db while several subscribers replay
// the diff stream; every subscriber's replayed state must land exactly
// on the final answer set. Run under -race in CI, this doubles as the
// update/notify data-race check.
func TestSubscribeConcurrentUpdates(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerDB(t, ts, "g", `{"E":[[1,2]]}`)

	const nSubs, nWriters, nUpdates = 4, 3, 15
	var wg sync.WaitGroup

	type replay struct {
		set  map[string]bool
		errs []string
	}
	results := make([]replay, nSubs)
	// The subscriber goroutines stop once their replayed state contains
	// the sentinel answer [9999]: the sentinel update is posted after
	// every writer finished, so the frame delivering it is the last.
	const sentinel = "[9999]"
	for i := 0; i < nSubs; i++ {
		c := subscribe(t, ts, subBody)
		wg.Add(1)
		go func(c *subConn, r *replay) {
			defer wg.Done()
			r.set = map[string]bool{}
			for {
				var f api.DiffFrame
				if err := c.dec.Decode(&f); err != nil {
					r.errs = append(r.errs, "stream ended: "+err.Error())
					return
				}
				if f.Error != nil {
					r.errs = append(r.errs, "terminal error: "+f.Error.Code)
					return
				}
				if f.Init || f.Resync {
					r.set = map[string]bool{}
					for _, a := range f.Added {
						r.set[fmt.Sprint(a)] = true
					}
				} else {
					for _, x := range f.Removed {
						k := fmt.Sprint(x)
						if !r.set[k] {
							r.errs = append(r.errs, fmt.Sprintf("removed absent %s at v%d", k, f.Version))
						}
						delete(r.set, k)
					}
					for _, a := range f.Added {
						k := fmt.Sprint(a)
						if r.set[k] {
							r.errs = append(r.errs, fmt.Sprintf("added present %s at v%d", k, f.Version))
						}
						r.set[k] = true
					}
				}
				if r.set[sentinel] {
					return
				}
			}
		}(c, &results[i])
	}

	var writers sync.WaitGroup
	for w := 0; w < nWriters; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < nUpdates; i++ {
				a := 1000*(w+1) + i
				applyDelta(t, ts, "g", fmt.Sprintf(`{"insert":{"E":[[%d,%d]]}}`, a, a+1))
			}
		}(w)
	}
	writers.Wait()
	applyDelta(t, ts, "g", `{"insert":{"E":[[9999,10000]]}}`)

	// The final answer set, straight from the registered database.
	status, _, body := post(t, ts, "/v1/eval",
		`{"query":"Q(x) :- E(x,y)","exact":true,"db":"g"}`)
	if status != 200 {
		t.Fatalf("final eval: status %d: %s", status, body)
	}
	var eval api.EvalResponse
	if err := json.Unmarshal([]byte(body), &eval); err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{}
	for _, a := range eval.Answers {
		want[fmt.Sprint(a)] = true
	}

	wg.Wait()
	for i, r := range results {
		if len(r.errs) > 0 {
			t.Fatalf("subscriber %d: %v", i, r.errs)
		}
		if len(r.set) != len(want) {
			t.Fatalf("subscriber %d replayed %d answers, want %d", i, len(r.set), len(want))
		}
		for k := range want {
			if !r.set[k] {
				t.Fatalf("subscriber %d replay misses %s", i, k)
			}
		}
	}
}
