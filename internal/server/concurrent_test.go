package server

import (
	"context"
	"testing"
	"time"

	"cqapprox/client"
	"cqapprox/internal/workload"
	"cqapprox/internal/workload/httpdrive"
)

// Mixed prepare/eval/stream traffic from concurrent clients against a
// live server — the workload the service exists for, and the test the
// CI -race run leans on. Every request must succeed, the per-endpoint
// counters must add up, and the shared cache must have absorbed the
// repeat prepares.
func TestServerConcurrentMixedTraffic(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInflightPrepare: 16, MaxInflightEval: 64})
	c := client.New(ts.URL).WithHTTPClient(ts.Client())

	gen := &workload.LoadGen{Seed: 42, Concurrency: 8}
	const n = 300
	rep := gen.Run(context.Background(), n, httpdrive.Executor(c))

	for _, err := range rep.FirstErrs {
		t.Errorf("workload error: %v", err)
	}
	if rep.Total() != n {
		t.Fatalf("completed %d ops, want %d", rep.Total(), n)
	}
	stats := s.Stats()
	var requests int64
	for _, ep := range stats.Endpoints {
		requests += ep.Requests
	}
	if requests != n {
		t.Fatalf("endpoint counters sum to %d, want %d", requests, n)
	}
	if got := stats.Endpoints["/v1/eval"].Requests; got != rep.Ops[workload.OpEval] {
		t.Fatalf("eval counter %d != generator count %d", got, rep.Ops[workload.OpEval])
	}
	// The suite has 8 distinct queries; everything after their first
	// preparations must be cache hits.
	if stats.Cache.Hits == 0 || stats.Cache.Misses > 16 {
		t.Fatalf("cache did not absorb repeat traffic: %+v", stats.Cache)
	}
}

// The same mixed traffic with the write/watch knobs on: delta updates
// race short-lived subscriptions (and each other) against the same
// registered pool. Every request must still succeed — this is the
// generated-traffic leg of the concurrent update/notify -race
// coverage, alongside TestSubscribeConcurrentUpdates' exactness check.
func TestServerConcurrentUpdateSubscribeTraffic(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInflightPrepare: 16, MaxInflightEval: 64})
	c := client.New(ts.URL).WithHTTPClient(ts.Client())

	gen := &workload.LoadGen{
		Seed:            42,
		Concurrency:     8,
		RegisteredShare: 0.6,
		UpdateShare:     0.3,
		SubscribeShare:  0.5,
	}
	const n = 300
	rep := gen.Run(context.Background(), n, httpdrive.Executor(c))

	for _, err := range rep.FirstErrs {
		t.Errorf("workload error: %v", err)
	}
	if rep.Ops[workload.OpUpdateDB] == 0 || rep.Ops[workload.OpSubscribe] == 0 {
		t.Fatalf("generator produced no write/watch traffic: %+v", rep.Ops)
	}
	stats := s.Stats()
	if got := stats.Endpoints["/v1/subscribe"].Requests; got != rep.Ops[workload.OpSubscribe] {
		t.Fatalf("subscribe counter %d != generator count %d", got, rep.Ops[workload.OpSubscribe])
	}
	if stats.Subscriptions.Subscriptions != uint64(rep.Ops[workload.OpSubscribe]) {
		t.Fatalf("subscription stats %+v != generator count %d",
			stats.Subscriptions, rep.Ops[workload.OpSubscribe])
	}
	// Teardown of the last short-lived watchers is asynchronous with
	// respect to their clients' disconnect.
	waitFor(t, 10*time.Second, func() bool {
		return s.Stats().Subscriptions.Active == 0
	})
}
