package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cqapprox/api"
	"cqapprox/client"
)

const pathQuery = `{"query":"Q(x,z) :- E(x,y), E(y,z)","exact":true,"database":{"E":[[1,2],[2,3],[3,4],[4,5],[5,6]]}}`

// The acceptance property of /v1/stream: the first NDJSON answer is
// on the wire before the rest of the answer set is even enumerated,
// let alone materialized. The proof is deterministic, not timing-based:
// the test hook pauses the server's enumeration right after answer 1 is
// flushed, and the client reads that line to completion while the pause
// holds — at that point no later answer exists anywhere.
func TestStreamFirstAnswerBeforeMaterialization(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	firstFlushed := make(chan struct{})
	resume := make(chan struct{})
	s.onStreamAnswer = func(n int) {
		if n == 1 {
			close(firstFlushed)
			<-resume
		}
	}

	resp, err := http.Post(ts.URL+"/v1/stream", "application/json", strings.NewReader(pathQuery))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	select {
	case <-firstFlushed:
	case <-time.After(5 * time.Second):
		t.Fatal("first answer never flushed")
	}

	// Enumeration is paused with exactly one answer produced; the line
	// must nevertheless be fully readable now.
	rd := bufio.NewReader(resp.Body)
	type lineResult struct {
		line string
		err  error
	}
	linec := make(chan lineResult, 1)
	go func() {
		line, err := rd.ReadString('\n')
		linec <- lineResult{line, err}
	}()
	var first string
	select {
	case lr := <-linec:
		if lr.err != nil {
			t.Fatalf("reading first line: %v", lr.err)
		}
		first = strings.TrimSpace(lr.line)
	case <-time.After(5 * time.Second):
		t.Fatal("first answer not readable while the rest is unenumerated: the handler materialized")
	}
	var tup []int
	if err := json.Unmarshal([]byte(first), &tup); err != nil || len(tup) != 2 {
		t.Fatalf("first line %q is not an answer tuple: %v", first, err)
	}

	// Release the enumeration and drain: the stream must deliver the
	// complete, duplicate-free answer set (4 path pairs).
	close(resume)
	got := map[string]bool{first: true}
	for {
		line, err := rd.ReadString('\n')
		if line = strings.TrimSpace(line); line != "" {
			if strings.HasPrefix(line, "{") {
				t.Fatalf("unexpected error trailer: %s", line)
			}
			if got[line] {
				t.Fatalf("duplicate streamed answer %s", line)
			}
			got[line] = true
		}
		if err != nil {
			break
		}
	}
	if len(got) != 4 {
		t.Fatalf("streamed %d distinct answers, want 4: %v", len(got), got)
	}
}

// longPathRequest returns a stream request whose answer set is large
// (a 300-edge path has 299 length-2 paths), so a cancelled enumeration
// is distinguishable from one that simply finished: the homomorphism
// solver polls its context every 256 search nodes, which a request this
// size crosses many times over.
func longPathRequest() api.EvalRequest {
	edges := make([][]int, 300)
	for i := range edges {
		edges[i] = []int{i, i + 1}
	}
	return api.EvalRequest{
		Query:    "Q(x,z) :- E(x,y), E(y,z)",
		Exact:    true,
		Database: api.Database{"E": edges},
	}
}

const longPathAnswers = 299

// Closing the client connection mid-stream must cancel the server-side
// enumeration promptly and leak nothing: in-flight drops to zero, most
// of the answer set is never produced, and the goroutine count returns
// to its pre-request baseline.
func TestStreamClientDisconnect(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	var produced atomic.Int64
	first := make(chan struct{})
	resume := make(chan struct{})
	s.onStreamAnswer = func(n int) {
		produced.Store(int64(n))
		if n == 1 {
			close(first)
			<-resume
		}
	}

	// Dedicated client: closing its idle connections later makes the
	// goroutine baseline comparison exact.
	tr := &http.Transport{}
	httpc := &http.Client{Transport: tr}
	baseline := runtime.NumGoroutine()

	body, err := json.Marshal(longPathRequest())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := httpc.Post(ts.URL+"/v1/stream", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-first:
	case <-time.After(5 * time.Second):
		t.Fatal("no answer delivered")
	}
	resp.Body.Close() // disconnect with the enumeration paused at answer 1
	close(resume)

	waitFor(t, 10*time.Second, func() bool {
		return s.Stats().Endpoints["/v1/stream"].InFlight == 0
	})
	if n := produced.Load(); n >= longPathAnswers {
		t.Fatalf("server enumerated all %d answers despite the disconnect", n)
	}
	tr.CloseIdleConnections()
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before request, %d after disconnect", baseline, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// A deadline expiring mid-stream truncates the NDJSON body with a
// terminal error object line; the typed client surfaces it from errf
// as *APIError{code: canceled} after yielding the delivered prefix.
func TestStreamDeadlineTrailer(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.onStreamAnswer = func(n int) {
		if n == 1 {
			time.Sleep(150 * time.Millisecond) // outlive the request deadline
		}
	}
	c := client.New(ts.URL)
	req := longPathRequest()
	req.TimeoutMS = 50

	var got [][]int
	seq, errf := c.Stream(context.Background(), req)
	for tup := range seq {
		got = append(got, tup)
	}
	err := errf()
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Info.Code != api.CodeCanceled {
		t.Fatalf("want APIError canceled, got %v (after %d answers)", err, len(got))
	}
	if len(got) == 0 || len(got) >= longPathAnswers {
		t.Fatalf("want a truncated non-empty prefix, got %d answers", len(got))
	}
}

// /v1/stream rejects trace:true up front — a stream response has
// nowhere to put the trace block — with the same bad_request shape the
// ranking-knob validation uses.
func TestStreamRejectsTrace(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, _, body := post(t, ts, "/v1/stream",
		`{"query":"Q(x) :- E(x,y)","exact":true,"database":{"E":[[1,2]]},"trace":true}`)
	var e api.ErrorResponse
	if err := json.Unmarshal([]byte(body), &e); err != nil {
		t.Fatalf("non-JSON error body %q", body)
	}
	if status != 400 || e.Error.Code != api.CodeBadRequest || !strings.Contains(e.Error.Message, "trace") {
		t.Fatalf("status %d, error %+v; want 400 bad_request mentioning trace", status, e.Error)
	}
}

// The typed client round-trips a complete request cycle against a real
// server: prepare (miss then hit), eval by key, eval/bool, stream, and
// stats — plus typed error decoding.
func TestClientRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	c := client.New(ts.URL).WithHTTPClient(ts.Client())
	ctx := context.Background()

	prep, err := c.Prepare(ctx, api.PrepareRequest{Query: "Q(x) :- E(x,y), E(y,z), E(z,x)", Class: "TW1"})
	if err != nil {
		t.Fatal(err)
	}
	if prep.CacheHit || prep.Key == "" || prep.Plan != "yannakakis" {
		t.Fatalf("prepare = %+v", prep)
	}
	prep2, err := c.Prepare(ctx, api.PrepareRequest{Query: "Q(x) :- E(x,y), E(y,z), E(z,x)", Class: "TW1"})
	if err != nil {
		t.Fatal(err)
	}
	if !prep2.CacheHit || prep2.Key != prep.Key {
		t.Fatalf("second prepare = %+v", prep2)
	}

	db := api.Database{"E": {{1, 2}, {2, 1}, {2, 2}, {3, 4}}}
	res, err := c.Eval(ctx, api.EvalRequest{Key: prep.Key, Database: db})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 2 { // 1 and 2 close a 2-cycle; 3 does not
		t.Fatalf("eval = %+v", res)
	}
	ok, err := c.EvalBool(ctx, api.EvalRequest{Key: prep.Key, Database: db})
	if err != nil || !ok {
		t.Fatalf("evalbool = %v, %v", ok, err)
	}

	var streamed [][]int
	seq, errf := c.Stream(ctx, api.EvalRequest{Key: prep.Key, Database: db})
	for tup := range seq {
		streamed = append(streamed, tup)
	}
	if err := errf(); err != nil {
		t.Fatal(err)
	}
	if len(streamed) != res.Count {
		t.Fatalf("stream delivered %d answers, eval %d", len(streamed), res.Count)
	}

	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Cache.Hits == 0 || stats.Endpoints["/v1/eval"].Requests != 1 {
		t.Fatalf("stats = %+v", stats)
	}

	_, err = c.Prepare(ctx, api.PrepareRequest{Query: "Q(x) :- E(x,", Class: "TW1"})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Info.Code != api.CodeParseError || apiErr.Status != 400 {
		t.Fatalf("want parse_error APIError, got %v", err)
	}
	if apiErr.Info.Line != 1 || apiErr.Info.Col != 13 {
		t.Fatalf("parse position lost: %+v", apiErr.Info)
	}
}
