package server

import (
	"context"
	"encoding/json"
	"fmt"
	"iter"
	"net/http"
	"strings"
	"time"

	"cqapprox"
	"cqapprox/api"
	"cqapprox/internal/cluster"
)

// decodeJSON reads the request body into dst, writing a bad_request
// error and returning false on malformed input. Handlers decode (i.e.
// finish the body transfer) before acquiring an admission slot, so
// slow uploads cannot squat on the bounded pools.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(dst); err != nil {
		writeError(w, errBadRequest(fmt.Sprintf("decoding request body: %v", err)))
		return false
	}
	return true
}

// target resolves the inline-query half of a request — parse the query,
// resolve the class name. Exact preparations always use the engine's
// default options (that is how the engine keys them), so options on an
// exact request are rejected rather than silently ignored.
func (s *Server) target(query, class string, exact, hasOptions bool) (*cqapprox.Query, cqapprox.Class, *apiError) {
	if query == "" {
		return nil, nil, errBadRequest("query required (or pass a key from /v1/prepare)")
	}
	q, err := cqapprox.Parse(query)
	if err != nil {
		return nil, nil, mapError(err)
	}
	switch {
	case exact && class != "":
		return nil, nil, errBadRequest("class and exact are mutually exclusive")
	case exact && hasOptions:
		return nil, nil, errBadRequest("options apply to class preparations only; exact uses the server defaults")
	case !exact && class == "":
		return nil, nil, errBadRequest("class required (or set exact for the unapproximated query)")
	case exact:
		return q, nil, nil
	}
	c, err := api.ParseClass(class)
	if err != nil {
		return nil, nil, errBadRequest(err.Error())
	}
	return q, c, nil
}

// preparedFor runs (or cache-hits) the engine pipeline for a resolved
// inline query. An uncached preparation — whatever endpoint it arrives
// on — must hold a prepare admission slot: that is the bound protecting
// the NP-hard search, and an inline /v1/eval query would otherwise
// sidestep it. The cache probe only gates admission (hits bypass the
// slot); the preparation itself always goes through Engine.Prepare*,
// which keeps hit accounting and caller-identity rebinding intact.
// The probe is racy against eviction/insertion, but the race is
// benign: at worst one search runs slotless or one hit holds a slot
// briefly.
func (s *Server) preparedFor(ctx context.Context, q *cqapprox.Query, c cqapprox.Class, opt cqapprox.Options) (*cqapprox.PreparedQuery, string, *apiError) {
	key, err := s.eng.CacheKey(q, c, opt)
	if err != nil {
		return nil, "", mapError(err)
	}
	if _, cached := s.eng.Cached(key); !cached {
		if !tryAcquire(s.prepareSem) {
			return nil, "", errOverloaded()
		}
		defer release(s.prepareSem)
		if s.onPrepareStart != nil {
			s.onPrepareStart()
		}
	}
	var p *cqapprox.PreparedQuery
	if c == nil {
		p, err = s.eng.PrepareExact(ctx, q)
	} else {
		p, err = s.eng.PrepareOpt(ctx, q, c, opt)
	}
	if err != nil {
		return nil, "", mapError(err)
	}
	return p, key, nil
}

func (s *Server) handlePrepare(w http.ResponseWriter, r *http.Request) {
	var req api.PrepareRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	q, c, apiErr := s.target(req.Query, req.Class, req.Exact, req.Options != nil)
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	opt := req.Options.ToOptions(s.eng.Options())
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()
	p, key, apiErr := s.preparedFor(ctx, q, c, opt)
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	writeJSON(w, http.StatusOK, api.NewPrepareResponse(p, api.EncodeKey(key)))
}

// handleExplain answers POST /v1/explain: the structured EXPLAIN view
// of a prepared (by key) or inline query — approximation chosen,
// join-forest shape, re-rooting, dead-step eliminations, counting
// classification — plus its stable text rendering. Inline queries run
// (or cache-hit) the prepare pipeline under the same admission bound
// as /v1/prepare; a parse phase is prepended to the prepare timings.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req api.ExplainRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	var (
		p       *cqapprox.PreparedQuery
		rawKey  string
		parseNS int64
	)
	if req.Key != "" {
		raw, err := api.DecodeKey(req.Key)
		if err != nil {
			writeError(w, errBadRequest(err.Error()))
			return
		}
		cached, ok := s.eng.Cached(raw)
		if !ok {
			writeError(w, errUnknownKey())
			return
		}
		p, rawKey = cached, raw
	} else {
		t0 := time.Now()
		q, c, apiErr := s.target(req.Query, req.Class, req.Exact, req.Options != nil)
		if apiErr != nil {
			writeError(w, apiErr)
			return
		}
		parseNS = time.Since(t0).Nanoseconds()
		ctx, cancel := s.requestContext(r, req.TimeoutMS)
		defer cancel()
		p, rawKey, apiErr = s.preparedFor(ctx, q, c, req.Options.ToOptions(s.eng.Options()))
		if apiErr != nil {
			writeError(w, apiErr)
			return
		}
	}
	ex := p.Explain()
	if parseNS > 0 {
		ex.Prepare = append([]cqapprox.Phase{{Name: "parse", NS: parseNS}}, ex.Prepare...)
	}
	writeJSON(w, http.StatusOK, api.ExplainResponse{
		Key:     api.EncodeKey(rawKey),
		Explain: ex,
		Text:    ex.Text(),
	})
}

// resolve turns an EvalRequest into the prepared query to evaluate:
// by cache key when given, via preparedFor for an inline query.
func (s *Server) resolve(ctx context.Context, req api.EvalRequest) (*cqapprox.PreparedQuery, *apiError) {
	if req.Key != "" {
		raw, err := api.DecodeKey(req.Key)
		if err != nil {
			return nil, errBadRequest(err.Error())
		}
		p, ok := s.eng.Cached(raw)
		if !ok {
			return nil, errUnknownKey()
		}
		return p, nil
	}
	q, c, apiErr := s.target(req.Query, req.Class, req.Exact, req.Options != nil)
	if apiErr != nil {
		return nil, apiErr
	}
	p, _, apiErr := s.preparedFor(ctx, q, c, req.Options.ToOptions(s.eng.Options()))
	return p, apiErr
}

// handleRegisterDB registers (or replaces) a named database snapshot —
// the one-time indexing cost that later eval-by-name requests amortize
// — or, when the request carries a delta instead of a database,
// applies the change set copy-on-write to the existing registration.
// The structure build / snapshot fork is data-sized work, so the
// request holds an eval admission slot like the other data-touching
// endpoints (taken after the decode, as everywhere else). Every
// successful change is published to the name's /v1/subscribe watchers:
// deltas carry the atomic (prev, next, delta) link so subscriptions
// advance incrementally, replacements force a resynchronising
// re-evaluation.
func (s *Server) handleRegisterDB(w http.ResponseWriter, r *http.Request) {
	var req api.RegisterDBRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if req.Name == "" {
		writeError(w, errBadRequest("name required"))
		return
	}
	if strings.ContainsRune(req.Name, 0) {
		// NUL is the shard-slice namespace separator (see shardDBName);
		// keeping it out of client names keeps the namespaces disjoint.
		writeError(w, errBadRequest("name must not contain NUL bytes"))
		return
	}
	if !s.acquire(s.evalSem, w) {
		return
	}
	defer release(s.evalSem)
	if req.Delta != nil {
		if len(req.Database) > 0 {
			writeError(w, errBadRequest("database and delta are mutually exclusive (register a snapshot or update the existing one, not both)"))
			return
		}
		delta, err := req.Delta.ToDelta()
		if err != nil {
			writeError(w, errBadRequest(err.Error()))
			return
		}
		if _, ok := s.eng.DB(req.Name); !ok {
			writeError(w, errUnknownDB(req.Name))
			return
		}
		u, err := s.eng.ApplyDB(req.Name, delta)
		if err != nil {
			writeError(w, errBadRequest(err.Error()))
			return
		}
		s.notify(req.Name, subEvent{prev: u.Prev, next: u.Next, delta: u.Delta})
		applied := true
		if s.cluster != nil {
			if pl := s.cluster.placementOf(req.Name); pl != nil {
				// Forward the routed slices to the owning shards. A peer
				// failure surfaces as 502 even though the local copy
				// already advanced: deltas are idempotent, so the client
				// simply retries the same request.
				ctx, cancel := s.requestContext(r, 0)
				all, err := s.cluster.forwardDelta(ctx, s.eng, req.Name, pl, u.Delta)
				cancel()
				if err != nil {
					writeError(w, mapError(err))
					return
				}
				applied = all
			}
		}
		writeJSON(w, http.StatusOK, api.RegisterDBResponse{
			Name:      u.Next.Name(),
			Version:   u.Next.Version(),
			Relations: len(u.Next.Relations()),
			Facts:     u.Next.NumFacts(),
			Replaced:  true,
			Applied:   applied,
		})
		return
	}
	db, err := req.Database.ToStructure()
	if err != nil {
		writeError(w, errBadRequest(err.Error()))
		return
	}
	d, replaced, err := s.eng.RegisterDB(req.Name, db)
	if err != nil {
		writeError(w, errBadRequest(err.Error()))
		return
	}
	s.notify(req.Name, subEvent{next: d})
	if s.cluster != nil {
		// Shard the registration across the peers. A failed push is not
		// an error to the client — the full local copy just registered
		// serves the name correctly either way; the node merely keeps
		// answering without fan-out (peer_errors records the incident).
		ctx, cancel := s.requestContext(r, 0)
		if err := s.cluster.registerSharded(ctx, s.eng, req.Name, db); err != nil && s.cfg.Logger != nil {
			s.cfg.Logger.Warn("cluster shard push failed; serving from the local full copy",
				"db", req.Name, "error", err)
		}
		cancel()
	}
	writeJSON(w, http.StatusOK, api.RegisterDBResponse{
		Name:      d.Name(),
		Version:   d.Version(),
		Relations: len(d.Relations()),
		Facts:     d.NumFacts(),
		Replaced:  replaced,
	})
}

// dbSource is an eval request's resolved database: exactly one of an
// inline per-request structure or a registered snapshot. The three
// evaluation endpoints go through its methods so inline and registered
// traffic share one code path per endpoint. On a cluster-configured
// server whose named database carries a recorded shard placement, the
// cluster fields are set and the materialising methods route through
// the scatter-gather trichotomy first (see internal/server/cluster.go);
// everything else — inline databases, unsharded names, single-node
// servers — takes the local path untouched.
type dbSource struct {
	inline *cqapprox.Structure
	bind   func(*cqapprox.PreparedQuery) *cqapprox.BoundQuery

	// The cluster routing context; pl non-nil only when srv.cluster is
	// too and the named database is sharded.
	srv *Server
	pl  *cluster.Placement
	req api.EvalRequest
}

func (d dbSource) eval(ctx context.Context, p *cqapprox.PreparedQuery, opts []cqapprox.EvalOption) (cqapprox.Answers, error) {
	if d.pl != nil {
		if _, scatter := d.srv.cluster.route(p, d.pl); scatter {
			return d.srv.cluster.scatterEval(ctx, d.srv.eng, p, d.req)
		}
	}
	if d.inline != nil {
		return p.Eval(ctx, d.inline, opts...)
	}
	return d.bind(p).Eval(ctx, opts...)
}

func (d dbSource) evalBool(ctx context.Context, p *cqapprox.PreparedQuery) (bool, error) {
	if d.pl != nil {
		if _, scatter := d.srv.cluster.route(p, d.pl); scatter {
			return d.srv.cluster.scatterBool(ctx, d.srv.eng, p, d.req)
		}
	}
	if d.inline != nil {
		return p.EvalBool(ctx, d.inline)
	}
	return d.bind(p).EvalBool(ctx)
}

func (d dbSource) evalTrace(ctx context.Context, p *cqapprox.PreparedQuery) (cqapprox.Answers, *cqapprox.ExecTrace, error) {
	if d.pl != nil {
		// A trace describes one local execution; traced requests never
		// scatter (the full copy answers, the counters record why).
		d.srv.cluster.noteLocal(p, d.pl)
	}
	if d.inline != nil {
		return p.EvalTrace(ctx, d.inline)
	}
	return d.bind(p).EvalTrace(ctx)
}

func (d dbSource) evalBoolTrace(ctx context.Context, p *cqapprox.PreparedQuery) (bool, *cqapprox.ExecTrace, error) {
	if d.pl != nil {
		d.srv.cluster.noteLocal(p, d.pl)
	}
	if d.inline != nil {
		return p.EvalBoolTrace(ctx, d.inline)
	}
	return d.bind(p).EvalBoolTrace(ctx)
}

func (d dbSource) answersErr(ctx context.Context, p *cqapprox.PreparedQuery, opts []cqapprox.EvalOption) (iter.Seq[cqapprox.Tuple], func() error) {
	if d.pl != nil {
		// Streams enumerate lazily; a scatter would have to materialise
		// every shard's answers before the first line. Local it is.
		d.srv.cluster.noteLocal(p, d.pl)
	}
	if d.inline != nil {
		return p.AnswersErr(ctx, d.inline, opts...)
	}
	return d.bind(p).AnswersErr(ctx, opts...)
}

// clusterCount consults the routing trichotomy for a count against a
// sharded database: (res, true, err) when scatter-gather summing
// answered (or failed) it, (nil, false, nil) when the caller should
// count locally — the local-outcome counters are bumped here.
func (d dbSource) clusterCount(ctx context.Context, p *cqapprox.PreparedQuery, req api.CountRequest, opts []cqapprox.CountOption) (*cqapprox.CountResult, bool, error) {
	if d.pl == nil {
		return nil, false, nil
	}
	ctl := d.srv.cluster
	if req.Trace {
		ctl.noteLocal(p, d.pl)
		return nil, false, nil
	}
	occ := p.PartitionedOccurrences(d.pl.Partitioned)
	switch {
	case occ == 0:
		ctl.routedLocal.Add(1)
	case occ == 1 && p.CountSummable(d.pl.Partitioned):
		res, err := ctl.scatterCount(ctx, d.srv.eng, p, req, opts)
		return res, true, err
	default:
		// ≥2 partitioned occurrences, or per-shard answer sets that may
		// overlap (the partitioned atom binds non-head variables): a sum
		// would overcount, so the local full copy answers.
		ctl.scatterFallbacks.Add(1)
	}
	return nil, false, nil
}

func (d dbSource) count(ctx context.Context, p *cqapprox.PreparedQuery, opts []cqapprox.CountOption) (*cqapprox.CountResult, error) {
	if d.inline != nil {
		return p.Count(ctx, d.inline, opts...)
	}
	return d.bind(p).Count(ctx, opts...)
}

func (d dbSource) estimateCount(ctx context.Context, p *cqapprox.PreparedQuery, opts []cqapprox.CountOption) (*cqapprox.CountResult, error) {
	if d.inline != nil {
		return p.EstimateCount(ctx, d.inline, opts...)
	}
	return d.bind(p).EstimateCount(ctx, opts...)
}

// resolveDB turns the request's database half into a dbSource: a
// registered snapshot when DB names one, the inline structure
// otherwise. Naming and shipping at once is rejected rather than
// silently preferring one.
func (s *Server) resolveDB(req api.EvalRequest) (dbSource, *apiError) {
	if req.DB != "" {
		if len(req.Database) > 0 {
			return dbSource{}, errBadRequest("db and database are mutually exclusive (name a registered database or ship one inline, not both)")
		}
		if strings.ContainsRune(req.DB, 0) {
			// Shard slices live under NUL-prefixed internal names;
			// client requests cannot address them.
			return dbSource{}, errBadRequest("db must not contain NUL bytes")
		}
		d, ok := s.eng.DB(req.DB)
		if !ok {
			return dbSource{}, errUnknownDB(req.DB)
		}
		src := dbSource{bind: func(p *cqapprox.PreparedQuery) *cqapprox.BoundQuery { return p.Bind(d) }}
		if s.cluster != nil {
			if pl := s.cluster.placementOf(req.DB); pl != nil {
				src.srv, src.pl, src.req = s, pl, req
			}
		}
		return src, nil
	}
	db, err := req.Database.ToStructure()
	if err != nil {
		return dbSource{}, errBadRequest(err.Error())
	}
	return dbSource{inline: db}, nil
}

// rankOpts translates the request's ranked-evaluation knobs into the
// library options /v1/eval and /v1/stream pass through; checkRankKnobs
// has already validated them.
func rankOpts(req api.EvalRequest) []cqapprox.EvalOption {
	var opts []cqapprox.EvalOption
	if len(req.Order) > 0 {
		opts = append(opts, cqapprox.WithOrder(req.Order...))
	}
	if req.Descending {
		opts = append(opts, cqapprox.WithDescending())
	}
	if req.Limit > 0 {
		opts = append(opts, cqapprox.WithLimit(req.Limit))
	}
	return opts
}

// checkRankKnobs validates the ranked-evaluation knobs of a request.
// Endpoints that cannot honor them (eval-bool, count) pass
// allowed=false and reject rather than silently ignoring; the
// order-variable names themselves are validated against the head later,
// by the library (mapped to bad_request via ErrBadOrder).
func checkRankKnobs(req api.EvalRequest, allowed bool) *apiError {
	if !allowed {
		if len(req.Order) > 0 || req.Descending || req.Limit != 0 {
			return errBadRequest("order, descending and limit apply to eval and stream requests only")
		}
		return nil
	}
	if req.Limit < 0 {
		return errBadRequest("limit must be nonnegative (0 means unlimited)")
	}
	return nil
}

// clampParallelism resolves a request's evaluation worker budget
// against the configured cap: absent (or ≤1) stays serial, anything
// above MaxParallelism is clamped rather than rejected — the budget is
// advisory, answers are identical at any setting.
func (s *Server) clampParallelism(n int) int {
	if n <= 1 {
		return 1
	}
	return min(n, s.cfg.MaxParallelism)
}

// evalWith factors the shared shape of the evaluation endpoints after
// their own decode and knob validation: resolve the database half,
// take an eval admission slot, resolve the prepared query under the
// request deadline, apply the clamped per-request worker budget, and
// hand off to the endpoint's terminal action. run owns the response on
// success.
func (s *Server) evalWith(w http.ResponseWriter, r *http.Request, req api.EvalRequest, run func(ctx context.Context, p *cqapprox.PreparedQuery, db dbSource)) {
	db, apiErr := s.resolveDB(req)
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	if !s.acquire(s.evalSem, w) {
		return
	}
	defer release(s.evalSem)
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()
	p, apiErr := s.resolve(ctx, req)
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	par := req.Parallelism
	if par <= 0 {
		// Absent budgets inherit the engine's configured default —
		// which the per-request cap still bounds, exactly like an
		// explicit budget.
		par = p.Parallelism()
	}
	run(ctx, p.Parallel(s.clampParallelism(par)), db)
}

func (s *Server) handleEval(w http.ResponseWriter, r *http.Request) {
	var req api.EvalRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if apiErr := checkRankKnobs(req, true); apiErr != nil {
		writeError(w, apiErr)
		return
	}
	ranked := len(req.Order) > 0 || req.Descending || req.Limit > 0
	if req.Trace && ranked {
		writeError(w, errBadRequest("trace cannot be combined with order, descending or limit"))
		return
	}
	s.evalWith(w, r, req, func(ctx context.Context, p *cqapprox.PreparedQuery, db dbSource) {
		if req.Trace {
			ans, tr, err := db.evalTrace(ctx, p)
			if err != nil {
				writeError(w, mapError(err))
				return
			}
			setTrace(w, tr)
			writeJSON(w, http.StatusOK, api.EvalResponse{Answers: api.FromAnswers(ans), Count: len(ans), Trace: tr})
			return
		}
		ans, err := db.eval(ctx, p, rankOpts(req))
		if err != nil {
			writeError(w, mapError(err))
			return
		}
		writeJSON(w, http.StatusOK, api.EvalResponse{Answers: api.FromAnswers(ans), Count: len(ans)})
	})
}

func (s *Server) handleEvalBool(w http.ResponseWriter, r *http.Request) {
	var req api.EvalRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if apiErr := checkRankKnobs(req, false); apiErr != nil {
		writeError(w, apiErr)
		return
	}
	s.evalWith(w, r, req, func(ctx context.Context, p *cqapprox.PreparedQuery, db dbSource) {
		if req.Trace {
			res, tr, err := db.evalBoolTrace(ctx, p)
			if err != nil {
				writeError(w, mapError(err))
				return
			}
			setTrace(w, tr)
			writeJSON(w, http.StatusOK, api.EvalBoolResponse{Result: res, Trace: tr})
			return
		}
		res, err := db.evalBool(ctx, p)
		if err != nil {
			writeError(w, mapError(err))
			return
		}
		writeJSON(w, http.StatusOK, api.EvalBoolResponse{Result: res})
	})
}

// handleCount answers POST /v1/count: the exact answer count, or —
// with estimate:true — the sampling estimator's (1±ε, 1-δ) count for
// plans where exact counting would materialise answers. Admission,
// query/database addressing, parallelism clamping and the error
// taxonomy are exactly /v1/eval's; the extra knobs are validated up
// front so a bad ε fails before any work runs.
func (s *Server) handleCount(w http.ResponseWriter, r *http.Request) {
	var req api.CountRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if apiErr := checkRankKnobs(req.EvalRequest, false); apiErr != nil {
		writeError(w, apiErr)
		return
	}
	if !req.Estimate && (req.Epsilon != 0 || req.Delta != 0 || req.Seed != nil || req.MaxSamples != 0) {
		writeError(w, errBadRequest("epsilon, delta, seed and max_samples apply to estimate requests only"))
		return
	}
	if req.Epsilon < 0 || req.Epsilon > 1 {
		writeError(w, errBadRequest("epsilon must be in (0, 1] (0 means the server default)"))
		return
	}
	if req.Delta < 0 || req.Delta >= 1 {
		writeError(w, errBadRequest("delta must be in (0, 1) (0 means the server default)"))
		return
	}
	if req.MaxSamples < 0 {
		writeError(w, errBadRequest("max_samples must be positive (0 means the server default)"))
		return
	}
	var opts []cqapprox.CountOption
	if req.Epsilon > 0 {
		opts = append(opts, cqapprox.WithEpsilon(req.Epsilon))
	}
	if req.Delta > 0 {
		opts = append(opts, cqapprox.WithDelta(req.Delta))
	}
	if req.Seed != nil {
		opts = append(opts, cqapprox.WithSeed(*req.Seed))
	}
	if req.MaxSamples > 0 {
		opts = append(opts, cqapprox.WithMaxSamples(req.MaxSamples))
	}
	if req.Trace {
		opts = append(opts, cqapprox.WithTrace())
	}
	s.evalWith(w, r, req.EvalRequest, func(ctx context.Context, p *cqapprox.PreparedQuery, db dbSource) {
		var res *cqapprox.CountResult
		var err error
		if cres, handled, cerr := db.clusterCount(ctx, p, req, opts); handled {
			res, err = cres, cerr
		} else if req.Estimate {
			res, err = db.estimateCount(ctx, p, opts)
		} else {
			res, err = db.count(ctx, p, opts)
		}
		if err != nil {
			writeError(w, mapError(err))
			return
		}
		setTrace(w, res.Trace)
		writeJSON(w, http.StatusOK, api.CountResponse{
			Count:     res.Count,
			Estimate:  res.Estimate,
			Estimated: res.Estimated,
			Mode:      res.Mode,
			Samples:   res.Samples,
			Batches:   res.Batches,
			Epsilon:   res.Epsilon,
			Delta:     res.Delta,
			Trace:     res.Trace,
		})
	})
}

// handleStream writes answers as NDJSON — one JSON array per line,
// flushed as produced, so the first answer reaches the client before
// the rest are even enumerated (the plan streams via iter.Seq; nothing
// is materialized). A terminal JSON *object* line carries the error if
// the enumeration was truncated (deadline or disconnect); clients
// distinguish the two shapes by the first byte. Closing the connection
// cancels the enumeration promptly through the request context.
// Order/Descending switch the stream to ranked enumeration; Limit ends
// the stream (and the response) after Limit answer lines.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	var req api.EvalRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if apiErr := checkRankKnobs(req, true); apiErr != nil {
		writeError(w, apiErr)
		return
	}
	if req.Trace {
		// A stream response has nowhere to carry the trace block, so the
		// knob is rejected up front — same shape as the rank-knob
		// validation — rather than silently ignored.
		writeError(w, errBadRequest("trace applies to eval, eval/bool and count requests only (a stream response carries no trace block)"))
		return
	}
	s.evalWith(w, r, req, func(ctx context.Context, p *cqapprox.PreparedQuery, db dbSource) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		flusher, _ := w.(http.Flusher)
		flush := func() {
			if flusher != nil {
				flusher.Flush()
			}
		}
		enc := json.NewEncoder(w) // Encode appends \n: exactly one answer per line
		seq, errf := db.answersErr(ctx, p, rankOpts(req))
		n := 0
		for t := range seq {
			if err := enc.Encode([]int(t)); err != nil {
				return // client gone; ctx cancellation is already unwinding seq
			}
			flush()
			n++
			if s.onStreamAnswer != nil {
				s.onStreamAnswer(n)
			}
		}
		if err := errf(); err != nil {
			// The status is committed at 200, so instrument cannot see
			// this failure — count it here or the stream endpoint would
			// never report errors.
			s.metrics.byName[epStream].errors.Add(1)
			info := mapError(err).info
			_ = enc.Encode(api.ErrorResponse{Error: &info})
			flush()
		}
	})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}
