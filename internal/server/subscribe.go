package server

// The live-query subscription subsystem behind POST /v1/subscribe.
//
// A subscription is a long-lived NDJSON response whose handler
// goroutine doubles as the subscriber loop: it materialises the query
// once through cqapprox's incremental evaluator, registers itself
// under the database's name, and then alternates between waiting for
// update events and writing diff frames. Updates arrive from the
// /v1/db handler, which publishes every successful registration,
// replacement and delta application to the name's subscribers through
// per-subscriber bounded queues — the publisher never blocks on a slow
// reader. Queue overflow invokes Config.SlowConsumerPolicy: drop the
// backlog and push one resync frame carrying the full answer set
// (default), or disconnect with the stable error code slow_consumer.
//
// Frame semantics are exact at every step: each frame's added/removed
// patch the client's previous state to the answer set at the frame's
// version, whether the server propagated the batch through the reduced
// join forest (work proportional to the delta) or fell back to a full
// re-evaluation (wholesale replacement, oversized delta, naive plan —
// the frame says which). Bursts coalesce: all updates queued when the
// subscriber wakes (plus whatever lands within Config.CoalesceWindow)
// net out into a single frame.

import (
	"context"
	"encoding/json"
	"net/http"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cqapprox"
	"cqapprox/api"
)

// subEvent is one registered-database change as published to
// subscribers: the resulting snapshot, plus — for delta updates — the
// snapshot the delta was applied to and the delta itself. A nil delta
// (wholesale replacement via POST /v1/db with a database) forces the
// subscriber through a resynchronising re-evaluation; the diff it
// emits is still exact.
type subEvent struct {
	prev  *cqapprox.Database
	next  *cqapprox.Database
	delta *cqapprox.Delta
}

// subscriber is one live /v1/subscribe connection's queue state. The
// handler goroutine owns the receiving side; the /v1/db handler
// publishes into ch without ever blocking (see subRegistry.notify).
type subscriber struct {
	ch       chan subEvent
	overflow atomic.Bool   // resync policy: events were dropped
	kicked   chan struct{} // disconnect policy: closed exactly once
	kickOnce sync.Once
}

func (sub *subscriber) kick() { sub.kickOnce.Do(func() { close(sub.kicked) }) }

// subRegistry fans database updates out to the name's subscribers.
type subRegistry struct {
	mu   sync.Mutex
	byDB map[string]map[*subscriber]struct{}
}

func (r *subRegistry) add(db string, sub *subscriber) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.byDB == nil {
		r.byDB = map[string]map[*subscriber]struct{}{}
	}
	if r.byDB[db] == nil {
		r.byDB[db] = map[*subscriber]struct{}{}
	}
	r.byDB[db][sub] = struct{}{}
}

func (r *subRegistry) remove(db string, sub *subscriber) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.byDB[db], sub)
	if len(r.byDB[db]) == 0 {
		delete(r.byDB, db)
	}
}

// notify publishes ev to every subscriber of db without blocking: a
// full queue marks the subscriber overflowed (resync policy) or kicks
// it (disconnect policy). Called from the /v1/db handler on every
// successful registration, replacement or delta application.
func (s *Server) notify(db string, ev subEvent) {
	s.subs.mu.Lock()
	targets := make([]*subscriber, 0, len(s.subs.byDB[db]))
	for sub := range s.subs.byDB[db] {
		targets = append(targets, sub)
	}
	s.subs.mu.Unlock()
	for _, sub := range targets {
		select {
		case sub.ch <- ev:
		default:
			if s.cfg.SlowConsumerPolicy == SlowConsumerDisconnect {
				sub.kick()
			} else {
				sub.overflow.Store(true)
			}
		}
	}
}

// Drain ends every live subscription (their handlers return, so an
// http.Server.Shutdown that would otherwise wait on the long-lived
// connections can complete). New subscriptions after Drain end
// immediately after their init frame. Safe to call more than once.
func (s *Server) Drain() {
	s.drainOnce.Do(func() { close(s.drainCh) })
}

// subStats holds the /v1/stats subscription counters.
type subStats struct {
	active        atomic.Int64
	total         atomic.Uint64
	notifications atomic.Uint64
	resyncs       atomic.Uint64
	slowDrops     atomic.Uint64
}

func (st *subStats) snapshot() api.SubscriptionStats {
	return api.SubscriptionStats{
		Active:            st.active.Load(),
		Subscriptions:     st.total.Load(),
		Notifications:     st.notifications.Load(),
		Resyncs:           st.resyncs.Load(),
		SlowConsumerDrops: st.slowDrops.Load(),
	}
}

// handleSubscribe answers POST /v1/subscribe: resolve the prepared
// query and the registered database, evaluate once, then stream NDJSON
// diff frames until the client disconnects, the server drains, or the
// slow-consumer policy disconnects. The handler goroutine is the
// subscriber loop — its return is the teardown, which instrument
// observes like any other request.
func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	var req api.SubscribeRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if req.DB == "" {
		writeError(w, errBadRequest("db required (subscriptions follow databases registered via POST /v1/db; inline databases never update)"))
		return
	}
	if strings.ContainsRune(req.DB, 0) {
		// Internal shard slices (NUL-prefixed names) are not
		// subscribable — they change without notification.
		writeError(w, errBadRequest("db must not contain NUL bytes"))
		return
	}
	// Setup runs under the request timeout like any evaluation; the
	// subscription itself outlives it.
	setupCtx, cancel := s.requestContext(r, req.TimeoutMS)
	p, apiErr := s.resolve(setupCtx, api.EvalRequest{
		Key: req.Key, Query: req.Query, Class: req.Class, Exact: req.Exact, Options: req.Options,
	})
	if apiErr != nil {
		cancel()
		writeError(w, apiErr)
		return
	}
	par := req.Parallelism
	if par <= 0 {
		par = p.Parallelism()
	}
	p = p.Parallel(s.clampParallelism(par))

	// Register before reading the snapshot: an update landing between
	// the initial evaluation and registration would otherwise be lost.
	// Events older than the evaluated version net to empty diffs.
	sub := &subscriber{ch: make(chan subEvent, s.cfg.SubscriberQueue), kicked: make(chan struct{})}
	s.subs.add(req.DB, sub)
	defer s.subs.remove(req.DB, sub)

	db, ok := s.eng.DB(req.DB)
	if !ok {
		cancel()
		writeError(w, errUnknownDB(req.DB))
		return
	}
	// The initial evaluation is data-sized work and holds an eval
	// admission slot like /v1/eval; the slot is released before the
	// stream starts — a parked watcher must not starve evaluations.
	if !s.acquire(s.evalSem, w) {
		cancel()
		return
	}
	ie, err := p.Bind(db).Incremental(setupCtx)
	release(s.evalSem)
	cancel()
	if err != nil {
		writeError(w, mapError(err))
		return
	}

	s.subStats.total.Add(1)
	s.subStats.active.Add(1)
	defer s.subStats.active.Add(-1)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w) // Encode appends \n: one frame per line
	frames := 0
	push := func(f api.DiffFrame) bool {
		if err := enc.Encode(f); err != nil {
			return false // client gone
		}
		if flusher != nil {
			flusher.Flush()
		}
		s.subStats.notifications.Add(1)
		frames++
		if s.onSubscribeFrame != nil {
			s.onSubscribeFrame(frames)
		}
		return true
	}
	if !push(api.DiffFrame{Version: ie.Version(), Added: api.FromAnswers(ie.Answers()), Init: true}) {
		return
	}

	ctx := r.Context()
	for {
		var ev subEvent
		select {
		case <-ctx.Done():
			return
		case <-s.drainCh:
			return
		case <-sub.kicked:
			s.subStats.slowDrops.Add(1)
			s.metrics.byName[epSubscribe].errors.Add(1)
			push(api.DiffFrame{Version: ie.Version(), Error: &api.ErrorInfo{
				Code:    api.CodeSlowConsumer,
				Message: "subscriber fell behind the update stream and the server is configured to disconnect slow consumers; re-subscribe for a fresh init frame",
			}})
			return
		case ev = <-sub.ch:
		}
		batch := []subEvent{ev}
		batch = s.coalesce(ctx, sub, batch)
		frame, ok := s.advanceBatch(ctx, ie, sub, req.DB, batch)
		if !ok {
			return // an advance failed (context cancelled mid-update)
		}
		if !push(frame) {
			return
		}
	}
}

// coalesce folds every update already queued — plus, with a positive
// CoalesceWindow, whatever lands within it — into one batch.
func (s *Server) coalesce(ctx context.Context, sub *subscriber, batch []subEvent) []subEvent {
	for {
		select {
		case ev := <-sub.ch:
			batch = append(batch, ev)
			continue
		default:
		}
		break
	}
	if s.cfg.CoalesceWindow <= 0 {
		return batch
	}
	timer := time.NewTimer(s.cfg.CoalesceWindow)
	defer timer.Stop()
	for {
		select {
		case ev := <-sub.ch:
			batch = append(batch, ev)
		case <-timer.C:
			return batch
		case <-ctx.Done():
			return batch
		case <-s.drainCh:
			return batch
		}
	}
}

// advanceBatch drives the maintained state through one coalesced batch
// of updates and folds the per-update diffs into a single net frame.
// An overflow (resync policy) discards the patch semantics: the state
// resynchronises against the database's current registration and the
// frame carries the complete answer set instead.
func (s *Server) advanceBatch(ctx context.Context, ie *cqapprox.IncrementalEval, sub *subscriber, dbName string, batch []subEvent) (api.DiffFrame, bool) {
	var frame api.DiffFrame
	net := map[string]netEntry{}
	for _, ev := range batch {
		delta := ev.delta
		// The delta links ev.prev → ev.next; if the maintained state is
		// not at ev.prev (a replacement slipped in, or overflow dropped
		// the link), only a re-evaluation gives an exact diff.
		if delta == nil || ev.prev == nil || ev.prev.Version() != ie.Version() {
			delta = nil
		}
		diff, err := ie.Advance(ctx, ev.next, delta)
		if err != nil {
			return frame, false
		}
		if diff.Fallback {
			frame.Fallback, frame.Reason = true, diff.Reason
		}
		accumulate(net, diff)
	}
	if sub.overflow.Swap(false) {
		// Updates were dropped between the queue filling up and now:
		// the net diff is not trustworthy. Resynchronise against the
		// current registration and replace the client's state outright.
		s.subStats.resyncs.Add(1)
		if cur, ok := s.eng.DB(dbName); ok && cur.Version() != ie.Version() {
			if _, err := ie.Advance(ctx, cur, nil); err != nil {
				return frame, false
			}
		}
		return api.DiffFrame{
			Version: ie.Version(),
			Added:   api.FromAnswers(ie.Answers()),
			Resync:  true,
		}, true
	}
	frame.Version = ie.Version()
	frame.Added, frame.Removed = netDiff(net)
	return frame, true
}

// netEntry tracks one tuple's net membership change across a batch.
type netEntry struct {
	tuple cqapprox.Tuple
	sign  int // +1 net added, -1 net removed, 0 cancelled out
}

// accumulate folds one exact diff into the net map. Within a batch the
// diffs compose: a tuple added then removed nets to zero, etc.
func accumulate(net map[string]netEntry, d *cqapprox.AnswerDiff) {
	for _, t := range d.Added {
		k := string(t.Key())
		e := net[k]
		e.tuple, e.sign = t, e.sign+1
		net[k] = e
	}
	for _, t := range d.Removed {
		k := string(t.Key())
		e := net[k]
		e.tuple, e.sign = t, e.sign-1
		net[k] = e
	}
}

// netDiff extracts the surviving net changes, each side sorted in the
// canonical answer order.
func netDiff(net map[string]netEntry) (added, removed [][]int) {
	for _, e := range net {
		switch {
		case e.sign > 0:
			added = append(added, []int(e.tuple))
		case e.sign < 0:
			removed = append(removed, []int(e.tuple))
		}
	}
	slices.SortFunc(added, slices.Compare)
	slices.SortFunc(removed, slices.Compare)
	return added, removed
}
