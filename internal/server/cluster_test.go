package server

// End-to-end tests of the scatter-gather cluster mode: n Servers over
// n engines wired to each other through real HTTP, with a single-node
// control server asserting byte-identical responses.

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"cqapprox"
	"cqapprox/internal/cluster"
)

// startTestCluster spins n nodes, each with its own engine, wired to
// the others over real HTTP. The peer URLs must be known before the
// Servers exist, so each httptest server fronts a swappable handler
// that is pointed at its Server once all URLs are collected.
func startTestCluster(t *testing.T, n, replicateBelow int) ([]*Server, []*httptest.Server) {
	t.Helper()
	handlers := make([]atomic.Pointer[http.Handler], n)
	tss := make([]*httptest.Server, n)
	urls := make([]string, n)
	for i := range tss {
		i := i
		tss[i] = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if h := handlers[i].Load(); h != nil {
				(*h).ServeHTTP(w, r)
				return
			}
			http.Error(w, "node not up yet", http.StatusServiceUnavailable)
		}))
		t.Cleanup(tss[i].Close)
		urls[i] = tss[i].URL
	}
	servers := make([]*Server, n)
	for i := range servers {
		servers[i] = New(cqapprox.NewEngine(), Config{Cluster: cluster.Config{
			Peers:          urls,
			Self:           i,
			ReplicateBelow: replicateBelow,
		}})
		h := servers[i].Handler()
		handlers[i].Store(&h)
	}
	return servers, tss
}

// clusterTestDB builds the fact/dimension shape the placement splits:
// one large E (partitioned above the threshold) plus small R1/R2
// (replicated). Deterministic, so cluster and control agree.
func clusterTestDB(nE int) string {
	rng := rand.New(rand.NewSource(7))
	var b strings.Builder
	b.WriteString(`{"E":[`)
	for i := 0; i < nE; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "[%d,%d]", rng.Intn(60), rng.Intn(60))
	}
	b.WriteString(`],"R1":[`)
	for i := 0; i < 30; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "[%d,%d]", i*2, i)
	}
	b.WriteString(`],"R2":[`)
	for i := 0; i < 30; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "[%d,%d]", i*2+1, i)
	}
	b.WriteString(`]}`)
	return b.String()
}

// TestClusterScatterEquivalence drives the same requests at a 3-node
// cluster and a single-node control and requires byte-identical
// response bodies across the whole routing trichotomy: scattered
// evaluations, local-routed (all-replicated) queries, fallbacks (two
// partitioned occurrences), booleans, exact and summed counts, and
// ranked top-k merges.
func TestClusterScatterEquivalence(t *testing.T) {
	servers, tss := startTestCluster(t, 3, 100)
	_, control := newTestServer(t, Config{})

	dbBody := `{"name":"social","database":` + clusterTestDB(600) + `}`
	for _, ts := range []*httptest.Server{tss[0], control} {
		if status, _, body := post(t, ts, "/v1/db", dbBody); status != 200 {
			t.Fatalf("register: status %d body %s", status, body)
		}
	}

	requests := []struct{ name, path, body string }{
		// One occurrence of partitioned E, dims replicated: scatters.
		{"scatter eval", "/v1/eval", `{"query":"Q(x,y) :- E(x,y), R1(x,u), R2(y,v)","exact":true,"db":"social"}`},
		// Class-prepared: the coordinator forwards its chosen
		// approximation, so shards evaluate the identical query.
		{"scatter eval class", "/v1/eval", `{"query":"Q(x,y) :- E(x,y), R1(x,u), R2(y,v)","class":"TW2","db":"social"}`},
		// Only replicated relations: answered from the local full copy.
		{"routed local", "/v1/eval", `{"query":"Q(x) :- R1(x,u), R2(y,x)","exact":true,"db":"social"}`},
		// Two partitioned occurrences: coordinator fallback.
		{"scatter fallback", "/v1/eval", `{"query":"Q(x,z) :- E(x,y), E(y,z)","exact":true,"db":"social"}`},
		// Existence scatters and short-circuits on the first witness.
		{"scatter bool", "/v1/eval/bool", `{"query":"Q() :- E(x,y), R1(y,u)","exact":true,"db":"social"}`},
		{"scatter bool empty", "/v1/eval/bool", `{"query":"Q() :- E(x,x), R1(x,x)","exact":true,"db":"social"}`},
		// Exact count, summable: per-shard DP counts add.
		{"count sum", "/v1/count", `{"query":"Q(x,y) :- E(x,y), R1(x,u)","exact":true,"db":"social"}`},
		// Partitioned atom binds a non-head variable: not summable,
		// falls back — still identical.
		{"count fallback", "/v1/count", `{"query":"Q(x) :- E(x,y), R1(y,u)","exact":true,"db":"social"}`},
		// Ranked top-k: per-shard top-k under the shared order, merged.
		{"ranked merge", "/v1/eval", `{"query":"Q(x,y) :- E(x,y), R1(x,u), R2(y,v)","exact":true,"db":"social","order":["y"],"descending":true,"limit":5}`},
		{"limit only", "/v1/eval", `{"query":"Q(x,y) :- E(x,y), R1(x,u), R2(y,v)","exact":true,"db":"social","limit":3}`},
	}
	for _, req := range requests {
		t.Run(req.name, func(t *testing.T) {
			statusC, _, bodyC := post(t, tss[0], req.path, req.body)
			statusS, _, bodyS := post(t, control, req.path, req.body)
			if statusC != 200 || statusS != 200 {
				t.Fatalf("status cluster=%d single=%d (%s / %s)", statusC, statusS, bodyC, bodyS)
			}
			if bodyC != bodyS {
				t.Errorf("cluster response diverges from single-node:\n cluster: %s\n single:  %s", bodyC, bodyS)
			}
		})
	}

	st := servers[0].Stats()
	if st.Cluster == nil {
		t.Fatal("coordinator stats missing cluster block")
	}
	cs := st.Cluster
	if cs.ShardedDBs != 1 || cs.PartitionedRelations != 1 || cs.ReplicatedRelations != 2 {
		t.Errorf("placement stats = %d sharded / %d partitioned / %d replicated, want 1/1/2",
			cs.ShardedDBs, cs.PartitionedRelations, cs.ReplicatedRelations)
	}
	// scatter eval ×2, bool ×2, count sum, ranked ×2 = 7 scatters;
	// routed local ×1; fallbacks: 2-occurrence eval + non-summable count.
	if cs.ScatterEvals != 7 {
		t.Errorf("scatter_evals = %d, want 7", cs.ScatterEvals)
	}
	if cs.RoutedLocal != 1 {
		t.Errorf("routed_local = %d, want 1", cs.RoutedLocal)
	}
	if cs.ScatterFallbacks != 2 {
		t.Errorf("scatter_fallbacks = %d, want 2", cs.ScatterFallbacks)
	}
	if cs.CountSums != 1 {
		t.Errorf("count_sums = %d, want 1", cs.CountSums)
	}
	if cs.PeerErrors != 0 {
		t.Errorf("peer_errors = %d, want 0", cs.PeerErrors)
	}
	if cs.Fanout.Requests == 0 {
		t.Error("fanout histogram recorded no samples")
	}
	// The peer side of node 1: it served shard pushes and scatter legs.
	ps := servers[1].Stats().Cluster
	if ps == nil || ps.PeerDBPushes == 0 || ps.PeerEvals == 0 {
		t.Errorf("peer stats on node 1 = %+v, want nonzero peer_db_pushes and peer_evals", ps)
	}
}

// TestClusterDeltaRouting is the delta-routing regression: a delta
// touching one partitioned tuple must advance exactly one node's shard
// slice (the owner's), while a replicated-relation delta fans to all.
func TestClusterDeltaRouting(t *testing.T) {
	servers, tss := startTestCluster(t, 3, 100)
	if status, _, body := post(t, tss[0], "/v1/db", `{"name":"d","database":`+clusterTestDB(400)+`}`); status != 200 {
		t.Fatalf("register: %s", body)
	}

	shardVersions := func() []uint64 {
		out := make([]uint64, len(servers))
		for i, s := range servers {
			d, ok := s.eng.DB(shardDBName("d"))
			if !ok {
				t.Fatalf("node %d has no shard slice", i)
			}
			out[i] = d.Version()
		}
		return out
	}

	before := shardVersions()
	status, _, body := post(t, tss[0], "/v1/db", `{"name":"d","delta":{"insert":{"E":[[1000,1001]]}}}`)
	if status != 200 || !strings.Contains(body, `"applied":true`) {
		t.Fatalf("delta: status %d body %s", status, body)
	}
	after := shardVersions()
	changed := 0
	for i := range after {
		if after[i] != before[i] {
			changed++
		}
	}
	if changed != 1 {
		t.Errorf("partitioned single-tuple delta advanced %d shard slices, want exactly 1 (versions %v -> %v)", changed, before, after)
	}

	// A replicated-relation delta reaches every shard slice.
	before = after
	if status, _, body := post(t, tss[0], "/v1/db", `{"name":"d","delta":{"insert":{"R1":[[999,999]]}}}`); status != 200 {
		t.Fatalf("replicated delta: %s", body)
	}
	after = shardVersions()
	for i := range after {
		if after[i] == before[i] {
			t.Errorf("replicated delta did not advance node %d's shard slice", i)
		}
	}

	// The routed deltas keep scattered answers identical to the full
	// copy: evaluate on the cluster and against the coordinator's own
	// full registration via an inline control server sharing no state.
	if cs := servers[0].Stats().Cluster; cs.DeltaForwards == 0 {
		t.Errorf("delta_forwards = 0 after routed deltas")
	}
}

// TestClusterPeerFailure covers the two failure surfaces: a sharded
// registration with a dead peer still answers 200 and keeps serving
// from the full local copy (no placement recorded, peer_errors bumped),
// and a delta forward against a recorded placement surfaces 502
// peer_unavailable.
func TestClusterPeerFailure(t *testing.T) {
	servers, tss := startTestCluster(t, 3, 100)
	if status, _, body := post(t, tss[0], "/v1/db", `{"name":"d","database":`+clusterTestDB(400)+`}`); status != 200 {
		t.Fatalf("register: %s", body)
	}

	// Kill node 2 and forward a replicated-relation delta (fans to all
	// shards, so the dead peer is necessarily touched).
	tss[2].Close()
	status, _, body := post(t, tss[0], "/v1/db", `{"name":"d","delta":{"insert":{"R1":[[999,999]]}}}`)
	if status != http.StatusBadGateway || !strings.Contains(body, "peer_unavailable") {
		t.Fatalf("delta with dead peer: status %d body %s, want 502 peer_unavailable", status, body)
	}

	// Re-registering with the dead peer: 200, served locally, placement
	// dropped so nothing scatters into the dead node.
	if status, _, body := post(t, tss[0], "/v1/db", `{"name":"d2","database":`+clusterTestDB(400)+`}`); status != 200 {
		t.Fatalf("register with dead peer: status %d body %s, want 200", status, body)
	}
	if pl := servers[0].cluster.placementOf("d2"); pl != nil {
		t.Error("placement recorded despite failed shard push")
	}
	status, _, _ = post(t, tss[0], "/v1/eval", `{"query":"Q(x,y) :- E(x,y), R1(x,u)","exact":true,"db":"d2"}`)
	if status != 200 {
		t.Errorf("eval of unsharded registration: status %d, want 200 from the local full copy", status)
	}
	if cs := servers[0].Stats().Cluster; cs.PeerErrors == 0 {
		t.Error("peer_errors = 0 after dead-peer register and delta")
	}
}

// TestClusterNULNamesRejected: NUL namespaces the internal shard
// slices, so client-facing surfaces must reject it everywhere a
// database is named.
func TestClusterNULNamesRejected(t *testing.T) {
	_, tss := startTestCluster(t, 2, 100)
	cases := []struct{ name, path, body string }{
		{"register", "/v1/db", `{"name":"a\u0000b","database":{"E":[[1,2]]}}`},
		{"eval", "/v1/eval", `{"query":"Q(x) :- E(x,y)","exact":true,"db":"a\u0000b"}`},
		{"subscribe", "/v1/subscribe", `{"query":"Q(x) :- E(x,y)","exact":true,"db":"a\u0000b"}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, _, body := post(t, tss[0], tc.path, tc.body)
			if status != http.StatusBadRequest || !strings.Contains(body, "NUL") {
				t.Errorf("status %d body %s, want 400 mentioning NUL", status, body)
			}
		})
	}
}

// TestSingleNodeStatsUnchanged pins the compatibility contract: a
// server without a cluster config serves no cluster stats block and no
// peer endpoints.
func TestSingleNodeStatsUnchanged(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	if s.cluster != nil {
		t.Fatal("single-node server built a cluster control plane")
	}
	if st := s.Stats(); st.Cluster != nil {
		t.Error("single-node stats carry a cluster block")
	}
	status, _, _ := post(t, ts, "/v1/peer/eval", `{}`)
	if status != http.StatusNotFound {
		t.Errorf("peer endpoint on single-node server: status %d, want 404", status)
	}
}
