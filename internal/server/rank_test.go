package server

import (
	"bufio"
	"encoding/json"
	"net/http"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cqapprox/api"
)

// The three-edge smoke graph: E = {(1,2),(2,1),(2,2)}.
var smokeDB = api.Database{"E": {{1, 2}, {2, 1}, {2, 2}}}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", strings.NewReader(string(buf)))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeEval(t *testing.T, resp *http.Response) api.EvalResponse {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out api.EvalResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// /v1/eval with order/limit: a lex-connex key streams the exact ordered
// prefix through the ranked pipeline (ranked_evals ticks), an
// untractable key falls back to eval+sort+truncate with identical
// ordering semantics (rank_fallbacks ticks).
func TestEvalRanked(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	res := decodeEval(t, postJSON(t, ts.URL+"/v1/eval", api.EvalRequest{
		Query: "Q(x,y,z) :- E(x,y), E(y,z)", Exact: true, Database: smokeDB,
		Order: []string{"z", "y", "x"}, Limit: 3,
	}))
	want := [][]int{{1, 2, 1}, {2, 2, 1}, {2, 1, 2}}
	if len(res.Answers) != 3 {
		t.Fatalf("ranked eval returned %d answers: %v", len(res.Answers), res.Answers)
	}
	for i := range want {
		for j := range want[i] {
			if res.Answers[i][j] != want[i][j] {
				t.Fatalf("ranked answers = %v, want %v", res.Answers, want)
			}
		}
	}
	if st := s.Stats(); st.Cache.RankedEvals != 1 || st.Cache.RankFallbacks != 0 {
		t.Fatalf("after connex eval: ranked=%d fallbacks=%d", st.Cache.RankedEvals, st.Cache.RankFallbacks)
	}

	// The projected path query admits no connex program for (z,x).
	res = decodeEval(t, postJSON(t, ts.URL+"/v1/eval", api.EvalRequest{
		Query: "Q(x,z) :- E(x,y), E(y,z)", Exact: true, Database: smokeDB,
		Order: []string{"z", "x"}, Limit: 3,
	}))
	want = [][]int{{1, 1}, {2, 1}, {1, 2}}
	if len(res.Answers) != 3 {
		t.Fatalf("fallback eval returned %d answers: %v", len(res.Answers), res.Answers)
	}
	for i := range want {
		for j := range want[i] {
			if res.Answers[i][j] != want[i][j] {
				t.Fatalf("fallback answers = %v, want %v", res.Answers, want)
			}
		}
	}
	if st := s.Stats(); st.Cache.RankedEvals != 1 || st.Cache.RankFallbacks != 1 {
		t.Fatalf("after fallback eval: ranked=%d fallbacks=%d", st.Cache.RankedEvals, st.Cache.RankFallbacks)
	}
}

// The ranked knobs are validated up front: unknown order variables map
// to bad_request through ErrBadOrder, negative limits and knobs on
// endpoints that cannot honor them are rejected before any work.
func TestRankKnobValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	base := api.EvalRequest{Query: "Q(x,y) :- E(x,y)", Exact: true, Database: smokeDB}

	cases := []struct {
		name string
		path string
		body any
	}{
		{"unknown order var", "/v1/eval", func() any {
			r := base
			r.Order = []string{"nope"}
			return r
		}()},
		{"repeated order var", "/v1/eval", func() any {
			r := base
			r.Order = []string{"x", "x"}
			return r
		}()},
		{"negative limit", "/v1/eval", func() any {
			r := base
			r.Limit = -1
			return r
		}()},
		{"trace with order", "/v1/eval", func() any {
			r := base
			r.Order = []string{"x"}
			r.Trace = true
			return r
		}()},
		{"order on eval-bool", "/v1/eval/bool", func() any {
			r := base
			r.Order = []string{"x"}
			return r
		}()},
		{"limit on count", "/v1/count", func() any {
			r := base
			r.Limit = 2
			return api.CountRequest{EvalRequest: r}
		}()},
	}
	for _, c := range cases {
		resp := postJSON(t, ts.URL+c.path, c.body)
		var out api.ErrorResponse
		err := json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusBadRequest || out.Error == nil || out.Error.Code != api.CodeBadRequest {
			t.Errorf("%s: status %d, body %+v, err %v", c.name, resp.StatusCode, out.Error, err)
		}
	}
}

// /v1/stream honors limit: the server delivers exactly k answer lines,
// stops the enumeration (never producing the rest of the large answer
// set), closes the stream cleanly with no error trailer, and leaks no
// goroutine.
func TestStreamLimit(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	var produced atomic.Int64
	s.onStreamAnswer = func(n int) { produced.Store(int64(n)) }

	// Dedicated client: closing its idle connections later makes the
	// goroutine baseline comparison exact.
	tr := &http.Transport{}
	httpc := &http.Client{Transport: tr}
	baseline := runtime.NumGoroutine()

	req := longPathRequest()
	req.Limit = 5
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := httpc.Post(ts.URL+"/v1/stream", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	rd := bufio.NewReader(resp.Body)
	lines := 0
	for {
		line, err := rd.ReadString('\n')
		if l := strings.TrimSpace(line); l != "" {
			if strings.HasPrefix(l, "{") {
				t.Fatalf("unexpected error trailer: %s", l)
			}
			lines++
		}
		if err != nil {
			break // EOF: the server closed the stream after the limit
		}
	}
	resp.Body.Close()
	if lines != 5 {
		t.Fatalf("stream delivered %d lines, want 5", lines)
	}
	waitFor(t, 10*time.Second, func() bool {
		return s.Stats().Endpoints["/v1/stream"].InFlight == 0
	})
	if n := produced.Load(); n != 5 {
		t.Fatalf("server produced %d answers past the limit of 5", n)
	}
	tr.CloseIdleConnections()
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before request, %d after limited stream", baseline, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// A ranked stream delivers the key order on the wire, truncated at
// limit, and counts as a ranked evaluation.
func TestStreamRankedOrder(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.URL+"/v1/stream", api.EvalRequest{
		Query: "Q(x,y,z) :- E(x,y), E(y,z)", Exact: true, Database: smokeDB,
		Order: []string{"z", "y", "x"}, Limit: 2,
	})
	defer resp.Body.Close()
	var got [][]int
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "{") {
			t.Fatalf("unexpected error trailer: %s", line)
		}
		var tup []int
		if err := json.Unmarshal([]byte(line), &tup); err != nil {
			t.Fatal(err)
		}
		got = append(got, tup)
	}
	want := [][]int{{1, 2, 1}, {2, 2, 1}}
	if len(got) != len(want) {
		t.Fatalf("streamed %d answers, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("ranked stream = %v, want %v", got, want)
			}
		}
	}
	if st := s.Stats(); st.Cache.RankedEvals != 1 {
		t.Fatalf("ranked_evals = %d after ranked stream", st.Cache.RankedEvals)
	}
}
