package server

// The cluster layer of the server: coordinator-side scatter-gather
// routing and the peer endpoints it fans out to.
//
// A node with a configured peer list plays both roles at once. As a
// coordinator it keeps every registered database whole under its plain
// name (so subscriptions, traces, incremental maintenance and fallback
// evaluation work unchanged) and additionally splits it along a
// cluster.Placement, pushing each peer its shard slice under an
// internal NUL-prefixed name that client-facing requests cannot
// reach. Eval-by-name then routes per request on the evaluated
// (approximated) query:
//
//	0 partitioned atom occurrences → the local full copy answers
//	  (routed_local): every referenced relation is replicated, so
//	  no fan-out could help.
//	1 partitioned occurrence → scatter-gather (scatter_evals): the
//	  union of per-shard answer sets equals the full answer set (see
//	  package cluster), and the deterministic merge makes the result
//	  byte-identical to single-node evaluation.
//	≥2 partitioned occurrences — or a traced request — → the local
//	  full copy again (scatter_fallbacks): per-shard evaluation could
//	  join tuples living on different shards.
//
// The coordinator forwards the approximation it chose with exact:true
// — never the original query plus a class — so every shard evaluates
// the identical query no matter how its local search is configured.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/bits"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cqapprox"
	"cqapprox/api"
	"cqapprox/client"
	"cqapprox/internal/cluster"
	"cqapprox/internal/count"
)

// shardDBPrefix scopes the internal registrations holding shard
// slices. The NUL byte cannot appear in a client-supplied name (the
// client-facing handlers reject it), so shard slices can never collide
// with — or be addressed as — a client registration.
const shardDBPrefix = "\x00shard\x00"

func shardDBName(name string) string { return shardDBPrefix + name }

// peerError marks a failed coordinator→peer call; mapError translates
// it to 502 peer_unavailable.
type peerError struct {
	addr string
	err  error
}

func (e *peerError) Error() string { return fmt.Sprintf("peer %s: %v", e.addr, e.err) }
func (e *peerError) Unwrap() error { return e.err }

// clusterCtl is the per-node cluster state: the ring, the peer
// clients, the recorded placements, and the counters behind the
// cluster block of /v1/stats.
type clusterCtl struct {
	cfg  cluster.Config
	ring *cluster.Ring
	// peers is aligned with cfg.Peers; the self slot is nil (the self
	// shard is served in-process, never over HTTP).
	peers []*client.Client

	mu  sync.RWMutex
	dbs map[string]*cluster.Placement

	scatterEvals     atomic.Uint64
	routedLocal      atomic.Uint64
	scatterFallbacks atomic.Uint64
	countSums        atomic.Uint64
	deltaForwards    atomic.Uint64
	peerErrors       atomic.Uint64
	peerEvals        atomic.Uint64
	peerDBPushes     atomic.Uint64
	fanout           endpointMetrics
}

func newClusterCtl(cfg cluster.Config) (*clusterCtl, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ctl := &clusterCtl{
		cfg:  cfg,
		ring: cluster.NewRing(cfg.Peers, 0),
		dbs:  map[string]*cluster.Placement{},
	}
	ctl.fanout.minNS.Store(math.MaxInt64)
	ctl.peers = make([]*client.Client, len(cfg.Peers))
	for i, addr := range cfg.Peers {
		if i != cfg.Self {
			ctl.peers[i] = client.New(addr)
		}
	}
	return ctl, nil
}

// placementOf returns the recorded placement of name, nil when the
// database is not sharded (never registered here, or its shard push
// failed and the local full copy serves alone).
func (ctl *clusterCtl) placementOf(name string) *cluster.Placement {
	ctl.mu.RLock()
	defer ctl.mu.RUnlock()
	return ctl.dbs[name]
}

// wireDB renders a structure in the api.Database wire form. Empty
// relations are omitted — the wire form carries no arity for them —
// which is safe: a missing relation evaluates as empty on the peer,
// exactly like an empty one.
func wireDB(s *cqapprox.Structure) api.Database {
	out := api.Database{}
	for _, rel := range s.Relations() {
		ts := s.SortedTuples(rel)
		if len(ts) == 0 {
			continue
		}
		rows := make([][]int, len(ts))
		for i, t := range ts {
			rows[i] = []int(t)
		}
		out[rel] = rows
	}
	return out
}

// wireDelta renders a delta in the api.DeltaChange wire form.
func wireDelta(d *cqapprox.Delta) *api.DeltaChange {
	dc := &api.DeltaChange{Insert: api.Database{}, Delete: api.Database{}}
	for _, rel := range d.Touched() {
		for _, t := range d.Inserts(rel) {
			dc.Insert[rel] = append(dc.Insert[rel], []int(t))
		}
		for _, t := range d.Deletes(rel) {
			dc.Delete[rel] = append(dc.Delete[rel], []int(t))
		}
	}
	return dc
}

// registerSharded splits db along a fresh placement and pushes each
// peer its slice (the self slice registers in-process). The placement
// is recorded — making the name scatter-eligible — only after every
// push succeeded: on partial failure the coordinator's full copy keeps
// serving the name correctly, just without fan-out, and the next
// successful registration overwrites the stragglers.
func (ctl *clusterCtl) registerSharded(ctx context.Context, eng *cqapprox.Engine, name string, db *cqapprox.Structure) error {
	// Drop any placement from a previous registration of the name up
	// front: until every new slice lands, scattering would mix the old
	// shard data with the new full copy.
	ctl.mu.Lock()
	delete(ctl.dbs, name)
	ctl.mu.Unlock()
	pl := cluster.Plan(db, ctl.ring, ctl.cfg.ReplicateThreshold())
	shards := pl.Split(db)
	if _, _, err := eng.RegisterDB(shardDBName(name), shards[ctl.cfg.Self]); err != nil {
		return err
	}
	var wg sync.WaitGroup
	errs := make([]error, len(ctl.peers))
	for i, c := range ctl.peers {
		if c == nil {
			continue
		}
		wg.Add(1)
		go func(i int, c *client.Client) {
			defer wg.Done()
			_, err := c.PeerRegisterDB(ctx, api.PeerDBRequest{Name: name, Database: wireDB(shards[i])})
			if err != nil {
				errs[i] = &peerError{addr: ctl.cfg.Peers[i], err: err}
			}
		}(i, c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			ctl.peerErrors.Add(1)
			return err
		}
	}
	ctl.mu.Lock()
	ctl.dbs[name] = pl
	ctl.mu.Unlock()
	return nil
}

// forwardDelta routes a delta already applied to the local full copy
// to the shards owning the touched relations (replicated relations fan
// to every shard, partitioned ones to the owning shard only). Shard
// slices are idempotent under re-application — inserts of present
// facts and deletes of absent ones are no-ops — so a failed forward
// can simply be retried by re-sending the delta. Returns whether every
// touched shard applied.
func (ctl *clusterCtl) forwardDelta(ctx context.Context, eng *cqapprox.Engine, name string, pl *cluster.Placement, delta *cqapprox.Delta) (bool, error) {
	routed := pl.RouteDelta(delta)
	if d := routed[ctl.cfg.Self]; d != nil {
		if _, err := eng.ApplyDB(shardDBName(name), d); err != nil {
			return false, err
		}
		ctl.deltaForwards.Add(1)
	}
	var wg sync.WaitGroup
	errs := make([]error, len(routed))
	applied := make([]bool, len(routed))
	for i, d := range routed {
		if d == nil || i == ctl.cfg.Self {
			continue
		}
		wg.Add(1)
		go func(i int, d *cqapprox.Delta) {
			defer wg.Done()
			resp, err := ctl.peers[i].PeerRegisterDB(ctx, api.PeerDBRequest{Name: name, Delta: wireDelta(d)})
			if err != nil {
				errs[i] = &peerError{addr: ctl.cfg.Peers[i], err: err}
				return
			}
			applied[i] = resp.Applied
			ctl.deltaForwards.Add(1)
		}(i, d)
	}
	wg.Wait()
	all := true
	for i, d := range routed {
		if d == nil || i == ctl.cfg.Self {
			continue
		}
		if errs[i] != nil {
			ctl.peerErrors.Add(1)
			return false, errs[i]
		}
		all = all && applied[i]
	}
	return all, nil
}

// route classifies one evaluation of p against the sharded database
// pl: the partitioned-occurrence count of the evaluated query drives
// the trichotomy documented at the top of the file. scatter reports
// whether the caller should fan out; the counters are bumped here for
// the two local outcomes and by the scatter paths on completion.
func (ctl *clusterCtl) route(p *cqapprox.PreparedQuery, pl *cluster.Placement) (occ int, scatter bool) {
	occ = p.PartitionedOccurrences(pl.Partitioned)
	switch {
	case occ == 0:
		ctl.routedLocal.Add(1)
	case occ == 1:
		return occ, true
	default:
		ctl.scatterFallbacks.Add(1)
	}
	return occ, false
}

// noteLocal accounts a request against a sharded database that runs
// locally by construction (traced requests, streams, non-summable
// counts): the counters still record which arm of the trichotomy it
// would have taken.
func (ctl *clusterCtl) noteLocal(p *cqapprox.PreparedQuery, pl *cluster.Placement) {
	if p.PartitionedOccurrences(pl.Partitioned) == 0 {
		ctl.routedLocal.Add(1)
	} else {
		ctl.scatterFallbacks.Add(1)
	}
}

// forward builds the peer request shared by every scatter mode: the
// chosen approximation as an exact inline query (deterministic on
// every shard), the database name, and the pass-through knobs.
func (ctl *clusterCtl) forward(p *cqapprox.PreparedQuery, req api.EvalRequest, mode string) (api.PeerEvalRequest, error) {
	order, err := p.ForwardOrder(req.Order)
	if err != nil {
		return api.PeerEvalRequest{}, err
	}
	fwd := api.PeerEvalRequest{Mode: mode}
	fwd.Query = p.Approx().String()
	fwd.Exact = true
	fwd.DB = req.DB
	fwd.Parallelism = req.Parallelism
	fwd.TimeoutMS = req.TimeoutMS
	fwd.Order = order
	fwd.Descending = req.Descending
	fwd.Limit = req.Limit
	return fwd, nil
}

// fanout runs fn once per shard concurrently (self included, index
// ctl.cfg.Self) and collects the first error. The context is canceled
// as soon as any leg fails, so a dead peer does not pin the fan-out to
// the request deadline.
func (ctl *clusterCtl) fanoutLegs(parent context.Context, fn func(ctx context.Context, shard int) error) error {
	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, len(ctl.cfg.Peers))
	for i := range ctl.cfg.Peers {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := fn(ctx, i); err != nil {
				errs[i] = err
				cancel()
			}
		}(i)
	}
	wg.Wait()
	// Prefer the originating failure over the cancellations the other
	// legs observed when the first one pulled the plug.
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if first == nil || (errors.Is(first, context.Canceled) && !errors.Is(err, context.Canceled)) {
			first = err
		}
	}
	if first == nil {
		return nil
	}
	ctl.peerErrors.Add(1)
	if parent.Err() != nil {
		// The whole request was canceled or timed out; report that
		// rather than whichever leg noticed first.
		return fmt.Errorf("%w: scatter-gather interrupted: %v", cqapprox.ErrCanceled, first)
	}
	return first
}

// scatterEval fans one materialising evaluation out to every shard and
// merges the partial answer sets into exactly the single-node result.
func (ctl *clusterCtl) scatterEval(ctx context.Context, eng *cqapprox.Engine, p *cqapprox.PreparedQuery, req api.EvalRequest) (cqapprox.Answers, error) {
	start := time.Now()
	fwd, err := ctl.forward(p, req, "eval")
	if err != nil {
		return nil, err
	}
	parts := make([]cqapprox.Answers, len(ctl.cfg.Peers))
	err = ctl.fanoutLegs(ctx, func(ctx context.Context, shard int) error {
		if shard == ctl.cfg.Self {
			d, ok := eng.DB(shardDBName(req.DB))
			if !ok {
				return fmt.Errorf("self shard of %q missing", req.DB)
			}
			ans, err := p.Bind(d).Eval(ctx, rankOpts(req)...)
			if err != nil {
				return err
			}
			parts[shard] = ans
			return nil
		}
		resp, err := ctl.peers[shard].PeerEval(ctx, fwd)
		if err != nil {
			return &peerError{addr: ctl.cfg.Peers[shard], err: err}
		}
		ans := make(cqapprox.Answers, len(resp.Answers))
		for i, t := range resp.Answers {
			ans[i] = cqapprox.Tuple(t)
		}
		parts[shard] = ans
		return nil
	})
	if err != nil {
		return nil, err
	}
	merged, err := p.MergeAnswers(parts, rankOpts(req)...)
	if err != nil {
		return nil, err
	}
	ctl.scatterEvals.Add(1)
	ctl.recordFanout(start)
	return merged, nil
}

// recordFanout folds one completed scatter-gather into the fanout
// endpoint metrics: the request counter (instrument() bumps it for real
// endpoints; the fanout pseudo-endpoint has no handler) plus the
// latency histogram.
func (ctl *clusterCtl) recordFanout(start time.Time) {
	ctl.fanout.requests.Add(1)
	ctl.fanout.record(time.Since(start))
}

// scatterBool fans an existence check out and short-circuits on the
// first shard reporting a witness: the remaining legs are canceled.
func (ctl *clusterCtl) scatterBool(ctx context.Context, eng *cqapprox.Engine, p *cqapprox.PreparedQuery, req api.EvalRequest) (bool, error) {
	start := time.Now()
	fwd, err := ctl.forward(p, req, "bool")
	if err != nil {
		return false, err
	}
	parent := ctx
	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	var (
		wg  sync.WaitGroup
		hit atomic.Bool
	)
	errs := make([]error, len(ctl.cfg.Peers))
	for i := range ctl.cfg.Peers {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			var res bool
			if shard == ctl.cfg.Self {
				d, ok := eng.DB(shardDBName(req.DB))
				if !ok {
					errs[shard] = fmt.Errorf("self shard of %q missing", req.DB)
					cancel()
					return
				}
				var err error
				if res, err = p.Bind(d).EvalBool(ctx); err != nil {
					errs[shard] = err
					cancel()
					return
				}
			} else {
				resp, err := ctl.peers[shard].PeerEval(ctx, fwd)
				if err != nil {
					errs[shard] = &peerError{addr: ctl.cfg.Peers[shard], err: err}
					cancel()
					return
				}
				res = resp.Result
			}
			if res {
				hit.Store(true)
				cancel() // short-circuit: a witness anywhere answers the query
			}
		}(i)
	}
	wg.Wait()
	if hit.Load() {
		// A witness anywhere answers true; legs canceled by the
		// short-circuit are not failures.
		ctl.scatterEvals.Add(1)
		ctl.recordFanout(start)
		return true, nil
	}
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if first == nil || (errors.Is(first, context.Canceled) && !errors.Is(err, context.Canceled)) {
			first = err
		}
	}
	if first != nil {
		ctl.peerErrors.Add(1)
		if parent.Err() != nil {
			return false, fmt.Errorf("%w: scatter-gather interrupted: %v", cqapprox.ErrCanceled, first)
		}
		return false, first
	}
	ctl.scatterEvals.Add(1)
	ctl.recordFanout(start)
	return false, nil
}

// scatterCount fans a count out and sums the per-shard results — exact
// counts add because the summability predicate guaranteed disjoint
// per-shard answer sets; estimates add with the per-shard failure
// budget δ split n ways (union bound) and per-shard seeds derived from
// the request seed so shards do not sample in lockstep.
func (ctl *clusterCtl) scatterCount(ctx context.Context, eng *cqapprox.Engine, p *cqapprox.PreparedQuery, req api.CountRequest, opts []cqapprox.CountOption) (*cqapprox.CountResult, error) {
	start := time.Now()
	fwd, err := ctl.forward(p, req.EvalRequest, "count")
	if err != nil {
		return nil, err
	}
	fwd.Estimate = req.Estimate
	fwd.Epsilon = req.Epsilon
	fwd.MaxSamples = req.MaxSamples
	if req.Estimate {
		// Split the failure probability across the shards: if every
		// shard is within (1±ε) with probability 1-δ/n, the sum is
		// within (1±ε) with probability at least 1-δ.
		delta := req.Delta
		if delta == 0 {
			delta = count.DefaultDelta
		}
		fwd.Delta = delta / float64(len(ctl.cfg.Peers))
	}
	results := make([]*cqapprox.CountResult, len(ctl.cfg.Peers))
	err = ctl.fanoutLegs(ctx, func(ctx context.Context, shard int) error {
		if shard == ctl.cfg.Self {
			d, ok := eng.DB(shardDBName(req.DB))
			if !ok {
				return fmt.Errorf("self shard of %q missing", req.DB)
			}
			legOpts := opts
			if req.Estimate {
				legOpts = append(legOpts[:len(legOpts):len(legOpts)], cqapprox.WithDelta(fwd.Delta))
				if req.Seed != nil {
					legOpts = append(legOpts, cqapprox.WithSeed(*req.Seed+int64(shard)))
				}
				res, err := p.Bind(d).EstimateCount(ctx, legOpts...)
				if err != nil {
					return err
				}
				results[shard] = res
				return nil
			}
			res, err := p.Bind(d).Count(ctx, legOpts...)
			if err != nil {
				return err
			}
			results[shard] = res
			return nil
		}
		leg := fwd
		if req.Estimate && req.Seed != nil {
			seed := *req.Seed + int64(shard)
			leg.Seed = &seed
		}
		resp, err := ctl.peers[shard].PeerEval(ctx, leg)
		if err != nil {
			return &peerError{addr: ctl.cfg.Peers[shard], err: err}
		}
		results[shard] = &cqapprox.CountResult{
			Count:     resp.Count,
			Estimate:  resp.Estimate,
			Estimated: resp.Estimated,
			Mode:      resp.Mode,
			Samples:   resp.Samples,
			Batches:   resp.Batches,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Echo the shards' common mode so an exact summed count is
	// byte-identical to the single-node response; "exact-sum" only
	// when the shards took different paths.
	out := &cqapprox.CountResult{Mode: results[0].Mode}
	estimated := false
	for _, r := range results {
		if r.Mode != out.Mode {
			out.Mode = "exact-sum"
		}
		var carry uint64
		out.Count, carry = bits.Add64(out.Count, r.Count, 0)
		if carry != 0 {
			return nil, fmt.Errorf("scatter count overflows uint64")
		}
		if r.Estimated {
			estimated = true
			out.Estimate += r.Estimate
		} else {
			out.Estimate += float64(r.Count)
		}
		out.Samples += r.Samples
		out.Batches += r.Batches
	}
	if estimated {
		out.Estimated = true
		out.Mode = "estimate-sum"
		out.Count = uint64(math.Round(out.Estimate))
		// Echo the accuracy target the sum satisfies: the request's ε
		// (or the default every shard used) and the undivided δ.
		out.Epsilon = req.Epsilon
		if out.Epsilon == 0 {
			out.Epsilon = count.DefaultEpsilon
		}
		out.Delta = req.Delta
		if out.Delta == 0 {
			out.Delta = count.DefaultDelta
		}
	}
	ctl.countSums.Add(1)
	ctl.scatterEvals.Add(1)
	ctl.recordFanout(start)
	return out, nil
}

// stats assembles the cluster block of /v1/stats.
func (ctl *clusterCtl) stats() *api.ClusterStats {
	ctl.mu.RLock()
	sharded := len(ctl.dbs)
	rep, part := 0, 0
	for _, pl := range ctl.dbs {
		r, p := pl.Counts()
		rep += r
		part += p
	}
	ctl.mu.RUnlock()
	return &api.ClusterStats{
		Nodes:                len(ctl.cfg.Peers),
		Self:                 ctl.cfg.Self,
		ShardedDBs:           sharded,
		ReplicatedRelations:  rep,
		PartitionedRelations: part,
		ScatterEvals:         ctl.scatterEvals.Load(),
		RoutedLocal:          ctl.routedLocal.Load(),
		ScatterFallbacks:     ctl.scatterFallbacks.Load(),
		CountSums:            ctl.countSums.Load(),
		DeltaForwards:        ctl.deltaForwards.Load(),
		PeerErrors:           ctl.peerErrors.Load(),
		PeerEvals:            ctl.peerEvals.Load(),
		PeerDBPushes:         ctl.peerDBPushes.Load(),
		Fanout:               ctl.fanout.snapshot(),
	}
}

// handlePeerDB answers POST /v1/peer/db: store (or delta-update) this
// node's shard slice of a sharded database under its internal name.
// Peer pushes hold an eval admission slot exactly like client-facing
// /v1/db work — the structure build is data-sized.
func (s *Server) handlePeerDB(w http.ResponseWriter, r *http.Request) {
	var req api.PeerDBRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if req.Name == "" || strings.ContainsRune(req.Name, 0) {
		writeError(w, errBadRequest("name required (no NUL bytes)"))
		return
	}
	if !s.acquire(s.evalSem, w) {
		return
	}
	defer release(s.evalSem)
	internal := shardDBName(req.Name)
	if req.Delta != nil {
		delta, err := req.Delta.ToDelta()
		if err != nil {
			writeError(w, errBadRequest(err.Error()))
			return
		}
		if _, ok := s.eng.DB(internal); !ok {
			writeError(w, errUnknownDB(req.Name))
			return
		}
		u, err := s.eng.ApplyDB(internal, delta)
		if err != nil {
			writeError(w, errBadRequest(err.Error()))
			return
		}
		s.cluster.peerDBPushes.Add(1)
		writeJSON(w, http.StatusOK, api.RegisterDBResponse{
			Name:      req.Name,
			Version:   u.Next.Version(),
			Relations: len(u.Next.Relations()),
			Facts:     u.Next.NumFacts(),
			Replaced:  true,
			Applied:   true,
		})
		return
	}
	db, err := req.Database.ToStructure()
	if err != nil {
		writeError(w, errBadRequest(err.Error()))
		return
	}
	d, replaced, err := s.eng.RegisterDB(internal, db)
	if err != nil {
		writeError(w, errBadRequest(err.Error()))
		return
	}
	s.cluster.peerDBPushes.Add(1)
	writeJSON(w, http.StatusOK, api.RegisterDBResponse{
		Name:      req.Name,
		Version:   d.Version(),
		Relations: len(d.Relations()),
		Facts:     d.NumFacts(),
		Replaced:  replaced,
	})
}

// handlePeerEval answers POST /v1/peer/eval: one scatter-gather leg,
// evaluated against this node's shard slice under its own admission
// control (per-shard admission — a saturated peer 429s its leg and the
// coordinator surfaces peer_unavailable). The forwarded query is
// always inline + exact, so it hits this node's prepare cache after
// the first leg; cluster routing is never consulted — the leg IS the
// routed work.
func (s *Server) handlePeerEval(w http.ResponseWriter, r *http.Request) {
	var req api.PeerEvalRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if req.DB == "" {
		writeError(w, errBadRequest("db required (peer eval runs against a pushed shard slice)"))
		return
	}
	if !req.Exact || req.Query == "" {
		writeError(w, errBadRequest("peer eval requires an inline exact query (the coordinator forwards its chosen approximation)"))
		return
	}
	d, ok := s.eng.DB(shardDBName(req.DB))
	if !ok {
		writeError(w, errUnknownDB(req.DB))
		return
	}
	if !s.acquire(s.evalSem, w) {
		return
	}
	defer release(s.evalSem)
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()
	p, apiErr := s.resolve(ctx, req.EvalRequest)
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	par := req.Parallelism
	if par <= 0 {
		par = p.Parallelism()
	}
	b := p.Parallel(s.clampParallelism(par)).Bind(d)
	var resp api.PeerEvalResponse
	switch req.Mode {
	case "eval":
		ans, err := b.Eval(ctx, rankOpts(req.EvalRequest)...)
		if err != nil {
			writeError(w, mapError(err))
			return
		}
		resp.Answers = api.FromAnswers(ans)
	case "bool":
		res, err := b.EvalBool(ctx)
		if err != nil {
			writeError(w, mapError(err))
			return
		}
		resp.Result = res
	case "count":
		var opts []cqapprox.CountOption
		if req.Epsilon > 0 {
			opts = append(opts, cqapprox.WithEpsilon(req.Epsilon))
		}
		if req.Delta > 0 {
			opts = append(opts, cqapprox.WithDelta(req.Delta))
		}
		if req.Seed != nil {
			opts = append(opts, cqapprox.WithSeed(*req.Seed))
		}
		if req.MaxSamples > 0 {
			opts = append(opts, cqapprox.WithMaxSamples(req.MaxSamples))
		}
		var res *cqapprox.CountResult
		var err error
		if req.Estimate {
			res, err = b.EstimateCount(ctx, opts...)
		} else {
			res, err = b.Count(ctx, opts...)
		}
		if err != nil {
			writeError(w, mapError(err))
			return
		}
		resp.Count = res.Count
		resp.Estimate = res.Estimate
		resp.Estimated = res.Estimated
		resp.Mode = res.Mode
		resp.Samples = res.Samples
		resp.Batches = res.Batches
	default:
		writeError(w, errBadRequest(`mode must be "eval", "bool" or "count"`))
		return
	}
	s.cluster.peerEvals.Add(1)
	writeJSON(w, http.StatusOK, resp)
}
