// Package server implements cqapproxd's HTTP service layer over a
// cqapprox.Engine: request decoding, admission control, per-request
// deadlines, NDJSON answer streaming, and metrics. The wire contract
// lives in package api; cmd/cqapproxd wires a Server to a listener and
// a lifecycle.
//
// The endpoints:
//
//	POST /v1/prepare    run (or hit the cache for) the static pipeline
//	POST /v1/explain    structured EXPLAIN of a prepared or inline query
//	POST /v1/eval       evaluate a prepared or inline query on a database
//	POST /v1/eval/bool  answer existence only
//	POST /v1/count      answer count, exact or estimated, no materialization
//	POST /v1/stream     NDJSON answers, first answer flushed immediately
//	GET  /v1/stats      engine cache stats + per-endpoint counters
//
// Admission control bounds the number of concurrently running prepares
// (NP-hard searches) and evaluations (polynomial, but data-sized)
// separately; a saturated endpoint fails fast with 429 and Retry-After
// rather than queueing unboundedly.
package server

import (
	"context"
	"log/slog"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"cqapprox"
	"cqapprox/api"
	"cqapprox/internal/cluster"
)

// Config tunes a Server. The zero value selects the documented
// defaults, which scale with the host: the admission semaphores are
// sized from runtime.GOMAXPROCS(0) so a bigger box admits more
// concurrent work without retuning flags.
type Config struct {
	// MaxInflightPrepare bounds concurrently running preparations —
	// each one a potentially exponential search. The bound applies
	// wherever an uncached preparation runs, including inline queries
	// on the eval endpoints; cache hits bypass it. Default
	// max(2, GOMAXPROCS/2) — half the cores, so a burst of searches
	// cannot starve evaluation traffic. Negative means unbounded.
	MaxInflightPrepare int

	// MaxInflightEval bounds concurrently running evaluations and
	// streams (a stream holds its slot until the last answer is
	// written). Default 8×GOMAXPROCS — evaluations are short and
	// IO-interleaved, so moderate oversubscription keeps cores busy
	// without unbounded queueing. Negative means unbounded.
	MaxInflightEval int

	// MaxParallelism caps the per-request evaluation worker budget
	// (EvalRequest.Parallelism is clamped to it). Default GOMAXPROCS;
	// negative disables parallel evaluation (every request runs
	// serial).
	MaxParallelism int

	// DefaultTimeout applies to requests that carry no timeout_ms.
	// Default 30s; negative means no deadline.
	DefaultTimeout time.Duration

	// MaxTimeout clamps client-supplied timeout_ms. Default 2m;
	// negative means no clamp.
	MaxTimeout time.Duration

	// MaxBodyBytes bounds request bodies (databases travel inline).
	// Default 64 MiB.
	MaxBodyBytes int64

	// Logger, when non-nil, receives one structured line per request
	// (id, endpoint, status, elapsed). Nil disables request logging
	// entirely — the hot path then never touches the logger.
	Logger *slog.Logger

	// SlowQuery upgrades requests at least this slow to a Warn line
	// that includes the execution trace when the request ran traced.
	// Zero disables slow-query logging. Requires Logger.
	SlowQuery time.Duration

	// SubscriberQueue bounds each /v1/subscribe connection's pending
	// update queue. A subscriber that cannot drain updates this far
	// ahead of its writes is a slow consumer; SlowConsumerPolicy says
	// what happens then. Default 16; negative means 1.
	SubscriberQueue int

	// SlowConsumerPolicy picks the queue-overflow behaviour of
	// /v1/subscribe: "resync" (the default) drops the queued updates
	// and pushes one resync frame carrying the full answer set;
	// "disconnect" pushes a terminal frame with error code
	// slow_consumer and closes the stream.
	SlowConsumerPolicy string

	// CoalesceWindow batches update bursts per subscriber: after an
	// update wakes a subscription, the server waits this long and folds
	// every further update that lands into the same diff frame
	// (cancelling inserts and deletes net out). Zero still coalesces
	// opportunistically — everything already queued goes into one
	// frame — but never waits.
	CoalesceWindow time.Duration

	// Cluster enables the sharded scatter-gather mode when it lists two
	// or more peers (this node included; see cluster.Config). The zero
	// value keeps the server single-node: no peer endpoints, no cluster
	// stats block, byte-identical behaviour to earlier releases. New
	// panics on an invalid config — cmd/cqapproxd validates flags
	// before construction for a friendly error.
	Cluster cluster.Config
}

// Slow-consumer policies of Config.SlowConsumerPolicy.
const (
	SlowConsumerResync     = "resync"
	SlowConsumerDisconnect = "disconnect"
)

const (
	defaultTimeout         = 30 * time.Second
	defaultMaxTimeout      = 2 * time.Minute
	defaultMaxBodyBytes    = 64 << 20
	defaultSubscriberQueue = 16
)

// defaultMaxInflightPrepare sizes the prepare pool from the host's
// GOMAXPROCS: half the cores, minimum two.
func defaultMaxInflightPrepare() int {
	return max(2, runtime.GOMAXPROCS(0)/2)
}

// defaultMaxInflightEval sizes the eval pool from the host's
// GOMAXPROCS.
func defaultMaxInflightEval() int {
	return 8 * runtime.GOMAXPROCS(0)
}

// withDefaults resolves the zero/negative conventions of Config.
func (c Config) withDefaults() Config {
	switch {
	case c.MaxInflightPrepare == 0:
		c.MaxInflightPrepare = defaultMaxInflightPrepare()
	case c.MaxInflightPrepare < 0:
		c.MaxInflightPrepare = 0 // 0 semaphore = unbounded below
	}
	switch {
	case c.MaxInflightEval == 0:
		c.MaxInflightEval = defaultMaxInflightEval()
	case c.MaxInflightEval < 0:
		c.MaxInflightEval = 0
	}
	switch {
	case c.MaxParallelism == 0:
		c.MaxParallelism = runtime.GOMAXPROCS(0)
	case c.MaxParallelism < 0:
		c.MaxParallelism = 1
	}
	switch {
	case c.DefaultTimeout == 0:
		c.DefaultTimeout = defaultTimeout
	case c.DefaultTimeout < 0:
		c.DefaultTimeout = 0
	}
	switch {
	case c.MaxTimeout == 0:
		c.MaxTimeout = defaultMaxTimeout
	case c.MaxTimeout < 0:
		c.MaxTimeout = 0
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = defaultMaxBodyBytes
	}
	switch {
	case c.SubscriberQueue == 0:
		c.SubscriberQueue = defaultSubscriberQueue
	case c.SubscriberQueue < 0:
		c.SubscriberQueue = 1
	}
	if c.SlowConsumerPolicy == "" {
		c.SlowConsumerPolicy = SlowConsumerResync
	}
	return c
}

// The metric names double as the endpoint keys of /v1/stats.
const (
	epPrepare   = "/v1/prepare"
	epExplain   = "/v1/explain"
	epDB        = "/v1/db"
	epEval      = "/v1/eval"
	epEvalBool  = "/v1/eval/bool"
	epCount     = "/v1/count"
	epStream    = "/v1/stream"
	epSubscribe = "/v1/subscribe"
	epStats     = "/v1/stats"

	// The coordinator→peer endpoints, registered (and counted in
	// /v1/stats) only on cluster-configured nodes.
	epPeerDB   = "/v1/peer/db"
	epPeerEval = "/v1/peer/eval"
)

// Server handles the /v1 API over one engine. Construct with New; a
// Server is safe for concurrent use and is normally wrapped in an
// http.Server by cmd/cqapproxd or an httptest.Server in tests.
type Server struct {
	eng        *cqapprox.Engine
	cfg        Config
	prepareSem chan struct{} // nil = unbounded
	evalSem    chan struct{}
	metrics    *metrics
	mux        *http.ServeMux
	reqID      atomic.Uint64 // request ids for the structured log

	subs      subRegistry   // live /v1/subscribe watchers per database name
	subStats  subStats      // the subscription counters of /v1/stats
	drainCh   chan struct{} // closed by Drain: every subscription ends
	drainOnce sync.Once

	// cluster is the scatter-gather control plane; nil on single-node
	// servers (the common case), so the hot path costs one nil check.
	cluster *clusterCtl

	// onStreamAnswer, when non-nil, is called after answer n (1-based)
	// of a stream response has been written and flushed. Test seam for
	// asserting streaming order; never set in production.
	onStreamAnswer func(n int)

	// onPrepareStart, when non-nil, is called after an uncached
	// preparation has claimed its admission slot, before the engine
	// pipeline runs. Test seam for deterministic admission-control
	// tests; never set in production.
	onPrepareStart func()

	// onSubscribeFrame, when non-nil, is called after frame n (1-based,
	// counting the init frame) of a subscription has been written and
	// flushed. Test seam for parking a subscriber mid-stream to provoke
	// slow-consumer handling deterministically; never set in production.
	onSubscribeFrame func(n int)
}

// New returns a Server over eng. Requests without explicit options use
// the engine's configured search defaults.
func New(eng *cqapprox.Engine, cfg Config) *Server {
	names := []string{epPrepare, epExplain, epDB, epEval, epEvalBool, epCount, epStream, epSubscribe, epStats}
	clustered := cfg.Cluster.Enabled()
	if clustered {
		names = append(names, epPeerDB, epPeerEval)
	}
	s := &Server{
		eng:     eng,
		cfg:     cfg.withDefaults(),
		metrics: newMetrics(names...),
		drainCh: make(chan struct{}),
	}
	if clustered {
		ctl, err := newClusterCtl(cfg.Cluster)
		if err != nil {
			panic("server: invalid cluster config: " + err.Error())
		}
		s.cluster = ctl
	}
	if n := s.cfg.MaxInflightPrepare; n > 0 {
		s.prepareSem = make(chan struct{}, n)
	}
	if n := s.cfg.MaxInflightEval; n > 0 {
		s.evalSem = make(chan struct{}, n)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+epPrepare, s.instrument(epPrepare, s.handlePrepare))
	mux.HandleFunc("POST "+epExplain, s.instrument(epExplain, s.handleExplain))
	mux.HandleFunc("POST "+epDB, s.instrument(epDB, s.handleRegisterDB))
	mux.HandleFunc("POST "+epEval, s.instrument(epEval, s.handleEval))
	mux.HandleFunc("POST "+epEvalBool, s.instrument(epEvalBool, s.handleEvalBool))
	mux.HandleFunc("POST "+epCount, s.instrument(epCount, s.handleCount))
	mux.HandleFunc("POST "+epStream, s.instrument(epStream, s.handleStream))
	mux.HandleFunc("POST "+epSubscribe, s.instrument(epSubscribe, s.handleSubscribe))
	mux.HandleFunc("GET "+epStats, s.instrument(epStats, s.handleStats))
	if clustered {
		mux.HandleFunc("POST "+epPeerDB, s.instrument(epPeerDB, s.handlePeerDB))
		mux.HandleFunc("POST "+epPeerEval, s.instrument(epPeerEval, s.handlePeerEval))
	}
	s.mux = mux
	return s
}

// Handler returns the root handler serving the /v1 API.
func (s *Server) Handler() http.Handler { return s.mux }

// Stats snapshots the engine cache counters and the per-endpoint
// request metrics (the body of GET /v1/stats, also published to expvar
// by cmd/cqapproxd).
func (s *Server) Stats() api.StatsResponse {
	cs := s.eng.CacheStats()
	ds := s.eng.DBStats()
	var clusterStats *api.ClusterStats
	if s.cluster != nil {
		clusterStats = s.cluster.stats()
	}
	return api.StatsResponse{
		Cluster: clusterStats,
		Cache: api.CacheStats{
			Hits:             cs.Hits,
			Misses:           cs.Misses,
			Entries:          cs.Entries,
			IndexBuilds:      cs.Indexes.IndexBuilds,
			IndexProbes:      cs.Indexes.IndexProbes,
			IndexedEvals:     cs.Indexes.Evals,
			ParallelEvals:    cs.Indexes.ParallelEvals,
			RankedEvals:      cs.Indexes.RankedEvals,
			RankFallbacks:    cs.Indexes.RankFallbacks,
			ExactCounts:      cs.Indexes.ExactCounts,
			EstimatedCounts:  cs.Indexes.EstimatedCounts,
			SampleBatches:    cs.Indexes.SampleBatches,
			IncrementalEvals: cs.Indexes.IncrementalEvals,
			IncrFallbacks:    cs.Indexes.IncrFallbacks,
		},
		Server: api.ServerLimits{
			MaxInflightPrepare: s.cfg.MaxInflightPrepare,
			MaxInflightEval:    s.cfg.MaxInflightEval,
			MaxParallelism:     s.cfg.MaxParallelism,
		},
		Subscriptions: s.subStats.snapshot(),
		DBs: api.DBRegistryStats{
			Entries:       ds.Entries,
			Registered:    ds.Registered,
			Updates:       ds.Updates,
			Hits:          ds.Hits,
			Misses:        ds.Misses,
			Evictions:     ds.Evictions,
			Facts:         ds.Facts,
			Views:         ds.Views,
			IndexesCached: ds.IndexesCached,
			IndexBuilds:   ds.IndexBuilds,
			IndexHits:     ds.IndexHits,
		},
		Endpoints: s.metrics.snapshot(),
	}
}

// tryAcquire claims a slot of sem without blocking: admission control
// fails fast instead of queueing work the server cannot start. A nil
// sem is unbounded.
func tryAcquire(sem chan struct{}) bool {
	if sem == nil {
		return true
	}
	select {
	case sem <- struct{}{}:
		return true
	default:
		return false
	}
}

// acquire is tryAcquire plus the 429 + Retry-After response on refusal.
func (s *Server) acquire(sem chan struct{}, w http.ResponseWriter) bool {
	if tryAcquire(sem) {
		return true
	}
	writeError(w, errOverloaded())
	return false
}

func release(sem chan struct{}) {
	if sem != nil {
		<-sem
	}
}

// requestContext derives the request's evaluation context: the client's
// timeout_ms (clamped to MaxTimeout) or DefaultTimeout, on top of the
// connection context — so a client disconnect cancels the work too.
func (s *Server) requestContext(r *http.Request, timeoutMS int64) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
	}
	if max := s.cfg.MaxTimeout; max > 0 && (d <= 0 || d > max) {
		d = max
	}
	if d <= 0 {
		return context.WithCancel(r.Context())
	}
	return context.WithTimeout(r.Context(), d)
}
