package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"cqapprox"
	"cqapprox/api"
)

// apiError pairs a stable wire error with its HTTP status. The mapping
// is part of the API contract (DESIGN.md §Service layer): clients
// branch on ErrorInfo.Code, proxies on the status.
type apiError struct {
	status int
	info   api.ErrorInfo
}

func errBadRequest(msg string) *apiError {
	return &apiError{http.StatusBadRequest, api.ErrorInfo{Code: api.CodeBadRequest, Message: msg}}
}

func errUnknownKey() *apiError {
	return &apiError{http.StatusNotFound, api.ErrorInfo{
		Code:    api.CodeUnknownKey,
		Message: "no prepared query under this key (evicted or never prepared here); re-prepare",
	}}
}

func errUnknownDB(name string) *apiError {
	return &apiError{http.StatusNotFound, api.ErrorInfo{
		Code:    api.CodeUnknownDB,
		Message: fmt.Sprintf("no database registered under %q (evicted or never registered here); re-register via POST /v1/db", name),
	}}
}

func errOverloaded() *apiError {
	return &apiError{http.StatusTooManyRequests, api.ErrorInfo{
		Code:    api.CodeOverloaded,
		Message: "server at capacity for this endpoint; retry shortly",
	}}
}

// mapError translates the library's typed errors into the wire
// taxonomy. Order matters: ParseError first (it is the most specific),
// the sentinel wrappers next, everything else is internal.
func mapError(err error) *apiError {
	var (
		perr *cqapprox.ParseError
		pe   *peerError
	)
	switch {
	case errors.As(err, &perr):
		return &apiError{http.StatusBadRequest, api.ErrorInfo{
			Code: api.CodeParseError, Message: perr.Error(), Line: perr.Line, Col: perr.Col,
		}}
	case errors.As(err, &pe):
		return &apiError{http.StatusBadGateway, api.ErrorInfo{
			Code: api.CodePeer, Message: pe.Error(),
		}}
	case errors.Is(err, cqapprox.ErrBudgetExceeded):
		return &apiError{http.StatusUnprocessableEntity, api.ErrorInfo{
			Code: api.CodeBudgetExceeded, Message: err.Error(),
		}}
	case errors.Is(err, cqapprox.ErrBadOrder):
		return &apiError{http.StatusBadRequest, api.ErrorInfo{
			Code: api.CodeBadRequest, Message: err.Error(),
		}}
	case errors.Is(err, cqapprox.ErrNotInClass):
		return &apiError{http.StatusUnprocessableEntity, api.ErrorInfo{
			Code: api.CodeNotInClass, Message: err.Error(),
		}}
	case errors.Is(err, cqapprox.ErrCanceled):
		return &apiError{http.StatusGatewayTimeout, api.ErrorInfo{
			Code: api.CodeCanceled, Message: err.Error(),
		}}
	default:
		return &apiError{http.StatusInternalServerError, api.ErrorInfo{
			Code: api.CodeInternal, Message: err.Error(),
		}}
	}
}

// writeJSON writes v as the complete JSON response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError writes e as the standard error envelope; 429s advertise a
// Retry-After so well-behaved clients back off.
func writeError(w http.ResponseWriter, e *apiError) {
	if e.status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	info := e.info
	writeJSON(w, e.status, api.ErrorResponse{Error: &info})
}
