// Package cq defines conjunctive queries (CQs), their rule-based
// concrete syntax, and the correspondence between CQs and tableaux.
//
// A CQ is written in the paper's rule notation:
//
//	Q(x, y) :- E(x, y), E(y, z), E(z, x)
//
// The head lists the free variables (possibly with repetitions, possibly
// empty for Boolean queries); the body is a conjunction of relational
// atoms. The tableau of Q(x̄) is the pair (T_Q, x̄) where T_Q is the body
// viewed as a relational structure over the variables.
package cq

import (
	"fmt"
	"sort"
	"strings"

	"cqapprox/internal/relstr"
)

// Atom is a single relational atom R(x1, …, xn) in a CQ body.
type Atom struct {
	Rel  string
	Args []string
}

func (a Atom) String() string {
	return a.Rel + "(" + strings.Join(a.Args, ",") + ")"
}

// Clone returns a deep copy of a.
func (a Atom) Clone() Atom {
	args := make([]string, len(a.Args))
	copy(args, a.Args)
	return Atom{Rel: a.Rel, Args: args}
}

// Query is a conjunctive query in rule form.
type Query struct {
	Name  string   // head predicate name, defaults to "Q"
	Head  []string // free variables; empty means Boolean
	Atoms []Atom
}

// Clone returns a deep copy of q.
func (q *Query) Clone() *Query {
	head := make([]string, len(q.Head))
	copy(head, q.Head)
	atoms := make([]Atom, len(q.Atoms))
	for i, a := range q.Atoms {
		atoms[i] = a.Clone()
	}
	return &Query{Name: q.Name, Head: head, Atoms: atoms}
}

// IsBoolean reports whether q has no free variables.
func (q *Query) IsBoolean() bool { return len(q.Head) == 0 }

// NumJoins returns the number of joins, defined in the paper as
// (#atoms − 1); an empty body yields 0.
func (q *Query) NumJoins() int {
	if len(q.Atoms) == 0 {
		return 0
	}
	return len(q.Atoms) - 1
}

// Vars returns all variables of q in order of first occurrence
// (head first, then body).
func (q *Query) Vars() []string {
	seen := map[string]bool{}
	var out []string
	add := func(v string) {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	for _, v := range q.Head {
		add(v)
	}
	for _, a := range q.Atoms {
		for _, v := range a.Args {
			add(v)
		}
	}
	return out
}

// NumVars returns the number of distinct variables in q.
func (q *Query) NumVars() int { return len(q.Vars()) }

// Validate checks arity consistency across atoms and that every head
// variable occurs in the body (range restriction; the paper's CQs draw
// head variables from the atom variables).
func (q *Query) Validate() error {
	arity := map[string]int{}
	inBody := map[string]bool{}
	for _, a := range q.Atoms {
		if len(a.Args) == 0 {
			return fmt.Errorf("cq: atom %s has no arguments", a.Rel)
		}
		if prev, ok := arity[a.Rel]; ok && prev != len(a.Args) {
			return fmt.Errorf("cq: relation %s used with arities %d and %d", a.Rel, prev, len(a.Args))
		}
		arity[a.Rel] = len(a.Args)
		for _, v := range a.Args {
			inBody[v] = true
		}
	}
	for _, v := range q.Head {
		if !inBody[v] {
			return fmt.Errorf("cq: head variable %s does not occur in the body", v)
		}
	}
	return nil
}

// Schema returns the relation symbols used by q with their arities.
func (q *Query) Schema() map[string]int {
	m := map[string]int{}
	for _, a := range q.Atoms {
		m[a.Rel] = len(a.Args)
	}
	return m
}

// String renders q in rule notation, e.g. "Q(x) :- E(x,y), E(y,x)".
func (q *Query) String() string {
	name := q.Name
	if name == "" {
		name = "Q"
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('(')
	b.WriteString(strings.Join(q.Head, ","))
	b.WriteString(") :- ")
	parts := make([]string, len(q.Atoms))
	for i, a := range q.Atoms {
		parts[i] = a.String()
	}
	b.WriteString(strings.Join(parts, ", "))
	return b.String()
}

// Tableau is a CQ body as a relational structure, together with the
// distinguished tuple of (elements standing for) free variables.
type Tableau struct {
	S    *relstr.Structure
	Dist []int          // images of the head variables, in head order
	Var  map[int]string // element → variable name (best-effort)
}

// Tableau returns the tableau (T_Q, x̄) of q. Variables are numbered by
// first occurrence, head first.
func (q *Query) Tableau() *Tableau {
	vars := q.Vars()
	id := make(map[string]int, len(vars))
	names := make(map[int]string, len(vars))
	for i, v := range vars {
		id[v] = i
		names[i] = v
	}
	s := relstr.New()
	for _, a := range q.Atoms {
		args := make([]int, len(a.Args))
		for i, v := range a.Args {
			args[i] = id[v]
		}
		s.Add(a.Rel, args...)
	}
	dist := make([]int, len(q.Head))
	for i, v := range q.Head {
		dist[i] = id[v]
		s.AddElement(id[v]) // keep isolated head variables in the domain
	}
	return &Tableau{S: s, Dist: dist, Var: names}
}

// FromTableau converts a tableau back into a CQ. Elements are named
// using names when provided (falling back to xN). The head lists the
// distinguished tuple in order.
func FromTableau(s *relstr.Structure, dist []int, names map[int]string) *Query {
	name := func(e int) string {
		if n, ok := names[e]; ok {
			return n
		}
		return fmt.Sprintf("x%d", e)
	}
	q := &Query{Name: "Q"}
	for _, e := range dist {
		q.Head = append(q.Head, name(e))
	}
	for _, rel := range s.Relations() {
		for _, t := range s.SortedTuples(rel) {
			args := make([]string, len(t))
			for i, e := range t {
				args[i] = name(e)
			}
			q.Atoms = append(q.Atoms, Atom{Rel: rel, Args: args})
		}
	}
	return q
}

// Rename returns a copy of q with variables renamed canonically
// (v0, v1, … by first occurrence). Useful for comparing queries
// syntactically.
func (q *Query) Rename() *Query {
	vars := q.Vars()
	ren := make(map[string]string, len(vars))
	for i, v := range vars {
		ren[v] = fmt.Sprintf("v%d", i)
	}
	out := q.Clone()
	for i := range out.Head {
		out.Head[i] = ren[out.Head[i]]
	}
	for i := range out.Atoms {
		for j := range out.Atoms[i].Args {
			out.Atoms[i].Args[j] = ren[out.Atoms[i].Args[j]]
		}
	}
	return out
}

// SortAtoms returns a copy of q with atoms sorted lexicographically;
// combined with Rename it gives a syntactic normal form.
func (q *Query) SortAtoms() *Query {
	out := q.Clone()
	sort.Slice(out.Atoms, func(i, j int) bool {
		return out.Atoms[i].String() < out.Atoms[j].String()
	})
	return out
}

// CanonicalKey returns a deterministic string identifying q up to
// variable renaming and atom reordering (alpha-equivalence): two
// alpha-equivalent queries get equal keys, and equal keys imply
// alpha-equivalence, so the key is sound and complete for caching
// prepared plans at the syntactic level. It is NOT complete for
// *semantic* equivalence — homomorphically equivalent but syntactically
// different queries get different keys, which costs at most a cache
// miss, never a wrong hit.
//
// The key is the canonical form of q's pointed tableau
// (relstr.CanonicalKey): alpha-equivalent queries have isomorphic
// tableaux and vice versa. The head predicate name is deliberately
// excluded — Q(x) :- E(x,y) and P(x) :- E(x,y) are the same query —
// and duplicate atoms collapse, as they do in the tableau. For queries
// whose tableau symmetry exceeds the canonicalization budget the key
// degrades to a deterministic heuristic labeling (still sound; see
// relstr.CanonicalKey).
func (q *Query) CanonicalKey() string {
	tb := q.Tableau()
	return relstr.CanonicalKey(tb.S, tb.Dist)
}
