package cq

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// The parser must never panic: on arbitrary byte soup it either parses
// or returns an error.
func TestQuickParseNeverPanics(t *testing.T) {
	alphabet := "Qq(),:-. xyzERS123'_\t\n"
	f := func(seed int64) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		rng := rand.New(rand.NewSource(seed))
		var b strings.Builder
		n := rng.Intn(60)
		for i := 0; i < n; i++ {
			b.WriteByte(alphabet[rng.Intn(len(alphabet))])
		}
		_, _ = Parse(b.String())
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Mutations of a valid query never panic and, when they parse, yield a
// query that survives Validate and round-trips through String.
func TestQuickParseMutations(t *testing.T) {
	base := "Q(x,y) :- E(x,y), R(y,z,w), E(w,x)"
	f := func(seed int64) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		rng := rand.New(rand.NewSource(seed))
		bs := []byte(base)
		for i := 0; i < 1+rng.Intn(3); i++ {
			pos := rng.Intn(len(bs))
			switch rng.Intn(3) {
			case 0:
				bs[pos] = byte("(),:-.xyzE"[rng.Intn(10)])
			case 1:
				bs = append(bs[:pos], bs[pos+1:]...)
			case 2:
				bs = append(bs[:pos], append([]byte{byte(rng.Intn(94) + 33)}, bs[pos:]...)...)
			}
		}
		q, err := Parse(string(bs))
		if err != nil {
			return true
		}
		if q.Validate() != nil {
			return false // Parse must only return validated queries
		}
		if _, err := Parse(q.String()); err != nil {
			return false // printer output must re-parse
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Unicode and pathological whitespace inputs.
func TestParseExoticInputs(t *testing.T) {
	for _, src := range []string{
		"Q(□) :- E(□,ø)", // unicode identifiers are letters: allowed or clean error
		"Q(é) :- E(é,é)",
		strings.Repeat(" ", 1000) + "Q(x) :- E(x,x)" + strings.Repeat(".", 1),
		"Q(x) :- E(x,\x00y)",
	} {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("Parse(%q) panicked: %v", src, r)
				}
			}()
			_, _ = Parse(src)
		}()
	}
	// An accented identifier parses (letters per unicode.IsLetter).
	q, err := Parse("Q(é) :- E(é,é)")
	if err != nil {
		t.Fatalf("unicode identifier rejected: %v", err)
	}
	if q.NumVars() != 1 {
		t.Fatalf("vars = %d", q.NumVars())
	}
}
