package cq

import (
	"strings"
	"testing"
)

func TestParseBasic(t *testing.T) {
	q, err := Parse("Q(x,y) :- E(x,y), E(y,z), E(z,x)")
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != "Q" || len(q.Head) != 2 || len(q.Atoms) != 3 {
		t.Fatalf("parsed %v", q)
	}
	if q.NumJoins() != 2 {
		t.Fatalf("NumJoins = %d, want 2", q.NumJoins())
	}
	if q.IsBoolean() {
		t.Fatal("query with head vars reported Boolean")
	}
}

func TestParseBooleanForms(t *testing.T) {
	for _, src := range []string{
		"Q() :- E(x,x)",
		"Q :- E(x,x)",
		"Q :- E(x,x).",
		"  Q  ( )  :-  E ( x , x )  .  ",
	} {
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		if !q.IsBoolean() {
			t.Fatalf("Parse(%q) not Boolean", src)
		}
		if len(q.Atoms) != 1 || q.Atoms[0].Rel != "E" {
			t.Fatalf("Parse(%q) = %v", src, q)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"",
		"Q(x)",
		"Q(x) :- ",
		"Q(x) :- E(x,y,z), E(x,y)", // arity clash
		"Q(w) :- E(x,y)",           // head var not in body
		"Q(x) :- E(x,y) garbage",
		"Q(x) :- E()",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestPrimedVariables(t *testing.T) {
	q, err := Parse("Q(x') :- E(x', y''), E(y'', x')")
	if err != nil {
		t.Fatal(err)
	}
	if q.Head[0] != "x'" {
		t.Fatalf("head = %v", q.Head)
	}
}

func TestStringRoundTrip(t *testing.T) {
	for _, src := range []string{
		"Q(x,y) :- E(x,y), E(y,z), E(z,x)",
		"Q() :- R(x,u,y), R(y,v,z), R(z,w,x)",
		"P(a) :- S(a,a)",
	} {
		q := MustParse(src)
		q2, err := Parse(q.String())
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v", q.String(), err)
		}
		if q.String() != q2.String() {
			t.Fatalf("round trip: %q != %q", q.String(), q2.String())
		}
	}
}

func TestVarsOrder(t *testing.T) {
	q := MustParse("Q(y) :- E(x,y), E(y,z)")
	vars := q.Vars()
	want := []string{"y", "x", "z"}
	if len(vars) != 3 {
		t.Fatalf("Vars = %v", vars)
	}
	for i := range want {
		if vars[i] != want[i] {
			t.Fatalf("Vars = %v, want %v", vars, want)
		}
	}
}

func TestTableau(t *testing.T) {
	q := MustParse("Q(x,x) :- E(x,y), E(y,x)")
	tb := q.Tableau()
	if len(tb.Dist) != 2 || tb.Dist[0] != tb.Dist[1] {
		t.Fatalf("Dist = %v", tb.Dist)
	}
	if tb.S.NumFacts() != 2 || tb.S.DomainSize() != 2 {
		t.Fatalf("tableau = %v", tb.S)
	}
}

func TestTableauRepeatedAtomsCollapse(t *testing.T) {
	// Duplicate atoms are set-collapsed in the tableau.
	q := MustParse("Q() :- E(x,y), E(x,y)")
	tb := q.Tableau()
	if tb.S.NumFacts() != 1 {
		t.Fatalf("NumFacts = %d, want 1", tb.S.NumFacts())
	}
}

func TestFromTableauRoundTrip(t *testing.T) {
	q := MustParse("Q(x) :- E(x,y), E(y,z), E(z,x)")
	tb := q.Tableau()
	back := FromTableau(tb.S, tb.Dist, tb.Var)
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	tb2 := back.Tableau()
	if tb2.S.NumFacts() != tb.S.NumFacts() || len(tb2.Dist) != len(tb.Dist) {
		t.Fatalf("round trip changed tableau: %v vs %v", tb2.S, tb.S)
	}
}

func TestIsolatedHeadVariableKeptInDomain(t *testing.T) {
	// Q(x) :- E(x,x) has x in the body; but a head var can be isolated
	// only via body presence, so test the AddElement path with a
	// distinguished element that appears in one loop atom only.
	q := MustParse("Q(x,y) :- E(x,x), E(y,y)")
	tb := q.Tableau()
	if tb.S.DomainSize() != 2 {
		t.Fatalf("domain = %v", tb.S.Domain())
	}
}

func TestRenameNormalForm(t *testing.T) {
	a := MustParse("Q(u) :- E(u,w), E(w,u)")
	b := MustParse("Q(x) :- E(x,y), E(y,x)")
	if a.Rename().SortAtoms().String() != b.Rename().SortAtoms().String() {
		t.Fatalf("rename normal forms differ: %q vs %q",
			a.Rename().SortAtoms(), b.Rename().SortAtoms())
	}
}

func TestSchema(t *testing.T) {
	q := MustParse("Q() :- R(x,y,z), E(x,y)")
	sch := q.Schema()
	if sch["R"] != 3 || sch["E"] != 2 || len(sch) != 2 {
		t.Fatalf("Schema = %v", sch)
	}
}

func TestCloneIndependence(t *testing.T) {
	q := MustParse("Q(x) :- E(x,y)")
	c := q.Clone()
	c.Atoms[0].Args[0] = "zzz"
	c.Head[0] = "zzz"
	if strings.Contains(q.String(), "zzz") {
		t.Fatal("Clone shares slices with original")
	}
}

func TestCanonicalKeyAlphaEquivalence(t *testing.T) {
	// Pairs of alpha-equivalent queries (renamed variables, reordered
	// atoms) must collide; the second pair is the multi-relation cycle
	// where a naive rename/sort fixpoint diverges by starting order.
	equal := [][2]string{
		{"Q(x) :- E(x,y), E(y,z), E(z,x)", "P(a) :- E(c,a), E(a,b), E(b,c)"},
		{
			"Q() :- E(x,y), F(y,x), E(y,z), F(z,y), E(z,x)",
			"Q() :- F(tC,tB), F(tB,tA), E(tC,tA), E(tB,tC), E(tA,tB)",
		},
		{"Q(u,u) :- E(u,v)", "Q(a,a) :- E(a,b)"},
		// Fully symmetric tableau (directed 5-cycle): refinement alone
		// cannot break the tie; individualization must.
		{
			"Q() :- E(a,b), E(b,c), E(c,d), E(d,e), E(e,a)",
			"Q() :- E(v3,v4), E(v1,v2), E(v5,v1), E(v2,v3), E(v4,v5)",
		},
	}
	for _, pair := range equal {
		k1 := MustParse(pair[0]).CanonicalKey()
		k2 := MustParse(pair[1]).CanonicalKey()
		if k1 != k2 {
			t.Errorf("keys differ for alpha-equivalent queries:\n  %s -> %s\n  %s -> %s",
				pair[0], k1, pair[1], k2)
		}
	}
	distinct := [][2]string{
		{"Q() :- E(x,y), E(y,z), E(z,x)", "Q() :- E(x,y), E(y,z), E(z,w), E(w,x)"},
		// Same body, different head: tableaux differ in the
		// distinguished tuple.
		{"Q(x) :- E(x,y)", "Q(y) :- E(x,y)"},
		{"Q(x) :- E(x,y)", "Q() :- E(x,y)"},
	}
	for _, pair := range distinct {
		k1 := MustParse(pair[0]).CanonicalKey()
		k2 := MustParse(pair[1]).CanonicalKey()
		if k1 == k2 {
			t.Errorf("keys collide for non-equivalent queries %s and %s: %s", pair[0], pair[1], k1)
		}
	}
}
