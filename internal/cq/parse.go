package cq

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// Parse reads a CQ in rule notation:
//
//	Q(x, y) :- E(x, y), E(y, z)
//	Q() :- E(x, x)
//	Q :- E(x, y), E(y, x)           (Boolean, head parentheses optional)
//
// A trailing period is accepted. Variable and relation names are
// identifiers: a letter or underscore followed by letters, digits,
// underscores or primes (').
func Parse(input string) (*Query, error) {
	p := &parser{src: input}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// MustParse is Parse that panics on error; intended for tests and
// examples with literal queries.
func MustParse(input string) *Query {
	q, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return q
}

// ParseError reports a syntax error with its position in the input:
// Offset is the byte offset, Line and Col are 1-based and computed over
// the raw input (tabs count as one column).
type ParseError struct {
	Offset int
	Line   int
	Col    int
	Msg    string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("cq: parse error at %d:%d (offset %d): %s", e.Line, e.Col, e.Offset, e.Msg)
}

type parser struct {
	src string
	pos int
}

func (p *parser) errf(format string, args ...interface{}) error {
	line, col := 1, 1
	for i := 0; i < p.pos && i < len(p.src); i++ {
		if p.src[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return &ParseError{Offset: p.pos, Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && unicode.IsSpace(rune(p.src[p.pos])) {
		p.pos++
	}
}

func (p *parser) peek() byte {
	if p.pos < len(p.src) {
		return p.src[p.pos]
	}
	return 0
}

func (p *parser) eat(c byte) bool {
	p.skipSpace()
	if p.peek() == c {
		p.pos++
		return true
	}
	return false
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || r == '\'' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (p *parser) ident() (string, error) {
	p.skipSpace()
	start := p.pos
	r, size := utf8.DecodeRuneInString(p.src[p.pos:])
	if size == 0 || r == utf8.RuneError && size == 1 || !isIdentStart(r) {
		return "", p.errf("expected identifier")
	}
	p.pos += size
	for p.pos < len(p.src) {
		r, size := utf8.DecodeRuneInString(p.src[p.pos:])
		if r == utf8.RuneError && size == 1 || !isIdentPart(r) {
			break
		}
		p.pos += size
	}
	return p.src[start:p.pos], nil
}

// argList parses "( ident , ident , … )", allowing the empty list "()".
func (p *parser) argList() ([]string, error) {
	if !p.eat('(') {
		return nil, p.errf("expected '('")
	}
	var args []string
	p.skipSpace()
	if p.eat(')') {
		return args, nil
	}
	for {
		v, err := p.ident()
		if err != nil {
			return nil, err
		}
		args = append(args, v)
		if p.eat(',') {
			continue
		}
		if p.eat(')') {
			return args, nil
		}
		return nil, p.errf("expected ',' or ')'")
	}
}

func (p *parser) parseQuery() (*Query, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	q := &Query{Name: name}
	p.skipSpace()
	if p.peek() == '(' {
		head, err := p.argList()
		if err != nil {
			return nil, err
		}
		q.Head = head
	}
	p.skipSpace()
	if !strings.HasPrefix(p.src[p.pos:], ":-") {
		return nil, p.errf("expected ':-'")
	}
	p.pos += 2
	for {
		rel, err := p.ident()
		if err != nil {
			return nil, err
		}
		args, err := p.argList()
		if err != nil {
			return nil, err
		}
		if len(args) == 0 {
			return nil, p.errf("atom %s has no arguments", rel)
		}
		q.Atoms = append(q.Atoms, Atom{Rel: rel, Args: args})
		if p.eat(',') {
			continue
		}
		break
	}
	p.eat('.')
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, p.errf("unexpected trailing input %q", p.src[p.pos:])
	}
	if len(q.Atoms) == 0 {
		return nil, p.errf("query has no atoms")
	}
	return q, nil
}
