package eval

// The schedule is the static half of the indexed join runtime: every
// column mapping the Yannakakis pipeline needs — which columns key
// each semijoin probe, which columns a join copies, what each node
// projects onto — depends only on the join tree and the atoms'
// variable lists, never on the data. A Plan therefore computes its
// schedule once at prepare time (NewPlan) and every Eval/Stream call
// replays it against per-database indexes; ad-hoc callers
// (ByTreeDecomposition, the free Yannakakis functions) derive a
// schedule from their freshly built forest, which costs O(|Q|²) ints —
// nothing against the data-sized work that follows.

// sjStep is one semijoin reduction step: filter target's rows to those
// matching source on the aligned column pairs (tCols[k] in the target
// row pairs with sCols[k] in the source row).
type sjStep struct {
	target, source int
	tCols, sCols   []int
}

// jStep is one join step of the bottom-up solve: probe the child's
// relation keyed on rCols with the accumulator's lCols, appending the
// child's rExtra columns to each matching accumulator row.
//
// skip marks steps that copy no columns (rExtra empty): after the full
// two-pass semijoin reduction the forest is globally consistent —
// every surviving row extends to a complete assignment — so a join
// that would only *filter* the accumulator filters nothing and is
// elided entirely. The flag is static (it depends only on the variable
// flow), which is what lets whole subtrees drop out of the solve phase
// at prepare time.
type jStep struct {
	child                int
	lCols, rCols, rExtra []int
	outVars              []int
	skip                 bool
}

// nodeSched is the solve-phase program of one node: join every child,
// then project onto projCols (nil = identity, the projection would
// keep every column).
type nodeSched struct {
	joins    []jStep
	projCols []int
	vars     []int // the node's upward relation variables
}

// schedule is a full static program for one join forest.
type schedule struct {
	postorder []int
	preorder  []int
	children  [][]int    // forest shape, for the executor's subtree fan-out
	downOf    [][]sjStep // bottom-up steps, applied visiting postorder
	upOf      [][]sjStep // top-down steps, applied visiting preorder
	nodes     []nodeSched
	roots     []int
	rootJoins []jStep // cross product across components onto total
	totalVars []int
	head      []int
	headCols  []int // head positions in totalVars

	// Post-reduction dead-step analysis (see jStep.skip). needed marks
	// the nodes whose solve output some retained join consumes; the
	// others never materialise an upward relation. When the analysis
	// eliminates every join — the head lives inside one atom, as in
	// chain and star queries — the whole solve phase collapses to a
	// direct head projection of directNode's reduced rows through
	// directCols; directNode is -1 when no such shortcut exists and
	// unitNode for Boolean-shaped schedules whose answer is the unit
	// relation.
	needed     []bool
	directNode int
	directCols []int // head positions in vars[directNode]
}

// unitNode is the directNode sentinel for schedules where every
// component's contribution is empty (Boolean queries): the solve
// result is the unit relation, a single empty row.
const unitNode = -2

// sharedCols returns the aligned column pairs of the variables common
// to a and b, in a's order (the order sharedVars uses).
func sharedCols(a, b []int) (aCols, bCols []int) {
	for i, v := range a {
		for j, w := range b {
			if v == w {
				aCols = append(aCols, i)
				bCols = append(bCols, j)
				break
			}
		}
	}
	return aCols, bCols
}

// newSchedule builds the static program for a forest with the given
// per-node variable lists, parent/children links, and head.
func newSchedule(vars [][]int, parent []int, children [][]int, head []int) *schedule {
	sc := &schedule{
		children: children,
		downOf:   make([][]sjStep, len(vars)),
		upOf:     make([][]sjStep, len(vars)),
		nodes:    make([]nodeSched, len(vars)),
		head:     append([]int{}, head...),
	}
	freeSet := map[int]bool{}
	for _, v := range head {
		freeSet[v] = true
	}
	for i := range vars {
		if parent[i] == -1 {
			sc.roots = append(sc.roots, i)
		}
	}
	// Orders and semijoin steps.
	var post func(i int)
	post = func(i int) {
		for _, c := range children[i] {
			post(c)
		}
		for _, c := range children[i] {
			tc, scols := sharedCols(vars[i], vars[c])
			sc.downOf[i] = append(sc.downOf[i], sjStep{target: i, source: c, tCols: tc, sCols: scols})
		}
		sc.postorder = append(sc.postorder, i)
	}
	var pre func(i int)
	pre = func(i int) {
		sc.preorder = append(sc.preorder, i)
		for _, c := range children[i] {
			tc, scols := sharedCols(vars[c], vars[i])
			sc.upOf[i] = append(sc.upOf[i], sjStep{target: c, source: i, tCols: tc, sCols: scols})
		}
		for _, c := range children[i] {
			pre(c)
		}
	}
	for _, r := range sc.roots {
		post(r)
	}
	for _, r := range sc.roots {
		pre(r)
	}
	// Solve phase: simulate the join/projection variable flow.
	var solve func(i int) []int
	solve = func(i int) []int {
		acc := vars[i]
		ns := &sc.nodes[i]
		for _, c := range children[i] {
			cv := solve(c)
			lCols, rCols := sharedCols(acc, cv)
			var rExtra []int
			outVars := append([]int{}, acc...)
			for j, v := range cv {
				if indexOfOrNeg(acc, v) == -1 {
					rExtra = append(rExtra, j)
					outVars = append(outVars, v)
				}
			}
			ns.joins = append(ns.joins, jStep{child: c, lCols: lCols, rCols: rCols, rExtra: rExtra, outVars: outVars})
			acc = outVars
		}
		// Keep: free variables of the subtree ∪ connector to parent.
		var keep, keepCols []int
		for j, v := range acc {
			kept := freeSet[v]
			if p := parent[i]; !kept && p != -1 {
				kept = indexOfOrNeg(vars[p], v) != -1
			}
			if kept {
				keep = append(keep, v)
				keepCols = append(keepCols, j)
			}
		}
		if len(keep) == len(acc) {
			ns.projCols = nil // identity: the join output is already deduplicated
			ns.vars = acc
		} else {
			ns.projCols = keepCols
			ns.vars = keep
		}
		return ns.vars
	}
	total := []int{}
	for _, r := range sc.roots {
		rv := solve(r)
		lCols, rCols := sharedCols(total, rv)
		var rExtra []int
		outVars := append([]int{}, total...)
		for j, v := range rv {
			if indexOfOrNeg(total, v) == -1 {
				rExtra = append(rExtra, j)
				outVars = append(outVars, v)
			}
		}
		sc.rootJoins = append(sc.rootJoins, jStep{child: r, lCols: lCols, rCols: rCols, rExtra: rExtra, outVars: outVars})
		total = outVars
	}
	sc.totalVars = total
	sc.headCols = make([]int, len(head))
	for i, v := range head {
		sc.headCols[i] = indexOf(total, v)
	}
	sc.analyze(vars)
	return sc
}

// analyze computes the post-reduction dead-step information: which
// joins copy no columns (skip), which nodes still materialise a solve
// relation (needed), and whether the whole solve collapses to a direct
// head projection (directNode/directCols).
func (sc *schedule) analyze(vars [][]int) {
	for i := range sc.nodes {
		for k := range sc.nodes[i].joins {
			sc.nodes[i].joins[k].skip = len(sc.nodes[i].joins[k].rExtra) == 0
		}
	}
	live := -1 // the unique retained rootJoin, if exactly one
	for k := range sc.rootJoins {
		sc.rootJoins[k].skip = len(sc.rootJoins[k].rExtra) == 0
		if !sc.rootJoins[k].skip {
			if live == -1 {
				live = k
			} else {
				live = -3 // several components contribute columns
			}
		}
	}
	sc.needed = make([]bool, len(sc.nodes))
	var mark func(i int)
	mark = func(i int) {
		sc.needed[i] = true
		for _, st := range sc.nodes[i].joins {
			if !st.skip {
				mark(st.child)
			}
		}
	}
	for _, st := range sc.rootJoins {
		if !st.skip {
			mark(st.child)
		}
	}
	sc.directNode = -1
	switch {
	case live == -1:
		// Every component's contribution is empty: Boolean query, the
		// solve result is the unit relation (head is necessarily empty —
		// a head variable would be kept by its component's root).
		sc.directNode = unitNode
	case live >= 0:
		r := sc.rootJoins[live].child
		allSkipped := true
		for _, st := range sc.nodes[r].joins {
			if !st.skip {
				allSkipped = false
				break
			}
		}
		if allSkipped {
			// The one contributing component runs no joins either: the
			// answers are the head projection of the root's reduced rows
			// (head ⊆ keep(root) ⊆ vars[root]), folding the root's own
			// projection into the head projection.
			sc.directNode = r
			sc.directCols = make([]int, len(sc.head))
			for i, v := range sc.head {
				sc.directCols[i] = indexOf(vars[r], v)
			}
		}
	}
}

// newScheduleFromNodes derives a schedule from an already-built forest
// (the path taken by callers without a Plan).
func newScheduleFromNodes(nodes []node, head []int) *schedule {
	vars := make([][]int, len(nodes))
	parent := make([]int, len(nodes))
	children := make([][]int, len(nodes))
	for i := range nodes {
		vars[i] = nodes[i].vars
		parent[i] = nodes[i].parent
		children[i] = nodes[i].children
	}
	return newSchedule(vars, parent, children, head)
}

// indexOfOrNeg is indexOf without the panic: -1 when v is absent.
func indexOfOrNeg(vars []int, v int) int {
	for i, x := range vars {
		if x == v {
			return i
		}
	}
	return -1
}
