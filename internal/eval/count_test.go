package eval

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cqapprox/internal/cq"
	"cqapprox/internal/relstr"
)

// countForTest is the exact count through the counting subsystem with
// the parallel thresholds forced down (see evalTuned): the DP/dedup
// product for exactly countable plans, the evaluation fallback for
// acyclic plans with a sampling tree, enumeration for naive plans.
func (p *Plan) countForTest(ctx context.Context, src Source, par int) (uint64, error) {
	if p.mode != PlanYannakakis {
		return p.CountEnum(ctx, src)
	}
	if !p.ExactCountable() {
		ans, err := p.evalTuned(ctx, src, par)
		if err != nil {
			return 0, err
		}
		return uint64(len(ans)), nil
	}
	run, err := p.prepareCount(ctx, src, par, true, false)
	if err != nil {
		return 0, err
	}
	defer run.Close()
	if run.Empty() {
		return 0, nil
	}
	total := uint64(1)
	for t := 0; t < run.Trees(); t++ {
		n, ok, err := run.TreeExact(ctx, t)
		if err != nil {
			return 0, err
		}
		if !ok {
			panic("countForTest: sampling tree on an ExactCountable plan")
		}
		var mulOK bool
		if total, mulOK = mulU64(total, n); !mulOK {
			return 0, ErrCountOverflow
		}
	}
	return total, nil
}

// FuzzCountEquivalence asserts the exact count equals the length of
// the reference evaluation on random acyclic queries and databases,
// across both storage backends and serial/parallel execution.
func FuzzCountEquivalence(f *testing.F) {
	f.Add(int64(1))
	f.Add(int64(42))
	f.Add(int64(-7))
	f.Add(int64(1234567))
	f.Fuzz(func(t *testing.T, seed int64) {
		ctx := context.Background()
		rng := rand.New(rand.NewSource(seed))
		q := randomQuery(rng, true)
		db := randomDB(rng, 5, 9)
		p := NewPlan(q)
		want, err := p.EvalBaseline(ctx, db)
		if err != nil {
			t.Fatal(err)
		}
		snap := relstr.NewSnapshot(db)
		for _, par := range []int{1, 4} {
			for _, src := range []struct {
				name string
				s    Source
			}{{"struct", NewSource(db)}, {"snapshot", NewSnapshotSource(snap)}} {
				got, err := p.countForTest(ctx, src.s, par)
				if err != nil {
					t.Fatal(err)
				}
				if got != uint64(len(want)) {
					t.Fatalf("count(%s, par=%d) = %d, want %d (countable=%v)\n  q=%v\n  answers=%v",
						src.name, par, got, len(want), p.ExactCountable(), q, want)
				}
			}
		}
	})
}

// The quickcheck twin of the fuzz target, run on every plain `go test`.
func TestQuickCountMatchesEval(t *testing.T) {
	ctx := context.Background()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := randomQuery(rng, true)
		db := randomDB(rng, 5, 9)
		p := NewPlan(q)
		want, err := p.EvalBaseline(ctx, db)
		if err != nil {
			return false
		}
		for _, par := range []int{1, 4} {
			got, err := p.countForTest(ctx, NewSource(db), par)
			if err != nil || got != uint64(len(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Repeated head variables: a head tuple repeats values, but distinct
// answers are still assignments of the distinct variable set — the
// regression surface for multiplicity bugs.
func TestCountRepeatedHeadVars(t *testing.T) {
	ctx := context.Background()
	cases := []string{
		"Q(x,x) :- E(x,y), E(y,x)",
		"Q(x,y,x) :- E(x,y), E(y,z)",
		"Q(x,x,y) :- E(x,y)",
		"Q(x) :- E(x,x)",
		"Q() :- E(x,x), E(x,y)",
	}
	db := graphDB([2]int{0, 0}, [2]int{0, 1}, [2]int{1, 0}, [2]int{1, 2}, [2]int{3, 3}, [2]int{2, 2})
	for _, src := range cases {
		q := cq.MustParse(src)
		p := NewPlan(q)
		want, err := p.EvalBaseline(ctx, db)
		if err != nil {
			t.Fatal(err)
		}
		got, err := p.countForTest(ctx, NewSource(db), 4)
		if err != nil {
			t.Fatal(err)
		}
		if got != uint64(len(want)) {
			t.Fatalf("%s: count = %d, want %d", src, got, len(want))
		}
	}
}

// The prepare-time classification picks the expected mode per query
// shape.
func TestCountClassification(t *testing.T) {
	cases := []struct {
		src      string
		kind     countKind
		sampling bool
	}{
		{"Q() :- E(x,y), E(y,z)", countUnit, false},
		{"Q(x,y) :- E(x,y), E(y,z)", countNode, false},
		{"Q(y) :- E(x,y), E(y,z)", countNode, false},
		{"Q(x,y,z) :- E(x,y), E(y,z)", countDP, false},
		{"Q(x,z) :- E(x,y), E(y,z)", countSample, true},
		{"Q(x,w) :- E(x,y), E(y,z), E(z,w)", countSample, true},
	}
	for _, c := range cases {
		p := NewPlan(cq.MustParse(c.src))
		if p.mode != PlanYannakakis {
			t.Fatalf("%s: expected acyclic plan", c.src)
		}
		if len(p.csched.trees) != 1 {
			t.Fatalf("%s: %d trees, want 1", c.src, len(p.csched.trees))
		}
		if got := p.csched.trees[0].kind; got != c.kind {
			t.Errorf("%s: kind = %v, want %v", c.src, got, c.kind)
		}
		if got := p.ExactCountable(); got == c.sampling {
			t.Errorf("%s: ExactCountable = %v", c.src, got)
		}
	}
	// Naive plans are never exactly countable through the forest.
	if NewPlan(cq.MustParse("Q(x) :- E(x,y), E(y,z), E(z,x)")).ExactCountable() {
		t.Error("cyclic plan claims ExactCountable")
	}
}

// PrepareCount refuses naive plans; CountEnum covers them.
func TestCountNaiveFallback(t *testing.T) {
	ctx := context.Background()
	q := cq.MustParse("Q(x) :- E(x,y), E(y,z), E(z,x)")
	db := graphDB([2]int{0, 1}, [2]int{1, 2}, [2]int{2, 0}, [2]int{0, 0})
	p := NewPlan(q)
	if _, err := p.PrepareCount(ctx, NewSource(db), 1); err != ErrNotAcyclic {
		t.Fatalf("PrepareCount on naive plan: err = %v, want ErrNotAcyclic", err)
	}
	want, err := p.EvalBaseline(ctx, db)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.CountEnum(ctx, NewSource(db))
	if err != nil {
		t.Fatal(err)
	}
	if got != uint64(len(want)) {
		t.Fatalf("CountEnum = %d, want %d", got, len(want))
	}
}

// The sampler's normalising constant is the tree's full-join size and
// the per-sample estimates N/m average out to the true distinct count
// (fixed seed; the sample mean over a few thousand draws must land
// well within 10%).
func TestCountSamplerConverges(t *testing.T) {
	ctx := context.Background()
	q := cq.MustParse("Q(x,z) :- E(x,y), E(y,z)")
	rng := rand.New(rand.NewSource(7))
	db := randomDB(rng, 12, 60)
	p := NewPlan(q)
	if p.ExactCountable() {
		t.Fatal("expected a sampling plan")
	}
	want, err := p.EvalBaseline(ctx, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("degenerate test database")
	}
	run, err := p.PrepareCount(ctx, NewSource(db), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer run.Close()
	if run.Trees() != 1 || run.TreeExactOK(0) {
		t.Fatal("expected one sampling tree")
	}
	total, err := run.TreeTotal(0)
	if err != nil {
		t.Fatal(err)
	}
	// N is the number of (x,y,z) assignments: count them naively.
	full := NewPlan(cq.MustParse("Q(x,y,z) :- E(x,y), E(y,z)"))
	fullAns, err := full.EvalBaseline(ctx, db)
	if err != nil {
		t.Fatal(err)
	}
	if total != float64(len(fullAns)) {
		t.Fatalf("TreeTotal = %v, want %d", total, len(fullAns))
	}
	srng := rand.New(rand.NewSource(99))
	sum := 0.0
	const draws = 4000
	for i := 0; i < draws; i++ {
		x, err := run.TreeSample(0, srng)
		if err != nil {
			t.Fatal(err)
		}
		sum += x
	}
	mean := sum / draws
	if rel := math.Abs(mean-float64(len(want))) / float64(len(want)); rel > 0.1 {
		t.Fatalf("sample mean %v vs true count %d (rel err %.3f)", mean, len(want), rel)
	}
}

// Checked arithmetic saturates into errors, not silent wraparound.
func TestCountCheckedArithmetic(t *testing.T) {
	if _, ok := addU64(math.MaxUint64, 1); ok {
		t.Error("addU64 missed overflow")
	}
	if s, ok := addU64(math.MaxUint64-1, 1); !ok || s != math.MaxUint64 {
		t.Errorf("addU64 = %d, %v", s, ok)
	}
	if _, ok := mulU64(1<<33, 1<<31); ok {
		t.Error("mulU64 missed overflow")
	}
	if m, ok := mulU64(1<<32, 1<<31); !ok || m != 1<<63 {
		t.Errorf("mulU64 = %d, %v", m, ok)
	}
}

// An empty relation zeroes the count through every classification.
func TestCountEmpty(t *testing.T) {
	ctx := context.Background()
	q := cq.MustParse("Q(x,u) :- E(x,y), F(u,v)")
	db := relstr.New()
	db.Declare("E", 2)
	db.Declare("F", 2)
	db.Add("E", 1, 2)
	p := NewPlan(q)
	got, err := p.countForTest(ctx, NewSource(db), 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("count on empty F = %d", got)
	}
}
