package eval

import (
	"context"
	"iter"
	"sync/atomic"

	"cqapprox/internal/cq"
	"cqapprox/internal/hom"
	"cqapprox/internal/hypergraph"
	"cqapprox/internal/relstr"
)

// PlanMode identifies the evaluation strategy a Plan selected.
type PlanMode int

const (
	// PlanYannakakis: the query is acyclic; evaluation runs the
	// semijoin pipeline over the precomputed join tree, O(|D|·|Q|)
	// plus output cost.
	PlanYannakakis PlanMode = iota
	// PlanNaive: the query is cyclic; evaluation is backtracking
	// search, |D|^O(|Q|) worst case.
	PlanNaive
)

func (m PlanMode) String() string {
	switch m {
	case PlanYannakakis:
		return "yannakakis"
	case PlanNaive:
		return "naive"
	default:
		return "unknown"
	}
}

// Plan is a compiled evaluation strategy for one query, reusable across
// databases and safe for concurrent use (all fields are immutable after
// NewPlan). The static work — tableau construction, GYO join-tree
// computation, acyclicity analysis — happens once in NewPlan; Eval and
// Stream only do per-database work.
type Plan struct {
	q    *cq.Query
	tb   *cq.Tableau
	mode PlanMode
	// Yannakakis mode only:
	atoms  []patom
	jt     hypergraph.JoinTree
	sched  *schedule      // prepare-time index/probe program, reused per Eval
	csched *countSchedule // prepare-time counting classification (see count.go)
	// rerooted[i]: node i roots its tree only because rerootForHead
	// reoriented it toward the head (Explain reports the decision).
	rerooted []bool
	// ranked is the canonical lex-connex visit program (the head's
	// natural ascending key), nil when that order is not tractable on
	// this forest; rankedIDs is its key-id sequence, the cache key
	// rankProgramForSpec compares against. See rank.go.
	ranked    *rankProgram
	rankedIDs []int

	stats planStats
}

// planStats are the plan's cumulative indexed-runtime counters,
// updated once per evaluation (not per probe) and shared across every
// caller of a cached PreparedQuery.
type planStats struct {
	builds   atomic.Uint64
	probes   atomic.Uint64
	evals    atomic.Uint64
	parEvals atomic.Uint64

	exactCounts   atomic.Uint64
	estCounts     atomic.Uint64
	sampleBatches atomic.Uint64

	rankedEvals   atomic.Uint64
	rankFallbacks atomic.Uint64

	incrEvals     atomic.Uint64
	incrFallbacks atomic.Uint64
}

// IndexStats is a snapshot of the indexed runtime's counters for one
// plan: how many per-relation hash indexes its evaluations built, how
// many rows were driven through index probes, how many evaluations
// (Eval/EvalBool/stream reductions) ran, and how many of those ran
// with a parallel worker budget. The count counters track the answer
// counting subsystem: counts answered exactly (DP, dedup or
// enumeration), counts answered by the sampling estimator, and the
// median-of-means batches those estimates ran. The rank counters track
// ordered evaluation: calls that streamed through a lex-connex visit
// program, and calls whose key was untractable and fell back to
// eval+sort+truncate. The incremental counters track delta-aware
// maintenance (incr.go): IncrState.Apply calls that propagated a delta
// through the join forest, and Apply calls that fell back to a full
// re-evaluation (unsupported plan, oversized delta, stale state).
type IndexStats struct {
	IndexBuilds   uint64
	IndexProbes   uint64
	Evals         uint64
	ParallelEvals uint64

	ExactCounts     uint64
	EstimatedCounts uint64
	SampleBatches   uint64

	RankedEvals   uint64
	RankFallbacks uint64

	IncrementalEvals uint64
	IncrFallbacks    uint64
}

// IndexStats returns the plan's cumulative indexed-runtime counters.
func (p *Plan) IndexStats() IndexStats {
	return IndexStats{
		IndexBuilds:      p.stats.builds.Load(),
		IndexProbes:      p.stats.probes.Load(),
		Evals:            p.stats.evals.Load(),
		ParallelEvals:    p.stats.parEvals.Load(),
		ExactCounts:      p.stats.exactCounts.Load(),
		EstimatedCounts:  p.stats.estCounts.Load(),
		SampleBatches:    p.stats.sampleBatches.Load(),
		RankedEvals:      p.stats.rankedEvals.Load(),
		RankFallbacks:    p.stats.rankFallbacks.Load(),
		IncrementalEvals: p.stats.incrEvals.Load(),
		IncrFallbacks:    p.stats.incrFallbacks.Load(),
	}
}

// RecordCount folds one finished counting call into the plan totals:
// an exact count, or an estimated one with the number of
// median-of-means batches it ran.
func (p *Plan) RecordCount(estimated bool, batches uint64) {
	if estimated {
		p.stats.estCounts.Add(1)
		p.stats.sampleBatches.Add(batches)
	} else {
		p.stats.exactCounts.Add(1)
	}
}

// flush folds a finished evaluation's scratch counters into the plan
// totals and returns the scratch to the pool.
func (p *Plan) flush(sc *scratch) {
	p.stats.builds.Add(sc.stats.builds)
	p.stats.probes.Add(sc.stats.probes)
	p.stats.evals.Add(1)
	putScratch(sc)
}

// NewPlan analyses q and fixes the best applicable engine: Yannakakis
// over a GYO join tree when q is acyclic, naive backtracking otherwise.
// For acyclic queries the full index/probe schedule — every column
// mapping of the semijoin passes, the bottom-up joins and the head
// projection — is computed here, once, and replayed by every
// Eval/EvalBool/Stream call.
func NewPlan(q *cq.Query) *Plan {
	p := &Plan{q: q, tb: q.Tableau(), mode: PlanNaive}
	h := hypergraph.FromStructure(p.tb.S)
	if jt, ok := h.GYO(); ok {
		p.mode = PlanYannakakis
		p.jt = jt
		p.atoms = atomList(p.tb.S)
		vars := make([][]int, len(p.atoms))
		for i, a := range p.atoms {
			vars[i] = a.distinctVars()
		}
		// Re-root each tree of the forest at a node covering its head
		// variables when one exists: the schedule's dead-step analysis
		// then elides the entire solve phase (all joins merely filter,
		// which the semijoin reduction already did) — the difference
		// between a per-eval join pipeline and a single head projection.
		p.jt.Parent = rerootForHead(jt.Parent, vars, p.tb.Dist)
		p.rerooted = make([]bool, len(p.atoms))
		for i := range p.atoms {
			p.rerooted[i] = p.jt.Parent[i] == -1 && jt.Parent[i] != -1
		}
		p.sched = scheduleForAtoms(p.atoms, p.jt.Parent, p.tb.Dist)
		p.csched = newCountSchedule(vars, p.jt.Parent, p.sched, p.tb.Dist)
		// Classify the head's natural ascending key once: most ranked
		// calls (and every limit-only call) use it, and Explain reports
		// the connex/fallback decision from it.
		p.rankedIDs = dedupHeadIDs(p.sched.head, RankSpec{}.perm(len(p.sched.head)))
		p.ranked = p.buildRankProgram(p.rankedIDs)
	}
	return p
}

// rerootForHead returns a parent array for the same undirected forest,
// re-rooting each tree at its first node whose variables contain every
// head variable occurring in that tree (join-tree validity — the
// connected-subtree property per variable — is direction-independent).
// Trees with no such node keep their root.
func rerootForHead(parent []int, vars [][]int, head []int) []int {
	n := len(parent)
	adj := make([][]int, n)
	for i, p := range parent {
		if p >= 0 {
			adj[i] = append(adj[i], p)
			adj[p] = append(adj[p], i)
		}
	}
	headSet := map[int]bool{}
	for _, v := range head {
		headSet[v] = true
	}
	out := append([]int{}, parent...)
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	for r := 0; r < n; r++ {
		if comp[r] != -1 || parent[r] != -1 {
			continue
		}
		// Collect the tree and the head variables it mentions.
		tree := []int{r}
		comp[r] = r
		for k := 0; k < len(tree); k++ {
			for _, w := range adj[tree[k]] {
				if comp[w] == -1 {
					comp[w] = r
					tree = append(tree, w)
				}
			}
		}
		want := map[int]bool{}
		for _, i := range tree {
			for _, v := range vars[i] {
				if headSet[v] {
					want[v] = true
				}
			}
		}
		if len(want) == 0 {
			continue
		}
		root := -1
		for _, i := range tree {
			covered := 0
			for _, v := range vars[i] {
				if want[v] {
					covered++
				}
			}
			if covered == len(want) {
				root = i
				break
			}
		}
		if root == -1 || root == r {
			continue
		}
		// Reorient the tree from the new root.
		out[root] = -1
		seen := map[int]bool{root: true}
		stack := []int{root}
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range adj[u] {
				if !seen[w] {
					seen[w] = true
					out[w] = u
					stack = append(stack, w)
				}
			}
		}
	}
	return out
}

// Query returns the query the plan evaluates.
func (p *Plan) Query() *cq.Query { return p.q }

// Mode returns the selected strategy.
func (p *Plan) Mode() PlanMode { return p.mode }

// normPar resolves a worker budget: anything below two means serial.
func normPar(parallel int) int {
	if parallel < 1 {
		return 1
	}
	return parallel
}

// newForest builds the plan's per-call evaluation state against src.
func (p *Plan) newForest(src Source, sc *scratch, parallel int) *forest {
	f := newForest(p.atoms, src, sc, normPar(parallel))
	if f.par > 1 {
		p.stats.parEvals.Add(1)
	}
	return f
}

// Eval evaluates the plan's query on db, materialising the full
// deduplicated, sorted answer set. Serial; use EvalOn for an explicit
// backend and worker budget.
func (p *Plan) Eval(ctx context.Context, db *relstr.Structure) (Answers, error) {
	return p.EvalOn(ctx, NewSource(db), 1)
}

// EvalOn evaluates the plan's query against an explicit storage
// backend with the given worker budget (values below two mean serial).
// Answers — content and order — are identical across backends and
// budgets; what varies is where indexes come from (per call vs the
// snapshot's persistent cache) and how many cores the evaluation uses.
// Naive (cyclic) plans run the backtracking engine on the backend's
// structure and ignore the budget.
func (p *Plan) EvalOn(ctx context.Context, src Source, parallel int) (Answers, error) {
	if p.mode != PlanYannakakis {
		return naiveEval(ctx, p.tb, src.Structure())
	}
	sc := getScratch()
	defer p.flush(sc)
	f := p.newForest(src, sc, parallel)
	defer f.release()
	return evalForest(ctx, p.sched, f)
}

// EvalBool reports whether the query has at least one answer on db
// (Boolean evaluation / answer existence). For acyclic plans this is
// the single leaves→root semijoin pass, O(|D|·|Q|).
func (p *Plan) EvalBool(ctx context.Context, db *relstr.Structure) (bool, error) {
	return p.EvalBoolOn(ctx, NewSource(db), 1)
}

// EvalBoolOn is EvalBool against an explicit backend and worker budget;
// see EvalOn.
func (p *Plan) EvalBoolOn(ctx context.Context, src Source, parallel int) (bool, error) {
	if p.mode != PlanYannakakis {
		return naiveBool(ctx, p.tb, src.Structure())
	}
	sc := getScratch()
	defer p.flush(sc)
	f := p.newForest(src, sc, parallel)
	defer f.release()
	return f.runBool(ctx, p.sched)
}

// Stream enumerates distinct answers one at a time without
// materialising the full answer set, in discovery order (not sorted).
// For acyclic plans the database is first reduced by the full
// Yannakakis semijoin pass — O(|D|·|Q|) — so the subsequent
// enumeration backtracks only over tuples that participate in at least
// one locally consistent assignment; for naive plans the enumeration
// runs directly against db.
//
// Iteration stops early when ctx is cancelled (or the consumer breaks);
// use StreamErr to distinguish a truncated stream from an exhausted
// one. Every delivered tuple is a correct answer regardless of where
// iteration stopped.
func (p *Plan) Stream(ctx context.Context, db *relstr.Structure) iter.Seq[relstr.Tuple] {
	seq, _ := p.StreamErr(ctx, db)
	return seq
}

// StreamErr is Stream plus a terminal-error accessor: after the
// iteration ends (exhausted, broken, or cancelled), calling the
// returned function reports nil for a complete enumeration and the
// cancellation error if the search was cut short — an empty cancelled
// stream is thereby distinguishable from a genuinely empty answer set.
func (p *Plan) StreamErr(ctx context.Context, db *relstr.Structure) (iter.Seq[relstr.Tuple], func() error) {
	return p.StreamOnErr(ctx, NewSource(db), 1)
}

// StreamOn is Stream against an explicit backend and worker budget
// (the budget applies to the semijoin pre-reduction; the enumeration
// itself is inherently sequential).
func (p *Plan) StreamOn(ctx context.Context, src Source, parallel int) iter.Seq[relstr.Tuple] {
	seq, _ := p.StreamOnErr(ctx, src, parallel)
	return seq
}

// StreamOnErr is StreamOn plus the terminal-error accessor; see
// StreamErr.
func (p *Plan) StreamOnErr(ctx context.Context, src Source, parallel int) (iter.Seq[relstr.Tuple], func() error) {
	var terminal error
	seq := func(yield func(relstr.Tuple) bool) {
		target := src.Structure()
		if p.mode == PlanYannakakis {
			reduced, empty, err := p.reduceOn(ctx, src, parallel)
			if err != nil {
				terminal = err
				return
			}
			if empty {
				return
			}
			target = reduced
		}
		_, err := hom.ProjectCtx(ctx, p.tb.S, target, nil, p.tb.Dist, func(vals []int) bool {
			return yield(relstr.Tuple(vals).Clone())
		})
		if err != nil {
			terminal = err
		}
	}
	return seq, func() error { return terminal }
}

// reduceOn runs both semijoin passes against the backend and rebuilds a
// structure containing only the surviving tuples. Answers of the query
// on the reduced database equal those on the original: reduction only
// removes tuples that cannot take part in a global assignment. empty
// reports that some relation became empty, i.e. the answer set is
// empty.
func (p *Plan) reduceOn(ctx context.Context, src Source, parallel int) (_ *relstr.Structure, empty bool, _ error) {
	sc := getScratch()
	defer p.flush(sc)
	f := p.newForest(src, sc, parallel)
	defer f.release()
	if err := f.runPasses(ctx, p.sched); err != nil {
		return nil, false, err
	}
	out, empty := f.reduce(p.atoms, src.Structure())
	return out, empty, nil
}
