package eval

import (
	"context"
	"iter"

	"cqapprox/internal/cq"
	"cqapprox/internal/cqerr"
	"cqapprox/internal/hom"
	"cqapprox/internal/hypergraph"
	"cqapprox/internal/relstr"
)

// PlanMode identifies the evaluation strategy a Plan selected.
type PlanMode int

const (
	// PlanYannakakis: the query is acyclic; evaluation runs the
	// semijoin pipeline over the precomputed join tree, O(|D|·|Q|)
	// plus output cost.
	PlanYannakakis PlanMode = iota
	// PlanNaive: the query is cyclic; evaluation is backtracking
	// search, |D|^O(|Q|) worst case.
	PlanNaive
)

func (m PlanMode) String() string {
	switch m {
	case PlanYannakakis:
		return "yannakakis"
	case PlanNaive:
		return "naive"
	default:
		return "unknown"
	}
}

// Plan is a compiled evaluation strategy for one query, reusable across
// databases and safe for concurrent use (all fields are immutable after
// NewPlan). The static work — tableau construction, GYO join-tree
// computation, acyclicity analysis — happens once in NewPlan; Eval and
// Stream only do per-database work.
type Plan struct {
	q    *cq.Query
	tb   *cq.Tableau
	mode PlanMode
	// Yannakakis mode only:
	atoms []patom
	jt    hypergraph.JoinTree
}

// NewPlan analyses q and fixes the best applicable engine: Yannakakis
// over a GYO join tree when q is acyclic, naive backtracking otherwise.
func NewPlan(q *cq.Query) *Plan {
	p := &Plan{q: q, tb: q.Tableau(), mode: PlanNaive}
	h := hypergraph.FromStructure(p.tb.S)
	if jt, ok := h.GYO(); ok {
		p.mode = PlanYannakakis
		p.jt = jt
		p.atoms = atomList(p.tb.S)
	}
	return p
}

// Query returns the query the plan evaluates.
func (p *Plan) Query() *cq.Query { return p.q }

// Mode returns the selected strategy.
func (p *Plan) Mode() PlanMode { return p.mode }

// Eval evaluates the plan's query on db, materialising the full
// deduplicated, sorted answer set.
func (p *Plan) Eval(ctx context.Context, db *relstr.Structure) (Answers, error) {
	if p.mode == PlanYannakakis {
		nodes := buildJoinForest(p.atoms, p.jt, db)
		return solveTreeCtx(ctx, nodes, p.tb.Dist)
	}
	return naiveEval(ctx, p.tb, db)
}

// EvalBool reports whether the query has at least one answer on db
// (Boolean evaluation / answer existence). For acyclic plans this is
// the single leaves→root semijoin pass, O(|D|·|Q|).
func (p *Plan) EvalBool(ctx context.Context, db *relstr.Structure) (bool, error) {
	if p.mode == PlanYannakakis {
		return solveBoolForest(ctx, buildJoinForest(p.atoms, p.jt, db))
	}
	return naiveBool(ctx, p.tb, db)
}

// Stream enumerates distinct answers one at a time without
// materialising the full answer set, in discovery order (not sorted).
// For acyclic plans the database is first reduced by the full
// Yannakakis semijoin pass — O(|D|·|Q|) — so the subsequent
// enumeration backtracks only over tuples that participate in at least
// one locally consistent assignment; for naive plans the enumeration
// runs directly against db.
//
// Iteration stops early when ctx is cancelled (or the consumer breaks);
// use StreamErr to distinguish a truncated stream from an exhausted
// one. Every delivered tuple is a correct answer regardless of where
// iteration stopped.
func (p *Plan) Stream(ctx context.Context, db *relstr.Structure) iter.Seq[relstr.Tuple] {
	seq, _ := p.StreamErr(ctx, db)
	return seq
}

// StreamErr is Stream plus a terminal-error accessor: after the
// iteration ends (exhausted, broken, or cancelled), calling the
// returned function reports nil for a complete enumeration and the
// cancellation error if the search was cut short — an empty cancelled
// stream is thereby distinguishable from a genuinely empty answer set.
func (p *Plan) StreamErr(ctx context.Context, db *relstr.Structure) (iter.Seq[relstr.Tuple], func() error) {
	var terminal error
	seq := func(yield func(relstr.Tuple) bool) {
		target := db
		if p.mode == PlanYannakakis {
			reduced, empty, err := p.reduce(ctx, db)
			if err != nil {
				terminal = err
				return
			}
			if empty {
				return
			}
			target = reduced
		}
		_, err := hom.ProjectCtx(ctx, p.tb.S, target, nil, p.tb.Dist, func(vals []int) bool {
			return yield(relstr.Tuple(vals).Clone())
		})
		if err != nil {
			terminal = err
		}
	}
	return seq, func() error { return terminal }
}

// reduce runs both semijoin passes over the join forest and rebuilds a
// database containing only the surviving tuples. Answers of the query
// on the reduced database equal those on db: reduction only removes
// tuples that cannot take part in a global assignment. empty reports
// that some relation became empty, i.e. the answer set is empty.
func (p *Plan) reduce(ctx context.Context, db *relstr.Structure) (_ *relstr.Structure, empty bool, _ error) {
	nodes := buildJoinForest(p.atoms, p.jt, db)
	if err := semijoinPasses(ctx, nodes); err != nil {
		return nil, false, err
	}
	out := db.CloneSchema()
	for i, a := range p.atoms {
		if len(nodes[i].rows) == 0 {
			return nil, true, nil
		}
		// Rebuild the db tuples backing each surviving assignment row:
		// position j of the tuple holds the row value of the variable
		// at position j (repeated variables repeat the value).
		varIdx := make([]int, len(a.args))
		for j, v := range a.args {
			varIdx[j] = indexOf(nodes[i].vars, v)
		}
		for _, row := range nodes[i].rows {
			t := make([]int, len(a.args))
			for j, vi := range varIdx {
				t[j] = row[vi]
			}
			out.Add(a.rel, t...)
		}
	}
	return out, false, nil
}

// semijoinPasses runs the leaves→roots and roots→leaves semijoin
// reductions in place over a join forest.
func semijoinPasses(ctx context.Context, nodes []node) error {
	var roots []int
	for i := range nodes {
		if nodes[i].parent == -1 {
			roots = append(roots, i)
		}
	}
	var post func(i int) error
	post = func(i int) error {
		for _, c := range nodes[i].children {
			if err := post(c); err != nil {
				return err
			}
		}
		if err := cqerr.Check(ctx); err != nil {
			return err
		}
		for _, c := range nodes[i].children {
			nodes[i].rel = semijoin(nodes[i].rel, nodes[c].rel)
		}
		return nil
	}
	var pre func(i int) error
	pre = func(i int) error {
		if err := cqerr.Check(ctx); err != nil {
			return err
		}
		for _, c := range nodes[i].children {
			nodes[c].rel = semijoin(nodes[c].rel, nodes[i].rel)
			if err := pre(c); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range roots {
		if err := post(r); err != nil {
			return err
		}
	}
	for _, r := range roots {
		if err := pre(r); err != nil {
			return err
		}
	}
	return nil
}
