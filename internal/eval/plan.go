package eval

import (
	"context"
	"iter"
	"sync/atomic"

	"cqapprox/internal/cq"
	"cqapprox/internal/hom"
	"cqapprox/internal/hypergraph"
	"cqapprox/internal/relstr"
)

// PlanMode identifies the evaluation strategy a Plan selected.
type PlanMode int

const (
	// PlanYannakakis: the query is acyclic; evaluation runs the
	// semijoin pipeline over the precomputed join tree, O(|D|·|Q|)
	// plus output cost.
	PlanYannakakis PlanMode = iota
	// PlanNaive: the query is cyclic; evaluation is backtracking
	// search, |D|^O(|Q|) worst case.
	PlanNaive
)

func (m PlanMode) String() string {
	switch m {
	case PlanYannakakis:
		return "yannakakis"
	case PlanNaive:
		return "naive"
	default:
		return "unknown"
	}
}

// Plan is a compiled evaluation strategy for one query, reusable across
// databases and safe for concurrent use (all fields are immutable after
// NewPlan). The static work — tableau construction, GYO join-tree
// computation, acyclicity analysis — happens once in NewPlan; Eval and
// Stream only do per-database work.
type Plan struct {
	q    *cq.Query
	tb   *cq.Tableau
	mode PlanMode
	// Yannakakis mode only:
	atoms []patom
	jt    hypergraph.JoinTree
	sched *schedule // prepare-time index/probe program, reused per Eval

	stats planStats
}

// planStats are the plan's cumulative indexed-runtime counters,
// updated once per evaluation (not per probe) and shared across every
// caller of a cached PreparedQuery.
type planStats struct {
	builds atomic.Uint64
	probes atomic.Uint64
	evals  atomic.Uint64
}

// IndexStats is a snapshot of the indexed runtime's counters for one
// plan: how many per-relation hash indexes its evaluations built, how
// many rows were driven through index probes, and how many evaluations
// (Eval/EvalBool/stream reductions) ran.
type IndexStats struct {
	IndexBuilds uint64
	IndexProbes uint64
	Evals       uint64
}

// IndexStats returns the plan's cumulative indexed-runtime counters.
func (p *Plan) IndexStats() IndexStats {
	return IndexStats{
		IndexBuilds: p.stats.builds.Load(),
		IndexProbes: p.stats.probes.Load(),
		Evals:       p.stats.evals.Load(),
	}
}

// flush folds a finished evaluation's scratch counters into the plan
// totals and returns the scratch to the pool.
func (p *Plan) flush(sc *scratch) {
	p.stats.builds.Add(sc.stats.builds)
	p.stats.probes.Add(sc.stats.probes)
	p.stats.evals.Add(1)
	putScratch(sc)
}

// NewPlan analyses q and fixes the best applicable engine: Yannakakis
// over a GYO join tree when q is acyclic, naive backtracking otherwise.
// For acyclic queries the full index/probe schedule — every column
// mapping of the semijoin passes, the bottom-up joins and the head
// projection — is computed here, once, and replayed by every
// Eval/EvalBool/Stream call.
func NewPlan(q *cq.Query) *Plan {
	p := &Plan{q: q, tb: q.Tableau(), mode: PlanNaive}
	h := hypergraph.FromStructure(p.tb.S)
	if jt, ok := h.GYO(); ok {
		p.mode = PlanYannakakis
		p.jt = jt
		p.atoms = atomList(p.tb.S)
		vars := make([][]int, len(p.atoms))
		for i, a := range p.atoms {
			vars[i] = a.distinctVars()
		}
		children := make([][]int, len(p.atoms))
		for i, par := range jt.Parent {
			if par >= 0 {
				children[par] = append(children[par], i)
			}
		}
		p.sched = newSchedule(vars, jt.Parent, children, p.tb.Dist)
	}
	return p
}

// Query returns the query the plan evaluates.
func (p *Plan) Query() *cq.Query { return p.q }

// Mode returns the selected strategy.
func (p *Plan) Mode() PlanMode { return p.mode }

// Eval evaluates the plan's query on db, materialising the full
// deduplicated, sorted answer set.
func (p *Plan) Eval(ctx context.Context, db *relstr.Structure) (Answers, error) {
	if p.mode == PlanYannakakis {
		nodes := buildJoinForest(p.atoms, p.jt, db)
		sc := getScratch()
		defer p.flush(sc)
		return solveScheduled(ctx, p.sched, nodes, sc)
	}
	return naiveEval(ctx, p.tb, db)
}

// EvalBool reports whether the query has at least one answer on db
// (Boolean evaluation / answer existence). For acyclic plans this is
// the single leaves→root semijoin pass, O(|D|·|Q|).
func (p *Plan) EvalBool(ctx context.Context, db *relstr.Structure) (bool, error) {
	if p.mode == PlanYannakakis {
		nodes := buildJoinForest(p.atoms, p.jt, db)
		sc := getScratch()
		defer p.flush(sc)
		return runSolveBool(ctx, p.sched, nodes, sc)
	}
	return naiveBool(ctx, p.tb, db)
}

// Stream enumerates distinct answers one at a time without
// materialising the full answer set, in discovery order (not sorted).
// For acyclic plans the database is first reduced by the full
// Yannakakis semijoin pass — O(|D|·|Q|) — so the subsequent
// enumeration backtracks only over tuples that participate in at least
// one locally consistent assignment; for naive plans the enumeration
// runs directly against db.
//
// Iteration stops early when ctx is cancelled (or the consumer breaks);
// use StreamErr to distinguish a truncated stream from an exhausted
// one. Every delivered tuple is a correct answer regardless of where
// iteration stopped.
func (p *Plan) Stream(ctx context.Context, db *relstr.Structure) iter.Seq[relstr.Tuple] {
	seq, _ := p.StreamErr(ctx, db)
	return seq
}

// StreamErr is Stream plus a terminal-error accessor: after the
// iteration ends (exhausted, broken, or cancelled), calling the
// returned function reports nil for a complete enumeration and the
// cancellation error if the search was cut short — an empty cancelled
// stream is thereby distinguishable from a genuinely empty answer set.
func (p *Plan) StreamErr(ctx context.Context, db *relstr.Structure) (iter.Seq[relstr.Tuple], func() error) {
	var terminal error
	seq := func(yield func(relstr.Tuple) bool) {
		target := db
		if p.mode == PlanYannakakis {
			reduced, empty, err := p.reduce(ctx, db)
			if err != nil {
				terminal = err
				return
			}
			if empty {
				return
			}
			target = reduced
		}
		_, err := hom.ProjectCtx(ctx, p.tb.S, target, nil, p.tb.Dist, func(vals []int) bool {
			return yield(relstr.Tuple(vals).Clone())
		})
		if err != nil {
			terminal = err
		}
	}
	return seq, func() error { return terminal }
}

// reduce runs both semijoin passes over the join forest and rebuilds a
// database containing only the surviving tuples. Answers of the query
// on the reduced database equal those on db: reduction only removes
// tuples that cannot take part in a global assignment. empty reports
// that some relation became empty, i.e. the answer set is empty.
func (p *Plan) reduce(ctx context.Context, db *relstr.Structure) (_ *relstr.Structure, empty bool, _ error) {
	nodes := buildJoinForest(p.atoms, p.jt, db)
	sc := getScratch()
	defer p.flush(sc)
	if err := runSemijoinPasses(ctx, p.sched, nodes, sc); err != nil {
		return nil, false, err
	}
	out := db.CloneSchema()
	for i, a := range p.atoms {
		if len(nodes[i].rows) == 0 {
			return nil, true, nil
		}
		// Rebuild the db tuples backing each surviving assignment row:
		// position j of the tuple holds the row value of the variable
		// at position j (repeated variables repeat the value).
		varIdx := make([]int, len(a.args))
		for j, v := range a.args {
			varIdx[j] = indexOf(nodes[i].vars, v)
		}
		for _, row := range nodes[i].rows {
			t := make([]int, len(a.args))
			for j, vi := range varIdx {
				t[j] = row[vi]
			}
			out.Add(a.rel, t...)
		}
	}
	return out, false, nil
}
