package eval

import (
	"context"
	"math/rand"
	"slices"
	"testing"
	"testing/quick"

	"cqapprox/internal/cq"
	"cqapprox/internal/relstr"
)

// sortedRows renders a relation's rows as a set for comparison.
func sortedRows(r rel) []relstr.Tuple {
	out := make([]relstr.Tuple, len(r.rows))
	for i, row := range r.rows {
		out[i] = relstr.Tuple(row).Clone()
	}
	slices.SortFunc(out, relstr.Compare)
	return out
}

func equalRows(a, b []relstr.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// cloneRel deep-copies a relation so in-place operators cannot alias.
func cloneRel(r rel) rel {
	out := rel{vars: append([]int{}, r.vars...)}
	for _, row := range r.rows {
		out.rows = append(out.rows, append([]int{}, row...))
	}
	return out
}

// joinStepFor builds the static join mapping the schedule would emit
// for l ⋈ r.
func joinStepFor(l, r rel) jStep {
	lCols, rCols := sharedCols(l.vars, r.vars)
	st := jStep{lCols: lCols, rCols: rCols, outVars: append([]int{}, l.vars...)}
	for j, v := range r.vars {
		if indexOfOrNeg(l.vars, v) == -1 {
			st.rExtra = append(st.rExtra, j)
			st.outVars = append(st.outVars, v)
		}
	}
	return st
}

// decodeRels builds two relations with overlapping variable lists from
// fuzz bytes: small variable counts, a variable overlap chosen by the
// input, and rows over a tiny domain so hash collisions and duplicate
// keys actually occur.
func decodeRels(data []byte) (l, r rel, ok bool) {
	if len(data) < 3 {
		return rel{}, rel{}, false
	}
	nl := 1 + int(data[0])%3
	nr := 1 + int(data[1])%3
	shared := int(data[2]) % (min(nl, nr) + 1)
	data = data[3:]
	l.vars = make([]int, nl)
	for i := range l.vars {
		l.vars[i] = i
	}
	// r shares `shared` variables with l (the trailing ones, so the
	// aligned columns differ between the two sides), then fresh ids.
	r.vars = make([]int, nr)
	for i := range r.vars {
		if i < shared {
			r.vars[i] = nl - shared + i
		} else {
			r.vars[i] = 100 + i
		}
	}
	fill := func(width int, nRows int) [][]int {
		var set relstr.TupleSet
		var rows [][]int
		for i := 0; i < nRows && len(data) >= width; i++ {
			row := make([]int, width)
			for j := range row {
				row[j] = int(data[j]) % 4
			}
			data = data[width:]
			if set.Add(row) {
				rows = append(rows, row)
			}
		}
		return rows
	}
	l.rows = fill(nl, 6)
	r.rows = fill(nr, 6)
	return l, r, true
}

// snapSemijoinRows runs the snapshot path's bitmap semijoin of l
// against r: r's rows become a snapshot relation whose index the step
// probes, l's rows get an all-alive bitmap that the step filters. The
// surviving rows are returned.
func snapSemijoinRows(sc *scratch, l, r rel, lCols, rCols []int) [][]int {
	sdb := relstr.New()
	if len(r.rows) == 0 {
		sdb.Declare("R", len(r.vars))
	}
	for _, row := range r.rows {
		sdb.Add("R", row...)
	}
	snap := relstr.NewSnapshot(sdb)
	pat := make([]int, len(r.vars))
	for i := range pat {
		pat[i] = i
	}
	view := snap.View("R", pat)
	f := &snapForest{nodes: make([]snapNode, 2), sc: sc}
	f.nodes[0] = fullAliveNode(nil, l.rows)
	f.nodes[1] = fullAliveNode(view, view.Rows())
	f.semijoin(sjStep{target: 0, source: 1, tCols: lCols, sCols: rCols})
	return f.nodes[0].aliveRows()
}

// fullAliveNode builds a snapNode over rows with every row alive.
func fullAliveNode(view *relstr.View, rows [][]int) snapNode {
	n := len(rows)
	words := make([]uint64, (n+63)/64)
	for w := range words {
		words[w] = ^uint64(0)
	}
	if n%64 != 0 && len(words) > 0 {
		words[len(words)-1] = (1 << uint(n%64)) - 1
	}
	return snapNode{view: view, rows: rows, words: words, live: n}
}

// FuzzJoinEquivalence asserts the indexed semijoin/join/project agree
// with the string-keyed reference implementations they replaced, on
// arbitrary relation pairs (including empty relations, disjoint
// variable sets, and tiny value domains that force bucket collisions).
// The snapshot runtime's bitmap semijoin (the registered-database
// path) is held to the same oracle.
func FuzzJoinEquivalence(f *testing.F) {
	f.Add([]byte{0, 0, 0})                                  // empty relations
	f.Add([]byte{1, 1, 1, 1, 2, 2, 1, 3, 3})                // small overlap
	f.Add([]byte{2, 2, 0, 0, 1, 2, 1, 0, 2, 2, 0, 1})       // no shared vars
	f.Add([]byte{2, 2, 2, 0, 0, 1, 1, 0, 1, 1, 0, 0, 1, 2}) // full overlap
	f.Add([]byte{0, 2, 1, 3, 3, 3, 3, 2, 1, 0, 3, 1, 2, 0}) // collisions
	f.Fuzz(func(t *testing.T, data []byte) {
		l, r, ok := decodeRels(data)
		if !ok {
			t.Skip()
		}
		sc := getScratch()
		defer putScratch(sc)

		// Semijoin (the indexed one filters in place; feed it a copy).
		li := cloneRel(l)
		lCols, rCols := sharedCols(l.vars, r.vars)
		sc.semijoin(&li, &r, lCols, rCols)
		want := sortedRows(semijoinRef(cloneRel(l), r))
		if got := sortedRows(li); !equalRows(got, want) {
			t.Fatalf("semijoin mismatch:\n  indexed %v\n  reference %v\n  l=%v r=%v", got, want, l, r)
		}

		// Snapshot-backed semijoin: the same filter through a
		// snapshot-owned index plus liveness bitmaps — the registered-
		// database path — must agree with both.
		if got := sortedRows(rel{vars: l.vars, rows: snapSemijoinRows(sc, l, r, lCols, rCols)}); !equalRows(got, want) {
			t.Fatalf("snapshot semijoin mismatch:\n  snapshot %v\n  reference %v\n  l=%v r=%v", got, want, l, r)
		}

		// Join.
		st := joinStepFor(l, r)
		gotJ := sc.join(cloneRel(l), r, st)
		refJ := joinRef(cloneRel(l), r)
		if !slices.Equal(gotJ.vars, refJ.vars) {
			t.Fatalf("join vars differ: %v vs %v", gotJ.vars, refJ.vars)
		}
		if got, want := sortedRows(gotJ), sortedRows(refJ); !equalRows(got, want) {
			t.Fatalf("join mismatch:\n  indexed %v\n  reference %v\n  l=%v r=%v", got, want, l, r)
		}

		// Project the join result onto a subset of its variables chosen
		// by the input (possibly empty — the Boolean head).
		mask := 0
		if len(data) > 3 {
			mask = int(data[3])
		}
		var cols []int
		var wantVars []int
		for j, v := range refJ.vars {
			if mask&(1<<j) != 0 {
				cols = append(cols, j)
				wantVars = append(wantVars, v)
			}
		}
		gotP := sc.project(gotJ, cols, wantVars)
		refP := projectRef(refJ, wantVars)
		if got, want := sortedRows(gotP), sortedRows(refP); !equalRows(got, want) {
			t.Fatalf("project mismatch onto %v:\n  indexed %v\n  reference %v", wantVars, got, want)
		}
	})
}

// The full pipelines agree three ways: Plan.EvalBaseline (string-keyed
// reference), Plan.Eval (per-call indexed), and Plan.EvalSnap (shared
// snapshot indexes) return identical answers on random acyclic queries
// and databases — and so do the Boolean variants.
func TestQuickIndexedMatchesBaseline(t *testing.T) {
	ctx := context.Background()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := randomQuery(rng, true)
		db := randomDB(rng, 5, 9)
		p := NewPlan(q)
		got, err := p.Eval(ctx, db)
		if err != nil {
			return false
		}
		want, err := p.EvalBaseline(ctx, db)
		if err != nil {
			return false
		}
		if !sameAnswers(got, want) {
			return false
		}
		snap := relstr.NewSnapshot(db)
		snapAns, err := p.EvalSnap(ctx, snap)
		if err != nil || !sameAnswers(snapAns, want) {
			return false
		}
		okPlain, err1 := p.EvalBool(ctx, db)
		okSnap, err2 := p.EvalBoolSnap(ctx, snap)
		return err1 == nil && err2 == nil && okPlain == okSnap && okPlain == (len(want) > 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Repeated variables in atoms and heads flow through the indexed
// runtime exactly as through the reference.
func TestIndexedRepeatedVariables(t *testing.T) {
	ctx := context.Background()
	cases := []string{
		"Q(x) :- E(x,x)",
		"Q(x,x) :- E(x,y), E(y,x)",
		"Q(x,y,x) :- E(x,y), E(y,z)",
		"Q() :- E(x,x), E(x,y)",
	}
	db := graphDB([2]int{0, 0}, [2]int{0, 1}, [2]int{1, 0}, [2]int{1, 2}, [2]int{3, 3})
	for _, src := range cases {
		q := cq.MustParse(src)
		p := NewPlan(q)
		if p.Mode() != PlanYannakakis {
			t.Fatalf("%s: expected acyclic plan", src)
		}
		got, err := p.Eval(ctx, db)
		if err != nil {
			t.Fatal(err)
		}
		want, err := p.EvalBaseline(ctx, db)
		if err != nil {
			t.Fatal(err)
		}
		if !sameAnswers(got, want) {
			t.Fatalf("%s: indexed %v, reference %v", src, got, want)
		}
	}
}

// Empty relations empty the whole answer set, indexed and reference
// alike — including the no-shared-variables semijoin special case.
func TestIndexedEmptyRelations(t *testing.T) {
	ctx := context.Background()
	q := cq.MustParse("Q(x,u) :- E(x,y), F(u,v)")
	db := relstr.New()
	db.Declare("E", 2)
	db.Declare("F", 2)
	db.Add("E", 1, 2)
	// F is empty: the disconnected cross product must be empty.
	p := NewPlan(q)
	got, err := p.Eval(ctx, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("answers on empty F = %v", got)
	}
	ok, err := p.EvalBool(ctx, db)
	if err != nil || ok {
		t.Fatalf("EvalBool = %v, %v", ok, err)
	}
	// Both relations empty.
	if got := Eval(q, relstr.New()); len(got) != 0 {
		t.Fatalf("answers on empty db = %v", got)
	}
}
