package eval

import (
	"context"
	"math/rand"
	"slices"
	"testing"
	"testing/quick"

	"cqapprox/internal/cq"
	"cqapprox/internal/relstr"
)

// sortedRows renders a relation's rows as a set for comparison.
func sortedRows(r rel) []relstr.Tuple {
	out := make([]relstr.Tuple, len(r.rows))
	for i, row := range r.rows {
		out[i] = relstr.Tuple(row).Clone()
	}
	slices.SortFunc(out, relstr.Compare)
	return out
}

func equalRows(a, b []relstr.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// cloneRel deep-copies a relation so in-place operators cannot alias.
func cloneRel(r rel) rel {
	out := rel{vars: append([]int{}, r.vars...)}
	for _, row := range r.rows {
		out.rows = append(out.rows, append([]int{}, row...))
	}
	return out
}

// joinStepFor builds the static join mapping the schedule would emit
// for l ⋈ r.
func joinStepFor(l, r rel) jStep {
	lCols, rCols := sharedCols(l.vars, r.vars)
	st := jStep{lCols: lCols, rCols: rCols, outVars: append([]int{}, l.vars...)}
	for j, v := range r.vars {
		if indexOfOrNeg(l.vars, v) == -1 {
			st.rExtra = append(st.rExtra, j)
			st.outVars = append(st.outVars, v)
		}
	}
	return st
}

// decodeRels builds two relations with overlapping variable lists from
// fuzz bytes: small variable counts, a variable overlap chosen by the
// input, and rows over a tiny domain so hash collisions and duplicate
// keys actually occur.
func decodeRels(data []byte) (l, r rel, ok bool) {
	if len(data) < 3 {
		return rel{}, rel{}, false
	}
	nl := 1 + int(data[0])%3
	nr := 1 + int(data[1])%3
	shared := int(data[2]) % (min(nl, nr) + 1)
	data = data[3:]
	l.vars = make([]int, nl)
	for i := range l.vars {
		l.vars[i] = i
	}
	// r shares `shared` variables with l (the trailing ones, so the
	// aligned columns differ between the two sides), then fresh ids.
	r.vars = make([]int, nr)
	for i := range r.vars {
		if i < shared {
			r.vars[i] = nl - shared + i
		} else {
			r.vars[i] = 100 + i
		}
	}
	fill := func(width int, nRows int) [][]int {
		var set relstr.TupleSet
		var rows [][]int
		for i := 0; i < nRows && len(data) >= width; i++ {
			row := make([]int, width)
			for j := range row {
				row[j] = int(data[j]) % 4
			}
			data = data[width:]
			if set.Add(row) {
				rows = append(rows, row)
			}
		}
		return rows
	}
	l.rows = fill(nl, 6)
	r.rows = fill(nr, 6)
	return l, r, true
}

// pairForest builds a two-node executor forest over l (node 0, the
// semijoin target) and r (node 1, the source), with the given backend
// indexer over r's rows and an all-alive bitmap on both sides. The
// tuning fields force the morsel machinery on tiny inputs when par>1.
func pairForest(sc *scratch, l, r rel, ix Indexer, par int) *forest {
	f := &forest{nodes: make([]execNode, 2), sc: sc, par: par, minPar: 1, morsel: 2}
	f.nodes[0] = execNode{rows: l.rows, vars: l.vars, ix: &memoIndexer{rows: l.rows}, words: allAlive(len(l.rows)), live: len(l.rows)}
	f.nodes[1] = execNode{rows: r.rows, vars: r.vars, ix: ix, words: allAlive(len(r.rows)), live: len(r.rows)}
	f.initSlots()
	return f
}

// snapIndexer wraps r's rows as a genuine snapshot view, so the
// semijoin probes the snapshot's persistent index cache — the
// registered-database backend.
func snapIndexer(r rel) Indexer {
	sdb := relstr.New()
	if len(r.rows) == 0 {
		sdb.Declare("R", len(r.vars))
	}
	for _, row := range r.rows {
		sdb.Add("R", row...)
	}
	snap := relstr.NewSnapshot(sdb)
	pat := make([]int, len(r.vars))
	for i := range pat {
		pat[i] = i
	}
	return snap.View("R", pat)
}

// semijoinVia runs one scheduled semijoin of l against r through the
// unified executor with the given source indexer and worker budget,
// returning the surviving rows.
func semijoinVia(sc *scratch, l, r rel, lCols, rCols []int, ix Indexer, par int) [][]int {
	f := pairForest(sc, l, r, ix, par)
	defer f.release()
	f.semijoin(sjStep{target: 0, source: 1, tCols: lCols, sCols: rCols})
	return f.nodes[0].aliveRows()
}

// FuzzJoinEquivalence asserts the unified executor's semijoin and the
// scratch join/project agree with the string-keyed reference
// implementations they replaced, on arbitrary relation pairs
// (including empty relations, disjoint variable sets, and tiny value
// domains that force bucket collisions). The semijoin is held to the
// oracle through three backends: a per-call memo indexer (the plain
// *Structure path), a snapshot view (the registered-database path),
// and the memo indexer again under a parallel worker budget with the
// morsel size forced down to two rows.
func FuzzJoinEquivalence(f *testing.F) {
	f.Add([]byte{0, 0, 0})                                  // empty relations
	f.Add([]byte{1, 1, 1, 1, 2, 2, 1, 3, 3})                // small overlap
	f.Add([]byte{2, 2, 0, 0, 1, 2, 1, 0, 2, 2, 0, 1})       // no shared vars
	f.Add([]byte{2, 2, 2, 0, 0, 1, 1, 0, 1, 1, 0, 0, 1, 2}) // full overlap
	f.Add([]byte{0, 2, 1, 3, 3, 3, 3, 2, 1, 0, 3, 1, 2, 0}) // collisions
	f.Fuzz(func(t *testing.T, data []byte) {
		l, r, ok := decodeRels(data)
		if !ok {
			t.Skip()
		}
		sc := getScratch()
		defer putScratch(sc)

		lCols, rCols := sharedCols(l.vars, r.vars)
		want := sortedRows(semijoinRef(cloneRel(l), r))
		legs := []struct {
			name string
			ix   Indexer
			par  int
		}{
			{"memo", &memoIndexer{rows: r.rows}, 1},
			{"snapshot", snapIndexer(r), 1},
			{"parallel", &memoIndexer{rows: r.rows}, 4},
		}
		for _, leg := range legs {
			got := sortedRows(rel{vars: l.vars, rows: semijoinVia(sc, l, r, lCols, rCols, leg.ix, leg.par)})
			if !equalRows(got, want) {
				t.Fatalf("%s semijoin mismatch:\n  executor %v\n  reference %v\n  l=%v r=%v", leg.name, got, want, l, r)
			}
		}

		// Join: the serial scratch join against the reference, then the
		// forest's parallel join against the serial one — which must
		// match row-for-row, order included (chunk-ordered concat).
		st := joinStepFor(l, r)
		gotJ := sc.join(cloneRel(l), r, st)
		refJ := joinRef(cloneRel(l), r)
		if !slices.Equal(gotJ.vars, refJ.vars) {
			t.Fatalf("join vars differ: %v vs %v", gotJ.vars, refJ.vars)
		}
		if got, want := sortedRows(gotJ), sortedRows(refJ); !equalRows(got, want) {
			t.Fatalf("join mismatch:\n  indexed %v\n  reference %v\n  l=%v r=%v", got, want, l, r)
		}
		if len(st.rCols) > 0 && len(r.rows) > 0 {
			pf := pairForest(sc, l, r, &memoIndexer{rows: r.rows}, 4)
			parJ := pf.join(cloneRel(l), r, st)
			// parJ.rows live in pf's worker arenas: compare before
			// release returns them to the pool.
			if len(parJ.rows) != len(gotJ.rows) {
				pf.release()
				t.Fatalf("parallel join row count %d, serial %d", len(parJ.rows), len(gotJ.rows))
			}
			for i := range parJ.rows {
				if !relstr.Tuple(parJ.rows[i]).Equal(gotJ.rows[i]) {
					pf.release()
					t.Fatalf("parallel join order diverges at row %d: %v vs %v", i, parJ.rows[i], gotJ.rows[i])
				}
			}
			pf.release()
		}

		// Project the join result onto a subset of its variables chosen
		// by the input (possibly empty — the Boolean head).
		mask := 0
		if len(data) > 3 {
			mask = int(data[3])
		}
		var cols []int
		var wantVars []int
		for j, v := range refJ.vars {
			if mask&(1<<j) != 0 {
				cols = append(cols, j)
				wantVars = append(wantVars, v)
			}
		}
		gotP := sc.project(gotJ, cols, wantVars)
		refP := projectRef(refJ, wantVars)
		if got, want := sortedRows(gotP), sortedRows(refP); !equalRows(got, want) {
			t.Fatalf("project mismatch onto %v:\n  indexed %v\n  reference %v", wantVars, got, want)
		}
	})
}

// evalTuned runs the plan through the unified executor with the
// parallel thresholds forced down, so even request-sized fuzz inputs
// drive the morsel fan-out, the chunk merges and the per-worker
// arenas.
func (p *Plan) evalTuned(ctx context.Context, src Source, par int) (Answers, error) {
	if p.mode != PlanYannakakis {
		return naiveEval(ctx, p.tb, src.Structure())
	}
	sc := getScratch()
	defer p.flush(sc)
	f := p.newForest(src, sc, par)
	f.minPar, f.morsel = 1, 2
	defer f.release()
	return evalForest(ctx, p.sched, f)
}

// evalBoolTuned is evalTuned for answer existence.
func (p *Plan) evalBoolTuned(ctx context.Context, src Source, par int) (bool, error) {
	if p.mode != PlanYannakakis {
		return naiveBool(ctx, p.tb, src.Structure())
	}
	sc := getScratch()
	defer p.flush(sc)
	f := p.newForest(src, sc, par)
	f.minPar, f.morsel = 1, 2
	defer f.release()
	return f.runBool(ctx, p.sched)
}

// FuzzParallelEquivalence asserts the parallel executor returns
// byte-identical answers to the serial one and to the string-keyed
// reference pipeline, across both storage backends (per-call structure
// and snapshot) and for both full and Boolean evaluation, on random
// acyclic queries and databases derived from the fuzz seed.
func FuzzParallelEquivalence(f *testing.F) {
	f.Add(int64(1))
	f.Add(int64(42))
	f.Add(int64(-7))
	f.Fuzz(func(t *testing.T, seed int64) {
		ctx := context.Background()
		rng := rand.New(rand.NewSource(seed))
		q := randomQuery(rng, true)
		db := randomDB(rng, 5, 9)
		p := NewPlan(q)
		want, err := p.EvalBaseline(ctx, db)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := p.Eval(ctx, db)
		if err != nil {
			t.Fatal(err)
		}
		if !sameAnswers(serial, want) {
			t.Fatalf("serial answers diverge from reference:\n  serial %v\n  reference %v\n  q=%v", serial, want, q)
		}
		snap := relstr.NewSnapshot(db)
		for _, par := range []int{2, 4} {
			for _, src := range []struct {
				name string
				s    Source
			}{{"struct", NewSource(db)}, {"snapshot", NewSnapshotSource(snap)}} {
				got, err := p.evalTuned(ctx, src.s, par)
				if err != nil {
					t.Fatal(err)
				}
				if !sameAnswers(got, want) {
					t.Fatalf("parallel(%d)/%s answers diverge:\n  got %v\n  want %v\n  q=%v", par, src.name, got, want, q)
				}
				ok, err := p.evalBoolTuned(ctx, src.s, par)
				if err != nil {
					t.Fatal(err)
				}
				if ok != (len(want) > 0) {
					t.Fatalf("parallel(%d)/%s bool = %v with %d answers, q=%v", par, src.name, ok, len(want), q)
				}
			}
		}
	})
}

// The full pipelines agree across the table of storage backends ×
// worker budgets, against Plan.EvalBaseline (the string-keyed
// reference) as the oracle — and so do the Boolean variants. This is
// the one quickcheck covering every execution configuration the
// unified executor serves.
func TestQuickIndexedMatchesBaseline(t *testing.T) {
	ctx := context.Background()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := randomQuery(rng, true)
		db := randomDB(rng, 5, 9)
		p := NewPlan(q)
		want, err := p.EvalBaseline(ctx, db)
		if err != nil {
			return false
		}
		snap := relstr.NewSnapshot(db)
		sources := func() []Source {
			return []Source{NewSource(db), NewSnapshotSource(snap)}
		}
		for _, par := range []int{1, 4} {
			for _, src := range sources() {
				got, err := p.evalTuned(ctx, src, par)
				if err != nil || !sameAnswers(got, want) {
					return false
				}
				ok, err := p.evalBoolTuned(ctx, src, par)
				if err != nil || ok != (len(want) > 0) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Repeated variables in atoms and heads flow through the indexed
// runtime exactly as through the reference.
func TestIndexedRepeatedVariables(t *testing.T) {
	ctx := context.Background()
	cases := []string{
		"Q(x) :- E(x,x)",
		"Q(x,x) :- E(x,y), E(y,x)",
		"Q(x,y,x) :- E(x,y), E(y,z)",
		"Q() :- E(x,x), E(x,y)",
	}
	db := graphDB([2]int{0, 0}, [2]int{0, 1}, [2]int{1, 0}, [2]int{1, 2}, [2]int{3, 3})
	for _, src := range cases {
		q := cq.MustParse(src)
		p := NewPlan(q)
		if p.Mode() != PlanYannakakis {
			t.Fatalf("%s: expected acyclic plan", src)
		}
		got, err := p.Eval(ctx, db)
		if err != nil {
			t.Fatal(err)
		}
		want, err := p.EvalBaseline(ctx, db)
		if err != nil {
			t.Fatal(err)
		}
		if !sameAnswers(got, want) {
			t.Fatalf("%s: indexed %v, reference %v", src, got, want)
		}
	}
}

// Empty relations empty the whole answer set, indexed and reference
// alike — including the no-shared-variables semijoin special case.
func TestIndexedEmptyRelations(t *testing.T) {
	ctx := context.Background()
	q := cq.MustParse("Q(x,u) :- E(x,y), F(u,v)")
	db := relstr.New()
	db.Declare("E", 2)
	db.Declare("F", 2)
	db.Add("E", 1, 2)
	// F is empty: the disconnected cross product must be empty.
	p := NewPlan(q)
	got, err := p.Eval(ctx, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("answers on empty F = %v", got)
	}
	ok, err := p.EvalBool(ctx, db)
	if err != nil || ok {
		t.Fatalf("EvalBool = %v, %v", ok, err)
	}
	// Both relations empty.
	if got := Eval(q, relstr.New()); len(got) != 0 {
		t.Fatalf("answers on empty db = %v", got)
	}
}
