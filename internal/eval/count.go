package eval

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"math/rand"
	"sync"
	"sync/atomic"

	"cqapprox/internal/cqerr"
	"cqapprox/internal/hom"
	"cqapprox/internal/relstr"
)

// Answer counting over the reduced forest. Counting the answers of an
// acyclic CQ is #P-hard in general (projection is what hurts), but the
// two-pass Yannakakis reduction leaves the forest globally consistent —
// every surviving row extends to a full assignment of its tree — and on
// that invariant three exact cases become linear, decided per tree at
// prepare time:
//
//   - countUnit: the tree mentions no head variable. Its factor is 1
//     (non-emptiness is already established by the reduction).
//   - countDP: after pruning dangling existential subtrees, every
//     variable of the remaining core is free. Distinct head tuples then
//     correspond one-to-one to full join rows of the core, counted by a
//     bottom-up multiplicity DP — no row is ever materialised.
//   - countNode: the tree's head variables all live inside one node of
//     the pruned core; the count is the node's distinct projection onto
//     those columns (output-sized dedup, no join).
//
// The pruning rule: repeatedly delete a leaf u whose head variables are
// all shared with its unique neighbour. By the join-tree property u's
// interface to the rest of the tree lies in that neighbour, and global
// consistency guarantees every remaining row still extends through u —
// so deleting u changes neither the head projection nor consistency.
// This is a free-connex-style decomposition: when it bottoms out with
// existential variables still interleaved between head variables
// (countSample), exact counting is genuinely hard and the estimator
// takes over.
//
// Trees are variable-disjoint, so the answer count is the product of
// the per-tree factors. Repeated head variables are counted once: two
// head tuples are equal iff they agree on the distinct head variables,
// so every case counts assignments of the distinct-variable set.

// ErrCountOverflow reports that an exact answer count does not fit in
// uint64.
var ErrCountOverflow = errors.New("eval: answer count overflows uint64")

// countKind classifies how one tree of the forest is counted.
type countKind int

const (
	countUnit countKind = iota
	countDP
	countNode
	countSample
)

func (k countKind) String() string {
	switch k {
	case countUnit:
		return "unit"
	case countDP:
		return "dp"
	case countNode:
		return "node"
	default:
		return "sample"
	}
}

// dpEdge is one parent→child probe of a counting DP: probe the child's
// index keyed on sCols with the parent row's tCols (the same column
// alignment the semijoin schedule uses).
type dpEdge struct {
	child        int
	tCols, sCols []int
}

// countTree is the prepare-time counting program of one tree.
type countTree struct {
	root     int
	nodes    []int      // all tree nodes, postorder (children before parents)
	steps    [][]dpEdge // aligned with nodes: every child edge (the sampler's DP)
	headVars []int      // distinct head variables occurring in the tree
	kind     countKind

	// countDP: the pruned core, postorder, with its child edges.
	core      []int
	coreSteps [][]dpEdge

	// countNode: the covering node and the head-variable columns in it.
	node int
	cols []int
}

// countSchedule is the static counting classification of a plan.
type countSchedule struct {
	trees []countTree
	exact bool // no tree needs sampling
}

// newCountSchedule classifies every tree of the forest. vars are the
// nodes' distinct-variable lists, parent the (re-rooted) forest links,
// sched the evaluation schedule (for children/roots/column mappings),
// head the query head (element ids, possibly repeated).
func newCountSchedule(vars [][]int, parent []int, sched *schedule, head []int) *countSchedule {
	headSet := map[int]bool{}
	for _, v := range head {
		headSet[v] = true
	}
	cs := &countSchedule{exact: true}
	for _, r := range sched.roots {
		t := buildCountTree(vars, parent, sched, headSet, r)
		if t.kind == countSample {
			cs.exact = false
		}
		cs.trees = append(cs.trees, t)
	}
	return cs
}

// downEdge finds the scheduled bottom-up step from child c into parent
// i and returns it as a dpEdge.
func downEdge(sched *schedule, i, c int) dpEdge {
	for _, st := range sched.downOf[i] {
		if st.source == c {
			return dpEdge{child: c, tCols: st.tCols, sCols: st.sCols}
		}
	}
	panic(fmt.Sprintf("eval: no scheduled step %d→%d", c, i))
}

func buildCountTree(vars [][]int, parent []int, sched *schedule, headSet map[int]bool, root int) countTree {
	t := countTree{root: root, node: -1}
	var post func(i int)
	post = func(i int) {
		for _, c := range sched.children[i] {
			post(c)
		}
		t.nodes = append(t.nodes, i)
	}
	post(root)
	for _, i := range t.nodes {
		var edges []dpEdge
		for _, c := range sched.children[i] {
			edges = append(edges, downEdge(sched, i, c))
		}
		t.steps = append(t.steps, edges)
	}
	seen := map[int]bool{}
	for _, i := range t.nodes {
		for _, v := range vars[i] {
			if headSet[v] && !seen[v] {
				seen[v] = true
				t.headVars = append(t.headVars, v)
			}
		}
	}
	if len(t.headVars) == 0 {
		t.kind = countUnit
		return t
	}

	// Prune dangling existential subtrees: delete a leaf whose head
	// variables its unique neighbour already carries, repeatedly.
	alive := map[int]bool{}
	deg := map[int]int{}
	for _, i := range t.nodes {
		alive[i] = true
	}
	for _, i := range t.nodes {
		for _, c := range sched.children[i] {
			deg[i]++
			deg[c]++
		}
	}
	neighbours := func(i int) []int {
		var ns []int
		if p := parent[i]; p != -1 && alive[p] {
			ns = append(ns, p)
		}
		for _, c := range sched.children[i] {
			if alive[c] {
				ns = append(ns, c)
			}
		}
		return ns
	}
	prunable := func(u, nb int) bool {
		for _, v := range vars[u] {
			if headSet[v] && indexOfOrNeg(vars[nb], v) == -1 {
				return false
			}
		}
		return true
	}
	left := len(t.nodes)
	queue := append([]int{}, t.nodes...)
	for len(queue) > 0 && left > 1 {
		u := queue[0]
		queue = queue[1:]
		if !alive[u] || deg[u] != 1 {
			continue
		}
		nb := neighbours(u)[0]
		if !prunable(u, nb) {
			continue
		}
		alive[u] = false
		left--
		deg[nb]--
		if deg[nb] == 1 {
			queue = append(queue, nb)
		}
	}
	for k, i := range t.nodes {
		if !alive[i] {
			continue
		}
		t.core = append(t.core, i)
		var edges []dpEdge
		for _, e := range t.steps[k] {
			if alive[e.child] {
				edges = append(edges, e)
			}
		}
		t.coreSteps = append(t.coreSteps, edges)
	}

	if len(t.core) == 1 {
		// Pruning never discards a head variable, so the single core
		// node covers them all: distinct projection.
		t.kind = countNode
		t.node = t.core[0]
		for _, v := range t.headVars {
			t.cols = append(t.cols, indexOf(vars[t.node], v))
		}
		return t
	}
	allFree := true
	for _, i := range t.core {
		for _, v := range vars[i] {
			if !headSet[v] {
				allFree = false
			}
		}
	}
	if allFree {
		t.kind = countDP
		return t
	}
	t.kind = countSample
	return t
}

// ExactCountable reports whether every tree of the plan's forest counts
// exactly without enumeration (no countSample tree). False for naive
// (cyclic) plans.
func (p *Plan) ExactCountable() bool {
	return p.mode == PlanYannakakis && p.csched.exact
}

// --- checked uint64 arithmetic -----------------------------------------

func addU64(a, b uint64) (uint64, bool) {
	s := a + b
	return s, s >= a
}

func mulU64(a, b uint64) (uint64, bool) {
	hi, lo := bits.Mul64(a, b)
	return lo, hi == 0
}

// --- the per-call counting run -----------------------------------------

// CountRun is the per-call state of one counting evaluation: the
// reduced forest (both semijoin passes already run) plus lazily built
// per-tree samplers. Exactly one of the Tree* accessors per tree is
// typically used; Close must be called when done (it folds the run's
// counters into the plan and releases the scratch arenas).
type CountRun struct {
	p        *Plan
	f        *forest
	sc       *scratch
	empty    bool
	samplers []*treeSampler
	closed   bool
}

// PrepareCount runs the full two-pass Yannakakis reduction against src
// and returns the counting state over the reduced forest. It fails
// with ErrNotAcyclic on naive plans (counting those goes through
// CountEnum instead).
func (p *Plan) PrepareCount(ctx context.Context, src Source, parallel int) (*CountRun, error) {
	return p.prepareCount(ctx, src, parallel, false, false)
}

// prepareCount is PrepareCount with the test-only tuned thresholds and
// the opt-in trace frame.
func (p *Plan) prepareCount(ctx context.Context, src Source, parallel int, tuned, traced bool) (*CountRun, error) {
	if p.mode != PlanYannakakis {
		return nil, ErrNotAcyclic
	}
	sc := getScratch()
	f := p.newForest(src, sc, parallel)
	if tuned {
		f.minPar, f.morsel = 1, 2
	}
	if traced {
		f.trace = getExecTrace(len(f.nodes))
	}
	if err := f.runPasses(ctx, p.sched); err != nil {
		if tr := f.trace; tr != nil {
			f.trace = nil
			putExecTrace(tr)
		}
		f.release()
		p.flush(sc)
		return nil, err
	}
	return &CountRun{
		p:        p,
		f:        f,
		sc:       sc,
		empty:    f.anyEmpty(),
		samplers: make([]*treeSampler, len(p.csched.trees)),
	}, nil
}

// Close releases the run's scratch state and folds its counters into
// the plan. Safe to call once.
func (r *CountRun) Close() {
	if r.closed {
		return
	}
	r.closed = true
	if tr := r.f.trace; tr != nil {
		r.f.trace = nil
		putExecTrace(tr)
	}
	r.f.release()
	r.p.flush(r.sc)
}

// Empty reports that some relation lost every row: the answer count is
// zero regardless of tree classification.
func (r *CountRun) Empty() bool { return r.empty }

// Trees returns the number of trees in the forest.
func (r *CountRun) Trees() int { return len(r.p.csched.trees) }

// TreeExactOK reports whether tree t counts exactly (its kind is not
// countSample).
func (r *CountRun) TreeExactOK(t int) bool {
	return r.p.csched.trees[t].kind != countSample
}

// TreeExact returns the exact distinct-head-projection count of tree t.
// ok is false for countSample trees (use TreeTotal/TreeSample); the
// error is ErrCountOverflow when the count exceeds uint64.
func (r *CountRun) TreeExact(ctx context.Context, t int) (n uint64, ok bool, err error) {
	if r.empty {
		return 0, true, nil
	}
	tree := &r.p.csched.trees[t]
	switch tree.kind {
	case countUnit:
		return 1, true, nil
	case countNode:
		return r.f.countDistinct(&r.f.nodes[tree.node], tree.cols), true, nil
	case countDP:
		n, err := r.runDP(ctx, tree)
		return n, true, err
	default:
		return 0, false, nil
	}
}

// dpStep is a dpEdge resolved against the run's backend: the child's
// probe index plus its (already computed) per-row counts.
type dpStep struct {
	ix    *relstr.Index
	tCols []int
	cnt   []uint64
}

// runDP executes the multiplicity DP over tree.core: bottom-up, each
// live row's count is the product over children of the sum of matching
// child-row counts; dead rows keep count zero, so the probe loops need
// no liveness checks. The per-node loop is morsel-parallel over
// word-aligned liveness ranges, exactly like the semijoin pass.
func (r *CountRun) runDP(ctx context.Context, tree *countTree) (uint64, error) {
	f := r.f
	cnt := map[int][]uint64{}
	for k, i := range tree.core {
		if err := cqerr.Check(ctx); err != nil {
			return 0, err
		}
		node := &f.nodes[i]
		steps := make([]dpStep, len(tree.coreSteps[k]))
		for j, e := range tree.coreSteps[k] {
			ix, built := f.nodes[e.child].ix.Index(e.sCols)
			if built {
				f.builds.Add(1)
			}
			f.probes.Add(uint64(node.live))
			if tr := f.trace; tr != nil {
				nt := &tr.nodes[i]
				if built {
					nt.builds.Add(1)
				}
				nt.probes.Add(uint64(node.live))
			}
			steps[j] = dpStep{ix: ix, tCols: e.tCols, cnt: cnt[e.child]}
		}
		out := make([]uint64, len(node.rows))
		if !f.countDP(node, steps, out) {
			return 0, ErrCountOverflow
		}
		cnt[i] = out
	}
	root := tree.core[len(tree.core)-1]
	var total uint64
	rc := cnt[root]
	for _, w := range liveIDs(&f.nodes[root]) {
		var ok bool
		if total, ok = addU64(total, rc[w]); !ok {
			return 0, ErrCountOverflow
		}
	}
	return total, nil
}

// liveIDs returns the row ids of a node's live rows.
func liveIDs(n *execNode) []int32 {
	out := make([]int32, 0, n.live)
	for w, word := range n.words {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &= word - 1
			out = append(out, int32(w<<6|b))
		}
	}
	return out
}

// countDP fills out[id] for node's live rows, morsel-parallel when the
// node is large. Returns false on uint64 overflow.
func (f *forest) countDP(node *execNode, steps []dpStep, out []uint64) bool {
	nw := len(node.words)
	if f.par <= 1 || node.live < f.parMin() {
		return countDPRange(node, steps, out, 0, nw)
	}
	mw := f.morselWordSize()
	chunks := (nw + mw - 1) / mw
	if tr := f.trace; tr != nil {
		tr.addChunks(chunks)
	}
	var next atomic.Int64
	var overflowed atomic.Bool
	var wg sync.WaitGroup
	work := func() {
		for {
			c := int(next.Add(1) - 1)
			if c >= chunks || overflowed.Load() {
				return
			}
			if !countDPRange(node, steps, out, c*mw, min((c+1)*mw, nw)) {
				overflowed.Store(true)
			}
		}
	}
	for k := 1; k < chunks && f.tryWorker(); k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer f.putWorker()
			work()
		}()
	}
	work()
	wg.Wait()
	return !overflowed.Load()
}

// countDPRange computes the per-row counts for the live rows of the
// word range [lo, hi). Ranges are word-aligned, so parallel workers
// never write the same rows.
func countDPRange(node *execNode, steps []dpStep, out []uint64, lo, hi int) bool {
	for w := lo; w < hi; w++ {
		word := node.words[w]
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &= word - 1
			id := int32(w<<6 | b)
			row := node.rows[id]
			c := uint64(1)
			for _, st := range steps {
				var s uint64
				var ok bool
				for sid := st.ix.First(row, st.tCols); sid >= 0; sid = st.ix.Next(sid, row, st.tCols) {
					if s, ok = addU64(s, st.cnt[sid]); !ok {
						return false
					}
				}
				if c, ok = mulU64(c, s); !ok {
					return false
				}
			}
			out[id] = c
		}
	}
	return true
}

// countDistinct counts the distinct projections of a node's live rows
// onto cols — the countNode case. When cols covers every column the
// projection permutes distinct rows and the live count is the answer;
// otherwise rows dedup into chunk-local tuple sets merged like the
// head projection, counting instead of materialising answers.
func (f *forest) countDistinct(node *execNode, cols []int) uint64 {
	if len(cols) == len(node.vars) {
		return uint64(node.live)
	}
	rows := node.aliveRows()
	if f.par <= 1 || len(rows) < f.parMin() {
		var seen relstr.TupleSet
		buf := make([]int, len(cols))
		for _, row := range rows {
			for i, j := range cols {
				buf[i] = row[j]
			}
			seen.AddCopy(buf)
		}
		return uint64(seen.Len())
	}
	mr := f.morselSize()
	chunks := (len(rows) + mr - 1) / mr
	if tr := f.trace; tr != nil {
		tr.addChunks(chunks)
	}
	parts := make([]*relstr.TupleSet, chunks)
	var next atomic.Int64
	var wg sync.WaitGroup
	work := func() {
		buf := make([]int, len(cols))
		for {
			c := int(next.Add(1) - 1)
			if c >= chunks {
				return
			}
			var seen relstr.TupleSet
			for _, row := range rows[c*mr : min((c+1)*mr, len(rows))] {
				for i, j := range cols {
					buf[i] = row[j]
				}
				seen.AddCopy(buf)
			}
			parts[c] = &seen
		}
	}
	for k := 1; k < chunks && f.tryWorker(); k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer f.putWorker()
			work()
		}()
	}
	work()
	wg.Wait()
	var seen relstr.TupleSet
	for _, p := range parts {
		for _, t := range p.Rows() {
			seen.Add(t)
		}
	}
	return uint64(seen.Len())
}

// --- sampling estimator support ----------------------------------------

// treeSampler supports the FPRAS-style estimator on one countSample
// tree: the full-join multiplicity DP in float64 (total = N, the
// number of complete assignments of the tree), uniform top-down
// sampling of one assignment proportional to the DP weights, and the
// head-bound DP computing the multiplicity m of a sampled head
// projection. N/m is then an unbiased estimate of the number of
// distinct head projections.
type treeSampler struct {
	f     *forest
	tree  *countTree
	steps [][]dpStep2 // aligned with tree.nodes
	w     map[int][]float64
	wb    map[int][]float64 // head-bound DP scratch
	total float64
	// headCols[k] lists (column, variable) pairs of head variables in
	// tree.nodes[k]; hv is the sampled head assignment.
	headCols [][][2]int
	hv       map[int]int
	kidIdx   map[int]int // node id → position in tree.nodes
}

type dpStep2 struct {
	child int
	ix    *relstr.Index
	tCols []int
}

// sampler lazily builds the tree's sampling state (the full DP runs
// once; every sample reuses it).
func (r *CountRun) sampler(t int) (*treeSampler, error) {
	if s := r.samplers[t]; s != nil {
		return s, nil
	}
	f := r.f
	tree := &r.p.csched.trees[t]
	headSet := map[int]bool{}
	for _, v := range tree.headVars {
		headSet[v] = true
	}
	s := &treeSampler{
		f:      f,
		tree:   tree,
		w:      map[int][]float64{},
		wb:     map[int][]float64{},
		hv:     map[int]int{},
		kidIdx: map[int]int{},
	}
	for k, i := range tree.nodes {
		s.kidIdx[i] = k
		var hc [][2]int
		for j, v := range f.nodes[i].vars {
			if headSet[v] {
				hc = append(hc, [2]int{j, v})
			}
		}
		s.headCols = append(s.headCols, hc)
		steps := make([]dpStep2, len(tree.steps[k]))
		for j, e := range tree.steps[k] {
			ix, built := f.nodes[e.child].ix.Index(e.sCols)
			if built {
				f.builds.Add(1)
			}
			steps[j] = dpStep2{child: e.child, ix: ix, tCols: e.tCols}
		}
		s.steps = append(s.steps, steps)
		s.w[i] = make([]float64, len(f.nodes[i].rows))
		s.wb[i] = make([]float64, len(f.nodes[i].rows))
	}
	// Full-join DP: weight of a live row = product over children of the
	// summed weights of its matching rows (dead rows stay 0).
	for k, i := range tree.nodes {
		node := &f.nodes[i]
		out := s.w[i]
		f.probes.Add(uint64(node.live))
		if tr := f.trace; tr != nil {
			tr.nodes[i].probes.Add(uint64(node.live))
		}
		for _, id := range liveIDs(node) {
			row := node.rows[id]
			c := 1.0
			for _, st := range s.steps[k] {
				sum := 0.0
				cw := s.w[st.child]
				for sid := st.ix.First(row, st.tCols); sid >= 0; sid = st.ix.Next(sid, row, st.tCols) {
					sum += cw[sid]
				}
				c *= sum
			}
			out[id] = c
		}
	}
	root := tree.nodes[len(tree.nodes)-1]
	for _, id := range liveIDs(&f.nodes[root]) {
		s.total += s.w[root][id]
	}
	r.samplers[t] = s
	return s, nil
}

// TreeTotal returns the full-join assignment count N of tree t (the
// sampler's normalising constant), building the sampler if needed.
func (r *CountRun) TreeTotal(t int) (float64, error) {
	s, err := r.sampler(t)
	if err != nil {
		return 0, err
	}
	return s.total, nil
}

// TreeSample draws one uniform full assignment of tree t, computes the
// multiplicity m of its head projection, and returns the unbiased
// per-sample estimate N/m of the tree's distinct-projection count.
func (r *CountRun) TreeSample(t int, rng *rand.Rand) (float64, error) {
	s, err := r.sampler(t)
	if err != nil {
		return 0, err
	}
	if s.total <= 0 {
		return 0, fmt.Errorf("eval: sampling an empty tree")
	}
	clear(s.hv)
	root := s.tree.nodes[len(s.tree.nodes)-1]
	id := pickWeighted(rng, s.total, liveIDs(&s.f.nodes[root]), s.w[root])
	s.descend(rng, root, id)
	m := s.boundCount()
	if m <= 0 {
		return 0, fmt.Errorf("eval: sampled assignment has zero multiplicity")
	}
	return s.total / m, nil
}

// pickWeighted selects one of ids with probability w[id]/total.
func pickWeighted(rng *rand.Rand, total float64, ids []int32, w []float64) int32 {
	target := rng.Float64() * total
	acc := 0.0
	pick := ids[len(ids)-1]
	for _, id := range ids {
		acc += w[id]
		if acc > target {
			return id
		}
	}
	return pick // float rounding: fall back to the last candidate
}

// descend fixes node i to row id, records its head values, and samples
// one matching row per child proportional to the child's DP weights.
func (s *treeSampler) descend(rng *rand.Rand, i int, id int32) {
	k := s.kidIdx[i]
	row := s.f.nodes[i].rows[id]
	for _, hc := range s.headCols[k] {
		s.hv[hc[1]] = row[hc[0]]
	}
	for _, st := range s.steps[k] {
		cw := s.w[st.child]
		sum := 0.0
		last := int32(-1)
		for sid := st.ix.First(row, st.tCols); sid >= 0; sid = st.ix.Next(sid, row, st.tCols) {
			sum += cw[sid]
			if cw[sid] > 0 {
				last = sid
			}
		}
		target := rng.Float64() * sum
		acc := 0.0
		chosen := last
		for sid := st.ix.First(row, st.tCols); sid >= 0; sid = st.ix.Next(sid, row, st.tCols) {
			acc += cw[sid]
			if acc > target && cw[sid] > 0 {
				chosen = sid
				break
			}
		}
		s.descend(rng, st.child, chosen)
	}
}

// boundCount reruns the full-join DP with every head variable pinned
// to the sampled assignment, returning the multiplicity m ≥ 1 of the
// sampled head projection.
func (s *treeSampler) boundCount() float64 {
	f := s.f
	for k, i := range s.tree.nodes {
		node := &f.nodes[i]
		out := s.wb[i]
		for j := range out {
			out[j] = 0
		}
	rows:
		for _, id := range liveIDs(node) {
			row := node.rows[id]
			for _, hc := range s.headCols[k] {
				if row[hc[0]] != s.hv[hc[1]] {
					continue rows
				}
			}
			c := 1.0
			for _, st := range s.steps[k] {
				sum := 0.0
				cw := s.wb[st.child]
				for sid := st.ix.First(row, st.tCols); sid >= 0; sid = st.ix.Next(sid, row, st.tCols) {
					sum += cw[sid]
				}
				c *= sum
			}
			out[id] = c
		}
	}
	root := s.tree.nodes[len(s.tree.nodes)-1]
	m := 0.0
	for _, id := range liveIDs(&f.nodes[root]) {
		m += s.wb[root][id]
	}
	return m
}

// --- enumeration fallbacks ---------------------------------------------

// CountEnum counts the distinct answers by backtracking enumeration
// (the naive engine's path — ProjectCtx yields each distinct head
// tuple exactly once, so counting the callbacks counts the answers
// without keeping any of them). Works for any plan; it is the exact
// fallback for naive (cyclic) plans.
func (p *Plan) CountEnum(ctx context.Context, src Source) (uint64, error) {
	var n uint64
	_, err := hom.ProjectCtx(ctx, p.tb.S, src.Structure(), nil, p.tb.Dist, func([]int) bool {
		n++
		return true
	})
	if err != nil {
		return 0, err
	}
	return n, nil
}
