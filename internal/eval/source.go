package eval

import (
	"slices"
	"sync"

	"cqapprox/internal/relstr"
)

// The storage backend interface of the unified executor. One schedule
// executor (exec.go) serves every backend; what varies between a plain
// per-call *Structure and a registered *Snapshot is only how an atom's
// pattern view is materialised and where the hash indexes over its rows
// come from. Source captures exactly that split: Node resolves an atom
// to its deduplicated view rows plus an Indexer handing out probe
// indexes over them, and Structure exposes a plain-structure rendering
// for the paths that need one (the naive engine, the stream
// enumerator's backtracking phase).

// Indexer hands out hash indexes over one view's rows, keyed on column
// sets. built reports whether the call built the index (callers account
// index-build work exactly once); implementations must be safe for
// concurrent use — the parallel executor requests indexes from sibling
// steps concurrently.
type Indexer interface {
	Index(cols []int) (*relstr.Index, bool)
}

// Source is the storage backend of one evaluation. Node is called once
// per forest node while the executor sets up (serially); the returned
// rows are shared with the backend and never mutated — per-call row
// liveness lives in the executor's bitmaps, not in the backend.
type Source interface {
	// Node returns the deduplicated rows realising atom a (assignments
	// of a's distinct variables) and the index provider over them.
	Node(a patom) (rows [][]int, ix Indexer)
	// Structure returns a plain-structure view of the backend's data,
	// read-only.
	Structure() *relstr.Structure
}

// NewSource wraps a plain structure as an evaluation backend: atom
// views are materialised per Source (atoms sharing a pattern signature
// materialise once) and indexes are built per call, memoized per
// (view, columns) so repeated probes of one relation on the same key
// within an evaluation share a single build.
//
// A structure Source is cheap and call-local: make a fresh one per
// evaluation. For evaluate-many workloads, snapshots
// (NewSnapshotSource) persist views and indexes across calls instead.
func NewSource(db *relstr.Structure) Source {
	return &structSource{db: db}
}

// structSource materialises atom views against a plain structure,
// cached per pattern signature for the Source's lifetime (one call).
// Memos are small linear slices, not maps — a query has a handful of
// atoms and key-column sets, and request-sized evaluations are too
// short to amortise map machinery.
type structSource struct {
	db   *relstr.Structure
	memo []*memoNode // Node is called serially during forest setup
}

type memoNode struct {
	sig  string
	rows [][]int
	ix   memoIndexer
}

func (s *structSource) Node(a patom) ([][]int, Indexer) {
	sig := patternSig(a)
	for _, n := range s.memo {
		if n.sig == sig {
			return n.rows, &n.ix
		}
	}
	r := atomRelation(a, s.db)
	n := &memoNode{sig: sig, rows: r.rows}
	n.ix.rows = r.rows
	s.memo = append(s.memo, n)
	return n.rows, &n.ix
}

func (s *structSource) Structure() *relstr.Structure { return s.db }

// memoIndexer builds indexes over a fixed row set on demand, memoized
// per column set. Concurrency-safe: parallel sibling steps may request
// indexes on the same view at once, and exactly one build wins.
type memoIndexer struct {
	rows [][]int
	mu   sync.Mutex
	ixs  []memoIx
}

type memoIx struct {
	cols []int
	ix   *relstr.Index
}

func (m *memoIndexer) Index(cols []int) (*relstr.Index, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, e := range m.ixs {
		if slices.Equal(e.cols, cols) {
			return e.ix, false
		}
	}
	ix := relstr.NewIndex(m.rows, cols)
	m.ixs = append(m.ixs, memoIx{cols: append([]int{}, cols...), ix: ix})
	return ix, true
}

// NewSnapshotSource wraps a frozen snapshot as an evaluation backend:
// atom views and their indexes come from the snapshot's persistent,
// concurrency-safe caches, so a warm evaluation builds nothing — every
// prepared query and every call probing the same snapshot shares them.
func NewSnapshotSource(sn *relstr.Snapshot) Source {
	return snapshotSource{sn: sn}
}

type snapshotSource struct{ sn *relstr.Snapshot }

func (s snapshotSource) Node(a patom) ([][]int, Indexer) {
	v := s.sn.View(a.rel, atomPattern(a.args))
	return v.Rows(), v
}

func (s snapshotSource) Structure() *relstr.Structure { return s.sn.Structure() }

// atomPattern returns the repetition pattern of an atom's argument
// list: pattern[i] is the first position holding the same variable as
// position i (the shape relstr.Snapshot.View keys its views by).
func atomPattern(args []int) []int {
	pat := make([]int, len(args))
	for i, v := range args {
		pat[i] = i
		for j := 0; j < i; j++ {
			if args[j] == v {
				pat[i] = j
				break
			}
		}
	}
	return pat
}
