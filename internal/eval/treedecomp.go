package eval

import (
	"context"
	"fmt"

	"cqapprox/internal/cq"
	"cqapprox/internal/hom"
	"cqapprox/internal/relstr"
	"cqapprox/internal/tw"
)

// ByTreeDecomposition evaluates q through an optimal-width tree
// decomposition of its Gaifman graph: every bag is materialised as the
// relation of assignments to its variables satisfying the atoms that
// fit inside the bag, and the bag tree (which is an acyclic join
// forest by the running-intersection property) is then solved with the
// Yannakakis pipeline. Combined complexity O(|D|^{k+1}·|Q|) for a
// width-k decomposition.
func ByTreeDecomposition(q *cq.Query, db *relstr.Structure) (Answers, error) {
	return ByTreeDecompositionCtx(nil, q, db)
}

// ByTreeDecompositionCtx is ByTreeDecomposition under a context: the
// bag materialisations and the Yannakakis pipeline over the bag tree
// both poll ctx.
func ByTreeDecompositionCtx(ctx context.Context, q *cq.Query, db *relstr.Structure) (Answers, error) {
	tb := q.Tableau()
	g, id := tw.FromStructure(tb.S)
	if g.N == 0 {
		return nil, fmt.Errorf("eval: query has no variables")
	}
	dec := g.Decompose()
	// Map graph vertex ids back to tableau elements.
	back := make([]int, g.N)
	for e, v := range id {
		back[v] = e
	}
	// Assign each atom to a bag containing all of its variables. The
	// atom's variables form a clique in G(Q), so such a bag exists.
	atoms := atomList(tb.S)
	bagAtoms := make([][]int, len(dec.Bags))
	for ai, a := range atoms {
		placed := false
		for bi, bag := range dec.Bags {
			if bagContains(bag, a.args, id) {
				bagAtoms[bi] = append(bagAtoms[bi], ai)
				placed = true
				break
			}
		}
		if !placed {
			return nil, fmt.Errorf("eval: atom %d not covered by any bag", ai)
		}
	}
	// Materialise bag relations.
	nodes := make([]node, len(dec.Bags))
	for bi, bag := range dec.Bags {
		elems := make([]int, len(bag))
		for i, v := range bag {
			elems[i] = back[v]
		}
		r, err := bagRelation(ctx, atoms, elems, db)
		if err != nil {
			return nil, err
		}
		nodes[bi].rel = r
	}
	// Root the decomposition tree at the last bag.
	adj := make([][]int, len(dec.Bags))
	for _, e := range dec.Tree {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	root := len(dec.Bags) - 1
	for i := range nodes {
		nodes[i].parent = -2 // unvisited marker
	}
	stack := []int{root}
	nodes[root].parent = -1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range adj[u] {
			if nodes[w].parent == -2 {
				nodes[w].parent = u
				nodes[u].children = append(nodes[u].children, w)
				stack = append(stack, w)
			}
		}
	}
	for i := range nodes {
		if nodes[i].parent == -2 {
			return nil, fmt.Errorf("eval: decomposition tree is disconnected at bag %d", i)
		}
	}
	return solveTreeCtx(ctx, nodes, tb.Dist)
}

func bagContains(bag []int, args []int, id map[int]int) bool {
	in := map[int]bool{}
	for _, v := range bag {
		in[v] = true
	}
	for _, e := range args {
		if !in[id[e]] {
			return false
		}
	}
	return true
}

// bagRelation computes the assignments of the bag's elements that
// satisfy every atom of the tableau that fits inside the bag (a
// superset of the assigned atoms, for stronger filtering). Variables
// with no atom inside the bag range over the active domain of db.
func bagRelation(ctx context.Context, atoms []patom, elems []int, db *relstr.Structure) (rel, error) {
	inBag := map[int]bool{}
	for _, e := range elems {
		inBag[e] = true
	}
	// Sub-tableau: all atoms whose variables fit in the bag.
	sub := relstr.New()
	for _, a := range atoms {
		ok := true
		for _, e := range a.args {
			if !inBag[e] {
				ok = false
				break
			}
		}
		if ok {
			sub.Add(a.rel, a.args...)
		}
	}
	for _, e := range elems {
		sub.AddElement(e)
	}
	out := rel{vars: append([]int{}, elems...)}
	_, err := hom.ProjectCtx(ctx, sub, db, nil, elems, func(vals []int) bool {
		out.rows = append(out.rows, append([]int{}, vals...))
		return true
	})
	if err != nil {
		return rel{}, err
	}
	return out, nil
}
