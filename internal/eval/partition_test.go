package eval

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"cqapprox/internal/cluster"
	"cqapprox/internal/cq"
	"cqapprox/internal/relstr"
)

// clusterRels are the relation names the cluster fuzz draws atoms
// from: several relations so the partitioned/replicated split and the
// partitioned-occurrence count actually vary across inputs.
var clusterRels = []string{"E", "R", "S"}

// randomClusterQuery is randomQuery over the three-relation schema,
// with heads wide enough (any subset of the used variables) that the
// count-summability predicate fires on a useful fraction of inputs.
func randomClusterQuery(rng *rand.Rand) *cq.Query {
	for {
		nv := 2 + rng.Intn(4)
		na := 1 + rng.Intn(4)
		q := &cq.Query{Name: "Q"}
		vars := make([]string, nv)
		for i := range vars {
			vars[i] = fmt.Sprintf("v%d", i)
		}
		used := map[string]bool{}
		for i := 0; i < na; i++ {
			a := cq.Atom{Rel: clusterRels[rng.Intn(len(clusterRels))], Args: []string{
				vars[rng.Intn(nv)], vars[rng.Intn(nv)],
			}}
			q.Atoms = append(q.Atoms, a)
			used[a.Args[0]] = true
			used[a.Args[1]] = true
		}
		for _, v := range vars {
			if used[v] && rng.Intn(2) == 0 {
				q.Head = append(q.Head, v)
			}
		}
		if _, err := Program(q); err != nil {
			continue
		}
		return q
	}
}

func randomClusterDB(rng *rand.Rand, n, m int) *relstr.Structure {
	db := relstr.New()
	for _, rel := range clusterRels {
		db.Declare(rel, 2)
		for i := 0; i < m; i++ {
			db.Add(rel, rng.Intn(n), rng.Intn(n))
		}
	}
	return db
}

// checkClusterEquivalence is the property both the fuzz target and the
// quickcheck run: on a random query, database, shard count and
// partitioned-relation set (trimmed to at most one partitioned atom
// occurrence — the union-decomposability precondition the server's
// router enforces before scattering), per-shard evaluation through
// NewPartitionSource followed by the deterministic merges must be
// byte-identical to single-node evaluation, across both storage
// backends: answers, answer existence, summed exact counts, and merged
// ranked top-k.
func checkClusterEquivalence(t *testing.T, seed int64) {
	t.Helper()
	ctx := context.Background()
	rng := rand.New(rand.NewSource(seed))
	q := randomClusterQuery(rng)
	db := randomClusterDB(rng, 5, 7)
	p := NewPlan(q)
	want, err := p.Eval(ctx, db)
	if err != nil {
		t.Fatal(err)
	}

	nShards := 1 + rng.Intn(4)
	members := make([]string, nShards)
	for i := range members {
		members[i] = fmt.Sprintf("http://node-%d", i)
	}
	ring := cluster.NewRing(members, 8)

	// Partition a random subset of the relations, then un-partition
	// until at most one atom occurrence of q references a partitioned
	// relation — beyond that the server routes to its full local copy
	// instead of scattering, so the merge contract does not apply.
	partitioned := map[string]bool{}
	for _, rel := range clusterRels {
		partitioned[rel] = rng.Intn(2) == 0
	}
	seen := false
	for _, a := range q.Atoms {
		if partitioned[a.Rel] {
			if seen {
				partitioned[a.Rel] = false
			}
			seen = true
		}
	}
	isPart := func(rel string) bool { return partitioned[rel] }
	if occ := p.PartitionedOccurrences(isPart); occ > 1 {
		t.Fatalf("trim left %d partitioned occurrences, q=%v partitioned=%v", occ, q, partitioned)
	}
	summable := p.CountSummable(isPart)
	owns := func(shard int) func(rel string, tuple []int) bool {
		return func(rel string, tuple []int) bool {
			if !partitioned[rel] {
				return true
			}
			return ring.OwnerOfTuple(rel, tuple) == shard
		}
	}

	var spec RankSpec
	rankable := len(q.Head) > 0
	if rankable {
		spec = RankSpec{
			Order: []int{rng.Intn(len(q.Head))},
			Desc:  rng.Intn(2) == 1,
			Limit: 1 + rng.Intn(4),
		}
	}
	var wantRanked Answers
	if rankable {
		if wantRanked, err = p.EvalRankedOn(ctx, NewSource(db), 1, spec); err != nil {
			t.Fatal(err)
		}
	}

	snap := relstr.NewSnapshot(db)
	backends := []struct {
		name string
		mk   func() Source
	}{
		{"struct", func() Source { return NewSource(db) }},
		{"snapshot", func() Source { return NewSnapshotSource(snap) }},
	}
	for _, b := range backends {
		parts := make([]Answers, nShards)
		ranked := make([]Answers, nShards)
		anyHit := false
		var countSum uint64
		for s := 0; s < nShards; s++ {
			shard := func() Source { return NewPartitionSource(b.mk(), owns(s)) }
			ans, err := p.evalTuned(ctx, shard(), 2)
			if err != nil {
				t.Fatal(err)
			}
			parts[s] = ans
			hit, err := p.evalBoolTuned(ctx, shard(), 2)
			if err != nil {
				t.Fatal(err)
			}
			if hit != (len(ans) > 0) {
				t.Fatalf("%s shard %d/%d: bool %v with %d answers, q=%v", b.name, s, nShards, hit, len(ans), q)
			}
			anyHit = anyHit || hit
			if summable {
				n, err := p.countForTest(ctx, shard(), 2)
				if err != nil {
					t.Fatal(err)
				}
				countSum += n
			}
			if rankable {
				if ranked[s], err = p.EvalRankedOn(ctx, shard(), 1, spec); err != nil {
					t.Fatal(err)
				}
			}
		}
		if merged := MergeAnswerSets(parts); !sameAnswers(merged, want) {
			t.Fatalf("%s: merged scatter answers diverge (%d shards, partitioned %v):\n  merged %v\n  single %v\n  q=%v",
				b.name, nShards, partitioned, merged, want, q)
		}
		if anyHit != (len(want) > 0) {
			t.Fatalf("%s: scatter bool %v with %d single-node answers, q=%v", b.name, anyHit, len(want), q)
		}
		if summable && countSum != uint64(len(want)) {
			t.Fatalf("%s: summed shard counts %d, single-node %d (%d shards, partitioned %v), q=%v",
				b.name, countSum, len(want), nShards, partitioned, q)
		}
		if rankable {
			if merged := MergeRankedAnswers(ranked, len(q.Head), spec); !sameAnswers(merged, wantRanked) {
				t.Fatalf("%s: merged ranked answers diverge under %+v:\n  merged %v\n  single %v\n  q=%v",
					b.name, spec, merged, wantRanked, q)
			}
		}
	}
}

// FuzzClusterEquivalence asserts scatter-gather evaluation is
// byte-identical to single-node: per-shard evaluation over 1–4 shards
// (consistent-hash tuple ownership, replicated relations everywhere)
// merged through MergeAnswerSets / MergeRankedAnswers equals the
// single-node answer set, existence and summed exact counts included,
// across both storage backends.
func FuzzClusterEquivalence(f *testing.F) {
	f.Add(int64(1))
	f.Add(int64(42))
	f.Add(int64(-7))
	f.Add(int64(987654321))
	f.Fuzz(checkClusterEquivalence)
}

// The quickcheck twin of the fuzz target, run on every plain `go test`.
func TestQuickClusterEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		checkClusterEquivalence(t, seed)
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
