package eval

import (
	"context"

	"cqapprox/internal/cqerr"
	"cqapprox/internal/relstr"
)

// This file preserves the pre-indexed, string-keyed relational
// operators exactly as they were before the indexed runtime replaced
// them. They serve two purposes:
//
//   - differential oracles: FuzzJoinEquivalence and the unit tests
//     assert the indexed semijoin/join/project agree with these on
//     arbitrary relations;
//   - the measured baseline: Plan.EvalBaseline runs the full old
//     pipeline so benchmarks (experiment E19, cmd/experiments) can
//     report the indexed runtime's speedup against the very code it
//     replaced.
//
// They are not used on any production path.

func key(vals []int) string { return relstr.Tuple(vals).Key() }

// atomRelationRef is the reference (string-keyed, uncached) atom
// materialisation the pre-indexed runtime ran for every atom.
func atomRelationRef(a patom, db *relstr.Structure) rel {
	vars := a.distinctVars()
	pos := map[int]int{} // variable → first position
	for i, v := range a.args {
		if _, ok := pos[v]; !ok {
			pos[v] = i
		}
	}
	out := rel{vars: vars}
	seen := map[string]bool{}
tuples:
	for _, t := range db.Tuples(a.rel) {
		if len(t) != len(a.args) {
			continue
		}
		for i, v := range a.args {
			if t[pos[v]] != t[i] {
				continue tuples
			}
		}
		row := make([]int, len(vars))
		for i, v := range vars {
			row[i] = t[pos[v]]
		}
		k := key(row)
		if !seen[k] {
			seen[k] = true
			out.rows = append(out.rows, row)
		}
	}
	return out
}

// buildJoinForestRef materialises the forest with atomRelationRef —
// one full string-keyed scan per atom, as before the pattern cache.
func buildJoinForestRef(atoms []patom, parent []int, db *relstr.Structure) []node {
	nodes := make([]node, len(atoms))
	for i, a := range atoms {
		nodes[i].rel = atomRelationRef(a, db)
		nodes[i].parent = parent[i]
	}
	for i, p := range parent {
		if p >= 0 {
			nodes[p].children = append(nodes[p].children, i)
		}
	}
	return nodes
}

// projectRef is the reference (string-keyed) projection of r onto the
// variables in want (in want order), deduplicated.
func projectRef(r rel, want []int) rel {
	idx := make([]int, len(want))
	for i, v := range want {
		idx[i] = indexOf(r.vars, v)
	}
	seen := map[string]bool{}
	out := rel{vars: append([]int{}, want...)}
	for _, row := range r.rows {
		vals := make([]int, len(want))
		for i, j := range idx {
			vals[i] = row[j]
		}
		k := key(vals)
		if !seen[k] {
			seen[k] = true
			out.rows = append(out.rows, vals)
		}
	}
	return out
}

// semijoinRef is the reference (string-keyed) semijoin: it keeps the
// rows of l that agree with some row of r on the shared variables.
func semijoinRef(l, r rel) rel {
	shared := sharedVars(l.vars, r.vars)
	if len(shared) == 0 {
		if len(r.rows) == 0 {
			return rel{vars: l.vars}
		}
		return l
	}
	rIdx := make([]int, len(shared))
	lIdx := make([]int, len(shared))
	for i, v := range shared {
		rIdx[i] = indexOf(r.vars, v)
		lIdx[i] = indexOf(l.vars, v)
	}
	present := map[string]bool{}
	buf := make([]int, len(shared))
	for _, row := range r.rows {
		for i, j := range rIdx {
			buf[i] = row[j]
		}
		present[key(buf)] = true
	}
	out := rel{vars: l.vars}
	for _, row := range l.rows {
		for i, j := range lIdx {
			buf[i] = row[j]
		}
		if present[key(buf)] {
			out.rows = append(out.rows, row)
		}
	}
	return out
}

// joinRef is the reference (string-keyed) natural join of l and r.
func joinRef(l, r rel) rel {
	shared := sharedVars(l.vars, r.vars)
	lIdx := make([]int, len(shared))
	rIdx := make([]int, len(shared))
	for i, v := range shared {
		lIdx[i] = indexOf(l.vars, v)
		rIdx[i] = indexOf(r.vars, v)
	}
	// r-only variables appended to l's.
	var rOnly []int
	var rOnlyIdx []int
	inL := map[int]bool{}
	for _, v := range l.vars {
		inL[v] = true
	}
	for j, v := range r.vars {
		if !inL[v] {
			rOnly = append(rOnly, v)
			rOnlyIdx = append(rOnlyIdx, j)
		}
	}
	// Hash r by shared key.
	buckets := map[string][][]int{}
	buf := make([]int, len(shared))
	for _, row := range r.rows {
		for i, j := range rIdx {
			buf[i] = row[j]
		}
		k := key(buf)
		buckets[k] = append(buckets[k], row)
	}
	out := rel{vars: append(append([]int{}, l.vars...), rOnly...)}
	seen := map[string]bool{}
	for _, lrow := range l.rows {
		for i, j := range lIdx {
			buf[i] = lrow[j]
		}
		for _, rrow := range buckets[key(buf)] {
			vals := make([]int, 0, len(out.vars))
			vals = append(vals, lrow...)
			for _, j := range rOnlyIdx {
				vals = append(vals, rrow[j])
			}
			k := key(vals)
			if !seen[k] {
				seen[k] = true
				out.rows = append(out.rows, vals)
			}
		}
	}
	return out
}

// semijoinPassesRef runs the leaves→roots and roots→leaves semijoin
// reductions in place over a join forest with the reference operators.
func semijoinPassesRef(ctx context.Context, nodes []node) error {
	var roots []int
	for i := range nodes {
		if nodes[i].parent == -1 {
			roots = append(roots, i)
		}
	}
	var post func(i int) error
	post = func(i int) error {
		for _, c := range nodes[i].children {
			if err := post(c); err != nil {
				return err
			}
		}
		if err := cqerr.Check(ctx); err != nil {
			return err
		}
		for _, c := range nodes[i].children {
			nodes[i].rel = semijoinRef(nodes[i].rel, nodes[c].rel)
		}
		return nil
	}
	var pre func(i int) error
	pre = func(i int) error {
		if err := cqerr.Check(ctx); err != nil {
			return err
		}
		for _, c := range nodes[i].children {
			nodes[c].rel = semijoinRef(nodes[c].rel, nodes[i].rel)
			if err := pre(c); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range roots {
		if err := post(r); err != nil {
			return err
		}
	}
	for _, r := range roots {
		if err := pre(r); err != nil {
			return err
		}
	}
	return nil
}

// solveTreeRef is the reference Yannakakis pipeline: semijoin
// reduction, bottom-up join with projection, cross product across
// components, head projection — all on the string-keyed operators the
// indexed runtime replaced.
func solveTreeRef(ctx context.Context, nodes []node, head []int) (Answers, error) {
	freeSet := map[int]bool{}
	for _, v := range head {
		freeSet[v] = true
	}
	roots := []int{}
	for i := range nodes {
		if nodes[i].parent == -1 {
			roots = append(roots, i)
		}
	}
	if err := semijoinPassesRef(ctx, nodes); err != nil {
		return nil, err
	}
	for i := range nodes {
		if len(nodes[i].rows) == 0 {
			return Answers{}, nil
		}
	}
	upRel := make([]rel, len(nodes))
	var solveErr error
	var solve func(i int) rel
	solve = func(i int) rel {
		if solveErr != nil {
			return rel{}
		}
		if solveErr = cqerr.Check(ctx); solveErr != nil {
			return rel{}
		}
		acc := nodes[i].rel
		for _, c := range nodes[i].children {
			acc = joinRef(acc, solve(c))
			if solveErr != nil {
				return rel{}
			}
		}
		keepSet := map[int]bool{}
		for _, v := range acc.vars {
			if freeSet[v] {
				keepSet[v] = true
			}
		}
		if p := nodes[i].parent; p != -1 {
			for _, v := range sharedVars(acc.vars, nodes[p].vars) {
				keepSet[v] = true
			}
		}
		var keep []int
		for _, v := range acc.vars {
			if keepSet[v] {
				keep = append(keep, v)
			}
		}
		upRel[i] = projectRef(acc, keep)
		return upRel[i]
	}
	total := rel{vars: nil, rows: [][]int{{}}}
	for _, r := range roots {
		rr := solve(r)
		if solveErr != nil {
			return nil, solveErr
		}
		if len(rr.rows) == 0 {
			return Answers{}, nil
		}
		total = joinRef(total, rr)
	}
	idx := make([]int, len(head))
	for i, v := range head {
		idx[i] = indexOf(total.vars, v)
	}
	seen := map[string]bool{}
	var out []relstr.Tuple
	for _, row := range total.rows {
		vals := make(relstr.Tuple, len(head))
		for i, j := range idx {
			vals[i] = row[j]
		}
		k := vals.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, vals)
		}
	}
	return sortAnswers(out), nil
}

// EvalBaseline evaluates the plan's query on db through the reference
// string-keyed pipeline. It returns exactly what Eval returns and
// exists so benchmarks and differential tests can compare the indexed
// runtime against the implementation it replaced; it is never used to
// serve queries.
func (p *Plan) EvalBaseline(ctx context.Context, db *relstr.Structure) (Answers, error) {
	if p.mode == PlanYannakakis {
		nodes := buildJoinForestRef(p.atoms, p.jt.Parent, db)
		return solveTreeRef(ctx, nodes, p.tb.Dist)
	}
	return naiveEval(ctx, p.tb, db)
}
