package eval

// Incremental view maintenance for prepared plans: an IncrState
// persists the materialised result of one (plan, snapshot) pair —
// per-tree contribution relations plus the composed answer set — and
// propagates snapshot deltas through the join forest in work
// proportional to the change, emitting an exact answer-set diff
// instead of recomputing.
//
// The algorithm factors the answer set through the forest: trees of
// the join forest share no variables, so the answers are the head
// projection of the cross product over trees of each tree's
// *contribution* — the projection of the tree's satisfying assignments
// onto its root's kept variables (exactly the free variables occurring
// in the tree). A delta confined to one tree therefore only moves that
// tree's contribution; the answer diff is the changed contribution
// rows crossed with the other trees' unchanged contributions.
//
// Within the touched tree the work is delta-sized. For insertions, any
// new contribution row has a witness using an inserted tuple at some
// node, so for each seeded node the tree's rows are *restricted* by a
// breadth-first walk along tree edges — a node's restricted rows are
// the full view rows joinable with the neighbour's restricted rows —
// and the ordinary semijoin passes plus the solve join run on that
// mini-forest. The restriction is closed under witnesses through a
// seed row (adjacent rows of any such assignment join pairwise along
// tree edges), so the mini-forest yields exactly the candidate
// contributions. For deletions the same restricted evaluation runs on
// the *old* snapshot seeded by the deleted rows, producing the old
// contributions that had a witness through a deleted tuple; each
// candidate is then re-checked on the new snapshot by binding the
// tree's kept variables to the candidate row and running the Boolean
// bottom-up pass over the bound mini-forest.
//
// Everything is budgeted: when the restriction grows past the budget,
// the delta spans several trees or a Boolean (no kept variables) tree,
// or the plan is naive, Apply falls back to a full re-evaluation and
// reports it — the diff is still exact, computed as the sorted set
// difference against the previous answers. The fallback and
// incremental counters surface through IndexStats and Explain.

import (
	"context"
	"errors"
	"slices"

	"cqapprox/internal/cqerr"
	"cqapprox/internal/relstr"
)

// DefaultIncrBudget caps the total number of restricted rows (and
// seeds) one Apply may materialise before falling back to a full
// re-evaluation.
const DefaultIncrBudget = 8192

// errIncrBudget aborts an incremental attempt; Apply catches it and
// falls back.
var errIncrBudget = errors.New("eval: incremental budget exceeded")

// IncrState is the persisted reduced state of one plan bound to one
// snapshot version: the per-tree contribution relations and the
// composed, sorted answer set. Not safe for concurrent use; callers
// serialise Apply (the root package's IncrementalEval does).
type IncrState struct {
	p      *Plan
	par    int
	budget int

	version uint64
	answers Answers // sorted, deduplicated; rebuilt (never mutated) per Apply

	// Yannakakis-mode factored state (nil for naive plans, which
	// always fall back):
	contribs [][][]int // per tree, sorted rows over treeVars[t]
	treeVars [][]int   // kept (free) variables per tree; empty = Boolean tree
	treeOf   []int     // node → tree index
	tnodes   [][]int   // tree → its nodes (preorder)
	adj      [][]int   // node → tree neighbours (children + parent)
	nodeVars [][]int   // node → distinct variables
	nodePat  [][]int   // node → atom repetition pattern
	relNodes map[string][]int
}

// IncrDiff is the exact answer-set change of one Apply: the tuples
// that appeared and the tuples that vanished, each sorted and
// deduplicated.
type IncrDiff struct {
	Added   Answers
	Removed Answers
	// Fallback reports that the delta was not propagated
	// incrementally — the state recomputed from scratch (the diff is
	// still exact). Reason says why.
	Fallback bool
	Reason   string
}

// IncrSupported reports whether the plan can maintain its answers
// incrementally (acyclic plans only; naive plans always fall back).
func (p *Plan) IncrSupported() bool { return p.mode == PlanYannakakis }

// NewIncrState evaluates the plan on sn and captures the reduced state
// for later delta maintenance. parallel is the worker budget used for
// this initial evaluation and for fallback re-evaluations.
func (p *Plan) NewIncrState(ctx context.Context, sn *relstr.Snapshot, parallel int) (*IncrState, error) {
	s := &IncrState{p: p, par: normPar(parallel), budget: DefaultIncrBudget}
	if p.mode == PlanYannakakis {
		s.initMaps()
	}
	if err := s.recompute(ctx, sn); err != nil {
		return nil, err
	}
	return s, nil
}

// SetBudget overrides the restricted-row budget (values below one keep
// the default). Lower budgets force earlier fallbacks.
func (s *IncrState) SetBudget(n int) {
	if n > 0 {
		s.budget = n
	}
}

// Version returns the snapshot version the state currently reflects.
func (s *IncrState) Version() uint64 { return s.version }

// Answers returns the maintained answer set, sorted and deduplicated.
// The slice is shared with the state: callers must not modify it. It
// stays valid across Apply calls (updates build fresh slices).
func (s *IncrState) Answers() Answers { return s.answers }

// initMaps precomputes the static per-node and per-tree lookup tables.
func (s *IncrState) initMaps() {
	p := s.p
	n := len(p.atoms)
	s.treeOf = make([]int, n)
	s.adj = make([][]int, n)
	s.nodeVars = make([][]int, n)
	s.nodePat = make([][]int, n)
	s.relNodes = map[string][]int{}
	for i, a := range p.atoms {
		s.nodeVars[i] = a.distinctVars()
		s.nodePat[i] = atomPattern(a.args)
		s.relNodes[a.rel] = append(s.relNodes[a.rel], i)
		s.adj[i] = append(s.adj[i], p.sched.children[i]...)
		if par := p.jt.Parent[i]; par >= 0 {
			s.adj[i] = append(s.adj[i], par)
		}
	}
	s.treeVars = make([][]int, len(p.sched.roots))
	s.tnodes = make([][]int, len(p.sched.roots))
	for ti, r := range p.sched.roots {
		s.treeVars[ti] = p.sched.nodes[r].vars
		var walk func(i int)
		walk = func(i int) {
			s.treeOf[i] = ti
			s.tnodes[ti] = append(s.tnodes[ti], i)
			for _, c := range p.sched.children[i] {
				walk(c)
			}
		}
		walk(r)
	}
}

// view returns node n's atom view on sn.
func (s *IncrState) view(sn *relstr.Snapshot, n int) *relstr.View {
	return sn.View(s.p.atoms[n].rel, s.nodePat[n])
}

// recompute rebuilds the full state — contributions and answers — from
// a fresh evaluation on sn. State fields are only assigned on success.
func (s *IncrState) recompute(ctx context.Context, sn *relstr.Snapshot) error {
	p := s.p
	if p.mode != PlanYannakakis {
		ans, err := naiveEval(ctx, p.tb, sn.Structure())
		if err != nil {
			return err
		}
		s.answers = ans
		s.version = sn.Version()
		return nil
	}
	sc := getScratch()
	defer p.flush(sc)
	f := p.newForest(NewSnapshotSource(sn), sc, s.par)
	defer f.release()
	if err := f.runPasses(ctx, p.sched); err != nil {
		return err
	}
	contribs := make([][][]int, len(p.sched.roots))
	for ti, r := range p.sched.roots {
		if len(s.treeVars[ti]) == 0 {
			// Boolean tree: after both passes a tree is empty at the
			// root iff it is empty everywhere; its contribution is the
			// unit relation or nothing.
			if f.nodes[r].live > 0 {
				contribs[ti] = [][]int{{}}
			} else {
				contribs[ti] = [][]int{}
			}
			continue
		}
		tr, err := f.treeRel(ctx, p.sched, r)
		if err != nil {
			return err
		}
		rows := make([][]int, len(tr.rows))
		for k, row := range tr.rows {
			rows[k] = append([]int{}, row...)
		}
		sortRows(rows)
		contribs[ti] = rows
	}
	s.contribs = contribs
	s.answers = s.compose(-1, nil)
	s.version = sn.Version()
	return nil
}

// fallbackTo recomputes the state on sn and returns the exact diff as
// the sorted set difference against the previous answers.
func (s *IncrState) fallbackTo(ctx context.Context, sn *relstr.Snapshot, reason string) (*IncrDiff, error) {
	old := s.answers
	if err := s.recompute(ctx, sn); err != nil {
		return nil, err
	}
	added, removed := diffAnswers(old, s.answers)
	s.p.stats.incrFallbacks.Add(1)
	return &IncrDiff{Added: added, Removed: removed, Fallback: true, Reason: reason}, nil
}

// Apply advances the state from oldSn (which must be the version the
// state reflects) to newSn = oldSn.Update(d), returning the exact
// answer diff. A nil delta (full replacement) or a version mismatch
// (missed intermediate updates) resynchronises via a full
// re-evaluation; so do naive plans, deltas spanning several trees or a
// Boolean tree, and restrictions past the budget — all reported as
// Fallback with a Reason and counted in IndexStats.IncrFallbacks.
func (s *IncrState) Apply(ctx context.Context, d *relstr.Delta, oldSn, newSn *relstr.Snapshot) (*IncrDiff, error) {
	if newSn == nil {
		return nil, errors.New("eval: Apply requires the updated snapshot")
	}
	if s.p.mode != PlanYannakakis {
		return s.fallbackTo(ctx, newSn, "plan is not incrementally maintainable")
	}
	if d == nil || oldSn == nil {
		return s.fallbackTo(ctx, newSn, "full replacement")
	}
	if oldSn.Version() != s.version {
		return s.fallbackTo(ctx, newSn, "state behind the snapshot chain")
	}
	if newSn.Version() == s.version {
		return &IncrDiff{}, nil // empty delta: Update returned the same snapshot
	}
	if d.NumChanges() > s.budget {
		return s.fallbackTo(ctx, newSn, "delta larger than budget")
	}
	eff := s.effective(d, oldSn, newSn)
	if len(eff) == 0 {
		// Every change is a no-op or touches relations the query never
		// reads: the reduced state stays valid verbatim.
		s.version = newSn.Version()
		s.p.stats.incrEvals.Add(1)
		return &IncrDiff{}, nil
	}
	ti := -1
	for _, e := range eff {
		for _, n := range s.relNodes[e.rel] {
			switch t := s.treeOf[n]; {
			case ti == -1:
				ti = t
			case ti != t:
				return s.fallbackTo(ctx, newSn, "delta spans multiple join trees")
			}
		}
	}
	if len(s.treeVars[ti]) == 0 {
		return s.fallbackTo(ctx, newSn, "delta touches a Boolean tree")
	}
	diff, err := s.applyTree(ctx, ti, eff, oldSn, newSn)
	if err == errIncrBudget {
		return s.fallbackTo(ctx, newSn, "restriction larger than budget")
	}
	if err != nil {
		return nil, err
	}
	s.p.stats.incrEvals.Add(1)
	return diff, nil
}

// effChange is one read relation's effective changes: tuples actually
// entering the snapshot and tuples actually leaving it, deduplicated
// (insert-existing, delete-absent and insert+delete-same-fact ops all
// cancel out here).
type effChange struct {
	rel      string
	ins, del [][]int
}

func (s *IncrState) effective(d *relstr.Delta, oldSn, newSn *relstr.Snapshot) []effChange {
	oldS, newS := oldSn.Structure(), newSn.Structure()
	var out []effChange
	for _, name := range d.Touched() {
		if len(s.relNodes[name]) == 0 {
			continue
		}
		var ins, del relstr.TupleSet
		for _, t := range d.Inserts(name) {
			if !oldS.Has(name, t...) && newS.Has(name, t...) {
				ins.AddCopy(t)
			}
		}
		for _, t := range d.Deletes(name) {
			if oldS.Has(name, t...) && !newS.Has(name, t...) {
				del.AddCopy(t)
			}
		}
		if ins.Len()+del.Len() > 0 {
			out = append(out, effChange{rel: name, ins: tuplesToRows(ins.Rows()), del: tuplesToRows(del.Rows())})
		}
	}
	return out
}

// applyTree propagates the effective changes — all confined to tree ti
// — and updates the state. State mutation happens only after every
// candidate and membership check succeeded, so a budget abort leaves
// the state untouched for the fallback.
func (s *IncrState) applyTree(ctx context.Context, ti int, eff []effChange, oldSn, newSn *relstr.Snapshot) (*IncrDiff, error) {
	p := s.p
	budget := s.budget
	sc := getScratch()
	defer p.flushIncr(sc)
	var addSeen, remSeen relstr.TupleSet
	for _, e := range eff {
		for _, n := range s.relNodes[e.rel] {
			if seeds := s.seedRows(n, e.ins); len(seeds) > 0 {
				rows, err := s.treeCandidates(ctx, sc, ti, n, seeds, newSn, &budget)
				if err != nil {
					return nil, err
				}
				for _, r := range rows {
					addSeen.AddCopy(r)
				}
			}
			if seeds := s.seedRows(n, e.del); len(seeds) > 0 {
				rows, err := s.treeCandidates(ctx, sc, ti, n, seeds, oldSn, &budget)
				if err != nil {
					return nil, err
				}
				for _, r := range rows {
					remSeen.AddCopy(r)
				}
			}
		}
	}
	// Insert candidates already contributed before the delta are not
	// new; delete candidates still derivable on the new snapshot stay.
	var added [][]int
	for _, c := range tuplesToRows(addSeen.Rows()) {
		if !containsRow(s.contribs[ti], c) {
			added = append(added, c)
		}
	}
	var removed [][]int
	for _, c := range tuplesToRows(remSeen.Rows()) {
		ok, err := s.member(ctx, sc, ti, c, newSn, &budget)
		if err != nil {
			return nil, err
		}
		if !ok {
			removed = append(removed, c)
		}
	}
	sortRows(added)
	sortRows(removed)
	addedAns := s.compose(ti, added)
	removedAns := s.compose(ti, removed)
	s.contribs[ti] = mergeRows(s.contribs[ti], added, removed)
	s.answers = mergeAnswers(s.answers, addedAns, removedAns)
	s.version = newSn.Version()
	return &IncrDiff{Added: addedAns, Removed: removedAns}, nil
}

// seedRows projects the delta tuples of node n's relation onto the
// node's view shape: tuples violating the atom's repetition pattern
// (or arity) realise no view row and drop out.
func (s *IncrState) seedRows(n int, tuples [][]int) [][]int {
	a := s.p.atoms[n]
	pat := s.nodePat[n]
	var out [][]int
tuples:
	for _, t := range tuples {
		if len(t) != len(a.args) {
			continue
		}
		for i, pi := range pat {
			if t[i] != t[pi] {
				continue tuples
			}
		}
		row := make([]int, 0, len(s.nodeVars[n]))
		for i, pi := range pat {
			if pi == i {
				row = append(row, t[i])
			}
		}
		out = append(out, row)
	}
	return out
}

// restrict computes the seed-reachable row restriction of tree ti on
// sn: a breadth-first walk from seedNode along tree edges, restricting
// each node to the view rows joinable with the neighbour's restricted
// rows (probed through the snapshot's persistent indexes). The walk
// covers the whole tree (trees are connected), and the restriction is
// closed under assignments through a seed row.
func (s *IncrState) restrict(sn *relstr.Snapshot, seedNode int, seeds [][]int, sc *scratch, budget *int) (map[int][][]int, error) {
	restricted := map[int][][]int{seedNode: seeds}
	*budget -= len(seeds)
	if *budget < 0 {
		return nil, errIncrBudget
	}
	if err := s.closeRestriction(sn, restricted, []int{seedNode}, sc, budget); err != nil {
		return nil, err
	}
	return restricted, nil
}

// closeRestriction completes restricted into a full-tree restriction:
// a breadth-first walk from the already-restricted queue nodes along
// tree edges, restricting each unvisited node to the view rows
// joinable with its restricted neighbour (probed through the
// snapshot's persistent indexes). queue must hold exactly restricted's
// keys; both are mutated in place.
func (s *IncrState) closeRestriction(sn *relstr.Snapshot, restricted map[int][][]int, queue []int, sc *scratch, budget *int) error {
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		for _, m := range s.adj[i] {
			if _, ok := restricted[m]; ok {
				continue
			}
			iCols, mCols := sharedCols(s.nodeVars[i], s.nodeVars[m])
			v := s.view(sn, m)
			var rows [][]int
			if len(mCols) == 0 {
				rows = v.Rows() // no shared variables: every row joins
			} else {
				ix, _ := v.Index(mCols)
				sc.stats.probes += uint64(len(restricted[i]))
				seen := map[int32]bool{}
				for _, r := range restricted[i] {
					for id := ix.First(r, iCols); id >= 0; id = ix.Next(id, r, iCols) {
						if !seen[id] {
							seen[id] = true
							rows = append(rows, v.Rows()[id])
						}
					}
				}
			}
			*budget -= len(rows)
			if *budget < 0 {
				return errIncrBudget
			}
			restricted[m] = rows
			queue = append(queue, m)
		}
	}
	return nil
}

// miniForest wraps restricted row sets as a serial forest the ordinary
// pass/solve machinery runs on (nodes outside the restriction stay
// zero-valued and are never visited).
func (s *IncrState) miniForest(restricted map[int][][]int, sc *scratch) *forest {
	f := &forest{nodes: make([]execNode, len(s.p.atoms)), sc: sc, par: 1}
	for i, rows := range restricted {
		f.nodes[i] = execNode{
			rows:  rows,
			vars:  s.nodeVars[i],
			ix:    &memoIndexer{rows: rows},
			words: allAlive(len(rows)),
			live:  len(rows),
		}
	}
	return f
}

// treeCandidates runs the full restricted evaluation of tree ti seeded
// at seedNode and returns the candidate contribution rows (allocated
// from sc; callers copy what they keep).
func (s *IncrState) treeCandidates(ctx context.Context, sc *scratch, ti, seedNode int, seeds [][]int, sn *relstr.Snapshot, budget *int) ([][]int, error) {
	restricted, err := s.restrict(sn, seedNode, seeds, sc, budget)
	if err != nil {
		return nil, err
	}
	f := s.miniForest(restricted, sc)
	defer f.release()
	r := s.p.sched.roots[ti]
	if err := f.down(ctx, s.p.sched, r); err != nil {
		return nil, err
	}
	if err := f.up(ctx, s.p.sched, r); err != nil {
		return nil, err
	}
	tr, err := f.treeRel(ctx, s.p.sched, r)
	if err != nil {
		return nil, err
	}
	return tr.rows, nil
}

// member reports whether contribution row c is still derivable from
// tree ti on sn: every node containing a kept variable is restricted
// to the view rows matching c's binding of it, the restriction is
// closed transitively over the remaining nodes along tree edges (so
// nodes without kept variables cost their join neighbourhood, not
// their whole view), and the Boolean bottom-up pass checks for a
// surviving assignment.
func (s *IncrState) member(ctx context.Context, sc *scratch, ti int, c []int, sn *relstr.Snapshot, budget *int) (bool, error) {
	restricted := make(map[int][][]int, len(s.tnodes[ti]))
	var queue []int
	for _, n := range s.tnodes[ti] {
		var keyCols, probeCols []int
		for j, v := range s.nodeVars[n] {
			if k := indexOfOrNeg(s.treeVars[ti], v); k != -1 {
				keyCols = append(keyCols, j)
				probeCols = append(probeCols, k)
			}
		}
		if len(keyCols) == 0 {
			continue // restricted through a neighbour in the closure walk
		}
		v := s.view(sn, n)
		var rows [][]int
		ix, _ := v.Index(keyCols)
		sc.stats.probes++
		for id := ix.First(c, probeCols); id >= 0; id = ix.Next(id, c, probeCols) {
			rows = append(rows, v.Rows()[id])
		}
		if len(rows) == 0 {
			return false, nil
		}
		*budget -= len(rows)
		if *budget < 0 {
			return false, errIncrBudget
		}
		restricted[n] = rows
		queue = append(queue, n)
	}
	if err := s.closeRestriction(sn, restricted, queue, sc, budget); err != nil {
		return false, err
	}
	f := s.miniForest(restricted, sc)
	defer f.release()
	return f.treeBool(ctx, s.p.sched, s.p.sched.roots[ti])
}

// compose crosses the per-tree contributions — tree ti replaced by
// rows when ti >= 0 — in roots order (the totalVars layout) and
// projects onto the head. The projection is injective (every kept
// variable is a head variable), so crossing deduplicated contributions
// needs no dedup pass.
func (s *IncrState) compose(ti int, rows [][]int) Answers {
	sched := s.p.sched
	acc := [][]int{{}}
	for t := range s.contribs {
		part := s.contribs[t]
		if t == ti {
			part = rows
		}
		if len(part) == 0 {
			return Answers{}
		}
		if len(part) == 1 && len(part[0]) == 0 {
			continue // unit contribution (Boolean tree): no columns
		}
		next := make([][]int, 0, len(acc)*len(part))
		for _, a := range acc {
			for _, b := range part {
				row := make([]int, 0, len(a)+len(b))
				row = append(row, a...)
				row = append(row, b...)
				next = append(next, row)
			}
		}
		acc = next
	}
	out := make(Answers, len(acc))
	for k, row := range acc {
		a := make(relstr.Tuple, len(sched.head))
		for i, j := range sched.headCols {
			a[i] = row[j]
		}
		out[k] = a
	}
	return sortAnswers(out)
}

// --- tree-local executor entry points ----------------------------------

// treeRel runs the solve-phase join program of one tree over a forest
// that already went through both reduction passes, returning the
// tree's contribution relation (over the root's kept variables).
// Mirrors forest.solve's per-tree loop, including the dead-step skips
// — valid here because the passes make the (mini-)forest globally
// consistent within the tree.
func (f *forest) treeRel(ctx context.Context, sched *schedule, root int) (rel, error) {
	var rec func(i int) (rel, error)
	rec = func(i int) (rel, error) {
		if err := cqerr.Check(ctx); err != nil {
			return rel{}, err
		}
		acc := rel{vars: f.nodes[i].vars, rows: f.nodes[i].aliveRows()}
		for _, st := range sched.nodes[i].joins {
			if st.skip {
				continue
			}
			child, err := rec(st.child)
			if err != nil {
				return rel{}, err
			}
			acc = f.join(acc, child, st)
		}
		if sched.nodes[i].projCols != nil {
			acc = f.sc.project(acc, sched.nodes[i].projCols, sched.nodes[i].vars)
		}
		return acc, nil
	}
	return rec(root)
}

// treeBool runs the bottom-up pass of one tree only, reporting whether
// any assignment survives (the root keeps a live row).
func (f *forest) treeBool(ctx context.Context, sched *schedule, root int) (bool, error) {
	var rec func(i int) (bool, error)
	rec = func(i int) (bool, error) {
		for _, c := range sched.children[i] {
			ok, err := rec(c)
			if !ok || err != nil {
				return ok, err
			}
		}
		if err := cqerr.Check(ctx); err != nil {
			return false, err
		}
		for _, st := range sched.downOf[i] {
			f.semijoin(st)
		}
		return f.nodes[i].live > 0, nil
	}
	return rec(root)
}

// flushIncr folds an incremental call's scratch counters into the plan
// totals without counting a full evaluation.
func (p *Plan) flushIncr(sc *scratch) {
	p.stats.builds.Add(sc.stats.builds)
	p.stats.probes.Add(sc.stats.probes)
	putScratch(sc)
}

// --- sorted-row helpers ------------------------------------------------

func rowCompare(a, b []int) int { return relstr.Compare(relstr.Tuple(a), relstr.Tuple(b)) }

func sortRows(rows [][]int) { slices.SortFunc(rows, rowCompare) }

func containsRow(sorted [][]int, c []int) bool {
	_, ok := slices.BinarySearchFunc(sorted, c, rowCompare)
	return ok
}

func tuplesToRows(ts []relstr.Tuple) [][]int {
	out := make([][]int, len(ts))
	for i, t := range ts {
		out[i] = t
	}
	return out
}

// mergeRows returns (base \ del) ∪ add, all inputs sorted, add
// disjoint from base and del ⊆ base.
func mergeRows(base, add, del [][]int) [][]int {
	out := make([][]int, 0, len(base)+len(add)-len(del))
	ai, di := 0, 0
	for _, b := range base {
		for ai < len(add) && rowCompare(add[ai], b) < 0 {
			out = append(out, add[ai])
			ai++
		}
		if di < len(del) && rowCompare(del[di], b) == 0 {
			di++
			continue
		}
		out = append(out, b)
	}
	out = append(out, add[ai:]...)
	return out
}

// mergeAnswers is mergeRows over answer tuples.
func mergeAnswers(base, add, del Answers) Answers {
	out := make(Answers, 0, len(base)+len(add)-len(del))
	ai, di := 0, 0
	for _, b := range base {
		for ai < len(add) && relstr.Compare(add[ai], b) < 0 {
			out = append(out, add[ai])
			ai++
		}
		if di < len(del) && relstr.Compare(del[di], b) == 0 {
			di++
			continue
		}
		out = append(out, b)
	}
	out = append(out, add[ai:]...)
	return out
}

// diffAnswers returns the sorted set differences cur \ old (added) and
// old \ cur (removed).
func diffAnswers(old, cur Answers) (added, removed Answers) {
	i, j := 0, 0
	for i < len(old) && j < len(cur) {
		switch c := relstr.Compare(old[i], cur[j]); {
		case c < 0:
			removed = append(removed, old[i])
			i++
		case c > 0:
			added = append(added, cur[j])
			j++
		default:
			i++
			j++
		}
	}
	removed = append(removed, old[i:]...)
	added = append(added, cur[j:]...)
	return added, removed
}
