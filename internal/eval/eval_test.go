package eval

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"cqapprox/internal/cq"
	"cqapprox/internal/relstr"
)

func graphDB(edges ...[2]int) *relstr.Structure {
	db := relstr.New()
	db.Declare("E", 2)
	for _, e := range edges {
		db.Add("E", e[0], e[1])
	}
	return db
}

func cycleDB(n int) *relstr.Structure {
	db := relstr.New()
	for i := 0; i < n; i++ {
		db.Add("E", i, (i+1)%n)
	}
	return db
}

func TestNaivePathQuery(t *testing.T) {
	q := cq.MustParse("Q(x,z) :- E(x,y), E(y,z)")
	db := graphDB([2]int{1, 2}, [2]int{2, 3}, [2]int{2, 4})
	ans := Naive(q, db)
	want := []relstr.Tuple{{1, 3}, {1, 4}}
	if len(ans) != 2 || !ans.Contains(want[0]) || !ans.Contains(want[1]) {
		t.Fatalf("answers = %v, want %v", ans, want)
	}
}

func TestNaiveBooleanTriangle(t *testing.T) {
	q := cq.MustParse("Q() :- E(x,y), E(y,z), E(z,x)")
	if !NaiveBool(q, cycleDB(3)) {
		t.Fatal("triangle present")
	}
	if NaiveBool(q, cycleDB(4)) {
		t.Fatal("no triangle in C4")
	}
	// Boolean true answer is the empty tuple.
	ans := Naive(q, cycleDB(3))
	if len(ans) != 1 || len(ans[0]) != 0 {
		t.Fatalf("Boolean true answers = %v", ans)
	}
}

func TestYannakakisMatchesNaiveOnPath(t *testing.T) {
	q := cq.MustParse("Q(x,w) :- E(x,y), E(y,z), E(z,w)")
	db := graphDB(
		[2]int{0, 1}, [2]int{1, 2}, [2]int{2, 3}, [2]int{3, 4},
		[2]int{1, 3}, [2]int{0, 2},
	)
	fast, err := Yannakakis(q, db)
	if err != nil {
		t.Fatal(err)
	}
	slow := Naive(q, db)
	assertSameAnswers(t, fast, slow)
}

func TestYannakakisRejectsCyclic(t *testing.T) {
	q := cq.MustParse("Q() :- E(x,y), E(y,z), E(z,x)")
	if _, err := Yannakakis(q, cycleDB(3)); err != ErrNotAcyclic {
		t.Fatalf("err = %v, want ErrNotAcyclic", err)
	}
	if _, err := YannakakisBool(q, cycleDB(3)); err != ErrNotAcyclic {
		t.Fatalf("err = %v, want ErrNotAcyclic", err)
	}
}

func TestYannakakisBooleanSemijoinOnly(t *testing.T) {
	q := cq.MustParse("Q() :- E(x,y), E(y,z)")
	ok, err := YannakakisBool(q, graphDB([2]int{0, 1}, [2]int{1, 2}))
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	ok, err = YannakakisBool(q, graphDB([2]int{0, 1}, [2]int{2, 3}))
	if err != nil || ok {
		t.Fatalf("disconnected edges have no path: ok=%v err=%v", ok, err)
	}
}

func TestYannakakisRepeatedVars(t *testing.T) {
	q := cq.MustParse("Q(x) :- E(x,x)")
	db := graphDB([2]int{0, 0}, [2]int{1, 2}, [2]int{3, 3})
	ans, err := Yannakakis(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 2 || !ans.Contains(relstr.Tuple{0}) || !ans.Contains(relstr.Tuple{3}) {
		t.Fatalf("answers = %v, want loops {0,3}", ans)
	}
}

func TestYannakakisDisconnectedCrossProduct(t *testing.T) {
	q := cq.MustParse("Q(x,u) :- E(x,y), F(u,v)")
	db := relstr.New()
	db.Add("E", 1, 2)
	db.Add("E", 3, 4)
	db.Add("F", 7, 8)
	ans, err := Yannakakis(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 2 || !ans.Contains(relstr.Tuple{1, 7}) || !ans.Contains(relstr.Tuple{3, 7}) {
		t.Fatalf("answers = %v, want {(1,7),(3,7)}", ans)
	}
}

func TestYannakakisRepeatedHead(t *testing.T) {
	q := cq.MustParse("Q(x,x) :- E(x,y)")
	db := graphDB([2]int{5, 6})
	ans, err := Yannakakis(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 1 || !ans[0].Equal(relstr.Tuple{5, 5}) {
		t.Fatalf("answers = %v, want (5,5)", ans)
	}
}

func TestTreeDecompositionMatchesNaiveOnCyclicQuery(t *testing.T) {
	q := cq.MustParse("Q(x) :- E(x,y), E(y,z), E(z,x)")
	db := cycleDB(3)
	db.Add("E", 0, 3)
	db.Add("E", 3, 5)
	db.Add("E", 5, 0)
	td, err := ByTreeDecomposition(q, db)
	if err != nil {
		t.Fatal(err)
	}
	assertSameAnswers(t, td, Naive(q, db))
}

func TestEvalAutoSelection(t *testing.T) {
	acyc := cq.MustParse("Q(x) :- E(x,y), E(y,z)")
	cyc := cq.MustParse("Q(x) :- E(x,y), E(y,z), E(z,x)")
	db := cycleDB(5)
	assertSameAnswers(t, Eval(acyc, db), Naive(acyc, db))
	assertSameAnswers(t, Eval(cyc, db), Naive(cyc, db))
	if EvalBool(cyc, cycleDB(4)) {
		t.Fatal("C3 query should be false on C4")
	}
	if !EvalBool(acyc, cycleDB(4)) {
		t.Fatal("path query should hold on C4")
	}
}

func TestProgramListsSemijoins(t *testing.T) {
	q := cq.MustParse("Q() :- E(x,y), E(y,z), E(z,w)")
	prog, err := Program(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Atoms) != 3 {
		t.Fatalf("atoms = %v", prog.Atoms)
	}
	// A full reduction does 2 bottom-up + 2 top-down steps for 3 atoms.
	if len(prog.Steps) != 4 {
		t.Fatalf("steps = %v, want 4", prog.Steps)
	}
	if _, err := Program(cq.MustParse("Q() :- E(x,y), E(y,z), E(z,x)")); err == nil {
		t.Fatal("cyclic query should not yield a program")
	}
}

func randomQuery(rng *rand.Rand, acyclicOnly bool) *cq.Query {
	for {
		nv := 2 + rng.Intn(4)
		na := 1 + rng.Intn(4)
		q := &cq.Query{Name: "Q"}
		vars := make([]string, nv)
		for i := range vars {
			vars[i] = fmt.Sprintf("v%d", i)
		}
		used := map[string]bool{}
		for i := 0; i < na; i++ {
			a := cq.Atom{Rel: "E", Args: []string{
				vars[rng.Intn(nv)], vars[rng.Intn(nv)],
			}}
			q.Atoms = append(q.Atoms, a)
			used[a.Args[0]] = true
			used[a.Args[1]] = true
		}
		// Head: up to 2 used variables.
		var pool []string
		for _, v := range vars {
			if used[v] {
				pool = append(pool, v)
			}
		}
		for i := 0; i < rng.Intn(3) && len(pool) > 0; i++ {
			q.Head = append(q.Head, pool[rng.Intn(len(pool))])
		}
		if acyclicOnly {
			if _, err := Program(q); err != nil {
				continue
			}
		}
		return q
	}
}

func randomDB(rng *rand.Rand, n, m int) *relstr.Structure {
	db := relstr.New()
	db.Declare("E", 2)
	for i := 0; i < m; i++ {
		db.Add("E", rng.Intn(n), rng.Intn(n))
	}
	return db
}

// Property: Yannakakis agrees with the naive engine on random acyclic
// queries and databases.
func TestQuickYannakakisEquivNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := randomQuery(rng, true)
		db := randomDB(rng, 5, 8)
		fast, err := Yannakakis(q, db)
		if err != nil {
			return false
		}
		return sameAnswers(fast, Naive(q, db))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: tree-decomposition evaluation agrees with the naive engine
// on arbitrary random queries.
func TestQuickTreeDecompEquivNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := randomQuery(rng, false)
		db := randomDB(rng, 4, 7)
		td, err := ByTreeDecomposition(q, db)
		if err != nil {
			return false
		}
		return sameAnswers(td, Naive(q, db))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: YannakakisBool agrees with (len(answers) > 0).
func TestQuickBoolAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := randomQuery(rng, true)
		db := randomDB(rng, 5, 6)
		ok, err := YannakakisBool(q, db)
		if err != nil {
			return false
		}
		return ok == (len(Naive(q, db)) > 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func sameAnswers(a, b Answers) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

func assertSameAnswers(t *testing.T, a, b Answers) {
	t.Helper()
	if !sameAnswers(a, b) {
		t.Fatalf("answer sets differ:\n  a = %v\n  b = %v", a, b)
	}
}
