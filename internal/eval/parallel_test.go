package eval

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"cqapprox/internal/cq"
	"cqapprox/internal/relstr"
)

// bigDB returns a database large enough to clear the production
// parallel thresholds (morsels fan out without test tuning).
func bigDB(seed int64, n, m int) *relstr.Structure {
	rng := rand.New(rand.NewSource(seed))
	db := relstr.New()
	db.Declare("E", 2)
	for i := 0; i < m; i++ {
		db.Add("E", rng.Intn(n), rng.Intn(n))
	}
	return db
}

// The parallel executor at production thresholds (no tuning knobs)
// returns byte-identical answers to the serial one, on both backends,
// for the chain and star shapes the morsel fan-out targets.
func TestParallelProductionThresholds(t *testing.T) {
	ctx := context.Background()
	db := bigDB(7, 800, 12000)
	for i := 1; i <= 3; i++ {
		rng := rand.New(rand.NewSource(int64(10 + i)))
		rel := "R" + string(rune('0'+i))
		db.Declare(rel, 2)
		for j := 0; j < 6000; j++ {
			db.Add(rel, rng.Intn(800), rng.Intn(800))
		}
	}
	snap := relstr.NewSnapshot(db)
	queries := []string{
		"Q(x0) :- E(x0,x1), E(x1,x2), E(x2,x3), E(x3,x4)",
		"Q(c) :- R1(c,l1), R2(c,l2), R3(c,l3)",
		"Q() :- E(x0,x1), E(x1,x2), E(x2,x3)",
	}
	for _, src := range queries {
		p := NewPlan(cq.MustParse(src))
		if p.Mode() != PlanYannakakis {
			t.Fatalf("%s: expected acyclic plan", src)
		}
		want, err := p.Eval(ctx, db)
		if err != nil {
			t.Fatal(err)
		}
		for _, backend := range []struct {
			name string
			s    func() Source
		}{{"struct", func() Source { return NewSource(db) }}, {"snapshot", func() Source { return NewSnapshotSource(snap) }}} {
			got, err := p.EvalOn(ctx, backend.s(), 8)
			if err != nil {
				t.Fatal(err)
			}
			if !sameAnswers(got, want) {
				t.Fatalf("%s/%s: parallel answers diverge (%d vs %d)", src, backend.name, len(got), len(want))
			}
			ok, err := p.EvalBoolOn(ctx, backend.s(), 8)
			if err != nil || ok != (len(want) > 0) {
				t.Fatalf("%s/%s: parallel bool = %v, err %v", src, backend.name, ok, err)
			}
		}
	}
}

// One plan, one snapshot, many goroutines, parallel workers inside
// each evaluation: the per-call forests must stay fully independent
// (run under -race in CI's dedicated eval job).
func TestParallelConcurrentPlanUse(t *testing.T) {
	ctx := context.Background()
	db := bigDB(11, 400, 5000)
	snap := relstr.NewSnapshot(db)
	p := NewPlan(cq.MustParse("Q(x0) :- E(x0,x1), E(x1,x2), E(x2,x3)"))
	want, err := p.Eval(ctx, db)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				src := Source(NewSource(db))
				if g%2 == 0 {
					src = NewSnapshotSource(snap)
				}
				got, err := p.EvalOn(ctx, src, 4)
				if err != nil {
					errs <- err
					return
				}
				if !sameAnswers(got, want) {
					t.Errorf("goroutine %d: answers diverge", g)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := p.IndexStats(); st.ParallelEvals == 0 {
		t.Fatalf("parallel evals not counted: %+v", st)
	}
}
