// Package eval implements CQ evaluation engines with the combined
// complexities the paper contrasts:
//
//   - Naive: backtracking join, |D|^O(|Q|) combined complexity — the
//     generic engine for arbitrary CQs.
//   - Yannakakis: the classical semijoin algorithm for acyclic CQs,
//     O(|D|·|Q|) per the paper's Section 1 (plus output cost for
//     non-Boolean queries).
//   - TreeDecomp: evaluation through a width-k tree decomposition,
//     O(|D|^{k+1}) — the engine for TW(k) queries.
//
// All engines return the same answer sets; the test suite
// cross-validates them on random instances.
//
// The Yannakakis and tree-decomposition pipelines run on one unified,
// backend-agnostic executor (exec.go): all column mappings are
// precomputed in a schedule (schedule.go) that Plans build once at
// prepare time, and the executor replays it against any storage
// backend through the Source interface (source.go) — a per-call
// materialisation of a plain *Structure, or a registered
// relstr.Snapshot whose views and hash indexes persist across calls.
// Row liveness is a per-node bitmap (backing rows are shared with the
// backend and never mutated), probes go through hash indexes keyed on
// integer column prefixes (relstr.HashCols — no string keys anywhere
// on the hot path), and the solve phase's derived relations allocate
// from pooled scratch arenas. The executor is morsel-driven parallel:
// with a worker budget above one, semijoin probe loops, solve joins
// and head projections split into fixed-size row chunks fanned out to
// workers, and the reduction passes additionally parallelize across
// independent sibling subtrees — with answers byte-identical to a
// serial run. The string-keyed operators this runtime replaced survive
// in ref.go as differential oracles and as the benchmark baseline.
package eval

import (
	"context"
	"fmt"
	"slices"
	"sync"

	"cqapprox/internal/cq"
	"cqapprox/internal/hom"
	"cqapprox/internal/relstr"
)

// Answers is a deduplicated set of answer tuples in deterministic
// (lexicographic) order.
type Answers []relstr.Tuple

// Contains reports whether a includes t. Answers are sorted, so this
// is a binary search on the shared integer tuple order.
func (a Answers) Contains(t relstr.Tuple) bool {
	_, ok := slices.BinarySearchFunc(a, t, relstr.Compare)
	return ok
}

func sortAnswers(ts []relstr.Tuple) Answers {
	slices.SortFunc(ts, relstr.Compare)
	return ts
}

// Naive evaluates q on db by backtracking search over the query
// variables (the generic NP engine).
func Naive(q *cq.Query, db *relstr.Structure) Answers {
	ans, _ := NaiveCtx(nil, q, db)
	return ans
}

// NaiveCtx is Naive under a context: cancellation aborts the
// backtracking search with a cqerr.ErrCanceled-wrapped error.
func NaiveCtx(ctx context.Context, q *cq.Query, db *relstr.Structure) (Answers, error) {
	return naiveEval(ctx, q.Tableau(), db)
}

// naiveEval is the tableau-level backtracking engine shared by NaiveCtx
// and Plan (which passes its precomputed tableau).
func naiveEval(ctx context.Context, tb *cq.Tableau, db *relstr.Structure) (Answers, error) {
	var out []relstr.Tuple
	_, err := hom.ProjectCtx(ctx, tb.S, db, nil, tb.Dist, func(vals []int) bool {
		out = append(out, relstr.Tuple(vals).Clone())
		return true
	})
	if err != nil {
		return nil, err
	}
	return sortAnswers(out), nil
}

// NaiveBool evaluates a Boolean query (or reports whether q has any
// answer).
func NaiveBool(q *cq.Query, db *relstr.Structure) bool {
	ok, _ := NaiveBoolCtx(nil, q, db)
	return ok
}

// NaiveBoolCtx is NaiveBool under a context.
func NaiveBoolCtx(ctx context.Context, q *cq.Query, db *relstr.Structure) (bool, error) {
	return naiveBool(ctx, q.Tableau(), db)
}

// naiveBool is the tableau-level answer-existence check shared by
// NaiveBoolCtx and Plan. A found answer wins over a late cancellation:
// the latch stops the search, not the result.
func naiveBool(ctx context.Context, tb *cq.Tableau, db *relstr.Structure) (bool, error) {
	found := false
	_, err := hom.ProjectCtx(ctx, tb.S, db, nil, tb.Dist, func([]int) bool {
		found = true
		return false
	})
	if err != nil && !found {
		return false, err
	}
	return found, nil
}

// Eval evaluates q with the best applicable engine: Yannakakis when q
// is acyclic, otherwise the naive engine.
func Eval(q *cq.Query, db *relstr.Structure) Answers {
	ans, _ := EvalCtx(nil, q, db)
	return ans
}

// EvalCtx is Eval under a context.
func EvalCtx(ctx context.Context, q *cq.Query, db *relstr.Structure) (Answers, error) {
	ans, err := YannakakisCtx(ctx, q, db)
	if err == nil {
		return ans, nil
	}
	if !IsNotAcyclic(err) {
		return nil, err
	}
	return NaiveCtx(ctx, q, db)
}

// EvalBool is the Boolean variant of Eval.
func EvalBool(q *cq.Query, db *relstr.Structure) bool {
	ok, _ := EvalBoolCtx(nil, q, db)
	return ok
}

// EvalBoolCtx is EvalBool under a context.
func EvalBoolCtx(ctx context.Context, q *cq.Query, db *relstr.Structure) (bool, error) {
	ok, err := YannakakisBoolCtx(ctx, q, db)
	if err == nil {
		return ok, nil
	}
	if !IsNotAcyclic(err) {
		return false, err
	}
	return NaiveBoolCtx(ctx, q, db)
}

// --- shared relation-tree machinery -----------------------------------

// rel is a materialised relation over a fixed variable list.
type rel struct {
	vars []int   // distinct variable (element) ids
	rows [][]int // aligned with vars, deduplicated
}

// node is one node of a relation tree (a join tree of atoms, or a tree
// decomposition's bag tree).
type node struct {
	rel
	parent   int
	children []int
}

func indexOf(vars []int, v int) int {
	for i, x := range vars {
		if x == v {
			return i
		}
	}
	panic(fmt.Sprintf("eval: variable %d not in %v", v, vars))
}

// sharedVars returns the variables common to a and b, in a's order.
func sharedVars(a, b []int) []int {
	var out []int
	for _, v := range a {
		if indexOfOrNeg(b, v) != -1 {
			out = append(out, v)
		}
	}
	return out
}

// --- the indexed runtime ----------------------------------------------

// opStats are the per-call index counters a scratch accumulates; Plans
// fold them into their atomic totals when the call finishes.
type opStats struct {
	builds uint64 // hash indexes built over data
	probes uint64 // rows driven through an index probe
}

// scratch is the reusable per-evaluation state of the indexed runtime:
// one bucket table and chain array serving every index built during
// the call (at most one index is live at a time), and an integer arena
// the join outputs allocate rows from. Nothing allocated from a
// scratch escapes the evaluation (answers and reduced databases are
// copied out), so scratches are pooled across calls.
type scratch struct {
	head  []int32
	next  []int32
	buf   []int
	stats opStats
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

func getScratch() *scratch {
	sc := scratchPool.Get().(*scratch)
	sc.stats = opStats{}
	return sc
}

func putScratch(sc *scratch) {
	sc.buf = sc.buf[:0]
	scratchPool.Put(sc)
}

// alloc returns a fresh n-int row from the arena.
func (sc *scratch) alloc(n int) []int {
	if n == 0 {
		return nil
	}
	if cap(sc.buf)-len(sc.buf) < n {
		c := 8192
		if c < n {
			c = n
		}
		sc.buf = make([]int, 0, c)
	}
	off := len(sc.buf)
	sc.buf = sc.buf[:off+n]
	return sc.buf[off : off+n : off+n]
}

// hashIndex is a bucket-chained hash index over the rows of one
// relation, keyed on the values at cols. Buckets hold row ids; probes
// walk the chain comparing key columns as integers.
type hashIndex struct {
	rows [][]int
	cols []int
	head []int32 // bucket → first row id +1 (0 = empty)
	next []int32 // row id → next row id +1 in the same bucket
	mask uint64
}

// buildIndex indexes rows on cols using the scratch's tables. The
// index is valid until the scratch builds the next one.
func (sc *scratch) buildIndex(rows [][]int, cols []int) hashIndex {
	n := 8
	for n < 2*len(rows) {
		n <<= 1
	}
	if cap(sc.head) < n {
		sc.head = make([]int32, n)
	}
	head := sc.head[:n]
	for i := range head {
		head[i] = 0
	}
	if cap(sc.next) < len(rows) {
		sc.next = make([]int32, len(rows))
	}
	next := sc.next[:len(rows)]
	mask := uint64(n - 1)
	for i, row := range rows {
		b := relstr.HashCols(row, cols) & mask
		next[i] = head[b]
		head[b] = int32(i + 1)
	}
	sc.stats.builds++
	return hashIndex{rows: rows, cols: cols, head: head, next: next, mask: mask}
}

// match reports whether row id of the index agrees with probe on the
// aligned key columns.
func (ix *hashIndex) match(id int32, probe []int, probeCols []int) bool {
	r := ix.rows[id]
	for k, c := range ix.cols {
		if r[c] != probe[probeCols[k]] {
			return false
		}
	}
	return true
}

// lookup returns the first indexed row id matching probe at probeCols,
// or -1.
func (ix *hashIndex) lookup(probe []int, probeCols []int) int32 {
	for id := ix.head[relstr.HashCols(probe, probeCols)&ix.mask]; id != 0; id = ix.next[id-1] {
		if ix.match(id-1, probe, probeCols) {
			return id - 1
		}
	}
	return -1
}

// nextMatch continues a lookup from row id.
func (ix *hashIndex) nextMatch(id int32, probe []int, probeCols []int) int32 {
	for nid := ix.next[id]; nid != 0; nid = ix.next[nid-1] {
		if ix.match(nid-1, probe, probeCols) {
			return nid - 1
		}
	}
	return -1
}

// join computes the natural join of l and r under the precomputed step
// mapping: r is indexed on st.rCols, every l row probes with st.lCols,
// and matches append r's st.rExtra columns to the l row. Join inputs
// are duplicate-free sets over their variables, so the output is too —
// no dedup pass needed.
func (sc *scratch) join(l, r rel, st jStep) rel {
	out := rel{vars: st.outVars}
	if len(l.rows) == 0 || len(r.rows) == 0 {
		return out
	}
	if len(st.rCols) == 0 {
		// Keyless join (cross product across components): every pair
		// matches, so a hash index would be a single bucket — iterate
		// directly instead of building one.
		w := len(l.vars) + len(st.rExtra)
		for _, lrow := range l.rows {
			for _, rrow := range r.rows {
				vals := sc.alloc(w)
				copy(vals, lrow)
				for k, c := range st.rExtra {
					vals[len(lrow)+k] = rrow[c]
				}
				out.rows = append(out.rows, vals)
			}
		}
		return out
	}
	ix := sc.buildIndex(r.rows, st.rCols)
	sc.stats.probes += uint64(len(l.rows))
	w := len(l.vars) + len(st.rExtra)
	for _, lrow := range l.rows {
		for id := ix.lookup(lrow, st.lCols); id >= 0; id = ix.nextMatch(id, lrow, st.lCols) {
			rrow := ix.rows[id]
			vals := sc.alloc(w)
			copy(vals, lrow)
			for k, c := range st.rExtra {
				vals[len(lrow)+k] = rrow[c]
			}
			out.rows = append(out.rows, vals)
		}
	}
	return out
}

// project returns r restricted to cols (in cols order) with outVars as
// the variable list, deduplicated through an incremental hash table —
// the projection loses columns, so duplicates do arise here.
func (sc *scratch) project(r rel, cols []int, outVars []int) rel {
	out := rel{vars: outVars}
	n := 8
	for n < 2*len(r.rows) {
		n <<= 1
	}
	if cap(sc.head) < n {
		sc.head = make([]int32, n)
	}
	head := sc.head[:n]
	for i := range head {
		head[i] = 0
	}
	if cap(sc.next) < len(r.rows) {
		sc.next = make([]int32, len(r.rows))
	}
	next := sc.next[:len(r.rows)]
	mask := uint64(n - 1)
	sc.stats.builds++
	sc.stats.probes += uint64(len(r.rows))
rows:
	for _, row := range r.rows {
		b := relstr.HashCols(row, cols) & mask
		for id := head[b]; id != 0; id = next[id-1] {
			prev := out.rows[id-1]
			dup := true
			for k, c := range cols {
				if prev[k] != row[c] {
					dup = false
					break
				}
			}
			if dup {
				continue rows
			}
		}
		vals := sc.alloc(len(cols))
		for k, c := range cols {
			vals[k] = row[c]
		}
		out.rows = append(out.rows, vals)
		id := int32(len(out.rows))
		next[id-1] = head[b]
		head[b] = id
	}
	return out
}

// solveTreeCtx runs the full Yannakakis pipeline over a relation
// forest: semijoin reduction (leaves→roots, roots→leaves), then a
// bottom-up join keeping only the variables needed above plus free
// variables, then a cross product across components, finally projecting
// onto the head. Answers are deduplicated and sorted. head lists
// element ids (with possible repeats). The schedule is derived from
// the forest and replayed by the unified executor; Plan-based callers
// use their prepare-time schedule through Plan.EvalOn instead. ctx is
// polled between per-node relational operations (each O(|D|) work,
// bounding cancellation latency by one semijoin/join).
func solveTreeCtx(ctx context.Context, nodes []node, head []int) (Answers, error) {
	sc := getScratch()
	defer putScratch(sc)
	f := forestFromRels(nodes, sc, 1)
	defer f.release()
	return evalForest(ctx, newScheduleFromNodes(nodes, head), f)
}
