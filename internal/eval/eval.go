// Package eval implements CQ evaluation engines with the combined
// complexities the paper contrasts:
//
//   - Naive: backtracking join, |D|^O(|Q|) combined complexity — the
//     generic engine for arbitrary CQs.
//   - Yannakakis: the classical semijoin algorithm for acyclic CQs,
//     O(|D|·|Q|) per the paper's Section 1 (plus output cost for
//     non-Boolean queries).
//   - TreeDecomp: evaluation through a width-k tree decomposition,
//     O(|D|^{k+1}) — the engine for TW(k) queries.
//
// All engines return the same answer sets; the test suite
// cross-validates them on random instances.
package eval

import (
	"context"
	"fmt"
	"sort"

	"cqapprox/internal/cq"
	"cqapprox/internal/cqerr"
	"cqapprox/internal/hom"
	"cqapprox/internal/relstr"
)

// Answers is a deduplicated set of answer tuples in deterministic
// (lexicographic) order.
type Answers []relstr.Tuple

// Contains reports whether a includes t.
func (a Answers) Contains(t relstr.Tuple) bool {
	for _, x := range a {
		if x.Equal(t) {
			return true
		}
	}
	return false
}

func sortAnswers(ts []relstr.Tuple) Answers {
	sort.Slice(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
	return ts
}

// Naive evaluates q on db by backtracking search over the query
// variables (the generic NP engine).
func Naive(q *cq.Query, db *relstr.Structure) Answers {
	ans, _ := NaiveCtx(nil, q, db)
	return ans
}

// NaiveCtx is Naive under a context: cancellation aborts the
// backtracking search with a cqerr.ErrCanceled-wrapped error.
func NaiveCtx(ctx context.Context, q *cq.Query, db *relstr.Structure) (Answers, error) {
	return naiveEval(ctx, q.Tableau(), db)
}

// naiveEval is the tableau-level backtracking engine shared by NaiveCtx
// and Plan (which passes its precomputed tableau).
func naiveEval(ctx context.Context, tb *cq.Tableau, db *relstr.Structure) (Answers, error) {
	var out []relstr.Tuple
	_, err := hom.ProjectCtx(ctx, tb.S, db, nil, tb.Dist, func(vals []int) bool {
		out = append(out, relstr.Tuple(vals).Clone())
		return true
	})
	if err != nil {
		return nil, err
	}
	return sortAnswers(out), nil
}

// NaiveBool evaluates a Boolean query (or reports whether q has any
// answer).
func NaiveBool(q *cq.Query, db *relstr.Structure) bool {
	ok, _ := NaiveBoolCtx(nil, q, db)
	return ok
}

// NaiveBoolCtx is NaiveBool under a context.
func NaiveBoolCtx(ctx context.Context, q *cq.Query, db *relstr.Structure) (bool, error) {
	return naiveBool(ctx, q.Tableau(), db)
}

// naiveBool is the tableau-level answer-existence check shared by
// NaiveBoolCtx and Plan. A found answer wins over a late cancellation:
// the latch stops the search, not the result.
func naiveBool(ctx context.Context, tb *cq.Tableau, db *relstr.Structure) (bool, error) {
	found := false
	_, err := hom.ProjectCtx(ctx, tb.S, db, nil, tb.Dist, func([]int) bool {
		found = true
		return false
	})
	if err != nil && !found {
		return false, err
	}
	return found, nil
}

// Eval evaluates q with the best applicable engine: Yannakakis when q
// is acyclic, otherwise the naive engine.
func Eval(q *cq.Query, db *relstr.Structure) Answers {
	ans, _ := EvalCtx(nil, q, db)
	return ans
}

// EvalCtx is Eval under a context.
func EvalCtx(ctx context.Context, q *cq.Query, db *relstr.Structure) (Answers, error) {
	ans, err := YannakakisCtx(ctx, q, db)
	if err == nil {
		return ans, nil
	}
	if !IsNotAcyclic(err) {
		return nil, err
	}
	return NaiveCtx(ctx, q, db)
}

// EvalBool is the Boolean variant of Eval.
func EvalBool(q *cq.Query, db *relstr.Structure) bool {
	ok, _ := EvalBoolCtx(nil, q, db)
	return ok
}

// EvalBoolCtx is EvalBool under a context.
func EvalBoolCtx(ctx context.Context, q *cq.Query, db *relstr.Structure) (bool, error) {
	ok, err := YannakakisBoolCtx(ctx, q, db)
	if err == nil {
		return ok, nil
	}
	if !IsNotAcyclic(err) {
		return false, err
	}
	return NaiveBoolCtx(ctx, q, db)
}

// --- shared relation-tree machinery -----------------------------------

// rel is a materialised relation over a fixed variable list.
type rel struct {
	vars []int   // distinct variable (element) ids
	rows [][]int // aligned with vars, deduplicated
}

// node is one node of a relation tree (a join tree of atoms, or a tree
// decomposition's bag tree).
type node struct {
	rel
	parent   int
	children []int
}

func key(vals []int) string { return relstr.Tuple(vals).Key() }

// project returns r projected onto the variables in want (in want
// order), deduplicated. Variables in want must occur in r.vars.
func (r rel) project(want []int) rel {
	idx := make([]int, len(want))
	for i, v := range want {
		idx[i] = indexOf(r.vars, v)
	}
	seen := map[string]bool{}
	out := rel{vars: append([]int{}, want...)}
	for _, row := range r.rows {
		vals := make([]int, len(want))
		for i, j := range idx {
			vals[i] = row[j]
		}
		k := key(vals)
		if !seen[k] {
			seen[k] = true
			out.rows = append(out.rows, vals)
		}
	}
	return out
}

func indexOf(vars []int, v int) int {
	for i, x := range vars {
		if x == v {
			return i
		}
	}
	panic(fmt.Sprintf("eval: variable %d not in %v", v, vars))
}

// sharedVars returns the variables common to a and b, in a's order.
func sharedVars(a, b []int) []int {
	inB := map[int]bool{}
	for _, v := range b {
		inB[v] = true
	}
	var out []int
	for _, v := range a {
		if inB[v] {
			out = append(out, v)
		}
	}
	return out
}

// semijoin keeps the rows of l that agree with some row of r on the
// shared variables.
func semijoin(l, r rel) rel {
	shared := sharedVars(l.vars, r.vars)
	if len(shared) == 0 {
		if len(r.rows) == 0 {
			return rel{vars: l.vars}
		}
		return l
	}
	rIdx := make([]int, len(shared))
	lIdx := make([]int, len(shared))
	for i, v := range shared {
		rIdx[i] = indexOf(r.vars, v)
		lIdx[i] = indexOf(l.vars, v)
	}
	present := map[string]bool{}
	buf := make([]int, len(shared))
	for _, row := range r.rows {
		for i, j := range rIdx {
			buf[i] = row[j]
		}
		present[key(buf)] = true
	}
	out := rel{vars: l.vars}
	for _, row := range l.rows {
		for i, j := range lIdx {
			buf[i] = row[j]
		}
		if present[key(buf)] {
			out.rows = append(out.rows, row)
		}
	}
	return out
}

// join computes the natural join of l and r.
func join(l, r rel) rel {
	shared := sharedVars(l.vars, r.vars)
	lIdx := make([]int, len(shared))
	rIdx := make([]int, len(shared))
	for i, v := range shared {
		lIdx[i] = indexOf(l.vars, v)
		rIdx[i] = indexOf(r.vars, v)
	}
	// r-only variables appended to l's.
	var rOnly []int
	var rOnlyIdx []int
	inL := map[int]bool{}
	for _, v := range l.vars {
		inL[v] = true
	}
	for j, v := range r.vars {
		if !inL[v] {
			rOnly = append(rOnly, v)
			rOnlyIdx = append(rOnlyIdx, j)
		}
	}
	// Hash r by shared key.
	buckets := map[string][][]int{}
	buf := make([]int, len(shared))
	for _, row := range r.rows {
		for i, j := range rIdx {
			buf[i] = row[j]
		}
		k := key(buf)
		buckets[k] = append(buckets[k], row)
	}
	out := rel{vars: append(append([]int{}, l.vars...), rOnly...)}
	seen := map[string]bool{}
	for _, lrow := range l.rows {
		for i, j := range lIdx {
			buf[i] = lrow[j]
		}
		for _, rrow := range buckets[key(buf)] {
			vals := make([]int, 0, len(out.vars))
			vals = append(vals, lrow...)
			for _, j := range rOnlyIdx {
				vals = append(vals, rrow[j])
			}
			k := key(vals)
			if !seen[k] {
				seen[k] = true
				out.rows = append(out.rows, vals)
			}
		}
	}
	return out
}

// solveTreeCtx runs the full Yannakakis pipeline over a relation
// forest: semijoin reduction (leaves→roots, roots→leaves), then a
// bottom-up join keeping only the variables needed above plus free
// variables, then a cross product across components, finally projecting
// onto the head. Answers are deduplicated and sorted. head lists
// element ids (with possible repeats); free is the set of distinct head
// elements. ctx is polled between per-node relational operations (each
// O(|D|) work, bounding cancellation latency by one semijoin/join).
func solveTreeCtx(ctx context.Context, nodes []node, head []int) (Answers, error) {
	freeSet := map[int]bool{}
	for _, v := range head {
		freeSet[v] = true
	}
	roots := []int{}
	for i := range nodes {
		if nodes[i].parent == -1 {
			roots = append(roots, i)
		}
	}
	// (1)+(2) bottom-up then top-down semijoin reduction.
	if err := semijoinPasses(ctx, nodes); err != nil {
		return nil, err
	}
	// Emptiness short-circuit.
	for i := range nodes {
		if len(nodes[i].rows) == 0 {
			return Answers{}, nil
		}
	}
	// (3) bottom-up join with projection.
	upRel := make([]rel, len(nodes))
	var solveErr error
	var solve func(i int) rel
	solve = func(i int) rel {
		if solveErr != nil {
			return rel{}
		}
		if solveErr = cqerr.Check(ctx); solveErr != nil {
			return rel{}
		}
		acc := nodes[i].rel
		for _, c := range nodes[i].children {
			acc = join(acc, solve(c))
			if solveErr != nil {
				return rel{}
			}
		}
		// Keep: free variables of the subtree ∪ connector to parent.
		keepSet := map[int]bool{}
		for _, v := range acc.vars {
			if freeSet[v] {
				keepSet[v] = true
			}
		}
		if p := nodes[i].parent; p != -1 {
			for _, v := range sharedVars(acc.vars, nodes[p].vars) {
				keepSet[v] = true
			}
		}
		var keep []int
		for _, v := range acc.vars {
			if keepSet[v] {
				keep = append(keep, v)
			}
		}
		upRel[i] = acc.project(keep)
		return upRel[i]
	}
	// (4) cross product across roots (disconnected queries).
	total := rel{vars: nil, rows: [][]int{{}}}
	for _, r := range roots {
		rr := solve(r)
		if solveErr != nil {
			return nil, solveErr
		}
		if len(rr.rows) == 0 {
			return Answers{}, nil
		}
		total = join(total, rr)
	}
	// (5) head projection (head may repeat variables).
	idx := make([]int, len(head))
	for i, v := range head {
		idx[i] = indexOf(total.vars, v)
	}
	seen := map[string]bool{}
	var out []relstr.Tuple
	for _, row := range total.rows {
		vals := make(relstr.Tuple, len(head))
		for i, j := range idx {
			vals[i] = row[j]
		}
		k := vals.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, vals)
		}
	}
	return sortAnswers(out), nil
}
