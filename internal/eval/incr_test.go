package eval

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"cqapprox/internal/cq"
	"cqapprox/internal/relstr"
)

// advance applies d to sn via the snapshot fork and the incremental
// state in lockstep, returning the new snapshot and the diff.
func advance(t *testing.T, s *IncrState, sn *relstr.Snapshot, d *relstr.Delta) (*relstr.Snapshot, *IncrDiff) {
	t.Helper()
	next, err := sn.Update(d)
	if err != nil {
		t.Fatal(err)
	}
	diff, err := s.Apply(context.Background(), d, sn, next)
	if err != nil {
		t.Fatal(err)
	}
	return next, diff
}

// oracleDiff recomputes both answer sets from scratch and returns the
// sorted set differences — the specification Apply is held to.
func oracleDiff(t *testing.T, p *Plan, oldSn, newSn *relstr.Snapshot) (added, removed Answers) {
	t.Helper()
	ctx := context.Background()
	before, err := p.EvalOn(ctx, NewSnapshotSource(oldSn), 1)
	if err != nil {
		t.Fatal(err)
	}
	after, err := p.EvalOn(ctx, NewSnapshotSource(newSn), 1)
	if err != nil {
		t.Fatal(err)
	}
	return diffAnswers(before, after)
}

func assertDiff(t *testing.T, diff *IncrDiff, wantAdd, wantRem Answers) {
	t.Helper()
	if !sameAnswers(diff.Added, wantAdd) || !sameAnswers(diff.Removed, wantRem) {
		t.Fatalf("diff mismatch:\n  added   %v want %v\n  removed %v want %v",
			diff.Added, wantAdd, diff.Removed, wantRem)
	}
}

func TestIncrChainInsertDelete(t *testing.T) {
	q := cq.MustParse("Q(x,w) :- E(x,y), E(y,z), E(z,w)")
	p := NewPlan(q)
	if !p.IncrSupported() {
		t.Fatal("chain plan should support incremental maintenance")
	}
	db := graphDB([2]int{0, 1}, [2]int{1, 2}, [2]int{2, 3})
	sn := relstr.NewSnapshot(db)
	s, err := p.NewIncrState(context.Background(), sn, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !sameAnswers(s.Answers(), Answers{{0, 3}}) {
		t.Fatalf("initial answers = %v", s.Answers())
	}

	// Insert an edge extending the chain: one new path appears.
	next, diff := advance(t, s, sn, relstr.NewDelta().Insert("E", 3, 4))
	if diff.Fallback {
		t.Fatalf("unexpected fallback: %s", diff.Reason)
	}
	assertDiff(t, diff, Answers{{1, 4}}, nil)
	if !sameAnswers(s.Answers(), Answers{{0, 3}, {1, 4}}) {
		t.Fatalf("answers after insert = %v", s.Answers())
	}
	sn = next

	// Delete a middle edge: both paths vanish.
	next, diff = advance(t, s, sn, relstr.NewDelta().Delete("E", 2, 3))
	if diff.Fallback {
		t.Fatalf("unexpected fallback: %s", diff.Reason)
	}
	assertDiff(t, diff, nil, Answers{{0, 3}, {1, 4}})
	if len(s.Answers()) != 0 {
		t.Fatalf("answers after delete = %v", s.Answers())
	}
	if s.Version() != next.Version() {
		t.Fatalf("version = %d, snapshot %d", s.Version(), next.Version())
	}
	st := p.IndexStats()
	if st.IncrementalEvals != 2 || st.IncrFallbacks != 0 {
		t.Fatalf("stats = %+v, want 2 incremental evals and no fallbacks", st)
	}
}

// An empty delta forks nothing: Update returns the same snapshot and
// Apply reports an empty diff without touching the counters.
func TestIncrEmptyDeltaNoOp(t *testing.T) {
	p := NewPlan(cq.MustParse("Q(x,z) :- E(x,y), E(y,z)"))
	sn := relstr.NewSnapshot(graphDB([2]int{1, 2}, [2]int{2, 3}))
	s, err := p.NewIncrState(context.Background(), sn, 1)
	if err != nil {
		t.Fatal(err)
	}
	d := relstr.NewDelta()
	if !d.Empty() {
		t.Fatal("fresh delta should be empty")
	}
	next, err := sn.Update(d)
	if err != nil {
		t.Fatal(err)
	}
	if next != sn {
		t.Fatal("empty delta must return the same snapshot")
	}
	diff, err := s.Apply(context.Background(), d, sn, next)
	if err != nil {
		t.Fatal(err)
	}
	if diff.Fallback || len(diff.Added)+len(diff.Removed) != 0 {
		t.Fatalf("empty delta diff = %+v", diff)
	}
}

// Deletes of absent facts and insert+delete of the same fact in one
// delta cancel to an effective no-op; the reduced state stays valid.
func TestIncrCancellingDelta(t *testing.T) {
	p := NewPlan(cq.MustParse("Q(x,z) :- E(x,y), E(y,z)"))
	sn := relstr.NewSnapshot(graphDB([2]int{1, 2}, [2]int{2, 3}))
	s, err := p.NewIncrState(context.Background(), sn, 1)
	if err != nil {
		t.Fatal(err)
	}
	cases := []*relstr.Delta{
		relstr.NewDelta().Delete("E", 9, 9),                   // absent fact
		relstr.NewDelta().Insert("E", 7, 8).Delete("E", 7, 8), // cancel within delta
		relstr.NewDelta().Insert("E", 1, 2),                   // already present
		relstr.NewDelta().Delete("E", 9, 9).Insert("E", 2, 3), // both kinds of no-op
	}
	for _, d := range cases {
		var diff *IncrDiff
		sn, diff = advance(t, s, sn, d)
		if diff.Fallback || len(diff.Added)+len(diff.Removed) != 0 {
			t.Fatalf("delta %v: diff = %+v", d, diff)
		}
		if !sameAnswers(s.Answers(), Answers{{1, 3}}) {
			t.Fatalf("delta %v: answers = %v", d, s.Answers())
		}
	}
	if st := p.IndexStats(); st.IncrFallbacks != 0 {
		t.Fatalf("no-op deltas caused %d fallbacks", st.IncrFallbacks)
	}
}

// A delta confined to a relation the query never reads must not
// invalidate the reduced state: no fallback, no recompute, same
// contribution slices.
func TestIncrUnreadRelationKeepsState(t *testing.T) {
	p := NewPlan(cq.MustParse("Q(x,z) :- E(x,y), E(y,z)"))
	db := graphDB([2]int{1, 2}, [2]int{2, 3})
	db.Add("Audit", 1, 1, 1)
	sn := relstr.NewSnapshot(db)
	s, err := p.NewIncrState(context.Background(), sn, 1)
	if err != nil {
		t.Fatal(err)
	}
	before := s.contribs
	sn, diff := advance(t, s, sn, relstr.NewDelta().Insert("Audit", 2, 2, 2).Delete("Audit", 1, 1, 1))
	if diff.Fallback || len(diff.Added)+len(diff.Removed) != 0 {
		t.Fatalf("unread-relation diff = %+v", diff)
	}
	for ti := range before {
		if len(s.contribs[ti]) != len(before[ti]) {
			t.Fatalf("tree %d contribution changed", ti)
		}
	}
	if s.Version() != sn.Version() {
		t.Fatalf("state version %d should track snapshot %d", s.Version(), sn.Version())
	}
	if st := p.IndexStats(); st.IncrementalEvals != 1 || st.IncrFallbacks != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// Self-joins: the same relation read by several nodes seeds each node
// separately.
func TestIncrSelfJoinAndRepeatedVars(t *testing.T) {
	ctx := context.Background()
	for _, src := range []string{
		"Q(x,z) :- E(x,y), E(y,z)",
		"Q(x) :- E(x,x)",
		"Q(x,y) :- E(x,y), E(y,y)",
	} {
		q := cq.MustParse(src)
		p := NewPlan(q)
		sn := relstr.NewSnapshot(graphDB([2]int{0, 1}, [2]int{1, 1}, [2]int{1, 2}))
		s, err := p.NewIncrState(ctx, sn, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range []*relstr.Delta{
			relstr.NewDelta().Insert("E", 2, 2),
			relstr.NewDelta().Delete("E", 1, 1),
			relstr.NewDelta().Insert("E", 2, 0).Delete("E", 0, 1),
		} {
			next, err := sn.Update(d)
			if err != nil {
				t.Fatal(err)
			}
			wantAdd, wantRem := oracleDiff(t, p, sn, next)
			diff, err := s.Apply(ctx, d, sn, next)
			if err != nil {
				t.Fatal(err)
			}
			if diff.Fallback {
				t.Fatalf("%s: unexpected fallback: %s", src, diff.Reason)
			}
			assertDiff(t, diff, wantAdd, wantRem)
			sn = next
		}
	}
}

// Disconnected queries: GYO links variable-disjoint atoms into one
// tree through zero-column cross-product edges, so deltas on either
// side (or both) propagate incrementally — the restriction along a
// zero-column edge keeps the neighbour's full view.
func TestIncrCrossProductTrees(t *testing.T) {
	ctx := context.Background()
	q := cq.MustParse("Q(x,u) :- E(x,y), F(u,v)")
	p := NewPlan(q)
	db := relstr.New()
	db.Add("E", 1, 2)
	db.Add("F", 7, 8)
	sn := relstr.NewSnapshot(db)
	s, err := p.NewIncrState(ctx, sn, 1)
	if err != nil {
		t.Fatal(err)
	}
	// One tree: incremental.
	next, err := sn.Update(relstr.NewDelta().Insert("E", 3, 4))
	if err != nil {
		t.Fatal(err)
	}
	wantAdd, wantRem := oracleDiff(t, p, sn, next)
	diff, err := s.Apply(ctx, relstr.NewDelta().Insert("E", 3, 4), sn, next)
	if err != nil {
		t.Fatal(err)
	}
	if diff.Fallback {
		t.Fatalf("single-tree delta fell back: %s", diff.Reason)
	}
	assertDiff(t, diff, wantAdd, wantRem)
	sn = next
	// Both sides in one delta: still exact.
	d := relstr.NewDelta().Insert("E", 5, 6).Insert("F", 9, 10)
	next, err = sn.Update(d)
	if err != nil {
		t.Fatal(err)
	}
	wantAdd, wantRem = oracleDiff(t, p, sn, next)
	diff, err = s.Apply(ctx, d, sn, next)
	if err != nil {
		t.Fatal(err)
	}
	assertDiff(t, diff, wantAdd, wantRem)
	if !sameAnswers(s.Answers(), Answers{{1, 7}, {1, 9}, {3, 7}, {3, 9}, {5, 7}, {5, 9}}) {
		t.Fatalf("answers = %v", s.Answers())
	}
}

// Fallback taxonomy: Boolean trees, naive plans, tiny budgets, full
// replacements and stale state all resynchronise with an exact diff.
func TestIncrFallbacks(t *testing.T) {
	ctx := context.Background()

	t.Run("boolean tree", func(t *testing.T) {
		p := NewPlan(cq.MustParse("Q() :- E(x,y), E(y,z)"))
		sn := relstr.NewSnapshot(graphDB([2]int{1, 2}, [2]int{2, 3}))
		s, err := p.NewIncrState(ctx, sn, 1)
		if err != nil {
			t.Fatal(err)
		}
		d := relstr.NewDelta().Delete("E", 1, 2)
		next, _ := sn.Update(d)
		wantAdd, wantRem := oracleDiff(t, p, sn, next)
		diff, err := s.Apply(ctx, d, sn, next)
		if err != nil {
			t.Fatal(err)
		}
		if !diff.Fallback || diff.Reason == "" {
			t.Fatalf("Boolean tree should fall back, got %+v", diff)
		}
		assertDiff(t, diff, wantAdd, wantRem)
	})

	t.Run("naive plan", func(t *testing.T) {
		p := NewPlan(cq.MustParse("Q(x) :- E(x,y), E(y,z), E(z,x)"))
		if p.IncrSupported() {
			t.Fatal("cyclic plan must not claim incremental support")
		}
		sn := relstr.NewSnapshot(cycleDB(3))
		s, err := p.NewIncrState(ctx, sn, 1)
		if err != nil {
			t.Fatal(err)
		}
		d := relstr.NewDelta().Delete("E", 0, 1)
		next, _ := sn.Update(d)
		wantAdd, wantRem := oracleDiff(t, p, sn, next)
		diff, err := s.Apply(ctx, d, sn, next)
		if err != nil {
			t.Fatal(err)
		}
		if !diff.Fallback {
			t.Fatal("naive plan should always fall back")
		}
		assertDiff(t, diff, wantAdd, wantRem)
	})

	t.Run("budget", func(t *testing.T) {
		p := NewPlan(cq.MustParse("Q(x,z) :- E(x,y), E(y,z)"))
		sn := relstr.NewSnapshot(graphDB([2]int{0, 1}, [2]int{1, 2}, [2]int{1, 3}))
		s, err := p.NewIncrState(ctx, sn, 1)
		if err != nil {
			t.Fatal(err)
		}
		s.SetBudget(1)
		d := relstr.NewDelta().Insert("E", 3, 4)
		next, _ := sn.Update(d)
		wantAdd, wantRem := oracleDiff(t, p, sn, next)
		diff, err := s.Apply(ctx, d, sn, next)
		if err != nil {
			t.Fatal(err)
		}
		if !diff.Fallback {
			t.Fatal("budget of one row should force a fallback")
		}
		assertDiff(t, diff, wantAdd, wantRem)
	})

	t.Run("full replacement and stale state", func(t *testing.T) {
		p := NewPlan(cq.MustParse("Q(x,z) :- E(x,y), E(y,z)"))
		sn := relstr.NewSnapshot(graphDB([2]int{0, 1}, [2]int{1, 2}))
		s, err := p.NewIncrState(ctx, sn, 1)
		if err != nil {
			t.Fatal(err)
		}
		// Full replacement: nil delta.
		repl := relstr.NewSnapshot(graphDB([2]int{5, 6}, [2]int{6, 7}))
		diff, err := s.Apply(ctx, nil, nil, repl)
		if err != nil {
			t.Fatal(err)
		}
		if !diff.Fallback {
			t.Fatal("nil delta should resynchronise")
		}
		if !sameAnswers(s.Answers(), Answers{{5, 7}}) {
			t.Fatalf("answers after replacement = %v", s.Answers())
		}
		// Stale state: apply a delta whose old snapshot the state never saw.
		d := relstr.NewDelta().Insert("E", 7, 8)
		mid, _ := repl.Update(relstr.NewDelta().Insert("E", 4, 6))
		next, _ := mid.Update(d)
		diff, err = s.Apply(ctx, d, mid, next)
		if err != nil {
			t.Fatal(err)
		}
		if !diff.Fallback {
			t.Fatal("version mismatch should resynchronise")
		}
		if !sameAnswers(s.Answers(), Answers{{4, 7}, {5, 7}, {6, 8}}) {
			t.Fatalf("answers after resync = %v", s.Answers())
		}
	})
}

// randomDelta draws a small random delta over E (and occasionally
// an unread relation) from rng.
func randomDelta(rng *rand.Rand, n int) *relstr.Delta {
	d := relstr.NewDelta()
	for i := 0; i < 1+rng.Intn(3); i++ {
		switch rng.Intn(4) {
		case 0:
			d.Delete("E", rng.Intn(n), rng.Intn(n))
		case 1:
			d.Insert("Unread", rng.Intn(n))
		default:
			d.Insert("E", rng.Intn(n), rng.Intn(n))
		}
	}
	return d
}

// incrEquivalence drives one (seed, par) scenario: a random acyclic
// query, a random database, and a chain of random deltas, holding
// every diff to the recompute-and-set-difference oracle and the
// maintained answers to a fresh evaluation on both backends.
func incrEquivalence(t *testing.T, seed int64, par int) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(seed))
	q := randomQuery(rng, true)
	db := randomDB(rng, 5, 9)
	db.Declare("Unread", 1)
	p := NewPlan(q)
	sn := relstr.NewSnapshot(db)
	s, err := p.NewIncrState(ctx, sn, par)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 6; step++ {
		d := randomDelta(rng, 6)
		next, err := sn.Update(d)
		if err != nil {
			t.Fatal(err)
		}
		wantAdd, wantRem := oracleDiff(t, p, sn, next)
		diff, err := s.Apply(ctx, d, sn, next)
		if err != nil {
			t.Fatal(err)
		}
		if !sameAnswers(diff.Added, wantAdd) || !sameAnswers(diff.Removed, wantRem) {
			t.Fatalf("seed %d step %d (fallback=%v %q): diff mismatch\n  added   %v want %v\n  removed %v want %v\n  q=%v delta=%v",
				seed, step, diff.Fallback, diff.Reason, diff.Added, wantAdd, diff.Removed, wantRem, q, d)
		}
		// The maintained set equals a fresh evaluation on both backends.
		fresh, err := p.EvalOn(ctx, NewSnapshotSource(next), 1)
		if err != nil {
			t.Fatal(err)
		}
		if !sameAnswers(s.Answers(), fresh) {
			t.Fatalf("seed %d step %d: maintained %v, fresh %v, q=%v", seed, step, s.Answers(), fresh, q)
		}
		structFresh, err := p.EvalOn(ctx, NewSource(next.Structure()), 1)
		if err != nil {
			t.Fatal(err)
		}
		if !sameAnswers(fresh, structFresh) {
			t.Fatalf("seed %d step %d: backends disagree", seed, step)
		}
		sn = next
	}
}

// FuzzIncrementalEquivalence holds incremental diffs to the
// recompute-and-set-difference oracle across random delta chains,
// backends and worker budgets.
func FuzzIncrementalEquivalence(f *testing.F) {
	f.Add(int64(1))
	f.Add(int64(42))
	f.Add(int64(-7))
	f.Fuzz(func(t *testing.T, seed int64) {
		for _, par := range []int{1, 4} {
			incrEquivalence(t, seed, par)
		}
	})
}

// The quickcheck twin of the fuzz target, so `go test` exercises the
// property without the fuzz engine.
func TestQuickIncrementalEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		incrEquivalence(t, seed, 1)
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Tiny budgets force the fallback path through the same random chains
// — diffs must stay exact either way.
func TestQuickIncrementalBudgetFallback(t *testing.T) {
	ctx := context.Background()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := randomQuery(rng, true)
		db := randomDB(rng, 5, 9)
		p := NewPlan(q)
		sn := relstr.NewSnapshot(db)
		s, err := p.NewIncrState(ctx, sn, 1)
		if err != nil {
			return false
		}
		s.SetBudget(2)
		for step := 0; step < 4; step++ {
			d := randomDelta(rng, 6)
			next, err := sn.Update(d)
			if err != nil {
				return false
			}
			before, err := p.EvalOn(ctx, NewSnapshotSource(sn), 1)
			if err != nil {
				return false
			}
			after, err := p.EvalOn(ctx, NewSnapshotSource(next), 1)
			if err != nil {
				return false
			}
			wantAdd, wantRem := diffAnswers(before, after)
			diff, err := s.Apply(ctx, d, sn, next)
			if err != nil {
				return false
			}
			if !sameAnswers(diff.Added, wantAdd) || !sameAnswers(diff.Removed, wantRem) {
				return false
			}
			sn = next
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
