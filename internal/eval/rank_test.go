package eval

import (
	"context"
	"math/rand"
	"testing"

	"cqapprox/internal/cq"
	"cqapprox/internal/relstr"
)

// rankedOracle is the sort-after-materialize reference: the baseline
// answer set, sorted under the permuted key, truncated at limit.
func rankedOracle(t *testing.T, p *Plan, db *relstr.Structure, spec RankSpec) []relstr.Tuple {
	t.Helper()
	want, err := p.EvalBaseline(context.Background(), db)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]relstr.Tuple, len(want))
	for i, a := range want {
		out[i] = a.Clone()
	}
	sortAnswersBy(out, spec.perm(len(p.tb.Dist)), spec.Desc)
	if spec.Limit > 0 && len(out) > spec.Limit {
		out = out[:spec.Limit]
	}
	return out
}

// collectRanked drains one ranked stream.
func collectRanked(t *testing.T, p *Plan, src Source, par int, spec RankSpec, tuned bool) []relstr.Tuple {
	t.Helper()
	var got []relstr.Tuple
	err := p.streamRanked(context.Background(), src, par, spec, tuned, func(tp relstr.Tuple) bool {
		got = append(got, tp)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func equalOrdered(a, b []relstr.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// FuzzRankedEquivalence asserts the ranked stream — connex pipeline or
// fallback, the classifier decides — is byte-identical to the
// sort-after-materialize oracle, across storage backends (per-call
// structure and snapshot), serial and parallel budgets (with the
// morsel thresholds tuned down so tiny inputs drive the fan-out),
// random key prefixes, both directions, and random limits; cyclic
// seeds additionally cover the naive-plan fallback.
func FuzzRankedEquivalence(f *testing.F) {
	f.Add(int64(1))
	f.Add(int64(42))
	f.Add(int64(-7))
	f.Add(int64(2026))
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		q := randomQuery(rng, rng.Intn(4) != 0) // 1-in-4 seeds may be cyclic
		db := randomDB(rng, 5, 9)
		p := NewPlan(q)

		width := len(p.tb.Dist)
		perm := rng.Perm(width)
		spec := RankSpec{
			Order: perm[:rng.Intn(width+1)],
			Desc:  rng.Intn(2) == 1,
			Limit: rng.Intn(6) - 1, // -1/0 unlimited, else top-k
		}
		want := rankedOracle(t, p, db, spec)

		snap := relstr.NewSnapshot(db)
		legs := []struct {
			name  string
			src   Source
			par   int
			tuned bool
		}{
			{"struct/serial", NewSource(db), 1, false},
			{"snapshot/serial", NewSnapshotSource(snap), 1, false},
			{"struct/parallel", NewSource(db), 4, true},
			{"snapshot/parallel", NewSnapshotSource(snap), 4, true},
		}
		for _, leg := range legs {
			got := collectRanked(t, p, leg.src, leg.par, spec, leg.tuned)
			if !equalOrdered(got, want) {
				t.Fatalf("%s ranked answers diverge (spec %+v):\n  got  %v\n  want %v\n  q=%v", leg.name, spec, got, want, q)
			}
		}
	})
}

// The canonical classifier: connex exemplars stream, and the paper's
// canonical non-free-connex query — Q(x,z) :- E(x,y), E(y,z), whose
// existential y connects the two head variables — must fall back.
func TestRankClassification(t *testing.T) {
	cases := []struct {
		src    string
		connex bool
	}{
		{"Q(x) :- E(x,y)", true},
		{"Q() :- E(x,y), E(y,z)", true}, // Boolean: trivially connex
		{"Q(x,y,z) :- E(x,y), E(y,z)", true},
		{"Q(x,y) :- E(x,y), E(y,z)", true},
		{"Q(x,x) :- E(x,y)", true},
		{"Q(x,u) :- E(x,y), F(u,v)", true}, // two trees, one root visit each
		{"Q(x,z) :- E(x,y), E(y,z)", false},
		{"Q(x,z) :- E(x,y), F(y,w), G(w,z)", false},
	}
	for _, c := range cases {
		p := NewPlan(cq.MustParse(c.src))
		if p.Mode() != PlanYannakakis {
			t.Fatalf("%s: expected acyclic plan", c.src)
		}
		if got := p.ranked != nil; got != c.connex {
			t.Errorf("%s: canonical classification connex=%v, want %v", c.src, got, c.connex)
		}
		if ex := p.Explain(); (ex.Ranked == "connex") != c.connex {
			t.Errorf("%s: Explain.Ranked = %q", c.src, ex.Ranked)
		}
	}
}

// Early termination, key direction, and the rank counters on the
// three-edge smoke graph (the server smoke test's database).
func TestRankedTopK(t *testing.T) {
	ctx := context.Background()
	db := graphDB([2]int{1, 2}, [2]int{2, 1}, [2]int{2, 2})

	// Connex: full-head path query ordered by (z,y,x).
	p := NewPlan(cq.MustParse("Q(x,y,z) :- E(x,y), E(y,z)"))
	spec := RankSpec{Order: []int{2, 1, 0}, Limit: 3}
	got, err := p.EvalRankedOn(ctx, NewSource(db), 1, spec)
	if err != nil {
		t.Fatal(err)
	}
	want := []relstr.Tuple{{1, 2, 1}, {2, 2, 1}, {2, 1, 2}}
	if !equalOrdered(got, want) {
		t.Fatalf("ranked top-3 = %v, want %v", got, want)
	}
	if st := p.IndexStats(); st.RankedEvals != 1 || st.RankFallbacks != 0 {
		t.Fatalf("stats after connex call: %+v", st)
	}

	// Descending is the full reverse of the unlimited ascending order.
	asc, err := p.EvalRankedOn(ctx, NewSource(db), 1, RankSpec{Order: []int{2, 1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	desc, err := p.EvalRankedOn(ctx, NewSource(db), 1, RankSpec{Order: []int{2, 1, 0}, Desc: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range asc {
		if !asc[i].Equal(desc[len(desc)-1-i]) {
			t.Fatalf("desc is not the reverse of asc:\n  asc  %v\n  desc %v", asc, desc)
		}
	}

	// Fallback: the projected path query has no connex program for any
	// key; answers still arrive ordered and truncated.
	pf := NewPlan(cq.MustParse("Q(x,z) :- E(x,y), E(y,z)"))
	got, err = pf.EvalRankedOn(ctx, NewSource(db), 1, RankSpec{Order: []int{1, 0}, Limit: 3})
	if err != nil {
		t.Fatal(err)
	}
	want = []relstr.Tuple{{1, 1}, {2, 1}, {1, 2}}
	if !equalOrdered(got, want) {
		t.Fatalf("fallback top-3 = %v, want %v", got, want)
	}
	if st := pf.IndexStats(); st.RankFallbacks != 1 || st.RankedEvals != 0 {
		t.Fatalf("stats after fallback call: %+v", st)
	}
}

// A consumer breaking the ranked stream mid-enumeration leaves no
// error and no further work (the odometer just stops).
func TestRankedStreamBreak(t *testing.T) {
	ctx := context.Background()
	db := graphDB([2]int{1, 2}, [2]int{2, 1}, [2]int{2, 2})
	p := NewPlan(cq.MustParse("Q(x,y,z) :- E(x,y), E(y,z)"))
	seq, errf := p.StreamRankedOn(ctx, NewSource(db), 1, RankSpec{})
	n := 0
	for range seq {
		n++
		if n == 2 {
			break
		}
	}
	if n != 2 {
		t.Fatalf("consumed %d answers before break", n)
	}
	if err := errf(); err != nil {
		t.Fatalf("terminal error after break: %v", err)
	}
}
