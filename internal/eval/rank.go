package eval

// Ranked (top-k) answer enumeration over the reduced liveness forest.
//
// A ranked evaluation asks for the answers in lexicographic order of a
// head-position permutation, stopping after `limit` answers. For plans
// whose join forest admits a lex-connex visit order — the head
// variables can be bound in key order by walking nodes so that every
// node attaches to an already-visited neighbor through a connector of
// already-bound head variables — the answers stream directly out of
// the Yannakakis-reduced forest: one sorted, deduplicated projection
// per visited node, probed by binary search on the connector prefix,
// enumerated by a last-position-first odometer. After the O(|D|·|Q|)
// reduction and the per-view sorts, each answer costs O(|Q|·log|D|),
// so top-k never pays for the answers it does not emit. Global
// consistency of the reduced forest (every live row has a live partner
// in every neighbor) guarantees every probe range is non-empty — the
// odometer never hits a dead end, and the views' dedup on
// connector++emit columns makes each emitted tuple distinct.
//
// Orders with no such visit program — the canonical example is
// Q(x,z) :- E(x,y), E(y,z), whose existential y bridges the two head
// variables — fall back to a full evaluation, a sort under the
// requested key, and truncation; the plan records the classification
// in Explain and counts both paths (rankedEvals / rankFallbacks).

import (
	"cmp"
	"context"
	"iter"
	"math/bits"
	"slices"
	"sort"

	"cqapprox/internal/cqerr"
	"cqapprox/internal/relstr"
)

// RankSpec is a plan-level ranked-evaluation request. Order lists head
// positions forming the primary sort key, most significant first; the
// remaining head positions are appended in ascending position order to
// make the key total. Desc flips the entire comparison (a full reverse
// of the ascending order). Limit caps the number of answers emitted;
// zero or negative means unlimited.
type RankSpec struct {
	Order []int
	Desc  bool
	Limit int
}

// perm expands the spec into a full head-position permutation.
func (s RankSpec) perm(width int) []int {
	used := make([]bool, width)
	out := make([]int, 0, width)
	for _, p := range s.Order {
		out = append(out, p)
		used[p] = true
	}
	for i := 0; i < width; i++ {
		if !used[i] {
			out = append(out, i)
		}
	}
	return out
}

// rankVisit is one step of a lex-connex visit program: materialise the
// node's live rows projected onto connCols++emitCols (sorted, conn
// ascending then emit in key direction, deduplicated), and for each
// row of the parent visit's view enumerate the rows matching the
// connector values drawn from the parent row at connSrc.
type rankVisit struct {
	node   int
	parent int // parent visit index, -1 for a tree root

	connIDs []int // connector element ids (all bound head variables)
	emitIDs []int // newly bound head ids, in key order

	connCols []int // connector columns in the node's variable list
	connSrc  []int // aligned: each connector value's column in the parent's view row
	emitCols []int // emitted columns in the node's variable list, in emitIDs order
}

// rankProgram is a compiled lex-connex visit order for one key: the
// visits in key-block order plus, per head position, where the
// position's value lives (visit index, view-row column). Immutable
// once built; the canonical program is shared across calls.
type rankProgram struct {
	visits  []rankVisit
	headOut [][2]int
}

// dedupHeadIDs returns the distinct head element ids in first-occurrence
// order along perm — the sequence of key blocks a visit program must
// bind. Repeated head variables compare equal at their later positions,
// so the deduplicated id sequence induces the same tuple order as the
// full permutation.
func dedupHeadIDs(head, perm []int) []int {
	seen := map[int]bool{}
	out := make([]int, 0, len(perm))
	for _, p := range perm {
		if v := head[p]; !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// rankProgramForSpec resolves the visit program for the spec's key:
// the canonical (prepare-time) program when the key matches the head's
// natural order, a freshly classified one otherwise. nil means the
// order is not tractable on this forest and the call must fall back.
// Desc does not affect classification — a full reverse enumerates the
// same program with flipped emit comparisons.
func (p *Plan) rankProgramForSpec(perm []int) *rankProgram {
	ids := dedupHeadIDs(p.sched.head, perm)
	if slices.Equal(ids, p.rankedIDs) {
		return p.ranked
	}
	return p.buildRankProgram(ids)
}

// buildRankProgram searches for a lex-connex visit order binding
// orderIDs block by block: each visit either starts a fresh tree of
// the forest or attaches to its (unique — two visited neighbors would
// close a cycle) visited neighbor through a connector of already-bound
// head variables, and must emit exactly the next block of unbound key
// ids (or nothing: a bridge making deeper nodes reachable). The search
// backtracks over node choices; queries are small, so the state space
// is too. Returns nil when no program exists.
func (p *Plan) buildRankProgram(orderIDs []int) *rankProgram {
	n := len(p.atoms)
	vars := make([][]int, n)
	for i, a := range p.atoms {
		vars[i] = a.distinctVars()
	}
	adj := make([][]int, n)
	comp := make([]int, n)
	for i, par := range p.jt.Parent {
		if par >= 0 {
			adj[i] = append(adj[i], par)
			adj[par] = append(adj[par], i)
		}
	}
	for i := range comp {
		r := i
		for p.jt.Parent[r] >= 0 {
			r = p.jt.Parent[r]
		}
		comp[i] = r
	}
	headSet := map[int]bool{}
	for _, v := range p.sched.head {
		headSet[v] = true
	}

	visited := make([]bool, n)
	visitOf := make([]int, n)
	for i := range visitOf {
		visitOf[i] = -1
	}
	treeVis := map[int]bool{}
	bound := map[int]bool{}
	var visits []rankVisit

	var try func(bi int) bool
	try = func(bi int) bool {
		if bi == len(orderIDs) {
			return true
		}
		for i := 0; i < n; i++ {
			if visited[i] {
				continue
			}
			pv := -1
			var connIDs []int
			if treeVis[comp[i]] {
				pn := -1
				for _, w := range adj[i] {
					if visited[w] {
						pn = w
						break
					}
				}
				if pn == -1 {
					continue // not adjacent to the visited part of its tree
				}
				connIDs = sharedVars(vars[i], vars[pn])
				ok := true
				for _, v := range connIDs {
					if !bound[v] {
						ok = false
						break
					}
				}
				if !ok {
					continue // an existential (or not-yet-bound) connector
				}
				pv = visitOf[pn]
			}
			var emitIDs []int
			for _, v := range vars[i] {
				if headSet[v] && !bound[v] {
					emitIDs = append(emitIDs, v)
				}
			}
			if len(emitIDs) > 0 {
				if bi+len(emitIDs) > len(orderIDs) {
					continue
				}
				win := orderIDs[bi : bi+len(emitIDs)]
				ok := true
				for _, v := range emitIDs {
					if indexOfOrNeg(win, v) == -1 {
						ok = false
						break
					}
				}
				if !ok {
					continue // the node's new ids are not the next key block
				}
				emitIDs = append([]int{}, win...) // reorder to the key sequence
			}
			vs := rankVisit{node: i, parent: pv, connIDs: connIDs, emitIDs: emitIDs}
			if pv >= 0 {
				layout := append(append([]int{}, visits[pv].connIDs...), visits[pv].emitIDs...)
				ok := true
				for _, v := range connIDs {
					j := indexOfOrNeg(layout, v)
					if j == -1 {
						ok = false
						break
					}
					vs.connSrc = append(vs.connSrc, j)
					vs.connCols = append(vs.connCols, indexOf(vars[i], v))
				}
				if !ok {
					continue // unreachable on a valid join tree; defensive
				}
			}
			for _, v := range emitIDs {
				vs.emitCols = append(vs.emitCols, indexOf(vars[i], v))
			}
			wasTree := treeVis[comp[i]]
			visited[i] = true
			treeVis[comp[i]] = true
			for _, v := range emitIDs {
				bound[v] = true
			}
			visits = append(visits, vs)
			visitOf[i] = len(visits) - 1
			if try(bi + len(emitIDs)) {
				return true
			}
			visits = visits[:len(visits)-1]
			visitOf[i] = -1
			visited[i] = false
			if !wasTree {
				delete(treeVis, comp[i])
			}
			for _, v := range emitIDs {
				delete(bound, v)
			}
		}
		return false
	}
	if !try(0) {
		return nil
	}
	prog := &rankProgram{visits: append([]rankVisit{}, visits...)}
	emitAt := map[int][2]int{}
	for vi := range prog.visits {
		nc := len(prog.visits[vi].connCols)
		for k, id := range prog.visits[vi].emitIDs {
			emitAt[id] = [2]int{vi, nc + k}
		}
	}
	prog.headOut = make([][2]int, len(p.sched.head))
	for pos, id := range p.sched.head {
		prog.headOut[pos] = emitAt[id]
	}
	return prog
}

// buildRankView materialises one visit's sorted view: the node's live
// rows projected onto connCols++emitCols, sorted by connector columns
// ascending then emit columns in key direction, adjacent duplicates
// compacted. The rows live in one plain slab owned by the view (never
// a scratch arena — views outlive parallel build workers).
func buildRankView(n *execNode, vs *rankVisit, desc bool) [][]int {
	nc := len(vs.connCols)
	w := nc + len(vs.emitCols)
	rows := make([][]int, 0, n.live)
	slab := make([]int, n.live*w)
	off := 0
	for wi, word := range n.words {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &= word - 1
			src := n.rows[wi<<6|b]
			dst := slab[off : off+w : off+w]
			off += w
			for k, c := range vs.connCols {
				dst[k] = src[c]
			}
			for k, c := range vs.emitCols {
				dst[nc+k] = src[c]
			}
			rows = append(rows, dst)
		}
	}
	slices.SortFunc(rows, func(a, b []int) int {
		for k := 0; k < nc; k++ {
			if c := cmp.Compare(a[k], b[k]); c != 0 {
				return c
			}
		}
		for k := nc; k < w; k++ {
			if c := cmp.Compare(a[k], b[k]); c != 0 {
				if desc {
					return -c
				}
				return c
			}
		}
		return 0
	})
	out := rows[:0]
	for i, r := range rows {
		if i > 0 && slices.Equal(out[len(out)-1], r) {
			continue
		}
		out = append(out, r)
	}
	return out
}

// comparePrefix compares the first nc columns of row against key.
func comparePrefix(row, key []int, nc int) int {
	for k := 0; k < nc; k++ {
		if c := cmp.Compare(row[k], key[k]); c != 0 {
			return c
		}
	}
	return 0
}

// enumerateRanked drives the odometer over the sorted views: positions
// advance last-first (the least significant key block), and advancing
// position j recomputes the probe ranges of every later visit from its
// parent's new current row. Ranges are found by binary search on the
// connector prefix (which stays ascending even under desc).
func enumerateRanked(ctx context.Context, prog *rankProgram, views [][][]int, width, limit int, yield func(relstr.Tuple) bool) error {
	nv := len(prog.visits)
	if nv == 0 {
		// Boolean-shaped key: the single (empty-head) answer.
		yield(relstr.Tuple{})
		return nil
	}
	lo := make([]int, nv)
	hi := make([]int, nv)
	cur := make([]int, nv)
	var key []int
	rng := func(i int) bool {
		vs := &prog.visits[i]
		rows := views[i]
		if vs.parent == -1 {
			lo[i], hi[i] = 0, len(rows)
		} else {
			prow := views[vs.parent][cur[vs.parent]]
			key = key[:0]
			for _, c := range vs.connSrc {
				key = append(key, prow[c])
			}
			nc := len(key)
			lo[i] = sort.Search(len(rows), func(k int) bool { return comparePrefix(rows[k], key, nc) >= 0 })
			hi[i] = lo[i] + sort.Search(len(rows)-lo[i], func(k int) bool { return comparePrefix(rows[lo[i]+k], key, nc) > 0 })
		}
		cur[i] = lo[i]
		return lo[i] < hi[i]
	}
	for i := 0; i < nv; i++ {
		if !rng(i) {
			// Globally consistent forests never produce an empty range;
			// treat one defensively as an exhausted enumeration.
			return nil
		}
	}
	emitted := 0
	for {
		t := make(relstr.Tuple, width)
		for pos, out := range prog.headOut {
			t[pos] = views[out[0]][cur[out[0]]][out[1]]
		}
		if !yield(t) {
			return nil
		}
		emitted++
		if limit > 0 && emitted >= limit {
			return nil
		}
		if emitted%256 == 0 {
			if err := cqerr.Check(ctx); err != nil {
				return err
			}
		}
		j := nv - 1
		for ; j >= 0; j-- {
			if cur[j]+1 < hi[j] {
				cur[j]++
				break
			}
		}
		if j < 0 {
			return nil
		}
		for k := j + 1; k < nv; k++ {
			if !rng(k) {
				return nil // defensive, as above
			}
		}
	}
}

// sortAnswersBy sorts tuples under the permuted key (Desc negates the
// whole comparison). perm is a full permutation, so the order is total
// on distinct tuples — no stable sort needed.
func sortAnswersBy(ts []relstr.Tuple, perm []int, desc bool) {
	slices.SortFunc(ts, func(a, b relstr.Tuple) int {
		for _, p := range perm {
			if c := cmp.Compare(a[p], b[p]); c != 0 {
				if desc {
					return -c
				}
				return c
			}
		}
		return 0
	})
}

// rankFallback is the untractable-order path: full evaluation, sort
// under the requested key, truncate at limit. Naive (cyclic) plans
// always take it — EvalOn already routes them to the backtracking
// engine.
func (p *Plan) rankFallback(ctx context.Context, src Source, parallel int, perm []int, desc bool, limit int, yield func(relstr.Tuple) bool) error {
	p.stats.rankFallbacks.Add(1)
	ans, err := p.EvalOn(ctx, src, parallel)
	if err != nil {
		return err
	}
	sortAnswersBy(ans, perm, desc)
	for i, t := range ans {
		if limit > 0 && i >= limit {
			return nil
		}
		if !yield(t) {
			return nil
		}
	}
	return nil
}

// streamRanked runs one ranked evaluation end to end: classify the
// key, then either the connex pipeline (reduce, build sorted views —
// in parallel across visits when the budget allows — and enumerate) or
// the fallback. tuned lowers the parallel thresholds so tiny test
// inputs drive the morsel machinery.
func (p *Plan) streamRanked(ctx context.Context, src Source, parallel int, spec RankSpec, tuned bool, yield func(relstr.Tuple) bool) error {
	width := len(p.tb.Dist)
	perm := spec.perm(width)
	if p.mode != PlanYannakakis {
		return p.rankFallback(ctx, src, parallel, perm, spec.Desc, spec.Limit, yield)
	}
	prog := p.rankProgramForSpec(perm)
	if prog == nil {
		return p.rankFallback(ctx, src, parallel, perm, spec.Desc, spec.Limit, yield)
	}
	p.stats.rankedEvals.Add(1)
	sc := getScratch()
	defer p.flush(sc)
	f := p.newForest(src, sc, parallel)
	if tuned {
		f.minPar, f.morsel = 1, 2
	}
	defer f.release()
	if err := f.runPasses(ctx, p.sched); err != nil {
		return err
	}
	if f.anyEmpty() {
		return nil
	}
	views := make([][][]int, len(prog.visits))
	fns := make([]func() error, len(prog.visits))
	for i := range prog.visits {
		fns[i] = func() error {
			views[i] = buildRankView(&f.nodes[prog.visits[i].node], &prog.visits[i], spec.Desc)
			return nil
		}
	}
	if err := f.fanOut(fns); err != nil {
		return err
	}
	return enumerateRanked(ctx, prog, views, width, spec.Limit, yield)
}

// StreamRankedOn enumerates answers in the spec's key order against an
// explicit backend and worker budget (the budget applies to the
// semijoin reduction and the view builds; the ordered enumeration
// itself is sequential). Connex keys stream with early termination at
// Limit; others evaluate fully, sort, and truncate. The terminal-error
// accessor follows the StreamOnErr contract.
func (p *Plan) StreamRankedOn(ctx context.Context, src Source, parallel int, spec RankSpec) (iter.Seq[relstr.Tuple], func() error) {
	var terminal error
	seq := func(yield func(relstr.Tuple) bool) {
		terminal = p.streamRanked(ctx, src, parallel, spec, false, yield)
	}
	return seq, func() error { return terminal }
}

// EvalRankedOn materialises StreamRankedOn: at most Limit answers, in
// the spec's key order (not the Answers default order unless the spec
// is the natural ascending key).
func (p *Plan) EvalRankedOn(ctx context.Context, src Source, parallel int, spec RankSpec) (Answers, error) {
	seq, errf := p.StreamRankedOn(ctx, src, parallel, spec)
	out := []relstr.Tuple{}
	for t := range seq {
		out = append(out, t)
	}
	if err := errf(); err != nil {
		return nil, err
	}
	return Answers(out), nil
}
