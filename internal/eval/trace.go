package eval

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cqapprox/internal/obs"
)

// Tracing (ANALYZE) support for the unified executor. A traced call
// attaches one pooled execTrace frame to its forest; every hook in the
// hot path is a single nil check on forest.trace, so the trace-off
// path pays nothing and allocates nothing (enforced by
// BenchmarkEvalTraceOff against the committed baseline).
//
// Counter concurrency matches the executor's structure: a node is the
// *target* of semijoin steps from exactly one goroutine at a time (the
// bottom-up steps into a node run serially after its child barrier;
// the top-down pass targets each child once), but per-node counters
// are atomics anyway — index builds/probes can be attributed from
// concurrently fanned-out sibling steps, and the cost only exists
// while tracing is on.

// execTrace is the pooled per-call trace frame.
type execTrace struct {
	nodes  []nodeTraceCtr
	phases []obs.Phase // appended only from the entry goroutine

	chunks atomic.Int64

	wmu     sync.Mutex
	workers []int64 // busy ns per extra-worker stint, in spawn order
}

// nodeTraceCtr holds one node's counters for a traced call.
type nodeTraceCtr struct {
	passes atomic.Int64
	in     atomic.Int64
	out    atomic.Int64
	builds atomic.Uint64
	probes atomic.Uint64
}

var tracePool = sync.Pool{New: func() any { return &execTrace{} }}

// getExecTrace draws a frame sized for n nodes, zeroed.
func getExecTrace(n int) *execTrace {
	tr := tracePool.Get().(*execTrace)
	if cap(tr.nodes) < n {
		tr.nodes = make([]nodeTraceCtr, n)
	} else {
		tr.nodes = tr.nodes[:n]
		for i := range tr.nodes {
			c := &tr.nodes[i]
			c.passes.Store(0)
			c.in.Store(0)
			c.out.Store(0)
			c.builds.Store(0)
			c.probes.Store(0)
		}
	}
	tr.phases = tr.phases[:0]
	tr.chunks.Store(0)
	tr.workers = tr.workers[:0]
	return tr
}

func putExecTrace(tr *execTrace) { tracePool.Put(tr) }

// phase records one timed span; entry-goroutine only.
func (tr *execTrace) phase(name string, d time.Duration) {
	tr.phases = append(tr.phases, obs.Phase{Name: name, NS: d.Nanoseconds()})
}

// addWorker records the busy time of one extra-worker stint.
func (tr *execTrace) addWorker(d time.Duration) {
	tr.wmu.Lock()
	tr.workers = append(tr.workers, d.Nanoseconds())
	tr.wmu.Unlock()
}

// addChunks records parallel work units claimed by one morsel loop.
func (tr *execTrace) addChunks(n int) { tr.chunks.Add(int64(n)) }

// snapshot renders the frame into the wire/API form. Call after the
// evaluation finished (node liveness is read from the forest).
func (tr *execTrace) snapshot(p *Plan, f *forest, total time.Duration) *obs.ExecTrace {
	out := &obs.ExecTrace{
		Mode:         p.mode.String(),
		Parallelism:  f.par,
		TotalNS:      total.Nanoseconds(),
		Phases:       append([]obs.Phase{}, tr.phases...),
		MorselChunks: tr.chunks.Load(),
	}
	tr.wmu.Lock()
	if len(tr.workers) > 0 {
		out.WorkerBusyNS = append([]int64{}, tr.workers...)
	}
	tr.wmu.Unlock()
	out.Nodes = make([]obs.NodeTrace, len(tr.nodes))
	for i := range tr.nodes {
		c := &tr.nodes[i]
		out.Nodes[i] = obs.NodeTrace{
			ID:          i,
			Atom:        p.atomString(i),
			Rows:        len(f.nodes[i].rows),
			Live:        f.nodes[i].live,
			SemijoinIn:  c.in.Load(),
			SemijoinOut: c.out.Load(),
			Passes:      c.passes.Load(),
			IndexBuilds: c.builds.Load(),
			IndexProbes: c.probes.Load(),
		}
	}
	return out
}

// --- traced entry points -----------------------------------------------

// EvalTraceOn is EvalOn with tracing: same answers, same counters,
// plus an ExecTrace of this one call. Naive plans return a trace with
// the total time only (the backtracking engine has no node structure).
func (p *Plan) EvalTraceOn(ctx context.Context, src Source, parallel int) (Answers, *obs.ExecTrace, error) {
	if p.mode != PlanYannakakis {
		start := time.Now()
		ans, err := naiveEval(ctx, p.tb, src.Structure())
		return ans, &obs.ExecTrace{Mode: p.mode.String(), Parallelism: 1,
			TotalNS: time.Since(start).Nanoseconds()}, err
	}
	sc := getScratch()
	defer p.flush(sc)
	f := p.newForest(src, sc, parallel)
	defer f.release()
	tr := getExecTrace(len(f.nodes))
	f.trace = tr
	defer func() { f.trace = nil; putExecTrace(tr) }()
	start := time.Now()
	ans, err := evalForest(ctx, p.sched, f)
	out := tr.snapshot(p, f, time.Since(start))
	return ans, out, err
}

// EvalBoolTraceOn is EvalBoolOn with tracing; see EvalTraceOn.
func (p *Plan) EvalBoolTraceOn(ctx context.Context, src Source, parallel int) (bool, *obs.ExecTrace, error) {
	if p.mode != PlanYannakakis {
		start := time.Now()
		ok, err := naiveBool(ctx, p.tb, src.Structure())
		return ok, &obs.ExecTrace{Mode: p.mode.String(), Parallelism: 1,
			TotalNS: time.Since(start).Nanoseconds()}, err
	}
	sc := getScratch()
	defer p.flush(sc)
	f := p.newForest(src, sc, parallel)
	defer f.release()
	tr := getExecTrace(len(f.nodes))
	f.trace = tr
	defer func() { f.trace = nil; putExecTrace(tr) }()
	start := time.Now()
	ok, err := f.runBool(ctx, p.sched)
	tr.phase("semijoin-down", time.Since(start))
	out := tr.snapshot(p, f, time.Since(start))
	return ok, out, err
}

// PrepareCountTrace is PrepareCount with tracing attached: the
// reduction phases land in the run's trace, counting phases are
// recorded by the caller via TracePhase, and TraceSnapshot renders the
// frame before Close.
func (p *Plan) PrepareCountTrace(ctx context.Context, src Source, parallel int) (*CountRun, error) {
	return p.prepareCount(ctx, src, parallel, false, true)
}

// TracePhase records one caller-timed phase (e.g. "count",
// "count-estimate") on a traced run; no-op on untraced runs.
func (r *CountRun) TracePhase(name string, d time.Duration) {
	if tr := r.f.trace; tr != nil {
		tr.phase(name, d)
	}
}

// TraceSnapshot renders the run's trace; nil on untraced runs. Call
// before Close.
func (r *CountRun) TraceSnapshot(total time.Duration) *obs.ExecTrace {
	tr := r.f.trace
	if tr == nil {
		return nil
	}
	return tr.snapshot(r.p, r.f, total)
}

// --- EXPLAIN -----------------------------------------------------------

// atomString renders atom i over the minimized tableau's element ids.
func (p *Plan) atomString(i int) string {
	a := p.atoms[i]
	var b strings.Builder
	b.WriteString(a.rel)
	b.WriteByte('(')
	for j, v := range a.args {
		if j > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "v%d", v)
	}
	b.WriteByte(')')
	return b.String()
}

// Explain returns the plan's static structure: join-forest shape,
// re-rooting decisions, dead-step eliminations and the counting
// classification. Purely static — no data, no clocks — so the text
// rendering is stable across runs.
func (p *Plan) Explain() *obs.PlanExplain {
	ex := &obs.PlanExplain{Mode: p.mode.String()}
	if p.mode != PlanYannakakis {
		ex.Incremental = "fallback"
		return ex
	}
	ex.ExactCountable = p.csched.exact
	if p.ranked != nil {
		ex.Ranked = "connex"
	} else {
		ex.Ranked = "fallback"
	}
	ex.Incremental = "delta"
	switch {
	case p.sched.directNode == unitNode:
		ex.Direct = "unit"
	case p.sched.directNode >= 0:
		ex.Direct = fmt.Sprintf("node %d", p.sched.directNode)
	}
	for ti, r := range p.sched.roots {
		te := obs.TreeExplain{
			Root:      r,
			Rerooted:  p.rerooted[r],
			CountKind: p.csched.trees[ti].kind.String(),
		}
		var walk func(i, depth int)
		walk = func(i, depth int) {
			ne := obs.NodeExplain{
				ID:     i,
				Atom:   p.atomString(i),
				Parent: p.jt.Parent[i],
				Depth:  depth,
				Needed: p.sched.needed[i],
				Direct: p.sched.directNode == i,
			}
			for _, v := range p.atoms[i].distinctVars() {
				ne.Vars = append(ne.Vars, fmt.Sprintf("v%d", v))
			}
			for _, st := range p.sched.nodes[i].joins {
				ne.Joins++
				if st.skip {
					ne.SkippedJoins++
				}
			}
			te.Nodes = append(te.Nodes, ne)
			for _, c := range p.sched.children[i] {
				walk(c, depth+1)
			}
		}
		walk(r, 0)
		ex.Trees = append(ex.Trees, te)
	}
	return ex
}
