package eval

import (
	"context"
	"errors"

	"cqapprox/internal/cq"
	"cqapprox/internal/hypergraph"
	"cqapprox/internal/relstr"
)

// ErrNotAcyclic is returned by Yannakakis for cyclic queries.
var ErrNotAcyclic = errors.New("eval: query is not acyclic")

// IsNotAcyclic reports whether err is the acyclicity failure (as
// opposed to cancellation or another evaluation error).
func IsNotAcyclic(err error) bool { return errors.Is(err, ErrNotAcyclic) }

// atomList extracts the atoms of a tableau in the deterministic order
// used by hypergraph.FromStructure (relations sorted, tuples in
// insertion order), so atom i corresponds to hypergraph edge i.
func atomList(s *relstr.Structure) []patom {
	var out []patom
	for _, rel := range s.Relations() {
		for _, t := range s.Tuples(rel) {
			out = append(out, patom{rel: rel, args: append([]int{}, t...)})
		}
	}
	return out
}

type patom struct {
	rel  string
	args []int
}

// distinctVars returns the atom's distinct variables in order of first
// occurrence.
func (a patom) distinctVars() []int {
	seen := map[int]bool{}
	var out []int
	for _, v := range a.args {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// atomRelation materialises the relation of one atom against db:
// assignments of the atom's distinct variables realised by db tuples
// matching the atom's repetition pattern.
func atomRelation(a patom, db *relstr.Structure) rel {
	vars := a.distinctVars()
	pos := map[int]int{} // variable → first position
	for i, v := range a.args {
		if _, ok := pos[v]; !ok {
			pos[v] = i
		}
	}
	out := rel{vars: vars}
	var seen relstr.TupleSet
tuples:
	for _, t := range db.Tuples(a.rel) {
		if len(t) != len(a.args) {
			continue
		}
		// Repetition pattern: equal variables need equal values.
		for i, v := range a.args {
			if t[pos[v]] != t[i] {
				continue tuples
			}
		}
		row := make([]int, len(vars))
		for i, v := range vars {
			row[i] = t[pos[v]]
		}
		if seen.Add(row) {
			out.rows = append(out.rows, row)
		}
	}
	return out
}

// patternSig identifies the materialised relation of an atom up to
// variable renaming: the relation symbol plus the repetition pattern
// of its arguments. Two atoms with equal signatures realise identical
// row sets (over their respective distinct-variable lists).
func patternSig(a patom) string {
	sig := make([]byte, 0, len(a.rel)+1+len(a.args))
	sig = append(sig, a.rel...)
	sig = append(sig, 0)
	pos := map[int]int{}
	for _, v := range a.args {
		p, ok := pos[v]
		if !ok {
			p = len(pos)
			pos[v] = p
		}
		sig = append(sig, byte(p))
	}
	return string(sig)
}

// scheduleForAtoms derives the static program for a join forest of
// atoms with the given parent links (the free functions' path; Plans
// do the same work once in NewPlan).
func scheduleForAtoms(atoms []patom, parent []int, head []int) *schedule {
	vars := make([][]int, len(atoms))
	for i, a := range atoms {
		vars[i] = a.distinctVars()
	}
	children := make([][]int, len(atoms))
	for i, p := range parent {
		if p >= 0 {
			children[p] = append(children[p], i)
		}
	}
	return newSchedule(vars, parent, children, head)
}

// Yannakakis evaluates an acyclic CQ with the classical semijoin
// algorithm: join-tree construction by GYO, a leaves→root and a
// root→leaves semijoin pass, then a bottom-up join projected onto the
// free variables. Returns ErrNotAcyclic for cyclic queries.
func Yannakakis(q *cq.Query, db *relstr.Structure) (Answers, error) {
	return YannakakisCtx(nil, q, db)
}

// YannakakisCtx is Yannakakis under a context.
func YannakakisCtx(ctx context.Context, q *cq.Query, db *relstr.Structure) (Answers, error) {
	tb := q.Tableau()
	h := hypergraph.FromStructure(tb.S)
	jt, ok := h.GYO()
	if !ok {
		return nil, ErrNotAcyclic
	}
	atoms := atomList(tb.S)
	sc := getScratch()
	defer putScratch(sc)
	f := newForest(atoms, NewSource(db), sc, 1)
	defer f.release()
	return evalForest(ctx, scheduleForAtoms(atoms, jt.Parent, tb.Dist), f)
}

// YannakakisBool evaluates a Boolean acyclic CQ with only the
// leaves→root semijoin pass — the O(|D|·|Q|) check the paper's
// introduction quotes. For non-Boolean q it reports whether q has at
// least one answer.
func YannakakisBool(q *cq.Query, db *relstr.Structure) (bool, error) {
	return YannakakisBoolCtx(nil, q, db)
}

// YannakakisBoolCtx is YannakakisBool under a context.
func YannakakisBoolCtx(ctx context.Context, q *cq.Query, db *relstr.Structure) (bool, error) {
	tb := q.Tableau()
	h := hypergraph.FromStructure(tb.S)
	jt, ok := h.GYO()
	if !ok {
		return false, ErrNotAcyclic
	}
	atoms := atomList(tb.S)
	sc := getScratch()
	defer putScratch(sc)
	f := newForest(atoms, NewSource(db), sc, 1)
	defer f.release()
	return f.runBool(ctx, scheduleForAtoms(atoms, jt.Parent, nil))
}

// SemijoinProgram describes the reduction schedule Yannakakis runs —
// useful for inspection and teaching output in the CLI.
type SemijoinProgram struct {
	Atoms []string // rendered atoms, index-aligned with the join tree
	Steps [][2]int // (target, source) semijoin steps, bottom-up then top-down
	Tree  []int    // parent per atom (-1 for roots)
}

// Program returns the semijoin program Yannakakis would execute for q.
func Program(q *cq.Query) (*SemijoinProgram, error) {
	tb := q.Tableau()
	h := hypergraph.FromStructure(tb.S)
	jt, ok := h.GYO()
	if !ok {
		return nil, ErrNotAcyclic
	}
	atoms := atomList(tb.S)
	prog := &SemijoinProgram{Tree: jt.Parent}
	for _, a := range atoms {
		prog.Atoms = append(prog.Atoms, cq.Atom{Rel: a.rel, Args: varNames(a.args, tb.Var)}.String())
	}
	children := jt.Children()
	var post func(i int)
	post = func(i int) {
		for _, c := range children[i] {
			post(c)
			prog.Steps = append(prog.Steps, [2]int{i, c})
		}
	}
	var pre func(i int)
	pre = func(i int) {
		for _, c := range children[i] {
			prog.Steps = append(prog.Steps, [2]int{c, i})
			pre(c)
		}
	}
	for _, r := range jt.Roots() {
		post(r)
	}
	for _, r := range jt.Roots() {
		pre(r)
	}
	return prog, nil
}

func varNames(args []int, names map[int]string) []string {
	out := make([]string, len(args))
	for i, e := range args {
		if n, ok := names[e]; ok {
			out[i] = n
		} else {
			out[i] = relstr.Tuple{e}.Key()
		}
	}
	return out
}
