package eval

// Partition-aware evaluation hooks for the cluster layer
// (internal/cluster, internal/server): a Source restricted to the
// facts one shard owns, and the deterministic merges recombining
// per-shard partial results into exactly the single-node answer set.
//
// The correctness contract is union-decomposability (see package
// cluster): when at most one atom occurrence of the evaluated query
// references a tuple-partitioned relation, the union of per-shard
// answer sets equals the full answer set. The merges below only have
// to make that union deterministic: answers are globally sorted
// (lexicographically, or under a ranked key) and deduplicated, so a
// scatter-gather evaluation is byte-identical to a single-node one.

import (
	"slices"
	"sync"

	"cqapprox/internal/relstr"
)

// NewPartitionSource restricts base to the facts owns admits: every
// atom view is filtered tuple-wise through owns(rel, tuple) before the
// executor sees it. The wrapper reconstructs each original tuple from
// the view's distinct-variable assignment (a bijection for a fixed
// repetition pattern), so ownership is decided on the same bytes the
// ring hashed at placement time. Used to evaluate "one shard of" a
// structure without materialising the slice — the equivalence fuzz
// harness and tests drive it; the server registers real slices.
func NewPartitionSource(base Source, owns func(rel string, tuple []int) bool) Source {
	return &partitionSource{base: base, owns: owns}
}

type partitionSource struct {
	base Source
	owns func(rel string, tuple []int) bool
	memo []*memoNode // Node is called serially during forest setup

	once sync.Once
	str  *relstr.Structure
}

func (s *partitionSource) Node(a patom) ([][]int, Indexer) {
	sig := patternSig(a)
	for _, n := range s.memo {
		if n.sig == sig {
			return n.rows, &n.ix
		}
	}
	rows, _ := s.base.Node(a)
	vars := a.distinctVars()
	// Column of each argument position in the view row.
	cols := make([]int, len(a.args))
	for i, v := range a.args {
		cols[i] = indexOf(vars, v)
	}
	tup := make([]int, len(a.args))
	kept := make([][]int, 0, len(rows))
	for _, row := range rows {
		for i, c := range cols {
			tup[i] = row[c]
		}
		if s.owns(a.rel, tup) {
			kept = append(kept, row)
		}
	}
	n := &memoNode{sig: sig, rows: kept}
	n.ix.rows = kept
	s.memo = append(s.memo, n)
	return n.rows, &n.ix
}

func (s *partitionSource) Structure() *relstr.Structure {
	s.once.Do(func() {
		full := s.base.Structure()
		str := full.CloneSchema()
		for _, rel := range full.Relations() {
			for _, t := range full.Tuples(rel) {
				if s.owns(rel, t) {
					str.Add(rel, t...)
				}
			}
		}
		s.str = str
	})
	return s.str
}

// MergeAnswerSets recombines per-shard answer sets into the global
// one: concatenate, re-sort under the shared lexicographic tuple
// order, and deduplicate (shards overlap on answers witnessed through
// replicated relations only). The result is byte-identical to a
// single-node evaluation's Answers.
func MergeAnswerSets(parts []Answers) Answers {
	switch len(parts) {
	case 0:
		return nil
	case 1:
		return dedupSorted(sortAnswers(parts[0]))
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	all := make([]relstr.Tuple, 0, total)
	for _, p := range parts {
		all = append(all, p...)
	}
	return dedupSorted(sortAnswers(all))
}

// MergeRankedAnswers recombines per-shard ranked (top-k) answer sets:
// concatenate, sort under the spec's full-permutation key, dedup, and
// truncate at the limit. Each shard's set was itself a top-k under the
// same total order, and the global top-k is contained in the union of
// per-shard top-k sets, so the merge is exact. width is the answer
// tuple width (the head length).
func MergeRankedAnswers(parts []Answers, width int, spec RankSpec) Answers {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	all := make([]relstr.Tuple, 0, total)
	for _, p := range parts {
		all = append(all, p...)
	}
	sortAnswersBy(all, spec.perm(width), spec.Desc)
	all = slices.CompactFunc(all, func(a, b relstr.Tuple) bool { return relstr.Compare(a, b) == 0 })
	if spec.Limit > 0 && len(all) > spec.Limit {
		all = all[:spec.Limit:spec.Limit]
	}
	return all
}

// dedupSorted drops adjacent duplicates of a sorted tuple slice.
func dedupSorted(ts Answers) Answers {
	return slices.CompactFunc(ts, func(a, b relstr.Tuple) bool { return relstr.Compare(a, b) == 0 })
}

// PartitionedOccurrences counts the atom occurrences of q (the query
// this plan evaluates) whose relation partitioned reports true — the
// quantity the cluster routing trichotomy branches on: 0 means any
// shard (or the coordinator's full copy) answers alone, 1 means
// scatter-gather is exact, ≥2 means per-shard evaluation could join
// tuples living on different shards and the coordinator must fall
// back to its full copy.
func (p *Plan) PartitionedOccurrences(partitioned func(rel string) bool) int {
	n := 0
	for _, a := range p.q.Atoms {
		if partitioned(a.Rel) {
			n++
		}
	}
	return n
}

// CountSummable reports whether per-shard answer counts of this plan's
// query sum to the global count: exactly one atom occurrence on a
// partitioned relation, with every argument of that atom a head
// variable. Each answer then determines the partitioned tuple it
// matched, that tuple lives on exactly one shard, so per-shard answer
// sets are disjoint and counts (exact or estimated) add. Boolean
// queries are never summable (their head is empty).
func (p *Plan) CountSummable(partitioned func(rel string) bool) bool {
	head := map[string]bool{}
	for _, v := range p.q.Head {
		head[v] = true
	}
	occ := 0
	for _, a := range p.q.Atoms {
		if !partitioned(a.Rel) {
			continue
		}
		occ++
		if occ > 1 {
			return false
		}
		for _, arg := range a.Args {
			if !head[arg] {
				return false
			}
		}
	}
	return occ == 1
}
