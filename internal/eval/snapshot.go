package eval

import (
	"context"
	"iter"
	"math/bits"

	"cqapprox/internal/cqerr"
	"cqapprox/internal/hom"
	"cqapprox/internal/relstr"
)

// Snapshot evaluation: the per-call half of the register-once database
// split. Against a relstr.Snapshot, the Yannakakis pipeline never
// materialises or re-indexes atom relations — each atom resolves to a
// snapshot-owned View (shared row storage, cached per repetition
// pattern) and every semijoin probes a snapshot-owned Index (cached
// per key-column set, shared across all plans and calls). The per-call
// state shrinks to one liveness bitmap per node: the in-place row
// filtering of the *Structure path becomes bit clearing, and the solve
// phase runs over the surviving rows exactly as scheduled. After the
// first (warming) evaluation has populated the caches, a repeat
// evaluation performs zero index builds for plans whose solve phase
// the schedule's dead-step analysis eliminated (chain- and star-shaped
// queries); other plans still build only the indexes over *derived*
// intermediate join relations, never over the base data.

// atomPattern returns the repetition pattern of an atom's argument
// list: pattern[i] is the first position holding the same variable as
// position i (the shape relstr.Snapshot.View keys its views by).
func atomPattern(args []int) []int {
	pat := make([]int, len(args))
	for i, v := range args {
		pat[i] = i
		for j := 0; j < i; j++ {
			if args[j] == v {
				pat[i] = j
				break
			}
		}
	}
	return pat
}

// snapNode is one join-forest node evaluated against a snapshot: the
// shared view standing in for the materialised atom relation, plus the
// call-local liveness bitmap that replaces in-place row filtering.
type snapNode struct {
	view  *relstr.View
	rows  [][]int
	vars  []int
	words []uint64 // bit id set ⇔ row id alive
	live  int
}

func (n *snapNode) alive(id int32) bool {
	return n.words[id>>6]&(1<<(uint(id)&63)) != 0
}

func (n *snapNode) clearAll() {
	for w := range n.words {
		n.words[w] = 0
	}
	n.live = 0
}

// aliveRows materialises the surviving rows (headers shared with the
// snapshot; rows are never mutated downstream).
func (n *snapNode) aliveRows() [][]int {
	out := make([][]int, 0, n.live)
	for w, word := range n.words {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &= word - 1
			out = append(out, n.rows[w<<6|b])
		}
	}
	return out
}

// snapForest is the per-call evaluation state over one snapshot.
type snapForest struct {
	nodes []snapNode
	sc    *scratch
}

// snapForest builds the forest state for evaluating p against snap:
// one view lookup per atom (cached in the snapshot) and one liveness
// bitmap per node, initially all-alive.
func (p *Plan) snapForest(snap *relstr.Snapshot, sc *scratch) *snapForest {
	f := &snapForest{nodes: make([]snapNode, len(p.atoms)), sc: sc}
	for i, a := range p.atoms {
		v := snap.View(a.rel, atomPattern(a.args))
		rows := v.Rows()
		n := len(rows)
		words := make([]uint64, (n+63)/64)
		for w := range words {
			words[w] = ^uint64(0)
		}
		if n%64 != 0 && len(words) > 0 {
			words[len(words)-1] = (1 << uint(n%64)) - 1
		}
		f.nodes[i] = snapNode{view: v, rows: rows, vars: a.distinctVars(), words: words, live: n}
	}
	return f
}

// semijoin applies one scheduled reduction step over the bitmaps:
// target rows with no alive source partner on the aligned columns die.
// The probe runs through the snapshot's cached index for the source's
// key columns; only a cold cache builds one (counted exactly once).
func (f *snapForest) semijoin(st sjStep) {
	t, s := &f.nodes[st.target], &f.nodes[st.source]
	if t.live == 0 {
		return
	}
	if s.live == 0 {
		t.clearAll()
		return
	}
	if len(st.tCols) == 0 {
		return // no shared variables and the source is non-empty
	}
	ix, built := s.view.Index(st.sCols)
	if built {
		f.sc.stats.builds++
	}
	f.sc.stats.probes += uint64(t.live)
	full := s.live == len(s.rows) // skip liveness checks while the source is unfiltered
	for w := range t.words {
		word := t.words[w]
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &= word - 1
			id := w<<6 | b
			row := t.rows[id]
			ok := false
			for sid := ix.First(row, st.tCols); sid >= 0; sid = ix.Next(sid, row, st.tCols) {
				if full || s.alive(sid) {
					ok = true
					break
				}
			}
			if !ok {
				t.words[w] &^= 1 << uint(b)
				t.live--
			}
		}
	}
}

// runPasses executes both scheduled semijoin passes over the bitmaps.
func (f *snapForest) runPasses(ctx context.Context, sched *schedule) error {
	for _, i := range sched.postorder {
		if err := cqerr.Check(ctx); err != nil {
			return err
		}
		for _, st := range sched.downOf[i] {
			f.semijoin(st)
		}
	}
	for _, i := range sched.preorder {
		if err := cqerr.Check(ctx); err != nil {
			return err
		}
		for _, st := range sched.upOf[i] {
			f.semijoin(st)
		}
	}
	return nil
}

// runBool executes only the leaves→roots pass, reporting answer
// existence (the Boolean fast path).
func (f *snapForest) runBool(ctx context.Context, sched *schedule) (bool, error) {
	for _, i := range sched.postorder {
		if err := cqerr.Check(ctx); err != nil {
			return false, err
		}
		for _, st := range sched.downOf[i] {
			f.semijoin(st)
		}
		if f.nodes[i].live == 0 {
			return false, nil
		}
	}
	return true, nil
}

// anyEmpty reports whether some node lost all rows (empty answer set).
func (f *snapForest) anyEmpty() bool {
	for i := range f.nodes {
		if f.nodes[i].live == 0 {
			return true
		}
	}
	return false
}

// materialize converts the surviving bitmaps into the plain node form
// runSolve consumes — only for nodes the schedule still needs (the
// dead-step analysis usually leaves few, often none).
func (f *snapForest) materialize(sched *schedule) []node {
	nodes := make([]node, len(f.nodes))
	for i := range f.nodes {
		if !sched.needed[i] {
			continue
		}
		nodes[i].rel = rel{vars: f.nodes[i].vars, rows: f.nodes[i].aliveRows()}
	}
	return nodes
}

// directAnswers is the collapsed solve phase over a snapshot forest:
// head-project the direct node's surviving rows (or the unit relation)
// without materialising anything else.
func (f *snapForest) directAnswers(sched *schedule) Answers {
	if sched.directNode == unitNode {
		return Answers{relstr.Tuple{}}
	}
	n := &f.nodes[sched.directNode]
	var seen relstr.TupleSet
	for w, word := range n.words {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &= word - 1
			row := n.rows[w<<6|b]
			vals := make(relstr.Tuple, len(sched.head))
			for i, j := range sched.directCols {
				vals[i] = row[j]
			}
			seen.Add(vals)
		}
	}
	return sortAnswers(append([]relstr.Tuple{}, seen.Rows()...))
}

// EvalSnap evaluates the plan's query against a database snapshot,
// probing the snapshot's persistent index cache instead of building
// per-call indexes. Answers equal Eval's on the equivalent structure.
func (p *Plan) EvalSnap(ctx context.Context, snap *relstr.Snapshot) (Answers, error) {
	if p.mode != PlanYannakakis {
		return naiveEval(ctx, p.tb, snap.Structure())
	}
	sc := getScratch()
	defer p.flush(sc)
	f := p.snapForest(snap, sc)
	if err := f.runPasses(ctx, p.sched); err != nil {
		return nil, err
	}
	if f.anyEmpty() {
		return Answers{}, nil
	}
	if p.sched.directNode != -1 {
		return f.directAnswers(p.sched), nil
	}
	ans, empty, err := runSolve(ctx, p.sched, f.materialize(p.sched), sc)
	if err != nil {
		return nil, err
	}
	if empty {
		return Answers{}, nil
	}
	return ans, nil
}

// EvalBoolSnap reports answer existence against a snapshot: the single
// leaves→roots semijoin pass, probe-only once the index cache is warm.
func (p *Plan) EvalBoolSnap(ctx context.Context, snap *relstr.Snapshot) (bool, error) {
	if p.mode != PlanYannakakis {
		return naiveBool(ctx, p.tb, snap.Structure())
	}
	sc := getScratch()
	defer p.flush(sc)
	f := p.snapForest(snap, sc)
	return f.runBool(ctx, p.sched)
}

// StreamSnap enumerates distinct answers against a snapshot without
// materialising the answer set; see Plan.Stream for the contract.
func (p *Plan) StreamSnap(ctx context.Context, snap *relstr.Snapshot) iter.Seq[relstr.Tuple] {
	seq, _ := p.StreamSnapErr(ctx, snap)
	return seq
}

// StreamSnapErr is StreamSnap plus the terminal-error accessor; see
// Plan.StreamErr. The semijoin pre-reduction probes the snapshot's
// cached indexes; the enumeration itself runs over the reduced
// structure the reduction rebuilds.
func (p *Plan) StreamSnapErr(ctx context.Context, snap *relstr.Snapshot) (iter.Seq[relstr.Tuple], func() error) {
	var terminal error
	seq := func(yield func(relstr.Tuple) bool) {
		target := snap.Structure()
		if p.mode == PlanYannakakis {
			reduced, empty, err := p.reduceSnap(ctx, snap)
			if err != nil {
				terminal = err
				return
			}
			if empty {
				return
			}
			target = reduced
		}
		_, err := hom.ProjectCtx(ctx, p.tb.S, target, nil, p.tb.Dist, func(vals []int) bool {
			return yield(relstr.Tuple(vals).Clone())
		})
		if err != nil {
			terminal = err
		}
	}
	return seq, func() error { return terminal }
}

// reduceSnap is Plan.reduce against a snapshot: both semijoin passes
// over the bitmaps, then a fresh structure holding only the database
// tuples backing surviving assignment rows.
func (p *Plan) reduceSnap(ctx context.Context, snap *relstr.Snapshot) (_ *relstr.Structure, empty bool, _ error) {
	sc := getScratch()
	defer p.flush(sc)
	f := p.snapForest(snap, sc)
	if err := f.runPasses(ctx, p.sched); err != nil {
		return nil, false, err
	}
	out := snap.Structure().CloneSchema()
	for i, a := range p.atoms {
		n := &f.nodes[i]
		if n.live == 0 {
			return nil, true, nil
		}
		varIdx := make([]int, len(a.args))
		for j, v := range a.args {
			varIdx[j] = indexOf(n.vars, v)
		}
		t := make([]int, len(a.args))
		for w, word := range n.words {
			for word != 0 {
				b := bits.TrailingZeros64(word)
				word &= word - 1
				row := n.rows[w<<6|b]
				for j, vi := range varIdx {
					t[j] = row[vi]
				}
				out.Add(a.rel, t...)
			}
		}
	}
	return out, false, nil
}
