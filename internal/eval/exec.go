package eval

import (
	"context"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"cqapprox/internal/cqerr"
	"cqapprox/internal/relstr"
)

// The unified, morsel-driven schedule executor. One forest replays a
// prepare-time schedule against any Source (plain structure, snapshot,
// or pre-materialised tree-decomposition bags): per-call row liveness
// is a bitmap per node (never in-place row filtering, so backing rows
// stay shared and immutable), semijoin steps probe backend-owned hash
// indexes, and the solve phase joins the surviving rows through the
// scratch arena exactly as scheduled.
//
// Parallelism is morsel-driven: the probe loop of a semijoin step, the
// accumulator side of a solve join, and the head projection each split
// their rows into fixed-size chunks (morselRows) claimed from an atomic
// counter by up to `par` workers; the two Yannakakis passes additionally
// fan out across independent sibling subtrees. Determinism is by
// construction: bitmap clearing is per-row independent, parallel join
// outputs are concatenated in chunk order (identical to the serial row
// order), and projections dedup into chunk-local sets merged in chunk
// order before the final sort — so answers, their order, and the
// liveness state after every pass are byte-identical to a serial run.

const (
	// morselRows is the fixed number of rows in one parallel work unit.
	// Bitmap morsels are word-aligned (64-row granularity) so
	// concurrent workers never write the same liveness word.
	morselRows = 1024
	// parThreshold is the minimum live-row count worth fanning out; a
	// smaller loop runs serially even on a parallel forest.
	parThreshold = 2 * morselRows
)

// execNode is one join-forest node under the unified executor: the
// backend-owned view rows, the call-local liveness bitmap that stands
// in for in-place filtering, and the node's index provider.
type execNode struct {
	rows  [][]int
	vars  []int
	ix    Indexer
	words []uint64 // bit id set ⇔ row id alive
	live  int
}

func (n *execNode) alive(id int32) bool {
	return n.words[id>>6]&(1<<(uint(id)&63)) != 0
}

func (n *execNode) clearAll() {
	for w := range n.words {
		n.words[w] = 0
	}
	n.live = 0
}

// aliveRows materialises the surviving rows (headers shared with the
// backend; rows are never mutated downstream).
func (n *execNode) aliveRows() [][]int {
	out := make([][]int, 0, n.live)
	for w, word := range n.words {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &= word - 1
			out = append(out, n.rows[w<<6|b])
		}
	}
	return out
}

// allAlive returns an n-row bitmap with every row live.
func allAlive(n int) []uint64 {
	words := make([]uint64, (n+63)/64)
	fillAlive(words, n)
	return words
}

// fillAlive sets the first n bits of words (len (n+63)/64).
func fillAlive(words []uint64, n int) {
	for w := range words {
		words[w] = ^uint64(0)
	}
	if n%64 != 0 && len(words) > 0 {
		words[len(words)-1] = (1 << uint(n%64)) - 1
	}
}

// forest is the per-call state of one evaluation: the nodes, the worker
// budget, the main scratch, and the pool of extra per-worker scratches
// the parallel solve phase allocates rows from. Index-build and probe
// counters are atomics (parallel sibling steps update them) folded into
// the scratch stats at release.
type forest struct {
	nodes []execNode
	par   int
	sc    *scratch

	// slots holds the par-1 extra-worker tokens of this evaluation.
	// Every fan-out — sibling subtrees, sibling steps, morsels —
	// spawns a goroutine only while it can claim a token (the calling
	// goroutine always participates without one), so the worker budget
	// is a genuine global cap on the evaluation's concurrency even
	// when fan-outs nest. Acquisition never blocks: with no token
	// free, work simply runs on the caller.
	slots chan struct{}

	// Test-only tuning: lowered fan-out threshold and morsel size so
	// tiny fuzz inputs drive the parallel machinery. Zero means the
	// production constants.
	minPar int
	morsel int

	wmu    sync.Mutex
	extras []*scratch // idle worker scratches, reusable within the call

	builds atomic.Uint64
	probes atomic.Uint64

	// trace is the call's ANALYZE frame, nil unless the caller opted
	// in (EvalTraceOn/PrepareCountTrace). Every hot-path hook is a
	// single nil check — the trace-off path records nothing and
	// allocates nothing.
	trace *execTrace
}

// initSlots fills the extra-worker token pool.
func (f *forest) initSlots() {
	if f.par > 1 {
		f.slots = make(chan struct{}, f.par-1)
		for i := 0; i < f.par-1; i++ {
			f.slots <- struct{}{}
		}
	}
}

// tryWorker claims an extra-worker token without blocking.
func (f *forest) tryWorker() bool {
	select {
	case <-f.slots:
		return true
	default:
		return false
	}
}

func (f *forest) putWorker() { f.slots <- struct{}{} }

// parMin is the live-row count below which loops stay serial.
func (f *forest) parMin() int {
	if f.minPar > 0 {
		return f.minPar
	}
	return parThreshold
}

// morselSize is the rows per parallel work unit.
func (f *forest) morselSize() int {
	if f.morsel > 0 {
		return f.morsel
	}
	return morselRows
}

// morselWordSize is the (word-aligned) morsel in 64-row liveness words.
func (f *forest) morselWordSize() int {
	return max(1, f.morselSize()/64)
}

// newForest builds the evaluation state for a schedule's atoms against
// src: one backend view plus an all-alive bitmap per node. The bitmaps
// come from one slab allocation across all nodes.
func newForest(atoms []patom, src Source, sc *scratch, par int) *forest {
	f := &forest{nodes: make([]execNode, len(atoms)), sc: sc, par: par}
	total := 0
	for i, a := range atoms {
		rows, ix := src.Node(a)
		f.nodes[i] = execNode{rows: rows, vars: a.distinctVars(), ix: ix, live: len(rows)}
		total += (len(rows) + 63) / 64
	}
	slab := make([]uint64, total)
	off := 0
	for i := range f.nodes {
		n := f.nodes[i].live
		w := (n + 63) / 64
		words := slab[off : off+w : off+w]
		off += w
		fillAlive(words, n)
		f.nodes[i].words = words
	}
	f.initSlots()
	return f
}

// forestFromRels builds the evaluation state over already-materialised
// relations (the tree-decomposition path, whose nodes are bag relations
// rather than atom views): indexes are built per call, memoized per
// (node, columns).
func forestFromRels(nodes []node, sc *scratch, par int) *forest {
	f := &forest{nodes: make([]execNode, len(nodes)), sc: sc, par: par}
	for i := range nodes {
		n := len(nodes[i].rows)
		f.nodes[i] = execNode{
			rows:  nodes[i].rows,
			vars:  nodes[i].vars,
			ix:    &memoIndexer{rows: nodes[i].rows},
			words: allAlive(n),
			live:  n,
		}
	}
	f.initSlots()
	return f
}

// release folds the forest's counters and every worker scratch's stats
// into the main scratch and returns the workers to the global pool.
// Call once, after the last row allocated from a worker arena has been
// copied out (i.e. at the very end of the evaluation).
func (f *forest) release() {
	f.sc.stats.builds += f.builds.Load()
	f.sc.stats.probes += f.probes.Load()
	for _, s := range f.extras {
		f.sc.stats.builds += s.stats.builds
		f.sc.stats.probes += s.stats.probes
		s.stats = opStats{}
		putScratch(s)
	}
	f.extras = nil
}

// grabScratch hands a worker its own arena — reused across parallel
// stages of the same call (appending to an arena never invalidates
// rows already allocated from it), returned to the global pool only at
// release.
func (f *forest) grabScratch() *scratch {
	f.wmu.Lock()
	defer f.wmu.Unlock()
	if n := len(f.extras); n > 0 {
		s := f.extras[n-1]
		f.extras = f.extras[:n-1]
		return s
	}
	return getScratch()
}

func (f *forest) yieldScratch(s *scratch) {
	f.wmu.Lock()
	f.extras = append(f.extras, s)
	f.wmu.Unlock()
}

// anyEmpty reports whether some node lost all rows (empty answer set).
func (f *forest) anyEmpty() bool {
	for i := range f.nodes {
		if f.nodes[i].live == 0 {
			return true
		}
	}
	return false
}

// --- semijoin reduction ------------------------------------------------

// semijoin applies one scheduled reduction step over the bitmaps:
// target rows with no alive source partner on the aligned columns die.
// The probe runs through the source's Indexer (a snapshot's persistent
// cache, or a per-call memo). Large targets fan their word ranges out
// in morsels to as many extra workers as the budget has free — the
// caller always works too, so a step never stalls on an exhausted
// budget.
func (f *forest) semijoin(st sjStep) {
	t, s := &f.nodes[st.target], &f.nodes[st.source]
	if t.live == 0 {
		return
	}
	if tr := f.trace; tr != nil {
		nt := &tr.nodes[st.target]
		nt.passes.Add(1)
		nt.in.Add(int64(t.live))
		defer func() { nt.out.Add(int64(t.live)) }()
	}
	if s.live == 0 {
		t.clearAll()
		return
	}
	if len(st.tCols) == 0 {
		return // no shared variables and the source is non-empty
	}
	ix, built := s.ix.Index(st.sCols)
	if built {
		f.builds.Add(1)
	}
	f.probes.Add(uint64(t.live))
	if tr := f.trace; tr != nil {
		nt := &tr.nodes[st.target]
		if built {
			nt.builds.Add(1)
		}
		nt.probes.Add(uint64(t.live))
	}
	full := s.live == len(s.rows) // skip liveness checks while the source is unfiltered
	nw := len(t.words)
	if f.par <= 1 || t.live < f.parMin() {
		t.live -= semijoinRange(t, s, ix, st.tCols, full, 0, nw)
		return
	}
	mw := f.morselWordSize()
	chunks := (nw + mw - 1) / mw
	if tr := f.trace; tr != nil {
		tr.addChunks(chunks)
	}
	var next, killed atomic.Int64
	var wg sync.WaitGroup
	work := func() int {
		n := 0
		for {
			c := int(next.Add(1) - 1)
			if c >= chunks {
				return n
			}
			n += semijoinRange(t, s, ix, st.tCols, full, c*mw, min((c+1)*mw, nw))
		}
	}
	for k := 1; k < chunks && f.tryWorker(); k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer f.putWorker()
			if tr := f.trace; tr != nil {
				start := time.Now()
				defer func() { tr.addWorker(time.Since(start)) }()
			}
			killed.Add(int64(work()))
		}()
	}
	mine := work()
	wg.Wait()
	t.live -= mine + int(killed.Load())
}

// semijoinRange probes the target rows of the word range [lo, hi),
// clearing the bits of rows with no alive partner, and returns the
// number of kills. Ranges are word-aligned, so concurrent workers on
// disjoint ranges never write the same word.
func semijoinRange(t, s *execNode, ix *relstr.Index, tCols []int, full bool, lo, hi int) int {
	killed := 0
	for w := lo; w < hi; w++ {
		word := t.words[w]
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &= word - 1
			row := t.rows[w<<6|b]
			ok := false
			for sid := ix.First(row, tCols); sid >= 0; sid = ix.Next(sid, row, tCols) {
				if full || s.alive(sid) {
					ok = true
					break
				}
			}
			if !ok {
				t.words[w] &^= 1 << uint(b)
				killed++
			}
		}
	}
	return killed
}

// fanOut runs fns — independent units of tree-level work — spawning a
// goroutine per fn only while an extra-worker token is free (the rest,
// and always fns[0], run on the caller, so nested fan-outs stay within
// the global budget). Every fn runs regardless of failures; the first
// error (in fns order) is returned, so the outcome is deterministic.
func (f *forest) fanOut(fns []func() error) error {
	if f.par <= 1 || len(fns) <= 1 {
		for _, fn := range fns {
			if err := fn(); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, len(fns))
	var wg sync.WaitGroup
	for i := 1; i < len(fns); i++ {
		if f.tryWorker() {
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer f.putWorker()
				if tr := f.trace; tr != nil {
					start := time.Now()
					defer func() { tr.addWorker(time.Since(start)) }()
				}
				errs[i] = fns[i]()
			}()
		} else {
			errs[i] = fns[i]()
		}
	}
	errs[0] = fns[0]()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runPasses executes the schedule's two reduction passes over the
// bitmaps. Independent sibling subtrees run concurrently on a parallel
// forest: in the bottom-up pass a node's steps only start after every
// child subtree finished, and in the top-down pass the steps into
// distinct children are themselves independent.
func (f *forest) runPasses(ctx context.Context, sched *schedule) error {
	var start time.Time
	if f.trace != nil {
		start = time.Now()
	}
	roots := make([]func() error, len(sched.roots))
	for i, r := range sched.roots {
		roots[i] = func() error { return f.down(ctx, sched, r) }
	}
	if err := f.fanOut(roots); err != nil {
		return err
	}
	if tr := f.trace; tr != nil {
		tr.phase("semijoin-down", time.Since(start))
		start = time.Now()
	}
	for i, r := range sched.roots {
		roots[i] = func() error { return f.up(ctx, sched, r) }
	}
	err := f.fanOut(roots)
	if tr := f.trace; tr != nil {
		tr.phase("semijoin-up", time.Since(start))
	}
	return err
}

// down runs the bottom-up pass of i's subtree: children first (in
// parallel when the budget allows), then i's own reduction steps —
// which share a target and therefore stay ordered, each
// morsel-parallel inside.
func (f *forest) down(ctx context.Context, sched *schedule, i int) error {
	kids := sched.children[i]
	fns := make([]func() error, len(kids))
	for k, c := range kids {
		fns[k] = func() error { return f.down(ctx, sched, c) }
	}
	if err := f.fanOut(fns); err != nil {
		return err
	}
	if err := cqerr.Check(ctx); err != nil {
		return err
	}
	for _, st := range sched.downOf[i] {
		f.semijoin(st)
	}
	return nil
}

// up runs the top-down pass of i's subtree: i's steps filter distinct
// children, so they fan out as sibling work; then the children's
// subtrees recurse.
func (f *forest) up(ctx context.Context, sched *schedule, i int) error {
	if err := cqerr.Check(ctx); err != nil {
		return err
	}
	steps := sched.upOf[i]
	if f.par > 1 && len(steps) > 1 {
		fns := make([]func() error, len(steps))
		for k, st := range steps {
			fns[k] = func() error { f.semijoin(st); return nil }
		}
		if err := f.fanOut(fns); err != nil {
			return err
		}
	} else {
		for _, st := range steps {
			f.semijoin(st)
		}
	}
	kids := sched.children[i]
	fns := make([]func() error, len(kids))
	for k, c := range kids {
		fns[k] = func() error { return f.up(ctx, sched, c) }
	}
	return f.fanOut(fns)
}

// runBool executes only the leaves→roots pass, reporting answer
// existence (the Boolean fast path). Node order stays serial so the
// emptiness short-circuit fires as early as a serial run would; the
// per-step probe loops still fan out.
func (f *forest) runBool(ctx context.Context, sched *schedule) (bool, error) {
	for _, i := range sched.postorder {
		if err := cqerr.Check(ctx); err != nil {
			return false, err
		}
		for _, st := range sched.downOf[i] {
			f.semijoin(st)
		}
		if f.nodes[i].live == 0 {
			return false, nil
		}
	}
	return true, nil
}

// --- solve phase -------------------------------------------------------

// solve executes the scheduled bottom-up join, cross product and head
// projection over a forest that already went through runPasses (callers
// must also have verified every node keeps at least one row — the skip
// analysis relies on it). empty reports an empty answer set discovered
// mid-way.
func (f *forest) solve(ctx context.Context, sched *schedule) (_ Answers, empty bool, _ error) {
	if sched.directNode != -1 {
		rows := [][]int{{}} // unitNode: the Boolean unit relation
		if sched.directNode >= 0 {
			rows = f.nodes[sched.directNode].aliveRows()
		}
		return f.projectHead(rows, len(sched.head), sched.directCols), false, nil
	}
	var start time.Time
	if f.trace != nil {
		start = time.Now()
	}
	upRel := make([]rel, len(f.nodes))
	for _, i := range sched.postorder {
		if !sched.needed[i] {
			continue
		}
		if err := cqerr.Check(ctx); err != nil {
			return nil, false, err
		}
		acc := rel{vars: f.nodes[i].vars, rows: f.nodes[i].aliveRows()}
		for _, st := range sched.nodes[i].joins {
			if st.skip {
				continue
			}
			acc = f.join(acc, upRel[st.child], st)
		}
		if sched.nodes[i].projCols != nil {
			acc = f.sc.project(acc, sched.nodes[i].projCols, sched.nodes[i].vars)
		}
		upRel[i] = acc
	}
	total := rel{vars: nil, rows: [][]int{{}}}
	for _, st := range sched.rootJoins {
		if st.skip {
			continue
		}
		if err := cqerr.Check(ctx); err != nil {
			return nil, false, err
		}
		if len(upRel[st.child].rows) == 0 {
			return Answers{}, true, nil
		}
		if len(total.vars) == 0 && len(total.rows) == 1 {
			// Cross product with the unit relation: adopt the component's
			// relation as-is (outVars is exactly its variable list).
			total = rel{vars: st.outVars, rows: upRel[st.child].rows}
			continue
		}
		total = f.join(total, upRel[st.child], st)
	}
	if tr := f.trace; tr != nil {
		tr.phase("join", time.Since(start))
	}
	return f.projectHead(total.rows, len(sched.head), sched.headCols), false, nil
}

// join is the scheduled natural join, morsel-parallel when the
// accumulator is large: the probe index is built once up front, the
// accumulator's rows are claimed in fixed-size chunks by workers with
// their own scratch arenas, and the per-chunk outputs are concatenated
// in chunk order — the exact row order a serial run produces.
func (f *forest) join(l, r rel, st jStep) rel {
	if f.par <= 1 || len(l.rows) < f.parMin() || len(st.rCols) == 0 || len(r.rows) == 0 {
		// Small inputs, keyless cross products (output-dominated) and
		// empty probe sides stay serial.
		return f.sc.join(l, r, st)
	}
	out := rel{vars: st.outVars}
	ix := f.sc.buildIndex(r.rows, st.rCols)
	f.sc.stats.probes += uint64(len(l.rows))
	mr := f.morselSize()
	chunks := (len(l.rows) + mr - 1) / mr
	if tr := f.trace; tr != nil {
		tr.addChunks(chunks)
	}
	parts := make([][][]int, chunks)
	w := len(l.vars) + len(st.rExtra)
	var next atomic.Int64
	var wg sync.WaitGroup
	work := func(sc *scratch) {
		for {
			c := int(next.Add(1) - 1)
			if c >= chunks {
				return
			}
			lo, hi := c*mr, min((c+1)*mr, len(l.rows))
			var rows [][]int
			for _, lrow := range l.rows[lo:hi] {
				for id := ix.lookup(lrow, st.lCols); id >= 0; id = ix.nextMatch(id, lrow, st.lCols) {
					rrow := ix.rows[id]
					vals := sc.alloc(w)
					copy(vals, lrow)
					for j, col := range st.rExtra {
						vals[len(lrow)+j] = rrow[col]
					}
					rows = append(rows, vals)
				}
			}
			parts[c] = rows
		}
	}
	for k := 1; k < chunks && f.tryWorker(); k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer f.putWorker()
			if tr := f.trace; tr != nil {
				start := time.Now()
				defer func() { tr.addWorker(time.Since(start)) }()
			}
			sc := f.grabScratch()
			defer f.yieldScratch(sc)
			work(sc)
		}()
	}
	// The caller joins with its own arena: never the main scratch —
	// that holds the live probe index tables.
	sc := f.grabScratch()
	work(sc)
	wg.Wait()
	f.yieldScratch(sc)
	n := 0
	for _, p := range parts {
		n += len(p)
	}
	out.rows = make([][]int, 0, n)
	for _, p := range parts {
		out.rows = append(out.rows, p...)
	}
	return out
}

// projectHead projects rows onto the head (the head may repeat
// variables), deduplicating via integer-hashed tuple sets and sorting.
// Parallel runs dedup into chunk-local sets merged in chunk order; the
// final sort makes the result identical either way.
func (f *forest) projectHead(rows [][]int, width int, cols []int) Answers {
	var start time.Time
	if f.trace != nil {
		start = time.Now()
	}
	if f.par <= 1 || len(rows) < f.parMin() {
		ans := projectHeadSerial(rows, width, cols)
		if tr := f.trace; tr != nil {
			// Serial runs fold the dedup into the projection pass.
			tr.phase("project", time.Since(start))
			tr.phase("dedup", 0)
		}
		return ans
	}
	mr := f.morselSize()
	chunks := (len(rows) + mr - 1) / mr
	if tr := f.trace; tr != nil {
		tr.addChunks(chunks)
	}
	parts := make([]*relstr.TupleSet, chunks)
	var next atomic.Int64
	var wg sync.WaitGroup
	work := func() {
		for {
			c := int(next.Add(1) - 1)
			if c >= chunks {
				return
			}
			var seen relstr.TupleSet
			for _, row := range rows[c*mr : min((c+1)*mr, len(rows))] {
				vals := make(relstr.Tuple, width)
				for i, j := range cols {
					vals[i] = row[j]
				}
				seen.Add(vals)
			}
			parts[c] = &seen
		}
	}
	for k := 1; k < chunks && f.tryWorker(); k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer f.putWorker()
			if tr := f.trace; tr != nil {
				t0 := time.Now()
				defer func() { tr.addWorker(time.Since(t0)) }()
			}
			work()
		}()
	}
	work()
	wg.Wait()
	var mid time.Time
	if f.trace != nil {
		mid = time.Now()
	}
	var seen relstr.TupleSet
	for _, p := range parts {
		for _, t := range p.Rows() {
			seen.Add(t)
		}
	}
	ans := sortAnswers(append([]relstr.Tuple{}, seen.Rows()...))
	if tr := f.trace; tr != nil {
		tr.phase("project", mid.Sub(start))
		tr.phase("dedup", time.Since(mid))
	}
	return ans
}

// projectHeadSerial is the serial head projection.
func projectHeadSerial(rows [][]int, width int, cols []int) Answers {
	var seen relstr.TupleSet
	for _, row := range rows {
		vals := make(relstr.Tuple, width)
		for i, j := range cols {
			vals[i] = row[j]
		}
		seen.Add(vals)
	}
	return sortAnswers(append([]relstr.Tuple{}, seen.Rows()...))
}

// --- full pipelines ----------------------------------------------------

// evalForest runs the complete Yannakakis pipeline over a fresh forest:
// both reduction passes, the emptiness short-circuit, then the
// scheduled solve.
func evalForest(ctx context.Context, sched *schedule, f *forest) (Answers, error) {
	if err := f.runPasses(ctx, sched); err != nil {
		return nil, err
	}
	if f.anyEmpty() {
		return Answers{}, nil
	}
	ans, empty, err := f.solve(ctx, sched)
	if err != nil {
		return nil, err
	}
	if empty {
		return Answers{}, nil
	}
	return ans, nil
}

// reduce rebuilds a structure holding only the database tuples backing
// assignment rows that survived runPasses. Answers of the query on the
// reduced structure equal those on the original; empty reports that
// some relation lost every row (empty answer set).
func (f *forest) reduce(atoms []patom, src *relstr.Structure) (_ *relstr.Structure, empty bool) {
	out := src.CloneSchema()
	for i, a := range atoms {
		n := &f.nodes[i]
		if n.live == 0 {
			return nil, true
		}
		// Rebuild the db tuples backing each surviving assignment row:
		// position j of the tuple holds the row value of the variable
		// at position j (repeated variables repeat the value).
		varIdx := make([]int, len(a.args))
		for j, v := range a.args {
			varIdx[j] = indexOf(n.vars, v)
		}
		t := make([]int, len(a.args))
		for w, word := range n.words {
			for word != 0 {
				b := bits.TrailingZeros64(word)
				word &= word - 1
				row := n.rows[w<<6|b]
				for j, vi := range varIdx {
					t[j] = row[vi]
				}
				out.Add(a.rel, t...)
			}
		}
	}
	return out, false
}
