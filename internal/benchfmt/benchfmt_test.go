package benchfmt

import (
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: cqapprox
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkIndexedJoin/chain6/N300-8         	     237	   1443496 ns/op
BenchmarkIndexedJoin/chain6/N300-8         	     240	   1401210 ns/op
BenchmarkIndexedJoin/star5/N1000-8         	     230	   1580214 ns/op
BenchmarkPreparedReuse_Warm/OLTP-8         	  150000	      7521 ns/op	 1024 B/op	      12 allocs/op
BenchmarkServerThroughput-8                	    5000	    211000 ns/op	     4821 evals/s
PASS
ok  	cqapprox	5.078s
`

func TestParseGoBench(t *testing.T) {
	got, err := ParseGoBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("parsed %d benchmarks: %v", len(got), got)
	}
	chain := got["BenchmarkIndexedJoin/chain6/N300"]
	if len(chain) != 2 || Best(chain) != 1401210 {
		t.Fatalf("chain samples = %v", chain)
	}
	if v := got["BenchmarkPreparedReuse_Warm/OLTP"]; len(v) != 1 || v[0] != 7521 {
		t.Fatalf("warm sample = %v (B/op suffix must not confuse the parser)", v)
	}
	if v := got["BenchmarkServerThroughput"]; len(v) != 1 || v[0] != 211000 {
		t.Fatalf("throughput sample = %v (custom metrics must not confuse the parser)", v)
	}
}

func TestReportRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	r := &Report{Note: "test", Benchmarks: map[string]Entry{
		"BenchmarkA": {NsPerOp: 123},
		"BenchmarkB": {NsPerOp: 4.5e6},
	}}
	if err := r.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Note != "test" || len(got.Benchmarks) != 2 || got.Benchmarks["BenchmarkB"].NsPerOp != 4.5e6 {
		t.Fatalf("roundtrip = %+v", got)
	}
	if names := got.Names(); names[0] != "BenchmarkA" || names[1] != "BenchmarkB" {
		t.Fatalf("names = %v", names)
	}
}
