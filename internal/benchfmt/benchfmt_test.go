package benchfmt

import (
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: cqapprox
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkIndexedJoin/chain6/N300-8         	     237	   1443496 ns/op
BenchmarkIndexedJoin/chain6/N300-8         	     240	   1401210 ns/op
BenchmarkIndexedJoin/star5/N1000-8         	     230	   1580214 ns/op
BenchmarkPreparedReuse_Warm/OLTP-8         	  150000	      7521 ns/op	 1024 B/op	      12 allocs/op
BenchmarkServerThroughput-8                	    5000	    211000 ns/op	     4821 evals/s
PASS
ok  	cqapprox	5.078s
`

func TestParseGoBench(t *testing.T) {
	got, err := ParseGoBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("parsed %d benchmarks: %v", len(got), got)
	}
	chain := got["BenchmarkIndexedJoin/chain6/N300"]
	if len(chain.Ns) != 2 || Best(chain.Ns) != 1401210 {
		t.Fatalf("chain samples = %v", chain.Ns)
	}
	if len(chain.Allocs) != 0 {
		t.Fatalf("chain allocs = %v (no -benchmem on that line)", chain.Allocs)
	}
	warm := got["BenchmarkPreparedReuse_Warm/OLTP"]
	if len(warm.Ns) != 1 || warm.Ns[0] != 7521 {
		t.Fatalf("warm sample = %v (B/op suffix must not confuse the parser)", warm.Ns)
	}
	if len(warm.Allocs) != 1 || warm.Allocs[0] != 12 {
		t.Fatalf("warm allocs = %v, want [12]", warm.Allocs)
	}
	if v := got["BenchmarkServerThroughput"]; len(v.Ns) != 1 || v.Ns[0] != 211000 {
		t.Fatalf("throughput sample = %v (custom metrics must not confuse the parser)", v.Ns)
	}
	if v := got["BenchmarkServerThroughput"]; len(v.Allocs) != 0 {
		t.Fatalf("throughput allocs = %v (evals/s must not parse as allocs)", v.Allocs)
	}
}

func TestReportRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	r := &Report{Note: "test", Benchmarks: map[string]Entry{
		"BenchmarkA": {NsPerOp: 123, AllocsPerOp: Allocs(17)},
		"BenchmarkB": {NsPerOp: 4.5e6},
		"BenchmarkC": {NsPerOp: 9, AllocsPerOp: Allocs(0)}, // zero is a recorded promise, not absence
	}}
	if err := r.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Note != "test" || len(got.Benchmarks) != 3 || got.Benchmarks["BenchmarkB"].NsPerOp != 4.5e6 {
		t.Fatalf("roundtrip = %+v", got)
	}
	if a := got.Benchmarks["BenchmarkA"].AllocsPerOp; a == nil || *a != 17 {
		t.Fatalf("allocs roundtrip = %+v", got.Benchmarks)
	}
	if got.Benchmarks["BenchmarkB"].AllocsPerOp != nil {
		t.Fatalf("absent allocs decoded non-nil: %+v", got.Benchmarks)
	}
	if a := got.Benchmarks["BenchmarkC"].AllocsPerOp; a == nil || *a != 0 {
		t.Fatalf("zero-alloc baseline lost: %+v", got.Benchmarks)
	}
	if names := got.Names(); names[0] != "BenchmarkA" || names[1] != "BenchmarkB" {
		t.Fatalf("names = %v", names)
	}
}
