// Package benchfmt is the tiny shared substrate of the repo's
// benchmark-regression tooling: the BENCH_*.json baseline format and a
// parser for `go test -bench` output. cmd/benchcheck compares fresh
// bench output against a committed baseline (the CI perf gate);
// cmd/experiments regenerates the E19 entries of BENCH_eval.json.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// Entry is one benchmark's baseline record. AllocsPerOp is a pointer
// so a recorded 0 allocs/op baseline (which the gate protects — a
// regression from zero is the one it must catch) stays distinguishable
// from "allocations never measured" (nil; the gate skips those).
type Entry struct {
	NsPerOp     float64  `json:"ns_per_op"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

// Allocs wraps a measured allocs/op value for Entry.AllocsPerOp.
func Allocs(v float64) *float64 { return &v }

// Samples are one benchmark's measurements across -count repetitions.
// Allocs is empty when the run did not report allocations.
type Samples struct {
	Ns     []float64
	Allocs []float64
}

// Report is the on-disk shape of a BENCH_*.json file.
type Report struct {
	// Note documents how the numbers were produced (command line,
	// machine class) — advisory, not compared.
	Note string `json:"note,omitempty"`
	// Benchmarks maps a benchmark name (GOMAXPROCS suffix stripped,
	// e.g. "BenchmarkIndexedJoin/chain6/N3000") to its baseline.
	Benchmarks map[string]Entry `json:"benchmarks"`
}

// Load reads a report from path.
func Load(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Benchmarks == nil {
		r.Benchmarks = map[string]Entry{}
	}
	return &r, nil
}

// Save writes the report to path with stable formatting (sorted keys,
// indented) so committed baselines diff cleanly.
func (r *Report) Save(path string) error {
	if r.Benchmarks == nil {
		r.Benchmarks = map[string]Entry{}
	}
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// benchLine matches one result line of `go test -bench` output:
//
//	BenchmarkIndexedJoin/chain6/N300-8   237   1443496 ns/op   12 allocs/op
//
// The trailing -<procs> is stripped from the name; metrics other than
// ns/op and allocs/op (B/op, custom units) are ignored.
var benchLine = regexp.MustCompile(`^(Benchmark\S*?)(?:-\d+)?\s+\d+\s+([0-9.]+(?:e[+-]?\d+)?) ns/op`)

// allocsField matches the allocs/op metric anywhere in the line tail.
var allocsField = regexp.MustCompile(`\s([0-9.]+(?:e[+-]?\d+)?) allocs/op`)

// ParseGoBench collects the ns/op (and, when reported under -benchmem,
// allocs/op) samples per benchmark name from `go test -bench` output
// (multiple samples under -count=N).
func ParseGoBench(r io.Reader) (map[string]*Samples, error) {
	out := map[string]*Samples{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("parsing %q: %w", sc.Text(), err)
		}
		s := out[m[1]]
		if s == nil {
			s = &Samples{}
			out[m[1]] = s
		}
		s.Ns = append(s.Ns, v)
		if am := allocsField.FindStringSubmatch(sc.Text()); am != nil {
			a, err := strconv.ParseFloat(am[1], 64)
			if err != nil {
				return nil, fmt.Errorf("parsing %q: %w", sc.Text(), err)
			}
			s.Allocs = append(s.Allocs, a)
		}
	}
	return out, sc.Err()
}

// Best reduces a sample set to its minimum — the standard
// noise-robust statistic for regression gating (the fastest run is the
// least disturbed one).
func Best(samples []float64) float64 {
	best := samples[0]
	for _, s := range samples[1:] {
		if s < best {
			best = s
		}
	}
	return best
}

// Names returns the report's benchmark names in sorted order.
func (r *Report) Names() []string {
	names := make([]string, 0, len(r.Benchmarks))
	for n := range r.Benchmarks {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
