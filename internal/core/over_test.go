package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cqapprox/internal/cq"
	"cqapprox/internal/hom"
)

// The TW(1)-overapproximation of the triangle is the path of length 2:
// dropping any one edge yields isomorphic paths, which are the
// →-maximal acyclic substructures.
func TestOverapproximationOfTriangle(t *testing.T) {
	q := cq.MustParse("Q() :- E(x,y), E(y,z), E(z,x)")
	overs, err := Overapproximations(q, TW(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(overs) != 1 {
		t.Fatalf("overapproximations = %v, want exactly 1", overs)
	}
	p2 := cq.MustParse("P() :- E(a,b), E(b,c)")
	if !hom.Equivalent(overs[0], p2) {
		t.Fatalf("overapproximation = %v, want ≡ P2", overs[0])
	}
	if !hom.Contained(q, overs[0]) {
		t.Fatal("q not contained in its overapproximation")
	}
}

func TestOverapproximationOfC4(t *testing.T) {
	q := cq.MustParse("Q() :- E(x,y), E(y,z), E(z,u), E(u,x)")
	overs, err := Overapproximations(q, TW(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(overs) != 1 {
		t.Fatalf("overapproximations = %v, want 1", overs)
	}
	p3 := cq.MustParse("P() :- E(a,b), E(b,c), E(c,d)")
	if !hom.Equivalent(overs[0], p3) {
		t.Fatalf("overapproximation = %v, want ≡ P3", overs[0])
	}
}

// A query already in the class is its own overapproximation.
func TestOverapproximationInClass(t *testing.T) {
	q := cq.MustParse("Q(x) :- E(x,y), E(y,z)")
	overs, err := Overapproximations(q, TW(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(overs) != 1 || !hom.Equivalent(overs[0], q) {
		t.Fatalf("overapproximations = %v, want [≡ q]", overs)
	}
}

// Head variables must survive: the overapproximation of a free-variable
// cyclic query keeps the head meaningful.
func TestOverapproximationKeepsHead(t *testing.T) {
	q := cq.MustParse("Q(x) :- E(x,y), E(y,z), E(z,x)")
	overs, err := Overapproximations(q, TW(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(overs) == 0 {
		t.Fatal("no overapproximations")
	}
	for _, o := range overs {
		if len(o.Head) != 1 {
			t.Fatalf("head lost: %v", o)
		}
		if !hom.Contained(q, o) {
			t.Fatalf("%v does not contain q", o)
		}
	}
}

func TestIsOverapproximation(t *testing.T) {
	q := cq.MustParse("Q() :- E(x,y), E(y,z), E(z,x)")
	p2 := cq.MustParse("P() :- E(a,b), E(b,c)")
	edge := cq.MustParse("P() :- E(a,b)")
	ok, err := IsOverapproximation(q, p2, TW(1), Options{})
	if err != nil || !ok {
		t.Fatalf("P2 should be an overapproximation (ok=%v err=%v)", ok, err)
	}
	// The single-edge query contains q but P2 sits strictly between.
	ok, err = IsOverapproximation(q, edge, TW(1), Options{})
	if err != nil || ok {
		t.Fatalf("single edge should not be minimal (ok=%v err=%v)", ok, err)
	}
	// q itself is not in TW(1).
	ok, err = IsOverapproximation(q, q, TW(1), Options{})
	if err != nil || ok {
		t.Fatalf("cyclic candidate rejected (ok=%v err=%v)", ok, err)
	}
}

// Sandwich property: approx ⊆ Q ⊆ overapprox, hence on every database
// approxAnswers ⊆ exactAnswers ⊆ overAnswers.
func TestQuickSandwich(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Random small cyclic-ish Boolean graph query.
		q := &cq.Query{Name: "Q"}
		n := 3 + rng.Intn(2)
		for i := 0; i < n; i++ {
			q.Atoms = append(q.Atoms, cq.Atom{Rel: "E", Args: []string{
				vname(rng.Intn(n)), vname(rng.Intn(n)),
			}})
		}
		if q.Validate() != nil {
			return true
		}
		under, err := Approximate(q, TW(1), DefaultOptions())
		if err != nil {
			return false
		}
		overs, err := Overapproximations(q, TW(1), DefaultOptions())
		if err != nil || len(overs) == 0 {
			return false
		}
		over := overs[0]
		return hom.Contained(under, q) && hom.Contained(q, over)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func vname(i int) string {
	return string(rune('a' + i))
}

func TestOverapproximationAtomBound(t *testing.T) {
	q := &cq.Query{Name: "Q"}
	for i := 0; i < 21; i++ {
		q.Atoms = append(q.Atoms, cq.Atom{Rel: "E", Args: []string{vname(i % 5), vname((i + 1) % 5)}})
	}
	// 21 atoms collapse to fewer distinct facts, so build distinct ones.
	q = cq.MustParse("Q() :- E(a,b)")
	for i := 0; i < 25; i++ {
		q.Atoms = append(q.Atoms, cq.Atom{Rel: "E", Args: []string{vname(i), vname(i + 1)}})
	}
	if _, err := Overapproximations(q, TW(1), Options{}); err == nil {
		t.Fatal("expected atom-bound error")
	}
}
