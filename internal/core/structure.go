package core

import (
	"fmt"

	"cqapprox/internal/cq"
	"cqapprox/internal/digraph"
	"cqapprox/internal/hom"
)

// TableauKind classifies the tableau of a CQ over graphs for
// Theorem 5.1's trichotomy.
type TableauKind int

const (
	// NonBipartite tableaux admit only the trivial acyclic
	// approximation Q_trivial (Boolean case).
	NonBipartite TableauKind = iota
	// BipartiteUnbalanced tableaux admit only the trivial bipartite
	// approximation Q_triv2 (tableau K_2^↔, Boolean case).
	BipartiteUnbalanced
	// BipartiteBalanced tableaux have nontrivial acyclic
	// approximations, none containing both E(x,y) and E(y,x).
	BipartiteBalanced
)

func (k TableauKind) String() string {
	switch k {
	case NonBipartite:
		return "non-bipartite"
	case BipartiteUnbalanced:
		return "bipartite-unbalanced"
	case BipartiteBalanced:
		return "bipartite-balanced"
	default:
		return fmt.Sprintf("TableauKind(%d)", int(k))
	}
}

// IsGraphQuery reports whether q is a query over graphs: its schema is
// a single binary relation.
func IsGraphQuery(q *cq.Query) bool {
	schema := q.Schema()
	if len(schema) != 1 {
		return false
	}
	for _, a := range schema {
		if a != 2 {
			return false
		}
	}
	return true
}

// graphTableau returns q's tableau renamed so the edge relation is
// digraph.EdgeRel, for use with the digraph package.
func graphTableau(q *cq.Query) (*cq.Tableau, error) {
	if !IsGraphQuery(q) {
		return nil, fmt.Errorf("core: %v is not a query over graphs", q)
	}
	tb := q.Tableau()
	rels := tb.S.Relations()
	if rels[0] != digraph.EdgeRel {
		renamed := digraph.New()
		for _, t := range tb.S.Tuples(rels[0]) {
			renamed.Add(digraph.EdgeRel, t...)
		}
		for _, d := range tb.Dist {
			renamed.AddElement(d)
		}
		tb = &cq.Tableau{S: renamed, Dist: tb.Dist, Var: tb.Var}
	}
	return tb, nil
}

// ClassifyGraphTableau classifies q's tableau per Theorem 5.1. The
// query must be over graphs (single binary relation); both Boolean and
// non-Boolean queries are classified (Theorem 5.8 reuses
// bipartiteness).
func ClassifyGraphTableau(q *cq.Query) (TableauKind, error) {
	tb, err := graphTableau(q)
	if err != nil {
		return 0, err
	}
	if !digraph.IsBipartite(tb.S) {
		return NonBipartite, nil
	}
	if !digraph.IsBalanced(tb.S) {
		return BipartiteUnbalanced, nil
	}
	return BipartiteBalanced, nil
}

// IsCyclicGraphQuery reports whether q's tableau has an oriented cycle
// of length ≥ 3 (so q is outside TW(1) over graphs).
func IsCyclicGraphQuery(q *cq.Query) (bool, error) {
	tb, err := graphTableau(q)
	if err != nil {
		return false, err
	}
	return !digraph.IsForestLike(tb.S), nil
}

// HasLoopFreeTWkApproximation implements the dichotomy of Theorems 5.8
// and 5.10: a graph query has a TW(k)-approximation without a subgoal
// E(x,x) iff its tableau is (k+1)-colorable. (k = 1 is the acyclic
// case of Theorem 5.8.)
func HasLoopFreeTWkApproximation(q *cq.Query, k int) (bool, error) {
	tb, err := graphTableau(q)
	if err != nil {
		return false, err
	}
	return digraph.IsKColorable(tb.S, k+1), nil
}

// NontrivialTWkApproximationExists implements Corollary 5.11: a Boolean
// CQ over graphs has a nontrivial TW(k)-approximation iff its tableau
// is (k+1)-colorable.
func NontrivialTWkApproximationExists(q *cq.Query, k int) (bool, error) {
	if !q.IsBoolean() {
		return false, fmt.Errorf("core: Corollary 5.11 applies to Boolean queries")
	}
	return HasLoopFreeTWkApproximation(q, k)
}

// EquivalentToClass implements Proposition 4.11's reduction: given the
// approximation oracle A(·), q is equivalent to some query in C iff
// q ⊆ A(q). (Checking q ⊆ A(q) amounts to evaluating A(q) over q's
// tableau.)
func EquivalentToClass(q *cq.Query, c Class, opt Options) (bool, error) {
	a, err := Approximate(q, c, opt)
	if err != nil {
		return false, err
	}
	return hom.Contained(q, a), nil
}

// JoinComparison records how approximation join counts compare to the
// original query's (Corollary 5.3, Proposition 5.9, Example 6.6).
type JoinComparison struct {
	QueryJoins int
	Approx     []*cq.Query
	Joins      []int // per approximation, after minimization
}

// CompareJoins computes the join counts of all C-approximations of q.
func CompareJoins(q *cq.Query, c Class, opt Options) (*JoinComparison, error) {
	apps, err := Approximations(q, c, opt)
	if err != nil {
		return nil, err
	}
	out := &JoinComparison{QueryJoins: hom.Minimize(q).NumJoins(), Approx: apps}
	for _, a := range apps {
		out.Joins = append(out.Joins, a.NumJoins())
	}
	return out, nil
}
