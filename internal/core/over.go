package core

import (
	"fmt"
	"sort"

	"cqapprox/internal/cq"
	"cqapprox/internal/cqerr"
	"cqapprox/internal/hom"
	"cqapprox/internal/relstr"
)

// This file implements C-overapproximations, one of the notions the
// paper's conclusions (Section 7) leave as future work: a query
// Q' ∈ C with Q ⊆ Q' such that no Q'' ∈ C satisfies Q ⊆ Q'' ⊂ Q' —
// the minimal complete (all correct answers plus possibly extra)
// C-queries above Q.
//
// The candidate space is dual to Theorem 4.1's: substructures of T_Q
// (subsets of its atoms). If Q ⊆ Q' with Q' ∈ C, the containment
// homomorphism h : T_{Q'} → T_Q corestricts to T_{Q'} → Im(h), so
//
//	Q ⊆ query(Im(h)) ⊆ Q',
//
// and Im(h) is a fact-subset of T_Q. For graph-based classes
// (subgraph-closed) Im(h) is again in C, so atom-subset enumeration is
// sound and complete; for hypergraph-based classes the space may miss
// candidates (acyclicity is not subhypergraph-closed) and the result is
// exact relative to the space, mirroring the underapproximation caveat.
//
// In the tableau order, overapproximations are the →-maximal candidate
// tableaux: Q'' ⊂ Q' iff T_{Q'} ⥿ T_{Q''}.

// Overapproximations returns the minimized C-overapproximations of q up
// to equivalence, within the atom-subset candidate space (complete for
// graph-based classes). The head must be preserved: distinguished
// variables survive in every candidate.
func Overapproximations(q *cq.Query, c Class, opt Options) ([]*cq.Query, error) {
	opt = opt.WithDefaults()
	if err := q.Validate(); err != nil {
		return nil, err
	}
	tb := q.Tableau()
	atoms := atomsOf(tb.S)
	if len(atoms) > 20 {
		return nil, fmt.Errorf("core: query has %d atoms; overapproximation search is bounded at 20: %w", len(atoms), cqerr.ErrBudgetExceeded)
	}
	var front []hom.Pointed
	total := 1 << uint(len(atoms))
	for mask := 1; mask < total; mask++ {
		sub := tb.S.CloneSchema()
		for i, a := range atoms {
			if mask&(1<<uint(i)) != 0 {
				sub.Add(a.rel, a.args...)
			}
		}
		// Head variables must remain meaningful: keep them in the
		// domain even when their atoms were dropped.
		dom := sub.DomainSet()
		ok := true
		for _, d := range tb.Dist {
			if !dom[d] {
				ok = false // dropping all atoms of a head variable makes it range-unrestricted
				break
			}
		}
		if !ok || !c.Contains(sub) {
			continue
		}
		coreS, retract := hom.Core(sub, tb.Dist)
		cp := hom.Pointed{S: coreS, Dist: mapDist(tb.Dist, retract)}
		// Keep →-maximal elements: discard cp if some y is strictly
		// above it (cp ⥿ y would mean query(y) ⊂ query(cp)); here we
		// keep candidates whose query is ⊆-minimal, i.e. tableaux that
		// are →-maximal.
		dominated := false
		for _, y := range front {
			if hom.Maps(cp, y) {
				// query(y) ⊆ query(cp): y is at least as good (or
				// equivalent) — drop cp.
				dominated = true
				break
			}
		}
		if dominated {
			continue
		}
		kept := front[:0]
		for _, y := range front {
			if !(hom.Maps(y, cp) && !hom.Maps(cp, y)) {
				kept = append(kept, y)
			}
		}
		front = append(kept, cp)
	}
	sortFront(front)
	out := make([]*cq.Query, len(front))
	for i, p := range front {
		oq := cq.FromTableau(p.S, p.Dist, nil)
		oq.Name = q.Name + "_over"
		out[i] = oq
	}
	return out, nil
}

// Overapproximate returns one minimized C-overapproximation of q, if
// any exists in the candidate space (for graph-based classes one always
// does: single-atom substructures are in TW(k), and they contain q
// whenever they keep the head variables).
func Overapproximate(q *cq.Query, c Class, opt Options) (*cq.Query, error) {
	all, err := Overapproximations(q, c, opt)
	if err != nil {
		return nil, err
	}
	if len(all) == 0 {
		return nil, fmt.Errorf("core: no %s-overapproximation of %v in the candidate space: %w", c.Name(), q, cqerr.ErrNotInClass)
	}
	return all[0], nil
}

// atomsOf lists a structure's facts as (relation, args) pairs in
// deterministic order.
func atomsOf(s *relstr.Structure) []patomLite {
	var out []patomLite
	for _, rel := range s.Relations() {
		ts := append([]relstr.Tuple{}, s.Tuples(rel)...)
		sort.Slice(ts, func(i, j int) bool { return ts[i].Key() < ts[j].Key() })
		for _, t := range ts {
			out = append(out, patomLite{rel: rel, args: append([]int{}, t...)})
		}
	}
	return out
}

type patomLite struct {
	rel  string
	args []int
}

// IsOverapproximation decides whether cand is a C-overapproximation of
// q within the atom-subset witness space (exact for graph-based
// classes, by the corestriction argument above).
func IsOverapproximation(q, cand *cq.Query, c Class, opt Options) (bool, error) {
	ct := cand.Tableau()
	if !c.Contains(ct.S) {
		return false, nil
	}
	if !hom.Contained(q, cand) {
		return false, nil
	}
	candP := hom.Pointed{S: ct.S, Dist: ct.Dist}
	all, err := Overapproximations(q, c, opt)
	if err != nil {
		return false, err
	}
	for _, o := range all {
		op := hom.TableauOf(o)
		// A witness strictly between q and cand: q ⊆ o ⊂ cand, i.e.
		// T_cand → T_o strictly.
		if hom.Maps(candP, op) && !hom.Maps(op, candP) {
			return false, nil
		}
	}
	return true, nil
}
