// Package core implements the paper's primary contribution: computing
// C-approximations of conjunctive queries for the tractable classes C
// of Sections 4–6 — bounded treewidth TW(k) (graph-based), acyclic AC,
// and bounded (generalized) hypertree width HTW(k)/GHTW(k)
// (hypergraph-based).
//
// A C-approximation of Q (Definition 3.1) is a query Q' ∈ C with
// Q' ⊆ Q such that no Q” ∈ C satisfies Q' ⊂ Q” ⊆ Q. In tableau
// terms, approximations are the →-minimal tableaux of C-queries among
// the homomorphic images of T_Q (Theorem 4.1), extended — for the
// hypergraph-based classes, which are not closed under subhypergraphs —
// with bounded sets of additional atoms (Theorem 6.1 / Claim 6.2).
package core

import (
	"fmt"
	"sort"

	"cqapprox/internal/cq"
	"cqapprox/internal/hom"
	"cqapprox/internal/htw"
	"cqapprox/internal/hypergraph"
	"cqapprox/internal/relstr"
	"cqapprox/internal/tw"
)

// Class is a class of conjunctive queries defined through a property of
// their tableaux. Implementations must be decidable membership tests.
type Class interface {
	// Name is a short identifier such as "TW(1)" or "AC". Within one
	// concrete implementation type, Name must uniquely identify the
	// class's semantics (any parameters affecting Contains must appear
	// in it): the engine's prepared-query cache keys entries by
	// concrete type plus Name.
	Name() string
	// Contains reports whether the CQ with the given tableau belongs to
	// the class.
	Contains(s *relstr.Structure) bool
	// GraphBased reports whether the class is defined through the query
	// graph G(Q) and closed under subgraphs, in which case homomorphic
	// images (quotients) of T_Q form a complete candidate space for
	// approximations (Theorem 4.1). Hypergraph-based classes return
	// false and additionally search bounded atom extensions
	// (Theorem 6.1).
	GraphBased() bool
}

// twClass is TW(k): queries whose Gaifman graph has treewidth ≤ k.
type twClass struct{ k int }

func (c twClass) Name() string { return fmt.Sprintf("TW(%d)", c.k) }
func (c twClass) Contains(s *relstr.Structure) bool {
	return tw.StructureTreewidthAtMost(s, c.k)
}
func (c twClass) GraphBased() bool { return true }

// TW returns the graph-based class of treewidth-≤ k queries.
func TW(k int) Class {
	if k < 1 {
		panic("core: TW(k) requires k ≥ 1")
	}
	return twClass{k}
}

// acClass is AC: α-acyclic queries (hypertree width 1).
type acClass struct{}

func (acClass) Name() string                      { return "AC" }
func (acClass) Contains(s *relstr.Structure) bool { return hypergraph.AcyclicStructure(s) }
func (acClass) GraphBased() bool                  { return false }

// AC returns the hypergraph-based class of acyclic queries.
func AC() Class { return acClass{} }

// htwClass is HTW(k): hypertree width ≤ k.
type htwClass struct{ k int }

func (c htwClass) Name() string { return fmt.Sprintf("HTW(%d)", c.k) }
func (c htwClass) Contains(s *relstr.Structure) bool {
	return htw.StructureAtMost(s, c.k)
}
func (c htwClass) GraphBased() bool { return false }

// HTW returns the hypergraph-based class of hypertree-width-≤ k
// queries. HTW(1) coincides with AC.
func HTW(k int) Class {
	if k < 1 {
		panic("core: HTW(k) requires k ≥ 1")
	}
	return htwClass{k}
}

// ghtwClass is GHTW(k): generalized hypertree width ≤ k.
type ghtwClass struct{ k int }

func (c ghtwClass) Name() string { return fmt.Sprintf("GHTW(%d)", c.k) }
func (c ghtwClass) Contains(s *relstr.Structure) bool {
	return htw.GHTWAtMost(hypergraph.FromStructure(s), c.k)
}
func (c ghtwClass) GraphBased() bool { return false }

// GHTW returns the hypergraph-based class of generalized-hypertree-
// width-≤ k queries.
func GHTW(k int) Class {
	if k < 1 {
		panic("core: GHTW(k) requires k ≥ 1")
	}
	return ghtwClass{k}
}

// Trivial returns the paper's Q_trivial adapted to q: a single variable
// x, one atom R(x,…,x) per relation symbol used by q, and head
// (x,…,x) with q's head arity. It belongs to every TW(k), AC and
// HTW(k), and is contained in every CQ over the same schema with the
// same head arity (Section 4.1).
func Trivial(q *cq.Query) *cq.Query {
	out := &cq.Query{Name: q.Name + "_trivial"}
	schema := q.Schema()
	var rels []string
	for r := range schema {
		rels = append(rels, r)
	}
	sort.Strings(rels)
	for _, r := range rels {
		args := make([]string, schema[r])
		for i := range args {
			args[i] = "x"
		}
		out.Atoms = append(out.Atoms, cq.Atom{Rel: r, Args: args})
	}
	for range q.Head {
		out.Head = append(out.Head, "x")
	}
	return out
}

// TrivialBipartite returns the paper's Q_triv2 for Boolean graph
// queries: E(x,y), E(y,x), whose tableau is K_2^↔ (Section 5.1.1).
func TrivialBipartite() *cq.Query {
	return cq.MustParse("Qtriv2() :- E(x,y), E(y,x)")
}

// TrivialK returns Q_triv(m) for Boolean graph queries: the query whose
// tableau is K_m^↔ (Section 5.2, with m = k+1 for TW(k)).
func TrivialK(m int) *cq.Query {
	out := &cq.Query{Name: fmt.Sprintf("Qtriv%d", m)}
	name := func(i int) string { return fmt.Sprintf("x%d", i) }
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			if i != j {
				out.Atoms = append(out.Atoms, cq.Atom{Rel: "E", Args: []string{name(i), name(j)}})
			}
		}
	}
	return out
}

// IsTrivialQuery reports whether q is equivalent to Trivial(q) — i.e.
// q's approximation carries no information beyond the schema
// (Theorem 5.1, first case).
func IsTrivialQuery(q *cq.Query) bool {
	return hom.Equivalent(q, Trivial(q))
}
