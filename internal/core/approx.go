package core

import (
	"context"
	"fmt"
	"sort"

	"cqapprox/internal/cq"
	"cqapprox/internal/cqerr"
	"cqapprox/internal/hom"
	"cqapprox/internal/relstr"
)

// Options tunes the approximation search.
type Options struct {
	// MaxVars bounds the number of variables of the input query; the
	// quotient space has Bell(n) elements, so the search is refused
	// beyond this bound rather than hanging. Default 10.
	MaxVars int

	// MaxExtraAtoms applies to hypergraph-based classes only: quotients
	// of T_Q may be extended with up to this many additional atoms over
	// the quotient's variables (plus fresh variables, see FreshVars).
	// Acyclic approximations may genuinely need extra atoms
	// (Example 6.6's Q'_3), because acyclic hypergraphs are not closed
	// under subhypergraphs. Default 1. Set 0 to search quotients only.
	MaxExtraAtoms int

	// FreshVars is the number of fresh variables each extra atom may
	// use (at most arity−1 positions of an extra atom can be fresh, per
	// Claim 6.2's renamed extension tuples). Default 0.
	FreshVars int
}

// DefaultOptions returns the documented defaults.
func DefaultOptions() Options {
	return Options{MaxVars: 10, MaxExtraAtoms: 1, FreshVars: 0}
}

// WithDefaults returns o with zero-valued fields replaced by the
// documented defaults (currently only MaxVars). It is the single
// normalization rule shared by the search entry points and the
// engine cache key.
func (o Options) WithDefaults() Options {
	if o.MaxVars == 0 {
		o.MaxVars = 10
	}
	return o
}

// Result bundles approximations with bookkeeping from the search, for
// cost reporting (Cor 4.3's single-exponential bound is about exactly
// this count).
type Result struct {
	Queries []*cq.Query // minimized approximations, one per class
	// CandidatesInspected counts the in-class candidate tableaux that
	// entered front maintenance (quotients plus extensions that passed
	// the class test).
	CandidatesInspected int
}

// ApproximationsWithStats is Approximations, additionally reporting how
// many candidates the search inspected.
func ApproximationsWithStats(q *cq.Query, c Class, opt Options) (*Result, error) {
	return ApproximationsWithStatsCtx(nil, q, c, opt)
}

// ApproximationsWithStatsCtx is ApproximationsWithStats under a
// context: the Bell-number candidate sweep polls ctx between candidates
// (and the homomorphism searches poll it internally), returning a
// cqerr.ErrCanceled-wrapped error when it expires.
func ApproximationsWithStatsCtx(ctx context.Context, q *cq.Query, c Class, opt Options) (*Result, error) {
	front, inspected, err := approxFront(ctx, q, c, opt)
	if err != nil {
		return nil, err
	}
	res := &Result{CandidatesInspected: inspected}
	for _, p := range front {
		res.Queries = append(res.Queries, queryFromPointed(q, p))
	}
	return res, nil
}

// Approximations returns all C-approximations of q up to equivalence,
// each minimized (its tableau is a core) — the paper's
// C-APPR_min(Q). For graph-based classes the result is exact and
// complete (Theorem 4.1: quotients of T_Q form a complete candidate
// space). For hypergraph-based classes the candidate space is quotients
// plus bounded atom extensions (Options.MaxExtraAtoms/FreshVars);
// results are exact approximations within that space, which covers all
// the paper's examples; raise the bounds toward Claim 6.2's
// n+(m−1)²nᵐ⁻¹ variables for completeness at exponential cost.
func Approximations(q *cq.Query, c Class, opt Options) ([]*cq.Query, error) {
	return ApproximationsCtx(nil, q, c, opt)
}

// ApproximationsCtx is Approximations under a context.
func ApproximationsCtx(ctx context.Context, q *cq.Query, c Class, opt Options) ([]*cq.Query, error) {
	front, _, err := approxFront(ctx, q, c, opt)
	if err != nil {
		return nil, err
	}
	out := make([]*cq.Query, len(front))
	for i, p := range front {
		out[i] = queryFromPointed(q, p)
	}
	return out, nil
}

// Approximate returns one C-approximation of q (minimized). It is the
// function A(Q) of Proposition 4.11.
func Approximate(q *cq.Query, c Class, opt Options) (*cq.Query, error) {
	return ApproximateCtx(nil, q, c, opt)
}

// ApproximateCtx is Approximate under a context.
func ApproximateCtx(ctx context.Context, q *cq.Query, c Class, opt Options) (*cq.Query, error) {
	front, _, err := approxFront(ctx, q, c, opt)
	if err != nil {
		return nil, err
	}
	if len(front) == 0 {
		return nil, fmt.Errorf("core: no %s-query is contained in %v: %w", c.Name(), q, cqerr.ErrNotInClass)
	}
	return queryFromPointed(q, front[0]), nil
}

// CountApproximations returns |C-APPR_min(q)| within the candidate
// space: the number of pairwise non-equivalent C-approximations.
func CountApproximations(q *cq.Query, c Class, opt Options) (int, error) {
	front, _, err := approxFront(nil, q, c, opt)
	if err != nil {
		return 0, err
	}
	return len(front), nil
}

// IsApproximation decides whether cand is a C-approximation of q,
// searching the same candidate space for a strictly better C-query
// (the DP decision problem of Section 4.3: an NP containment check plus
// a coNP no-better-witness check). Exact for graph-based classes.
func IsApproximation(q, cand *cq.Query, c Class, opt Options) (bool, error) {
	opt = opt.WithDefaults()
	if n := q.NumVars(); n > opt.MaxVars {
		return false, BudgetError(n, opt.MaxVars)
	}
	ct := cand.Tableau()
	if !c.Contains(ct.S) {
		return false, nil
	}
	if !hom.Contained(cand, q) {
		return false, nil
	}
	candP := hom.Pointed{S: ct.S, Dist: ct.Dist}
	better := false
	err := forEachCandidate(nil, q, c, opt, func(p hom.Pointed) bool {
		// cand ⊂ X ⊆ q ⟺ T_X → T_cand and T_cand ↛ T_X.
		if hom.Maps(p, candP) && !hom.Maps(candP, p) {
			better = true
			return false
		}
		return true
	})
	if err != nil {
		return false, err
	}
	return !better, nil
}

// BudgetError builds the typed over-budget error for a query with n
// variables against limit max; the engine reuses it so the message and
// sentinel stay in one place.
func BudgetError(n, max int) error {
	return fmt.Errorf("core: query has %d variables; limit is %d (raise Options.MaxVars): %w", n, max, cqerr.ErrBudgetExceeded)
}

// approxFront generates the candidate space and keeps its →-minimal
// elements (one core representative per equivalence class). A non-nil
// ctx cancels the sweep between candidates and inside the homomorphism
// searches.
func approxFront(ctx context.Context, q *cq.Query, c Class, opt Options) ([]hom.Pointed, int, error) {
	opt = opt.WithDefaults()
	if err := q.Validate(); err != nil {
		return nil, 0, err
	}
	if n := q.NumVars(); n > opt.MaxVars {
		return nil, 0, BudgetError(n, opt.MaxVars)
	}
	// Fast path: a query already in C is its own unique approximation —
	// every other candidate is contained in it, hence dominated. The
	// core of a class member stays in the class (cores are images of
	// retractions, so every covering hyperedge keeps covering its
	// image); the membership re-check below is a defensive guard.
	if tb := q.Tableau(); c.Contains(tb.S) {
		coreS, retract, err := hom.CoreCtx(ctx, tb.S, tb.Dist)
		if err != nil {
			return nil, 0, err
		}
		if c.Contains(coreS) {
			return []hom.Pointed{{S: coreS, Dist: mapDist(tb.Dist, retract)}}, 1, nil
		}
		return []hom.Pointed{{S: tb.S, Dist: tb.Dist}}, 1, nil
	}
	var front []hom.Pointed
	inspected := 0
	var searchErr error
	err := forEachCandidate(ctx, q, c, opt, func(p hom.Pointed) bool {
		inspected++
		// Core first: smaller structures make the hom checks cheap and
		// merge many equivalent candidates.
		coreS, retract, err := hom.CoreCtx(ctx, p.S, p.Dist)
		if err != nil {
			searchErr = err
			return false
		}
		cp := hom.Pointed{S: coreS, Dist: mapDist(p.Dist, retract)}
		// Front maintenance over the ⥿ preorder. The Maps searches poll
		// ctx too: they are worst-case exponential, so cancellation must
		// reach inside them, not just between candidates.
		maps := func(a, b hom.Pointed) bool {
			ok, err := hom.MapsCtx(ctx, a, b)
			if err != nil && searchErr == nil {
				searchErr = err
			}
			return ok
		}
		for _, y := range front {
			if maps(y, cp) {
				// y ⊆-better or equivalent: discard cp either way (if
				// equivalent it is a duplicate class).
				return true
			}
			if searchErr != nil {
				return false
			}
		}
		kept := front[:0]
		for _, y := range front {
			if !(maps(cp, y) && !maps(y, cp)) {
				kept = append(kept, y)
			}
			if searchErr != nil {
				return false
			}
		}
		front = append(kept, cp)
		return true
	})
	if searchErr != nil {
		return nil, 0, searchErr
	}
	if err != nil {
		return nil, 0, err
	}
	sortFront(front)
	return front, inspected, nil
}

// mapDist applies a retraction to a distinguished tuple.
func mapDist(dist []int, f map[int]int) []int {
	out := make([]int, len(dist))
	for i, d := range dist {
		out[i] = f[d]
	}
	return out
}

// sortFront orders the front deterministically (by size, then
// rendering) so results are stable across runs.
func sortFront(front []hom.Pointed) {
	sort.Slice(front, func(i, j int) bool {
		a, b := front[i], front[j]
		if a.S.NumFacts() != b.S.NumFacts() {
			return a.S.NumFacts() < b.S.NumFacts()
		}
		as := a.S.String() + relstr.Tuple(a.Dist).Key()
		bs := b.S.String() + relstr.Tuple(b.Dist).Key()
		return as < bs
	})
}

// queryFromPointed renders a pointed tableau as a minimized query named
// after q.
func queryFromPointed(q *cq.Query, p hom.Pointed) *cq.Query {
	out := cq.FromTableau(p.S, p.Dist, nil)
	out.Name = q.Name + "_approx"
	return out
}

// forEachCandidate enumerates the candidate tableaux of C-queries
// contained in q: all quotients of T_Q that belong to C, and — for
// hypergraph-based classes — quotients extended with up to
// MaxExtraAtoms extra atoms over the quotient's variables plus
// FreshVars fresh variables per atom. Every candidate is contained in q
// by construction (the quotient map is a homomorphism from T_Q).
// fn returning false stops the enumeration. A non-nil ctx is polled
// once per partition; expiry stops the enumeration and surfaces a
// cqerr.ErrCanceled-wrapped error.
func forEachCandidate(ctx context.Context, q *cq.Query, c Class, opt Options, fn func(hom.Pointed) bool) error {
	tb := q.Tableau()
	dom := tb.S.Domain()
	seen := map[string]bool{}
	var canceled error
	relstr.Partitions(dom, func(p relstr.Partition) bool {
		if err := cqerr.Check(ctx); err != nil {
			canceled = err
			return false
		}
		img := tb.S.QuotientBy(p)
		dist := make([]int, len(tb.Dist))
		for i, d := range tb.Dist {
			if r, ok := p[d]; ok {
				dist[i] = r
			} else {
				dist[i] = d
			}
		}
		key := img.String() + "|" + relstr.Tuple(dist).Key()
		inClass := false
		if !seen[key] {
			seen[key] = true
			if c.Contains(img) {
				inClass = true
				if !fn(hom.Pointed{S: img, Dist: dist}) {
					return false
				}
			}
		}
		// Hypergraph-based classes: extensions may acyclify an
		// out-of-class quotient. Extensions of in-class quotients are
		// never →-minimal (the quotient itself maps into them), so only
		// out-of-class quotients are extended.
		if !c.GraphBased() && !inClass && opt.MaxExtraAtoms > 0 {
			if !forEachExtension(img, dist, q, c, opt, seen, fn) {
				return false
			}
		}
		return true
	})
	return canceled
}

// forEachExtension enumerates class members obtained from img by adding
// 1..MaxExtraAtoms atoms. Returns false if fn stopped the enumeration.
func forEachExtension(img *relstr.Structure, dist []int, q *cq.Query, c Class, opt Options, seen map[string]bool, fn func(hom.Pointed) bool) bool {
	schema := q.Schema()
	var rels []string
	for r := range schema {
		rels = append(rels, r)
	}
	sort.Strings(rels)
	domain := img.Domain()
	freshBase := 0
	for _, e := range domain {
		if e >= freshBase {
			freshBase = e + 1
		}
	}
	// Generate the pool of candidate extra atoms: tuples over
	// domain ∪ {fresh}, canonicalised so fresh variables appear in
	// first-use order. Fresh variables are local to one atom
	// (Claim 6.2's renamed extension tuples).
	type extra struct {
		rel  string
		args []int // fresh encoded as freshBase+i
	}
	var pool []extra
	for _, r := range rels {
		arity := schema[r]
		vals := make([]int, arity)
		var gen func(pos, freshUsed int)
		gen = func(pos, freshUsed int) {
			if pos == arity {
				args := append([]int{}, vals...)
				// Skip atoms already present.
				if img.Has(r, args...) {
					return
				}
				// At least one position must touch the image domain so
				// the atom constrains the query (fully fresh atoms are
				// trivially satisfied and never minimal).
				touches := false
				for _, a := range args {
					if a < freshBase {
						touches = true
						break
					}
				}
				if touches {
					pool = append(pool, extra{rel: r, args: args})
				}
				return
			}
			for _, e := range domain {
				vals[pos] = e
				gen(pos+1, freshUsed)
			}
			// Reuse an already-introduced fresh variable or introduce
			// the next one (canonical first-use order).
			for f := 0; f <= freshUsed && f < opt.FreshVars; f++ {
				vals[pos] = freshBase + f
				nu := freshUsed
				if f == freshUsed {
					nu++
				}
				gen(pos+1, nu)
			}
		}
		gen(0, 0)
	}
	// Combinations of up to MaxExtraAtoms pool atoms. Fresh variables
	// must be disjoint across atoms: re-offset per atom slot.
	var chosen []extra
	var rec func(start int) bool
	rec = func(start int) bool {
		if len(chosen) > 0 {
			ext := img.Clone()
			offset := 0
			for _, ex := range chosen {
				args := make([]int, len(ex.args))
				for i, a := range ex.args {
					if a >= freshBase {
						args[i] = a + offset
					} else {
						args[i] = a
					}
				}
				ext.Add(ex.rel, args...)
				offset += opt.FreshVars
			}
			key := ext.String() + "|" + relstr.Tuple(dist).Key()
			if !seen[key] {
				seen[key] = true
				if c.Contains(ext) {
					if !fn(hom.Pointed{S: ext, Dist: dist}) {
						return false
					}
				}
			}
		}
		if len(chosen) == opt.MaxExtraAtoms {
			return true
		}
		for i := start; i < len(pool); i++ {
			chosen = append(chosen, pool[i])
			if !rec(i + 1) {
				chosen = chosen[:len(chosen)-1]
				return false
			}
			chosen = chosen[:len(chosen)-1]
		}
		return true
	}
	return rec(0)
}
