package core

import (
	"testing"

	"cqapprox/internal/cq"
	"cqapprox/internal/hom"
)

// Intro example Q1: the triangle query has only the trivial acyclic
// approximation Q'():-E(x,x).
func TestTriangleHasOnlyTrivialAcyclicApproximation(t *testing.T) {
	q := cq.MustParse("Q() :- E(x,y), E(y,z), E(z,x)")
	apps, err := Approximations(q, TW(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(apps) != 1 {
		t.Fatalf("approximations = %v, want exactly 1", apps)
	}
	loop := cq.MustParse("Q() :- E(x,x)")
	if !hom.Equivalent(apps[0], loop) {
		t.Fatalf("approximation = %v, want ≡ E(x,x)", apps[0])
	}
	if !IsTrivialQuery(apps[0]) {
		t.Fatal("triangle's approximation should be trivial")
	}
}

// Theorem 5.1, middle case: bipartite but unbalanced tableau → unique
// approximation Q_triv2 (tableau K_2^↔). Q3 from Section 5.1.1.
func TestBipartiteUnbalancedGivesK2(t *testing.T) {
	q := cq.MustParse("Q() :- E(x,y), E(y,z), E(z,u), E(x,u)")
	apps, err := Approximations(q, TW(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(apps) != 1 {
		t.Fatalf("approximations = %v, want exactly 1", apps)
	}
	if !hom.Equivalent(apps[0], TrivialBipartite()) {
		t.Fatalf("approximation = %v, want ≡ Q_triv2", apps[0])
	}
}

// Intro example Q2 / Example 5.7: bipartite balanced tableau with a
// unique nontrivial acyclic approximation: the path of length 4.
func TestIntroQ2PathApproximation(t *testing.T) {
	if testing.Short() {
		t.Skip("8-variable quotient space (Bell(8)=4140)")
	}
	q := cq.MustParse(`Q() :- E(x,y), E(y,z), E(z,u),
		E(x2,y2), E(y2,z2), E(z2,u2), E(x,z2), E(y,u2)`)
	apps, err := Approximations(q, TW(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(apps) != 1 {
		t.Fatalf("got %d approximations, want 1: %v", len(apps), apps)
	}
	p4 := cq.MustParse("Q() :- E(a,b), E(b,c), E(c,d), E(d,e)")
	if !hom.Equivalent(apps[0], p4) {
		t.Fatalf("approximation = %v, want ≡ P4", apps[0])
	}
	// Theorem 5.1 third case: no subgoals E(x,y),E(y,x) and nontrivial.
	if IsTrivialQuery(apps[0]) || hom.Equivalent(apps[0], TrivialBipartite()) {
		t.Fatal("approximation should be nontrivial")
	}
}

// Example 6.6: the ternary cycle query has exactly three non-equivalent
// acyclic approximations, with fewer/equal/more joins than Q.
func TestExample66ThreeAcyclicApproximations(t *testing.T) {
	q := cq.MustParse("Q() :- R(x1,x2,x3), R(x3,x4,x5), R(x5,x6,x1)")
	apps, err := Approximations(q, AC(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(apps) != 3 {
		t.Fatalf("got %d acyclic approximations, want 3: %v", len(apps), apps)
	}
	want := []*cq.Query{
		cq.MustParse("Q1() :- R(x,y,x)"),
		cq.MustParse("Q2() :- R(x1,x2,x3), R(x3,x4,x2), R(x2,x6,x1)"),
		cq.MustParse("Q3() :- R(x1,x2,x3), R(x3,x4,x5), R(x5,x6,x1), R(x1,x3,x5)"),
	}
	for _, w := range want {
		found := false
		for _, a := range apps {
			if hom.Equivalent(a, w) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("expected approximation %v not found among %v", w, apps)
		}
	}
	// Join counts: fewer (0), equal (2), more (3) than Q's 2 joins.
	joins := map[int]bool{}
	for _, a := range apps {
		joins[a.NumJoins()] = true
	}
	if !joins[0] || !joins[2] || !joins[3] {
		t.Errorf("join counts = %v, want {0,2,3}", joins)
	}
}

// The intro's nontrivial ternary example: Q'():-R(x,u,y),R(y,v,u),
// R(u,w,x) is one of the acyclic approximations of the ternary cycle.
func TestIntroTernaryApproximation(t *testing.T) {
	q := cq.MustParse("Q() :- R(x,u,y), R(y,v,z), R(z,w,x)")
	intro := cq.MustParse("Q'() :- R(x,u,y), R(y,v,u), R(u,w,x)")
	ok, err := IsApproximation(q, intro, AC(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("%v should be an acyclic approximation of %v", intro, q)
	}
}

// Theorem 5.8: the non-Boolean triangle query's acyclic approximations
// all contain a loop subgoal; the paper's Q'(x,y) is one of them.
func TestTheorem58NonBoolean(t *testing.T) {
	q := cq.MustParse("Q(x,y) :- E(x,y), E(y,z), E(z,x)")
	apps, err := Approximations(q, TW(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(apps) == 0 {
		t.Fatal("no approximations")
	}
	for _, a := range apps {
		hasLoop := false
		for _, at := range a.Atoms {
			if at.Args[0] == at.Args[1] {
				hasLoop = true
			}
		}
		if !hasLoop {
			t.Errorf("approximation %v has no loop subgoal (tableau not bipartite)", a)
		}
	}
	paper := cq.MustParse("Q'(x,y) :- E(x,y), E(y,x), E(x,x)")
	ok, err := IsApproximation(q, paper, TW(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("the paper's %v should be an acyclic approximation", paper)
	}
}

// Proposition 5.9: the oriented 4-cycle with three free variables has
// minimized acyclic approximations with exactly as many joins as Q (3).
func TestProp59SameJoinCount(t *testing.T) {
	q := cq.MustParse("Q(x1,x2,x3) :- E(x1,x2), E(x2,x3), E(x3,x4), E(x4,x1)")
	cmp, err := CompareJoins(q, TW(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.QueryJoins != 3 {
		t.Fatalf("query joins = %d, want 3 (minimized)", cmp.QueryJoins)
	}
	if len(cmp.Approx) == 0 {
		t.Fatal("no approximations")
	}
	for i, j := range cmp.Joins {
		if j != 3 {
			t.Errorf("approximation %v has %d joins, want 3", cmp.Approx[i], j)
		}
	}
	// The paper's Q0(x1,x2,x3):-E(x1,x2),E(x2,x1),E(x2,x3),E(x3,x2) is
	// one of them.
	q0 := cq.MustParse("Q0(x1,x2,x3) :- E(x1,x2), E(x2,x1), E(x2,x3), E(x3,x2)")
	ok, err := IsApproximation(q, q0, TW(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("%v should be an acyclic approximation of %v", q0, q)
	}
}

// Corollary 5.3: minimized acyclic approximations of cyclic Boolean
// graph queries have strictly fewer joins.
func TestCor53FewerJoins(t *testing.T) {
	for _, src := range []string{
		"Q() :- E(x,y), E(y,z), E(z,x)",
		"Q() :- E(x,y), E(y,z), E(z,u), E(u,x)",
		"Q() :- E(x,y), E(y,z), E(z,u), E(x,u)",
		"Q() :- E(a,b), E(b,c), E(c,d), E(d,e), E(e,a)",
	} {
		q := cq.MustParse(src)
		cmp, err := CompareJoins(q, TW(1), Options{})
		if err != nil {
			t.Fatal(err)
		}
		for i, j := range cmp.Joins {
			if j >= cmp.QueryJoins {
				t.Errorf("%s: approximation %v has %d joins, not fewer than %d",
					src, cmp.Approx[i], j, cmp.QueryJoins)
			}
		}
	}
}

// A query already in the class is its own unique approximation.
func TestInClassQueryIsItsOwnApproximation(t *testing.T) {
	q := cq.MustParse("Q(x) :- E(x,y), E(y,z)")
	for _, c := range []Class{TW(1), TW(2), AC(), HTW(1), HTW(2)} {
		apps, err := Approximations(q, c, DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if len(apps) != 1 || !hom.Equivalent(apps[0], q) {
			t.Errorf("%s: approximations = %v, want [≡ q]", c.Name(), apps)
		}
	}
}

// The triangle is in TW(2), so its TW(2)-approximation is itself
// (cf. Corollary 5.11 with k=2: C3 is 3-colorable).
func TestTriangleTW2ApproximationIsItself(t *testing.T) {
	q := cq.MustParse("Q() :- E(x,y), E(y,z), E(z,x)")
	apps, err := Approximations(q, TW(2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(apps) != 1 || !hom.Equivalent(apps[0], q) {
		t.Fatalf("TW(2) approximations of C3 = %v, want itself", apps)
	}
}

// Proposition 5.15: the almost-triangle ternary query has a strong
// treewidth approximation with the same number of joins.
func TestProp515StrongTreewidthApproximation(t *testing.T) {
	q := cq.MustParse("Q() :- R(x1,x2,x3), R(x2,x1,x4), R(x4,x3,x1)")
	approx := cq.MustParse("Q'() :- R(x,y,y), R(y,x,y), R(y,y,x)")
	ok, err := IsApproximation(q, approx, TW(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("%v should be a TW(1)-approximation of %v", approx, q)
	}
	if hom.Minimize(approx).NumJoins() != hom.Minimize(q).NumJoins() {
		t.Fatal("join counts should match (Prop 5.14/5.15)")
	}
}

// IsApproximation rejects non-approximations: the trivial query is
// dominated whenever a nontrivial approximation exists.
func TestIsApproximationRejectsDominated(t *testing.T) {
	q := cq.MustParse("Q() :- R(x1,x2,x3), R(x3,x4,x5), R(x5,x6,x1)")
	triv := Trivial(q)
	ok, err := IsApproximation(q, triv, AC(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("trivial query should not be an acyclic approximation here (Q'1 dominates it)")
	}
	// A query not contained in q is never an approximation.
	unrelated := cq.MustParse("Q() :- R(a,a,a), R(a,b,a)")
	_ = unrelated
	// A cyclic candidate is not in the class.
	ok, err = IsApproximation(q, q, AC(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("q itself is cyclic, cannot be its own acyclic approximation")
	}
}

// Theorem 4.1(2): every graph-based approximation has at most as many
// joins as (the minimization of) Q.
func TestApproximationJoinBoundGraphBased(t *testing.T) {
	queries := []string{
		"Q() :- E(x,y), E(y,z), E(z,x)",
		"Q(x) :- E(x,y), E(y,z), E(z,x), E(x,w)",
		"Q() :- E(a,b), E(b,c), E(c,a), E(c,d)",
	}
	for _, src := range queries {
		q := cq.MustParse(src)
		apps, err := Approximations(q, TW(1), Options{})
		if err != nil {
			t.Fatal(err)
		}
		bound := q.NumJoins()
		for _, a := range apps {
			if a.NumJoins() > bound {
				t.Errorf("%s: approximation %v exceeds join bound %d", src, a, bound)
			}
		}
	}
}

// Every approximation is (a) in the class, (b) contained in q,
// (c) minimized, and (d) pairwise non-equivalent.
func TestApproximationInvariants(t *testing.T) {
	queries := []string{
		"Q() :- E(x,y), E(y,z), E(z,x)",
		"Q(x1,x2,x3) :- E(x1,x2), E(x2,x3), E(x3,x4), E(x4,x1)",
		"Q() :- R(x1,x2,x3), R(x3,x4,x5), R(x5,x6,x1)",
		"Q(x) :- E(x,y), E(y,z), E(z,x)",
	}
	classes := []Class{TW(1), TW(2), AC()}
	for _, src := range queries {
		q := cq.MustParse(src)
		for _, c := range classes {
			apps, err := Approximations(q, c, DefaultOptions())
			if err != nil {
				t.Fatalf("%s/%s: %v", src, c.Name(), err)
			}
			if len(apps) == 0 {
				t.Fatalf("%s/%s: no approximations (Cor 4.2 guarantees existence)", src, c.Name())
			}
			for i, a := range apps {
				tb := a.Tableau()
				if !c.Contains(tb.S) {
					t.Errorf("%s/%s: %v not in class", src, c.Name(), a)
				}
				if !hom.Contained(a, q) {
					t.Errorf("%s/%s: %v not contained in q", src, c.Name(), a)
				}
				if !hom.IsMinimized(a) {
					t.Errorf("%s/%s: %v not minimized", src, c.Name(), a)
				}
				for j := i + 1; j < len(apps); j++ {
					if hom.Equivalent(a, apps[j]) {
						t.Errorf("%s/%s: equivalent approximations %v and %v", src, c.Name(), a, apps[j])
					}
				}
			}
		}
	}
}

// MaxVars guard refuses oversized inputs instead of hanging.
func TestMaxVarsGuard(t *testing.T) {
	q := cq.MustParse("Q() :- E(a,b), E(b,c), E(c,d), E(d,e), E(e,f), E(f,g), E(g,h), E(h,i), E(i,j), E(j,k), E(k,a)")
	if _, err := Approximations(q, TW(1), Options{MaxVars: 5}); err == nil {
		t.Fatal("expected MaxVars error")
	}
	if _, err := Approximate(q, TW(1), Options{MaxVars: 5}); err == nil {
		t.Fatal("expected MaxVars error")
	}
	if _, err := CountApproximations(q, TW(1), Options{MaxVars: 5}); err == nil {
		t.Fatal("expected MaxVars error")
	}
	if _, err := IsApproximation(q, q, TW(1), Options{MaxVars: 5}); err == nil {
		t.Fatal("expected MaxVars error")
	}
}

// ApproximationsWithStats reports candidate counts that grow with
// Bell(n) — the measurable content of Cor 4.3's single-exponential
// bound — and agrees with Approximations on the result set.
func TestApproximationsWithStats(t *testing.T) {
	prev := 0
	for n := 3; n <= 5; n++ {
		q := cq.MustParse(map[int]string{
			3: "Q() :- E(x,y), E(y,z), E(z,x)",
			4: "Q() :- E(x,y), E(y,z), E(z,u), E(u,x)",
			5: "Q() :- E(a,b), E(b,c), E(c,d), E(d,e), E(e,a)",
		}[n])
		res, err := ApproximationsWithStats(q, TW(1), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.CandidatesInspected <= prev {
			t.Fatalf("n=%d: inspected %d, want more than %d (growth with Bell(n))",
				n, res.CandidatesInspected, prev)
		}
		prev = res.CandidatesInspected
		apps, err := Approximations(q, TW(1), Options{})
		if err != nil || len(apps) != len(res.Queries) {
			t.Fatalf("stats result disagrees with Approximations: %d vs %d", len(res.Queries), len(apps))
		}
	}
	// The fast path reports a single inspected candidate.
	inClass := cq.MustParse("Q() :- E(x,y), E(y,z)")
	res, err := ApproximationsWithStats(inClass, TW(1), Options{})
	if err != nil || res.CandidatesInspected != 1 {
		t.Fatalf("fast path inspected = %d (err %v), want 1", res.CandidatesInspected, err)
	}
}

// Approximate agrees with Approximations' first element and satisfies
// Prop 4.11's oracle contract.
func TestApproximateSingle(t *testing.T) {
	q := cq.MustParse("Q() :- E(x,y), E(y,z), E(z,x)")
	a, err := Approximate(q, TW(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := IsApproximation(q, a, TW(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("Approximate returned non-approximation %v", a)
	}
}
