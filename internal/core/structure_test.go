package core

import (
	"testing"

	"cqapprox/internal/cq"
	"cqapprox/internal/hom"
)

func TestClassifyGraphTableau(t *testing.T) {
	cases := []struct {
		src  string
		want TableauKind
	}{
		{"Q() :- E(x,y), E(y,z), E(z,x)", NonBipartite},
		{"Q() :- E(x,x)", NonBipartite},
		{"Q() :- E(x,y), E(y,z), E(z,u), E(x,u)", BipartiteUnbalanced},
		{"Q() :- E(x,y), E(y,z), E(z,u), E(u,v), E(v,w)", BipartiteBalanced},
		// Oriented 4-cycle with net length 0.
		{"Q() :- E(a,b), E(c,b), E(c,d), E(a,d)", BipartiteBalanced},
		// 5-cycle: odd, non-bipartite.
		{"Q() :- E(a,b), E(b,c), E(c,d), E(d,e), E(e,a)", NonBipartite},
	}
	for _, c := range cases {
		q := cq.MustParse(c.src)
		got, err := ClassifyGraphTableau(q)
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		if got != c.want {
			t.Errorf("Classify(%s) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestClassifyRejectsNonGraphQueries(t *testing.T) {
	q := cq.MustParse("Q() :- R(x,y,z)")
	if _, err := ClassifyGraphTableau(q); err == nil {
		t.Fatal("ternary query should be rejected")
	}
	q2 := cq.MustParse("Q() :- E(x,y), F(y,x)")
	if _, err := ClassifyGraphTableau(q2); err == nil {
		t.Fatal("two-relation query should be rejected")
	}
}

func TestClassifyWorksWithOtherEdgeNames(t *testing.T) {
	q := cq.MustParse("Q() :- Edge(x,y), Edge(y,z), Edge(z,x)")
	kind, err := ClassifyGraphTableau(q)
	if err != nil {
		t.Fatal(err)
	}
	if kind != NonBipartite {
		t.Fatalf("kind = %v", kind)
	}
}

// Theorem 5.1 cross-check: the trichotomy classification matches the
// computed approximations.
func TestTrichotomyMatchesComputedApproximations(t *testing.T) {
	cases := []string{
		"Q() :- E(x,y), E(y,z), E(z,x)",
		"Q() :- E(x,y), E(y,z), E(z,u), E(x,u)",
		"Q() :- E(a,b), E(b,c), E(c,d), E(d,e), E(e,a)",
		"Q() :- E(a,b), E(c,b), E(c,d), E(a,d), E(d,e)",
	}
	for _, src := range cases {
		q := cq.MustParse(src)
		kind, err := ClassifyGraphTableau(q)
		if err != nil {
			t.Fatal(err)
		}
		cyclic, err := IsCyclicGraphQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		if !cyclic {
			continue
		}
		apps, err := Approximations(q, TW(1), Options{})
		if err != nil {
			t.Fatal(err)
		}
		switch kind {
		case NonBipartite:
			if len(apps) != 1 || !IsTrivialQuery(apps[0]) {
				t.Errorf("%s: non-bipartite should give only Q_trivial, got %v", src, apps)
			}
		case BipartiteUnbalanced:
			if len(apps) != 1 || !hom.Equivalent(apps[0], TrivialBipartite()) {
				t.Errorf("%s: bipartite-unbalanced should give only Q_triv2, got %v", src, apps)
			}
		case BipartiteBalanced:
			for _, a := range apps {
				if IsTrivialQuery(a) {
					t.Errorf("%s: balanced case yielded trivial approximation %v", src, a)
				}
				// No pair E(x,y), E(y,x).
				tb := a.Tableau()
				for _, tpl := range tb.S.Tuples("E") {
					if tpl[0] != tpl[1] && tb.S.Has("E", tpl[1], tpl[0]) {
						t.Errorf("%s: approximation %v contains a 2-cycle", src, a)
					}
				}
			}
		}
	}
}

func TestIsCyclicGraphQuery(t *testing.T) {
	cyc, err := IsCyclicGraphQuery(cq.MustParse("Q() :- E(x,y), E(y,z), E(z,x)"))
	if err != nil || !cyc {
		t.Fatalf("triangle should be cyclic (err=%v)", err)
	}
	cyc, err = IsCyclicGraphQuery(cq.MustParse("Q() :- E(x,y), E(y,x)"))
	if err != nil || cyc {
		t.Fatalf("2-cycle is forest-like (err=%v)", err)
	}
}

// Theorems 5.8/5.10 dichotomy: loop-free approximation iff
// (k+1)-colorable.
func TestHasLoopFreeTWkApproximation(t *testing.T) {
	tri := cq.MustParse("Q(x,y) :- E(x,y), E(y,z), E(z,x)")
	ok, err := HasLoopFreeTWkApproximation(tri, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("triangle is not 2-colorable: no loop-free TW(1) approximation")
	}
	ok, err = HasLoopFreeTWkApproximation(tri, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("triangle is 3-colorable: loop-free TW(2) approximation exists")
	}
	// Cross-check with the engine for k=1: all approximations of the
	// non-Boolean triangle have loops (verified in approx_test), while a
	// bipartite cyclic query has a loop-free one.
	c4 := cq.MustParse("Q(x) :- E(x,y), E(y,z), E(z,u), E(u,x)")
	ok, err = HasLoopFreeTWkApproximation(c4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("C4 is bipartite: loop-free TW(1) approximation exists")
	}
	apps, err := Approximations(c4, TW(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	loopFree := false
	for _, a := range apps {
		has := false
		for _, at := range a.Atoms {
			if at.Args[0] == at.Args[1] {
				has = true
			}
		}
		if !has {
			loopFree = true
		}
	}
	if !loopFree {
		t.Fatalf("no loop-free approximation among %v", apps)
	}
}

// Corollary 5.11 for Boolean queries.
func TestNontrivialTWkApproximationExists(t *testing.T) {
	tri := cq.MustParse("Q() :- E(x,y), E(y,z), E(z,x)")
	ok, err := NontrivialTWkApproximationExists(tri, 1)
	if err != nil || ok {
		t.Fatalf("C3 has only trivial TW(1)-approximations (ok=%v err=%v)", ok, err)
	}
	ok, err = NontrivialTWkApproximationExists(tri, 2)
	if err != nil || !ok {
		t.Fatalf("C3 has a nontrivial TW(2)-approximation (ok=%v err=%v)", ok, err)
	}
	if _, err := NontrivialTWkApproximationExists(cq.MustParse("Q(x) :- E(x,y)"), 1); err == nil {
		t.Fatal("non-Boolean queries should be rejected")
	}
}

// Proposition 4.11: the approximation oracle decides TW(k)-equivalence.
func TestEquivalentToClass(t *testing.T) {
	cases := []struct {
		src  string
		c    Class
		want bool
	}{
		{"Q() :- E(x,y), E(y,z), E(z,x)", TW(1), false},
		{"Q() :- E(x,y), E(y,z)", TW(1), true},
		// Redundant cyclic-looking query that minimizes into TW(1):
		// E(x,y),E(x,z) core is a single edge.
		{"Q() :- E(x,y), E(x,z)", TW(1), true},
		{"Q() :- E(x,y), E(y,z), E(z,x)", TW(2), true},
		// The 4-cycle query is equivalent to no TW(1) query.
		{"Q() :- E(x,y), E(y,z), E(z,u), E(u,x)", TW(1), false},
	}
	for _, c := range cases {
		q := cq.MustParse(c.src)
		got, err := EquivalentToClass(q, c.c, DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		if got != c.want {
			t.Errorf("EquivalentToClass(%s, %s) = %v, want %v", c.src, c.c.Name(), got, c.want)
		}
	}
}

func TestTrivialQueryConstruction(t *testing.T) {
	q := cq.MustParse("Q(x,y) :- E(x,y), R(x,y,z)")
	triv := Trivial(q)
	if len(triv.Head) != 2 || triv.Head[0] != triv.Head[1] {
		t.Fatalf("trivial head = %v", triv.Head)
	}
	if len(triv.Atoms) != 2 {
		t.Fatalf("trivial atoms = %v", triv.Atoms)
	}
	if !hom.Contained(triv, q) {
		t.Fatal("Q_trivial must be contained in q")
	}
	tb := triv.Tableau()
	for _, c := range []Class{TW(1), AC(), HTW(1), HTW(2)} {
		if !c.Contains(tb.S) {
			t.Errorf("Q_trivial not in %s", c.Name())
		}
	}
}

func TestTrivialK(t *testing.T) {
	k3 := TrivialK(3)
	if len(k3.Atoms) != 6 {
		t.Fatalf("K3 atoms = %d", len(k3.Atoms))
	}
	tb := k3.Tableau()
	if !TW(2).Contains(tb.S) {
		t.Fatal("K3↔ has treewidth 2")
	}
	if TW(1).Contains(tb.S) {
		t.Fatal("K3↔ is not treewidth 1")
	}
}

func TestClassNames(t *testing.T) {
	if TW(1).Name() != "TW(1)" || AC().Name() != "AC" ||
		HTW(2).Name() != "HTW(2)" || GHTW(3).Name() != "GHTW(3)" {
		t.Fatal("class names wrong")
	}
	if !TW(1).GraphBased() || AC().GraphBased() || HTW(1).GraphBased() || GHTW(1).GraphBased() {
		t.Fatal("GraphBased flags wrong")
	}
}

func TestACAndHTW1Agree(t *testing.T) {
	for _, src := range []string{
		"Q() :- E(x,y), E(y,z)",
		"Q() :- E(x,y), E(y,z), E(z,x)",
		"Q() :- R(x,u,y), R(y,v,z), R(z,w,x)",
		"Q() :- R(x,y,z), S(z,w)",
	} {
		tb := cq.MustParse(src).Tableau()
		if AC().Contains(tb.S) != HTW(1).Contains(tb.S) {
			t.Errorf("%s: AC and HTW(1) disagree", src)
		}
	}
}
