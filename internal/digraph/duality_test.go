package digraph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cqapprox/internal/hom"
	"cqapprox/internal/relstr"
)

func TestTransitiveTournamentShape(t *testing.T) {
	tt4 := TransitiveTournament(4)
	if tt4.DomainSize() != 4 || tt4.NumFacts() != 6 {
		t.Fatalf("TT4 = %v", tt4)
	}
	if !IsForestLike(TransitiveTournament(2)) {
		t.Fatal("TT2 is a single edge")
	}
	if HasLoop(tt4) {
		t.Fatal("tournaments have no loops")
	}
}

// Gallai–Hasse–Roy–Vitaver as a homomorphism duality: for every
// digraph G, exactly one of G → TT_k and P_k → G holds.
func TestQuickGHRVDuality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		g := New()
		for i := 0; i < n+rng.Intn(4); i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			g.Add(EdgeRel, a, b)
		}
		for k := 2; k <= 4; k++ {
			toDual := hom.Exists(g, TransitiveTournament(k), nil)
			fromPath := hom.Exists(DirectedPath(k), g, nil)
			if toDual == fromPath {
				return false // must be exactly one
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestProductMapsToFactors(t *testing.T) {
	a := DirectedCycle(3)
	b := DirectedPath(4)
	p, _ := Product(a, b)
	if !hom.Exists(p, a, nil) || !hom.Exists(p, b, nil) {
		t.Fatal("product must map to both factors")
	}
}

// Product is the categorical product: C → A×B iff C → A and C → B.
func TestQuickProductUniversalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomDigraph(rng, 3, 4)
		b := randomDigraph(rng, 3, 4)
		c := randomDigraph(rng, 3, 3)
		p, _ := Product(a, b)
		lhs := hom.Exists(c, p, nil)
		rhs := hom.Exists(c, a, nil) && hom.Exists(c, b, nil)
		return lhs == rhs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func randomDigraph(rng *rand.Rand, n, edges int) *relstr.Structure {
	g := New()
	for i := 0; i < edges; i++ {
		g.Add(EdgeRel, rng.Intn(n), rng.Intn(n))
	}
	return g
}
