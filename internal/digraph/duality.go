package digraph

import "cqapprox/internal/relstr"

// This file implements the homomorphism-duality machinery behind
// Proposition 5.6 (tight approximations): transitive tournaments are
// the duals of directed paths (Gallai–Hasse–Roy–Vitaver), categorical
// products give the gap pairs of Nešetřil–Tardif, and the core of
// dual × path is the paper's gap witness G_k.

// TransitiveTournament returns TT_k: vertices 0..k−1 with an edge i→j
// whenever i < j. By the Gallai–Hasse–Roy–Vitaver theorem, TT_k is the
// dual of the directed path P_k with k edges (k+1 vertices): for every
// digraph G, exactly one of G → TT_k and P_k → G holds.
func TransitiveTournament(k int) *relstr.Structure {
	s := New()
	for i := 0; i < k; i++ {
		s.AddElement(i)
		for j := i + 1; j < k; j++ {
			s.Add(EdgeRel, i, j)
		}
	}
	return s
}

// Product returns the categorical (tensor) product a × b of two
// digraphs: vertices are pairs, with an edge (u,v) → (u',v') iff
// u → u' in a and v → v' in b. The product maps homomorphically to
// both factors; Nešetřil–Tardif use dual × path products to exhibit
// gaps in the homomorphism lattice. The pair (u, v) is encoded as
// u·|V(b)|-index + index(v); the encoding map is returned.
func Product(a, b *relstr.Structure) (*relstr.Structure, map[[2]int]int) {
	bdom := b.Domain()
	bIdx := make(map[int]int, len(bdom))
	for i, v := range bdom {
		bIdx[v] = i
	}
	code := map[[2]int]int{}
	next := 0
	id := func(u, v int) int {
		key := [2]int{u, v}
		if c, ok := code[key]; ok {
			return c
		}
		code[key] = next
		next++
		return code[key]
	}
	out := New()
	for _, ea := range a.Tuples(EdgeRel) {
		for _, eb := range b.Tuples(EdgeRel) {
			out.Add(EdgeRel, id(ea[0], eb[0]), id(ea[1], eb[1]))
		}
	}
	return out, code
}
