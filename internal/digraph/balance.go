package digraph

import "cqapprox/internal/relstr"

// Levels computes, for a balanced digraph, the level of every node:
// the maximum net length of an oriented path terminating at the node
// (Hell–Nešetřil; used in Prop 4.4 and Theorem 4.12 of the paper). It
// returns ok=false when the digraph is not balanced (some oriented
// cycle has non-zero net length), in which case levels are undefined.
//
// Within each connected component, a potential φ with φ(v) = φ(u)+1 for
// every edge u→v exists iff the component is balanced; the level is
// φ normalised so the component minimum is 0.
func Levels(s *relstr.Structure) (map[int]int, bool) {
	phi := map[int]int{}
	// Directed adjacency with signs over the underlying graph.
	type arc struct {
		to    int
		delta int
	}
	adj := map[int][]arc{}
	for _, t := range s.Tuples(EdgeRel) {
		if t[0] == t[1] {
			return nil, false // a loop is an unbalanced cycle of net length 1
		}
		adj[t[0]] = append(adj[t[0]], arc{t[1], +1})
		adj[t[1]] = append(adj[t[1]], arc{t[0], -1})
	}
	for _, start := range s.Domain() {
		if _, done := phi[start]; done {
			continue
		}
		phi[start] = 0
		queue := []int{start}
		comp := []int{start}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, a := range adj[v] {
				want := phi[v] + a.delta
				if got, done := phi[a.to]; done {
					if got != want {
						return nil, false
					}
					continue
				}
				phi[a.to] = want
				comp = append(comp, a.to)
				queue = append(queue, a.to)
			}
		}
		min := phi[start]
		for _, v := range comp {
			if phi[v] < min {
				min = phi[v]
			}
		}
		for _, v := range comp {
			phi[v] -= min
		}
	}
	return phi, true
}

// IsBalanced reports whether every oriented cycle of s has net length
// zero. Equivalently (Hell–Nešetřil), s is homomorphic to a directed
// path.
func IsBalanced(s *relstr.Structure) bool {
	_, ok := Levels(s)
	return ok
}

// Height returns the height of a balanced digraph: the maximum level.
// It panics if s is not balanced.
func Height(s *relstr.Structure) int {
	lv, ok := Levels(s)
	if !ok {
		panic("digraph: Height of unbalanced digraph")
	}
	h := 0
	for _, l := range lv {
		if l > h {
			h = l
		}
	}
	return h
}

// LevelOf returns the level of node v (panics if unbalanced).
func LevelOf(s *relstr.Structure, v int) int {
	lv, ok := Levels(s)
	if !ok {
		panic("digraph: LevelOf on unbalanced digraph")
	}
	return lv[v]
}
