package digraph

import (
	"cqapprox/internal/hom"
	"cqapprox/internal/relstr"
)

// LevelRestriction builds, for connected balanced digraphs a and b of
// equal height, the candidate restriction "a node of level ℓ may only
// map to nodes of level ℓ" — sound by Lemma 4.5 of the paper (any
// homomorphism between balanced digraphs of the same height preserves
// levels; connectivity of a makes the component-wise statement apply).
// ok=false when the restriction does not apply.
func LevelRestriction(a, b *relstr.Structure) (map[int][]int, bool) {
	if !IsConnected(a) {
		return nil, false
	}
	la, oka := Levels(a)
	lb, okb := Levels(b)
	if !oka || !okb {
		return nil, false
	}
	ha, hb := 0, 0
	for _, l := range la {
		if l > ha {
			ha = l
		}
	}
	for _, l := range lb {
		if l > hb {
			hb = l
		}
	}
	if ha != hb {
		return nil, false
	}
	byLevel := map[int][]int{}
	for v, l := range lb {
		byLevel[l] = append(byLevel[l], v)
	}
	allowed := map[int][]int{}
	for v, l := range la {
		allowed[v] = byLevel[l]
	}
	return allowed, true
}

// ExistsHomLeveled reports a → b, exploiting level preservation when it
// applies (Lemma 4.5) and falling back to the unrestricted search
// otherwise. Use it for the paper's large balanced gadgets, where the
// restriction collapses the search space.
func ExistsHomLeveled(a, b *relstr.Structure) bool {
	if allowed, ok := LevelRestriction(a, b); ok {
		return hom.ExistsRestricted(a, b, nil, allowed)
	}
	return hom.Exists(a, b, nil)
}

// IsCoreBalanced decides core-ness of a connected balanced digraph,
// restricting endomorphism candidates to equal levels (sound because
// every endomorphism of a balanced digraph preserves levels). It falls
// back to the generic check when g is not balanced or not connected.
func IsCoreBalanced(g *relstr.Structure) bool {
	lv, ok := Levels(g)
	if !ok || !IsConnected(g) {
		return hom.IsCore(g, nil)
	}
	byLevel := map[int][]int{}
	for v, l := range lv {
		byLevel[l] = append(byLevel[l], v)
	}
	for _, v := range g.Domain() {
		sub := g.Without(v)
		allowed := map[int][]int{}
		for _, e := range g.Domain() {
			var list []int
			for _, w := range byLevel[lv[e]] {
				if w != v {
					list = append(list, w)
				}
			}
			allowed[e] = list
		}
		if hom.ExistsRestricted(g, sub, nil, allowed) {
			return false
		}
	}
	return true
}
