// Package digraph provides the directed-graph machinery used throughout
// Section 5 of the paper: oriented paths and cycles written as
// {0,1}-strings, balancedness, levels and height of balanced digraphs
// (Hell–Nešetřil), bipartiteness, k-colorability, and the acyclicity
// notion relevant to TW(1) queries over graphs (no oriented cycles of
// length ≥ 3, i.e. the underlying simple graph is a forest; loops and
// 2-cycles are allowed).
//
// A digraph is a relstr.Structure over the single binary relation "E",
// so it interoperates directly with the homomorphism engine.
package digraph

import (
	"sort"

	"cqapprox/internal/relstr"
)

// EdgeRel is the relation symbol used for digraph edges.
const EdgeRel = "E"

// New returns an empty digraph (with the edge relation declared).
func New() *relstr.Structure {
	s := relstr.New()
	s.Declare(EdgeRel, 2)
	return s
}

// FromEdges builds a digraph from the given directed edges.
func FromEdges(edges ...[2]int) *relstr.Structure {
	s := New()
	for _, e := range edges {
		s.Add(EdgeRel, e[0], e[1])
	}
	return s
}

// AddEdge inserts the edge u→v.
func AddEdge(s *relstr.Structure, u, v int) { s.Add(EdgeRel, u, v) }

// Edges returns the edges of s in insertion order.
func Edges(s *relstr.Structure) [][2]int {
	var out [][2]int
	for _, t := range s.Tuples(EdgeRel) {
		out = append(out, [2]int{t[0], t[1]})
	}
	return out
}

// HasLoop reports whether s has an edge v→v.
func HasLoop(s *relstr.Structure) bool {
	for _, t := range s.Tuples(EdgeRel) {
		if t[0] == t[1] {
			return true
		}
	}
	return false
}

// DirectedPath returns the directed path P_k: 0→1→…→k (k edges).
func DirectedPath(k int) *relstr.Structure {
	s := New()
	for i := 0; i < k; i++ {
		s.Add(EdgeRel, i, i+1)
	}
	return s
}

// DirectedCycle returns the directed cycle on n ≥ 1 nodes.
func DirectedCycle(n int) *relstr.Structure {
	s := New()
	for i := 0; i < n; i++ {
		s.Add(EdgeRel, i, (i+1)%n)
	}
	return s
}

// CompleteDigraph returns K_m^↔: m nodes with edges in both directions
// between every pair of distinct nodes (no loops).
func CompleteDigraph(m int) *relstr.Structure {
	s := New()
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			if i != j {
				s.Add(EdgeRel, i, j)
			}
		}
	}
	return s
}

// SymmetricClosure returns s plus the reverse of every edge.
func SymmetricClosure(s *relstr.Structure) *relstr.Structure {
	out := s.Clone()
	for _, t := range s.Tuples(EdgeRel) {
		out.Add(EdgeRel, t[1], t[0])
	}
	return out
}

// Loop returns the single-node digraph with a loop (K_1^loop), the
// tableau of the trivial query over graphs.
func Loop() *relstr.Structure {
	s := New()
	s.Add(EdgeRel, 0, 0)
	return s
}

// adjacency returns the underlying simple undirected adjacency
// (loops excluded, parallel/antiparallel edges merged).
func adjacency(s *relstr.Structure) map[int]map[int]bool {
	adj := map[int]map[int]bool{}
	for _, e := range s.Domain() {
		adj[e] = map[int]bool{}
	}
	for _, t := range s.Tuples(EdgeRel) {
		if t[0] == t[1] {
			continue
		}
		adj[t[0]][t[1]] = true
		adj[t[1]][t[0]] = true
	}
	return adj
}

// Components returns the connected components of the underlying
// undirected graph (isolated elements included), each sorted, ordered
// by smallest element.
func Components(s *relstr.Structure) [][]int {
	adj := adjacency(s)
	seen := map[int]bool{}
	var comps [][]int
	dom := s.Domain()
	for _, start := range dom {
		if seen[start] {
			continue
		}
		var comp []int
		stack := []int{start}
		seen[start] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, v)
			for w := range adj[v] {
				if !seen[w] {
					seen[w] = true
					stack = append(stack, w)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// IsConnected reports whether the underlying undirected graph is
// connected (or empty).
func IsConnected(s *relstr.Structure) bool { return len(Components(s)) <= 1 }

// IsBipartite reports whether s is 2-colorable, i.e. s → K_2^↔.
// A digraph with a loop is not bipartite.
func IsBipartite(s *relstr.Structure) bool {
	if HasLoop(s) {
		return false
	}
	adj := adjacency(s)
	color := map[int]int{}
	for _, start := range s.Domain() {
		if _, done := color[start]; done {
			continue
		}
		color[start] = 0
		queue := []int{start}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for w := range adj[v] {
				if c, done := color[w]; done {
					if c == color[v] {
						return false
					}
					continue
				}
				color[w] = 1 - color[v]
				queue = append(queue, w)
			}
		}
	}
	return true
}

// IsKColorable reports whether the underlying simple graph of s is
// k-colorable. Digraphs with loops are never k-colorable. The check is
// exact (backtracking on the underlying graph), so it is exponential in
// the worst case; tableaux are small.
func IsKColorable(s *relstr.Structure, k int) bool {
	if k < 1 {
		return false
	}
	if HasLoop(s) {
		return false
	}
	adj := adjacency(s)
	dom := s.Domain()
	// Order by degree descending for better pruning.
	sort.Slice(dom, func(i, j int) bool { return len(adj[dom[i]]) > len(adj[dom[j]]) })
	color := map[int]int{}
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(dom) {
			return true
		}
		v := dom[i]
		used := map[int]bool{}
		for w := range adj[v] {
			if c, ok := color[w]; ok {
				used[c] = true
			}
		}
		// Symmetry breaking: first vertex uses color 0, and each vertex
		// may use at most one never-before-used color.
		maxSoFar := -1
		for _, u := range dom[:i] {
			if c := color[u]; c > maxSoFar {
				maxSoFar = c
			}
		}
		limit := maxSoFar + 1
		if limit >= k {
			limit = k - 1
		}
		for c := 0; c <= limit; c++ {
			if used[c] {
				continue
			}
			color[v] = c
			if rec(i + 1) {
				return true
			}
			delete(color, v)
		}
		return false
	}
	return rec(0)
}

// IsForestLike reports whether s is "acyclic" in the sense relevant to
// TW(1) queries over graphs: no oriented cycles of length 3 or more.
// Equivalently, the underlying simple undirected graph (loops dropped,
// parallel and antiparallel edges merged) is a forest. Loops and
// 2-cycles are allowed: K_2^↔ is forest-like.
func IsForestLike(s *relstr.Structure) bool {
	adj := adjacency(s)
	nodes := 0
	edges := 0
	for v, ns := range adj {
		nodes++
		for w := range ns {
			if w > v {
				edges++
			}
		}
	}
	// A forest has (#nodes − #components) edges; any extra edge closes a
	// cycle.
	return edges == nodes-len(Components(s))
}
