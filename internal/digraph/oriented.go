package digraph

import (
	"fmt"

	"cqapprox/internal/relstr"
)

// An OrientedPath is a digraph built from a {0,1}-string as in the
// paper: character i describes the i-th edge of the path on nodes
// 0,…,n; '0' is a forward edge (i → i+1) and '1' a backward edge
// (i+1 → i). Init and Term are the initial and terminal nodes.
type OrientedPath struct {
	G    *relstr.Structure
	Init int
	Term int
	Desc string
}

// OrientedPathFromString builds the oriented path described by desc
// (e.g. "001000" is the paper's P1 building block in Prop 4.4).
func OrientedPathFromString(desc string) OrientedPath {
	s := New()
	for i, c := range desc {
		switch c {
		case '0':
			s.Add(EdgeRel, i, i+1)
		case '1':
			s.Add(EdgeRel, i+1, i)
		default:
			panic(fmt.Sprintf("digraph: bad oriented path description %q", desc))
		}
	}
	if len(desc) == 0 {
		s.AddElement(0)
	}
	return OrientedPath{G: s, Init: 0, Term: len(desc), Desc: desc}
}

// NetLength returns the number of forward edges minus the number of
// backward edges of the description string.
func NetLength(desc string) int {
	n := 0
	for _, c := range desc {
		if c == '0' {
			n++
		} else {
			n--
		}
	}
	return n
}

// Reverse returns the same path with Init and Term swapped (the paper's
// P⁻¹ used when concatenating, e.g. T1 · T5⁻¹).
func (p OrientedPath) Reverse() OrientedPath {
	return OrientedPath{G: p.G, Init: p.Term, Term: p.Init, Desc: "rev(" + p.Desc + ")"}
}

// Pointed is a digraph with designated initial and terminal nodes,
// the shape used by the paper's concatenation constructions.
type Pointed struct {
	G    *relstr.Structure
	Init int
	Term int
}

// AsPointed converts an oriented path into a Pointed digraph.
func (p OrientedPath) AsPointed() Pointed { return Pointed{G: p.G, Init: p.Init, Term: p.Term} }

// Reverse swaps the roles of Init and Term (the paper's G⁻¹).
func (g Pointed) Reverse() Pointed { return Pointed{G: g.G, Init: g.Term, Term: g.Init} }

// Concat returns the concatenation a·b: the disjoint union of a and b
// with a.Term identified with b.Init. The result's Init is a's and Term
// is b's.
func Concat(a, b Pointed) Pointed {
	u, off := relstr.DisjointUnion(a.G, b.G)
	// Identify a.Term with b.Init+off.
	target := a.Term
	src := b.Init + off
	merged := u.Map(func(e int) int {
		if e == src {
			return target
		}
		return e
	})
	term := b.Term + off
	if term == src {
		term = target
	}
	return Pointed{G: merged, Init: a.Init, Term: term}
}

// ConcatAll concatenates a sequence of pointed digraphs left to right.
func ConcatAll(parts ...Pointed) Pointed {
	if len(parts) == 0 {
		panic("digraph: ConcatAll of nothing")
	}
	out := parts[0]
	for _, p := range parts[1:] {
		out = Concat(out, p)
	}
	return out
}

// Glue attaches the pointed digraph p to the host: it disjointly adds
// p, then identifies p.Init with hostInit and p.Term with hostTerm
// (elements of host). It returns the new structure. hostInit and
// hostTerm may be fresh elements of host's domain.
func Glue(host *relstr.Structure, hostInit, hostTerm int, p Pointed) *relstr.Structure {
	u, off := relstr.DisjointUnion(host, p.G)
	src1, src2 := p.Init+off, p.Term+off
	return u.Map(func(e int) int {
		switch e {
		case src1:
			return hostInit
		case src2:
			return hostTerm
		default:
			return e
		}
	})
}

// GlueAt attaches p identifying only p.Init with hostNode; p.Term
// becomes a fresh node whose identity is returned.
func GlueAt(host *relstr.Structure, hostNode int, p Pointed) (*relstr.Structure, int) {
	u, off := relstr.DisjointUnion(host, p.G)
	src := p.Init + off
	out := u.Map(func(e int) int {
		if e == src {
			return hostNode
		}
		return e
	})
	term := p.Term + off
	if term == src {
		term = hostNode
	}
	return out, term
}
