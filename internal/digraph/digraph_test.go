package digraph

import (
	"testing"

	"cqapprox/internal/hom"
	"cqapprox/internal/relstr"
)

func TestDirectedPathAndCycle(t *testing.T) {
	p := DirectedPath(3)
	if p.NumFacts() != 3 || p.DomainSize() != 4 {
		t.Fatalf("P3 = %v", p)
	}
	c := DirectedCycle(4)
	if c.NumFacts() != 4 || c.DomainSize() != 4 {
		t.Fatalf("C4 = %v", c)
	}
}

func TestCompleteDigraph(t *testing.T) {
	k3 := CompleteDigraph(3)
	if k3.NumFacts() != 6 || HasLoop(k3) {
		t.Fatalf("K3↔ = %v", k3)
	}
}

func TestBipartite(t *testing.T) {
	if IsBipartite(DirectedCycle(3)) {
		t.Fatal("C3 is not bipartite")
	}
	if !IsBipartite(DirectedCycle(4)) {
		t.Fatal("C4 is bipartite")
	}
	if !IsBipartite(DirectedPath(7)) {
		t.Fatal("paths are bipartite")
	}
	if IsBipartite(Loop()) {
		t.Fatal("loops are not bipartite")
	}
	if !IsBipartite(CompleteDigraph(2)) {
		t.Fatal("K2↔ is bipartite")
	}
}

func TestBipartiteMatchesHomToK2(t *testing.T) {
	graphs := []*relstr.Structure{
		DirectedCycle(3), DirectedCycle(4), DirectedCycle(5), DirectedCycle(6),
		DirectedPath(4), Loop(), CompleteDigraph(3),
	}
	for _, g := range graphs {
		want := hom.Exists(g, CompleteDigraph(2), nil)
		if got := IsBipartite(g); got != want {
			t.Errorf("IsBipartite(%v) = %v, hom to K2↔ = %v", g, got, want)
		}
	}
}

func TestKColorable(t *testing.T) {
	if !IsKColorable(DirectedCycle(3), 3) || IsKColorable(DirectedCycle(3), 2) {
		t.Fatal("C3 is 3- but not 2-colorable")
	}
	k4 := CompleteDigraph(4)
	if IsKColorable(k4, 3) || !IsKColorable(k4, 4) {
		t.Fatal("K4 is 4- but not 3-colorable")
	}
	if IsKColorable(Loop(), 5) {
		t.Fatal("loops are never colorable")
	}
	if !IsKColorable(DirectedCycle(5), 3) || IsKColorable(DirectedCycle(5), 2) {
		t.Fatal("C5 is 3- but not 2-colorable")
	}
}

func TestKColorableMatchesHomToKm(t *testing.T) {
	graphs := []*relstr.Structure{
		DirectedCycle(3), DirectedCycle(5), CompleteDigraph(4), DirectedPath(3),
	}
	for _, g := range graphs {
		for k := 2; k <= 4; k++ {
			want := hom.Exists(SymmetricClosure(g), CompleteDigraph(k), nil)
			if got := IsKColorable(g, k); got != want {
				t.Errorf("IsKColorable(%v, %d) = %v, hom = %v", g, k, got, want)
			}
		}
	}
}

func TestForestLike(t *testing.T) {
	if !IsForestLike(DirectedPath(5)) {
		t.Fatal("paths are forest-like")
	}
	if !IsForestLike(CompleteDigraph(2)) {
		t.Fatal("K2↔ is forest-like (2-cycles allowed)")
	}
	if !IsForestLike(Loop()) {
		t.Fatal("a loop is forest-like")
	}
	if IsForestLike(DirectedCycle(3)) || IsForestLike(DirectedCycle(4)) {
		t.Fatal("cycles of length ≥ 3 are not forest-like")
	}
	// Loop plus 2-cycle attached to a path.
	g := FromEdges([2]int{0, 0}, [2]int{0, 1}, [2]int{1, 0}, [2]int{1, 2})
	if !IsForestLike(g) {
		t.Fatal("loop+2-cycle+pendant should be forest-like")
	}
}

func TestComponents(t *testing.T) {
	g := FromEdges([2]int{0, 1}, [2]int{2, 3}, [2]int{3, 4})
	comps := Components(g)
	if len(comps) != 2 || len(comps[0]) != 2 || len(comps[1]) != 3 {
		t.Fatalf("Components = %v", comps)
	}
	if !IsConnected(DirectedCycle(5)) {
		t.Fatal("C5 is connected")
	}
	if IsConnected(g) {
		t.Fatal("two components reported connected")
	}
}

func TestOrientedPathString(t *testing.T) {
	p := OrientedPathFromString("001")
	// Edges 0→1, 1→2, 3→2.
	if !p.G.Has(EdgeRel, 0, 1) || !p.G.Has(EdgeRel, 1, 2) || !p.G.Has(EdgeRel, 3, 2) {
		t.Fatalf("P(001) = %v", p.G)
	}
	if p.Init != 0 || p.Term != 3 {
		t.Fatalf("Init/Term = %d/%d", p.Init, p.Term)
	}
	if NetLength("001") != 1 || NetLength("0000") != 4 || NetLength("11") != -2 {
		t.Fatal("NetLength wrong")
	}
}

func TestBalanced(t *testing.T) {
	if !IsBalanced(DirectedPath(6)) {
		t.Fatal("directed paths are balanced")
	}
	if IsBalanced(DirectedCycle(3)) {
		t.Fatal("directed cycles are unbalanced")
	}
	if IsBalanced(Loop()) {
		t.Fatal("loops are unbalanced")
	}
	// Oriented 4-cycle 0→1←2→3←0 has net length 0: balanced.
	g := FromEdges([2]int{0, 1}, [2]int{2, 1}, [2]int{2, 3}, [2]int{0, 3})
	if !IsBalanced(g) {
		t.Fatal("alternating oriented 4-cycle is balanced")
	}
	// Q3 from the paper (E(x,y),E(y,z),E(z,u),E(x,u)): bipartite but
	// unbalanced (net length 2 ≠ 0 around the cycle).
	q3 := FromEdges([2]int{0, 1}, [2]int{1, 2}, [2]int{2, 3}, [2]int{0, 3})
	if IsBalanced(q3) {
		t.Fatal("Q3's tableau is unbalanced")
	}
	if !IsBipartite(q3) {
		t.Fatal("Q3's tableau is bipartite")
	}
}

func TestBalancedIffHomToDirectedPath(t *testing.T) {
	// Hell–Nešetřil: balanced iff homomorphic to some directed path.
	graphs := []*relstr.Structure{
		DirectedPath(4),
		DirectedCycle(4),
		OrientedPathFromString("0101").G,
		FromEdges([2]int{0, 1}, [2]int{1, 2}, [2]int{2, 3}, [2]int{0, 3}),
	}
	for _, g := range graphs {
		want := hom.Exists(g, DirectedPath(g.DomainSize()+1), nil)
		if got := IsBalanced(g); got != want {
			t.Errorf("IsBalanced(%v) = %v, hom-to-path = %v", g, got, want)
		}
	}
}

func TestLevelsOfOrientedPath(t *testing.T) {
	// Path "01": 0→1←2. φ: 0:0, 1:1, 2:0 → levels 0,1,0.
	p := OrientedPathFromString("01")
	lv, ok := Levels(p.G)
	if !ok {
		t.Fatal("oriented path should be balanced")
	}
	if lv[0] != 0 || lv[1] != 1 || lv[2] != 0 {
		t.Fatalf("levels = %v", lv)
	}
	if Height(p.G) != 1 {
		t.Fatalf("height = %d", Height(p.G))
	}
}

func TestLevelsPreservedByHoms(t *testing.T) {
	// Lemma 4.5: homs between balanced digraphs of equal height
	// preserve levels.
	a := OrientedPathFromString("0010")
	b := OrientedPathFromString("0010")
	la, _ := Levels(a.G)
	lb, _ := Levels(b.G)
	if Height(a.G) != Height(b.G) {
		t.Fatal("setup: heights differ")
	}
	ok := hom.ForEach(a.G, b.G, nil, func(h map[int]int) bool {
		for v, img := range h {
			if la[v] != lb[img] {
				t.Errorf("hom does not preserve level: %d (lv %d) ↦ %d (lv %d)", v, la[v], img, lb[img])
			}
		}
		return true
	})
	if !ok {
		t.Fatal("enumeration stopped early")
	}
}

func TestPaperP1P2Incomparable(t *testing.T) {
	// Prop 4.4's building blocks: P1 = 001000 and P2 = 000100 are
	// incomparable cores.
	p1 := OrientedPathFromString("001000")
	p2 := OrientedPathFromString("000100")
	if hom.Exists(p1.G, p2.G, nil) || hom.Exists(p2.G, p1.G, nil) {
		t.Fatal("P1 and P2 should be incomparable")
	}
	if !hom.IsCore(p1.G, nil) || !hom.IsCore(p2.G, nil) {
		t.Fatal("P1 and P2 should be cores")
	}
}

func TestConcat(t *testing.T) {
	a := Pointed{G: DirectedPath(2), Init: 0, Term: 2}
	b := Pointed{G: DirectedPath(3), Init: 0, Term: 3}
	c := Concat(a, b)
	if c.G.NumFacts() != 5 {
		t.Fatalf("Concat facts = %d, want 5", c.G.NumFacts())
	}
	if !relstr.Isomorphic(c.G, DirectedPath(5), []int{c.Init, c.Term}, []int{0, 5}) {
		t.Fatalf("P2·P3 should be P5, got %v", c.G)
	}
}

func TestConcatReverse(t *testing.T) {
	a := Pointed{G: DirectedPath(1), Init: 0, Term: 1}
	z := Concat(a, a.Reverse())
	// 0→1←0': an oriented path "01".
	want := OrientedPathFromString("01")
	if !relstr.Isomorphic(z.G, want.G, []int{z.Init, z.Term}, []int{want.Init, want.Term}) {
		t.Fatalf("P1·P1⁻¹ = %v", z.G)
	}
}

func TestGlue(t *testing.T) {
	host := DirectedPath(1) // 0→1
	p := Pointed{G: DirectedPath(1), Init: 0, Term: 1}
	g := Glue(host, 1, 0, p) // add an edge from 1 back to 0
	if !g.Has(EdgeRel, 1, 0) || g.NumFacts() != 2 {
		t.Fatalf("Glue = %v", g)
	}
}

func TestGlueAt(t *testing.T) {
	host := DirectedPath(1)
	p := Pointed{G: DirectedPath(2), Init: 0, Term: 2}
	g, term := GlueAt(host, 1, p)
	if g.NumFacts() != 3 {
		t.Fatalf("GlueAt = %v", g)
	}
	if !relstr.Isomorphic(g, DirectedPath(3), []int{0, term}, []int{0, 3}) {
		t.Fatalf("GlueAt should extend the path, got %v (term %d)", g, term)
	}
}
