package hypergraph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cqapprox/internal/cq"
)

func TestAcyclicBasics(t *testing.T) {
	// Single edge.
	if !New([]int{0, 1, 2}).IsAcyclic() {
		t.Fatal("single edge is acyclic")
	}
	// Path of edges.
	if !New([]int{0, 1}, []int{1, 2}, []int{2, 3}).IsAcyclic() {
		t.Fatal("edge path is acyclic")
	}
	// Triangle.
	if New([]int{0, 1}, []int{1, 2}, []int{2, 0}).IsAcyclic() {
		t.Fatal("triangle is cyclic")
	}
	// Paper's example: triangle plus covering 3-edge is acyclic.
	if !New([]int{0, 1, 2}, []int{0, 1}, []int{1, 2}, []int{0, 2}).IsAcyclic() {
		t.Fatal("triangle + covering edge is acyclic (paper §6)")
	}
	// α-acyclicity example: "fan" R(x,y,z), S(z,w).
	if !New([]int{0, 1, 2}, []int{2, 3}).IsAcyclic() {
		t.Fatal("fan is acyclic")
	}
}

func TestAcyclicDuplicatesAndLoops(t *testing.T) {
	// Duplicate edges (two identical atoms) stay acyclic.
	if !New([]int{0, 1}, []int{0, 1}).IsAcyclic() {
		t.Fatal("duplicate edges are acyclic")
	}
	// Single-vertex edge (loop atom E(x,x)).
	if !New([]int{0}, []int{0, 1}).IsAcyclic() {
		t.Fatal("loop edge is acyclic")
	}
}

func TestCycleOfLengthFour(t *testing.T) {
	if New([]int{0, 1}, []int{1, 2}, []int{2, 3}, []int{3, 0}).IsAcyclic() {
		t.Fatal("C4 hypergraph is cyclic")
	}
}

func TestBermanCyclicTernary(t *testing.T) {
	// The tableau of Q():-R(x,u,y),R(y,v,z),R(z,w,x) (paper intro):
	// edges {x,u,y},{y,v,z},{z,w,x} form a β-cycle; α-cyclic as well.
	q := cq.MustParse("Q() :- R(x,u,y), R(y,v,z), R(z,w,x)")
	if AcyclicStructure(q.Tableau().S) {
		t.Fatal("ternary cycle query should be cyclic")
	}
	// Example 6.6's Q'3 = same + R(x1,x3,x5): acyclic.
	q3 := cq.MustParse("Q() :- R(x1,x2,x3), R(x3,x4,x5), R(x5,x6,x1), R(x1,x3,x5)")
	if !AcyclicStructure(q3.Tableau().S) {
		t.Fatal("Q'3 of Example 6.6 should be acyclic")
	}
}

func TestJoinTreeValid(t *testing.T) {
	cases := []*Hypergraph{
		New([]int{0, 1, 2}, []int{2, 3}, []int{3, 4, 5}),
		New([]int{0, 1}, []int{1, 2}, []int{1, 3}),
		New([]int{0, 1, 2}, []int{0, 1}, []int{1, 2}, []int{0, 2}),
		New([]int{0}, []int{0, 1}, []int{0, 1}),
		// Disconnected.
		New([]int{0, 1}, []int{5, 6}),
	}
	for i, h := range cases {
		jt, ok := h.GYO()
		if !ok {
			t.Fatalf("case %d should be acyclic", i)
		}
		if !h.ValidJoinTree(jt) {
			t.Fatalf("case %d: invalid join tree %v", i, jt.Parent)
		}
	}
}

func TestJoinTreeRootsAndChildren(t *testing.T) {
	h := New([]int{0, 1}, []int{1, 2}, []int{2, 3})
	jt, ok := h.GYO()
	if !ok {
		t.Fatal("path hypergraph should be acyclic")
	}
	if len(jt.Roots()) != 1 {
		t.Fatalf("roots = %v, want exactly one", jt.Roots())
	}
	ch := jt.Children()
	total := 0
	for _, c := range ch {
		total += len(c)
	}
	if total != len(h.Edges)-1 {
		t.Fatalf("children count = %d, want %d", total, len(h.Edges)-1)
	}
}

func TestInduced(t *testing.T) {
	h := New([]int{0, 1, 2}, []int{2, 3})
	keep := map[int]bool{0: true, 1: true, 2: true}
	ind := h.Induced(keep)
	if len(ind.Edges) != 2 {
		t.Fatalf("induced edges = %v", ind.Edges)
	}
	// The paper's example: induced subhypergraph keeps e∩V'.
	if len(ind.Edges[1]) != 1 || ind.Edges[1][0] != 2 {
		t.Fatalf("induced second edge = %v, want [2]", ind.Edges[1])
	}
}

func TestExtendEdge(t *testing.T) {
	h := New([]int{0, 1})
	e := h.ExtendEdge(0, 7, 8)
	if len(e.Edges[0]) != 4 {
		t.Fatalf("extended edge = %v", e.Edges[0])
	}
	if !e.IsAcyclic() {
		t.Fatal("edge extension of a single edge stays acyclic")
	}
}

// Closure checks from the paper (Section 6): acyclic hypergraphs are
// closed under induced subhypergraphs and edge extensions, but not
// under plain subhypergraphs.
func TestAcyclicClosureProperties(t *testing.T) {
	// Not closed under subhypergraphs: drop the covering 3-edge.
	full := New([]int{0, 1, 2}, []int{0, 1}, []int{1, 2}, []int{0, 2})
	if !full.IsAcyclic() {
		t.Fatal("setup: full should be acyclic")
	}
	sub := New([]int{0, 1}, []int{1, 2}, []int{0, 2})
	if sub.IsAcyclic() {
		t.Fatal("sub (triangle) must be cyclic: acyclicity is not subhypergraph-closed")
	}
	// Closed under induced: the only induced subhypergraph of full
	// containing all 2-edges is full itself (paper's remark); check a
	// couple of induced subhypergraphs are acyclic.
	for _, keep := range []map[int]bool{
		{0: true, 1: true},
		{0: true, 1: true, 2: true},
		{1: true},
	} {
		if !full.Induced(keep).IsAcyclic() {
			t.Fatalf("induced on %v should be acyclic", keep)
		}
	}
}

// Property: random acyclic constructions (built as hyper-trees) pass
// GYO, and their join trees validate.
func TestQuickHyperTreesAcyclic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Build a random join-tree-shaped hypergraph: each new edge
		// shares a random subset of one existing edge plus fresh
		// vertices.
		h := &Hypergraph{}
		fresh := 0
		take := func(n int) []int {
			out := make([]int, n)
			for i := range out {
				out[i] = fresh
				fresh++
			}
			return out
		}
		h.AddEdge(take(1 + rng.Intn(3)))
		for i := 0; i < 4; i++ {
			base := h.Edges[rng.Intn(len(h.Edges))]
			var shared []int
			for _, v := range base {
				if rng.Intn(2) == 0 {
					shared = append(shared, v)
				}
			}
			edge := append(shared, take(1+rng.Intn(2))...)
			h.AddEdge(edge)
		}
		jt, ok := h.GYO()
		return ok && h.ValidJoinTree(jt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
