// Package hypergraph implements query hypergraphs and the classical
// acyclicity machinery: the GYO reduction, join-tree construction, and
// the closure operations (induced subhypergraphs, edge extensions) that
// Section 6 of the paper uses to prove the existence of
// hypergraph-based approximations.
package hypergraph

import (
	"sort"

	"cqapprox/internal/relstr"
)

// Hypergraph is a finite hypergraph. Edges are stored per original
// index (one per query atom), so duplicates are kept: GYO and join
// trees operate on atom indexes directly.
type Hypergraph struct {
	Edges [][]int // each sorted ascending; may repeat
}

// New builds a hypergraph from the given edges (each edge is
// deduplicated and sorted; empty edges are invalid and panic).
func New(edges ...[]int) *Hypergraph {
	h := &Hypergraph{}
	for _, e := range edges {
		h.AddEdge(e)
	}
	return h
}

// AddEdge appends an edge (set of vertices).
func (h *Hypergraph) AddEdge(vs []int) {
	if len(vs) == 0 {
		panic("hypergraph: empty edge")
	}
	set := map[int]bool{}
	for _, v := range vs {
		set[v] = true
	}
	e := make([]int, 0, len(set))
	for v := range set {
		e = append(e, v)
	}
	sort.Ints(e)
	h.Edges = append(h.Edges, e)
}

// FromStructure builds the hypergraph of a structure (one edge per
// tuple, vertices are the tuple's distinct elements). For a tableau T_Q
// this is the paper's H(Q).
func FromStructure(s *relstr.Structure) *Hypergraph {
	h := &Hypergraph{}
	for _, rel := range s.Relations() {
		for _, t := range s.Tuples(rel) {
			h.AddEdge([]int(t))
		}
	}
	return h
}

// Vertices returns the sorted vertex set.
func (h *Hypergraph) Vertices() []int {
	set := map[int]bool{}
	for _, e := range h.Edges {
		for _, v := range e {
			set[v] = true
		}
	}
	out := make([]int, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// NumEdges returns the number of edges (atoms).
func (h *Hypergraph) NumEdges() int { return len(h.Edges) }

// Induced returns the induced subhypergraph on keep: each edge is
// intersected with keep, empty intersections dropped (the paper's
// closure condition #1 in Section 6).
func (h *Hypergraph) Induced(keep map[int]bool) *Hypergraph {
	out := &Hypergraph{}
	for _, e := range h.Edges {
		var ne []int
		for _, v := range e {
			if keep[v] {
				ne = append(ne, v)
			}
		}
		if len(ne) > 0 {
			out.AddEdge(ne)
		}
	}
	return out
}

// ExtendEdge returns a copy of h in which edge i is extended with the
// fresh vertices vs (the paper's closure condition #2). The vertices
// must not already occur in h.
func (h *Hypergraph) ExtendEdge(i int, vs ...int) *Hypergraph {
	out := &Hypergraph{}
	for j, e := range h.Edges {
		if j == i {
			out.AddEdge(append(append([]int{}, e...), vs...))
		} else {
			out.AddEdge(e)
		}
	}
	return out
}

// JoinTree is a join tree over edge indexes: Parent[i] is the parent of
// edge i, or -1 for roots. A valid join tree satisfies the
// connectedness condition: for every vertex, the edges containing it
// form a connected subtree.
type JoinTree struct {
	Parent []int
}

// Roots returns the indices with no parent.
func (jt JoinTree) Roots() []int {
	var out []int
	for i, p := range jt.Parent {
		if p == -1 {
			out = append(out, i)
		}
	}
	return out
}

// Children returns a child-list representation.
func (jt JoinTree) Children() [][]int {
	ch := make([][]int, len(jt.Parent))
	for i, p := range jt.Parent {
		if p >= 0 {
			ch[p] = append(ch[p], i)
		}
	}
	return ch
}

// GYO runs the Graham–Yu–Özsoyoğlu reduction and reports whether h is
// α-acyclic; when it is, a join tree over the original edge indexes is
// returned. The reduction repeatedly (a) deletes "ear vertices" that
// occur in a single remaining edge and (b) deletes edges contained in
// another remaining edge, recording the witness as the join-tree
// parent. The hypergraph is acyclic iff every edge is eventually
// deleted (the last edge per connected component empties out).
func (h *Hypergraph) GYO() (JoinTree, bool) {
	n := len(h.Edges)
	jt := JoinTree{Parent: make([]int, n)}
	for i := range jt.Parent {
		jt.Parent[i] = -1
	}
	if n == 0 {
		return jt, true
	}
	work := make([]map[int]bool, n)
	for i, e := range h.Edges {
		work[i] = map[int]bool{}
		for _, v := range e {
			work[i][v] = true
		}
	}
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	aliveCount := n
	for {
		changed := false
		// (a) ear vertices: occurrence count 1 among alive edges.
		occ := map[int]int{}
		for i := range work {
			if !alive[i] {
				continue
			}
			for v := range work[i] {
				occ[v]++
			}
		}
		for i := range work {
			if !alive[i] {
				continue
			}
			for v := range work[i] {
				if occ[v] == 1 {
					delete(work[i], v)
					occ[v] = 0
					changed = true
				}
			}
		}
		// (b) subsumed edges; deterministic order.
		for i := 0; i < n; i++ {
			if !alive[i] {
				continue
			}
			for j := 0; j < n; j++ {
				if i == j || !alive[j] {
					continue
				}
				if subset(work[i], work[j]) {
					alive[i] = false
					aliveCount--
					jt.Parent[i] = j
					changed = true
					break
				}
			}
		}
		if !changed {
			break
		}
	}
	// Acyclic iff every remaining edge is empty (one per connected
	// component, fully ear-reduced).
	for i := range work {
		if alive[i] && len(work[i]) > 0 {
			return JoinTree{}, false
		}
	}
	// Link multiple empty roots into a chain so the tree is connected;
	// they share no vertices, so connectedness is unaffected.
	if aliveCount > 1 {
		prev := -1
		for i := range work {
			if alive[i] {
				if prev != -1 {
					jt.Parent[prev] = i
				}
				prev = i
			}
		}
	}
	return jt, true
}

func subset(a, b map[int]bool) bool {
	if len(a) > len(b) {
		return false
	}
	for v := range a {
		if !b[v] {
			return false
		}
	}
	return true
}

// IsAcyclic reports α-acyclicity of h.
func (h *Hypergraph) IsAcyclic() bool {
	_, ok := h.GYO()
	return ok
}

// ValidJoinTree checks the join-tree connectedness condition of jt for
// h: for every vertex v, the set of edges containing v induces a
// connected subtree.
func (h *Hypergraph) ValidJoinTree(jt JoinTree) bool {
	n := len(h.Edges)
	if len(jt.Parent) != n {
		return false
	}
	// Adjacency of the tree.
	adj := make([][]int, n)
	roots := 0
	for i, p := range jt.Parent {
		if p == -1 {
			roots++
			continue
		}
		if p < 0 || p >= n {
			return false
		}
		adj[i] = append(adj[i], p)
		adj[p] = append(adj[p], i)
	}
	if n > 0 && roots != 1 {
		return false
	}
	for _, v := range h.Vertices() {
		var with []int
		for i, e := range h.Edges {
			if containsSorted(e, v) {
				with = append(with, i)
			}
		}
		if len(with) <= 1 {
			continue
		}
		inSet := map[int]bool{}
		for _, i := range with {
			inSet[i] = true
		}
		// BFS within the restriction.
		seen := map[int]bool{with[0]: true}
		queue := []int{with[0]}
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			for _, y := range adj[x] {
				if inSet[y] && !seen[y] {
					seen[y] = true
					queue = append(queue, y)
				}
			}
		}
		if len(seen) != len(with) {
			return false
		}
	}
	return true
}

func containsSorted(e []int, v int) bool {
	i := sort.SearchInts(e, v)
	return i < len(e) && e[i] == v
}

// AcyclicStructure reports whether the CQ with tableau s is acyclic
// (α-acyclic hypergraph).
func AcyclicStructure(s *relstr.Structure) bool {
	return FromStructure(s).IsAcyclic()
}
