package relstr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddAndHas(t *testing.T) {
	s := New()
	if !s.Add("E", 1, 2) {
		t.Fatal("first Add returned false")
	}
	if s.Add("E", 1, 2) {
		t.Fatal("duplicate Add returned true")
	}
	if !s.Has("E", 1, 2) {
		t.Fatal("Has(E,1,2) = false")
	}
	if s.Has("E", 2, 1) {
		t.Fatal("Has(E,2,1) = true")
	}
	if s.NumFacts() != 1 {
		t.Fatalf("NumFacts = %d, want 1", s.NumFacts())
	}
	if s.Size() != 2 {
		t.Fatalf("Size = %d, want 2", s.Size())
	}
}

func TestArityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on arity mismatch")
		}
	}()
	s := New()
	s.Add("E", 1, 2)
	s.Add("E", 1, 2, 3)
}

func TestRedeclareMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on redeclare")
		}
	}()
	s := New()
	s.Declare("R", 2)
	s.Declare("R", 3)
}

func TestDomain(t *testing.T) {
	s := New()
	s.Add("E", 3, 1)
	s.Add("E", 1, 2)
	s.AddElement(9)
	got := s.Domain()
	want := []int{1, 2, 3, 9}
	if len(got) != len(want) {
		t.Fatalf("Domain = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Domain = %v, want %v", got, want)
		}
	}
}

func TestRemove(t *testing.T) {
	s := New()
	s.Add("E", 1, 2)
	s.Add("E", 2, 3)
	if !s.Remove("E", 1, 2) {
		t.Fatal("Remove existing returned false")
	}
	if s.Remove("E", 1, 2) {
		t.Fatal("Remove missing returned true")
	}
	if s.Has("E", 1, 2) || !s.Has("E", 2, 3) {
		t.Fatal("Remove removed the wrong tuple")
	}
}

func TestCloneIndependence(t *testing.T) {
	s := New()
	s.Add("E", 1, 2)
	c := s.Clone()
	c.Add("E", 2, 3)
	if s.Has("E", 2, 3) {
		t.Fatal("Clone shares state with original")
	}
	if !s.ContainedIn(c) || c.ContainedIn(s) {
		t.Fatal("containment after clone+add is wrong")
	}
}

func TestMapQuotient(t *testing.T) {
	s := New()
	s.Add("E", 0, 1)
	s.Add("E", 1, 2)
	s.Add("E", 2, 0)
	q := s.Map(func(e int) int { return 0 }) // collapse everything
	if q.NumFacts() != 1 || !q.Has("E", 0, 0) {
		t.Fatalf("constant map image = %v, want single loop", q)
	}
	// Identifying 0 and 2 leaves a two-element image.
	q2 := s.Map(func(e int) int {
		if e == 2 {
			return 0
		}
		return e
	})
	if q2.DomainSize() != 2 || !q2.Has("E", 0, 0) || !q2.Has("E", 0, 1) || !q2.Has("E", 1, 0) {
		t.Fatalf("quotient by {0,2} = %v", q2)
	}
}

func TestInducedAndWithout(t *testing.T) {
	s := New()
	s.Add("E", 0, 1)
	s.Add("E", 1, 2)
	sub := s.Without(2)
	if sub.NumFacts() != 1 || !sub.Has("E", 0, 1) {
		t.Fatalf("Without(2) = %v", sub)
	}
	if !sub.ContainedIn(s) || !sub.ProperlyContainedIn(s) {
		t.Fatal("induced substructure containment broken")
	}
}

func TestDisjointUnion(t *testing.T) {
	a := New()
	a.Add("E", 0, 1)
	b := New()
	b.Add("E", 0, 1)
	u, off := DisjointUnion(a, b)
	if off <= 1 {
		t.Fatalf("offset = %d, want > 1", off)
	}
	if u.NumFacts() != 2 || !u.Has("E", 0, 1) || !u.Has("E", off, off+1) {
		t.Fatalf("DisjointUnion = %v", u)
	}
}

func TestNormalize(t *testing.T) {
	s := New()
	s.Add("E", 10, 20)
	s.Add("E", 20, 30)
	n, ren := s.Normalize()
	if n.DomainSize() != 3 {
		t.Fatalf("normalized domain size = %d", n.DomainSize())
	}
	if !n.Has("E", ren[10], ren[20]) || !n.Has("E", ren[20], ren[30]) {
		t.Fatalf("Normalize lost edges: %v", n)
	}
	for _, e := range n.Domain() {
		if e < 0 || e > 2 {
			t.Fatalf("normalized element %d out of range", e)
		}
	}
}

func TestPartitionsCount(t *testing.T) {
	bell := []int{1, 1, 2, 5, 15, 52, 203}
	for n := 0; n <= 6; n++ {
		elems := make([]int, n)
		for i := range elems {
			elems[i] = i
		}
		count := 0
		Partitions(elems, func(Partition) bool { count++; return true })
		if count != bell[n] {
			t.Errorf("Partitions(%d) visited %d partitions, want Bell(%d)=%d", n, count, n, bell[n])
		}
	}
}

func TestPartitionsEarlyStop(t *testing.T) {
	elems := []int{0, 1, 2, 3}
	count := 0
	done := Partitions(elems, func(Partition) bool { count++; return count < 3 })
	if done || count != 3 {
		t.Fatalf("early stop: done=%v count=%d", done, count)
	}
}

func TestPartitionBlocks(t *testing.T) {
	elems := []int{0, 1, 2}
	var found bool
	Partitions(elems, func(p Partition) bool {
		if p[0] == p[1] && p[2] != p[0] {
			found = true
			blocks := p.Blocks(elems)
			if len(blocks) != 2 || len(blocks[0]) != 2 || blocks[0][0] != 0 || blocks[0][1] != 1 {
				t.Errorf("Blocks = %v", blocks)
			}
			return false
		}
		return true
	})
	if !found {
		t.Fatal("partition {0,1}{2} not enumerated")
	}
}

func TestQuotientByContainsImageFacts(t *testing.T) {
	s := New()
	s.Add("R", 1, 2, 3)
	s.Add("R", 3, 4, 5)
	p := Partition{1: 1, 3: 1, 5: 1, 2: 2, 4: 2}
	q := s.QuotientBy(p)
	if !q.Has("R", 1, 2, 1) || !q.Has("R", 1, 2, 1) {
		t.Fatalf("QuotientBy = %v", q)
	}
	if q.DomainSize() != 2 {
		t.Fatalf("quotient domain = %v", q.Domain())
	}
}

func TestIsomorphicBasic(t *testing.T) {
	a := New()
	a.Add("E", 0, 1)
	a.Add("E", 1, 2)
	b := New()
	b.Add("E", 5, 7)
	b.Add("E", 7, 9)
	if !Isomorphic(a, b, nil, nil) {
		t.Fatal("paths of length 2 should be isomorphic")
	}
	c := New()
	c.Add("E", 0, 1)
	c.Add("E", 2, 1)
	if Isomorphic(a, c, nil, nil) {
		t.Fatal("path 0→1→2 is not isomorphic to 0→1←2")
	}
}

func TestIsomorphicDistinguished(t *testing.T) {
	a := New()
	a.Add("E", 0, 1)
	b := New()
	b.Add("E", 0, 1)
	if !Isomorphic(a, b, []int{0}, []int{0}) {
		t.Fatal("identical structures with matching dist should be isomorphic")
	}
	if Isomorphic(a, b, []int{0}, []int{1}) {
		t.Fatal("dist 0↦1 reverses the edge; should not be isomorphic")
	}
}

func TestIsomorphicCycleVsPath(t *testing.T) {
	cyc := New()
	cyc.Add("E", 0, 1)
	cyc.Add("E", 1, 2)
	cyc.Add("E", 2, 0)
	path := New()
	path.Add("E", 0, 1)
	path.Add("E", 1, 2)
	path.Add("E", 0, 2)
	if Isomorphic(cyc, path, nil, nil) {
		t.Fatal("directed 3-cycle vs transitive triangle should differ")
	}
}

func TestSignatureInvariance(t *testing.T) {
	a := New()
	a.Add("E", 0, 1)
	a.Add("E", 1, 2)
	a.Add("E", 2, 0)
	perm := map[int]int{0: 7, 1: 3, 2: 5}
	b := a.Map(func(e int) int { return perm[e] })
	if Signature(a, nil) != Signature(b, nil) {
		t.Fatal("signature not invariant under renaming")
	}
}

// Property: for random structures, Map with a permutation yields an
// isomorphic structure, and Isomorphic detects it.
func TestQuickPermutationIsomorphism(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomStructure(rng, 5, 7)
		dom := s.Domain()
		perm := rng.Perm(len(dom))
		ren := map[int]int{}
		for i, e := range dom {
			ren[e] = dom[perm[i]]
		}
		img := s.Map(func(e int) int { return ren[e] })
		return Isomorphic(s, img, nil, nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: quotients never increase the number of facts or domain size.
func TestQuickQuotientShrinks(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomStructure(rng, 5, 7)
		dom := s.Domain()
		if len(dom) == 0 {
			return true
		}
		ok := true
		Partitions(dom, func(p Partition) bool {
			q := s.QuotientBy(p)
			if q.NumFacts() > s.NumFacts() || q.DomainSize() > s.DomainSize() {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func randomStructure(rng *rand.Rand, n, edges int) *Structure {
	s := New()
	s.Declare("E", 2)
	for i := 0; i < edges; i++ {
		s.Add("E", rng.Intn(n), rng.Intn(n))
	}
	return s
}
