package relstr

import "sort"

// Map returns the homomorphic image of s under f: the structure whose
// facts are R(f(t̄)) for every fact R(t̄) of s. Registered extra
// elements are mapped as well. f must be defined (total) on the active
// domain of s.
//
// When f is induced by a partition of the domain this is exactly the
// quotient structure; the paper's Im(h) for a homomorphism h defined on
// s coincides with s.Map(h) as a structure.
func (s *Structure) Map(f func(int) int) *Structure {
	out := s.CloneSchema()
	for name, r := range s.rels {
		buf := make([]int, r.arity)
		for _, t := range r.set.Rows() {
			for i, e := range t {
				buf[i] = f(e)
			}
			out.Add(name, buf...)
		}
	}
	for e := range s.extra {
		out.AddElement(f(e))
	}
	return out
}

// MapTuple applies f pointwise to t.
func MapTuple(t Tuple, f func(int) int) Tuple {
	out := make(Tuple, len(t))
	for i, e := range t {
		out[i] = f(e)
	}
	return out
}

// Induced returns the substructure of s induced by keep: all facts
// whose elements all lie in keep. Extra elements outside keep are
// dropped.
func (s *Structure) Induced(keep map[int]bool) *Structure {
	out := s.CloneSchema()
	for name, r := range s.rels {
	tuples:
		for _, t := range r.set.Rows() {
			for _, e := range t {
				if !keep[e] {
					continue tuples
				}
			}
			out.Add(name, t...)
		}
	}
	for e := range s.extra {
		if keep[e] {
			out.AddElement(e)
		}
	}
	return out
}

// Without returns the substructure of s induced by adom(s) ∖ {v}.
func (s *Structure) Without(v int) *Structure {
	keep := s.DomainSet()
	delete(keep, v)
	return s.Induced(keep)
}

// Union returns the (non-disjoint) union of s and o: the structure
// whose facts are facts of either. Arities must agree on shared
// symbols.
func Union(s, o *Structure) *Structure {
	out := s.Clone()
	for name, r := range o.rels {
		out.Declare(name, r.arity)
		for _, t := range r.set.Rows() {
			out.Add(name, t...)
		}
	}
	for e := range o.extra {
		out.AddElement(e)
	}
	return out
}

// DisjointUnion returns the disjoint union of s and o, renaming the
// elements of o by adding offset so they cannot clash with elements of
// s. It returns the union together with the offset used, so callers can
// locate o's elements (element e of o becomes e+offset).
func DisjointUnion(s, o *Structure) (*Structure, int) {
	offset := 0
	if d := s.Domain(); len(d) > 0 {
		offset = d[len(d)-1] + 1
	}
	if od := o.Domain(); len(od) > 0 && od[0] < 0 {
		offset -= od[0] // ensure shifted elements stay above s's max
	}
	out := s.Clone()
	shifted := o.Map(func(e int) int { return e + offset })
	for name, r := range shifted.rels {
		out.Declare(name, r.arity)
		for _, t := range r.set.Rows() {
			out.Add(name, t...)
		}
	}
	for e := range shifted.extra {
		out.AddElement(e)
	}
	return out, offset
}

// Normalize returns an isomorphic copy of s whose domain is
// {0, …, n−1} following the ascending order of the original domain,
// together with the renaming old→new.
func (s *Structure) Normalize() (*Structure, map[int]int) {
	dom := s.Domain()
	ren := make(map[int]int, len(dom))
	for i, e := range dom {
		ren[e] = i
	}
	return s.Map(func(e int) int { return ren[e] }), ren
}

// Partition represents a partition of a finite element set as a map
// from element to block representative (the minimum element of the
// block).
type Partition map[int]int

// QuotientBy returns the quotient of s by the partition p: every
// element is replaced by its block representative. Elements absent from
// p map to themselves.
func (s *Structure) QuotientBy(p Partition) *Structure {
	return s.Map(func(e int) int {
		if r, ok := p[e]; ok {
			return r
		}
		return e
	})
}

// Partitions enumerates all set partitions of elems, invoking fn with
// each partition (as element → block-representative). Enumeration
// follows restricted-growth strings, so the number of calls is the Bell
// number B(len(elems)). If fn returns false the enumeration stops early
// and Partitions returns false; otherwise it returns true.
func Partitions(elems []int, fn func(Partition) bool) bool {
	n := len(elems)
	if n == 0 {
		return fn(Partition{})
	}
	// rgs[i] = block index of elems[i]; rgs[0] = 0;
	// rgs[i] ≤ max(rgs[0..i-1]) + 1.
	rgs := make([]int, n)
	var rec func(i, maxBlock int) bool
	rec = func(i, maxBlock int) bool {
		if i == n {
			// Build representative map: representative of block b is the
			// first (minimum-index) element assigned to b.
			rep := make([]int, maxBlock+1)
			for b := range rep {
				rep[b] = -1
			}
			p := make(Partition, n)
			for j, e := range elems {
				b := rgs[j]
				if rep[b] == -1 {
					rep[b] = e
				}
				p[e] = rep[b]
			}
			return fn(p)
		}
		for b := 0; b <= maxBlock+1; b++ {
			rgs[i] = b
			nb := maxBlock
			if b > maxBlock {
				nb = b
			}
			if !rec(i+1, nb) {
				return false
			}
		}
		return true
	}
	rgs[0] = 0
	return rec(1, 0)
}

// Blocks returns the blocks of p over the given universe, each sorted,
// with blocks ordered by their representative.
func (p Partition) Blocks(universe []int) [][]int {
	by := map[int][]int{}
	for _, e := range universe {
		r, ok := p[e]
		if !ok {
			r = e
		}
		by[r] = append(by[r], e)
	}
	reps := make([]int, 0, len(by))
	for r := range by {
		reps = append(reps, r)
	}
	sort.Ints(reps)
	out := make([][]int, 0, len(reps))
	for _, r := range reps {
		b := by[r]
		sort.Ints(b)
		out = append(out, b)
	}
	return out
}
