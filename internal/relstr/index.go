package relstr

// Integer tuple hashing and the TupleSet container. These are the
// allocation-light replacements for the string Tuple.Key() maps the
// evaluation hot path used to run on: a tuple is hashed directly from
// its int values (splitmix-style mixing, no intermediate string), and
// membership is an open-addressed bucket walk comparing ints.

// hashTuple mixes the values of t into a 64-bit hash. Equal tuples
// hash equally; the avalanche steps keep small integer domains (the
// common case: dense element ids) from clustering into few buckets.
func hashTuple(t []int) uint64 {
	h := uint64(len(t)) + 0x9E3779B97F4A7C15
	for _, v := range t {
		h = mix64(h ^ uint64(v))
	}
	return h
}

// HashCols is hashTuple restricted to the given columns of a row: the
// probe-key hash of the evaluation runtime's relation indexes. Two
// (row, cols) pairs reading equal value sequences hash equally.
func HashCols(row []int, cols []int) uint64 {
	h := uint64(len(cols)) + 0x9E3779B97F4A7C15
	for _, c := range cols {
		h = mix64(h ^ uint64(row[c]))
	}
	return h
}

// mix64 is the splitmix64 finalizer.
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	return h ^ (h >> 31)
}

// TupleSet is a deduplicated, insertion-ordered set of integer tuples,
// indexed by an open-addressed bucket table over integer hashes. The
// zero value is ready to use. Not safe for concurrent mutation.
type TupleSet struct {
	rows []Tuple
	head []int32 // bucket → first row id +1 (0 = empty); len is a power of two
	next []int32 // row id → next row id +1 in the same bucket
	mask uint64
}

// Len returns the number of distinct tuples in the set.
func (s *TupleSet) Len() int { return len(s.rows) }

// Rows returns the tuples in insertion order. The slice is owned by
// the set and must not be modified.
func (s *TupleSet) Rows() []Tuple { return s.rows }

// Has reports whether t is in the set.
func (s *TupleSet) Has(t []int) bool {
	if len(s.rows) == 0 {
		return false
	}
	for id := s.head[hashTuple(t)&s.mask]; id != 0; id = s.next[id-1] {
		if Tuple(t).Equal(s.rows[id-1]) {
			return true
		}
	}
	return false
}

// Add inserts t if absent, reporting whether it was newly added. The
// set keeps a reference to t: callers that reuse the backing array
// must pass a copy (or use AddCopy).
func (s *TupleSet) Add(t Tuple) bool {
	if s.Has(t) {
		return false
	}
	s.insert(t)
	return true
}

// AddCopy is Add for callers whose tuple buffer may be reused: the
// set stores a fresh copy of t, made only when t is actually new.
func (s *TupleSet) AddCopy(t []int) bool {
	if s.Has(t) {
		return false
	}
	s.insert(Tuple(t).Clone())
	return true
}

// insert appends a known-absent tuple and links it into its bucket.
func (s *TupleSet) insert(t Tuple) {
	if len(s.rows) >= len(s.head)*3/4 {
		s.grow()
	}
	s.rows = append(s.rows, t)
	s.next = append(s.next, 0)
	b := hashTuple(t) & s.mask
	id := int32(len(s.rows)) // +1 encoded
	s.next[id-1] = s.head[b]
	s.head[b] = id
}

// Remove deletes t if present, reporting whether it was removed.
// Removal preserves the insertion order of the remaining tuples. Row
// ids above the removed row shift down by one, so the bucket links are
// renumbered in place — two linear int passes, no rehashing (this
// keeps single-tuple deletes on copy-on-write snapshot forks cheap).
func (s *TupleSet) Remove(t []int) bool {
	if len(s.rows) == 0 {
		return false
	}
	b := hashTuple(t) & s.mask
	id := int32(0)
	for p := &s.head[b]; *p != 0; p = &s.next[*p-1] {
		if Tuple(t).Equal(s.rows[*p-1]) {
			id = *p
			*p = s.next[id-1]
			break
		}
	}
	if id == 0 {
		return false
	}
	i := int(id - 1)
	s.rows = append(s.rows[:i], s.rows[i+1:]...)
	s.next = append(s.next[:i], s.next[i+1:]...)
	for j := range s.head {
		if s.head[j] > id {
			s.head[j]--
		}
	}
	for j := range s.next {
		if s.next[j] > id {
			s.next[j]--
		}
	}
	return true
}

// fork returns a copy of s that shares tuple storage: rows, bucket
// table and chain links are copied wholesale, so a fork costs a few
// memcpys instead of len(rows) hash inserts. Mutating the fork leaves
// s untouched.
func (s *TupleSet) fork() TupleSet {
	return TupleSet{
		rows: append([]Tuple(nil), s.rows...),
		head: append([]int32(nil), s.head...),
		next: append([]int32(nil), s.next...),
		mask: s.mask,
	}
}

// grow doubles the bucket table (at least to a small minimum) and
// rehashes.
func (s *TupleSet) grow() {
	n := len(s.head) * 2
	if n < 8 {
		n = 8
	}
	s.head = make([]int32, n)
	s.mask = uint64(n - 1)
	s.rehash()
}

// rehash reinserts every row into the (cleared) bucket table.
func (s *TupleSet) rehash() {
	for i := range s.head {
		s.head[i] = 0
	}
	for i, row := range s.rows {
		b := hashTuple(row) & s.mask
		s.next[i] = s.head[b]
		s.head[b] = int32(i + 1)
	}
}
