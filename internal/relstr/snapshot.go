package relstr

// Database snapshots: immutable, shareable views of a Structure that
// own the hash indexes built over their relations. A Snapshot is the
// data-side mirror of the query side's prepare-once split: registering
// a database freezes it once, and every evaluation of every prepared
// query against it probes the same lazily-built, bounded,
// concurrency-safe cache of per-(relation, pattern, key-columns)
// indexes instead of re-indexing the data per call. Copy-on-write
// updates (Update with a Delta) fork a new version that keeps sharing
// the rows, views and indexes of every untouched relation.

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// snapVersions hands out process-unique snapshot versions, so a fork
// chain (and independent snapshots) can always be told apart.
var snapVersions atomic.Uint64

// defaultIndexCap bounds the number of indexes cached per relation
// (across all of its views). Beyond it, Index still returns a working
// index but builds it per call instead of caching — the cache stays
// bounded, correctness is unaffected.
const defaultIndexCap = 32

// Snapshot is an immutable view of a relational database with a
// persistent index cache. Safe for concurrent use by any number of
// readers; there are no mutating operations (Update returns a new
// Snapshot).
type Snapshot struct {
	src     *Structure // frozen private clone; never mutated after construction
	version uint64
	rels    map[string]*snapRel
}

// snapRel is one relation of a snapshot: its frozen rows plus the
// lazily-built views and indexes over them. A snapRel is shared
// between a snapshot and every descendant forked by Update that did
// not touch the relation — which is exactly what lets warm indexes
// survive updates elsewhere in the database.
type snapRel struct {
	arity int
	rows  []Tuple

	mu      sync.RWMutex
	views   map[string]*View
	nIdx    int // indexes currently cached across views (bounded by indexCap)
	builds  atomic.Uint64
	hits    atomic.Uint64
	nViews  atomic.Int64
	nCached atomic.Int64
}

// View is a materialised atom view of one snapshot relation: the rows
// matching a repetition pattern, projected onto the pattern's distinct
// columns (the identity pattern is the relation itself, sharing row
// storage). Views own the column indexes the evaluation runtime probes.
type View struct {
	owner   *snapRel
	rows    [][]int
	mu      sync.RWMutex
	indexes map[string]*Index
}

// Index is a bucket-chained hash index over the rows of a View, keyed
// on the values at Cols. It is immutable once built; probes walk the
// chain with First/Next so callers can overlay their own row filters
// (the evaluation runtime's per-call liveness bitmaps).
type Index struct {
	rows [][]int
	cols []int
	head []int32 // bucket → first row id +1 (0 = empty)
	next []int32 // row id → next row id +1 in the same bucket
	mask uint64
}

// NewSnapshot freezes s into an immutable snapshot. The structure is
// deep-copied, so later mutations of s do not leak into the snapshot.
func NewSnapshot(s *Structure) *Snapshot {
	return freeze(s.Clone())
}

// freeze wraps an already-private structure (callers must not retain a
// mutable reference).
func freeze(src *Structure) *Snapshot {
	sn := &Snapshot{
		src:     src,
		version: snapVersions.Add(1),
		rels:    make(map[string]*snapRel, len(src.rels)),
	}
	for name, r := range src.rels {
		sn.rels[name] = &snapRel{arity: r.arity, rows: r.set.Rows()}
	}
	return sn
}

// Version returns the snapshot's process-unique version number.
// Versions increase monotonically across NewSnapshot and Update.
func (sn *Snapshot) Version() uint64 { return sn.version }

// Structure returns the snapshot's frozen structure. It is shared, not
// copied: callers must treat it as read-only (the backtracking engine
// and the streaming reducer read it; nothing may mutate it).
func (sn *Snapshot) Structure() *Structure { return sn.src }

// Relations returns the declared relation symbols in sorted order.
func (sn *Snapshot) Relations() []string { return sn.src.Relations() }

// Arity returns the arity of relation name, or 0 if undeclared.
func (sn *Snapshot) Arity(name string) int { return sn.src.Arity(name) }

// NumFacts returns the total number of tuples across all relations.
func (sn *Snapshot) NumFacts() int { return sn.src.NumFacts() }

// Size returns Σ arity·(#tuples), the standard size measure.
func (sn *Snapshot) Size() int { return sn.src.Size() }

// SnapshotStats aggregates the snapshot's index-cache counters.
// Relations shared with other snapshots (COW forks) accumulate their
// activity too — the cache, like the counters, is genuinely shared.
type SnapshotStats struct {
	Relations     int
	Facts         int
	Views         int    // materialised atom views
	IndexesCached int    // indexes currently held by the cache
	IndexBuilds   uint64 // indexes built (cached or transient beyond the bound)
	IndexHits     uint64 // probes answered by an already-built index
}

// Stats returns a snapshot of the index-cache counters.
func (sn *Snapshot) Stats() SnapshotStats {
	st := SnapshotStats{Relations: len(sn.rels), Facts: sn.NumFacts()}
	for _, r := range sn.rels {
		st.Views += int(r.nViews.Load())
		st.IndexesCached += int(r.nCached.Load())
		st.IndexBuilds += r.builds.Load()
		st.IndexHits += r.hits.Load()
	}
	return st
}

// emptyView serves undeclared relations and arity mismatches.
var emptyView = &View{}

// View returns the materialised view of relation name under the given
// repetition pattern. pattern[i] is the first position whose value
// position i must repeat (so the identity pattern — pattern[i] == i
// for all i — selects every row unchanged); the view's rows are the
// matching tuples projected onto the distinct positions, deduplicated.
// The view is built once per (relation, pattern) and cached for the
// snapshot's lifetime.
func (sn *Snapshot) View(name string, pattern []int) *View {
	r, ok := sn.rels[name]
	if !ok || r.arity != len(pattern) {
		return emptyView
	}
	key := patternKey(pattern)
	r.mu.RLock()
	v := r.views[key]
	r.mu.RUnlock()
	if v != nil {
		return v
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if v = r.views[key]; v != nil {
		return v
	}
	v = &View{owner: r, rows: materialise(r.rows, pattern)}
	if r.views == nil {
		r.views = map[string]*View{}
	}
	r.views[key] = v
	r.nViews.Add(1)
	return v
}

// materialise projects the rows matching pattern onto its distinct
// positions. The identity pattern shares tuple storage; non-identity
// patterns filter, project and deduplicate.
func materialise(rows []Tuple, pattern []int) [][]int {
	identity := true
	for i, p := range pattern {
		if p != i {
			identity = false
			break
		}
	}
	out := make([][]int, 0, len(rows))
	if identity {
		for _, t := range rows {
			out = append(out, t)
		}
		return out
	}
	var dist []int
	for i, p := range pattern {
		if p == i {
			dist = append(dist, i)
		}
	}
	var seen TupleSet
rows:
	for _, t := range rows {
		for i, p := range pattern {
			if t[i] != t[p] {
				continue rows
			}
		}
		row := make([]int, len(dist))
		for k, i := range dist {
			row[k] = t[i]
		}
		if seen.Add(row) {
			out = append(out, row)
		}
	}
	return out
}

// Rows returns the view's rows. The slice and its rows are owned by
// the snapshot and must not be modified.
func (v *View) Rows() [][]int { return v.rows }

// Len returns the number of rows in the view.
func (v *View) Len() int { return len(v.rows) }

// Index returns the hash index of the view's rows keyed on cols,
// building it on first use. built reports whether this call did the
// build (callers account index-build work exactly once). Beyond the
// per-relation cache bound the index is built transiently — returned
// but not cached — so built stays true on every call.
func (v *View) Index(cols []int) (ix *Index, built bool) {
	if v.owner == nil { // the empty view
		return buildIndex(v.rows, cols), true
	}
	key := patternKey(cols)
	v.mu.RLock()
	ix = v.indexes[key]
	v.mu.RUnlock()
	if ix != nil {
		v.owner.hits.Add(1)
		return ix, false
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if ix = v.indexes[key]; ix != nil {
		v.owner.hits.Add(1)
		return ix, false
	}
	ix = buildIndex(v.rows, cols)
	v.owner.builds.Add(1)
	v.owner.mu.Lock()
	admit := v.owner.nIdx < defaultIndexCap
	if admit {
		v.owner.nIdx++
	}
	v.owner.mu.Unlock()
	if admit {
		if v.indexes == nil {
			v.indexes = map[string]*Index{}
		}
		v.indexes[key] = ix
		v.owner.nCached.Add(1)
	}
	return ix, true
}

// NewIndex constructs a standalone bucket-chained index over rows
// keyed on cols — the same structure View.Index caches, for callers
// that manage their own row storage (the evaluation runtime's
// per-call structure backend). The index is immutable once built and
// safe for concurrent probes.
func NewIndex(rows [][]int, cols []int) *Index { return buildIndex(rows, cols) }

// buildIndex constructs a bucket-chained index over rows keyed on cols.
func buildIndex(rows [][]int, cols []int) *Index {
	n := 8
	for n < 2*len(rows) {
		n <<= 1
	}
	ix := &Index{
		rows: rows,
		cols: append([]int{}, cols...),
		head: make([]int32, n),
		next: make([]int32, len(rows)),
		mask: uint64(n - 1),
	}
	for i, row := range rows {
		b := HashCols(row, cols) & ix.mask
		ix.next[i] = ix.head[b]
		ix.head[b] = int32(i + 1)
	}
	return ix
}

// Rows returns the indexed rows (the view's rows, shared).
func (ix *Index) Rows() [][]int { return ix.rows }

// match reports whether indexed row id agrees with probe on the
// aligned key columns.
func (ix *Index) match(id int32, probe []int, probeCols []int) bool {
	r := ix.rows[id]
	for k, c := range ix.cols {
		if r[c] != probe[probeCols[k]] {
			return false
		}
	}
	return true
}

// First returns the first indexed row id whose key columns equal
// probe's probeCols values, or -1. probeCols must align with the cols
// the index was built on.
func (ix *Index) First(probe []int, probeCols []int) int32 {
	for id := ix.head[HashCols(probe, probeCols)&ix.mask]; id != 0; id = ix.next[id-1] {
		if ix.match(id-1, probe, probeCols) {
			return id - 1
		}
	}
	return -1
}

// Next continues a First walk from row id, returning the next matching
// row id or -1.
func (ix *Index) Next(id int32, probe []int, probeCols []int) int32 {
	for nid := ix.next[id]; nid != 0; nid = ix.next[nid-1] {
		if ix.match(nid-1, probe, probeCols) {
			return nid - 1
		}
	}
	return -1
}

// patternKey renders an int list as a compact map key.
func patternKey(xs []int) string {
	b := make([]byte, 0, len(xs))
	for _, x := range xs {
		if x < 0 || x > 0x7f {
			// Arities this large never occur; fall back to a verbose key.
			return fmt.Sprint(xs)
		}
		b = append(b, byte(x))
	}
	return string(b)
}

// --- copy-on-write updates --------------------------------------------

// Delta is a change set for Snapshot.Update: facts to delete and facts
// to insert, per relation. Deletions are applied before insertions.
// The zero value is not usable; construct with NewDelta.
type Delta struct {
	ins map[string][]Tuple
	del map[string][]Tuple
}

// NewDelta returns an empty change set.
func NewDelta() *Delta {
	return &Delta{ins: map[string][]Tuple{}, del: map[string][]Tuple{}}
}

// Insert schedules the fact name(elems...) for insertion. Inserting an
// already-present fact is a no-op at Update time. Returns d for
// chaining.
func (d *Delta) Insert(name string, elems ...int) *Delta {
	d.ins[name] = append(d.ins[name], Tuple(elems).Clone())
	return d
}

// Delete schedules the fact name(elems...) for deletion. Deleting an
// absent fact is a no-op at Update time. Returns d for chaining.
func (d *Delta) Delete(name string, elems ...int) *Delta {
	d.del[name] = append(d.del[name], Tuple(elems).Clone())
	return d
}

// Empty reports whether the delta changes nothing.
func (d *Delta) Empty() bool { return len(d.ins) == 0 && len(d.del) == 0 }

// Inserts returns the tuples scheduled for insertion into relation
// name, in Insert order. The slice and its tuples are owned by the
// delta and must not be modified.
func (d *Delta) Inserts(name string) []Tuple { return d.ins[name] }

// Deletes returns the tuples scheduled for deletion from relation
// name, in Delete order. The slice and its tuples are owned by the
// delta and must not be modified.
func (d *Delta) Deletes(name string) []Tuple { return d.del[name] }

// NumChanges returns the total number of scheduled insertions and
// deletions (before Update-time no-op elimination).
func (d *Delta) NumChanges() int {
	n := 0
	for _, ts := range d.ins {
		n += len(ts)
	}
	for _, ts := range d.del {
		n += len(ts)
	}
	return n
}

// Touched returns the relations the delta mentions, sorted.
func (d *Delta) Touched() []string {
	set := map[string]bool{}
	for n := range d.ins {
		set[n] = true
	}
	for n := range d.del {
		set[n] = true
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Update forks a new snapshot with d applied. Untouched relations —
// rows, views and warm indexes — are shared with sn, so only the
// changed relations pay re-indexing on the new version. sn itself is
// unchanged (snapshots are immutable). Deletions apply before
// insertions; inserting into an unknown relation declares it with the
// tuple's arity. Arity mismatches against declared relations are
// errors.
func (sn *Snapshot) Update(d *Delta) (*Snapshot, error) {
	if d == nil || d.Empty() {
		return sn, nil
	}
	touched := map[string]bool{}
	for _, n := range d.Touched() {
		touched[n] = true
	}
	// Validate before building anything.
	for name, ts := range d.ins {
		if name == "" {
			return nil, fmt.Errorf("relstr: delta inserts into a relation with an empty name")
		}
		want := sn.src.Arity(name)
		for _, t := range ts {
			if len(t) == 0 {
				return nil, fmt.Errorf("relstr: delta inserts an empty tuple into %q", name)
			}
			if want == 0 {
				want = len(ts[0])
			}
			if len(t) != want {
				return nil, fmt.Errorf("relstr: delta inserts a tuple of arity %d into %q (arity %d)", len(t), name, want)
			}
		}
	}
	for name, ts := range d.del {
		if want := sn.src.Arity(name); want != 0 {
			for _, t := range ts {
				if len(t) != want {
					return nil, fmt.Errorf("relstr: delta deletes a tuple of arity %d from %q (arity %d)", len(t), name, want)
				}
			}
		}
	}

	src := &Structure{rels: make(map[string]*relation, len(sn.src.rels)+len(d.ins)), extra: map[int]bool{}}
	for e := range sn.src.extra {
		src.extra[e] = true
	}
	// Untouched relations share their *relation verbatim: both
	// structures are frozen, so sharing is safe — and it is what keeps
	// their caches warm across versions.
	for name, r := range sn.src.rels {
		if !touched[name] {
			src.rels[name] = r
		}
	}
	next := &Snapshot{
		src:     src,
		version: snapVersions.Add(1),
		rels:    make(map[string]*snapRel, len(sn.rels)+len(d.ins)),
	}
	for name, r := range sn.rels {
		if !touched[name] {
			next.rels[name] = r
		}
	}
	for name := range touched {
		old, declared := sn.src.rels[name]
		nr := &relation{}
		if declared {
			nr.arity = old.arity
			nr.set = old.set.fork() // shares tuple storage with the old version
		} else if ts := d.ins[name]; len(ts) > 0 {
			nr.arity = len(ts[0])
		} else {
			continue // delete-only delta on an unknown relation: nothing to do
		}
		for _, t := range d.del[name] {
			nr.set.Remove(t)
		}
		for _, t := range d.ins[name] {
			nr.set.Add(t) // delta tuples were cloned at Insert time
		}
		src.rels[name] = nr
		next.rels[name] = &snapRel{arity: nr.arity, rows: nr.set.Rows()}
	}
	return next, nil
}
