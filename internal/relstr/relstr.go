// Package relstr implements finite relational structures over integer
// domains. A Structure serves both as a database instance and as the
// tableau of a conjunctive query, exactly as in Barceló, Libkin and
// Romero, "Efficient Approximations of Conjunctive Queries" (PODS 2012),
// where tableaux are ordinary σ-structures.
//
// Elements of the domain are ints. Relations are sets of tuples; adding
// a duplicate tuple is a no-op. The active domain of a structure is the
// set of elements that occur in some tuple, plus any elements registered
// explicitly with AddElement (needed for structures with isolated
// distinguished elements).
package relstr

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Tuple is an ordered list of domain elements.
type Tuple []int

// Clone returns a copy of t.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// Key returns a string key identifying t, usable as a map key.
func (t Tuple) Key() string {
	var b strings.Builder
	for i, v := range t {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(v))
	}
	return b.String()
}

func (t Tuple) String() string { return "(" + t.Key() + ")" }

// Equal reports whether t and u are identical tuples.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i] != u[i] {
			return false
		}
	}
	return true
}

// Compare orders tuples lexicographically (shorter prefixes first),
// returning -1, 0 or +1. This is the single comparison the evaluation
// runtime and the answer path share; it never materialises keys.
func Compare(a, b Tuple) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// relation holds the tuples of one relation symbol: an insertion-
// ordered, integer-hashed tuple set.
type relation struct {
	arity int
	set   TupleSet
}

// Structure is a finite relational structure: a vocabulary of relation
// symbols with fixed arities, and a set of tuples per symbol.
type Structure struct {
	rels  map[string]*relation
	extra map[int]bool // elements registered outside any tuple
}

// New returns an empty structure.
func New() *Structure {
	return &Structure{rels: map[string]*relation{}, extra: map[int]bool{}}
}

// Declare registers relation symbol name with the given arity. It is an
// error (panic) to redeclare a symbol with a different arity. Declaring
// an already-declared symbol with the same arity is a no-op.
func (s *Structure) Declare(name string, arity int) {
	if arity < 1 {
		panic(fmt.Sprintf("relstr: relation %q declared with arity %d", name, arity))
	}
	if r, ok := s.rels[name]; ok {
		if r.arity != arity {
			panic(fmt.Sprintf("relstr: relation %q redeclared with arity %d (was %d)", name, arity, r.arity))
		}
		return
	}
	s.rels[name] = &relation{arity: arity}
}

// Add inserts the fact name(elems...) into the structure, declaring the
// relation if needed. Duplicate facts are ignored. It reports whether
// the fact was newly added.
func (s *Structure) Add(name string, elems ...int) bool {
	r, ok := s.rels[name]
	if !ok {
		s.Declare(name, len(elems))
		r = s.rels[name]
	}
	if r.arity != len(elems) {
		panic(fmt.Sprintf("relstr: relation %q has arity %d, got tuple of length %d", name, r.arity, len(elems)))
	}
	return r.set.AddCopy(elems)
}

// AddElement registers e as a domain element even if it occurs in no
// tuple. This matters for tableaux of queries such as Q(x):-R(y,y),
// whose free variable is isolated.
func (s *Structure) AddElement(e int) { s.extra[e] = true }

// Has reports whether the fact name(elems...) is present.
func (s *Structure) Has(name string, elems ...int) bool {
	r, ok := s.rels[name]
	if !ok || r.arity != len(elems) {
		return false
	}
	return r.set.Has(elems)
}

// Remove deletes the fact name(elems...) if present, reporting whether
// it was removed.
func (s *Structure) Remove(name string, elems ...int) bool {
	r, ok := s.rels[name]
	if !ok || r.arity != len(elems) {
		return false
	}
	return r.set.Remove(elems)
}

// Relations returns the declared relation symbols in sorted order.
func (s *Structure) Relations() []string {
	names := make([]string, 0, len(s.rels))
	for n := range s.rels {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Arity returns the arity of relation name, or 0 if undeclared.
func (s *Structure) Arity(name string) int {
	if r, ok := s.rels[name]; ok {
		return r.arity
	}
	return 0
}

// MaxArity returns the maximum arity over all declared relations
// (0 for an empty vocabulary).
func (s *Structure) MaxArity() int {
	m := 0
	for _, r := range s.rels {
		if r.arity > m {
			m = r.arity
		}
	}
	return m
}

// Tuples returns the tuples of relation name in insertion order. The
// returned slice is owned by the structure and must not be modified.
func (s *Structure) Tuples(name string) []Tuple {
	if r, ok := s.rels[name]; ok {
		return r.set.Rows()
	}
	return nil
}

// SortedTuples returns the tuples of relation name in lexicographic
// order, as a fresh slice.
func (s *Structure) SortedTuples(name string) []Tuple {
	src := s.Tuples(name)
	out := make([]Tuple, len(src))
	copy(out, src)
	sort.Slice(out, func(i, j int) bool { return Compare(out[i], out[j]) < 0 })
	return out
}

// NumFacts returns the total number of tuples across all relations.
func (s *Structure) NumFacts() int {
	n := 0
	for _, r := range s.rels {
		n += r.set.Len()
	}
	return n
}

// Size returns the total size |D| = Σ arity·(#tuples), the standard
// size measure for structures.
func (s *Structure) Size() int {
	n := 0
	for _, r := range s.rels {
		n += r.arity * r.set.Len()
	}
	return n
}

// Domain returns the active domain in ascending order.
func (s *Structure) Domain() []int {
	set := s.DomainSet()
	out := make([]int, 0, len(set))
	for e := range set {
		out = append(out, e)
	}
	sort.Ints(out)
	return out
}

// DomainSet returns the active domain as a set. The returned map is
// fresh and may be modified by the caller.
func (s *Structure) DomainSet() map[int]bool {
	set := make(map[int]bool)
	for _, r := range s.rels {
		for _, t := range r.set.Rows() {
			for _, e := range t {
				set[e] = true
			}
		}
	}
	for e := range s.extra {
		set[e] = true
	}
	return set
}

// DomainSize returns |adom(s)|.
func (s *Structure) DomainSize() int { return len(s.DomainSet()) }

// Clone returns a deep copy of s.
func (s *Structure) Clone() *Structure {
	c := New()
	for name, r := range s.rels {
		c.Declare(name, r.arity)
		for _, t := range r.set.Rows() {
			c.Add(name, t...)
		}
	}
	for e := range s.extra {
		c.AddElement(e)
	}
	return c
}

// CloneSchema returns an empty structure with the same declared
// vocabulary as s.
func (s *Structure) CloneSchema() *Structure {
	c := New()
	for name, r := range s.rels {
		c.Declare(name, r.arity)
	}
	return c
}

// Equal reports whether s and o have the same vocabulary and exactly
// the same facts (and the same registered extra elements).
func (s *Structure) Equal(o *Structure) bool {
	if len(s.rels) != len(o.rels) {
		return false
	}
	for name, r := range s.rels {
		or, ok := o.rels[name]
		if !ok || or.arity != r.arity || or.set.Len() != r.set.Len() {
			return false
		}
		for _, t := range r.set.Rows() {
			if !or.set.Has(t) {
				return false
			}
		}
	}
	sd, od := s.DomainSet(), o.DomainSet()
	if len(sd) != len(od) {
		return false
	}
	for e := range sd {
		if !od[e] {
			return false
		}
	}
	return true
}

// ContainedIn reports whether every fact of s is a fact of o (the
// paper's "D1 is contained in D2": relation-wise ⊆).
func (s *Structure) ContainedIn(o *Structure) bool {
	for name, r := range s.rels {
		or, ok := o.rels[name]
		if !ok {
			if r.set.Len() == 0 {
				continue
			}
			return false
		}
		if or.arity != r.arity {
			return false
		}
		for _, t := range r.set.Rows() {
			if !or.set.Has(t) {
				return false
			}
		}
	}
	return true
}

// ProperlyContainedIn reports whether s ⊆ o fact-wise and some relation
// of o has a fact missing from s.
func (s *Structure) ProperlyContainedIn(o *Structure) bool {
	return s.ContainedIn(o) && s.NumFacts() < o.NumFacts()
}

// String renders the structure deterministically, e.g.
// "E(0,1) E(1,2) R(0,0,3)".
func (s *Structure) String() string {
	var parts []string
	for _, name := range s.Relations() {
		for _, t := range s.SortedTuples(name) {
			parts = append(parts, name+t.String())
		}
	}
	if len(parts) == 0 {
		return "⊥(empty)"
	}
	return strings.Join(parts, " ")
}
