package relstr

import (
	"fmt"
	"sort"
	"strings"
)

// Signature returns an isomorphism-invariant string for (s, dist):
// structures with different signatures are guaranteed non-isomorphic.
// It is based on iterated color refinement (1-dimensional
// Weisfeiler–Leman adapted to relational structures), so it is a cheap
// prefilter; equal signatures do not imply isomorphism.
func Signature(s *Structure, dist []int) string {
	colors := refine(s, dist)
	hist := map[string]int{}
	for _, c := range colors {
		hist[c]++
	}
	keys := make([]string, 0, len(hist))
	for k := range hist {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s×%d;", k, hist[k])
	}
	return b.String()
}

// refine computes stable refinement colors for every domain element.
func refine(s *Structure, dist []int) map[int]string {
	dom := s.Domain()
	colors := make(map[int]string, len(dom))
	distPos := map[int][]int{}
	for i, e := range dist {
		distPos[e] = append(distPos[e], i)
	}
	for _, e := range dom {
		colors[e] = fmt.Sprintf("d%v", distPos[e])
	}
	rels := s.Relations()
	for round := 0; round < len(dom); round++ {
		next := make(map[int]string, len(dom))
		sigs := make(map[int][]string, len(dom))
		for _, name := range rels {
			for _, t := range s.Tuples(name) {
				// For every position the element occupies, record the
				// relation, the position, and the colors of the whole
				// tuple.
				tc := make([]string, len(t))
				for i, e := range t {
					tc[i] = colors[e]
				}
				row := name + "(" + strings.Join(tc, ",") + ")"
				for i, e := range t {
					sigs[e] = append(sigs[e], fmt.Sprintf("%d@%s", i, row))
				}
			}
		}
		changed := false
		seen := map[string]bool{}
		for _, e := range dom {
			sg := sigs[e]
			sort.Strings(sg)
			next[e] = colors[e] + "|" + strings.Join(sg, ";")
			seen[next[e]] = true
		}
		// Compress colors to keep strings short.
		compress := make([]string, 0, len(seen))
		for c := range seen {
			compress = append(compress, c)
		}
		sort.Strings(compress)
		rank := make(map[string]int, len(compress))
		for i, c := range compress {
			rank[c] = i
		}
		classesBefore := countClasses(colors)
		for _, e := range dom {
			nc := fmt.Sprintf("c%d", rank[next[e]])
			if nc != colors[e] {
				changed = true
			}
			colors[e] = nc
		}
		if !changed || countClasses(colors) == classesBefore && round > 0 {
			break
		}
	}
	return colors
}

func countClasses(colors map[int]string) int {
	set := map[string]bool{}
	for _, c := range colors {
		set[c] = true
	}
	return len(set)
}

// Isomorphic reports whether (a, distA) and (b, distB) are isomorphic
// structures with distinguished tuples: a bijection between domains
// preserving all facts in both directions and mapping distA pointwise
// to distB. Intended for the small structures arising as tableaux;
// complexity is exponential in the worst case but color refinement
// prunes heavily.
func Isomorphic(a, b *Structure, distA, distB []int) bool {
	if len(distA) != len(distB) {
		return false
	}
	if a.DomainSize() != b.DomainSize() || a.NumFacts() != b.NumFacts() {
		return false
	}
	ra, rb := a.Relations(), b.Relations()
	if len(ra) != len(rb) {
		return false
	}
	for i := range ra {
		if ra[i] != rb[i] || a.Arity(ra[i]) != b.Arity(rb[i]) ||
			len(a.Tuples(ra[i])) != len(b.Tuples(rb[i])) {
			return false
		}
	}
	ca, cb := refine(a, distA), refine(b, distB)
	// Group b's elements by color.
	byColor := map[string][]int{}
	for e, c := range cb {
		byColor[c] = append(byColor[c], e)
	}
	// Color histograms must match.
	histA := map[string]int{}
	for _, c := range ca {
		histA[c]++
	}
	for c, n := range histA {
		if len(byColor[c]) != n {
			return false
		}
	}
	domA := a.Domain()
	// Order: distinguished first, then rarest color class first.
	sort.Slice(domA, func(i, j int) bool {
		return len(byColor[ca[domA[i]]]) < len(byColor[ca[domA[j]]])
	})
	f := map[int]int{}
	used := map[int]bool{}
	for i, e := range distA {
		if prev, ok := f[e]; ok {
			if prev != distB[i] {
				return false
			}
			continue
		}
		if used[distB[i]] {
			return false
		}
		if ca[e] != cb[distB[i]] {
			return false
		}
		f[e] = distB[i]
		used[distB[i]] = true
	}
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(domA) {
			return isoCheck(a, b, f)
		}
		v := domA[i]
		if _, ok := f[v]; ok {
			return rec(i + 1)
		}
		for _, w := range byColor[ca[v]] {
			if used[w] {
				continue
			}
			f[v] = w
			used[w] = true
			if partialIsoOK(a, b, f, v) && rec(i+1) {
				return true
			}
			delete(f, v)
			used[w] = false
		}
		return false
	}
	return rec(0)
}

// partialIsoOK checks all facts of a fully assigned under f that
// involve v map to facts of b.
func partialIsoOK(a, b *Structure, f map[int]int, v int) bool {
	for _, name := range a.Relations() {
	tuples:
		for _, t := range a.Tuples(name) {
			involves := false
			img := make([]int, len(t))
			for i, e := range t {
				if e == v {
					involves = true
				}
				w, ok := f[e]
				if !ok {
					continue tuples
				}
				img[i] = w
			}
			if involves && !b.Has(name, img...) {
				return false
			}
		}
	}
	return true
}

// isoCheck verifies f is a full isomorphism from a to b.
func isoCheck(a, b *Structure, f map[int]int) bool {
	for _, name := range a.Relations() {
		for _, t := range a.Tuples(name) {
			img := make([]int, len(t))
			for i, e := range t {
				w, ok := f[e]
				if !ok {
					return false
				}
				img[i] = w
			}
			if !b.Has(name, img...) {
				return false
			}
		}
	}
	// Same fact counts per relation (checked by caller) + injectivity
	// imply the inverse direction.
	seen := map[int]bool{}
	for _, w := range f {
		if seen[w] {
			return false
		}
		seen[w] = true
	}
	return true
}
