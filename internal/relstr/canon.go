package relstr

import (
	"fmt"
	"sort"
	"strings"
)

// Signature returns an isomorphism-invariant string for (s, dist):
// structures with different signatures are guaranteed non-isomorphic.
// It is based on iterated color refinement (1-dimensional
// Weisfeiler–Leman adapted to relational structures), so it is a cheap
// prefilter; equal signatures do not imply isomorphism.
func Signature(s *Structure, dist []int) string {
	colors := refine(s, dist)
	hist := map[string]int{}
	for _, c := range colors {
		hist[c]++
	}
	keys := make([]string, 0, len(hist))
	for k := range hist {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s×%d;", k, hist[k])
	}
	return b.String()
}

// refine computes stable refinement colors for every domain element.
func refine(s *Structure, dist []int) map[int]string {
	dom := s.Domain()
	colors := make(map[int]string, len(dom))
	distPos := map[int][]int{}
	for i, e := range dist {
		distPos[e] = append(distPos[e], i)
	}
	for _, e := range dom {
		colors[e] = fmt.Sprintf("d%v", distPos[e])
	}
	return refineFrom(s, colors)
}

// refineFrom iterates color refinement to a fixpoint starting from the
// given initial coloring. Refinement only ever splits classes, so any
// distinction present in the initial colors is preserved.
func refineFrom(s *Structure, initial map[int]string) map[int]string {
	dom := s.Domain()
	colors := make(map[int]string, len(dom))
	for e, c := range initial {
		colors[e] = c
	}
	rels := s.Relations()
	for round := 0; round < len(dom); round++ {
		next := make(map[int]string, len(dom))
		sigs := make(map[int][]string, len(dom))
		for _, name := range rels {
			for _, t := range s.Tuples(name) {
				// For every position the element occupies, record the
				// relation, the position, and the colors of the whole
				// tuple.
				tc := make([]string, len(t))
				for i, e := range t {
					tc[i] = colors[e]
				}
				row := name + "(" + strings.Join(tc, ",") + ")"
				for i, e := range t {
					sigs[e] = append(sigs[e], fmt.Sprintf("%d@%s", i, row))
				}
			}
		}
		changed := false
		seen := map[string]bool{}
		for _, e := range dom {
			sg := sigs[e]
			sort.Strings(sg)
			next[e] = colors[e] + "|" + strings.Join(sg, ";")
			seen[next[e]] = true
		}
		// Compress colors to keep strings short.
		compress := make([]string, 0, len(seen))
		for c := range seen {
			compress = append(compress, c)
		}
		sort.Strings(compress)
		rank := make(map[string]int, len(compress))
		for i, c := range compress {
			rank[c] = i
		}
		classesBefore := countClasses(colors)
		for _, e := range dom {
			nc := fmt.Sprintf("c%d", rank[next[e]])
			if nc != colors[e] {
				changed = true
			}
			colors[e] = nc
		}
		if !changed || countClasses(colors) == classesBefore && round > 0 {
			break
		}
	}
	return colors
}

func countClasses(colors map[int]string) int {
	set := map[string]bool{}
	for _, c := range colors {
		set[c] = true
	}
	return len(set)
}

// canonLeafCap bounds the number of complete labelings the canonical-
// form search may render. The cap is compared against the total size of
// the branch tree, which is an isomorphism invariant, so two isomorphic
// structures either both complete the exact search or both fall back —
// the key stays deterministic per isomorphism class either way.
const canonLeafCap = 2048

// CanonicalKey returns a string identifying the pointed structure
// (s, dist) up to isomorphism: isomorphic inputs get equal keys, and
// equal keys imply isomorphism (the key embeds a full rendering of the
// facts under an explicit labeling). It is the cache key for prepared
// queries: tableaux of alpha-equivalent queries are isomorphic, so they
// collide exactly as they should.
//
// The search individualizes one element of the canonically chosen
// non-singleton color class at a time, re-refines, and takes the
// lexicographically least complete rendering. For inputs whose symmetry
// exceeds canonLeafCap complete labelings, it falls back to a
// deterministic heuristic labeling: keys remain sound (equal keys still
// imply isomorphism) but isomorphic variants may then get distinct
// keys, which costs at most a cache miss.
func CanonicalKey(s *Structure, dist []int) string {
	colors := refine(s, dist)
	c := &canonSearch{s: s, dist: dist}
	if c.dfs(colors) {
		return "c|" + c.best
	}
	// Fallback: order by (refinement color, element id).
	dom := s.Domain()
	sort.SliceStable(dom, func(i, j int) bool {
		if colors[dom[i]] != colors[dom[j]] {
			return colors[dom[i]] < colors[dom[j]]
		}
		return dom[i] < dom[j]
	})
	rank := make(map[int]int, len(dom))
	for i, e := range dom {
		rank[e] = i
	}
	return "h|" + renderRanked(s, dist, rank)
}

type canonSearch struct {
	s      *Structure
	dist   []int
	best   string
	leaves int
}

// dfs explores the individualization tree under colors, keeping the
// minimal rendering in c.best. It returns false once the leaf budget is
// exhausted.
func (c *canonSearch) dfs(colors map[int]string) bool {
	// Group elements by color; pick the target class canonically: the
	// smallest non-singleton class, ties broken by color string.
	byColor := map[string][]int{}
	for e, col := range colors {
		byColor[col] = append(byColor[col], e)
	}
	targetColor := ""
	for col, members := range byColor {
		if len(members) < 2 {
			continue
		}
		if targetColor == "" ||
			len(members) < len(byColor[targetColor]) ||
			len(members) == len(byColor[targetColor]) && col < targetColor {
			targetColor = col
		}
	}
	if targetColor == "" {
		// Discrete coloring: the color order is the labeling.
		c.leaves++
		if c.leaves > canonLeafCap {
			return false
		}
		type ec struct {
			e   int
			col string
		}
		elems := make([]ec, 0, len(colors))
		for e, col := range colors {
			elems = append(elems, ec{e, col})
		}
		sort.Slice(elems, func(i, j int) bool { return elems[i].col < elems[j].col })
		rank := make(map[int]int, len(elems))
		for i, x := range elems {
			rank[x.e] = i
		}
		r := renderRanked(c.s, c.dist, rank)
		if c.best == "" || r < c.best {
			c.best = r
		}
		return true
	}
	for _, e := range byColor[targetColor] {
		next := make(map[int]string, len(colors))
		for k, v := range colors {
			next[k] = v
		}
		next[e] = next[e] + "*"
		if !c.dfs(refineFrom(c.s, next)) {
			return false
		}
	}
	return true
}

// renderRanked renders (s, dist) under the element→rank labeling:
// domain size, the distinguished tuple, and every fact with elements
// replaced by ranks, relations and tuples in sorted order. Equal
// renderings imply isomorphism (the rendering reconstructs the
// structure up to the labeling).
func renderRanked(s *Structure, dist []int, rank map[int]int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "n%d;d", len(rank))
	for _, d := range dist {
		fmt.Fprintf(&b, "%d,", rank[d])
	}
	for _, name := range s.Relations() {
		tuples := s.Tuples(name)
		rows := make([]string, len(tuples))
		for i, t := range tuples {
			var r strings.Builder
			for j, e := range t {
				if j > 0 {
					r.WriteByte(',')
				}
				fmt.Fprintf(&r, "%d", rank[e])
			}
			rows[i] = r.String()
		}
		sort.Strings(rows)
		fmt.Fprintf(&b, ";%s(%d):%s", name, s.Arity(name), strings.Join(rows, "|"))
	}
	return b.String()
}

// Isomorphic reports whether (a, distA) and (b, distB) are isomorphic
// structures with distinguished tuples: a bijection between domains
// preserving all facts in both directions and mapping distA pointwise
// to distB. Intended for the small structures arising as tableaux;
// complexity is exponential in the worst case but color refinement
// prunes heavily.
func Isomorphic(a, b *Structure, distA, distB []int) bool {
	if len(distA) != len(distB) {
		return false
	}
	if a.DomainSize() != b.DomainSize() || a.NumFacts() != b.NumFacts() {
		return false
	}
	ra, rb := a.Relations(), b.Relations()
	if len(ra) != len(rb) {
		return false
	}
	for i := range ra {
		if ra[i] != rb[i] || a.Arity(ra[i]) != b.Arity(rb[i]) ||
			len(a.Tuples(ra[i])) != len(b.Tuples(rb[i])) {
			return false
		}
	}
	ca, cb := refine(a, distA), refine(b, distB)
	// Group b's elements by color.
	byColor := map[string][]int{}
	for e, c := range cb {
		byColor[c] = append(byColor[c], e)
	}
	// Color histograms must match.
	histA := map[string]int{}
	for _, c := range ca {
		histA[c]++
	}
	for c, n := range histA {
		if len(byColor[c]) != n {
			return false
		}
	}
	domA := a.Domain()
	// Order: distinguished first, then rarest color class first.
	sort.Slice(domA, func(i, j int) bool {
		return len(byColor[ca[domA[i]]]) < len(byColor[ca[domA[j]]])
	})
	f := map[int]int{}
	used := map[int]bool{}
	for i, e := range distA {
		if prev, ok := f[e]; ok {
			if prev != distB[i] {
				return false
			}
			continue
		}
		if used[distB[i]] {
			return false
		}
		if ca[e] != cb[distB[i]] {
			return false
		}
		f[e] = distB[i]
		used[distB[i]] = true
	}
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(domA) {
			return isoCheck(a, b, f)
		}
		v := domA[i]
		if _, ok := f[v]; ok {
			return rec(i + 1)
		}
		for _, w := range byColor[ca[v]] {
			if used[w] {
				continue
			}
			f[v] = w
			used[w] = true
			if partialIsoOK(a, b, f, v) && rec(i+1) {
				return true
			}
			delete(f, v)
			used[w] = false
		}
		return false
	}
	return rec(0)
}

// partialIsoOK checks all facts of a fully assigned under f that
// involve v map to facts of b.
func partialIsoOK(a, b *Structure, f map[int]int, v int) bool {
	for _, name := range a.Relations() {
	tuples:
		for _, t := range a.Tuples(name) {
			involves := false
			img := make([]int, len(t))
			for i, e := range t {
				if e == v {
					involves = true
				}
				w, ok := f[e]
				if !ok {
					continue tuples
				}
				img[i] = w
			}
			if involves && !b.Has(name, img...) {
				return false
			}
		}
	}
	return true
}

// isoCheck verifies f is a full isomorphism from a to b.
func isoCheck(a, b *Structure, f map[int]int) bool {
	for _, name := range a.Relations() {
		for _, t := range a.Tuples(name) {
			img := make([]int, len(t))
			for i, e := range t {
				w, ok := f[e]
				if !ok {
					return false
				}
				img[i] = w
			}
			if !b.Has(name, img...) {
				return false
			}
		}
	}
	// Same fact counts per relation (checked by caller) + injectivity
	// imply the inverse direction.
	seen := map[int]bool{}
	for _, w := range f {
		if seen[w] {
			return false
		}
		seen[w] = true
	}
	return true
}
