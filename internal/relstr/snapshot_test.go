package relstr

import (
	"reflect"
	"testing"
)

func snapFixture() *Structure {
	s := New()
	s.Add("E", 1, 2)
	s.Add("E", 2, 3)
	s.Add("E", 3, 3)
	s.Add("R", 1, 1, 2)
	s.Add("R", 1, 2, 2)
	s.Add("R", 5, 5, 5)
	return s
}

func identity(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

func sortedRowSet(rows [][]int) []Tuple {
	out := make([]Tuple, len(rows))
	for i, r := range rows {
		out[i] = Tuple(r).Clone()
	}
	SortTuples(out)
	return out
}

// SortTuples sorts in place by the shared tuple order (test helper).
func SortTuples(ts []Tuple) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && Compare(ts[j], ts[j-1]) < 0; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}

func TestSnapshotViewsAndIndexes(t *testing.T) {
	s := snapFixture()
	sn := NewSnapshot(s)
	if sn.NumFacts() != 6 || sn.Arity("R") != 3 {
		t.Fatalf("snapshot shape: facts %d, R arity %d", sn.NumFacts(), sn.Arity("R"))
	}
	// Mutating the source after snapshotting must not leak in.
	s.Add("E", 9, 9)
	if sn.NumFacts() != 6 {
		t.Fatal("snapshot saw a post-freeze mutation")
	}

	// Identity view = the relation itself.
	v := sn.View("E", identity(2))
	if v.Len() != 3 {
		t.Fatalf("identity view rows = %d", v.Len())
	}
	// Pattern view R(x,x,y): rows with col0 == col1, projected to (x,y).
	v2 := sn.View("R", []int{0, 0, 2})
	want := []Tuple{{1, 2}, {5, 5}}
	if got := sortedRowSet(v2.Rows()); !reflect.DeepEqual(got, want) {
		t.Fatalf("pattern view rows = %v, want %v", got, want)
	}
	// Cached: same pointer on repeat lookup.
	if sn.View("R", []int{0, 0, 2}) != v2 {
		t.Fatal("view not cached")
	}
	// Unknown relation / arity mismatch: empty.
	if sn.View("X", identity(2)).Len() != 0 || sn.View("E", identity(3)).Len() != 0 {
		t.Fatal("missing/mismatched views not empty")
	}

	// Index probing with First/Next walks all matches.
	ix, built := v.Index([]int{1})
	if !built {
		t.Fatal("first Index call did not build")
	}
	if _, built := v.Index([]int{1}); built {
		t.Fatal("second Index call rebuilt")
	}
	probe := []int{0, 3} // find E rows with second column 3
	var hits int
	for id := ix.First(probe, []int{1}); id >= 0; id = ix.Next(id, probe, []int{1}) {
		if v.Rows()[id][1] != 3 {
			t.Fatalf("probe hit wrong row %v", v.Rows()[id])
		}
		hits++
	}
	if hits != 2 {
		t.Fatalf("probe hits = %d, want 2 (E(2,3), E(3,3))", hits)
	}
	st := sn.Stats()
	if st.Views < 2 || st.IndexesCached != 1 || st.IndexBuilds != 1 || st.IndexHits != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSnapshotIndexCacheBound(t *testing.T) {
	s := New()
	s.Add("W", 1, 2, 3, 4, 5, 6)
	s.Add("W", 2, 3, 4, 5, 6, 7)
	sn := NewSnapshot(s)
	v := sn.View("W", identity(6))
	// More distinct column sets than the per-relation bound admits:
	// all 30 ordered pairs, then the 6 singletons (the tail exceeds
	// the cap and must be served transiently).
	var colSets [][]int
	for a := 0; a < 6; a++ {
		for b := 0; b < 6; b++ {
			if a != b {
				colSets = append(colSets, []int{a, b})
			}
		}
	}
	for a := 0; a < 6; a++ {
		colSets = append(colSets, []int{a})
	}
	for _, cols := range colSets {
		if ix, _ := v.Index(cols); ix.First(s.Tuples("W")[0], cols) < 0 {
			t.Fatalf("index on %v cannot find its own row", cols)
		}
	}
	st := sn.Stats()
	if st.IndexesCached > defaultIndexCap {
		t.Fatalf("cache exceeded its bound: %d > %d", st.IndexesCached, defaultIndexCap)
	}
	if st.IndexBuilds != uint64(len(colSets)) {
		t.Fatalf("builds = %d, want %d", st.IndexBuilds, len(colSets))
	}
	// Beyond-cap indexes are rebuilt per call (and still work).
	last := colSets[len(colSets)-1]
	if _, built := v.Index(last); !built {
		t.Fatal("beyond-cap index unexpectedly cached")
	}
}

func TestSnapshotUpdateCOW(t *testing.T) {
	sn := NewSnapshot(snapFixture())
	vE := sn.View("E", identity(2))
	vE.Index([]int{0})
	vR := sn.View("R", identity(3))

	d := NewDelta().Insert("R", 7, 8, 9).Delete("R", 5, 5, 5).Insert("S", 1)
	next, err := sn.Update(d)
	if err != nil {
		t.Fatal(err)
	}
	if next.Version() <= sn.Version() {
		t.Fatalf("version did not advance: %d -> %d", sn.Version(), next.Version())
	}
	// The old snapshot is untouched.
	if sn.NumFacts() != 6 || !sn.Structure().Has("R", 5, 5, 5) || sn.Arity("S") != 0 {
		t.Fatal("Update mutated the original snapshot")
	}
	// The fork sees the delta.
	if !next.Structure().Has("R", 7, 8, 9) || next.Structure().Has("R", 5, 5, 5) || next.Arity("S") != 1 {
		t.Fatalf("fork contents wrong: %v", next.Structure())
	}
	// Untouched relations share views (and thereby warm indexes).
	if next.View("E", identity(2)) != vE {
		t.Fatal("untouched relation did not share its view across Update")
	}
	// Touched relations do not.
	if next.View("R", identity(3)) == vR {
		t.Fatal("touched relation leaked its stale view into the fork")
	}
	if next.View("R", identity(3)).Len() != 3 {
		t.Fatalf("fork R view rows = %d, want 3", next.View("R", identity(3)).Len())
	}

	// An empty delta returns the snapshot itself.
	same, err := sn.Update(NewDelta())
	if err != nil || same != sn {
		t.Fatalf("empty delta: %v, %v", same, err)
	}
}

func TestSnapshotDeltaValidation(t *testing.T) {
	sn := NewSnapshot(snapFixture())
	cases := []*Delta{
		NewDelta().Insert("E", 1, 2, 3),             // arity mismatch on insert
		NewDelta().Delete("E", 1),                   // arity mismatch on delete
		NewDelta().Insert("X", 1).Insert("X", 1, 2), // mixed arity new relation
		NewDelta().Insert("", 1),                    // empty relation name
	}
	for i, d := range cases {
		if _, err := sn.Update(d); err == nil {
			t.Fatalf("case %d: bad delta accepted", i)
		}
	}
	// Delete-only on an unknown relation is a no-op, not an error.
	next, err := sn.Update(NewDelta().Delete("X", 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if next.NumFacts() != sn.NumFacts() {
		t.Fatal("no-op delete changed the snapshot")
	}
}
