// Package cqerr defines the typed error taxonomy shared by every layer
// of the library. The sentinels here are re-exported by the public
// facade; internal packages wrap them with context so callers can both
// branch on errors.Is and read a meaningful message.
package cqerr

import (
	"context"
	"errors"
	"fmt"
)

// ErrCanceled reports that a search or evaluation was interrupted by
// context cancellation or deadline expiry before completing. The
// messages carry no package prefix so CLIs can add their own without
// stuttering.
var ErrCanceled = errors.New("canceled")

// ErrBudgetExceeded reports that an input exceeds a configured search
// budget (e.g. Options.MaxVars): the operation was refused rather than
// risking a super-exponential run.
var ErrBudgetExceeded = errors.New("search budget exceeded")

// ErrNotInClass reports that no query of the requested class satisfies
// the required relationship to the input (e.g. no C-query is contained
// in Q, which can only happen for incompatible head arities).
var ErrNotInClass = errors.New("no query of the class qualifies")

// Canceled wraps ErrCanceled with the context's own cause so that both
// errors.Is(err, ErrCanceled) and errors.Is(err, context.Canceled) /
// context.DeadlineExceeded hold.
func Canceled(ctx context.Context) error {
	cause := context.Cause(ctx)
	if cause == nil {
		cause = ctx.Err()
	}
	return fmt.Errorf("%w: %w", ErrCanceled, cause)
}

// Check polls ctx (nil means "never cancelled", the convention of the
// internal search layers) and returns the wrapped cancellation error
// once it has expired, nil otherwise.
func Check(ctx context.Context) error {
	if ctx != nil && ctx.Err() != nil {
		return Canceled(ctx)
	}
	return nil
}
