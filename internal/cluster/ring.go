// Package cluster implements the sharding layer of a cqapproxd
// cluster: consistent-hash membership over a static peer list,
// relation-level placement of registered databases (small relations
// replicated to every shard, large ones tuple-partitioned), and the
// delta routing that keeps shard slices in step with the full copy.
//
// The paper's static/dynamic split is what makes the distribution
// boundary this thin: prepare (minimisation + C-approximation search)
// keys on canonical wire values and stays node-local, so only the
// polynomial dynamic phase — Yannakakis-style evaluation over the
// data — fans out. The correctness contract the placement upholds is
// union-decomposability: when the evaluated query references at most
// one tuple-partitioned atom occurrence (every other atom's relation
// replicated everywhere), the union of per-shard answer sets equals
// the single-node answer set, because any witness homomorphism maps
// the partitioned atom onto one concrete tuple, and that tuple lives
// in exactly one shard alongside full copies of everything else.
package cluster

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVirtualNodes is the per-member virtual-node count of NewRing:
// enough to keep the largest/smallest member load ratio close to one
// at small cluster sizes without making Owner's binary search matter.
const DefaultVirtualNodes = 64

// DefaultReplicateBelow is the fact-count threshold under which a
// relation is replicated to every shard instead of tuple-partitioned.
// Semijoin reductions against small dimension relations then stay
// shard-local; only genuinely large relations pay partitioning.
const DefaultReplicateBelow = 1024

// Config is the static cluster membership of one cqapproxd node.
// The zero value (no peers) means clustering is disabled.
type Config struct {
	// Peers lists every node's base URL, coordinator included, in a
	// fixed order shared by all nodes — the ring hashes member names,
	// so the list must be identical (order and spelling) cluster-wide.
	Peers []string
	// Self is this node's index into Peers.
	Self int
	// ReplicateBelow is the replication threshold in facts; relations
	// with fewer facts are copied to every shard. 0 selects
	// DefaultReplicateBelow; negative replicates nothing.
	ReplicateBelow int
}

// Enabled reports whether the config describes an actual cluster
// (two or more members).
func (c Config) Enabled() bool { return len(c.Peers) > 1 }

// Validate checks the member list and self index.
func (c Config) Validate() error {
	if len(c.Peers) == 0 {
		return nil
	}
	if c.Self < 0 || c.Self >= len(c.Peers) {
		return fmt.Errorf("cluster: self index %d outside peer list of %d", c.Self, len(c.Peers))
	}
	seen := map[string]bool{}
	for i, p := range c.Peers {
		if p == "" {
			return fmt.Errorf("cluster: empty peer address at index %d", i)
		}
		if seen[p] {
			return fmt.Errorf("cluster: duplicate peer address %q", p)
		}
		seen[p] = true
	}
	return nil
}

// ReplicateThreshold resolves ReplicateBelow's conventions to the
// effective fact-count threshold Plan partitions against.
func (c Config) ReplicateThreshold() int {
	switch {
	case c.ReplicateBelow == 0:
		return DefaultReplicateBelow
	case c.ReplicateBelow < 0:
		return 0
	}
	return c.ReplicateBelow
}

// Ring is a consistent-hash ring over the member list: each member
// owns the arc below each of its virtual-node hashes. Placement is a
// pure function of the member names and the key bytes (FNV-64a), so
// every node — and every process run — computes identical owners.
// Immutable once built; safe for concurrent use.
type Ring struct {
	members []string
	vnodes  []vnode // sorted by hash
}

type vnode struct {
	hash   uint64
	member int
}

// mix64 finalises an FNV hash with the splitmix64 avalanche: raw
// FNV-64a over short, similar keys (peer URLs differing in one digit,
// small-integer tuples) leaves enough correlation in the high bits to
// skew arc lengths badly; the mixer spreads every input bit over the
// whole word.
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// NewRing builds the ring over members with vnodesPer virtual nodes
// each (0 selects DefaultVirtualNodes).
func NewRing(members []string, vnodesPer int) *Ring {
	if vnodesPer <= 0 {
		vnodesPer = DefaultVirtualNodes
	}
	r := &Ring{members: append([]string{}, members...)}
	r.vnodes = make([]vnode, 0, len(members)*vnodesPer)
	for m, name := range r.members {
		for v := 0; v < vnodesPer; v++ {
			h := fnv.New64a()
			h.Write([]byte(name))
			var idx [8]byte
			binary.LittleEndian.PutUint64(idx[:], uint64(v))
			h.Write(idx[:])
			r.vnodes = append(r.vnodes, vnode{hash: mix64(h.Sum64()), member: m})
		}
	}
	sort.Slice(r.vnodes, func(i, j int) bool {
		a, b := r.vnodes[i], r.vnodes[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.member < b.member // deterministic on (vanishingly rare) hash ties
	})
	return r
}

// Members returns the member list the ring was built over.
func (r *Ring) Members() []string { return r.members }

// Size returns the member count.
func (r *Ring) Size() int { return len(r.members) }

// owner maps a key hash to the member owning it: the first virtual
// node at or clockwise of the hash.
func (r *Ring) owner(h uint64) int {
	i := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].hash >= h })
	if i == len(r.vnodes) {
		i = 0
	}
	return r.vnodes[i].member
}

// Owner returns the member index owning an arbitrary string key.
func (r *Ring) Owner(key string) int {
	h := fnv.New64a()
	h.Write([]byte(key))
	return r.owner(mix64(h.Sum64()))
}

// OwnerOfTuple returns the member index owning one fact: the FNV-64a
// hash of the relation name, a NUL separator, and the tuple's elements
// in fixed-width little-endian — byte-stable across processes and
// architectures, so coordinator and peers agree on every placement.
func (r *Ring) OwnerOfTuple(rel string, t []int) int {
	h := fnv.New64a()
	h.Write([]byte(rel))
	h.Write([]byte{0})
	var buf [8]byte
	for _, e := range t {
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(e)))
		h.Write(buf[:])
	}
	return r.owner(mix64(h.Sum64()))
}
