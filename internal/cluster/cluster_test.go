package cluster

import (
	"testing"

	"cqapprox/internal/relstr"
)

var testMembers = []string{"http://node0", "http://node1", "http://node2"}

// TestRingPlacementGolden pins the placement function: the ring is a
// pure function of member names and key bytes, and every node of a
// cluster — and every release — must compute the same owners, or
// coordinator and peers silently disagree about where tuples live.
// A change here is a wire-compatibility break, not a refactor.
func TestRingPlacementGolden(t *testing.T) {
	r := NewRing(testMembers, 0)
	keys := []struct {
		key  string
		want int
	}{
		{"alpha", 2},
		{"beta", 1},
		{"gamma", 1},
		{"delta", 1},
		{"epsilon", 2},
		{"db0", 2},
		{"db1", 1},
		{"social", 2},
	}
	for _, g := range keys {
		if got := r.Owner(g.key); got != g.want {
			t.Errorf("Owner(%q) = %d, want %d", g.key, got, g.want)
		}
	}
	tuples := []struct {
		rel  string
		t    []int
		want int
	}{
		{"E", []int{0, 1}, 1},
		{"E", []int{1, 2}, 0},
		{"E", []int{2, 3}, 1},
		{"E", []int{3, 4}, 1},
		{"E", []int{4, 5}, 2},
		{"E", []int{5, 6}, 0},
		{"R1", []int{0, 1}, 2},
		{"R1", []int{1, 2}, 1},
		{"R1", []int{2, 3}, 0},
		{"R1", []int{3, 4}, 1},
		{"R1", []int{4, 5}, 1},
		{"R1", []int{5, 6}, 2},
	}
	for _, g := range tuples {
		if got := r.OwnerOfTuple(g.rel, g.t); got != g.want {
			t.Errorf("OwnerOfTuple(%q, %v) = %d, want %d", g.rel, g.t, got, g.want)
		}
	}
}

// TestRingBalance bounds the load skew of tuple placement: with the
// default virtual-node count no member should own more than ~1.5× its
// fair share of a large key population.
func TestRingBalance(t *testing.T) {
	r := NewRing(testMembers, 0)
	counts := make([]int, len(testMembers))
	const n = 3000
	for i := 0; i < n; i++ {
		counts[r.OwnerOfTuple("E", []int{i, i * 7})]++
	}
	fair := n / len(testMembers)
	for m, c := range counts {
		if c > fair*3/2 || c < fair/2 {
			t.Errorf("member %d owns %d of %d keys (fair share %d): ring too skewed", m, c, n, fair)
		}
	}
}

// TestRingRebalance asserts the consistent-hashing contract: adding a
// member only moves keys TO the new member (no shuffling between the
// surviving members), and the moved fraction is close to the new
// member's fair share.
func TestRingRebalance(t *testing.T) {
	old := NewRing(testMembers, 0)
	grown := NewRing(append(append([]string{}, testMembers...), "http://node3"), 0)
	const n = 4000
	moved := 0
	for i := 0; i < n; i++ {
		tup := []int{i, i*13 + 1}
		a, b := old.OwnerOfTuple("E", tup), grown.OwnerOfTuple("E", tup)
		if a == b {
			continue
		}
		moved++
		if b != 3 {
			t.Fatalf("key %v moved between surviving members %d -> %d on grow", tup, a, b)
		}
	}
	// Fair share of the 4-member ring is n/4; allow a wide band since
	// arc lengths vary.
	if moved < n/8 || moved > n/2 {
		t.Errorf("grow moved %d of %d keys, want about %d", moved, n, n/4)
	}

	// Shrinking is the mirror image: keys move only FROM the removed
	// member.
	shrunk := NewRing(testMembers[:2], 0)
	for i := 0; i < n; i++ {
		tup := []int{i, i*13 + 1}
		a, b := old.OwnerOfTuple("E", tup), shrunk.OwnerOfTuple("E", tup)
		if a != b && a != 2 {
			t.Fatalf("key %v moved between surviving members %d -> %d on shrink", tup, a, b)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	ok := Config{Peers: testMembers, Self: 1}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if !ok.Enabled() {
		t.Fatal("3-member config not enabled")
	}
	if (Config{}).Enabled() {
		t.Fatal("zero config enabled")
	}
	bad := []Config{
		{Peers: testMembers, Self: 3},
		{Peers: testMembers, Self: -1},
		{Peers: []string{"a", ""}, Self: 0},
		{Peers: []string{"a", "a"}, Self: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func testDB() *relstr.Structure {
	s := relstr.New()
	s.Declare("E", 2)
	s.Declare("R1", 2)
	for i := 0; i < 200; i++ {
		s.Add("E", i, (i*3+1)%200)
	}
	for i := 0; i < 10; i++ {
		s.Add("R1", i, i+1)
	}
	return s
}

// TestPlacementSplit checks the split invariants: schema-complete
// shards, replicated relations copied in full, partitioned relations
// partitioned exactly (disjoint, covering, on the owning shard).
func TestPlacementSplit(t *testing.T) {
	db := testDB()
	ring := NewRing(testMembers, 0)
	p := Plan(db, ring, 50) // E (200 facts) partitioned, R1 (10) replicated
	if !p.Partitioned("E") || p.Partitioned("R1") {
		t.Fatalf("placement: Partitioned(E)=%v Partitioned(R1)=%v", p.Partitioned("E"), p.Partitioned("R1"))
	}
	if p.Partitioned("unknown") {
		t.Fatal("unknown relation reported partitioned")
	}
	rep, part := p.Counts()
	if rep != 1 || part != 1 {
		t.Fatalf("Counts() = (%d, %d), want (1, 1)", rep, part)
	}
	shards := p.Split(db)
	if len(shards) != 3 {
		t.Fatalf("Split returned %d shards", len(shards))
	}
	totalE := 0
	for i, sh := range shards {
		if got := len(sh.Tuples("R1")); got != 10 {
			t.Errorf("shard %d has %d R1 facts, want the full 10", i, got)
		}
		for _, tup := range sh.Tuples("E") {
			if own := p.Owner("E", tup); own != i {
				t.Errorf("shard %d holds E%v owned by %d", i, tup, own)
			}
		}
		totalE += len(sh.Tuples("E"))
		if sh.Arity("E") != 2 || sh.Arity("R1") != 2 {
			t.Errorf("shard %d schema incomplete", i)
		}
	}
	if totalE != 200 {
		t.Errorf("partitioned E facts across shards = %d, want 200 (disjoint cover)", totalE)
	}
}

// TestRouteDelta checks delta routing: partitioned changes reach only
// the owning shard, replicated changes reach every shard, unknown
// relations are treated as replicated, untouched shards get nil.
func TestRouteDelta(t *testing.T) {
	db := testDB()
	ring := NewRing(testMembers, 0)
	p := Plan(db, ring, 50)

	ins := []int{1000, 1001}
	d := relstr.NewDelta().Insert("E", ins...).Delete("E", 0, 1)
	routed := p.RouteDelta(d)
	owner, delOwner := p.Owner("E", ins), p.Owner("E", []int{0, 1})
	for i, rd := range routed {
		wantTouched := i == owner || i == delOwner
		if (rd != nil) != wantTouched {
			t.Fatalf("shard %d delta presence = %v, want %v", i, rd != nil, wantTouched)
		}
		if rd == nil {
			continue
		}
		if i == owner && len(rd.Inserts("E")) != 1 {
			t.Errorf("owning shard %d missing the insert", i)
		}
		if i != owner && len(rd.Inserts("E")) != 0 {
			t.Errorf("shard %d got an insert it does not own", i)
		}
		if i == delOwner && len(rd.Deletes("E")) != 1 {
			t.Errorf("owning shard %d missing the delete", i)
		}
	}

	// Replicated and unknown relations fan to every shard.
	d2 := relstr.NewDelta().Insert("R1", 99, 100).Insert("Fresh", 1)
	for i, rd := range p.RouteDelta(d2) {
		if rd == nil {
			t.Fatalf("shard %d missed a replicated delta", i)
		}
		if len(rd.Inserts("R1")) != 1 || len(rd.Inserts("Fresh")) != 1 {
			t.Errorf("shard %d replicated delta incomplete", i)
		}
	}
}
