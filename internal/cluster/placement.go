package cluster

import (
	"sort"

	"cqapprox/internal/relstr"
)

// Placement is the sharding decision for one registered database,
// fixed at registration time: per relation, either replicated (full
// copy on every shard) or tuple-partitioned over the ring. Deltas are
// routed under the registration-time decision — a relation that has
// grown past the threshold since is not re-partitioned until the
// database is re-registered, so coordinator and peers never disagree
// about where a tuple lives.
type Placement struct {
	ring       *Ring
	replicated map[string]bool // known relation -> replicated?
}

// Plan decides the placement of s over the ring: relations with fewer
// than replicateBelow facts are replicated, the rest are partitioned
// tuple-wise by consistent hash.
func Plan(s *relstr.Structure, ring *Ring, replicateBelow int) *Placement {
	p := &Placement{ring: ring, replicated: map[string]bool{}}
	for _, rel := range s.Relations() {
		p.replicated[rel] = len(s.Tuples(rel)) < replicateBelow
	}
	return p
}

// Shards returns the shard count.
func (p *Placement) Shards() int { return p.ring.Size() }

// Partitioned reports whether rel is tuple-partitioned: known at
// planning time and over the replication threshold. Unknown relations
// report false — they had no tuples to partition, so every shard
// agrees they are (emptily) replicated.
func (p *Placement) Partitioned(rel string) bool {
	rep, known := p.replicated[rel]
	return known && !rep
}

// Counts returns how many relations are replicated vs partitioned.
func (p *Placement) Counts() (replicated, partitioned int) {
	for _, rep := range p.replicated {
		if rep {
			replicated++
		} else {
			partitioned++
		}
	}
	return
}

// Owner returns the shard owning one fact of a partitioned relation.
func (p *Placement) Owner(rel string, t []int) int {
	return p.ring.OwnerOfTuple(rel, t)
}

// Split materialises the per-shard slices of s: every shard gets the
// full schema (so per-shard evaluation sees empty views, not missing
// relations), every replicated relation in full, and its owned share
// of each partitioned relation.
func (p *Placement) Split(s *relstr.Structure) []*relstr.Structure {
	shards := make([]*relstr.Structure, p.ring.Size())
	for i := range shards {
		shards[i] = s.CloneSchema()
	}
	for _, rel := range s.Relations() {
		if !p.Partitioned(rel) {
			for _, sh := range shards {
				for _, t := range s.Tuples(rel) {
					sh.Add(rel, t...)
				}
			}
			continue
		}
		for _, t := range s.Tuples(rel) {
			shards[p.ring.OwnerOfTuple(rel, t)].Add(rel, t...)
		}
	}
	return shards
}

// RouteDelta splits a delta along the placement: changes to a
// replicated relation go to every shard, changes to a partitioned
// relation go to the owning shard only. Relations the placement has
// never seen (a delta introducing a new relation) are treated as
// replicated — every shard stays schema-complete and no owner
// disagreement is possible. Shards a delta does not touch get nil.
func (p *Placement) RouteDelta(d *relstr.Delta) []*relstr.Delta {
	out := make([]*relstr.Delta, p.ring.Size())
	shard := func(i int) *relstr.Delta {
		if out[i] == nil {
			out[i] = relstr.NewDelta()
		}
		return out[i]
	}
	rels := append([]string{}, d.Touched()...)
	sort.Strings(rels)
	for _, rel := range rels {
		part := p.Partitioned(rel)
		for _, t := range d.Inserts(rel) {
			if part {
				shard(p.ring.OwnerOfTuple(rel, t)).Insert(rel, t...)
			} else {
				for i := range out {
					shard(i).Insert(rel, t...)
				}
			}
		}
		for _, t := range d.Deletes(rel) {
			if part {
				shard(p.ring.OwnerOfTuple(rel, t)).Delete(rel, t...)
			} else {
				for i := range out {
					shard(i).Delete(rel, t...)
				}
			}
		}
	}
	return out
}
