package gadgets

import (
	"fmt"
	"strings"

	"cqapprox/internal/digraph"
	"cqapprox/internal/relstr"
)

// This file builds the machinery of Theorem 4.12 (DP-completeness of
// Graph Acyclic Approximation): the incomparable oriented paths P_i,
// the connector paths P_ij and P_ijk, the balanced gadget Q*, the
// acyclic targets T_1…T_5 and the big target T, and the extended
// choosers of Claim 8.9. Each construction follows the appendix
// verbatim; the test suite verifies Claims 8.1–8.9 computationally.

// PiDesc returns the description string of P_i = 0^{i+1} 1 0^{11−i}
// for 1 ≤ i ≤ 9 (all have net length 11 and are incomparable cores).
func PiDesc(i int) string {
	if i < 1 || i > 9 {
		panic(fmt.Sprintf("gadgets: PiDesc(%d) out of range", i))
	}
	return strings.Repeat("0", i+1) + "1" + strings.Repeat("0", 11-i)
}

// Pi returns the oriented path P_i.
func Pi(i int) digraph.OrientedPath {
	return digraph.OrientedPathFromString(PiDesc(i))
}

// PijDesc returns P_ij = 0^{i+1} 1 0 0^{j−i} 1 0^{11−j} (Claim 8.1):
// an oriented path mapping into P_i and P_j but no other P_k.
func PijDesc(i, j int) string {
	if i < 1 || j <= i || j > 9 {
		panic(fmt.Sprintf("gadgets: PijDesc(%d,%d) out of range", i, j))
	}
	return strings.Repeat("0", i+1) + "1" + "0" + strings.Repeat("0", j-i) + "1" + strings.Repeat("0", 11-j)
}

// Pij returns the oriented path P_ij.
func Pij(i, j int) digraph.OrientedPath {
	return digraph.OrientedPathFromString(PijDesc(i, j))
}

// PijkDesc returns P_ijk = 0^{i+1} 1 0 0^{j−i} 1 0 0^{k−j} 1 0^{11−k}
// (Claim 8.2): maps into P_i, P_j, P_k and no other P_ℓ.
func PijkDesc(i, j, k int) string {
	if i < 1 || j <= i || k <= j || k > 9 {
		panic(fmt.Sprintf("gadgets: PijkDesc(%d,%d,%d) out of range", i, j, k))
	}
	return strings.Repeat("0", i+1) + "1" + "0" + strings.Repeat("0", j-i) + "1" + "0" + strings.Repeat("0", k-j) + "1" + strings.Repeat("0", 11-k)
}

// Pijk returns the oriented path P_ijk.
func Pijk(i, j, k int) digraph.OrientedPath {
	return digraph.OrientedPathFromString(PijkDesc(i, j, k))
}

// QStar is the digraph Q* of Figure 7, with handles on its named nodes.
type QStar struct {
	G *relstr.Structure
	X int    // initial node (level 0)
	Y int    // terminal node (level 25)
	A [9]int // A[1..8] are the hub nodes a1..a8
}

// NewQStar builds Q*: the balanced cycle (a1,…,a8,a1) with orientation
// string 01010101; for odd i, a_i is the terminal node of a fresh copy
// of P_i, for even i its initial node; and two fresh nodes x, y with
// edges x → init(P1-copy) and term(P8-copy) → y.
func NewQStar() QStar {
	var q QStar
	g := digraph.New()
	for i := 1; i <= 8; i++ {
		q.A[i] = i - 1 // a1..a8 are elements 0..7
	}
	// Cycle edges per "01010101": 0 = a_i→a_{i+1}, 1 = a_{i+1}→a_i
	// (indices mod 8).
	for i := 1; i <= 8; i++ {
		next := i%8 + 1
		if i%2 == 1 {
			digraph.AddEdge(g, q.A[i], q.A[next])
		} else {
			digraph.AddEdge(g, q.A[next], q.A[i])
		}
	}
	var p1Init, p8Term int
	for i := 1; i <= 8; i++ {
		p := Pi(i).AsPointed()
		if i%2 == 1 {
			// a_i = terminal of P_i: glue reversed at a_i; the returned
			// free end is the path's initial node.
			var free int
			g, free = digraph.GlueAt(g, q.A[i], p.Reverse())
			if i == 1 {
				p1Init = free
			}
		} else {
			var free int
			g, free = digraph.GlueAt(g, q.A[i], p)
			if i == 8 {
				p8Term = free
			}
		}
	}
	// x and y.
	x := maxElem(g) + 1
	y := x + 1
	digraph.AddEdge(g, x, p1Init)
	digraph.AddEdge(g, p8Term, y)
	q.G = g
	q.X, q.Y = x, y
	return q
}

func maxElem(s *relstr.Structure) int {
	m := -1
	for _, e := range s.Domain() {
		if e > m {
			m = e
		}
	}
	return m
}

// Ti returns the acyclic digraph T_i (1 ≤ i ≤ 4) of the reduction:
// Q* with hub identifications
//
//	T1: a1≡a7, a2≡a6, a3≡a5
//	T2: a8≡a6, a1≡a5, a2≡a4
//	T3: a7≡a5, a8≡a4, a1≡a3
//	T4: a6≡a4, a7≡a3, a8≡a2
//
// returned as a pointed digraph from x (level 0) to y (level 25).
func Ti(i int) digraph.Pointed {
	q := NewQStar()
	pairs := [5][3][2]int{
		{},                       // unused
		{{1, 7}, {2, 6}, {3, 5}}, // T1
		{{8, 6}, {1, 5}, {2, 4}}, // T2
		{{7, 5}, {8, 4}, {1, 3}}, // T3
		{{6, 4}, {7, 3}, {8, 2}}, // T4
	}
	if i < 1 || i > 4 {
		panic(fmt.Sprintf("gadgets: Ti(%d) out of range", i))
	}
	ident := map[int]int{}
	for _, pr := range pairs[i] {
		ident[q.A[pr[0]]] = q.A[pr[1]]
	}
	g := q.G.Map(func(e int) int {
		if r, ok := ident[e]; ok {
			return r
		}
		return e
	})
	return digraph.Pointed{G: g, Init: q.X, Term: q.Y}
}

// T5 returns the acyclic digraph T_5 of Figure 11: x5 → P1 → P8 → y5
// with two extra copies of P9 — one whose terminal node is identified
// with the terminal node of P1, one whose initial node is identified
// with the initial node of P8.
func T5() digraph.Pointed {
	p1 := Pi(1).AsPointed()
	p8 := Pi(8).AsPointed()
	g := digraph.New()
	digraph.AddEdge(g, 0, 1) // x5 → p1init
	var p1term int
	g, p1term = digraph.GlueAt(g, 1, p1)
	next := maxElem(g) + 1
	digraph.AddEdge(g, p1term, next) // term(P1) → init(P8)
	var p8term int
	g, p8term = digraph.GlueAt(g, next, p8)
	y5 := maxElem(g) + 1
	digraph.AddEdge(g, p8term, y5)
	// P9 copy with terminal ≡ term(P1).
	p9 := Pi(9).AsPointed()
	g, _ = digraph.GlueAt(g, p1term, p9.Reverse())
	// P9 copy with initial ≡ init(P8).
	g, _ = digraph.GlueAt(g, next, p9)
	return digraph.Pointed{G: g, Init: 0, Term: y5}
}

// Tij returns the acyclic branch digraph T_ij of Claim 8.5 for
// (i,j) ∈ {(1,5),(2,5),(3,5),(1,2),(1,3),(2,3)}: the spine
// p1 → P1 → P8 → p2 with a copy of X_ij whose terminal node is
// identified with the terminal node of P1. The X_ij are
// X15=P79, X25=P59, X35=P39, X12=P57, X13=P37, X23=P35.
func Tij(i, j int) digraph.Pointed {
	x, ok := map[[2]int]digraph.OrientedPath{
		{1, 5}: Pij(7, 9),
		{2, 5}: Pij(5, 9),
		{3, 5}: Pij(3, 9),
		{1, 2}: Pij(5, 7),
		{1, 3}: Pij(3, 7),
		{2, 3}: Pij(3, 5),
	}[[2]int{i, j}]
	if !ok {
		panic(fmt.Sprintf("gadgets: Tij(%d,%d) not defined", i, j))
	}
	return spineWith(x.AsPointed(), true)
}

// Tijk returns T_ijk of Claim 8.6 for (1,2,5), (2,4,5), (3,4,5):
// T125 attaches P579 at the terminal node of P1; T245 and T345 attach
// X245=P269 and X345=P249 at the initial node of P8.
func Tijk(i, j, k int) digraph.Pointed {
	switch [3]int{i, j, k} {
	case [3]int{1, 2, 5}:
		return spineWith(Pijk(5, 7, 9).AsPointed(), true)
	case [3]int{2, 4, 5}:
		return spineWith(Pijk(2, 6, 9).AsPointed(), false)
	case [3]int{3, 4, 5}:
		return spineWith(Pijk(2, 4, 9).AsPointed(), false)
	default:
		panic(fmt.Sprintf("gadgets: Tijk(%d,%d,%d) not defined", i, j, k))
	}
}

// spineWith builds p1 → P1 → P8 → p2 and glues the branch: terminal of
// branch to terminal of P1 when atP1Term, else initial of branch to
// initial of P8.
func spineWith(branch digraph.Pointed, atP1Term bool) digraph.Pointed {
	p1 := Pi(1).AsPointed()
	p8 := Pi(8).AsPointed()
	g := digraph.New()
	digraph.AddEdge(g, 0, 1)
	var p1term int
	g, p1term = digraph.GlueAt(g, 1, p1)
	p8init := maxElem(g) + 1
	digraph.AddEdge(g, p1term, p8init)
	var p8term int
	g, p8term = digraph.GlueAt(g, p8init, p8)
	p2 := maxElem(g) + 1
	digraph.AddEdge(g, p8term, p2)
	if atP1Term {
		g, _ = digraph.GlueAt(g, p1term, branch.Reverse())
	} else {
		g, _ = digraph.GlueAt(g, p8init, branch)
	}
	return digraph.Pointed{G: g, Init: 0, Term: p2}
}

// BigT is the acyclic target T of Figure 14: the four branches
// T_i·T_5⁻¹ with all initial nodes identified into V. TNode[i] is t_i
// (the junction y_i ≡ y_5 of branch i, level 25) and UNode[i] is u_i
// (the x_5 end of branch i, level 0), for 1 ≤ i ≤ 4.
type BigT struct {
	G     *relstr.Structure
	V     int
	TNode [5]int
	UNode [5]int
}

// NewBigT assembles T.
func NewBigT() BigT {
	var out BigT
	acc := digraph.New()
	acc.AddElement(0) // v
	out.V = 0
	for i := 1; i <= 4; i++ {
		branch := digraph.Concat(Ti(i), T5().Reverse())
		// branch: Init = x_i, Term = x5-end (u_i); junction t_i is the
		// Term of Ti, which Concat identified with T5's y5. Recover it:
		// it is the Ti part's Term (offset 0 in Concat's left operand).
		junction := Ti(i).Term
		merged, off := relstr.DisjointUnion(acc, branch.G)
		// Identify branch init with v.
		init := branch.Init + off
		merged = merged.Map(func(e int) int {
			if e == init {
				return out.V
			}
			return e
		})
		acc = merged
		out.TNode[i] = junction + off
		out.UNode[i] = branch.Term + off
	}
	out.G = acc
	return out
}

// ExtChooser bundles an extended chooser with its distinguished nodes
// a and b (both at level 25).
type ExtChooser struct {
	G    *relstr.Structure
	A, B int
}

// NewExtChooser21 builds S̃21 = T12 · T125⁻¹ · T345 (Claim 8.9, an
// extended (2,1)-chooser): a is the terminal node of the T12 part and
// b the overall terminal node.
func NewExtChooser21() ExtChooser {
	t12 := Tij(1, 2)
	t125 := Tijk(1, 2, 5)
	t345 := Tijk(3, 4, 5)
	part1 := digraph.Concat(t12, t125.Reverse())
	whole := digraph.Concat(part1, t345)
	// a = junction between T12 and T125⁻¹ = t12.Term (left operand keeps
	// its element ids in Concat).
	return ExtChooser{G: whole.G, A: t12.Term, B: whole.Term}
}

// NewExtChooser34 builds S̃34 = T12·T25⁻¹·T35·T15⁻¹·T245·T35⁻¹·T15
// (Claim 8.9, an extended (3,4)-chooser).
func NewExtChooser34() ExtChooser {
	t12 := Tij(1, 2)
	pieces := []digraph.Pointed{
		t12,
		Tij(2, 5).Reverse(),
		Tij(3, 5),
		Tij(1, 5).Reverse(),
		Tijk(2, 4, 5),
		Tij(3, 5).Reverse(),
		Tij(1, 5),
	}
	whole := pieces[0]
	for _, p := range pieces[1:] {
		whole = digraph.Concat(whole, p)
	}
	return ExtChooser{G: whole.G, A: t12.Term, B: whole.Term}
}
