package gadgets

import (
	"testing"

	"cqapprox/internal/digraph"
	"cqapprox/internal/hom"
)

func TestPiPaths(t *testing.T) {
	for i := 1; i <= 9; i++ {
		if nl := digraph.NetLength(PiDesc(i)); nl != 11 {
			t.Errorf("net length of P%d = %d, want 11", i, nl)
		}
		if len(PiDesc(i)) != 13 {
			t.Errorf("P%d has %d edges, want 13", i, len(PiDesc(i)))
		}
	}
}

func TestPiIncomparableCores(t *testing.T) {
	paths := make([]digraph.OrientedPath, 10)
	for i := 1; i <= 9; i++ {
		paths[i] = Pi(i)
	}
	for i := 1; i <= 9; i++ {
		if !hom.IsCore(paths[i].G, nil) {
			t.Errorf("P%d is not a core", i)
		}
		for j := 1; j <= 9; j++ {
			if i == j {
				continue
			}
			if hom.Exists(paths[i].G, paths[j].G, nil) {
				t.Errorf("P%d → P%d should not hold", i, j)
			}
		}
	}
}

// Claim 8.1: P_ij → P_i, P_ij → P_j, P_ij ↛ P_k for k ∉ {i,j}.
func TestClaim81Connectors(t *testing.T) {
	pairs := [][2]int{{7, 9}, {5, 9}, {3, 9}, {5, 7}, {3, 7}, {3, 5}, {2, 6}, {2, 4}}
	for _, pr := range pairs {
		i, j := pr[0], pr[1]
		pij := Pij(i, j)
		for k := 1; k <= 9; k++ {
			want := k == i || k == j
			got := hom.Exists(pij.G, Pi(k).G, nil)
			if got != want {
				t.Errorf("P%d%d → P%d = %v, want %v", i, j, k, got, want)
			}
		}
	}
}

// Claim 8.2: P_ijk maps exactly into P_i, P_j, P_k.
func TestClaim82Connectors(t *testing.T) {
	triples := [][3]int{{5, 7, 9}, {2, 6, 9}, {2, 4, 9}}
	for _, tr := range triples {
		i, j, k := tr[0], tr[1], tr[2]
		p := Pijk(i, j, k)
		for l := 1; l <= 9; l++ {
			want := l == i || l == j || l == k
			got := hom.Exists(p.G, Pi(l).G, nil)
			if got != want {
				t.Errorf("P%d%d%d → P%d = %v, want %v", i, j, k, l, got, want)
			}
		}
	}
}

func TestQStarShape(t *testing.T) {
	q := NewQStar()
	if !digraph.IsBalanced(q.G) {
		t.Fatal("Q* must be balanced")
	}
	if !digraph.IsConnected(q.G) {
		t.Fatal("Q* must be connected")
	}
	if digraph.IsForestLike(q.G) {
		t.Fatal("Q* contains the hub cycle")
	}
	if h := digraph.Height(q.G); h != 25 {
		t.Fatalf("hg(Q*) = %d, want 25", h)
	}
	lv, _ := digraph.Levels(q.G)
	for v, l := range lv {
		if l == 0 && v != q.X {
			t.Fatalf("extra level-0 node %d", v)
		}
		if l == 25 && v != q.Y {
			t.Fatalf("extra level-25 node %d", v)
		}
	}
	// Hub levels from Figure 8: odd hubs at 12, even hubs at 13.
	for i := 1; i <= 8; i++ {
		want := 12
		if i%2 == 0 {
			want = 13
		}
		if lv[q.A[i]] != want {
			t.Errorf("level(a%d) = %d, want %d", i, lv[q.A[i]], want)
		}
	}
}

func TestTiAcyclicHeight25(t *testing.T) {
	for i := 1; i <= 4; i++ {
		ti := Ti(i)
		if !digraph.IsForestLike(ti.G) {
			t.Errorf("T%d is not acyclic", i)
		}
		if !digraph.IsBalanced(ti.G) || digraph.Height(ti.G) != 25 {
			t.Errorf("T%d must be balanced of height 25", i)
		}
		lv, _ := digraph.Levels(ti.G)
		if lv[ti.Init] != 0 || lv[ti.Term] != 25 {
			t.Errorf("T%d: endpoints at levels %d/%d", i, lv[ti.Init], lv[ti.Term])
		}
	}
	t5 := T5()
	if !digraph.IsForestLike(t5.G) || digraph.Height(t5.G) != 25 {
		t.Error("T5 must be acyclic of height 25")
	}
}

// Q* maps into every T_i via the identification homomorphism, and
// (Claim 8.3) that homomorphism is unique.
func TestClaim83UniqueHom(t *testing.T) {
	q := NewQStar()
	for i := 1; i <= 4; i++ {
		ti := Ti(i)
		allowed, ok := digraph.LevelRestriction(q.G, ti.G)
		if !ok {
			t.Fatalf("level restriction must apply for Q* → T%d", i)
		}
		n := hom.CountRestricted(q.G, ti.G, nil, allowed)
		if n != 1 {
			t.Errorf("Q* → T%d has %d homomorphisms, want 1 (Claim 8.3)", i, n)
		}
	}
}

// T5 is incomparable with Q* and with each T_i.
func TestT5Incomparable(t *testing.T) {
	q := NewQStar()
	t5 := T5()
	if digraph.ExistsHomLeveled(q.G, t5.G) {
		t.Error("Q* → T5 should not hold")
	}
	if digraph.ExistsHomLeveled(t5.G, q.G) {
		t.Error("T5 → Q* should not hold")
	}
	for i := 1; i <= 4; i++ {
		ti := Ti(i)
		if digraph.ExistsHomLeveled(ti.G, t5.G) {
			t.Errorf("T%d → T5 should not hold", i)
		}
		if digraph.ExistsHomLeveled(t5.G, ti.G) {
			t.Errorf("T5 → T%d should not hold", i)
		}
	}
}

// T1..T4 are pairwise incomparable cores.
func TestTiPairwiseIncomparable(t *testing.T) {
	tis := make([]digraph.Pointed, 5)
	for i := 1; i <= 4; i++ {
		tis[i] = Ti(i)
	}
	for i := 1; i <= 4; i++ {
		for j := 1; j <= 4; j++ {
			if i == j {
				continue
			}
			if digraph.ExistsHomLeveled(tis[i].G, tis[j].G) {
				t.Errorf("T%d → T%d should not hold", i, j)
			}
		}
	}
}

func TestTiAreCores(t *testing.T) {
	if testing.Short() {
		t.Skip("core checks on ~110-node digraphs")
	}
	for i := 1; i <= 4; i++ {
		if !digraph.IsCoreBalanced(Ti(i).G) {
			t.Errorf("T%d should be a core", i)
		}
	}
	if !digraph.IsCoreBalanced(T5().G) {
		t.Error("T5 should be a core")
	}
}

func TestBigTShape(t *testing.T) {
	bt := NewBigT()
	if !digraph.IsForestLike(bt.G) {
		t.Fatal("T must be acyclic")
	}
	if !digraph.IsBalanced(bt.G) || digraph.Height(bt.G) != 25 {
		t.Fatal("T must be balanced of height 25")
	}
	lv, _ := digraph.Levels(bt.G)
	if lv[bt.V] != 0 {
		t.Fatalf("level(v) = %d, want 0", lv[bt.V])
	}
	for i := 1; i <= 4; i++ {
		if lv[bt.TNode[i]] != 25 {
			t.Errorf("level(t%d) = %d, want 25", i, lv[bt.TNode[i]])
		}
		if lv[bt.UNode[i]] != 0 {
			t.Errorf("level(u%d) = %d, want 0", i, lv[bt.UNode[i]])
		}
	}
	// The only level-25 nodes are t1..t4 and the only level-0 nodes are
	// v, u1..u4 (Figure 14).
	zero, top := 0, 0
	for _, l := range lv {
		switch l {
		case 0:
			zero++
		case 25:
			top++
		}
	}
	if zero != 5 || top != 4 {
		t.Fatalf("level-0 nodes = %d (want 5), level-25 nodes = %d (want 4)", zero, top)
	}
}

// Claim 8.9: the extended choosers realise exactly the specified
// (h(a), h(b)) pairs over homomorphisms into T.
func TestClaim89ExtendedChoosers(t *testing.T) {
	if testing.Short() {
		t.Skip("chooser × T homomorphism table")
	}
	bt := NewBigT()
	check := func(name string, ch ExtChooser, allowedPairs map[[2]int]bool) {
		lr, ok := digraph.LevelRestriction(ch.G, bt.G)
		if !ok {
			t.Fatalf("%s: level restriction must apply", name)
		}
		for i := 1; i <= 4; i++ {
			for j := 1; j <= 4; j++ {
				pre := map[int]int{ch.A: bt.TNode[i], ch.B: bt.TNode[j]}
				got := hom.ExistsRestricted(ch.G, bt.G, pre, lr)
				want := allowedPairs[[2]int{i, j}]
				if got != want {
					t.Errorf("%s: h(a)=t%d, h(b)=t%d: got %v, want %v", name, i, j, got, want)
				}
			}
		}
	}
	// Extended (2,1)-chooser: a ∈ {t1,t2}; a=t1 ⇒ b≠t2; a=t2 ⇒ b≠t1.
	check("S̃21", NewExtChooser21(), map[[2]int]bool{
		{1, 1}: true, {1, 3}: true, {1, 4}: true,
		{2, 2}: true, {2, 3}: true, {2, 4}: true,
	})
	// Extended (3,4)-chooser: a ∈ {t1,t2}; a=t1 ⇒ b≠t3; a=t2 ⇒ b≠t4.
	check("S̃34", NewExtChooser34(), map[[2]int]bool{
		{1, 1}: true, {1, 2}: true, {1, 4}: true,
		{2, 1}: true, {2, 2}: true, {2, 3}: true,
	})
}
