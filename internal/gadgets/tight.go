package gadgets

import (
	"cqapprox/internal/digraph"
	"cqapprox/internal/relstr"
)

// NewGk builds the digraph G_k of Proposition 5.6 (tight acyclic
// approximations): two disjoint directed paths x0→…→xk and y0→…→yk,
// plus the cross edges (x_i, y_{i+2}) for 0 ≤ i ≤ k−2. For k ≥ 3,
// G_k → P_{k+1} and there is no digraph strictly between G_k and
// P_{k+1} in the homomorphism order, so the query with tableau P_{k+1}
// is a tight acyclic approximation of the query with tableau G_k.
func NewGk(k int) *relstr.Structure {
	if k < 2 {
		panic("gadgets: NewGk requires k ≥ 2")
	}
	g := digraph.New()
	x := func(i int) int { return i }
	y := func(i int) int { return k + 1 + i }
	for i := 0; i < k; i++ {
		digraph.AddEdge(g, x(i), x(i+1))
		digraph.AddEdge(g, y(i), y(i+1))
	}
	for i := 0; i <= k-2; i++ {
		digraph.AddEdge(g, x(i), y(i+2))
	}
	return g
}

// Example57 builds the tableau of the intro's query Q2 (also treated in
// Example 5.7): two directed 3-paths with the cross edges E(x, z′) and
// E(y, u′). Its unique acyclic approximation is P4.
func Example57() *relstr.Structure {
	g := digraph.New()
	// First path x(0) → y(1) → z(2) → u(3).
	digraph.AddEdge(g, 0, 1)
	digraph.AddEdge(g, 1, 2)
	digraph.AddEdge(g, 2, 3)
	// Second path x'(4) → y'(5) → z'(6) → u'(7).
	digraph.AddEdge(g, 4, 5)
	digraph.AddEdge(g, 5, 6)
	digraph.AddEdge(g, 6, 7)
	// Cross edges E(x, z') and E(y, u').
	digraph.AddEdge(g, 0, 6)
	digraph.AddEdge(g, 1, 7)
	return g
}
