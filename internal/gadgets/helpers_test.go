package gadgets

import "cqapprox/internal/relstr"

// partitionsHelper runs fn over the quotient maps induced by all set
// partitions of dom.
func partitionsHelper(dom []int, fn func(func(int) int) bool) {
	relstr.Partitions(dom, func(p relstr.Partition) bool {
		return fn(func(e int) int {
			if r, ok := p[e]; ok {
				return r
			}
			return e
		})
	})
}
