package gadgets

import (
	"testing"

	"cqapprox/internal/core"
	"cqapprox/internal/cq"
	"cqapprox/internal/digraph"
	"cqapprox/internal/hom"
	"cqapprox/internal/relstr"
)

func TestGkMapsToPathK1(t *testing.T) {
	for k := 3; k <= 6; k++ {
		gk := NewGk(k)
		pk1 := digraph.DirectedPath(k + 1)
		if !hom.Exists(gk, pk1, nil) {
			t.Errorf("G_%d ↛ P_%d", k, k+1)
		}
		if hom.Exists(pk1, gk, nil) {
			t.Errorf("P_%d → G_%d should not hold (the approximation is strict)", k+1, k)
		}
		if digraph.IsForestLike(gk) {
			t.Errorf("G_%d should be cyclic", k)
		}
		if !digraph.IsBalanced(gk) || !digraph.IsBipartite(gk) {
			t.Errorf("G_%d should be bipartite and balanced (Theorem 5.1 third case)", k)
		}
	}
}

// For k = 3 the quotient space is enumerable, so the claim "P_{k+1} is
// a (tight) acyclic approximation of G_k" is verified exactly through
// the decision procedure.
func TestGkPathIsAcyclicApproximation(t *testing.T) {
	gk := NewGk(3)
	q := cq.FromTableau(gk, nil, nil)
	p4 := cq.MustParse("P() :- E(a,b), E(b,c), E(c,d), E(d,e)")
	ok, err := core.IsApproximation(q, p4, core.TW(1), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("P4 should be an acyclic approximation of G_3's query")
	}
}

// Tightness within the quotient space: no quotient X of G_3 sits
// strictly between G_3 and P_4 (a bounded check of Prop 5.6's gap).
func TestGkGapWithinQuotientSpace(t *testing.T) {
	gk := NewGk(3)
	q := cq.FromTableau(gk, nil, nil)
	p4q := cq.MustParse("P() :- E(a,b), E(b,c), E(c,d), E(d,e)")
	qt := q.Tableau()
	dom := qt.S.Domain()
	found := false
	relstrPartitions(dom, func(f func(int) int) bool {
		img := qt.S.Map(f)
		x := cq.FromTableau(img, nil, nil)
		// Strictly between: P4 ⊂ X ⊂ Q.
		if hom.ProperlyContained(x, q) && hom.ProperlyContained(p4q, x) {
			found = true
			return false
		}
		return true
	})
	if found {
		t.Fatal("found a quotient strictly between G_3 and P_4 (gap violated)")
	}
}

// relstrPartitions adapts relstr.Partitions to a map function.
func relstrPartitions(dom []int, fn func(func(int) int) bool) {
	partitionsHelper(dom, fn)
}

// The paper constructs G_k as core(F_k × P_{k+1}) where F_k is the
// dual of P_{k+1} — by Gallai–Hasse–Roy–Vitaver the transitive
// tournament TT_{k+1} — and "omits the tedious calculations". We run
// them: the core of TT_{k+1} × P_{k+1} is isomorphic to G_k.
func TestGkIsCoreOfDualProduct(t *testing.T) {
	for k := 3; k <= 4; k++ {
		tt := digraph.TransitiveTournament(k + 1)
		path := digraph.DirectedPath(k + 1)
		prod, _ := digraph.Product(tt, path)
		coreP, _ := hom.Core(prod, nil)
		gk := NewGk(k)
		if !relstr.Isomorphic(coreP, gk, nil, nil) {
			t.Fatalf("k=%d: core(TT_%d × P_%d) has %d nodes/%d edges, G_%d has %d/%d — not isomorphic",
				k, k+1, k+1, coreP.DomainSize(), coreP.NumFacts(), k, gk.DomainSize(), gk.NumFacts())
		}
	}
}

// Gap property via duality (Prop 5.6 / Nešetřil–Tardif): for every
// digraph H, either H → F_k (the dual) or P_{k+1} → H. If some H sat
// strictly between G_k and P_{k+1}, then P_{k+1} ↛ H (else H ≡ P_{k+1}
// from below... the duality forces H → F_k, and combined with
// H → P_{k+1} it maps to the product, hence to its core G_k — so H is
// equivalent to G_k, not strictly between. We spot-check the duality
// split on random digraphs mapping to P_{k+1}.
func TestGkGapViaDuality(t *testing.T) {
	k := 3
	tt := digraph.TransitiveTournament(k + 1)
	path := digraph.DirectedPath(k + 1)
	gk := NewGk(k)
	// Candidates: quotients of G_k (all mapping to P_4 trivially... only
	// those that still admit G_k → X → P_4).
	qt := gk.Domain()
	count := 0
	relstrPartitions(qt, func(f func(int) int) bool {
		x := gk.Map(f)
		if !hom.Exists(x, path, nil) {
			return true
		}
		count++
		// Duality: X → P_4 means X has no directed path of 4 edges...
		// exactly one of X → TT_4, P_4 → X holds.
		toDual := hom.Exists(x, tt, nil)
		fromPath := hom.Exists(path, x, nil)
		if toDual == fromPath {
			t.Fatalf("duality violated on quotient %v", x)
		}
		// If P_4 ↛ X, then X → TT_4 and X → P_4, so X → core(product) =
		// G_k: X is below G_k, not strictly between.
		if !fromPath {
			if !hom.Exists(x, gk, nil) {
				t.Fatalf("quotient below the gap does not map back to G_k: %v", x)
			}
		}
		return count < 2000 // bound the sweep
	})
	if count == 0 {
		t.Fatal("no quotients mapped to the path")
	}
}

func TestExample57UniqueP4Approximation(t *testing.T) {
	if testing.Short() {
		t.Skip("8-variable quotient space")
	}
	g := Example57()
	q := cq.FromTableau(g, nil, nil)
	apps, err := core.Approximations(q, core.TW(1), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(apps) != 1 {
		t.Fatalf("Example 5.7 should have a unique acyclic approximation, got %v", apps)
	}
	p4 := cq.MustParse("P() :- E(a,b), E(b,c), E(c,d), E(d,e)")
	if !hom.Equivalent(apps[0], p4) {
		t.Fatalf("approximation = %v, want ≡ P4", apps[0])
	}
}
