// Package gadgets constructs the digraph families the paper uses in its
// proofs: the exponential-approximation family of Proposition 4.4, the
// DP-hardness reduction of Theorem 4.12 (oriented paths P_i, the gadget
// Q*, the acyclic targets T_1…T_5 and T, choosers, and ϕ(G)), and the
// tight-approximation family of Proposition 5.6. They serve as test
// vectors and as workloads for the hardness experiments.
package gadgets

import (
	"fmt"

	"cqapprox/internal/digraph"
	"cqapprox/internal/relstr"
)

// Prop44P1 and Prop44P2 are the incomparable core oriented paths of
// Proposition 4.4.
const (
	Prop44P1 = "001000"
	Prop44P2 = "000100"
)

// DGadget is the digraph D of Figure 3 with its named nodes.
type DGadget struct {
	G *relstr.Structure
	// The four hub nodes.
	A, B, C, D int
	// P1In is the initial (free) node of the copy of P1 whose terminal
	// node is a; P2In likewise ends at c.
	P1In, P2In int
	// P1Out is the terminal (free) node of the copy of P1 starting at b;
	// P2Out likewise starts at d.
	P1Out, P2Out int
}

// NewD builds the digraph D of Proposition 4.4 (Figure 3): hub edges
// (a,b), (a,d), (c,b), (c,d); copies of P1, P2 hanging from b and d
// (identified at their initial nodes); and copies of P1, P2 entering a
// and c (identified at their terminal nodes).
func NewD() DGadget {
	const (
		a, b, c, d = 0, 1, 2, 3
	)
	g := digraph.FromEdges([2]int{a, b}, [2]int{a, d}, [2]int{c, b}, [2]int{c, d})
	p1 := digraph.OrientedPathFromString(Prop44P1).AsPointed()
	p2 := digraph.OrientedPathFromString(Prop44P2).AsPointed()
	var out DGadget
	out.A, out.B, out.C, out.D = a, b, c, d
	// P1 from b (identify initial node with b).
	g, t1 := digraph.GlueAt(g, b, p1)
	out.P1Out = t1
	// P2 from d.
	g, t2 := digraph.GlueAt(g, d, p2)
	out.P2Out = t2
	// P1 into a (identify terminal node with a): glue reversed.
	g, i1 := digraph.GlueAt(g, a, p1.Reverse())
	out.P1In = i1
	// P2 into c.
	g, i2 := digraph.GlueAt(g, c, p2.Reverse())
	out.P2In = i2
	out.G = g
	return out
}

// Dac returns the digraph D_ac: D with a and c identified.
func Dac() *relstr.Structure {
	d := NewD()
	return d.G.Map(func(e int) int {
		if e == d.C {
			return d.A
		}
		return e
	})
}

// Dbd returns the digraph D_bd: D with b and d identified.
func Dbd() *relstr.Structure {
	d := NewD()
	return d.G.Map(func(e int) int {
		if e == d.D {
			return d.B
		}
		return e
	})
}

// GnGadget is the family G_n of Proposition 4.4, with the handles
// needed to apply the V/H identifications.
type GnGadget struct {
	G *relstr.Structure
	// Per copy of D: the a,b,c,d hubs (already offset).
	Copies []DGadget
}

// NewGn builds G_n: n disjoint copies of D, with an edge from the
// terminal node of the i-th copy's P2-from-d path to the initial node
// of the (i+1)-st copy's P1-into-a path.
func NewGn(n int) GnGadget {
	if n < 1 {
		panic("gadgets: NewGn requires n ≥ 1")
	}
	var out GnGadget
	acc := relstr.New()
	acc.Declare(digraph.EdgeRel, 2)
	for i := 0; i < n; i++ {
		d := NewD()
		merged, off := relstr.DisjointUnion(acc, d.G)
		acc = merged
		shifted := DGadget{
			G: acc,
			A: d.A + off, B: d.B + off, C: d.C + off, D: d.D + off,
			P1In: d.P1In + off, P2In: d.P2In + off,
			P1Out: d.P1Out + off, P2Out: d.P2Out + off,
		}
		out.Copies = append(out.Copies, shifted)
		if i > 0 {
			acc.Add(digraph.EdgeRel, out.Copies[i-1].P2Out, shifted.P1In)
		}
	}
	out.G = acc
	for i := range out.Copies {
		out.Copies[i].G = acc
	}
	return out
}

// NewGns builds G_n^s for s ∈ {V,H}ⁿ: the i-th copy of D has a
// identified with c when s[i] == 'V', and b identified with d when
// s[i] == 'H'.
func NewGns(n int, s string) *relstr.Structure {
	if len(s) != n {
		panic(fmt.Sprintf("gadgets: NewGns: len(s)=%d, want %d", len(s), n))
	}
	gn := NewGn(n)
	ident := map[int]int{}
	for i := 0; i < n; i++ {
		cp := gn.Copies[i]
		switch s[i] {
		case 'V':
			ident[cp.C] = cp.A
		case 'H':
			ident[cp.D] = cp.B
		default:
			panic(fmt.Sprintf("gadgets: NewGns: bad label %q", s[i]))
		}
	}
	return gn.G.Map(func(e int) int {
		if r, ok := ident[e]; ok {
			return r
		}
		return e
	})
}

// AllLabels enumerates {V,H}ⁿ in lexicographic order.
func AllLabels(n int) []string {
	if n == 0 {
		return []string{""}
	}
	var out []string
	for _, rest := range AllLabels(n - 1) {
		out = append(out, "V"+rest, "H"+rest)
	}
	return out
}
