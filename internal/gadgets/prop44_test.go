package gadgets

import (
	"testing"

	"cqapprox/internal/digraph"
	"cqapprox/internal/hom"
	"cqapprox/internal/relstr"
)

func TestDGadgetShape(t *testing.T) {
	d := NewD()
	// 4 hub edges + 4 oriented paths of 6 edges each.
	if got := d.G.NumFacts(); got != 4+4*6 {
		t.Fatalf("D has %d edges, want 28", got)
	}
	// The paper counts 28 variables per copy of D in Q_n.
	if got := d.G.DomainSize(); got != 28 {
		t.Fatalf("D has %d nodes, want 28", got)
	}
	if !digraph.IsBalanced(d.G) {
		t.Fatal("D must be balanced")
	}
}

func TestDacDbdBalancedHeight9(t *testing.T) {
	ac, bd := Dac(), Dbd()
	if !digraph.IsBalanced(ac) || !digraph.IsBalanced(bd) {
		t.Fatal("D_ac and D_bd must be balanced")
	}
	if h := digraph.Height(ac); h != 9 {
		t.Fatalf("hg(D_ac) = %d, want 9", h)
	}
	if h := digraph.Height(bd); h != 9 {
		t.Fatalf("hg(D_bd) = %d, want 9", h)
	}
}

// Claim 4.6: D_ac and D_bd are incomparable cores.
func TestClaim46IncomparableCores(t *testing.T) {
	ac, bd := Dac(), Dbd()
	if hom.Exists(ac, bd, nil) {
		t.Fatal("D_ac → D_bd should not hold")
	}
	if hom.Exists(bd, ac, nil) {
		t.Fatal("D_bd → D_ac should not hold")
	}
	if !hom.IsCore(ac, nil) {
		t.Fatal("D_ac should be a core")
	}
	if !hom.IsCore(bd, nil) {
		t.Fatal("D_bd should be a core")
	}
}

// G_n maps homomorphically onto each G_n^s (Claim 4.8's identification
// homomorphism), and each G_n^s is forest-like (treewidth 1).
func TestGnsContainedAndAcyclic(t *testing.T) {
	for n := 1; n <= 2; n++ {
		gn := NewGn(n)
		if digraph.IsForestLike(gn.G) {
			t.Fatalf("G_%d should be cyclic", n)
		}
		if got, want := gn.G.DomainSize(), 28*n; got != want {
			t.Fatalf("G_%d has %d nodes, want %d (linear growth)", n, got, want)
		}
		if got, want := gn.G.NumFacts(), 29*n-1; got != want {
			t.Fatalf("G_%d has %d edges, want %d (the paper's 29n−2 joins +1)", n, got, want)
		}
		for _, s := range AllLabels(n) {
			gs := NewGns(n, s)
			if !digraph.IsForestLike(gs) {
				t.Errorf("G_%d^%s is not forest-like", n, s)
			}
			if !hom.Exists(gn.G, gs, nil) {
				t.Errorf("G_%d ↛ G_%d^%s", n, n, s)
			}
			if !digraph.IsBalanced(gs) {
				t.Errorf("G_%d^%s is not balanced", n, s)
			}
		}
	}
}

// Claim 4.7: the G_n^s are pairwise incomparable cores — witnessing the
// 2ⁿ lower bound of Proposition 4.4.
func TestClaim47PairwiseIncomparableCores(t *testing.T) {
	ns := []int{1, 2}
	if testing.Short() {
		ns = []int{1}
	}
	for _, n := range ns {
		labels := AllLabels(n)
		built := make(map[string]*relstr.Structure, len(labels))
		for _, s := range labels {
			built[s] = NewGns(n, s)
		}
		for _, s := range labels {
			if !hom.IsCore(built[s], nil) {
				t.Errorf("G_%d^%s is not a core", n, s)
			}
		}
		for i, s := range labels {
			for j, u := range labels {
				if i == j {
					continue
				}
				if digraph.ExistsHomLeveled(built[s], built[u]) {
					t.Errorf("G_%d^%s → G_%d^%s should not hold", n, s, n, u)
				}
			}
		}
	}
}

// The level structure of G_n matches Figure 5: distinct copies of D
// occupy disjoint level ranges, so homomorphisms cannot mix copies.
func TestGnLevelSeparation(t *testing.T) {
	gn := NewGn(2)
	if !digraph.IsBalanced(gn.G) {
		t.Fatal("G_2 must be balanced")
	}
	lv, _ := digraph.Levels(gn.G)
	// Hub nodes of copy 1 sit strictly below hub nodes of copy 2.
	max1 := 0
	for _, v := range []int{gn.Copies[0].A, gn.Copies[0].B, gn.Copies[0].C, gn.Copies[0].D} {
		if lv[v] > max1 {
			max1 = lv[v]
		}
	}
	min2 := 1 << 30
	for _, v := range []int{gn.Copies[1].A, gn.Copies[1].B, gn.Copies[1].C, gn.Copies[1].D} {
		if lv[v] < min2 {
			min2 = lv[v]
		}
	}
	if max1 >= min2 {
		t.Fatalf("copy levels overlap: max1=%d min2=%d", max1, min2)
	}
}

func TestAllLabels(t *testing.T) {
	if got := AllLabels(0); len(got) != 1 || got[0] != "" {
		t.Fatalf("AllLabels(0) = %v", got)
	}
	if got := AllLabels(3); len(got) != 8 {
		t.Fatalf("AllLabels(3) has %d entries, want 8", len(got))
	}
	seen := map[string]bool{}
	for _, s := range AllLabels(3) {
		if len(s) != 3 || seen[s] {
			t.Fatalf("bad label %q", s)
		}
		seen[s] = true
	}
}

func TestNewGnsValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bad label")
		}
	}()
	NewGns(1, "X")
}
