// Package obs is the observability data model shared by the whole
// stack: structured EXPLAIN output for prepared plans (PlanExplain)
// and per-evaluation execution traces (ExecTrace). The types are
// JSON-tagged because they go onto the wire verbatim (api embeds them
// in /v1/explain and the trace blocks of /v1/eval and /v1/count) and
// carry stable text renderings for the CLI and golden tests.
//
// The package is a leaf: it depends on nothing in the repository, so
// internal/eval, internal/count, the root API, api and internal/server
// can all import it without cycles.
package obs

import (
	"fmt"
	"strings"
)

// Phase is one named timed span of a prepare or an evaluation. Prepare
// phases: parse, minimize, search, plan. Eval phases: semijoin-down,
// semijoin-up, join, project, dedup; counting adds count and
// count-estimate.
type Phase struct {
	Name string `json:"name"`
	NS   int64  `json:"ns"`
}

// PhaseNS returns the duration of the named phase in nanoseconds (0 if
// absent).
func PhaseNS(phases []Phase, name string) int64 {
	for _, p := range phases {
		if p.Name == name {
			return p.NS
		}
	}
	return 0
}

// PlanExplain is the structured EXPLAIN of one prepared query: what
// the static pipeline decided, per join-forest tree, with no data
// touched. Node variables are rendered as v<id> over the minimized
// tableau's element ids; the query and minimized strings carry the
// human-readable names.
type PlanExplain struct {
	Query         string `json:"query"`
	Minimized     string `json:"minimized,omitempty"`
	Class         string `json:"class,omitempty"`
	Approximation string `json:"approximation,omitempty"`
	Candidates    int    `json:"candidates_inspected,omitempty"`

	// Mode is the evaluation strategy: "yannakakis" or "naive".
	Mode string `json:"mode"`
	// Direct reports the solve-phase collapse: "" (scheduled joins
	// run), "unit" (Boolean: the answer is the unit relation) or
	// "node <i>" (one head projection of node i's reduced rows).
	Direct string `json:"direct,omitempty"`
	// ExactCountable: no tree of the forest needs the sampling
	// estimator to count.
	ExactCountable bool `json:"exact_countable"`
	// Ranked is the ordered-enumeration classification of the head's
	// natural key: "connex" (ranked calls stream out of the reduced
	// forest with early termination) or "fallback" (ranked calls
	// evaluate fully, sort and truncate). Empty for naive plans.
	Ranked string `json:"ranked,omitempty"`
	// Incremental is the view-maintenance classification: "delta"
	// (subscriptions propagate snapshot deltas through the reduced
	// forest) or "fallback" (every update recomputes — naive plans).
	// IndexStats' incremental_evals/incr_fallbacks counters report what
	// actually happened at runtime.
	Incremental string        `json:"incremental,omitempty"`
	Trees       []TreeExplain `json:"trees,omitempty"`

	// Prepare phase wall times (parse/minimize/search/plan), measured
	// when the plan was built; zero/absent on renders that never
	// parsed (cache hits report the original build's times).
	Prepare []Phase `json:"prepare,omitempty"`
}

// TreeExplain describes one tree of the join forest.
type TreeExplain struct {
	Root int `json:"root"`
	// Rerooted: the tree was reoriented at prepare time toward a node
	// covering its head variables (what lets the dead-step analysis
	// collapse the solve phase).
	Rerooted bool `json:"rerooted,omitempty"`
	// CountKind is the counting classification: unit, node, dp or
	// sample.
	CountKind string        `json:"count_kind"`
	Nodes     []NodeExplain `json:"nodes"`
}

// NodeExplain describes one join-forest node (one atom of the
// minimized query) in preorder.
type NodeExplain struct {
	ID     int      `json:"id"`
	Atom   string   `json:"atom"`
	Vars   []string `json:"vars"`
	Parent int      `json:"parent"` // -1 for roots
	Depth  int      `json:"depth"`
	// Needed: the node still materialises a solve relation after the
	// dead-step analysis.
	Needed bool `json:"needed,omitempty"`
	// Direct: the whole solve phase is a head projection of this
	// node's reduced rows.
	Direct bool `json:"direct,omitempty"`
	// Joins/SkippedJoins: scheduled child joins at this node and how
	// many of them the dead-step analysis elided.
	Joins        int `json:"joins,omitempty"`
	SkippedJoins int `json:"skipped_joins,omitempty"`
}

// Text renders the explain as stable, timing-free text (safe for
// golden tests: it depends only on the plan, never on data or clocks).
func (e *PlanExplain) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan: %s\n", e.Mode)
	if e.Class != "" {
		fmt.Fprintf(&b, "class: %s\n", e.Class)
	}
	if e.Approximation != "" {
		fmt.Fprintf(&b, "approximation: %s\n", e.Approximation)
	}
	if e.Mode != "yannakakis" {
		return b.String()
	}
	if e.ExactCountable {
		b.WriteString("countable: exact\n")
	} else {
		b.WriteString("countable: sample\n")
	}
	if e.Ranked != "" {
		fmt.Fprintf(&b, "ranked: %s\n", e.Ranked)
	}
	if e.Incremental != "" {
		fmt.Fprintf(&b, "incremental: %s\n", e.Incremental)
	}
	if e.Direct != "" {
		fmt.Fprintf(&b, "direct: %s\n", e.Direct)
	}
	for i, t := range e.Trees {
		fmt.Fprintf(&b, "tree %d: count=%s", i, t.CountKind)
		if t.Rerooted {
			b.WriteString(", rerooted")
		}
		b.WriteString("\n")
		for _, n := range t.Nodes {
			b.WriteString(strings.Repeat("  ", n.Depth+1))
			fmt.Fprintf(&b, "[%d] %s", n.ID, n.Atom)
			if n.Needed {
				b.WriteString(" needed")
			}
			if n.Direct {
				b.WriteString(" direct")
			}
			if n.Joins > 0 {
				fmt.Fprintf(&b, " joins=%d skipped=%d", n.Joins, n.SkippedJoins)
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

// ExecTrace is the per-evaluation ANALYZE record: phase wall times,
// per-node executor counters, and the parallel machinery's activity.
// Produced only when tracing was requested; the trace-off path never
// allocates one.
type ExecTrace struct {
	Mode        string `json:"mode"`
	Parallelism int    `json:"parallelism,omitempty"`
	TotalNS     int64  `json:"total_ns"`
	// Phases in execution order; their sum approximates TotalNS (the
	// remainder is scheduling and bookkeeping between phases).
	Phases []Phase     `json:"phases,omitempty"`
	Nodes  []NodeTrace `json:"nodes,omitempty"`
	// MorselChunks: parallel work units claimed across all morsel
	// loops of the call (0 on a serial run).
	MorselChunks int64 `json:"morsel_chunks,omitempty"`
	// WorkerBusyNS: busy wall time of each extra-worker stint the
	// call's fan-outs spawned, in spawn order — per-worker
	// utilization; the calling goroutine's time is TotalNS itself.
	WorkerBusyNS []int64 `json:"worker_busy_ns,omitempty"`
}

// NodeTrace is one join-forest node's executor counters for a single
// traced evaluation.
type NodeTrace struct {
	ID   int    `json:"id"`
	Atom string `json:"atom,omitempty"`
	// Rows: backing view rows; Live: rows surviving both reduction
	// passes (the live-bitmap survivor count).
	Rows int `json:"rows"`
	Live int `json:"live"`
	// SemijoinIn/SemijoinOut: rows entering/surviving the node's
	// semijoin passes, summed over passes.
	SemijoinIn  int64 `json:"semijoin_rows_in"`
	SemijoinOut int64 `json:"semijoin_rows_out"`
	Passes      int64 `json:"passes,omitempty"`
	// IndexBuilds/IndexProbes: indexes built and rows probed to
	// filter (or count through) this node.
	IndexBuilds uint64 `json:"index_builds,omitempty"`
	IndexProbes uint64 `json:"index_probes,omitempty"`
}

// Text renders the trace for humans (CLI `eval -trace`). Timings vary
// run to run; don't golden-test this.
func (t *ExecTrace) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace: mode=%s parallelism=%d total=%.3fms\n",
		t.Mode, t.Parallelism, float64(t.TotalNS)/1e6)
	for _, p := range t.Phases {
		fmt.Fprintf(&b, "  phase %-14s %.3fms\n", p.Name, float64(p.NS)/1e6)
	}
	for _, n := range t.Nodes {
		fmt.Fprintf(&b, "  node [%d] %s: rows=%d live=%d semijoin=%d->%d probes=%d builds=%d\n",
			n.ID, n.Atom, n.Rows, n.Live, n.SemijoinIn, n.SemijoinOut, n.IndexProbes, n.IndexBuilds)
	}
	if t.MorselChunks > 0 || len(t.WorkerBusyNS) > 0 {
		fmt.Fprintf(&b, "  morsels: chunks=%d extra-workers=%d\n", t.MorselChunks, len(t.WorkerBusyNS))
	}
	return b.String()
}
