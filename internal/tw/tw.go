// Package tw computes exact treewidth and tree decompositions of small
// graphs. The paper's graph-based tractable classes TW(k) are defined
// through the treewidth of the query's Gaifman graph G(Q); membership
// tests here are exact.
//
// The exact algorithm is the classic dynamic program over vertex
// subsets (Bodlaender–Fomin–Koster): dp[S] is the minimum width over
// elimination orderings that eliminate exactly S first, with
// dp[S] = min_{v∈S} max(dp[S∖{v}], Q(S∖{v}, v)), where Q(R, v) counts
// the vertices outside R∪{v} reachable from v through R. It runs in
// O(2ⁿ·n·(n+m)) time and O(2ⁿ) space and is limited to n ≤ MaxExactN
// vertices — far beyond any tableau arising in the experiments.
package tw

import (
	"fmt"
	"sort"

	"cqapprox/internal/relstr"
)

// MaxExactN bounds the vertex count for the exact subset DP.
const MaxExactN = 24

// Graph is a simple undirected graph on vertices 0..N-1.
type Graph struct {
	N   int
	adj []uint64 // adjacency bitmasks; requires N ≤ 64
}

// NewGraph returns an empty graph on n vertices (n ≤ 64).
func NewGraph(n int) *Graph {
	if n > 64 {
		panic(fmt.Sprintf("tw: graph too large (%d > 64 vertices)", n))
	}
	return &Graph{N: n, adj: make([]uint64, n)}
}

// AddEdge inserts the undirected edge {u, v}; loops are ignored.
func (g *Graph) AddEdge(u, v int) {
	if u == v {
		return
	}
	g.adj[u] |= 1 << uint(v)
	g.adj[v] |= 1 << uint(u)
}

// HasEdge reports whether {u,v} is an edge.
func (g *Graph) HasEdge(u, v int) bool { return u != v && g.adj[u]&(1<<uint(v)) != 0 }

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return popcount(g.adj[v]) }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int {
	total := 0
	for _, m := range g.adj {
		total += popcount(m)
	}
	return total / 2
}

// Clone returns a copy of g.
func (g *Graph) Clone() *Graph {
	c := NewGraph(g.N)
	copy(c.adj, g.adj)
	return c
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// FromStructure builds the Gaifman graph of a relational structure:
// one vertex per active-domain element, an edge between every pair of
// distinct elements co-occurring in some tuple. It returns the graph
// and the element→vertex mapping. For a tableau T_Q this is exactly
// the paper's G(Q).
func FromStructure(s *relstr.Structure) (*Graph, map[int]int) {
	dom := s.Domain()
	id := make(map[int]int, len(dom))
	for i, e := range dom {
		id[e] = i
	}
	g := NewGraph(len(dom))
	for _, rel := range s.Relations() {
		for _, t := range s.Tuples(rel) {
			for i := 0; i < len(t); i++ {
				for j := i + 1; j < len(t); j++ {
					if t[i] != t[j] {
						g.AddEdge(id[t[i]], id[t[j]])
					}
				}
			}
		}
	}
	return g, id
}

// IsForest reports whether g has no cycles.
func (g *Graph) IsForest() bool {
	// A forest has exactly N - (#components) edges.
	return g.NumEdges() == g.N-g.components()
}

func (g *Graph) components() int {
	seen := make([]bool, g.N)
	n := 0
	for s := 0; s < g.N; s++ {
		if seen[s] {
			continue
		}
		n++
		stack := []int{s}
		seen[s] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			m := g.adj[v]
			for m != 0 {
				w := trailingZeros(m)
				m &= m - 1
				if !seen[w] {
					seen[w] = true
					stack = append(stack, w)
				}
			}
		}
	}
	return n
}

func trailingZeros(x uint64) int {
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}

// qValue counts vertices outside R∪{v} reachable from v through
// internal vertices in R.
func (g *Graph) qValue(r uint64, v int) int {
	visited := uint64(1) << uint(v)
	frontier := g.adj[v]
	reach := uint64(0)
	for {
		newInR := frontier & r &^ visited
		reach |= frontier &^ r &^ visited
		if newInR == 0 {
			break
		}
		visited |= newInR
		next := uint64(0)
		m := newInR
		for m != 0 {
			w := trailingZeros(m)
			m &= m - 1
			next |= g.adj[w]
		}
		frontier = next
	}
	return popcount(reach)
}

// Treewidth returns the exact treewidth of g. A graph with no edges has
// treewidth 0; the empty graph has treewidth 0 by convention here.
// Panics if g.N > MaxExactN.
func (g *Graph) Treewidth() int {
	w, _ := g.treewidthDP()
	return w
}

// TreewidthAtMost reports whether tw(g) ≤ k, with fast paths for k ≥
// N−1 and k = 1.
func (g *Graph) TreewidthAtMost(k int) bool {
	if k < 0 {
		return g.N == 0
	}
	if g.N == 0 || k >= g.N-1 {
		return true
	}
	if g.NumEdges() == 0 {
		return true
	}
	if k == 1 {
		return g.IsForest()
	}
	return g.Treewidth() <= k
}

// treewidthDP runs the subset DP, returning the treewidth and an
// elimination order achieving it (vertices in elimination sequence).
func (g *Graph) treewidthDP() (int, []int) {
	n := g.N
	if n == 0 {
		return 0, nil
	}
	if n > MaxExactN {
		panic(fmt.Sprintf("tw: exact treewidth limited to %d vertices, got %d", MaxExactN, n))
	}
	if g.NumEdges() == 0 {
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		return 0, order
	}
	size := 1 << uint(n)
	dp := make([]int8, size)
	choice := make([]int8, size)
	for s := 1; s < size; s++ {
		best := int8(127)
		bestV := int8(-1)
		m := uint64(s)
		for m != 0 {
			v := trailingZeros(m)
			m &= m - 1
			prev := s &^ (1 << uint(v))
			q := g.qValue(uint64(prev), v)
			cost := dp[prev]
			if int8(q) > cost {
				cost = int8(q)
			}
			if cost < best {
				best = cost
				bestV = int8(v)
			}
		}
		dp[s] = best
		choice[s] = bestV
	}
	// Reconstruct elimination order: choice[S] is eliminated last in S.
	order := make([]int, n)
	s := size - 1
	for i := n - 1; i >= 0; i-- {
		v := int(choice[s])
		order[i] = v
		s &^= 1 << uint(v)
	}
	return int(dp[size-1]), order
}

// Decomposition is a tree decomposition: Bags[i] is a sorted vertex
// set, and Tree lists the decomposition-tree edges between bag indices.
type Decomposition struct {
	Bags  [][]int
	Tree  [][2]int
	Width int
}

// Decompose returns an optimal-width tree decomposition of g, derived
// from the exact elimination ordering.
func (g *Graph) Decompose() Decomposition {
	n := g.N
	if n == 0 {
		return Decomposition{Width: 0}
	}
	_, order := g.treewidthDP()
	pos := make([]int, n)
	for i, v := range order {
		pos[v] = i
	}
	// Fill-in simulation: eliminate in order, bag(v) = {v} ∪ current
	// neighbors; connect neighbors into a clique.
	work := g.Clone()
	bags := make([][]int, n)
	bagOf := make([]int, n) // vertex → its bag index (same as pos order index)
	for i, v := range order {
		nbrs := []int{}
		m := work.adj[v]
		for m != 0 {
			w := trailingZeros(m)
			m &= m - 1
			if pos[w] > i {
				nbrs = append(nbrs, w)
			}
		}
		bag := append([]int{v}, nbrs...)
		sort.Ints(bag)
		bags[i] = bag
		bagOf[v] = i
		for a := 0; a < len(nbrs); a++ {
			for b := a + 1; b < len(nbrs); b++ {
				work.AddEdge(nbrs[a], nbrs[b])
			}
		}
	}
	var tree [][2]int
	for i, v := range order {
		// Parent: bag of the earliest-later-eliminated neighbor.
		bestPos := -1
		m := work.adj[v]
		for m != 0 {
			w := trailingZeros(m)
			m &= m - 1
			if pos[w] > i && (bestPos == -1 || pos[w] < bestPos) {
				bestPos = pos[w]
			}
		}
		if bestPos >= 0 {
			tree = append(tree, [2]int{i, bestPos})
		} else if i+1 < n {
			tree = append(tree, [2]int{i, i + 1}) // keep the tree connected
		}
	}
	width := 0
	for _, b := range bags {
		if len(b)-1 > width {
			width = len(b) - 1
		}
	}
	return Decomposition{Bags: bags, Tree: tree, Width: width}
}

// Valid checks the three tree-decomposition conditions against g:
// every vertex appears in a bag, every edge is inside some bag, and
// each vertex's bags form a connected subtree.
func (d Decomposition) Valid(g *Graph) bool {
	inBag := make([]bool, g.N)
	for _, b := range d.Bags {
		for _, v := range b {
			inBag[v] = true
		}
	}
	for v := 0; v < g.N; v++ {
		if !inBag[v] {
			return false
		}
	}
	for u := 0; u < g.N; u++ {
		m := g.adj[u]
		for m != 0 {
			v := trailingZeros(m)
			m &= m - 1
			if v < u {
				continue
			}
			found := false
			for _, b := range d.Bags {
				hasU, hasV := false, false
				for _, x := range b {
					if x == u {
						hasU = true
					}
					if x == v {
						hasV = true
					}
				}
				if hasU && hasV {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
	}
	// Connectivity per vertex.
	adjB := make(map[int][]int)
	for _, e := range d.Tree {
		adjB[e[0]] = append(adjB[e[0]], e[1])
		adjB[e[1]] = append(adjB[e[1]], e[0])
	}
	for v := 0; v < g.N; v++ {
		var with []int
		for i, b := range d.Bags {
			for _, x := range b {
				if x == v {
					with = append(with, i)
					break
				}
			}
		}
		if len(with) <= 1 {
			continue
		}
		inSet := map[int]bool{}
		for _, i := range with {
			inSet[i] = true
		}
		seen := map[int]bool{with[0]: true}
		stack := []int{with[0]}
		for len(stack) > 0 {
			b := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, nb := range adjB[b] {
				if inSet[nb] && !seen[nb] {
					seen[nb] = true
					stack = append(stack, nb)
				}
			}
		}
		if len(seen) != len(with) {
			return false
		}
	}
	return true
}

// StructureTreewidth returns the treewidth of the Gaifman graph of s —
// the treewidth of a CQ whose tableau is s.
func StructureTreewidth(s *relstr.Structure) int {
	g, _ := FromStructure(s)
	return g.Treewidth()
}

// StructureTreewidthAtMost reports tw(G(s)) ≤ k.
func StructureTreewidthAtMost(s *relstr.Structure, k int) bool {
	g, _ := FromStructure(s)
	return g.TreewidthAtMost(k)
}
