package tw

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cqapprox/internal/cq"
)

func path(n int) *Graph {
	g := NewGraph(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func cycle(n int) *Graph {
	g := path(n)
	g.AddEdge(n-1, 0)
	return g
}

func clique(n int) *Graph {
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	return g
}

func grid(r, c int) *Graph {
	g := NewGraph(r * c)
	at := func(i, j int) int { return i*c + j }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if j+1 < c {
				g.AddEdge(at(i, j), at(i, j+1))
			}
			if i+1 < r {
				g.AddEdge(at(i, j), at(i+1, j))
			}
		}
	}
	return g
}

func TestTreewidthKnownValues(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want int
	}{
		{"empty", NewGraph(0), 0},
		{"single", NewGraph(1), 0},
		{"edgeless", NewGraph(5), 0},
		{"path5", path(5), 1},
		{"cycle3", cycle(3), 2},
		{"cycle6", cycle(6), 2},
		{"K4", clique(4), 3},
		{"K5", clique(5), 4},
		{"grid2x3", grid(2, 3), 2},
		{"grid3x3", grid(3, 3), 3},
		{"grid3x4", grid(3, 4), 3},
	}
	for _, c := range cases {
		if got := c.g.Treewidth(); got != c.want {
			t.Errorf("Treewidth(%s) = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestTreewidthAtMost(t *testing.T) {
	g := cycle(5)
	if g.TreewidthAtMost(1) {
		t.Fatal("C5 has treewidth 2")
	}
	if !g.TreewidthAtMost(2) {
		t.Fatal("C5 has treewidth 2")
	}
	if !path(6).TreewidthAtMost(1) {
		t.Fatal("paths have treewidth 1")
	}
	if !clique(4).TreewidthAtMost(3) || clique(4).TreewidthAtMost(2) {
		t.Fatal("K4 bounds wrong")
	}
}

func TestIsForest(t *testing.T) {
	if !path(7).IsForest() {
		t.Fatal("path is a forest")
	}
	if cycle(4).IsForest() {
		t.Fatal("cycle is not a forest")
	}
	// Two disjoint paths.
	g := NewGraph(6)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	if !g.IsForest() {
		t.Fatal("disjoint paths form a forest")
	}
}

func TestDecomposeValidAndOptimal(t *testing.T) {
	for _, g := range []*Graph{path(6), cycle(5), clique(4), grid(3, 3), grid(2, 4)} {
		d := g.Decompose()
		if !d.Valid(g) {
			t.Fatalf("invalid decomposition for graph with %d vertices", g.N)
		}
		if d.Width != g.Treewidth() {
			t.Fatalf("decomposition width %d ≠ treewidth %d", d.Width, g.Treewidth())
		}
	}
}

func TestFromStructureGaifman(t *testing.T) {
	q := cq.MustParse("Q() :- R(x,y,z), E(z,w)")
	tb := q.Tableau()
	g, id := FromStructure(tb.S)
	if g.N != 4 {
		t.Fatalf("Gaifman graph has %d vertices, want 4", g.N)
	}
	// R(x,y,z) induces a triangle; E(z,w) a pendant edge.
	if g.NumEdges() != 4 {
		t.Fatalf("Gaifman edges = %d, want 4", g.NumEdges())
	}
	if g.Treewidth() != 2 {
		t.Fatalf("treewidth = %d, want 2 (triangle)", g.Treewidth())
	}
	_ = id
}

func TestLoopsIgnored(t *testing.T) {
	q := cq.MustParse("Q() :- E(x,x), E(x,y)")
	tb := q.Tableau()
	if !StructureTreewidthAtMost(tb.S, 1) {
		t.Fatal("loop plus edge has treewidth 1")
	}
}

func TestStructureTreewidthOfCycleQuery(t *testing.T) {
	q := cq.MustParse("Q() :- E(x,y), E(y,z), E(z,x)")
	if w := StructureTreewidth(q.Tableau().S); w != 2 {
		t.Fatalf("tw(C3 query) = %d, want 2", w)
	}
}

// Property: treewidth is monotone under edge deletion.
func TestQuickMonotoneUnderSubgraphs(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(4)
		g := NewGraph(n)
		var edges [][2]int
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(2) == 0 {
					g.AddEdge(i, j)
					edges = append(edges, [2]int{i, j})
				}
			}
		}
		if len(edges) == 0 {
			return true
		}
		w := g.Treewidth()
		// Remove one random edge: treewidth cannot increase.
		drop := edges[rng.Intn(len(edges))]
		h := NewGraph(n)
		for _, e := range edges {
			if e != drop {
				h.AddEdge(e[0], e[1])
			}
		}
		return h.Treewidth() <= w
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: Decompose always yields a valid decomposition of optimal
// width on random graphs.
func TestQuickDecomposeValid(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(5)
		g := NewGraph(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(3) == 0 {
					g.AddEdge(i, j)
				}
			}
		}
		d := g.Decompose()
		return d.Valid(g) && d.Width == g.Treewidth()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
