// Package htw decides membership in the paper's hypergraph-based
// tractable classes HTW(k) (hypertree width ≤ k, Gottlob–Leone–
// Scarcello) and GHTW(k) (generalized hypertree width ≤ k).
//
// HTW(k) is decided by a memoised recursive search in the
// Gottlob–Leone–Scarcello normal form (the scheme behind
// opt-k-decomp/det-k-decomp): a node is a pair (component, connector);
// a candidate guard is any set S of ≤ k hyperedges; the node's bag in
// normal form is V(S) ∩ (V(component) ∪ connector). Every hypergraph of
// hypertree width ≤ k admits a decomposition in this normal form, so
// the procedure is exact and runs in polynomial time for fixed k.
//
// GHTW(k) drops the special condition; deciding ghw ≤ k is NP-complete
// for k ≥ 3 in general. GHTWAtMost performs an exact search in which
// the bag may be any subset of V(S) covering the connector — complete
// on the small hypergraphs used here (it enumerates subsets of V(S) ∩
// (V(component) ∪ connector)), exponential in k·(max edge size) in the
// worst case.
package htw

import (
	"sort"
	"strconv"
	"strings"

	"cqapprox/internal/hypergraph"
	"cqapprox/internal/relstr"
)

type solver struct {
	edges      [][]int // deduplicated edge list, each sorted
	k          int
	memo       map[string]bool
	inProgress map[string]bool
	tainted    bool // current computation consulted an in-progress node
	general    bool // GHTW mode: allow arbitrary bags ⊆ V(S)
}

func newSolver(h *hypergraph.Hypergraph, k int, general bool) *solver {
	// Deduplicate edges: identical atoms do not change width.
	seen := map[string]bool{}
	s := &solver{k: k, memo: map[string]bool{}, inProgress: map[string]bool{}, general: general}
	for _, e := range h.Edges {
		key := keyInts(e)
		if seen[key] {
			continue
		}
		seen[key] = true
		cp := append([]int{}, e...)
		s.edges = append(s.edges, cp)
	}
	return s
}

func keyInts(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = strconv.Itoa(x)
	}
	return strings.Join(parts, ",")
}

// AtMost reports whether the hypertree width of h is at most k.
func AtMost(h *hypergraph.Hypergraph, k int) bool {
	if k < 1 {
		return len(h.Edges) == 0
	}
	s := newSolver(h, k, false)
	all := make([]int, len(s.edges))
	for i := range all {
		all[i] = i
	}
	return s.decide(all, nil)
}

// GHTWAtMost reports whether the generalized hypertree width of h is at
// most k (exact bounded search; see the package comment).
func GHTWAtMost(h *hypergraph.Hypergraph, k int) bool {
	if k < 1 {
		return len(h.Edges) == 0
	}
	s := newSolver(h, k, true)
	all := make([]int, len(s.edges))
	for i := range all {
		all[i] = i
	}
	return s.decide(all, nil)
}

// Width returns the exact hypertree width of h (0 for edgeless).
func Width(h *hypergraph.Hypergraph) int {
	if len(h.Edges) == 0 {
		return 0
	}
	for k := 1; ; k++ {
		if AtMost(h, k) {
			return k
		}
	}
}

// GHTWWidth returns the generalized hypertree width of h.
func GHTWWidth(h *hypergraph.Hypergraph) int {
	if len(h.Edges) == 0 {
		return 0
	}
	for k := 1; ; k++ {
		if GHTWAtMost(h, k) {
			return k
		}
	}
}

// decide reports whether the component comp (edge indexes) with
// connector conn (sorted vertex list) can be decomposed within width k.
func (s *solver) decide(comp []int, conn []int) bool {
	if len(comp) == 0 {
		return true
	}
	key := keyInts(comp) + "|" + keyInts(conn) + "|" + strconv.FormatBool(s.general)
	if v, ok := s.memo[key]; ok {
		return v
	}
	// Re-entering an in-progress node means the candidate decomposition
	// nests (comp, conn) inside itself; by the standard replacement
	// argument such a decomposition can always be short-circuited, so
	// answering false here only prunes redundant shapes. The taint flag
	// prevents memoising false results that were derived under this
	// provisional answer.
	if s.inProgress[key] {
		s.tainted = true
		return false
	}
	s.inProgress[key] = true
	saved := s.tainted
	s.tainted = false
	res := s.search(comp, conn)
	delete(s.inProgress, key)
	if res || !s.tainted {
		s.memo[key] = res
	}
	s.tainted = s.tainted || saved
	return res
}

func (s *solver) search(comp []int, conn []int) bool {
	connSet := map[int]bool{}
	for _, v := range conn {
		connSet[v] = true
	}
	compVerts := map[int]bool{}
	for _, ei := range comp {
		for _, v := range s.edges[ei] {
			compVerts[v] = true
		}
	}
	// Enumerate guards: subsets S of edges, 1 ≤ |S| ≤ k.
	n := len(s.edges)
	idx := make([]int, 0, s.k)
	var tryGuard func(start int) bool
	tryGuard = func(start int) bool {
		if len(idx) > 0 && s.tryBags(idx, comp, connSet, compVerts) {
			return true
		}
		if len(idx) == s.k {
			return false
		}
		for i := start; i < n; i++ {
			idx = append(idx, i)
			if tryGuard(i + 1) {
				idx = idx[:len(idx)-1]
				return true
			}
			idx = idx[:len(idx)-1]
		}
		return false
	}
	return tryGuard(0)
}

// tryBags tests the guard S = edges[idx...] at the current node,
// enumerating the admissible bags (one in HTW normal form, all subsets
// in GHTW mode) and recursing into the resulting components.
func (s *solver) tryBags(guard []int, comp []int, connSet, compVerts map[int]bool) bool {
	vs := map[int]bool{} // V(S)
	for _, gi := range guard {
		for _, v := range s.edges[gi] {
			vs[v] = true
		}
	}
	// conn must be covered by V(S) in any case.
	for v := range connSet {
		if !vs[v] {
			return false
		}
	}
	// Relevant vertices for the bag.
	var relevant []int
	for v := range vs {
		if compVerts[v] || connSet[v] {
			relevant = append(relevant, v)
		}
	}
	sort.Ints(relevant)
	if !s.general {
		// Normal-form bag: χ = V(S) ∩ (V(comp) ∪ conn).
		return s.tryBag(relevant, comp, connSet, compVerts)
	}
	// GHTW: any bag conn ⊆ χ ⊆ relevant. Enumerate subsets of the
	// optional part (relevant minus conn).
	var optional []int
	for _, v := range relevant {
		if !connSet[v] {
			optional = append(optional, v)
		}
	}
	if len(optional) > 20 {
		// Fall back to the maximal bag only (sound: accepts a subset of
		// true positives; never wrong when it answers true).
		return s.tryBag(relevant, comp, connSet, compVerts)
	}
	base := make([]int, 0, len(relevant))
	for v := range connSet {
		base = append(base, v)
	}
	for mask := (1 << len(optional)) - 1; mask >= 0; mask-- {
		bag := append([]int{}, base...)
		for i, v := range optional {
			if mask&(1<<i) != 0 {
				bag = append(bag, v)
			}
		}
		if len(bag) == 0 {
			continue
		}
		sort.Ints(bag)
		if s.tryBag(bag, comp, connSet, compVerts) {
			return true
		}
	}
	return false
}

func (s *solver) tryBag(bag []int, comp []int, connSet, compVerts map[int]bool) bool {
	bagSet := map[int]bool{}
	for _, v := range bag {
		bagSet[v] = true
	}
	// Progress condition: the bag must either cover some component
	// vertex beyond the connector, or fully cover some component edge;
	// otherwise the recursion would not shrink.
	progress := false
	for v := range bagSet {
		if compVerts[v] && !connSet[v] {
			progress = true
			break
		}
	}
	if !progress {
		// Maybe an edge of comp is ⊆ conn ⊆ bag (fully covered here).
		for _, ei := range comp {
			if coveredBy(s.edges[ei], bagSet) {
				progress = true
				break
			}
		}
	}
	if !progress {
		return false
	}
	// Split comp into [bag]-components: edges connected via vertices
	// outside the bag. Edges fully inside the bag are covered here.
	comps := s.split(comp, bagSet)
	for _, sub := range comps {
		// Connector of the child = V(sub) ∩ bag.
		childConnSet := map[int]bool{}
		for _, ei := range sub {
			for _, v := range s.edges[ei] {
				if bagSet[v] {
					childConnSet[v] = true
				}
			}
		}
		childConn := make([]int, 0, len(childConnSet))
		for v := range childConnSet {
			childConn = append(childConn, v)
		}
		sort.Ints(childConn)
		if !s.decide(sub, childConn) {
			return false
		}
	}
	return true
}

func coveredBy(e []int, set map[int]bool) bool {
	for _, v := range e {
		if !set[v] {
			return false
		}
	}
	return true
}

// split partitions the edges of comp not covered by the bag into
// connected components w.r.t. shared vertices outside the bag.
func (s *solver) split(comp []int, bagSet map[int]bool) [][]int {
	var rest []int
	for _, ei := range comp {
		if !coveredBy(s.edges[ei], bagSet) {
			rest = append(rest, ei)
		}
	}
	// Union-find over rest via shared outside-bag vertices.
	parent := map[int]int{}
	var find func(x int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	for _, ei := range rest {
		parent[ei] = ei
	}
	byVertex := map[int]int{} // outside-bag vertex → representative edge
	for _, ei := range rest {
		for _, v := range s.edges[ei] {
			if bagSet[v] {
				continue
			}
			if other, ok := byVertex[v]; ok {
				union(ei, other)
			} else {
				byVertex[v] = ei
			}
		}
	}
	groups := map[int][]int{}
	for _, ei := range rest {
		r := find(ei)
		groups[r] = append(groups[r], ei)
	}
	var out [][]int
	var reps []int
	for r := range groups {
		reps = append(reps, r)
	}
	sort.Ints(reps)
	for _, r := range reps {
		g := groups[r]
		sort.Ints(g)
		out = append(out, g)
	}
	return out
}

// StructureAtMost reports whether the CQ with tableau s has hypertree
// width ≤ k.
func StructureAtMost(s *relstr.Structure, k int) bool {
	return AtMost(hypergraph.FromStructure(s), k)
}

// StructureWidth returns the hypertree width of the hypergraph of s.
func StructureWidth(s *relstr.Structure) int {
	return Width(hypergraph.FromStructure(s))
}
