package htw

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cqapprox/internal/cq"
	"cqapprox/internal/hom"
	"cqapprox/internal/hypergraph"
	"cqapprox/internal/relstr"
)

func TestAcyclicHasWidthOne(t *testing.T) {
	cases := []*hypergraph.Hypergraph{
		hypergraph.New([]int{0, 1, 2}),
		hypergraph.New([]int{0, 1}, []int{1, 2}, []int{2, 3}),
		hypergraph.New([]int{0, 1, 2}, []int{0, 1}, []int{1, 2}, []int{0, 2}),
		hypergraph.New([]int{0}, []int{0, 1}),
	}
	for i, h := range cases {
		if got := Width(h); got != 1 {
			t.Errorf("case %d: Width = %d, want 1", i, got)
		}
		if !GHTWAtMost(h, 1) {
			t.Errorf("case %d: GHTW should be ≤ 1", i)
		}
	}
}

func TestTriangleWidthTwo(t *testing.T) {
	tri := hypergraph.New([]int{0, 1}, []int{1, 2}, []int{0, 2})
	if AtMost(tri, 1) {
		t.Fatal("triangle is not acyclic")
	}
	if !AtMost(tri, 2) {
		t.Fatal("triangle has hypertree width 2")
	}
	if Width(tri) != 2 {
		t.Fatalf("Width(triangle) = %d", Width(tri))
	}
}

func TestCyclesWidthTwo(t *testing.T) {
	for n := 4; n <= 7; n++ {
		edges := make([][]int, n)
		for i := 0; i < n; i++ {
			edges[i] = []int{i, (i + 1) % n}
		}
		h := hypergraph.New(edges...)
		if Width(h) != 2 {
			t.Errorf("Width(C%d) = %d, want 2", n, Width(h))
		}
	}
}

func TestCliqueWidths(t *testing.T) {
	kn := func(n int) *hypergraph.Hypergraph {
		h := &hypergraph.Hypergraph{}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				h.AddEdge([]int{i, j})
			}
		}
		return h
	}
	// hw(K_n) = ⌈n/2⌉ (Gottlob–Leone–Scarcello).
	if got := Width(kn(4)); got != 2 {
		t.Errorf("Width(K4) = %d, want 2", got)
	}
	if got := Width(kn(5)); got != 3 {
		t.Errorf("Width(K5) = %d, want 3", got)
	}
}

func TestTernaryCycleQuery(t *testing.T) {
	q := cq.MustParse("Q() :- R(x,u,y), R(y,v,z), R(z,w,x)")
	h := hypergraph.FromStructure(q.Tableau().S)
	if AtMost(h, 1) {
		t.Fatal("ternary cycle is not acyclic")
	}
	if !AtMost(h, 2) {
		t.Fatal("ternary cycle has hypertree width 2")
	}
}

func TestGHTWLowerBoundsHTW(t *testing.T) {
	// ghw ≤ hw always.
	cases := []*hypergraph.Hypergraph{
		hypergraph.New([]int{0, 1}, []int{1, 2}, []int{0, 2}),
		hypergraph.New([]int{0, 1}, []int{1, 2}, []int{2, 3}, []int{3, 0}),
		hypergraph.New([]int{0, 1, 2}, []int{2, 3, 4}, []int{4, 5, 0}),
	}
	for i, h := range cases {
		if GHTWWidth(h) > Width(h) {
			t.Errorf("case %d: ghw %d > hw %d", i, GHTWWidth(h), Width(h))
		}
	}
}

func TestStructureHelpers(t *testing.T) {
	q := cq.MustParse("Q() :- E(x,y), E(y,z), E(z,x)")
	if StructureAtMost(q.Tableau().S, 1) {
		t.Fatal("triangle query is not acyclic")
	}
	if StructureWidth(q.Tableau().S) != 2 {
		t.Fatalf("width = %d", StructureWidth(q.Tableau().S))
	}
	acyc := cq.MustParse("Q() :- E(x,y), E(y,z)")
	if !StructureAtMost(acyc.Tableau().S, 1) {
		t.Fatal("path query is acyclic")
	}
}

func TestEdgelessAndTrivial(t *testing.T) {
	empty := &hypergraph.Hypergraph{}
	if !AtMost(empty, 1) || Width(empty) != 0 {
		t.Fatal("empty hypergraph should have width 0")
	}
	if AtMost(hypergraph.New([]int{0, 1}), 0) {
		t.Fatal("k=0 should reject nonempty hypergraphs")
	}
}

// Property: hypertree width 1 coincides with GYO acyclicity
// (Gottlob–Leone–Scarcello: hw(H)=1 ⟺ H acyclic).
func TestQuickWidthOneIffAcyclic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := &hypergraph.Hypergraph{}
		nv := 3 + rng.Intn(4)
		ne := 2 + rng.Intn(4)
		for i := 0; i < ne; i++ {
			size := 1 + rng.Intn(3)
			e := map[int]bool{}
			for len(e) < size {
				e[rng.Intn(nv)] = true
			}
			var edge []int
			for v := range e {
				edge = append(edge, v)
			}
			h.AddEdge(edge)
		}
		return h.IsAcyclic() == AtMost(h, 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: width is antitone in k: AtMost(h,k) implies AtMost(h,k+1).
func TestQuickMonotoneInK(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := &hypergraph.Hypergraph{}
		nv := 4 + rng.Intn(3)
		for i := 0; i < 5; i++ {
			a, b := rng.Intn(nv), rng.Intn(nv)
			if a == b {
				b = (b + 1) % nv
			}
			h.AddEdge([]int{a, b})
		}
		for k := 1; k <= 3; k++ {
			if AtMost(h, k) && !AtMost(h, k+1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: cores of acyclic structures are acyclic (cores are images
// of retractions, so every covering hyperedge keeps covering its
// image). The approximation engine relies on this to return minimized
// class members.
func TestQuickCoreOfAcyclicIsAcyclic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := relstr.New()
		n := 3 + rng.Intn(4)
		for i := 0; i < 2+rng.Intn(5); i++ {
			if rng.Intn(2) == 0 {
				s.Add("E", rng.Intn(n), rng.Intn(n))
			} else {
				s.Add("R", rng.Intn(n), rng.Intn(n), rng.Intn(n))
			}
		}
		if !hypergraph.AcyclicStructure(s) {
			return true
		}
		core, _ := hom.Core(s, nil)
		return hypergraph.AcyclicStructure(core)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property (Lemma 6.4): HTW(k) is closed under induced subhypergraphs
// and edge extensions.
func TestQuickLemma64Closure(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := &hypergraph.Hypergraph{}
		nv := 4 + rng.Intn(3)
		for i := 0; i < 4; i++ {
			size := 2 + rng.Intn(2)
			e := map[int]bool{}
			for len(e) < size {
				e[rng.Intn(nv)] = true
			}
			var edge []int
			for v := range e {
				edge = append(edge, v)
			}
			h.AddEdge(edge)
		}
		w := Width(h)
		// Induced subhypergraph on a random subset.
		keep := map[int]bool{}
		for _, v := range h.Vertices() {
			if rng.Intn(2) == 0 {
				keep[v] = true
			}
		}
		ind := h.Induced(keep)
		if len(ind.Edges) > 0 && Width(ind) > w {
			return false
		}
		// Edge extension with fresh vertices.
		ext := h.ExtendEdge(rng.Intn(len(h.Edges)), 100, 101)
		return Width(ext) <= w
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
