package count

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cqapprox/internal/cq"
	"cqapprox/internal/eval"
	"cqapprox/internal/relstr"
)

func pathDB(rng *rand.Rand, n, m int) *relstr.Structure {
	db := relstr.New()
	db.Declare("E", 2)
	for i := 0; i < m; i++ {
		db.Add("E", rng.Intn(n), rng.Intn(n))
	}
	return db
}

func oracle(t *testing.T, p *eval.Plan, db *relstr.Structure) uint64 {
	t.Helper()
	want, err := p.EvalBaseline(context.Background(), db)
	if err != nil {
		t.Fatal(err)
	}
	return uint64(len(want))
}

// Exact picks the right mode per plan shape and always matches the
// reference evaluation.
func TestExactModes(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(3))
	db := pathDB(rng, 8, 30)
	cases := []struct {
		src  string
		mode string
	}{
		{"Q(x,y,z) :- E(x,y), E(y,z)", ModeExactDP},
		{"Q(x,y) :- E(x,y), E(y,z)", ModeExactDP},
		{"Q() :- E(x,y)", ModeExactDP},
		{"Q(x,z) :- E(x,y), E(y,z)", ModeExactEval},
		{"Q(x) :- E(x,y), E(y,z), E(z,x)", ModeExactEnum},
	}
	for _, c := range cases {
		p := eval.NewPlan(cq.MustParse(c.src))
		res, err := Exact(ctx, p, eval.NewSource(db), 1)
		if err != nil {
			t.Fatal(err)
		}
		if res.Mode != c.mode {
			t.Errorf("%s: mode = %s, want %s", c.src, res.Mode, c.mode)
		}
		if res.Estimated {
			t.Errorf("%s: exact result marked estimated", c.src)
		}
		if want := oracle(t, p, db); res.Count != want {
			t.Errorf("%s: count = %d, want %d", c.src, res.Count, want)
		}
	}
}

// Exact equals the reference on random inputs across both backends.
func TestQuickExact(t *testing.T) {
	ctx := context.Background()
	queries := []string{
		"Q(x,y,z) :- E(x,y), E(y,z)",
		"Q(x,y) :- E(x,y), E(y,z)",
		"Q(x,z) :- E(x,y), E(y,z)",
		"Q(x,x) :- E(x,y), E(y,x)",
		"Q(y) :- E(x,y)",
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := pathDB(rng, 6, 18)
		snap := relstr.NewSnapshot(db)
		for _, src := range queries {
			p := eval.NewPlan(cq.MustParse(src))
			want := uint64(len(mustEval(p, db)))
			for _, s := range []eval.Source{eval.NewSource(db), eval.NewSnapshotSource(snap)} {
				res, err := Exact(ctx, p, s, 2)
				if err != nil || res.Count != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func mustEval(p *eval.Plan, db *relstr.Structure) eval.Answers {
	ans, err := p.EvalBaseline(context.Background(), db)
	if err != nil {
		panic(err)
	}
	return ans
}

// Fixed-seed estimates land within the requested ε of the true count
// on a sampling-classified query, and are deterministic per seed.
func TestEstimateWithinEpsilon(t *testing.T) {
	ctx := context.Background()
	q := cq.MustParse("Q(x,z) :- E(x,y), E(y,z)")
	p := eval.NewPlan(q)
	rng := rand.New(rand.NewSource(11))
	db := pathDB(rng, 15, 120)
	want := oracle(t, p, db)
	if want == 0 {
		t.Fatal("degenerate database")
	}
	const eps = 0.1
	for seed := int64(1); seed <= 5; seed++ {
		res, err := Estimate(ctx, p, eval.NewSource(db), 1, Options{Epsilon: eps, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Estimated || res.Mode != ModeEstimate {
			t.Fatalf("seed %d: mode = %s, estimated = %v", seed, res.Mode, res.Estimated)
		}
		if res.Samples == 0 || res.Batches == 0 {
			t.Fatalf("seed %d: no sampling effort recorded", seed)
		}
		if rel := math.Abs(res.Estimate-float64(want)) / float64(want); rel > eps {
			t.Errorf("seed %d: estimate %v vs true %d, rel err %.4f > ε=%v",
				seed, res.Estimate, want, rel, eps)
		}
		again, err := Estimate(ctx, p, eval.NewSource(db), 1, Options{Epsilon: eps, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if again.Estimate != res.Estimate || again.Samples != res.Samples {
			t.Errorf("seed %d: estimate not deterministic (%v/%d vs %v/%d)",
				seed, res.Estimate, res.Samples, again.Estimate, again.Samples)
		}
	}
}

// Estimate degrades to the exact paths when sampling has nothing to do.
func TestEstimateExactShortcuts(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(5))
	db := pathDB(rng, 8, 30)
	for _, src := range []string{
		"Q(x,y,z) :- E(x,y), E(y,z)",     // fully countable
		"Q(x) :- E(x,y), E(y,z), E(z,x)", // naive plan
	} {
		p := eval.NewPlan(cq.MustParse(src))
		res, err := Estimate(ctx, p, eval.NewSource(db), 1, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Estimated {
			t.Errorf("%s: estimate sampled where exact is free", src)
		}
		if want := oracle(t, p, db); res.Count != want {
			t.Errorf("%s: count = %d, want %d", src, res.Count, want)
		}
	}
	// Empty answer set on a sampling plan: exact zero without sampling.
	p := eval.NewPlan(cq.MustParse("Q(x,z) :- E(x,y), F(y,z)"))
	empty := relstr.New()
	empty.Declare("E", 2)
	empty.Declare("F", 2)
	empty.Add("E", 1, 2)
	res, err := Estimate(ctx, p, eval.NewSource(empty), 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimated || res.Count != 0 {
		t.Fatalf("empty db: count = %d, estimated = %v", res.Count, res.Estimated)
	}
}

// Counting calls feed the plan's statistics: exact vs estimated, with
// batch totals.
func TestCountStats(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(9))
	db := pathDB(rng, 10, 50)
	p := eval.NewPlan(cq.MustParse("Q(x,z) :- E(x,y), E(y,z)"))
	if _, err := Exact(ctx, p, eval.NewSource(db), 1); err != nil {
		t.Fatal(err)
	}
	res, err := Estimate(ctx, p, eval.NewSource(db), 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := p.IndexStats()
	if st.ExactCounts != 1 {
		t.Errorf("ExactCounts = %d, want 1", st.ExactCounts)
	}
	if st.EstimatedCounts != 1 {
		t.Errorf("EstimatedCounts = %d, want 1", st.EstimatedCounts)
	}
	if st.SampleBatches != uint64(res.Batches) || st.SampleBatches == 0 {
		t.Errorf("SampleBatches = %d, want %d", st.SampleBatches, res.Batches)
	}
}

// Option defaulting.
func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Epsilon != DefaultEpsilon || o.Delta != DefaultDelta ||
		o.Seed != DefaultSeed || o.MaxSamples != DefaultMaxSamples {
		t.Fatalf("defaults = %+v", o)
	}
	o = Options{Epsilon: 0.2, Delta: 0.01, Seed: 9, MaxSamples: 10}.withDefaults()
	if o.Epsilon != 0.2 || o.Delta != 0.01 || o.Seed != 9 || o.MaxSamples != 10 {
		t.Fatalf("explicit options clobbered: %+v", o)
	}
}
