// Package count is the answer-counting subsystem: exact counts over
// the eval executor's reduced forest, and an FPRAS-style sampling
// estimator for the plans where exact counting is not free-connex.
//
// Exact counting picks the cheapest correct mode per plan:
//
//   - "exact-dp": every tree of an acyclic plan's forest classifies as
//     exactly countable (see eval's count schedule) — unit trees,
//     single-node distinct projections, and free-core multiplicity DPs,
//     multiplied across trees. No answer tuple is ever materialised.
//   - "exact-eval": the plan is acyclic but some tree interleaves
//     existential variables between head variables; the count is the
//     length of a full evaluation.
//   - "exact-enum": the plan is naive (cyclic); distinct answers are
//     enumerated by backtracking and counted without being kept.
//
// Estimation replaces only the "exact-eval" case: each non-countable
// tree gets a Karp–Luby-shaped estimator — sample uniform full
// assignments from the tree's weighted DP, divide the assignment total
// N by the sampled head projection's multiplicity m for an unbiased
// per-sample estimate of the distinct-projection count, then
// median-of-means across batches for the (ε, δ) guarantee. Exactly
// countable trees keep their exact factors; the result is the product.
package count

import (
	"context"
	"math"
	"math/bits"
	"math/rand"
	"time"

	"cqapprox/internal/eval"
	"cqapprox/internal/obs"
)

// Result modes.
const (
	ModeExactDP   = "exact-dp"
	ModeExactEval = "exact-eval"
	ModeExactEnum = "exact-enum"
	ModeEstimate  = "estimate"
)

// Options tune an estimated count. The zero value is usable: every
// field falls back to its default.
type Options struct {
	// Epsilon is the relative error target (default 0.1).
	Epsilon float64
	// Delta is the failure probability (default 0.05): the estimate is
	// within (1±ε) of the true count with probability ≥ 1-δ.
	Delta float64
	// Seed makes runs reproducible (default 1). Same plan, database,
	// options and seed ⇒ same estimate.
	Seed int64
	// MaxSamples caps the total samples drawn across the whole call
	// (default 200000); the per-batch size shrinks to fit.
	MaxSamples int
}

// Defaults.
const (
	DefaultEpsilon    = 0.1
	DefaultDelta      = 0.05
	DefaultSeed       = 1
	DefaultMaxSamples = 200000
)

func (o Options) withDefaults() Options {
	if o.Epsilon <= 0 {
		o.Epsilon = DefaultEpsilon
	}
	if o.Delta <= 0 {
		o.Delta = DefaultDelta
	}
	if o.Seed == 0 {
		o.Seed = DefaultSeed
	}
	if o.MaxSamples <= 0 {
		o.MaxSamples = DefaultMaxSamples
	}
	return o
}

// Result is the outcome of one counting call.
type Result struct {
	// Count is the exact answer count when Estimated is false, and the
	// rounded estimate otherwise.
	Count uint64
	// Estimate is the raw (possibly fractional) estimate; for exact
	// results it is simply float64(Count).
	Estimate float64
	// Estimated reports whether sampling produced the result.
	Estimated bool
	// Mode names the path taken: "exact-dp", "exact-eval",
	// "exact-enum" or "estimate".
	Mode string
	// Samples and Batches are the sampling effort (zero when exact).
	Samples int
	Batches int
	// Epsilon and Delta echo the effective accuracy knobs of an
	// estimated result.
	Epsilon float64
	Delta   float64
}

func exactResult(n uint64, mode string) Result {
	return Result{Count: n, Estimate: float64(n), Mode: mode}
}

// Exact computes the exact answer count of p on src. It never
// materialises answers on the "exact-dp" path; the fallbacks do
// (eval) or enumerate them transiently (enum). The error is
// eval.ErrCountOverflow when the count exceeds uint64.
func Exact(ctx context.Context, p *eval.Plan, src eval.Source, parallel int) (Result, error) {
	res, err := exact(ctx, p, src, parallel)
	if err == nil {
		p.RecordCount(false, 0)
	}
	return res, err
}

// ExactTrace is Exact with an execution trace of the run attached:
// the reduction counters from the forest plus a caller-timed "count"
// phase around the DP product. Naive plans trace total time only.
func ExactTrace(ctx context.Context, p *eval.Plan, src eval.Source, parallel int) (Result, *obs.ExecTrace, error) {
	start := time.Now()
	if p.Mode() != eval.PlanYannakakis {
		n, err := p.CountEnum(ctx, src)
		if err != nil {
			return Result{}, nil, err
		}
		p.RecordCount(false, 0)
		tr := &obs.ExecTrace{Mode: p.Mode().String(), Parallelism: 1,
			TotalNS: time.Since(start).Nanoseconds()}
		return exactResult(n, ModeExactEnum), tr, nil
	}
	if !p.ExactCountable() {
		ans, tr, err := p.EvalTraceOn(ctx, src, parallel)
		if err != nil {
			return Result{}, nil, err
		}
		p.RecordCount(false, 0)
		return exactResult(uint64(len(ans)), ModeExactEval), tr, nil
	}
	run, err := p.PrepareCountTrace(ctx, src, parallel)
	if err != nil {
		return Result{}, nil, err
	}
	defer run.Close()
	t0 := time.Now()
	n, err := exactProduct(ctx, run)
	if err != nil {
		return Result{}, nil, err
	}
	run.TracePhase("count", time.Since(t0))
	tr := run.TraceSnapshot(time.Since(start))
	p.RecordCount(false, 0)
	return exactResult(n, ModeExactDP), tr, nil
}

func exact(ctx context.Context, p *eval.Plan, src eval.Source, parallel int) (Result, error) {
	if p.Mode() != eval.PlanYannakakis {
		n, err := p.CountEnum(ctx, src)
		if err != nil {
			return Result{}, err
		}
		return exactResult(n, ModeExactEnum), nil
	}
	if !p.ExactCountable() {
		ans, err := p.EvalOn(ctx, src, parallel)
		if err != nil {
			return Result{}, err
		}
		return exactResult(uint64(len(ans)), ModeExactEval), nil
	}
	run, err := p.PrepareCount(ctx, src, parallel)
	if err != nil {
		return Result{}, err
	}
	defer run.Close()
	n, err := exactProduct(ctx, run)
	if err != nil {
		return Result{}, err
	}
	return exactResult(n, ModeExactDP), nil
}

// exactProduct multiplies the per-tree exact counts of a fully
// countable run.
func exactProduct(ctx context.Context, run *eval.CountRun) (uint64, error) {
	if run.Empty() {
		return 0, nil
	}
	total := uint64(1)
	for t := 0; t < run.Trees(); t++ {
		n, ok, err := run.TreeExact(ctx, t)
		if err != nil {
			return 0, err
		}
		if !ok {
			panic("count: exactProduct on a sampling tree")
		}
		if hi, lo := bits.Mul64(total, n); hi == 0 {
			total = lo
		} else {
			return 0, eval.ErrCountOverflow
		}
	}
	return total, nil
}

// Estimate returns the answer count of p on src, sampling only where
// exact counting would have to materialise answers. When every tree
// counts exactly (or the plan is naive) the result is exact and
// Estimated is false — estimation never makes a cheap count worse.
func Estimate(ctx context.Context, p *eval.Plan, src eval.Source, parallel int, opts Options) (Result, error) {
	opts = opts.withDefaults()
	if p.Mode() != eval.PlanYannakakis || p.ExactCountable() {
		return Exact(ctx, p, src, parallel)
	}
	run, err := p.PrepareCount(ctx, src, parallel)
	if err != nil {
		return Result{}, err
	}
	defer run.Close()
	if run.Empty() {
		p.RecordCount(false, 0)
		return exactResult(0, ModeExactDP), nil
	}

	var sampleTrees []int
	exactPart := 1.0
	for t := 0; t < run.Trees(); t++ {
		if !run.TreeExactOK(t) {
			sampleTrees = append(sampleTrees, t)
			continue
		}
		n, _, err := run.TreeExact(ctx, t)
		if err != nil {
			return Result{}, err
		}
		if n == 0 {
			p.RecordCount(false, 0)
			return exactResult(0, ModeExactDP), nil
		}
		exactPart *= float64(n)
	}

	// Split the accuracy budget across the k sampled trees: per-tree
	// relative error ε/k and failure δ/k make the product of the tree
	// estimates land within (1±ε) with probability ≥ 1-δ (union bound;
	// Π(1±ε/k) ⊆ 1±ε for ε ≤ 1).
	k := len(sampleTrees)
	rng := rand.New(rand.NewSource(opts.Seed))
	est := exactPart
	samples, batches := 0, 0
	for _, t := range sampleTrees {
		te, err := estimateTree(ctx, run, t, rng, opts.Epsilon/float64(k), opts.Delta/float64(k), opts.MaxSamples/k)
		if err != nil {
			return Result{}, err
		}
		est *= te.mean
		samples += te.samples
		batches += te.batches
	}
	p.RecordCount(true, uint64(batches))
	return Result{
		Count:     uint64(math.Round(est)),
		Estimate:  est,
		Estimated: true,
		Mode:      ModeEstimate,
		Samples:   samples,
		Batches:   batches,
		Epsilon:   opts.Epsilon,
		Delta:     opts.Delta,
	}, nil
}

// EstimateTrace is Estimate with an execution trace of the run
// attached; the sampling effort lands in a "count-estimate" phase.
// Plans that short-circuit to an exact count trace that path instead.
func EstimateTrace(ctx context.Context, p *eval.Plan, src eval.Source, parallel int, opts Options) (Result, *obs.ExecTrace, error) {
	opts = opts.withDefaults()
	if p.Mode() != eval.PlanYannakakis || p.ExactCountable() {
		return ExactTrace(ctx, p, src, parallel)
	}
	start := time.Now()
	run, err := p.PrepareCountTrace(ctx, src, parallel)
	if err != nil {
		return Result{}, nil, err
	}
	defer run.Close()
	if run.Empty() {
		p.RecordCount(false, 0)
		return exactResult(0, ModeExactDP), run.TraceSnapshot(time.Since(start)), nil
	}

	t0 := time.Now()
	var sampleTrees []int
	exactPart := 1.0
	for t := 0; t < run.Trees(); t++ {
		if !run.TreeExactOK(t) {
			sampleTrees = append(sampleTrees, t)
			continue
		}
		n, _, err := run.TreeExact(ctx, t)
		if err != nil {
			return Result{}, nil, err
		}
		if n == 0 {
			p.RecordCount(false, 0)
			run.TracePhase("count", time.Since(t0))
			return exactResult(0, ModeExactDP), run.TraceSnapshot(time.Since(start)), nil
		}
		exactPart *= float64(n)
	}

	k := len(sampleTrees)
	rng := rand.New(rand.NewSource(opts.Seed))
	est := exactPart
	samples, batches := 0, 0
	for _, t := range sampleTrees {
		te, err := estimateTree(ctx, run, t, rng, opts.Epsilon/float64(k), opts.Delta/float64(k), opts.MaxSamples/k)
		if err != nil {
			return Result{}, nil, err
		}
		est *= te.mean
		samples += te.samples
		batches += te.batches
	}
	run.TracePhase("count-estimate", time.Since(t0))
	p.RecordCount(true, uint64(batches))
	return Result{
		Count:     uint64(math.Round(est)),
		Estimate:  est,
		Estimated: true,
		Mode:      ModeEstimate,
		Samples:   samples,
		Batches:   batches,
		Epsilon:   opts.Epsilon,
		Delta:     opts.Delta,
	}, run.TraceSnapshot(time.Since(start)), nil
}

type treeEstimate struct {
	mean    float64
	samples int
	batches int
}

// estimateTree runs the median-of-means estimator on one sampling
// tree: a pilot round sizes the batches from the empirical variance
// (Chebyshev, per-batch failure ≤ 1/4), then the median of
// B = Θ(log 1/δ) batch means boosts the confidence to 1-δ.
func estimateTree(ctx context.Context, run *eval.CountRun, t int, rng *rand.Rand, eps, delta float64, budget int) (treeEstimate, error) {
	const pilot = 64
	mean, m2 := 0.0, 0.0
	for i := 0; i < pilot; i++ {
		x, err := run.TreeSample(t, rng)
		if err != nil {
			return treeEstimate{}, err
		}
		d := x - mean
		mean += d / float64(i+1)
		m2 += d * (x - mean)
	}
	variance := m2 / float64(pilot-1)
	if variance == 0 {
		// Every pilot sample agreed — the tree's projection multiplicity
		// is uniform and the pilot mean is already the exact ratio.
		return treeEstimate{mean: mean, samples: pilot, batches: 1}, nil
	}
	s := int(math.Ceil(4 * variance / (eps * eps * mean * mean)))
	if s < 16 {
		s = 16
	}
	b := int(math.Ceil(8 * math.Log(1/delta)))
	if b%2 == 0 {
		b++
	}
	if budget > 0 && s*b > budget {
		s = budget / b
		if s < 1 {
			s = 1
		}
	}
	means := make([]float64, b)
	total := 0
	for i := range means {
		if err := ctx.Err(); err != nil {
			return treeEstimate{}, err
		}
		sum := 0.0
		for j := 0; j < s; j++ {
			x, err := run.TreeSample(t, rng)
			if err != nil {
				return treeEstimate{}, err
			}
			sum += x
		}
		means[i] = sum / float64(s)
		total += s
	}
	return treeEstimate{mean: median(means), samples: pilot + total, batches: b}, nil
}

func median(xs []float64) float64 {
	// Insertion sort: b is small (tens).
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
	return xs[len(xs)/2]
}
