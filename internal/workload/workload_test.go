package workload

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"cqapprox/internal/hypergraph"
	"cqapprox/internal/tw"
)

func TestRandomDigraphSize(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	db := RandomDigraph(rng, 50, 200)
	if db.NumFacts() == 0 || db.NumFacts() > 200 {
		t.Fatalf("NumFacts = %d", db.NumFacts())
	}
	if db.DomainSize() > 50 {
		t.Fatalf("domain = %d", db.DomainSize())
	}
}

func TestRandomSocialReciprocity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	db := RandomSocial(rng, 200, 4, 0.5)
	recip, total := 0, 0
	for _, e := range db.Tuples("E") {
		total++
		if db.Has("E", e[1], e[0]) {
			recip++
		}
	}
	if total == 0 {
		t.Fatal("no edges")
	}
	if recip == 0 {
		t.Fatal("no reciprocated edges with reciprocity 0.5")
	}
}

func TestLayeredDAGIsBalancedShaped(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db := LayeredDAG(rng, 4, 5, 2)
	// All edges go from layer l to l+1: check span.
	for _, e := range db.Tuples("E") {
		if e[1]/5 != e[0]/5+1 {
			t.Fatalf("edge %v crosses layers badly", e)
		}
	}
}

func TestCycleQueryShape(t *testing.T) {
	q := CycleQuery(5)
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	if q.NumVars() != 5 || len(q.Atoms) != 5 || !q.IsBoolean() {
		t.Fatalf("C5 = %v", q)
	}
	if tw.StructureTreewidthAtMost(q.Tableau().S, 1) {
		t.Fatal("cycle queries are not treewidth 1")
	}
	if !tw.StructureTreewidthAtMost(q.Tableau().S, 2) {
		t.Fatal("cycle queries are treewidth 2")
	}
}

func TestCycleQueryFree(t *testing.T) {
	q := CycleQueryFree(4)
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(q.Head) != 1 {
		t.Fatalf("head = %v", q.Head)
	}
}

func TestChordedCycleTreewidth(t *testing.T) {
	q := ChordedCycleQuery(6)
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	if w := tw.StructureTreewidth(q.Tableau().S); w != 2 {
		t.Fatalf("tw = %d, want 2", w)
	}
}

func TestTernaryCycleQuery(t *testing.T) {
	q := TernaryCycleQuery(3)
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	if hypergraph.AcyclicStructure(q.Tableau().S) {
		t.Fatal("ternary cycle should be cyclic")
	}
	if q.NumVars() != 6 {
		t.Fatalf("vars = %d, want 6", q.NumVars())
	}
}

func TestGridQuery(t *testing.T) {
	q := GridQuery(2, 3)
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	if w := tw.StructureTreewidth(q.Tableau().S); w != 2 {
		t.Fatalf("tw(2x3 grid) = %d, want 2", w)
	}
}

func TestRandomGraphQueryValid(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 50; i++ {
		q := RandomGraphQuery(rng, 4, 5)
		if err := q.Validate(); err != nil {
			t.Fatalf("invalid random query %v: %v", q, err)
		}
	}
}

func TestQuerySuiteValid(t *testing.T) {
	for _, q := range QuerySuite() {
		if err := q.Validate(); err != nil {
			t.Fatalf("%v: %v", q, err)
		}
		if q.NumVars() > 10 {
			t.Fatalf("%v exceeds the approximation engine's default MaxVars", q)
		}
	}
}

func TestCountBenchSuiteValid(t *testing.T) {
	for _, c := range CountBenchSuite() {
		if err := c.Query.Validate(); err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
	}
	if got := len(FullChainQuery(3).Head); got != 4 {
		t.Fatalf("FullChain3 head arity = %d, want 4", got)
	}
	if got := len(FullStarQuery(5).Head); got != 6 {
		t.Fatalf("FullStar5 head arity = %d, want 6", got)
	}
}

// CountShare turns a fraction of eval ops into count ops — in both
// exact and estimate flavours — while CountShare == 0 reproduces the
// pre-counting op sequence bit for bit.
func TestCountShareOps(t *testing.T) {
	collect := func(g *LoadGen, n int) []Op {
		var (
			mu  sync.Mutex
			ops []Op
		)
		g.Concurrency = 1
		g.Run(context.Background(), n, func(_ context.Context, op Op) error {
			mu.Lock()
			ops = append(ops, op)
			mu.Unlock()
			return nil
		})
		return ops
	}
	base := collect(&LoadGen{Seed: 9}, 200)
	same := collect(&LoadGen{Seed: 9, CountShare: 0}, 200)
	for i := range base {
		if base[i].Kind != same[i].Kind || base[i].Query.String() != same[i].Query.String() {
			t.Fatalf("op %d diverges with CountShare=0: %+v vs %+v", i, base[i], same[i])
		}
	}
	counted := collect(&LoadGen{Seed: 9, CountShare: 0.5}, 200)
	var exact, est int
	for _, op := range counted {
		if op.Kind != OpCount {
			if op.Estimate {
				t.Fatalf("Estimate set on %v op", op.Kind)
			}
			continue
		}
		if op.Query == nil || op.DB == nil {
			t.Fatalf("count op missing query or database: %+v", op)
		}
		if op.Estimate {
			est++
		} else {
			exact++
		}
	}
	if exact == 0 || est == 0 {
		t.Fatalf("CountShare=0.5 over 200 ops: %d exact / %d estimated counts", exact, est)
	}
}

// TraceShare marks a fraction of eval/count ops as traced, never
// touches prepare/stream ops, leaves the TraceShare == 0 sequence
// bit-identical, and the Report splits traced from untraced latency.
func TestTraceShareOps(t *testing.T) {
	collect := func(g *LoadGen, n int) []Op {
		var (
			mu  sync.Mutex
			ops []Op
		)
		g.Concurrency = 1
		g.Run(context.Background(), n, func(_ context.Context, op Op) error {
			mu.Lock()
			ops = append(ops, op)
			mu.Unlock()
			return nil
		})
		return ops
	}
	base := collect(&LoadGen{Seed: 9, CountShare: 0.5}, 200)
	same := collect(&LoadGen{Seed: 9, CountShare: 0.5, TraceShare: 0}, 200)
	for i := range base {
		if base[i].Kind != same[i].Kind || base[i].Query.String() != same[i].Query.String() {
			t.Fatalf("op %d diverges with TraceShare=0: %+v vs %+v", i, base[i], same[i])
		}
	}
	traced := collect(&LoadGen{Seed: 9, CountShare: 0.5, TraceShare: 0.5}, 200)
	var on, off int
	for _, op := range traced {
		if op.Trace {
			if op.Kind != OpEval && op.Kind != OpCount {
				t.Fatalf("Trace set on %v op", op.Kind)
			}
			on++
		} else if op.Kind == OpEval || op.Kind == OpCount {
			off++
		}
	}
	if on == 0 || off == 0 {
		t.Fatalf("TraceShare=0.5 over 200 ops: %d traced / %d untraced", on, off)
	}

	// Traced ops sleep well past the scheduler's timer granularity so
	// the mean split is unambiguous.
	g := &LoadGen{Seed: 9, CountShare: 0.5, TraceShare: 0.5, Concurrency: 4}
	rep := g.Run(context.Background(), 200, func(_ context.Context, op Op) error {
		if op.Trace {
			time.Sleep(5 * time.Millisecond)
		}
		return nil
	})
	if rep.TracedOps[OpEval] == 0 || rep.TracedOps[OpEval] == rep.Ops[OpEval] {
		t.Fatalf("traced eval split degenerate: %d of %d", rep.TracedOps[OpEval], rep.Ops[OpEval])
	}
	tr, un := rep.TraceOverhead(OpEval)
	if tr <= un {
		t.Fatalf("traced mean %v not above untraced mean %v despite slower traced executor", tr, un)
	}
	if tr2, _ := rep.TraceOverhead(OpRegisterDB); tr2 != 0 {
		t.Fatalf("trace overhead reported for a kind never traced: %v", tr2)
	}
}

// Run reports per-kind latency quantiles alongside the totals.
func TestReportQuantiles(t *testing.T) {
	g := &LoadGen{Seed: 3, Concurrency: 4, CountShare: 0.3}
	rep := g.Run(context.Background(), 120, func(_ context.Context, op Op) error {
		time.Sleep(100 * time.Microsecond)
		return nil
	})
	if len(rep.FirstErrs) > 0 {
		t.Fatal(rep.FirstErrs)
	}
	for _, k := range []OpKind{OpPrepare, OpEval, OpStream, OpCount} {
		if rep.Ops[k] == 0 {
			t.Fatalf("no %v ops in the mixed run", k)
		}
		if rep.P50[k] <= 0 || rep.P50[k] > rep.P95[k] || rep.P95[k] > rep.P99[k] {
			t.Fatalf("%v quantiles unordered: p50=%v p95=%v p99=%v",
				k, rep.P50[k], rep.P95[k], rep.P99[k])
		}
		if rep.P99[k] > rep.Latency[k] {
			t.Fatalf("%v p99 %v exceeds the kind's total latency %v", k, rep.P99[k], rep.Latency[k])
		}
	}
	if rep.P50[OpRegisterDB] != 0 {
		t.Fatalf("quantiles reported for a kind that never ran: %v", rep.P50[OpRegisterDB])
	}
}
