package workload

import (
	"math/rand"
	"testing"

	"cqapprox/internal/hypergraph"
	"cqapprox/internal/tw"
)

func TestRandomDigraphSize(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	db := RandomDigraph(rng, 50, 200)
	if db.NumFacts() == 0 || db.NumFacts() > 200 {
		t.Fatalf("NumFacts = %d", db.NumFacts())
	}
	if db.DomainSize() > 50 {
		t.Fatalf("domain = %d", db.DomainSize())
	}
}

func TestRandomSocialReciprocity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	db := RandomSocial(rng, 200, 4, 0.5)
	recip, total := 0, 0
	for _, e := range db.Tuples("E") {
		total++
		if db.Has("E", e[1], e[0]) {
			recip++
		}
	}
	if total == 0 {
		t.Fatal("no edges")
	}
	if recip == 0 {
		t.Fatal("no reciprocated edges with reciprocity 0.5")
	}
}

func TestLayeredDAGIsBalancedShaped(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db := LayeredDAG(rng, 4, 5, 2)
	// All edges go from layer l to l+1: check span.
	for _, e := range db.Tuples("E") {
		if e[1]/5 != e[0]/5+1 {
			t.Fatalf("edge %v crosses layers badly", e)
		}
	}
}

func TestCycleQueryShape(t *testing.T) {
	q := CycleQuery(5)
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	if q.NumVars() != 5 || len(q.Atoms) != 5 || !q.IsBoolean() {
		t.Fatalf("C5 = %v", q)
	}
	if tw.StructureTreewidthAtMost(q.Tableau().S, 1) {
		t.Fatal("cycle queries are not treewidth 1")
	}
	if !tw.StructureTreewidthAtMost(q.Tableau().S, 2) {
		t.Fatal("cycle queries are treewidth 2")
	}
}

func TestCycleQueryFree(t *testing.T) {
	q := CycleQueryFree(4)
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(q.Head) != 1 {
		t.Fatalf("head = %v", q.Head)
	}
}

func TestChordedCycleTreewidth(t *testing.T) {
	q := ChordedCycleQuery(6)
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	if w := tw.StructureTreewidth(q.Tableau().S); w != 2 {
		t.Fatalf("tw = %d, want 2", w)
	}
}

func TestTernaryCycleQuery(t *testing.T) {
	q := TernaryCycleQuery(3)
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	if hypergraph.AcyclicStructure(q.Tableau().S) {
		t.Fatal("ternary cycle should be cyclic")
	}
	if q.NumVars() != 6 {
		t.Fatalf("vars = %d, want 6", q.NumVars())
	}
}

func TestGridQuery(t *testing.T) {
	q := GridQuery(2, 3)
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	if w := tw.StructureTreewidth(q.Tableau().S); w != 2 {
		t.Fatalf("tw(2x3 grid) = %d, want 2", w)
	}
}

func TestRandomGraphQueryValid(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 50; i++ {
		q := RandomGraphQuery(rng, 4, 5)
		if err := q.Validate(); err != nil {
			t.Fatalf("invalid random query %v: %v", q, err)
		}
	}
}

func TestQuerySuiteValid(t *testing.T) {
	for _, q := range QuerySuite() {
		if err := q.Validate(); err != nil {
			t.Fatalf("%v: %v", q, err)
		}
		if q.NumVars() > 10 {
			t.Fatalf("%v exceeds the approximation engine's default MaxVars", q)
		}
	}
}
