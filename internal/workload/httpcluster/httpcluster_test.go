package httpcluster

import (
	"context"
	"math/rand"
	"net/http/httptest"
	"reflect"
	"testing"

	"cqapprox"
	"cqapprox/api"
	"cqapprox/client"
	"cqapprox/internal/server"
	"cqapprox/internal/workload"
	"cqapprox/internal/workload/httpdrive"
)

// TestClusterSmoke is the CI multi-node smoke: three in-process nodes,
// a sharded registration (the fact relation partitioned, the
// dimensions replicated), scatter-gather answers and counts
// byte-identical to a single-node control, and the coordinator's
// /v1/stats cluster block accounting for it all.
func TestClusterSmoke(t *testing.T) {
	db := workload.ClusterBenchDB(60)
	threshold := len(db.Tuples("R1")) + len(db.Tuples("R2")) + 1
	if threshold >= len(db.Tuples("E")) {
		t.Fatalf("bench DB shape broken: E (%d facts) not above dimensions (%d)",
			len(db.Tuples("E")), threshold-1)
	}

	// The partition threshold sits between the dimension and fact
	// sizes, so E partitions and R1/R2 replicate.
	base := server.Config{}
	base.Cluster.ReplicateBelow = threshold
	cl := Start(3, base)
	defer cl.Close()
	clients := cl.Clients()
	ctx := context.Background()

	// Single-node control for byte-identity.
	eng := cqapprox.NewEngine()
	control := httptest.NewServer(server.New(eng, server.Config{}).Handler())
	defer control.Close()
	cc := client.New(control.URL)

	wire := api.RegisterDBRequest{Name: "social", Database: httpdrive.WireDB(db)}
	if _, err := clients[0].RegisterDB(ctx, wire); err != nil {
		t.Fatalf("cluster register: %v", err)
	}
	if _, err := cc.RegisterDB(ctx, wire); err != nil {
		t.Fatalf("control register: %v", err)
	}

	for _, q := range workload.ClusterQuerySuite() {
		req := api.EvalRequest{Query: q.String(), Class: "TW1", DB: "social"}
		got, err := clients[0].Eval(ctx, req)
		if err != nil {
			t.Fatalf("%s: cluster eval: %v", q.Name, err)
		}
		want, err := cc.Eval(ctx, req)
		if err != nil {
			t.Fatalf("%s: control eval: %v", q.Name, err)
		}
		if !reflect.DeepEqual(got.Answers, want.Answers) {
			t.Fatalf("%s: scatter answers diverge from single-node:\n  cluster %v\n  single  %v",
				q.Name, got.Answers, want.Answers)
		}
	}

	countReq := api.CountRequest{EvalRequest: api.EvalRequest{
		Query: workload.ClusterQuerySuite()[0].String(), Class: "TW1", DB: "social",
	}}
	got, err := clients[0].Count(ctx, countReq)
	if err != nil {
		t.Fatalf("cluster count: %v", err)
	}
	want, err := cc.Count(ctx, countReq)
	if err != nil {
		t.Fatalf("control count: %v", err)
	}
	if got.Count != want.Count {
		t.Fatalf("summed count %d, single-node %d", got.Count, want.Count)
	}

	stats := cl.Servers[0].Stats()
	cs := stats.Cluster
	if cs == nil {
		t.Fatal("coordinator stats carry no cluster block")
	}
	if cs.ShardedDBs != 1 || cs.PartitionedRelations != 1 || cs.ReplicatedRelations != 2 {
		t.Fatalf("placement counters off: %+v", cs)
	}
	if cs.ScatterEvals < 4 {
		t.Fatalf("expected >= 4 scatter-gather evaluations, got %d", cs.ScatterEvals)
	}
	if cs.PeerErrors != 0 {
		t.Fatalf("peer errors on a healthy cluster: %d", cs.PeerErrors)
	}
	for i := 1; i < 3; i++ {
		ps := cl.Servers[i].Stats().Cluster
		if ps == nil || ps.PeerEvals == 0 || ps.PeerDBPushes == 0 {
			t.Fatalf("node %d served no peer traffic: %+v", i, ps)
		}
	}
}

// TestClusterExecutorRouting pins the routing rule: registered-database
// ops always hit node 0, stateless ops follow Op.Node.
func TestClusterExecutorRouting(t *testing.T) {
	base := server.Config{}
	base.Cluster.ReplicateBelow = 8
	cl := Start(2, base)
	defer cl.Close()
	exec := httpdrive.ClusterExecutor(cl.Clients())
	ctx := context.Background()

	db := workload.RandomDigraph(rand.New(rand.NewSource(1)), 20, 30)
	if err := exec(ctx, workload.Op{Kind: workload.OpRegisterDB, DB: db, DBName: "d", Node: 1}); err != nil {
		t.Fatalf("register via executor: %v", err)
	}
	q := workload.ClusterQuerySuite()[2]
	if err := exec(ctx, workload.Op{Kind: workload.OpEval, Query: q, Class: "TW1", DB: db, DBName: "d", Node: 1}); err != nil {
		t.Fatalf("by-name eval via executor: %v", err)
	}
	// Inline eval on node 1: never touches node 0's registry.
	if err := exec(ctx, workload.Op{Kind: workload.OpEval, Query: q, Class: "TW1", DB: db, Node: 1}); err != nil {
		t.Fatalf("inline eval via executor: %v", err)
	}
	if reqs := cl.Servers[1].Stats().Endpoints["/v1/eval"].Requests; reqs != 1 {
		t.Fatalf("node 1 served %d evals, want exactly the inline one", reqs)
	}
}
