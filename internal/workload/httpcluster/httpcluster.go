// Package httpcluster starts in-process cqapproxd clusters for tests,
// benchmarks and experiments: n engines behind n httptest listeners,
// each node configured with the full peer list so databases registered
// on any node shard across all of them. It lives apart from httpdrive
// because it imports internal/server — whose own tests drive traffic
// through httpdrive, so the harness living there would be an import
// cycle.
package httpcluster

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"

	"cqapprox"
	"cqapprox/client"
	"cqapprox/internal/cluster"
	"cqapprox/internal/server"
)

// Cluster is an in-process cqapproxd cluster; see Start.
type Cluster struct {
	URLs    []string
	Servers []*server.Server
	Engines []*cqapprox.Engine
	ts      []*httptest.Server
}

// Start starts n nodes wired as one cluster. Each node gets a fresh
// engine and a copy of base with the Cluster membership filled in
// (base's own Peers/Self are ignored; its ReplicateBelow is kept — set
// it to control what partitions). The listeners come up before any
// server exists, so the peer URLs are known at construction: requests
// arriving in that window get a 503, exactly like a peer still
// booting. n == 1 is a valid degenerate cluster — clustering disabled,
// byte-identical to a plain single node — which is what makes it the
// control arm of the scaling experiments.
func Start(n int, base server.Config) *Cluster {
	c := &Cluster{}
	handlers := make([]*atomic.Pointer[http.Handler], n)
	for i := 0; i < n; i++ {
		p := new(atomic.Pointer[http.Handler])
		handlers[i] = p
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if h := p.Load(); h != nil {
				(*h).ServeHTTP(w, r)
				return
			}
			http.Error(w, "node starting", http.StatusServiceUnavailable)
		}))
		c.ts = append(c.ts, ts)
		c.URLs = append(c.URLs, ts.URL)
	}
	for i := 0; i < n; i++ {
		cfg := base
		cfg.Cluster = cluster.Config{
			Peers:          c.URLs,
			Self:           i,
			ReplicateBelow: base.Cluster.ReplicateBelow,
		}
		if n == 1 {
			cfg.Cluster = cluster.Config{}
		}
		eng := cqapprox.NewEngine()
		srv := server.New(eng, cfg)
		h := http.Handler(srv.Handler())
		handlers[i].Store(&h)
		c.Engines = append(c.Engines, eng)
		c.Servers = append(c.Servers, srv)
	}
	return c
}

// Clients returns one typed client per node, index-aligned with URLs.
func (c *Cluster) Clients() []*client.Client {
	out := make([]*client.Client, len(c.URLs))
	for i, u := range c.URLs {
		out[i] = client.New(u)
	}
	return out
}

// Close drains every node and shuts the listeners down.
func (c *Cluster) Close() {
	for _, s := range c.Servers {
		s.Drain()
	}
	for _, ts := range c.ts {
		ts.Close()
	}
}
