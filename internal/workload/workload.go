// Package workload generates the synthetic databases and query families
// used by the benchmark harness and the examples. The paper is a theory
// paper; these generators stand in for the "very large databases" its
// introduction motivates (see DESIGN.md §5), exercising the same code
// paths: evaluation engines and approximation computation.
package workload

import (
	"fmt"
	"math/rand"

	"cqapprox/internal/cq"
	"cqapprox/internal/relstr"
)

// RandomDigraph returns a uniform random digraph database with n nodes
// and m edges (duplicates collapse, loops allowed).
func RandomDigraph(rng *rand.Rand, n, m int) *relstr.Structure {
	db := relstr.New()
	db.Declare("E", 2)
	for i := 0; i < m; i++ {
		db.Add("E", rng.Intn(n), rng.Intn(n))
	}
	return db
}

// RandomSocial returns a digraph shaped like a follower graph: average
// out-degree avgDeg with preferential attachment, and a fraction
// reciprocity of edges reciprocated (reciprocated edges are what the
// 2-cycle approximations of unbalanced cyclic queries match).
func RandomSocial(rng *rand.Rand, n, avgDeg int, reciprocity float64) *relstr.Structure {
	db := relstr.New()
	db.Declare("E", 2)
	targets := make([]int, 0, n*avgDeg)
	for v := 0; v < n; v++ {
		targets = append(targets, v) // every node appears at least once
	}
	for v := 0; v < n; v++ {
		for d := 0; d < avgDeg; d++ {
			var w int
			if rng.Float64() < 0.5 || len(targets) == 0 {
				w = rng.Intn(n)
			} else {
				w = targets[rng.Intn(len(targets))] // preferential attachment
			}
			if w == v {
				continue
			}
			db.Add("E", v, w)
			targets = append(targets, w)
			if rng.Float64() < reciprocity {
				db.Add("E", w, v)
			}
		}
	}
	return db
}

// LayeredDAG returns a balanced digraph database: `layers` layers of
// `width` nodes, with edges only from layer i to layer i+1 (so every
// oriented cycle is balanced, and level-based reasoning applies).
func LayeredDAG(rng *rand.Rand, layers, width, edgesPerNode int) *relstr.Structure {
	db := relstr.New()
	db.Declare("E", 2)
	at := func(l, i int) int { return l*width + i }
	for l := 0; l+1 < layers; l++ {
		for i := 0; i < width; i++ {
			for e := 0; e < edgesPerNode; e++ {
				db.Add("E", at(l, i), at(l+1, rng.Intn(width)))
			}
		}
	}
	return db
}

// RandomTernary returns a random database over one ternary relation R.
func RandomTernary(rng *rand.Rand, n, m int) *relstr.Structure {
	db := relstr.New()
	db.Declare("R", 3)
	for i := 0; i < m; i++ {
		db.Add("R", rng.Intn(n), rng.Intn(n), rng.Intn(n))
	}
	return db
}

// CycleQuery returns the Boolean directed n-cycle query
// Q() :- E(x0,x1), …, E(x_{n-1},x0).
func CycleQuery(n int) *cq.Query {
	q := &cq.Query{Name: fmt.Sprintf("C%d", n)}
	v := func(i int) string { return fmt.Sprintf("x%d", i%n) }
	for i := 0; i < n; i++ {
		q.Atoms = append(q.Atoms, cq.Atom{Rel: "E", Args: []string{v(i), v(i + 1)}})
	}
	return q
}

// CycleQueryFree returns the n-cycle query with the first variable
// free: Q(x0) :- E(x0,x1), …, E(x_{n-1},x0).
func CycleQueryFree(n int) *cq.Query {
	q := CycleQuery(n)
	q.Name = fmt.Sprintf("C%d(x)", n)
	q.Head = []string{"x0"}
	return q
}

// ChordedCycleQuery returns the n-cycle with a chord from x0 to x_{n/2}
// (treewidth 2, denser than the plain cycle).
func ChordedCycleQuery(n int) *cq.Query {
	q := CycleQuery(n)
	q.Name = fmt.Sprintf("C%d+chord", n)
	q.Atoms = append(q.Atoms, cq.Atom{
		Rel:  "E",
		Args: []string{"x0", fmt.Sprintf("x%d", n/2)},
	})
	return q
}

// ChainQuery returns the n-edge path query with the first endpoint
// free: Q(x0) :- E(x0,x1), …, E(x_{n-1},x_n). Acyclic; the canonical
// workload of the E19 indexed-runtime benchmarks (a single free
// variable keeps the output linear so the benchmarks measure join
// work, not result materialisation).
func ChainQuery(n int) *cq.Query {
	q := &cq.Query{Name: fmt.Sprintf("Chain%d", n)}
	v := func(i int) string { return fmt.Sprintf("x%d", i) }
	for i := 0; i < n; i++ {
		q.Atoms = append(q.Atoms, cq.Atom{Rel: "E", Args: []string{v(i), v(i + 1)}})
	}
	q.Head = []string{v(0)}
	return q
}

// StarQuery returns the k-leaf star query with the center free:
// Q(c) :- R1(c,l1), …, Rk(c,lk). Acyclic, with every atom joined on
// the same variable — the high-fan-in shape of the join index. The
// leaves use distinct relation symbols so the query is its own core
// (a star over one symbol would minimize to a single atom).
func StarQuery(k int) *cq.Query {
	q := &cq.Query{Name: fmt.Sprintf("Star%d", k), Head: []string{"c"}}
	for i := 1; i <= k; i++ {
		q.Atoms = append(q.Atoms, cq.Atom{
			Rel:  fmt.Sprintf("R%d", i),
			Args: []string{"c", fmt.Sprintf("l%d", i)},
		})
	}
	return q
}

// TernaryCycleQuery returns the Example 6.6 family generalised to n
// atoms: Q() :- R(x0,y0,x1), R(x1,y1,x2), …, R(x_{n-1},y_{n-1},x0).
func TernaryCycleQuery(n int) *cq.Query {
	q := &cq.Query{Name: fmt.Sprintf("T%d", n)}
	x := func(i int) string { return fmt.Sprintf("x%d", i%n) }
	y := func(i int) string { return fmt.Sprintf("y%d", i) }
	for i := 0; i < n; i++ {
		q.Atoms = append(q.Atoms, cq.Atom{Rel: "R", Args: []string{x(i), y(i), x(i + 1)}})
	}
	return q
}

// GridQuery returns the r×c grid query over E (treewidth min(r,c)).
func GridQuery(r, c int) *cq.Query {
	q := &cq.Query{Name: fmt.Sprintf("Grid%dx%d", r, c)}
	v := func(i, j int) string { return fmt.Sprintf("g%d_%d", i, j) }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if j+1 < c {
				q.Atoms = append(q.Atoms, cq.Atom{Rel: "E", Args: []string{v(i, j), v(i, j+1)}})
			}
			if i+1 < r {
				q.Atoms = append(q.Atoms, cq.Atom{Rel: "E", Args: []string{v(i, j), v(i+1, j)}})
			}
		}
	}
	return q
}

// RandomGraphQuery returns a random Boolean query over E with the given
// number of variables and atoms (connected-ish: each atom after the
// first reuses an existing variable).
func RandomGraphQuery(rng *rand.Rand, vars, atoms int) *cq.Query {
	q := &cq.Query{Name: "R"}
	names := make([]string, vars)
	for i := range names {
		names[i] = fmt.Sprintf("v%d", i)
	}
	used := []string{names[0]}
	pick := func() string {
		if len(used) == 0 || rng.Intn(2) == 0 {
			v := names[rng.Intn(vars)]
			used = append(used, v)
			return v
		}
		return used[rng.Intn(len(used))]
	}
	for i := 0; i < atoms; i++ {
		q.Atoms = append(q.Atoms, cq.Atom{Rel: "E", Args: []string{pick(), pick()}})
	}
	return q
}

// EvalBenchCase is one workload of the E19 indexed-runtime benchmark
// suite: a query (prepared exactly, or approximated into TW(1) when
// Exact is false) evaluated warm over databases of the given sizes.
type EvalBenchCase struct {
	Name  string
	Query *cq.Query
	Exact bool
	Sizes []int
}

// EvalBenchSuite returns the E19 workloads. The names and sizes are
// load-bearing: BenchmarkIndexedJoin sub-benchmark names derive from
// them, and the committed BENCH_eval.json baseline (the CI regression
// gate) is keyed by those names.
func EvalBenchSuite() []EvalBenchCase {
	sizes := []int{300, 1000, 3000}
	// The chain runs Boolean: with an interior variable free the answer
	// pair sets grow quadratically in |D| and the benchmark would
	// measure output materialisation instead of join work.
	chain := ChainQuery(6)
	chain.Head = nil
	return []EvalBenchCase{
		{Name: "chain6", Query: chain, Exact: true, Sizes: sizes},
		{Name: "star5", Query: StarQuery(5), Exact: true, Sizes: sizes},
		{Name: "cycle4", Query: CycleQueryFree(4), Exact: false, Sizes: sizes},
	}
}

// FullChainQuery returns the n-edge path query with every variable
// free: Q(x0,…,xn) :- E(x0,x1), …, E(x_{n-1},x_n). The answer set is
// the full join — the output regime where counting via the
// multiplicity DP wins by the answer count itself, since evaluation
// must materialize every tuple and counting materializes none.
func FullChainQuery(n int) *cq.Query {
	q := ChainQuery(n)
	q.Name = fmt.Sprintf("FullChain%d", n)
	q.Head = q.Head[:0]
	for i := 0; i <= n; i++ {
		q.Head = append(q.Head, fmt.Sprintf("x%d", i))
	}
	return q
}

// FullStarQuery returns the k-leaf star query with the center and all
// leaves free — the full join of the star (see FullChainQuery).
func FullStarQuery(k int) *cq.Query {
	q := StarQuery(k)
	q.Name = fmt.Sprintf("FullStar%d", k)
	for i := 1; i <= k; i++ {
		q.Head = append(q.Head, fmt.Sprintf("l%d", i))
	}
	return q
}

// CountBenchSuite returns the E22 counting workloads: full-join heads
// (where exact counting avoids materializing hundreds of thousands of
// answers) plus the free cycle (counting through its TW(1)
// approximation). Shares EvalBenchDB and the E19 sizes; the names key
// the BenchmarkCount entries in BENCH_eval.json like EvalBenchSuite's
// key BenchmarkIndexedJoin.
func CountBenchSuite() []EvalBenchCase {
	sizes := []int{300, 1000, 3000}
	return []EvalBenchCase{
		{Name: "chain3-full", Query: FullChainQuery(3), Exact: true, Sizes: sizes},
		{Name: "star5-full", Query: FullStarQuery(5), Exact: true, Sizes: sizes},
		{Name: "cycle4-free", Query: CycleQueryFree(4), Exact: false, Sizes: sizes},
	}
}

// EvalBenchDB returns the deterministic database the E19 benchmarks
// evaluate against at size n: a social graph under E (chain/cycle
// workloads) plus five follower graphs R1…R5 over the same nodes (the
// star workload's distinct leaf relations).
func EvalBenchDB(n int) *relstr.Structure {
	db := RandomSocial(rand.New(rand.NewSource(42)), n, 6, 0.3)
	for i := 1; i <= 5; i++ {
		ri := RandomSocial(rand.New(rand.NewSource(int64(42+i))), n, 3, 0.3)
		name := fmt.Sprintf("R%d", i)
		db.Declare(name, 2)
		for _, t := range ri.Tuples("E") {
			db.Add(name, t...)
		}
	}
	return db
}

// ClusterQuerySuite returns the fact-and-dimension queries shaped for
// the sharded cluster: each query references the (large, partitioned)
// fact relation E exactly once, with the small dimension relations
// R1/R2 replicated to every shard — so a cluster coordinator scatters
// instead of falling back to its full copy. The first query's head
// covers both arguments of its E atom, so per-shard exact counts sum.
func ClusterQuerySuite() []*cq.Query {
	return []*cq.Query{
		cq.MustParse("Qfact(x,y) :- E(x,y), R1(x,u), R2(y,v)"),
		cq.MustParse("Qout(x) :- E(x,y), R1(y,u)"),
		cq.MustParse("Qedge(x,y) :- E(x,y)"),
	}
}

// ClusterBenchDB returns the deterministic database the cluster
// benchmarks shard at size n: a social graph under E (the fact
// relation, ~6n+ edges — large enough to tuple-partition) plus two
// sparse follower graphs R1/R2 over a quarter of the nodes (the
// dimensions, small enough to replicate below any threshold between
// their size and E's).
func ClusterBenchDB(n int) *relstr.Structure {
	db := RandomSocial(rand.New(rand.NewSource(99)), n, 6, 0.3)
	for i := 1; i <= 2; i++ {
		ri := RandomSocial(rand.New(rand.NewSource(int64(99+i))), max(2, n/4), 2, 0.2)
		name := fmt.Sprintf("R%d", i)
		db.Declare(name, 2)
		for _, t := range ri.Tuples("E") {
			db.Add(name, t...)
		}
	}
	return db
}

// QuerySuite returns the named query suite used by the Figure 1
// experiment: a spread of cyclic queries over graphs and ternary
// relations.
func QuerySuite() []*cq.Query {
	return []*cq.Query{
		CycleQuery(3),
		CycleQuery(4),
		CycleQuery(5),
		CycleQueryFree(4),
		ChordedCycleQuery(4),
		ChordedCycleQuery(6),
		TernaryCycleQuery(3),
		GridQuery(2, 3),
	}
}
