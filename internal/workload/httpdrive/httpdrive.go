// Package httpdrive adapts workload.LoadGen operations to cqapproxd
// HTTP requests through the typed client. It is the one executor the
// server's concurrency tests and the E18 throughput benchmark share —
// it lives beside workload rather than in it because the root
// package's in-package tests import workload, and workload itself
// pulling in client/api (which import cqapprox) would be a test
// import cycle.
package httpdrive

import (
	"context"

	"cqapprox/api"
	"cqapprox/client"
	"cqapprox/internal/relstr"
	"cqapprox/internal/workload"
)

// WireDB converts a structure to its wire form.
func WireDB(s *relstr.Structure) api.Database {
	db := api.Database{}
	for _, rel := range s.Relations() {
		tuples := s.Tuples(rel)
		out := make([][]int, len(tuples))
		for i, t := range tuples {
			out[i] = []int(t)
		}
		db[rel] = out
	}
	return db
}

// WireDelta converts a change set to its wire form.
func WireDelta(d *relstr.Delta) *api.DeltaChange {
	dc := &api.DeltaChange{Insert: api.Database{}, Delete: api.Database{}}
	for _, rel := range d.Touched() {
		for _, t := range d.Inserts(rel) {
			dc.Insert[rel] = append(dc.Insert[rel], []int(t))
		}
		for _, t := range d.Deletes(rel) {
			dc.Delete[rel] = append(dc.Delete[rel], []int(t))
		}
	}
	return dc
}

// Executor returns a LoadGen executor that performs each op as the
// corresponding HTTP request via c, draining streams completely.
// Ops carrying a DBName evaluate by registered name (the database is
// not re-shipped); OpRegisterDB ops become POST /v1/db and OpCount
// ops POST /v1/count (estimating when the op says so). Ops with Trace
// set request — and therefore pay for — the execution trace block in
// the response. OpUpdateDB ops apply their delta via POST /v1/db;
// OpSubscribe ops open /v1/subscribe, consume the init frame, and
// disconnect — the short-lived watcher shape.
func Executor(c *client.Client) func(ctx context.Context, op workload.Op) error {
	return func(ctx context.Context, op workload.Op) error {
		evalReq := func() api.EvalRequest {
			req := api.EvalRequest{Query: op.Query.String(), Class: op.Class, Parallelism: op.Parallelism, Trace: op.Trace, Order: op.Order, Limit: op.Limit}
			if op.DBName != "" {
				req.DB = op.DBName
			} else {
				req.Database = WireDB(op.DB)
			}
			return req
		}
		switch op.Kind {
		case workload.OpPrepare:
			_, err := c.Prepare(ctx, api.PrepareRequest{Query: op.Query.String(), Class: op.Class})
			return err
		case workload.OpRegisterDB:
			_, err := c.RegisterDB(ctx, api.RegisterDBRequest{Name: op.DBName, Database: WireDB(op.DB)})
			return err
		case workload.OpEval:
			_, err := c.Eval(ctx, evalReq())
			return err
		case workload.OpCount:
			_, err := c.Count(ctx, api.CountRequest{EvalRequest: evalReq(), Estimate: op.Estimate})
			return err
		case workload.OpUpdateDB:
			_, err := c.RegisterDB(ctx, api.RegisterDBRequest{Name: op.DBName, Delta: WireDelta(op.Delta)})
			return err
		case workload.OpSubscribe:
			seq, errf := c.Subscribe(ctx, api.SubscribeRequest{
				Query: op.Query.String(), Class: op.Class, DB: op.DBName,
			})
			for range seq {
				break // the init frame is the subscription's success signal
			}
			return errf()
		default: // OpStream
			seq, errf := c.Stream(ctx, evalReq())
			for range seq {
			}
			return errf()
		}
	}
}
