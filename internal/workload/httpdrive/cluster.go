package httpdrive

import (
	"context"

	"cqapprox/client"
	"cqapprox/internal/workload"
)

// ClusterExecutor returns a LoadGen executor over a cluster's nodes:
// stateless ops (inline databases, prepares) go to the node Op.Node
// names, while every op touching a registered database — registration
// itself, by-name eval/count/stream, deltas, subscriptions — goes to
// node 0. Registration is coordinator-local (only the registering node
// holds the placement and the full copy; peers hold shard slices under
// internal names), so node 0 is the coordinator for the whole pool and
// fans eligible requests out from there.
func ClusterExecutor(clients []*client.Client) func(ctx context.Context, op workload.Op) error {
	execs := make([]func(ctx context.Context, op workload.Op) error, len(clients))
	for i, c := range clients {
		execs[i] = Executor(c)
	}
	return func(ctx context.Context, op workload.Op) error {
		node := op.Node % len(execs)
		if op.DBName != "" {
			node = 0
		}
		return execs[node](ctx, op)
	}
}
