package workload

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"cqapprox/internal/cq"
	"cqapprox/internal/relstr"
)

// OpKind is the request type of one generated operation.
type OpKind int

const (
	OpPrepare OpKind = iota
	OpEval
	OpStream
	OpRegisterDB
	OpCount
	OpUpdateDB
	OpSubscribe
	numOpKinds
)

func (k OpKind) String() string {
	switch k {
	case OpPrepare:
		return "prepare"
	case OpEval:
		return "eval"
	case OpStream:
		return "stream"
	case OpRegisterDB:
		return "register_db"
	case OpCount:
		return "count"
	case OpUpdateDB:
		return "update_db"
	case OpSubscribe:
		return "subscribe"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Op is one operation of a mixed workload: a query (with its target
// class) and, for evaluations, a database. DBName names a database the
// generator registered up front (see LoadGen.RegisteredShare): an
// executor should evaluate by that name instead of shipping DB — DB
// stays populated so engine-direct executors can resolve it however
// they like. For OpRegisterDB (emitted once per pool database before
// the mixed traffic), both fields are set and Query is nil.
type Op struct {
	Kind   OpKind
	Query  *cq.Query
	Class  string // class name, e.g. "TW1" (empty = exact)
	DB     *relstr.Structure
	DBName string
	// Parallelism is the evaluation worker budget the op requests
	// (0 = serial); executors pass it through as
	// api.EvalRequest.Parallelism.
	Parallelism int
	// Estimate, on an OpCount, asks for the sampling estimator instead
	// of the exact count (api.CountRequest.Estimate).
	Estimate bool
	// Trace, on an OpEval or OpCount, requests an execution trace with
	// the result (api.EvalRequest.Trace) — the sampled ANALYZE traffic
	// LoadGen.TraceShare generates.
	Trace bool
	// Order and Limit, on an OpEval or OpStream, request ranked top-k
	// answers (api.EvalRequest.Order/Limit) — the traffic
	// LoadGen.RankedShare generates.
	Order []string
	Limit int
	// Delta, on an OpUpdateDB, is the change set to apply to the
	// registered database DBName (api.RegisterDBRequest.Delta) — the
	// traffic LoadGen.UpdateShare generates.
	Delta *relstr.Delta
	// Node is the cluster node index this op targets (always 0 unless
	// LoadGen.ClusterNodes spreads the traffic) — multi-node executors
	// route by it, single-node executors ignore it.
	Node int
}

// LoadGen generates mixed prepare/eval/stream traffic over a fixed
// query suite and database pool. It is transport-agnostic: Run feeds
// the generated ops to a caller-supplied executor, which the server
// benchmarks wire to the HTTP client — so the same generator can also
// drive an Engine directly. The executed op multiset is a pure
// function of (Seed, n); only the interleaving across workers is
// scheduling-dependent.
type LoadGen struct {
	// Seed fixes the op sequence. The zero seed is a valid fixed seed.
	Seed int64

	// PrepareWeight : EvalWeight : StreamWeight is the traffic mix.
	// All zero means 1:8:1 — a warm-cache, evaluation-heavy service.
	PrepareWeight, EvalWeight, StreamWeight int

	// Queries is the query pool; empty means QuerySuite(). Classes
	// assigns each query's class name, cycling if shorter; empty means
	// all "TW1".
	Queries []*cq.Query
	Classes []string

	// Databases is the database pool; empty means three small random
	// digraphs (request-sized, the regime the service targets).
	Databases []*relstr.Structure

	// RegisteredShare is the fraction (0..1) of eval/stream ops that
	// reference a pool database by its registered name ("db0", "db1",
	// …) instead of carrying it inline — the register-once traffic
	// shape. When positive, Run first emits one OpRegisterDB per pool
	// database (sequentially, before the workers start, so by-name ops
	// never race their registration). Zero keeps the op sequence
	// bit-identical to pre-registry generators.
	RegisteredShare float64

	// ParallelShare is the fraction (0..1) of eval/stream ops that
	// request a parallel evaluation worker budget of Parallelism —
	// traffic exercising the server's morsel-driven parallel path.
	// Zero keeps every op serial (and the op sequence bit-identical to
	// pre-parallelism generators).
	ParallelShare float64

	// Parallelism is the worker budget parallel ops request
	// (default 4 when ParallelShare is positive).
	Parallelism int

	// CountShare is the fraction (0..1) of eval ops that become count
	// requests instead — traffic exercising the server's /v1/count
	// path. Half of the generated counts (by a further seeded draw) ask
	// for the sampling estimator. Zero keeps the op sequence
	// bit-identical to pre-counting generators.
	CountShare float64

	// TraceShare is the fraction (0..1) of eval and count ops that
	// request an execution trace with the result — sampled ANALYZE
	// traffic, the shape a deployment tracing (say) 1% of requests
	// sends. The Report splits traced from untraced latency so the
	// trace overhead is measurable. Zero keeps the op sequence
	// bit-identical to pre-tracing generators.
	TraceShare float64

	// RankedShare is the fraction (0..1) of non-Boolean eval and stream
	// ops that request ranked top-k answers: a seeded head-suffix order
	// (reversed, deduplicated) plus a small limit — traffic exercising
	// the server's ranked enumeration and its fallback. Zero keeps the
	// op sequence bit-identical to pre-ranking generators.
	RankedShare float64

	// UpdateShare is the fraction (0..1) of by-name eval ops that become
	// delta updates of their registered database instead (a seeded
	// insert or delete of one fact) — the write traffic that drives
	// incremental maintenance and subscription notifications. Requires
	// RegisteredShare > 0 to have any effect. Zero keeps the op sequence
	// bit-identical to pre-subscription generators.
	UpdateShare float64

	// SubscribeShare is the fraction (0..1) of by-name unranked stream
	// ops that become short-lived subscriptions instead: open
	// /v1/subscribe, consume the init frame, disconnect. Requires
	// RegisteredShare > 0 to have any effect. Zero keeps the op sequence
	// bit-identical to pre-subscription generators.
	SubscribeShare float64

	// ClusterNodes spreads the generated traffic over an n-node
	// cluster: each op draws a target index Op.Node in [0, n). Zero or
	// one keeps every op on node 0 (and the op sequence bit-identical
	// to single-node generators).
	ClusterNodes int

	// PeerAddrs optionally lists the cluster nodes' base URLs,
	// index-aligned with Op.Node. The generator itself never reads it;
	// it rides along so a harness can build its per-node clients from
	// the same config that shaped the traffic.
	PeerAddrs []string

	// Concurrency is the number of worker goroutines Run uses
	// (default 8).
	Concurrency int
}

// Report aggregates one Run: per-kind op counts, latency totals and
// quantiles, failures, and wall-clock.
type Report struct {
	Ops      [numOpKinds]int64         // completed ops per kind
	Failures [numOpKinds]int64         // ops whose executor returned an error
	Latency  [numOpKinds]time.Duration // cumulative executor latency per kind
	// P50/P95/P99 are per-op latency quantiles per kind (zero where no
	// ops of the kind ran).
	P50, P95, P99 [numOpKinds]time.Duration
	// TracedOps/TracedLatency split out the ops that ran with Trace set
	// (also included in Ops/Latency) so TraceOverhead can compare the
	// two populations.
	TracedOps     [numOpKinds]int64
	TracedLatency [numOpKinds]time.Duration
	Elapsed       time.Duration // wall-clock of the whole Run
	FirstErrs     []error       // one representative error per kind (nil-free)
}

// Total returns the number of completed ops of all kinds.
func (r *Report) Total() int64 {
	var n int64
	for _, c := range r.Ops {
		n += c
	}
	return n
}

// PerSecond returns the overall completed-op throughput.
func (r *Report) PerSecond() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Total()) / r.Elapsed.Seconds()
}

// KindPerSecond returns the completed-op throughput of one kind.
func (r *Report) KindPerSecond(k OpKind) float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops[k]) / r.Elapsed.Seconds()
}

// TraceOverhead compares the mean latency of kind k's traced ops
// against its untraced ones — the cost of carrying the execution
// trace, as observed under the generated mix. Either mean is zero when
// its population is empty (TraceShare 0 or 1, or no ops of the kind).
func (r *Report) TraceOverhead(k OpKind) (traced, untraced time.Duration) {
	if n := r.TracedOps[k]; n > 0 {
		traced = r.TracedLatency[k] / time.Duration(n)
	}
	if n := r.Ops[k] - r.TracedOps[k]; n > 0 {
		untraced = (r.Latency[k] - r.TracedLatency[k]) / time.Duration(n)
	}
	return traced, untraced
}

func (g *LoadGen) withDefaults() LoadGen {
	c := *g
	if c.PrepareWeight == 0 && c.EvalWeight == 0 && c.StreamWeight == 0 {
		c.PrepareWeight, c.EvalWeight, c.StreamWeight = 1, 8, 1
	}
	if len(c.Queries) == 0 {
		c.Queries = QuerySuite()
	}
	// Ops travel as rule-notation strings (Query.String must re-parse),
	// so display-only names like "C4(x)" are reduced to identifiers.
	// Fresh slice: the caller's queries are never mutated.
	queries := make([]*cq.Query, len(c.Queries))
	for i, q := range c.Queries {
		if clean := identifier(q.Name); clean != q.Name {
			q = q.Clone()
			q.Name = clean
		}
		queries[i] = q
	}
	c.Queries = queries
	if len(c.Classes) == 0 {
		c.Classes = []string{"TW1"}
	}
	if len(c.Databases) == 0 {
		rng := rand.New(rand.NewSource(c.Seed + 1))
		c.Databases = []*relstr.Structure{
			RandomDigraph(rng, 20, 60),
			RandomSocial(rng, 30, 3, 0.3),
			LayeredDAG(rng, 4, 5, 2),
		}
	}
	if c.ParallelShare > 0 && c.Parallelism <= 0 {
		c.Parallelism = 4
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
	return c
}

// identifier strips everything but letters, digits and underscores;
// an empty result falls back to "Q".
func identifier(name string) string {
	var b []byte
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c == '_' || '0' <= c && c <= '9' || 'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' {
			b = append(b, c)
		}
	}
	if len(b) == 0 {
		return "Q"
	}
	return string(b)
}

// op deterministically generates the i-th operation from rng.
func (g *LoadGen) op(rng *rand.Rand) Op {
	total := g.PrepareWeight + g.EvalWeight + g.StreamWeight
	roll := rng.Intn(total)
	var kind OpKind
	switch {
	case roll < g.PrepareWeight:
		kind = OpPrepare
	case roll < g.PrepareWeight+g.EvalWeight:
		kind = OpEval
	default:
		kind = OpStream
	}
	qi := rng.Intn(len(g.Queries))
	op := Op{
		Kind:  kind,
		Query: g.Queries[qi],
		Class: g.Classes[qi%len(g.Classes)],
	}
	if kind != OpPrepare {
		di := rng.Intn(len(g.Databases))
		op.DB = g.Databases[di]
		if g.RegisteredShare > 0 && rng.Float64() < g.RegisteredShare {
			op.DBName = dbName(di)
		}
		if g.ParallelShare > 0 && rng.Float64() < g.ParallelShare {
			op.Parallelism = g.Parallelism
		}
	}
	// The count draws come last (and only when the knob is on) so
	// CountShare == 0 reproduces the op sequences of older generators
	// bit for bit.
	if g.CountShare > 0 && kind == OpEval && rng.Float64() < g.CountShare {
		op.Kind = OpCount
		op.Estimate = rng.Float64() < 0.5
	}
	// The trace draw comes after the count draw, same convention:
	// TraceShare == 0 changes nothing.
	if g.TraceShare > 0 && (op.Kind == OpEval || op.Kind == OpCount) && rng.Float64() < g.TraceShare {
		op.Trace = true
	}
	// The ranked draw comes last, same convention: RankedShare == 0
	// changes nothing. Ordering a traced eval is rejected server-side,
	// so traced ops stay unranked.
	if g.RankedShare > 0 && (op.Kind == OpEval || op.Kind == OpStream) && !op.Trace &&
		len(op.Query.Head) > 0 && rng.Float64() < g.RankedShare {
		head := op.Query.Head
		k := 1 + rng.Intn(len(head))
		seen := map[string]bool{}
		for i := len(head) - 1; i >= 0 && len(op.Order) < k; i-- {
			if !seen[head[i]] {
				seen[head[i]] = true
				op.Order = append(op.Order, head[i])
			}
		}
		op.Limit = 1 + rng.Intn(8)
	}
	// The update draw comes after the ranked draw, same convention:
	// UpdateShare == 0 changes nothing. Only by-name untraced evals
	// convert — a delta needs a registered database to apply to.
	if g.UpdateShare > 0 && op.Kind == OpEval && op.DBName != "" && !op.Trace &&
		rng.Float64() < g.UpdateShare {
		op.Kind = OpUpdateDB
		op.Query, op.Order, op.Limit, op.Parallelism = nil, nil, 0, 0
		op.Delta = randomDelta(rng, op.DB)
	}
	// The subscribe draw comes last, same convention: SubscribeShare
	// == 0 changes nothing. Only by-name unranked streams convert —
	// subscriptions follow registered databases and carry no order.
	if g.SubscribeShare > 0 && op.Kind == OpStream && op.DBName != "" &&
		len(op.Order) == 0 && rng.Float64() < g.SubscribeShare {
		op.Kind = OpSubscribe
		op.Limit = 0
	}
	// The node draw comes after the subscribe draw, same convention:
	// ClusterNodes <= 1 changes nothing.
	if g.ClusterNodes > 1 {
		op.Node = rng.Intn(g.ClusterNodes)
	}
	return op
}

// randomDelta draws one seeded single-fact change against db: an
// insert of a fresh-ish tuple, or (half the time) a delete of a tuple
// drawn from the same value range — which may be absent, a no-op by
// Delta semantics, exactly like real churn.
func randomDelta(rng *rand.Rand, db *relstr.Structure) *relstr.Delta {
	rels := db.Relations()
	rel := rels[rng.Intn(len(rels))]
	tup := make([]int, db.Arity(rel))
	for i := range tup {
		tup[i] = rng.Intn(64)
	}
	if rng.Float64() < 0.5 {
		return relstr.NewDelta().Delete(rel, tup...)
	}
	return relstr.NewDelta().Insert(rel, tup...)
}

// dbName is the registry name of pool database i.
func dbName(i int) string { return fmt.Sprintf("db%d", i) }

// Run executes n mixed operations across the configured worker count,
// calling do for each one, and aggregates the outcome. The n ops are
// generated up front from one seeded rng, so the executed multiset is
// identical across runs; workers only race for the next index. Run
// returns early (with the partial report) when ctx is cancelled. do
// must be safe for concurrent use.
func (g *LoadGen) Run(ctx context.Context, n int, do func(ctx context.Context, op Op) error) *Report {
	cfg := g.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	plan := make([]Op, n)
	for i := range plan {
		plan[i] = cfg.op(rng)
	}
	var (
		rep       Report
		ops       [numOpKinds]atomic.Int64
		fails     [numOpKinds]atomic.Int64
		latency   [numOpKinds]atomic.Int64
		tracedOps [numOpKinds]atomic.Int64
		tracedLat [numOpKinds]atomic.Int64
		samples   [numOpKinds]latencySamples
		firstErr  [numOpKinds]atomic.Pointer[error]
		next      atomic.Int64
		wg        sync.WaitGroup
	)
	record := func(op Op, d time.Duration, err error) {
		latency[op.Kind].Add(int64(d))
		ops[op.Kind].Add(1)
		samples[op.Kind].add(d)
		if op.Trace {
			tracedOps[op.Kind].Add(1)
			tracedLat[op.Kind].Add(int64(d))
		}
		if err != nil {
			fails[op.Kind].Add(1)
			firstErr[op.Kind].CompareAndSwap(nil, &err)
		}
	}
	start := time.Now()
	if cfg.RegisteredShare > 0 {
		// Register the pool before any worker can evaluate by name.
		for i, db := range cfg.Databases {
			if ctx.Err() != nil {
				break
			}
			op := Op{Kind: OpRegisterDB, DB: db, DBName: dbName(i)}
			t0 := time.Now()
			err := do(ctx, op)
			record(op, time.Since(t0), err)
		}
	}
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(n) || ctx.Err() != nil {
					return
				}
				op := plan[i]
				t0 := time.Now()
				err := do(ctx, op)
				record(op, time.Since(t0), err)
			}
		}()
	}
	wg.Wait()
	rep.Elapsed = time.Since(start)
	for k := range rep.Ops {
		rep.Ops[k] = ops[k].Load()
		rep.Failures[k] = fails[k].Load()
		rep.Latency[k] = time.Duration(latency[k].Load())
		rep.TracedOps[k] = tracedOps[k].Load()
		rep.TracedLatency[k] = time.Duration(tracedLat[k].Load())
		rep.P50[k], rep.P95[k], rep.P99[k] = samples[k].quantiles()
		if p := firstErr[k].Load(); p != nil {
			rep.FirstErrs = append(rep.FirstErrs, fmt.Errorf("%v: %w", OpKind(k), *p))
		}
	}
	return &rep
}

// latencySamples collects per-op durations of one kind across workers.
type latencySamples struct {
	mu sync.Mutex
	v  []time.Duration
}

func (s *latencySamples) add(d time.Duration) {
	s.mu.Lock()
	s.v = append(s.v, d)
	s.mu.Unlock()
}

// quantiles returns the p50/p95/p99 of the collected samples (zeros
// when none were collected). Nearest-rank on the sorted samples: the
// smallest duration covering at least a q-fraction of the ops.
func (s *latencySamples) quantiles() (p50, p95, p99 time.Duration) {
	if len(s.v) == 0 {
		return 0, 0, 0
	}
	sorted := append([]time.Duration(nil), s.v...)
	slices.Sort(sorted)
	at := func(q float64) time.Duration {
		i := int(math.Ceil(q*float64(len(sorted)))) - 1
		return sorted[max(0, min(i, len(sorted)-1))]
	}
	return at(0.50), at(0.95), at(0.99)
}
