package cqapprox

import "testing"

// The facade end-to-end: the package documentation's quick-start flow.
func TestQuickStartFlow(t *testing.T) {
	q := MustParse("Q(x) :- E(x,y), E(y,z), E(z,x)")
	if Treewidth(q) != 2 {
		t.Fatalf("tw = %d, want 2", Treewidth(q))
	}
	if IsAcyclic(q) {
		t.Fatal("triangle is cyclic")
	}
	a, err := Approximate(q, TW(1), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !Contained(a, q) {
		t.Fatal("approximation not contained in q")
	}
	ok, err := IsApproximation(q, a, TW(1), DefaultOptions())
	if err != nil || !ok {
		t.Fatalf("IsApproximation = %v, %v", ok, err)
	}

	// Evaluate both on a database with a triangle and a loop.
	db := NewStructure()
	db.Add("E", 1, 2)
	db.Add("E", 2, 3)
	db.Add("E", 3, 1)
	db.Add("E", 7, 7)
	exact := NaiveEval(q, db)
	approx := Eval(a, db)
	// Soundness: approx ⊆ exact.
	for _, t2 := range approx {
		if !exact.Contains(t2) {
			t.Fatalf("approximation produced wrong answer %v", t2)
		}
	}
}

func TestFacadeClassifiers(t *testing.T) {
	q := MustParse("Q() :- E(x,y), E(y,z), E(z,x)")
	kind, err := ClassifyGraphTableau(q)
	if err != nil || kind != NonBipartite {
		t.Fatalf("kind = %v, err = %v", kind, err)
	}
	ok, err := EquivalentToClass(q, TW(1), DefaultOptions())
	if err != nil || ok {
		t.Fatalf("C3 is not TW(1)-equivalent (ok=%v err=%v)", ok, err)
	}
	ok, err = HasLoopFreeTWkApproximation(q, 2)
	if err != nil || !ok {
		t.Fatalf("C3 is 3-colorable (ok=%v err=%v)", ok, err)
	}
}

func TestFacadeMinimizeAndEquivalence(t *testing.T) {
	q := MustParse("Q() :- E(x,y), E(x,z)")
	m := Minimize(q)
	if len(m.Atoms) != 1 || !Equivalent(q, m) || !IsMinimized(m) {
		t.Fatalf("Minimize = %v", m)
	}
}

func TestFacadeHypertreeWidth(t *testing.T) {
	q := MustParse("Q() :- R(x,u,y), R(y,v,z), R(z,w,x)")
	if HypertreeWidth(q) != 2 {
		t.Fatalf("htw = %d, want 2", HypertreeWidth(q))
	}
	if !AC().Contains(MustParse("Q() :- R(a,b,c)").Tableau().S) {
		t.Fatal("single atom is acyclic")
	}
	if GHTW(2).Name() != "GHTW(2)" {
		t.Fatal("name")
	}
}

func TestFacadeYannakakis(t *testing.T) {
	q := MustParse("Q(x,z) :- E(x,y), E(y,z)")
	db := NewStructure()
	db.Add("E", 1, 2)
	db.Add("E", 2, 3)
	ans, err := Yannakakis(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 1 || ans[0][0] != 1 || ans[0][1] != 3 {
		t.Fatalf("answers = %v", ans)
	}
	td, err := EvalByTreeDecomposition(q, db)
	if err != nil || len(td) != 1 {
		t.Fatalf("TD eval = %v, %v", td, err)
	}
	if EvalBool(MustParse("Q() :- E(a,a)"), db) {
		t.Fatal("no loops in db")
	}
	if CountMustBeOne := len(NaiveEval(q, db)); CountMustBeOne != 1 {
		t.Fatal("naive disagrees")
	}
}

func TestFacadeOverapproximation(t *testing.T) {
	q := MustParse("Q() :- E(x,y), E(y,z), E(z,x)")
	over, err := Overapproximate(q, TW(1), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !Contained(q, over) {
		t.Fatal("q must be contained in its overapproximation")
	}
	ok, err := IsOverapproximation(q, over, TW(1), DefaultOptions())
	if err != nil || !ok {
		t.Fatalf("IsOverapproximation = %v, %v", ok, err)
	}
	all, err := Overapproximations(q, TW(1), DefaultOptions())
	if err != nil || len(all) != 1 {
		t.Fatalf("Overapproximations = %v, %v", all, err)
	}
	// Sandwich on a concrete database: under ⊆ exact ⊆ over.
	under, err := Approximate(q, TW(1), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	db := NewStructure()
	db.Add("E", 1, 2)
	db.Add("E", 2, 3)
	db.Add("E", 3, 1)
	db.Add("E", 4, 5)
	uAns := EvalBool(under, db)
	eAns := EvalBool(q, db)
	oAns := EvalBool(over, db)
	if uAns && !eAns || eAns && !oAns {
		t.Fatalf("sandwich violated: under=%v exact=%v over=%v", uAns, eAns, oAns)
	}
	if !eAns || !oAns {
		t.Fatal("triangle present: exact and over must hold")
	}
}

func TestFacadeCountAndTrivial(t *testing.T) {
	q := MustParse("Q() :- R(x1,x2,x3), R(x3,x4,x5), R(x5,x6,x1)")
	n, err := CountApproximations(q, AC(), DefaultOptions())
	if err != nil || n != 3 {
		t.Fatalf("count = %d (err %v), want 3 (Example 6.6)", n, err)
	}
	triv := Trivial(q)
	if len(triv.Atoms) != 1 || triv.Atoms[0].Rel != "R" {
		t.Fatalf("Trivial = %v", triv)
	}
	if TrivialBipartite().NumJoins() != 1 {
		t.Fatal("Q_triv2 should have one join")
	}
}
