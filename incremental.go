package cqapprox

// Incremental view maintenance: the library surface over
// internal/eval's delta-aware executor mode. A BoundQuery's answers
// can be materialised once and then *maintained* across Database
// updates — each Advance propagates the update's delta through the
// plan's reduced join forest and returns the exact answer diff, in
// work proportional to the change instead of the database. This is
// what the server's /v1/subscribe streams to live-query watchers.

import (
	"context"
	"fmt"
	"sync"

	"cqapprox/internal/eval"
)

// AnswerDiff is the exact answer-set change of one Advance: the
// answers that appeared and the answers that vanished, each sorted and
// deduplicated, plus how the diff was computed. Applying added/removed
// to the previous answer set yields the new one exactly — fallbacks
// included.
type AnswerDiff struct {
	Added   Answers
	Removed Answers
	// Version is the database version the maintained state reflects
	// after this advance.
	Version uint64
	// Fallback reports that the update was not propagated
	// incrementally and the state recomputed from scratch instead (the
	// diff is still exact); Reason says why ("" when incremental).
	Fallback bool
	Reason   string
}

// Empty reports a diff that changed nothing.
func (d *AnswerDiff) Empty() bool { return len(d.Added) == 0 && len(d.Removed) == 0 }

// IncrementalEval is a BoundQuery's maintained answer set: the reduced
// state of one evaluation, advanced by deltas instead of re-run.
// Create one with BoundQuery.Incremental; feed it updates with Advance
// (or Update, which forks the snapshot itself). Safe for concurrent
// use — advances serialise on an internal lock.
type IncrementalEval struct {
	mu sync.Mutex
	p  *PreparedQuery
	db *Database
	st *eval.IncrState
}

// Incremental evaluates the bound query once and captures the reduced
// state for delta maintenance. WithEvalParallelism applies to this
// initial evaluation and to any fallback re-evaluations; other options
// are not supported on the incremental surface (maintained answers are
// always the full set in default order).
func (b *BoundQuery) Incremental(ctx context.Context, opts ...EvalOption) (*IncrementalEval, error) {
	cfg := optConfigOf(opts)
	st, err := b.p.plan.NewIncrState(ctx, b.db.snap, cfg.parallelism(b.p.parallelism()))
	if err != nil {
		return nil, err
	}
	return &IncrementalEval{p: b.p, db: b.db, st: st}, nil
}

// Supported reports whether updates can be propagated incrementally at
// all: acyclic (Yannakakis) plans maintain deltas, naive plans fall
// back to a full re-evaluation on every advance.
func (ie *IncrementalEval) Supported() bool { return ie.p.plan.IncrSupported() }

// Database returns the snapshot the maintained answers reflect.
func (ie *IncrementalEval) Database() *Database {
	ie.mu.Lock()
	defer ie.mu.Unlock()
	return ie.db
}

// Version returns the database version the maintained answers reflect.
func (ie *IncrementalEval) Version() uint64 {
	ie.mu.Lock()
	defer ie.mu.Unlock()
	return ie.st.Version()
}

// Answers returns the maintained answer set, sorted and deduplicated —
// always equal to a fresh Eval on the current snapshot. The returned
// slice is shared and must not be modified; it stays valid across
// later advances.
func (ie *IncrementalEval) Answers() Answers {
	ie.mu.Lock()
	defer ie.mu.Unlock()
	return ie.st.Answers()
}

// Advance moves the maintained state to next. When delta is the change
// set that produced next from the current snapshot (one UpdateDB /
// Database.Update link), it is propagated incrementally where the plan
// and budget allow; a nil delta — a wholesale replacement — or a next
// that skipped versions resynchronises with a full re-evaluation. The
// returned diff is exact either way.
func (ie *IncrementalEval) Advance(ctx context.Context, next *Database, delta *Delta) (*AnswerDiff, error) {
	if next == nil {
		return nil, fmt.Errorf("cqapprox: Advance requires a database")
	}
	ie.mu.Lock()
	defer ie.mu.Unlock()
	diff, err := ie.st.Apply(ctx, delta, ie.db.snap, next.snap)
	if err != nil {
		return nil, err
	}
	ie.db = next
	return &AnswerDiff{
		Added:    diff.Added,
		Removed:  diff.Removed,
		Version:  ie.st.Version(),
		Fallback: diff.Fallback,
		Reason:   diff.Reason,
	}, nil
}

// Update forks the current snapshot with delta applied (copy-on-write,
// like Database.Update) and advances the maintained state over the
// fork in one step, returning the new snapshot and the exact diff.
func (ie *IncrementalEval) Update(ctx context.Context, delta *Delta) (*Database, *AnswerDiff, error) {
	ie.mu.Lock()
	defer ie.mu.Unlock()
	next, err := ie.db.Update(delta)
	if err != nil {
		return nil, nil, err
	}
	diff, err := ie.st.Apply(ctx, delta, ie.db.snap, next.snap)
	if err != nil {
		return nil, nil, err
	}
	ie.db = next
	return next, &AnswerDiff{
		Added:    diff.Added,
		Removed:  diff.Removed,
		Version:  ie.st.Version(),
		Fallback: diff.Fallback,
		Reason:   diff.Reason,
	}, nil
}
