package cqapprox_test

// E18: service-layer throughput. BenchmarkServerThroughput pushes the
// warm mixed prepare/eval/stream workload (default LoadGen mix, 1:8:1)
// through the real HTTP stack — httptest server, JSON bodies, NDJSON
// streams — and reports eval requests/sec plus the engine cache
// hit-rate. The acceptance bar (DESIGN.md): ≥ 1000 eval req/s warm.
// This file is an external test package: the client and api packages
// import cqapprox, so an in-package test would be an import cycle.

import (
	"context"
	"net/http/httptest"
	"runtime"
	"testing"

	"cqapprox"
	"cqapprox/client"
	"cqapprox/internal/server"
	"cqapprox/internal/workload"
	"cqapprox/internal/workload/httpdrive"
)

func BenchmarkServerThroughput(b *testing.B) {
	benchServerThroughput(b, 0, 0, 0)
}

// BenchmarkServerThroughputRegistered runs the same mixed workload
// with half the eval/stream traffic evaluating by registered database
// name (POST /v1/db up front, then eval-by-name) — the register-once
// traffic shape the snapshot API targets.
func BenchmarkServerThroughputRegistered(b *testing.B) {
	benchServerThroughput(b, 0.5, 0, 0)
}

// BenchmarkServerThroughputCounting additionally turns a quarter of
// the eval traffic into /v1/count requests (half of those estimating).
func BenchmarkServerThroughputCounting(b *testing.B) {
	benchServerThroughput(b, 0.5, 0.25, 0)
}

// BenchmarkServerThroughputTraced samples an execution trace on a
// tenth of the eval/count traffic — the deployed ANALYZE-sampling
// shape — and reports the mean traced-vs-untraced eval latency.
func BenchmarkServerThroughputTraced(b *testing.B) {
	benchServerThroughput(b, 0.5, 0.25, 0.1)
}

func benchServerThroughput(b *testing.B, registeredShare, countShare, traceShare float64) {
	eng := cqapprox.NewEngine()
	srv := server.New(eng, server.Config{MaxInflightPrepare: 16, MaxInflightEval: 256})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := client.New(ts.URL).WithHTTPClient(ts.Client())
	exec := httpdrive.Executor(c)
	ctx := context.Background()
	gen := &workload.LoadGen{
		Seed:            7,
		Concurrency:     runtime.GOMAXPROCS(0),
		RegisteredShare: registeredShare,
		CountShare:      countShare,
		TraceShare:      traceShare,
	}

	// Warm the cache: every suite query's search is paid here, outside
	// the timer, so the measured regime is the service's steady state.
	if warm := gen.Run(ctx, 64, exec); len(warm.FirstErrs) > 0 {
		b.Fatalf("warmup failed: %v", warm.FirstErrs[0])
	}

	b.ResetTimer()
	rep := gen.Run(ctx, b.N, exec)
	b.StopTimer()
	if len(rep.FirstErrs) > 0 {
		b.Fatalf("workload failed: %v", rep.FirstErrs[0])
	}
	stats := srv.Stats()
	hitRate := 0.0
	if total := stats.Cache.Hits + stats.Cache.Misses; total > 0 {
		hitRate = float64(stats.Cache.Hits) / float64(total)
	}
	b.ReportMetric(rep.PerSecond(), "req/s")
	b.ReportMetric(rep.KindPerSecond(workload.OpEval), "eval-req/s")
	b.ReportMetric(hitRate, "cache-hit-rate")
	b.ReportMetric(rep.P50[workload.OpEval].Seconds()*1e3, "eval-p50-ms")
	b.ReportMetric(rep.P95[workload.OpEval].Seconds()*1e3, "eval-p95-ms")
	b.ReportMetric(rep.P99[workload.OpEval].Seconds()*1e3, "eval-p99-ms")
	if countShare > 0 {
		b.ReportMetric(rep.KindPerSecond(workload.OpCount), "count-req/s")
		b.ReportMetric(rep.P95[workload.OpCount].Seconds()*1e3, "count-p95-ms")
	}
	if traceShare > 0 {
		traced, untraced := rep.TraceOverhead(workload.OpEval)
		b.ReportMetric(traced.Seconds()*1e3, "eval-traced-mean-ms")
		b.ReportMetric(untraced.Seconds()*1e3, "eval-untraced-mean-ms")
	}
}
