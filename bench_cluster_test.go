package cqapprox_test

// E25: sharded-cluster throughput. BenchmarkClusterScatterGather
// measures one coordinator fanning scatter-gather evaluations over a
// 3-node in-process cluster (the fact relation tuple-partitioned, the
// dimensions replicated); BenchmarkServerThroughputCluster3 pushes the
// mixed LoadGen workload at the same cluster through the node-routing
// executor. The cmd/experiments cluster run (E25) asserts the
// single-node byte-identity and the multi-core scaling ratio; here the
// benchmarks only measure, plus a one-shot identity check outside the
// timer.

import (
	"context"
	"net/http/httptest"
	"reflect"
	"runtime"
	"testing"

	"cqapprox"
	"cqapprox/api"
	"cqapprox/client"
	"cqapprox/internal/relstr"
	"cqapprox/internal/server"
	"cqapprox/internal/workload"
	"cqapprox/internal/workload/httpcluster"
	"cqapprox/internal/workload/httpdrive"
)

// startBenchCluster starts n nodes sized so ClusterBenchDB's fact
// relation partitions and its dimensions replicate, and registers the
// database at node 0.
func startBenchCluster(b *testing.B, n, dbNodes int) (*httpcluster.Cluster, []*client.Client) {
	b.Helper()
	db := workload.ClusterBenchDB(dbNodes)
	base := server.Config{MaxInflightPrepare: 16, MaxInflightEval: 256}
	base.Cluster.ReplicateBelow = len(db.Tuples("R1")) + len(db.Tuples("R2")) + 1
	cl := httpcluster.Start(n, base)
	clients := cl.Clients()
	if _, err := clients[0].RegisterDB(context.Background(), api.RegisterDBRequest{
		Name: "social", Database: httpdrive.WireDB(db),
	}); err != nil {
		cl.Close()
		b.Fatalf("register: %v", err)
	}
	return cl, clients
}

func BenchmarkClusterScatterGather(b *testing.B) {
	cl, clients := startBenchCluster(b, 3, 300)
	defer cl.Close()
	ctx := context.Background()
	req := api.EvalRequest{
		Query: workload.ClusterQuerySuite()[0].String(),
		Class: "TW1", DB: "social",
	}

	// One-shot identity check against a single node, outside the timer.
	eng := cqapprox.NewEngine()
	control := httptest.NewServer(server.New(eng, server.Config{}).Handler())
	if _, err := client.New(control.URL).RegisterDB(ctx, api.RegisterDBRequest{
		Name: "social", Database: httpdrive.WireDB(workload.ClusterBenchDB(300)),
	}); err != nil {
		b.Fatalf("control register: %v", err)
	}
	got, err := clients[0].Eval(ctx, req)
	if err != nil {
		b.Fatalf("scatter eval: %v", err)
	}
	want, err := client.New(control.URL).Eval(ctx, req)
	if err != nil {
		b.Fatalf("control eval: %v", err)
	}
	if !reflect.DeepEqual(got.Answers, want.Answers) {
		b.Fatalf("scatter answers diverge from single-node (%d vs %d answers)", len(got.Answers), len(want.Answers))
	}
	control.Close()

	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := clients[0].Eval(ctx, req); err != nil {
				b.Fatalf("scatter eval: %v", err)
			}
		}
	})
	b.StopTimer()
	if cs := cl.Servers[0].Stats().Cluster; cs == nil || cs.ScatterEvals == 0 {
		b.Fatal("benchmark did not exercise scatter-gather")
	}
}

// BenchmarkServerThroughputCluster3 is BenchmarkServerThroughputRegistered
// over a 3-node cluster: the same deterministic mixed workload, shaped
// by the cluster query suite, with stateless traffic spread across all
// nodes and registered-database traffic coordinated by node 0.
func BenchmarkServerThroughputCluster3(b *testing.B) {
	benchClusterThroughput(b, 3)
}

func benchClusterThroughput(b *testing.B, nodes int) {
	cl, clients := startBenchCluster(b, nodes, 60)
	defer cl.Close()
	exec := httpdrive.ClusterExecutor(clients)
	ctx := context.Background()
	gen := &workload.LoadGen{
		Seed:            7,
		Concurrency:     runtime.GOMAXPROCS(0),
		RegisteredShare: 0.5,
		Queries:         workload.ClusterQuerySuite(),
		Databases: []*relstr.Structure{
			workload.ClusterBenchDB(40),
			workload.ClusterBenchDB(60),
			workload.ClusterBenchDB(80),
		},
		ClusterNodes: nodes,
		PeerAddrs:    cl.URLs,
	}

	if warm := gen.Run(ctx, 64, exec); len(warm.FirstErrs) > 0 {
		b.Fatalf("warmup failed: %v", warm.FirstErrs[0])
	}
	b.ResetTimer()
	rep := gen.Run(ctx, b.N, exec)
	b.StopTimer()
	if len(rep.FirstErrs) > 0 {
		b.Fatalf("workload failed: %v", rep.FirstErrs[0])
	}
	b.ReportMetric(rep.PerSecond(), "req/s")
	b.ReportMetric(rep.KindPerSecond(workload.OpEval), "eval-req/s")
	b.ReportMetric(rep.P95[workload.OpEval].Seconds()*1e3, "eval-p95-ms")
}
