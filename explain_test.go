package cqapprox

// Observability tests: golden EXPLAIN text for the workload exemplars
// (PlanExplain.Text is stable — it depends only on the plan, never on
// data or clocks), the traced-eval acceptance run on the chain-3000
// database, and a concurrent traced-eval exercise for the pooled trace
// frames (this package is part of CI's race-detector job).

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"cqapprox/internal/workload"
)

func TestExplainGoldenText(t *testing.T) {
	ctx := context.Background()
	e := NewEngine()
	chain := workload.ChainQuery(6)
	chain.Head = nil // Boolean: the dead-step analysis collapses to unit

	cases := []struct {
		name    string
		prepare func() (*PreparedQuery, error)
		want    string
	}{
		{
			name:    "chain6-bool",
			prepare: func() (*PreparedQuery, error) { return e.PrepareExact(ctx, chain) },
			want: `plan: yannakakis
countable: exact
ranked: connex
incremental: delta
direct: unit
tree 0: count=unit
  [3] E(v3,v4) joins=2 skipped=2
    [2] E(v2,v3) joins=1 skipped=1
      [1] E(v1,v2) joins=1 skipped=1
        [0] E(v0,v1)
    [4] E(v4,v5) joins=1 skipped=1
      [5] E(v5,v6)
`,
		},
		{
			name:    "star5",
			prepare: func() (*PreparedQuery, error) { return e.PrepareExact(ctx, workload.StarQuery(5)) },
			want: `plan: yannakakis
countable: exact
ranked: connex
incremental: delta
direct: node 4
tree 0: count=node
  [4] R5(v0,v5) needed direct joins=1 skipped=1
    [3] R4(v0,v4) joins=1 skipped=1
      [2] R3(v0,v3) joins=1 skipped=1
        [1] R2(v0,v2) joins=1 skipped=1
          [0] R1(v0,v1)
`,
		},
		{
			name:    "cycle4-tw1",
			prepare: func() (*PreparedQuery, error) { return e.Prepare(ctx, workload.CycleQueryFree(4), TW(1)) },
			want: `plan: yannakakis
class: TW(1)
approximation: C4(x)_approx(x0) :- E(x0,x1), E(x1,x0)
countable: exact
ranked: connex
incremental: delta
direct: node 1
tree 0: count=node
  [1] E(v1,v0) needed direct joins=1 skipped=1
    [0] E(v0,v1)
`,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p, err := c.prepare()
			if err != nil {
				t.Fatal(err)
			}
			ex := p.Explain()
			if got := ex.Text(); got != c.want {
				t.Fatalf("explain text drifted:\ngot:\n%s\nwant:\n%s", got, c.want)
			}
			// The same prepared query explains identically on every call.
			if again := p.Explain().Text(); again != c.want {
				t.Fatalf("second Explain differs:\n%s", again)
			}
		})
	}
}

// TestEvalTraceChain3000 is the acceptance run: a traced evaluation
// against the registered chain-3000 database must report non-zero
// per-node row counts and phase times that account for the bulk of the
// total.
func TestEvalTraceChain3000(t *testing.T) {
	if testing.Short() {
		t.Skip("3000-node database")
	}
	ctx := context.Background()
	e := NewEngine()
	p, err := e.PrepareExact(ctx, workload.ChainQuery(6))
	if err != nil {
		t.Fatal(err)
	}
	d, _, err := e.RegisterDB("chain3000", workload.EvalBenchDB(3000))
	if err != nil {
		t.Fatal(err)
	}
	bound := p.Bind(d)

	ans, tr, err := bound.EvalTrace(ctx)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := bound.Eval(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) == 0 || len(ans) != len(plain) {
		t.Fatalf("traced eval: %d answers, untraced: %d", len(ans), len(plain))
	}
	if tr == nil || tr.Mode != "yannakakis" || tr.TotalNS <= 0 {
		t.Fatalf("bad trace header: %+v", tr)
	}
	if len(tr.Nodes) != 6 {
		t.Fatalf("chain6 trace has %d nodes, want 6", len(tr.Nodes))
	}
	for _, n := range tr.Nodes {
		if n.Rows <= 0 || n.Atom == "" {
			t.Fatalf("node %d reports no rows or no atom: %+v", n.ID, n)
		}
		if n.SemijoinIn <= 0 {
			t.Fatalf("node %d saw no semijoin input: %+v", n.ID, n)
		}
	}
	var phaseSum int64
	for _, ph := range tr.Phases {
		if ph.NS < 0 {
			t.Fatalf("negative phase %q", ph.Name)
		}
		phaseSum += ph.NS
	}
	if phaseSum <= 0 || phaseSum > tr.TotalNS {
		t.Fatalf("phases sum %d outside (0, total %d]", phaseSum, tr.TotalNS)
	}
	if phaseSum < tr.TotalNS/2 {
		t.Fatalf("phases sum %d accounts for under half of total %d", phaseSum, tr.TotalNS)
	}

	// Counting through the same binding carries its own trace.
	res, err := bound.Count(ctx, WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != uint64(len(ans)) {
		t.Fatalf("traced count %d != answer count %d", res.Count, len(ans))
	}
	if res.Trace == nil || res.Trace.TotalNS <= 0 {
		t.Fatalf("count trace missing: %+v", res.Trace)
	}
}

// TestConcurrentTracedEval hammers one shared prepared query with
// concurrent traced and untraced evaluations — under -race this guards
// the pooled trace frames (each evaluation must see only its own).
func TestConcurrentTracedEval(t *testing.T) {
	ctx := context.Background()
	e := NewEngine()
	p, err := e.PrepareExact(ctx, workload.StarQuery(5))
	if err != nil {
		t.Fatal(err)
	}
	db := workload.EvalBenchDB(300)
	want, err := p.Eval(ctx, db)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if (w+i)%3 == 0 { // mix untraced calls through the same plan
					ans, err := p.Eval(ctx, db)
					if err != nil {
						errs <- err
						return
					}
					if len(ans) != len(want) {
						errs <- fmt.Errorf("untraced: %d answers, want %d", len(ans), len(want))
						return
					}
					continue
				}
				ans, tr, err := p.EvalTrace(ctx, db)
				if err != nil {
					errs <- err
					return
				}
				if len(ans) != len(want) {
					errs <- fmt.Errorf("traced: %d answers, want %d", len(ans), len(want))
					return
				}
				if tr == nil || len(tr.Nodes) != 5 || tr.TotalNS <= 0 {
					errs <- fmt.Errorf("bad trace: %+v", tr)
					return
				}
				for _, n := range tr.Nodes {
					if n.Rows <= 0 {
						errs <- fmt.Errorf("node %d rows=%d in concurrent trace", n.ID, n.Rows)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
