package cqapprox

import (
	"container/list"
	"fmt"

	"cqapprox/internal/relstr"
)

// Database is an immutable snapshot of a relational database with a
// persistent, shared index cache: the data-side mirror of the query
// side's prepare-once split. Where evaluating a plain *Structure
// re-derives hash indexes on every call, a Database owns them — they
// are built lazily on first use, bounded, safe for concurrent use, and
// shared across every prepared query and every evaluation that binds
// the snapshot. Construct one with Snapshot, or register it under a
// name with Engine.RegisterDB so requests can refer to it without
// re-shipping the data.
//
// Databases are immutable: Update applies a change set copy-on-write
// and returns a new snapshot that keeps sharing the rows, views and
// warm indexes of every untouched relation.
type Database struct {
	name string
	snap *relstr.Snapshot
}

// Delta is a change set for Database.Update / Engine.UpdateDB: facts
// to delete and facts to insert, per relation. Construct with NewDelta.
type Delta = relstr.Delta

// NewDelta returns an empty change set.
func NewDelta() *Delta { return relstr.NewDelta() }

// SnapshotStats aggregates a Database's index-cache counters; see
// Database.Stats.
type SnapshotStats = relstr.SnapshotStats

// Snapshot freezes s into an immutable Database snapshot. The
// structure is deep-copied: later mutations of s do not affect the
// snapshot.
func Snapshot(s *Structure) *Database {
	return &Database{snap: relstr.NewSnapshot(s)}
}

// Name returns the name the snapshot is registered under, or "" for a
// standalone snapshot.
func (d *Database) Name() string { return d.name }

// Version returns the snapshot's process-unique version; Update always
// yields a larger one.
func (d *Database) Version() uint64 { return d.snap.Version() }

// Relations returns the declared relation symbols in sorted order.
func (d *Database) Relations() []string { return d.snap.Relations() }

// Arity returns the arity of relation name, or 0 if undeclared.
func (d *Database) Arity(name string) int { return d.snap.Arity(name) }

// NumFacts returns the total number of tuples across all relations.
func (d *Database) NumFacts() int { return d.snap.NumFacts() }

// Size returns Σ arity·(#tuples), the standard size measure.
func (d *Database) Size() int { return d.snap.Size() }

// Stats returns the snapshot's index-cache counters: views and indexes
// built, cache hits, and how many indexes are currently cached.
// Counters of relations shared with other versions (COW forks)
// accumulate the activity of every sharer.
func (d *Database) Stats() SnapshotStats { return d.snap.Stats() }

// Update forks a new snapshot with delta applied, copy-on-write:
// untouched relations share rows and warm indexes with d. The fork
// carries d's name but is not registered anywhere — use
// Engine.UpdateDB to update a registered database in place.
func (d *Database) Update(delta *Delta) (*Database, error) {
	next, err := d.snap.Update(delta)
	if err != nil {
		return nil, err
	}
	return &Database{name: d.name, snap: next}, nil
}

// Contents returns a mutable deep copy of the snapshot's facts (the
// snapshot itself stays immutable).
func (d *Database) Contents() *Structure { return d.snap.Structure().Clone() }

// --- engine registry ---------------------------------------------------

// DefaultDBCapacity is the database-registry bound of NewEngine unless
// overridden with WithDBCapacity.
const DefaultDBCapacity = 64

// WithDBCapacity bounds the number of registered database snapshots;
// beyond it the least-recently-used registration is evicted. n <= 0
// means unbounded.
func WithDBCapacity(n int) EngineOption {
	return func(e *Engine) { e.maxDBs = n }
}

// dbEntry is the value stored in the registry's LRU list.
type dbEntry struct {
	name string
	db   *Database
}

// RegisterDB snapshots s and registers it under name, replacing any
// previous registration of the same name; replaced reports (atomically
// with the insertion) whether one existed. The returned Database is
// immediately usable (and identical to what Engine.DB returns). The
// registry is LRU-bounded; see WithDBCapacity. The snapshot freeze
// runs before the registry lock is taken, so concurrent registrations
// only contend on the map insertion itself.
func (e *Engine) RegisterDB(name string, s *Structure) (d *Database, replaced bool, err error) {
	if name == "" {
		return nil, false, fmt.Errorf("cqapprox: RegisterDB requires a non-empty name")
	}
	if s == nil {
		return nil, false, fmt.Errorf("cqapprox: RegisterDB requires a database")
	}
	d = &Database{name: name, snap: relstr.NewSnapshot(s)}
	e.dbMu.Lock()
	defer e.dbMu.Unlock()
	e.dbRegistered++
	return d, e.putDBLocked(d), nil
}

// putDBLocked inserts or replaces a registry entry as most recently
// used, evicting beyond capacity, and reports whether an entry of the
// same name was replaced. Callers hold e.dbMu.
func (e *Engine) putDBLocked(d *Database) (replaced bool) {
	if el, ok := e.dbs[d.name]; ok {
		el.Value.(*dbEntry).db = d
		e.dbLRU.MoveToFront(el)
		return true
	}
	e.dbs[d.name] = e.dbLRU.PushFront(&dbEntry{name: d.name, db: d})
	for e.maxDBs > 0 && len(e.dbs) > e.maxDBs {
		back := e.dbLRU.Back()
		e.dbLRU.Remove(back)
		delete(e.dbs, back.Value.(*dbEntry).name)
		e.dbEvictions++
	}
	return false
}

// DB returns the database registered under name, if any. A found entry
// counts as a registry hit and as a use for LRU eviction.
func (e *Engine) DB(name string) (*Database, bool) {
	e.dbMu.Lock()
	defer e.dbMu.Unlock()
	el, ok := e.dbs[name]
	if !ok {
		e.dbMisses++
		return nil, false
	}
	e.dbHits++
	e.dbLRU.MoveToFront(el)
	return el.Value.(*dbEntry).db, true
}

// UpdateDB applies delta copy-on-write to the database registered
// under name and re-registers the new version in its place. Untouched
// relations keep their warm indexes across the update. The previous
// snapshot remains valid for callers still holding it.
func (e *Engine) UpdateDB(name string, delta *Delta) (*Database, error) {
	u, err := e.ApplyDB(name, delta)
	if err != nil {
		return nil, err
	}
	return u.Next, nil
}

// DBUpdate is the atomic before/after pair of one registered-database
// change, as consumed by change notification: the snapshot the delta
// was applied to, the resulting snapshot, and the delta itself (nil
// for wholesale replacements, which carry no change set).
type DBUpdate struct {
	Prev  *Database
	Next  *Database
	Delta *Delta
}

// ApplyDB is UpdateDB exposing the atomic (previous, next, delta)
// triple: both snapshots are read under the registry lock, so the pair
// is exactly one chain link even under concurrent updates of the same
// name — what incremental subscribers need to advance their reduced
// state without a resync.
func (e *Engine) ApplyDB(name string, delta *Delta) (*DBUpdate, error) {
	e.dbMu.Lock()
	defer e.dbMu.Unlock()
	el, ok := e.dbs[name]
	if !ok {
		return nil, fmt.Errorf("cqapprox: no database registered under %q", name)
	}
	// The fork runs under the registry lock, so concurrent UpdateDB
	// calls on one name serialize and neither update is lost. The fork
	// only copies the touched relations, and the registry lock is not
	// the engine's cache lock: prepare traffic proceeds in parallel,
	// as do evaluations against the current snapshot.
	prev := el.Value.(*dbEntry).db
	next, err := prev.Update(delta)
	if err != nil {
		return nil, err
	}
	e.dbUpdates++
	e.putDBLocked(next)
	return &DBUpdate{Prev: prev, Next: next, Delta: delta}, nil
}

// DropDB removes the registration of name, reporting whether it
// existed. Snapshots already handed out remain valid.
func (e *Engine) DropDB(name string) bool {
	e.dbMu.Lock()
	defer e.dbMu.Unlock()
	el, ok := e.dbs[name]
	if !ok {
		return false
	}
	e.dbLRU.Remove(el)
	delete(e.dbs, name)
	return true
}

// DBStats is a snapshot of the engine's database-registry counters,
// including the snapshot index-cache activity aggregated over every
// currently registered database (evicted or dropped registrations
// leave the aggregate, like cache entries do in CacheStats).
type DBStats struct {
	Entries    int    // databases currently registered
	Registered uint64 // RegisterDB calls
	Updates    uint64 // UpdateDB calls that applied
	Hits       uint64 // DB lookups that found the name
	Misses     uint64 // DB lookups that did not
	Evictions  uint64 // registrations evicted by the LRU bound

	Facts         int    // facts across registered databases
	Views         int    // materialised atom views held
	IndexesCached int    // indexes currently cached
	IndexBuilds   uint64 // snapshot indexes built (cached or transient)
	IndexHits     uint64 // probes served by an already-built index
}

// DBStats returns a snapshot of the registry counters.
func (e *Engine) DBStats() DBStats {
	e.dbMu.Lock()
	defer e.dbMu.Unlock()
	st := DBStats{
		Entries:    len(e.dbs),
		Registered: e.dbRegistered,
		Updates:    e.dbUpdates,
		Hits:       e.dbHits,
		Misses:     e.dbMisses,
		Evictions:  e.dbEvictions,
	}
	for el := e.dbLRU.Front(); el != nil; el = el.Next() {
		s := el.Value.(*dbEntry).db.Stats()
		st.Facts += s.Facts
		st.Views += s.Views
		st.IndexesCached += s.IndexesCached
		st.IndexBuilds += s.IndexBuilds
		st.IndexHits += s.IndexHits
	}
	return st
}

// newDBRegistry initialises the registry fields (called by NewEngine).
func (e *Engine) newDBRegistry() {
	e.dbs = map[string]*list.Element{}
	e.dbLRU = list.New()
}
