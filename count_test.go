package cqapprox

import (
	"context"
	"math"
	"testing"

	"cqapprox/internal/workload"
)

// Count and EstimateCount agree with a full evaluation across the
// public surface: prepared queries over plain structures, bound
// queries over registered snapshots, exact and estimated modes.
func TestCountPublicAPI(t *testing.T) {
	engine := NewEngine()
	ctx := context.Background()
	db := workload.EvalBenchDB(300)
	d, _, err := engine.RegisterDB("bench", db)
	if err != nil {
		t.Fatal(err)
	}
	queries := []*Query{
		workload.ChainQuery(4),                // free-connex-ish head
		workload.StarQuery(3),                 // center head var
		MustParse("Q(x,z) :- E(x,y), E(y,z)"), // sampling-classified
	}
	for _, q := range queries {
		p, err := engine.PrepareExact(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		ans, err := p.Eval(ctx, db)
		if err != nil {
			t.Fatal(err)
		}
		want := uint64(len(ans))

		res, err := p.Count(ctx, db)
		if err != nil {
			t.Fatal(err)
		}
		if res.Count != want || res.Estimated {
			t.Fatalf("%s: Count = %d (estimated=%v), want exact %d", q.Name, res.Count, res.Estimated, want)
		}

		bres, err := p.Bind(d).Count(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if bres.Count != want || bres.Mode != res.Mode {
			t.Fatalf("%s: bound Count = %d mode %s, unbound %d mode %s",
				q.Name, bres.Count, bres.Mode, want, res.Mode)
		}

		est, err := p.EstimateCount(ctx, db, WithEpsilon(0.1), WithSeed(3))
		if err != nil {
			t.Fatal(err)
		}
		if want > 0 {
			if rel := math.Abs(est.Estimate-float64(want)) / float64(want); rel > 0.1 {
				t.Fatalf("%s: estimate %v vs %d, rel err %.4f", q.Name, est.Estimate, want, rel)
			}
		}
		best, err := p.Bind(d).EstimateCount(ctx, WithEpsilon(0.1), WithSeed(3))
		if err != nil {
			t.Fatal(err)
		}
		if best.Estimate != est.Estimate || best.Estimated != est.Estimated {
			t.Fatalf("%s: bound estimate %v diverges from unbound %v", q.Name, best.Estimate, est.Estimate)
		}
	}
}

// The parallel view counts identically to serial.
func TestCountParallelIdentical(t *testing.T) {
	engine := NewEngine()
	ctx := context.Background()
	db := workload.EvalBenchDB(300)
	p, err := engine.PrepareExact(ctx, workload.ChainQuery(5))
	if err != nil {
		t.Fatal(err)
	}
	serial, err := p.Count(ctx, db)
	if err != nil {
		t.Fatal(err)
	}
	par, err := p.Parallel(4).Count(ctx, db)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Count != par.Count {
		t.Fatalf("parallel count %d, serial %d", par.Count, serial.Count)
	}
}

// Counting calls surface in the engine-wide cache statistics.
func TestCountCacheStats(t *testing.T) {
	engine := NewEngine()
	ctx := context.Background()
	db := workload.EvalBenchDB(300)
	p, err := engine.PrepareExact(ctx, MustParse("Q(x,z) :- E(x,y), E(y,z)"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Count(ctx, db); err != nil {
		t.Fatal(err)
	}
	if _, err := p.EstimateCount(ctx, db, WithSeed(1)); err != nil {
		t.Fatal(err)
	}
	st := engine.CacheStats()
	if st.Indexes.ExactCounts != 1 {
		t.Errorf("ExactCounts = %d, want 1", st.Indexes.ExactCounts)
	}
	if st.Indexes.EstimatedCounts != 1 {
		t.Errorf("EstimatedCounts = %d, want 1", st.Indexes.EstimatedCounts)
	}
	if st.Indexes.SampleBatches == 0 {
		t.Error("SampleBatches = 0 after an estimated count")
	}
}
