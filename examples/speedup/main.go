// Speedup: the motivating experiment of the paper's introduction
// (experiment E9 in DESIGN.md), run through the prepare-once /
// execute-many API. The cyclic query is prepared a single time — the
// NP-hard approximation search happens here — and the PreparedQuery is
// then evaluated on growing synthetic follower graphs in O(|D|·|Q'|)
// via its cached Yannakakis plan; the exact |D|^O(|Q|) backtracking
// engine is timed alongside. The table reports wall-clock times and the
// recall of the approximation (approximations are sound, so precision
// is always 1).
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"cqapprox"
	"cqapprox/internal/workload"
)

func main() {
	ctx := context.Background()
	engine := cqapprox.NewEngine()

	// Directed 4-cycle membership with one output variable — a
	// treewidth-2 query whose acyclic approximation is the
	// mutual-follow query (its tableau is K2↔; Theorem 5.1's
	// bipartite-unbalanced case).
	q := cqapprox.MustParse("Q(x) :- E(x,y), E(y,z), E(z,w), E(w,x)")

	t0 := time.Now()
	p, err := engine.Prepare(ctx, q, cqapprox.TW(1))
	if err != nil {
		log.Fatal(err)
	}
	prep := time.Since(t0)
	fmt.Println("query:   ", q)
	fmt.Println("approx:  ", p.Approx())
	fmt.Printf("prepared in %s (paid once, reused for every database below)\n\n", prep.Round(time.Microsecond))
	fmt.Printf("%10s %10s %12s %12s %8s\n", "|V|", "|D|", "exact", "approx", "recall")

	// The largest size keeps the exact engine's |D|^O(|Q|) growth
	// visible while finishing in ~15s; the approximation's O(|D|·|Q'|)
	// engine would comfortably scale far beyond.
	for _, n := range []int{200, 1000, 5000} {
		rng := rand.New(rand.NewSource(42))
		db := workload.RandomSocial(rng, n, 6, 0.3)

		t0 := time.Now()
		exact := cqapprox.NaiveEval(q, db)
		exactTime := time.Since(t0)

		t0 = time.Now()
		approx, err := p.Eval(ctx, db)
		if err != nil {
			log.Fatal(err)
		}
		approxTime := time.Since(t0)

		recall := 1.0
		if len(exact) > 0 {
			hits := 0
			for _, t := range approx {
				if exact.Contains(t) {
					hits++
				}
			}
			if hits != len(approx) {
				log.Fatal("approximation returned a wrong answer — impossible")
			}
			recall = float64(len(approx)) / float64(len(exact))
		}
		fmt.Printf("%10d %10d %12s %12s %7.2f%%\n",
			n, db.NumFacts(), exactTime.Round(time.Microsecond),
			approxTime.Round(time.Microsecond), 100*recall)
	}
	fmt.Println("\nShape check (paper §1): the exact/approx time ratio grows with |D|,")
	fmt.Println("while every approximate answer is guaranteed correct.")
}
