// Speedup: the motivating experiment of the paper's introduction
// (experiment E9 in DESIGN.md). A cyclic query is evaluated exactly
// (|D|^O(|Q|) backtracking) and through its acyclic approximation
// (O(|D|·|Q'|) Yannakakis) on growing synthetic follower graphs; the
// table reports wall-clock times and the recall of the approximation
// (the fraction of exact answers it returns — approximations are sound,
// so precision is always 1).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"cqapprox"
	"cqapprox/internal/workload"
)

func main() {
	// Directed 4-cycle membership with one output variable — a
	// treewidth-2 query whose acyclic approximation is the
	// mutual-follow query (its tableau is K2↔; Theorem 5.1's
	// bipartite-unbalanced case).
	q := cqapprox.MustParse("Q(x) :- E(x,y), E(y,z), E(z,w), E(w,x)")
	a, err := cqapprox.Approximate(q, cqapprox.TW(1), cqapprox.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("query:  ", q)
	fmt.Println("approx: ", a)
	fmt.Println()
	fmt.Printf("%10s %10s %12s %12s %8s\n", "|V|", "|D|", "exact", "approx", "recall")

	// The largest size keeps the exact engine's |D|^O(|Q|) growth
	// visible while finishing in ~15s; the approximation's O(|D|·|Q'|)
	// engine would comfortably scale far beyond.
	for _, n := range []int{200, 1000, 5000} {
		rng := rand.New(rand.NewSource(42))
		db := workload.RandomSocial(rng, n, 6, 0.3)

		t0 := time.Now()
		exact := cqapprox.NaiveEval(q, db)
		exactTime := time.Since(t0)

		t0 = time.Now()
		approx := cqapprox.Eval(a, db)
		approxTime := time.Since(t0)

		recall := 1.0
		if len(exact) > 0 {
			hits := 0
			for _, t := range approx {
				if exact.Contains(t) {
					hits++
				}
			}
			if hits != len(approx) {
				log.Fatal("approximation returned a wrong answer — impossible")
			}
			recall = float64(len(approx)) / float64(len(exact))
		}
		fmt.Printf("%10d %10d %12s %12s %7.2f%%\n",
			n, db.NumFacts(), exactTime.Round(time.Microsecond),
			approxTime.Round(time.Microsecond), 100*recall)
	}
	fmt.Println("\nShape check (paper §1): the exact/approx time ratio grows with |D|,")
	fmt.Println("while every approximate answer is guaranteed correct.")
}
