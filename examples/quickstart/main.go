// Quickstart: the prepare-once / execute-many flow of the library. A
// cyclic conjunctive query is prepared against TW(1) — parse, minimize,
// run the NP-hard approximation search, pick an evaluation plan — and
// the resulting PreparedQuery is then evaluated on a database three
// ways: materialised, Boolean, and streamed. Preparing an equivalent
// query again is a cache hit and skips the search entirely.
package main

import (
	"context"
	"fmt"
	"log"

	"cqapprox"
)

func main() {
	ctx := context.Background()
	engine := cqapprox.NewEngine()

	// The triangle query with one output variable: find nodes lying on
	// a directed triangle. Combined complexity |D|^O(|Q|).
	q := cqapprox.MustParse("Q(x) :- E(x,y), E(y,z), E(z,x)")
	fmt.Println("query:            ", q)
	fmt.Println("treewidth:        ", cqapprox.Treewidth(q))
	fmt.Println("acyclic:          ", cqapprox.IsAcyclic(q))

	// Pay the static cost once. The approximation is guaranteed:
	// p.Approx() ⊆ q, acyclic, and no acyclic query sits strictly
	// between them.
	p, err := engine.Prepare(ctx, q, cqapprox.TW(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("TW(1) approx:     ", p.Approx())
	fmt.Println("plan:             ", p.PlanMode())
	fmt.Println("contained in q:   ", cqapprox.Contained(p.Approx(), q))

	// A toy social graph: a mutual-follow pair with a self-loop user,
	// and a genuine triangle.
	db := cqapprox.NewStructure()
	edges := [][2]int{
		{1, 2}, {2, 1}, // mutual follows
		{3, 3},                 // self-loop
		{4, 5}, {5, 6}, {6, 4}, // triangle
		{7, 8}, {8, 9}, // stray path
	}
	for _, e := range edges {
		db.Add("E", e[0], e[1])
	}

	// Execute many: the same PreparedQuery serves any database.
	exact := cqapprox.NaiveEval(q, db)
	approx, err := p.Eval(ctx, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("exact answers:    ", exact)
	fmt.Println("approx answers:   ", approx)

	ok, err := p.EvalBool(ctx, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("has any answer:   ", ok)

	// Stream without materialising — break any time, cancel any time.
	fmt.Print("streamed:          ")
	for t := range p.Answers(ctx, db) {
		fmt.Print(t, " ")
	}
	fmt.Println()

	// Soundness guarantee: every approximate answer is correct.
	for _, t := range approx {
		if !exact.Contains(t) {
			log.Fatalf("unsound answer %v", t)
		}
	}
	fmt.Println("soundness:         every approximate answer is exact ✓")

	// Preparing an alpha-renamed variant hits the cache: no search.
	if _, err := engine.Prepare(ctx, cqapprox.MustParse("Q(a) :- E(a,b), E(b,c), E(c,a)"), cqapprox.TW(1)); err != nil {
		log.Fatal(err)
	}
	s := engine.CacheStats()
	fmt.Printf("cache:             %d search run, %d served from cache\n", s.Misses, s.Hits)
}
