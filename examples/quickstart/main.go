// Quickstart: parse a cyclic conjunctive query, compute its acyclic
// approximation, and evaluate both on a small database — the end-to-end
// flow of the paper. The approximation is guaranteed to return only
// correct answers (Q' ⊆ Q) while evaluating in O(|D|·|Q'|).
package main

import (
	"fmt"
	"log"

	"cqapprox"
)

func main() {
	// The triangle query with one output variable: find nodes lying on
	// a directed triangle. Combined complexity |D|^O(|Q|).
	q := cqapprox.MustParse("Q(x) :- E(x,y), E(y,z), E(z,x)")
	fmt.Println("query:            ", q)
	fmt.Println("treewidth:        ", cqapprox.Treewidth(q))
	fmt.Println("acyclic:          ", cqapprox.IsAcyclic(q))

	// Compute its acyclic (treewidth-1) approximation.
	a, err := cqapprox.Approximate(q, cqapprox.TW(1), cqapprox.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("TW(1) approx:     ", a)
	fmt.Println("contained in q:   ", cqapprox.Contained(a, q))

	// A toy social graph: a mutual-follow pair with a self-loop user,
	// and a genuine triangle.
	db := cqapprox.NewStructure()
	edges := [][2]int{
		{1, 2}, {2, 1}, // mutual follows
		{3, 3},                 // self-loop
		{4, 5}, {5, 6}, {6, 4}, // triangle
		{7, 8}, {8, 9}, // stray path
	}
	for _, e := range edges {
		db.Add("E", e[0], e[1])
	}

	exact := cqapprox.NaiveEval(q, db)
	approx := cqapprox.Eval(a, db) // Yannakakis under the hood
	fmt.Println("exact answers:    ", exact)
	fmt.Println("approx answers:   ", approx)

	// Soundness guarantee: every approximate answer is correct.
	for _, t := range approx {
		if !exact.Contains(t) {
			log.Fatalf("unsound answer %v", t)
		}
	}
	fmt.Println("soundness:         every approximate answer is exact ✓")
}
