// Trichotomy: Theorem 5.1's classification of Boolean graph queries
// (experiment E3 in DESIGN.md), on the Engine API. For each query the
// example prints the tableau classification — non-bipartite /
// bipartite-unbalanced / bipartite-balanced — and the acyclic
// approximations found by a shared engine, showing the three predicted
// behaviours: only Q_trivial, only Q_triv2 (K2↔), or nontrivial
// approximations without 2-cycles.
package main

import (
	"context"
	"fmt"
	"log"

	"cqapprox"
)

func main() {
	ctx := context.Background()
	engine := cqapprox.NewEngine()
	queries := []string{
		// Non-bipartite: odd cycle.
		"Q() :- E(x,y), E(y,z), E(z,x)",
		// Bipartite but unbalanced: oriented 4-cycle of net length 2.
		"Q() :- E(x,y), E(y,z), E(z,u), E(x,u)",
		// Bipartite and balanced: the intro's Q2 (unique approx = P4).
		"Q() :- E(x,y), E(y,z), E(z,u), E(a,b), E(b,c), E(c,d), E(x,c), E(y,d)",
		// Bipartite and balanced: alternating 4-cycle with a tail.
		"Q() :- E(a,b), E(c,b), E(c,d), E(a,d), E(d,e)",
	}
	for _, src := range queries {
		q := cqapprox.MustParse(src)
		kind, err := cqapprox.ClassifyGraphTableau(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query: %v\n", q)
		fmt.Printf("  tableau kind: %v\n", kind)
		p, err := engine.Prepare(ctx, q, cqapprox.TW(1))
		if err != nil {
			log.Fatal(err)
		}
		for _, a := range p.Approximations() {
			tag := ""
			switch {
			case cqapprox.Equivalent(a, cqapprox.Trivial(q)):
				tag = "   [trivial]"
			case cqapprox.Equivalent(a, cqapprox.TrivialBipartite()):
				tag = "   [K2↔]"
			}
			fmt.Printf("  acyclic approximation: %v%s\n", a, tag)
		}
		fmt.Println()
	}
	fmt.Println("Theorem 5.1: non-bipartite → only Q_trivial; bipartite-unbalanced →")
	fmt.Println("only K2↔; bipartite-balanced → nontrivial, 2-cycle-free.")
}
