// Hypergraph: approximations beyond graphs (experiments E7/E15/E16 in
// DESIGN.md), on the Engine API. Over higher-arity relations the
// structure of approximations is much richer than over graphs:
// Example 6.6's ternary cycle query has exactly three non-equivalent
// acyclic approximations — with fewer, equally many, and more joins
// than the original query — and Proposition 5.15's almost-triangle
// query has a strong treewidth approximation with the same number of
// joins. One engine prepares the query against both AC and HTW(2);
// each preparation is cached independently per class.
package main

import (
	"context"
	"fmt"
	"log"

	"cqapprox"
)

func main() {
	ctx := context.Background()
	engine := cqapprox.NewEngine()

	// Example 6.6: the ternary cycle.
	q := cqapprox.MustParse("Q() :- R(x1,x2,x3), R(x3,x4,x5), R(x5,x6,x1)")
	fmt.Println("query:          ", q)
	fmt.Println("acyclic:        ", cqapprox.IsAcyclic(q))
	fmt.Println("hypertree width:", cqapprox.HypertreeWidth(q))
	fmt.Println()

	ac, err := engine.Prepare(ctx, q, cqapprox.AC())
	if err != nil {
		log.Fatal(err)
	}
	apps := ac.Approximations()
	fmt.Printf("acyclic approximations (%d, Example 6.6 predicts 3):\n", len(apps))
	for _, a := range apps {
		rel := "fewer"
		switch {
		case a.NumJoins() == q.NumJoins():
			rel = "as many"
		case a.NumJoins() > q.NumJoins():
			rel = "more"
		}
		fmt.Printf("  %v   (%d joins — %s than Q's %d)\n", a, a.NumJoins(), rel, q.NumJoins())
	}
	fmt.Println()

	// Its HTW(2) approximation is the query itself: the ternary cycle
	// already has hypertree width 2.
	h2, err := engine.Prepare(ctx, q, cqapprox.HTW(2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("HTW(2) approximation:", h2.Approx())
	fmt.Println("equivalent to Q:     ", cqapprox.Equivalent(h2.Approx(), q))
	fmt.Println()

	// Proposition 5.15: the almost-triangle and its strong treewidth
	// approximation with equally many joins.
	at := cqapprox.MustParse("Q() :- R(x1,x2,x3), R(x2,x1,x4), R(x4,x3,x1)")
	strong := cqapprox.MustParse("Q'() :- R(x,y,y), R(y,x,y), R(y,y,x)")
	ok, err := cqapprox.IsApproximation(at, strong, cqapprox.TW(1), cqapprox.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("almost-triangle:     ", at, " (treewidth", cqapprox.Treewidth(at), "— maximal)")
	fmt.Println("strong TW(1) approx: ", strong)
	fmt.Println("verified:            ", ok, " with equal join counts:",
		cqapprox.Minimize(at).NumJoins() == cqapprox.Minimize(strong).NumJoins())
}
