// Enumerate: Proposition 4.4's exponential family (experiment E2 in
// DESIGN.md). The queries Q_n grow linearly (28n variables, 29n−2
// joins) yet have at least 2ⁿ non-equivalent acyclic approximations:
// the queries G_n^s for s ∈ {V,H}ⁿ. The example constructs the family,
// verifies the witnesses are pairwise-incomparable acyclic cores
// contained in Q_n (Claims 4.6–4.9), and prints the counts. Gadget
// construction and the leveled incomparability check are internal
// machinery; containment is checked through the public
// cqapprox.Contained surface.
package main

import (
	"fmt"

	"cqapprox"
	"cqapprox/internal/digraph"
	"cqapprox/internal/gadgets"
	"cqapprox/internal/relstr"
)

func main() {
	fmt.Printf("%4s %8s %8s %12s %10s\n", "n", "|vars|", "joins", "witnesses", "verified")
	for n := 1; n <= 3; n++ {
		gn := gadgets.NewGn(n)
		qn := cqapprox.FromTableau(gn.G, nil)
		labels := gadgets.AllLabels(n)
		witnesses := 0
		allOK := true
		graphs := make(map[string]*relstr.Structure, len(labels))
		for _, s := range labels {
			graphs[s] = gadgets.NewGns(n, s)
		}
		for _, s := range labels {
			gs := graphs[s]
			// Acyclic and contained in Q_n (Chandra–Merlin via the
			// public containment check).
			if !digraph.IsForestLike(gs) || !cqapprox.Contained(cqapprox.FromTableau(gs, nil), qn) {
				allOK = false
				continue
			}
			// Incomparable with every previously accepted witness.
			ok := true
			for _, u := range labels {
				if u == s {
					continue
				}
				if digraph.ExistsHomLeveled(gs, graphs[u]) {
					ok = false
					break
				}
			}
			if ok {
				witnesses++
			} else {
				allOK = false
			}
		}
		fmt.Printf("%4d %8d %8d %12d %10v\n",
			n, gn.G.DomainSize(), gn.G.NumFacts()-1, witnesses, allOK && witnesses == 1<<n)
	}
	fmt.Println("\nProposition 4.4: |TW(1)-APPR_min(Q_n)| ≥ 2ⁿ with linear-size Q_n.")
	fmt.Println("Each witness G_n^s is an acyclic core contained in Q_n, pairwise")
	fmt.Println("incomparable with all others (approximation-hood per Claim 4.9).")
}
