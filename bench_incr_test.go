package cqapprox

// PR 9: incremental view maintenance. BenchmarkIncrementalEval puts a
// number on the subsystem's reason to exist: propagating a
// single-tuple delta through the maintained reduced forest
// (IncrementalEval.Advance) versus re-evaluating the bound query from
// scratch on the changed snapshot — same query, same database, same
// change. Both legs run against the same pair of pre-forked snapshots
// (base, base plus one fact) with warm index caches, so the
// copy-on-write fork — infrastructure either strategy pays identically
// per update — stays out of both timers and the comparison isolates
// the re-evaluation work. Each iteration alternates the insert and
// the delete direction so every advance does real work. Tracked in the
// committed BENCH_eval.json baseline and gated by CI's benchcheck;
// cmd/experiments -run incremental asserts the >= 10× speedup and the
// diff-vs-oracle equivalence on the same workloads.

import (
	"context"
	"fmt"
	"testing"

	"cqapprox/internal/workload"
)

// incrBenchCase is one query/relation pair of the incremental
// benchmark: the deltas touch Rel, which the query joins on.
type incrBenchCase struct {
	name string
	q    func() *BoundQuery // fresh bound query on the N-sized bench db
	rel  string
}

func incrBenchCases(b *testing.B, engine *Engine, db *Database) []incrBenchCase {
	ctx := context.Background()
	bind := func(qsrc string) func() *BoundQuery {
		return func() *BoundQuery {
			q, err := Parse(qsrc)
			if err != nil {
				b.Fatal(err)
			}
			p, err := engine.PrepareExact(ctx, q)
			if err != nil {
				b.Fatal(err)
			}
			return p.Bind(db)
		}
	}
	return []incrBenchCase{
		{"chain3", bind("Q(x0) :- E(x0,x1), E(x1,x2), E(x2,x3)"), "E"},
		{"star3", bind("Q(c) :- R1(c,l1), R2(c,l2), R3(c,l3)"), "R1"},
	}
}

func BenchmarkIncrementalEval(b *testing.B) {
	ctx := context.Background()
	engine := NewEngine()
	const n = 3000
	db0 := Snapshot(workload.EvalBenchDB(n))
	for _, c := range incrBenchCases(b, engine, db0) {
		// One fresh fact, outside the generated value range: db1 is db0
		// with the fact present. Even iterations advance db0 -> db1
		// (insert), odd ones db1 -> db0 (delete).
		ins := NewDelta().Insert(c.rel, n+7, n+8)
		del := NewDelta().Delete(c.rel, n+7, n+8)
		db1, err := db0.Update(ins)
		if err != nil {
			b.Fatal(err)
		}

		b.Run(fmt.Sprintf("Delta/%s/N%d", c.name, n), func(b *testing.B) {
			ie, err := c.q().Incremental(ctx)
			if err != nil {
				b.Fatal(err)
			}
			if !ie.Supported() {
				b.Fatalf("%s: plan does not support incremental maintenance", c.name)
			}
			// One full cycle outside the timer warms both snapshots'
			// view and index caches.
			if _, err := ie.Advance(ctx, db1, ins); err != nil {
				b.Fatal(err)
			}
			if _, err := ie.Advance(ctx, db0, del); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				next, d := db1, ins
				if i%2 == 1 {
					next, d = db0, del
				}
				diff, err := ie.Advance(ctx, next, d)
				if err != nil {
					b.Fatal(err)
				}
				if diff.Fallback {
					b.Fatalf("fallback: %s", diff.Reason)
				}
			}
		})

		b.Run(fmt.Sprintf("FullReeval/%s/N%d", c.name, n), func(b *testing.B) {
			bq := c.q()
			if _, err := bq.Eval(ctx); err != nil { // warm db0's indexes
				b.Fatal(err)
			}
			if _, err := bq.Prepared().Bind(db1).Eval(ctx); err != nil { // warm db1's
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				db := db1
				if i%2 == 1 {
					db = db0
				}
				if _, err := bq.Prepared().Bind(db).Eval(ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
