module cqapprox

go 1.23
