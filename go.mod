module cqapprox

go 1.24
