// Package cqapprox reproduces Barceló, Libkin and Romero, "Efficient
// Approximations of Conjunctive Queries" (PODS 2012): computing
// approximations of conjunctive queries within tractable classes —
// acyclic queries, bounded treewidth TW(k), and bounded (generalized)
// hypertree width HTW(k)/GHTW(k) — together with the full substrate the
// paper builds on (homomorphisms, cores, containment, treewidth and
// hypertree-width decision procedures, and the Yannakakis and
// tree-decomposition evaluation engines).
//
// A C-approximation of a query Q is a query Q' from the tractable
// class C that is maximally contained in Q: it returns only correct
// answers, and no other C-query agrees with Q more often. Replacing Q
// by Q' turns |D|^O(|Q|) evaluation into O(|D|·|Q'|) (acyclic) or
// O(|D|^{k+1}) (treewidth k).
//
// The expensive work — minimization and the NP-hard approximation
// search — is static: it depends only on the query, never on the data.
// The API is built around that split. An Engine prepares a query once
// (parse → minimize → approximate → plan) and caches the result; the
// returned PreparedQuery then evaluates cheaply on any number of
// databases, concurrently, with context cancellation and streaming
// answers.
//
// Quick start:
//
//	engine := cqapprox.NewEngine()
//	q := cqapprox.MustParse("Q(x) :- E(x,y), E(y,z), E(z,x)")
//
//	// Pay the NP-hard search once. p's approximation is guaranteed:
//	// p.Approx() ⊆ q, acyclic, and no acyclic query sits strictly
//	// between them.
//	p, err := engine.Prepare(ctx, q, cqapprox.TW(1))
//
//	// Execute many times, on many databases, from many goroutines.
//	answers, err := p.Eval(ctx, db)        // O(|db|·|Q'|) via Yannakakis
//	ok, err := p.EvalBool(ctx, db)         // answer existence
//	for t := range p.Answers(ctx, db) { …} // stream without materialising
//
//	// Preparing an equivalent query again is a cache hit: no search.
//	p2, _ := engine.Prepare(ctx, cqapprox.MustParse("Q(a) :- E(a,b), E(b,c), E(c,a)"), cqapprox.TW(1))
//	_ = engine.CacheStats().Hits // 1
//
// The data side mirrors the split: register a database once and every
// evaluation probes the snapshot's persistent shared indexes instead
// of re-indexing per call (copy-on-write updates fork new versions):
//
//	d, _, _ := engine.RegisterDB("social", db)
//	ans, err := p.Bind(d).Eval(ctx) // probe-only once warm
//
// Errors are typed: errors.Is against ErrCanceled, ErrBudgetExceeded,
// ErrNotInClass, ErrNotAcyclic; parse errors carry positions
// (ParseError).
//
// The package-level free functions (Approximate, Eval, …) remain as
// thin wrappers over a shared default Engine. They are convenient for
// scripts and tests; long-running services should hold their own
// Engine and PreparedQuery values instead, which adds cancellation,
// typed errors and cache control.
//
// See DESIGN.md for the architecture, the package inventory, and the
// experiment index.
package cqapprox

import (
	"context"

	"cqapprox/internal/core"
	"cqapprox/internal/cq"
	"cqapprox/internal/eval"
	"cqapprox/internal/hom"
	"cqapprox/internal/htw"
	"cqapprox/internal/hypergraph"
	"cqapprox/internal/relstr"
	"cqapprox/internal/tw"
)

// Query is a conjunctive query in rule form (see Parse).
type Query = cq.Query

// Atom is a single relational atom of a query body.
type Atom = cq.Atom

// Structure is a finite relational structure: both databases and
// tableaux of queries.
type Structure = relstr.Structure

// Tuple is a database tuple / query answer.
type Tuple = relstr.Tuple

// Answers is a deduplicated, sorted answer set.
type Answers = eval.Answers

// IndexStats snapshots the indexed join runtime's counters for one
// prepared query (see PreparedQuery.IndexStats) or, summed across the
// cache, for a whole engine (see CacheStats.Indexes).
type IndexStats = eval.IndexStats

// Class is a tractable class of CQs (TW(k), AC, HTW(k), GHTW(k)).
type Class = core.Class

// Options tunes the approximation search; see DefaultOptions.
type Options = core.Options

// TableauKind is the Theorem 5.1 trichotomy classification.
type TableauKind = core.TableauKind

// Trichotomy kinds (Theorem 5.1).
const (
	NonBipartite        = core.NonBipartite
	BipartiteUnbalanced = core.BipartiteUnbalanced
	BipartiteBalanced   = core.BipartiteBalanced
)

// NewStructure returns an empty relational structure.
func NewStructure() *Structure { return relstr.New() }

// Parse reads a query in rule notation, e.g.
// "Q(x) :- E(x,y), E(y,z), E(z,x)".
func Parse(src string) (*Query, error) { return cq.Parse(src) }

// MustParse is Parse panicking on error.
func MustParse(src string) *Query { return cq.MustParse(src) }

// FromTableau converts a structure with a distinguished tuple into the
// CQ whose tableau it is (the converse of Query.Tableau).
func FromTableau(s *Structure, dist []int) *Query { return cq.FromTableau(s, dist, nil) }

// TW returns the class of queries of treewidth ≤ k (graph-based).
func TW(k int) Class { return core.TW(k) }

// AC returns the class of acyclic queries (hypergraph-based).
func AC() Class { return core.AC() }

// HTW returns the class of queries of hypertree width ≤ k.
func HTW(k int) Class { return core.HTW(k) }

// GHTW returns the class of queries of generalized hypertree width ≤ k.
func GHTW(k int) Class { return core.GHTW(k) }

// DefaultOptions returns the documented approximation-search defaults.
func DefaultOptions() Options { return core.DefaultOptions() }

// Approximate returns one minimized C-approximation of q.
//
// It is a thin wrapper over the default Engine: the search result is
// cached, so repeated calls with equivalent queries skip the search.
// Services should prefer an explicit Engine and PreparedQuery, which
// add context cancellation and cache control.
func Approximate(q *Query, c Class, opt Options) (*Query, error) {
	p, err := defaultEngine.PrepareOpt(context.Background(), q, c, opt)
	if err != nil {
		return nil, err
	}
	return p.Approx(), nil
}

// ApproximateCtx is Approximate under a context: cancellation aborts
// the Bell-number search with an ErrCanceled-wrapped error instead of
// running it to completion.
func ApproximateCtx(ctx context.Context, q *Query, c Class, opt Options) (*Query, error) {
	p, err := defaultEngine.PrepareOpt(ctx, q, c, opt)
	if err != nil {
		return nil, err
	}
	return p.Approx(), nil
}

// Approximations returns all minimized C-approximations of q up to
// equivalence (the paper's C-APPR_min(Q)). Like Approximate, it is a
// cached wrapper over the default Engine.
func Approximations(q *Query, c Class, opt Options) ([]*Query, error) {
	p, err := defaultEngine.PrepareOpt(context.Background(), q, c, opt)
	if err != nil {
		return nil, err
	}
	return p.Approximations(), nil
}

// ApproximationsCtx is Approximations under a context; see
// ApproximateCtx.
func ApproximationsCtx(ctx context.Context, q *Query, c Class, opt Options) ([]*Query, error) {
	p, err := defaultEngine.PrepareOpt(ctx, q, c, opt)
	if err != nil {
		return nil, err
	}
	return p.Approximations(), nil
}

// CountApproximations returns |C-APPR_min(q)|.
func CountApproximations(q *Query, c Class, opt Options) (int, error) {
	p, err := defaultEngine.PrepareOpt(context.Background(), q, c, opt)
	if err != nil {
		return 0, err
	}
	return len(p.approxes), nil
}

// IsApproximation decides whether cand is a C-approximation of q
// (the DP-complete decision problem of Section 4.3; exact for
// graph-based classes).
func IsApproximation(q, cand *Query, c Class, opt Options) (bool, error) {
	return core.IsApproximation(q, cand, c, opt)
}

// Overapproximate returns one minimized C-overapproximation of q: a
// C-query minimally containing q (all of q's answers plus possibly
// extra ones) — the dual notion the paper's conclusions pose as future
// work, here solved over atom-subset candidates (complete for
// graph-based classes).
func Overapproximate(q *Query, c Class, opt Options) (*Query, error) {
	return core.Overapproximate(q, c, opt)
}

// Overapproximations returns all minimized C-overapproximations of q up
// to equivalence (see Overapproximate).
func Overapproximations(q *Query, c Class, opt Options) ([]*Query, error) {
	return core.Overapproximations(q, c, opt)
}

// IsOverapproximation decides whether cand is a C-overapproximation of
// q (exact for graph-based classes).
func IsOverapproximation(q, cand *Query, c Class, opt Options) (bool, error) {
	return core.IsOverapproximation(q, cand, c, opt)
}

// Trivial returns the paper's Q_trivial for q's schema and head arity.
func Trivial(q *Query) *Query { return core.Trivial(q) }

// TrivialBipartite returns Q_triv2 (tableau K_2^↔).
func TrivialBipartite() *Query { return core.TrivialBipartite() }

// ClassifyGraphTableau classifies a graph query's tableau per the
// trichotomy of Theorem 5.1.
func ClassifyGraphTableau(q *Query) (TableauKind, error) {
	return core.ClassifyGraphTableau(q)
}

// HasLoopFreeTWkApproximation implements the Theorem 5.8/5.10
// dichotomy via (k+1)-colorability.
func HasLoopFreeTWkApproximation(q *Query, k int) (bool, error) {
	return core.HasLoopFreeTWkApproximation(q, k)
}

// EquivalentToClass reports whether q is equivalent to some query of
// the class, via the approximation oracle (Proposition 4.11).
func EquivalentToClass(q *Query, c Class, opt Options) (bool, error) {
	return core.EquivalentToClass(q, c, opt)
}

// Contained reports q1 ⊆ q2 (Chandra–Merlin).
func Contained(q1, q2 *Query) bool { return hom.Contained(q1, q2) }

// Equivalent reports q1 ≡ q2.
func Equivalent(q1, q2 *Query) bool { return hom.Equivalent(q1, q2) }

// Minimize returns the canonical minimal query equivalent to q (its
// tableau is the core of T_q).
func Minimize(q *Query) *Query { return hom.Minimize(q) }

// IsMinimized reports whether q's tableau is a core.
func IsMinimized(q *Query) bool { return hom.IsMinimized(q) }

// Eval evaluates q on db with the best applicable engine (Yannakakis
// for acyclic queries, backtracking otherwise).
//
// It is a thin wrapper over the default Engine: the query's plan (and
// minimization) is prepared and cached on first use. Services should
// prefer Engine.PrepareExact and PreparedQuery.Eval, which add context
// cancellation and streaming.
func Eval(q *Query, db *Structure) Answers {
	p, err := defaultEngine.PrepareExact(context.Background(), q)
	if err != nil {
		// Legacy compatibility: the free function predates validation
		// and never rejected a query — keep evaluating directly when
		// Prepare refuses one. Engine users get the typed error instead.
		return eval.Eval(q, db)
	}
	// Plan evaluation only errors through ctx, which Background never
	// cancels.
	ans, _ := p.Eval(context.Background(), db)
	return ans
}

// EvalCtx is Eval under a context, with errors surfaced instead of
// swallowed: preparation failures (validation, cancellation) and
// evaluation cancellation come back typed (errors.Is against
// ErrCanceled etc.) where Eval silently drops them for legacy
// compatibility. Like Eval it runs on the default Engine's cache.
func EvalCtx(ctx context.Context, q *Query, db *Structure) (Answers, error) {
	p, err := defaultEngine.PrepareExact(ctx, q)
	if err != nil {
		return nil, err
	}
	return p.Eval(ctx, db)
}

// EvalBool evaluates a Boolean query (or answer-existence). Like Eval,
// it is a cached wrapper over the default Engine.
func EvalBool(q *Query, db *Structure) bool {
	p, err := defaultEngine.PrepareExact(context.Background(), q)
	if err != nil {
		// Legacy compatibility — see Eval.
		return eval.EvalBool(q, db)
	}
	ok, _ := p.EvalBool(context.Background(), db)
	return ok
}

// EvalBoolCtx is EvalBool under a context, with errors surfaced; see
// EvalCtx.
func EvalBoolCtx(ctx context.Context, q *Query, db *Structure) (bool, error) {
	p, err := defaultEngine.PrepareExact(ctx, q)
	if err != nil {
		return false, err
	}
	return p.EvalBool(ctx, db)
}

// Yannakakis evaluates an acyclic query in O(|db|·|q|) plus output
// cost; it fails on cyclic queries.
func Yannakakis(q *Query, db *Structure) (Answers, error) { return eval.Yannakakis(q, db) }

// YannakakisCtx is Yannakakis under a context.
func YannakakisCtx(ctx context.Context, q *Query, db *Structure) (Answers, error) {
	return eval.YannakakisCtx(ctx, q, db)
}

// NaiveEval evaluates q by backtracking search (|db|^O(|q|)).
func NaiveEval(q *Query, db *Structure) Answers { return eval.Naive(q, db) }

// NaiveEvalCtx is NaiveEval under a context.
func NaiveEvalCtx(ctx context.Context, q *Query, db *Structure) (Answers, error) {
	return eval.NaiveCtx(ctx, q, db)
}

// EvalByTreeDecomposition evaluates q through an optimal tree
// decomposition (O(|db|^{k+1}) for treewidth k).
func EvalByTreeDecomposition(q *Query, db *Structure) (Answers, error) {
	return eval.ByTreeDecomposition(q, db)
}

// EvalByTreeDecompositionCtx is EvalByTreeDecomposition under a
// context.
func EvalByTreeDecompositionCtx(ctx context.Context, q *Query, db *Structure) (Answers, error) {
	return eval.ByTreeDecompositionCtx(ctx, q, db)
}

// Treewidth returns the treewidth of q (of its Gaifman graph).
func Treewidth(q *Query) int { return tw.StructureTreewidth(q.Tableau().S) }

// IsAcyclic reports α-acyclicity of q's hypergraph.
func IsAcyclic(q *Query) bool { return hypergraph.AcyclicStructure(q.Tableau().S) }

// HypertreeWidth returns the hypertree width of q's hypergraph.
func HypertreeWidth(q *Query) int { return htw.StructureWidth(q.Tableau().S) }
