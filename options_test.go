package cqapprox

import (
	"context"
	"errors"
	"slices"
	"testing"

	"cqapprox/internal/workload"
)

// smokeGraph is the three-edge graph E = {(1,2),(2,1),(2,2)} the server
// smoke tests use.
func smokeGraph() *Structure {
	db := NewStructure()
	db.Add("E", 1, 2)
	db.Add("E", 2, 1)
	db.Add("E", 2, 2)
	return db
}

func equalTuples(a []Tuple, b Answers) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// The ranked option surface end to end on the public API: ordered
// evaluation with early termination, descending, limit-only
// truncation, streaming equivalents, and the bound-query forms.
func TestEvalOptionsRanked(t *testing.T) {
	engine := NewEngine()
	ctx := context.Background()
	db := smokeGraph()
	p, err := engine.PrepareExact(ctx, MustParse("Q(x,y,z) :- E(x,y), E(y,z)"))
	if err != nil {
		t.Fatal(err)
	}

	ans, err := p.Eval(ctx, db, WithOrder("z", "y", "x"), WithLimit(3))
	if err != nil {
		t.Fatal(err)
	}
	want := Answers{{1, 2, 1}, {2, 2, 1}, {2, 1, 2}}
	if !equalTuples([]Tuple(ans), want) {
		t.Fatalf("ranked Eval = %v, want %v", ans, want)
	}

	// Descending of the full key is the reverse of ascending.
	asc, err := p.Eval(ctx, db, WithOrder("z", "y", "x"))
	if err != nil {
		t.Fatal(err)
	}
	desc, err := p.Eval(ctx, db, WithOrder("z", "y", "x"), WithDescending())
	if err != nil {
		t.Fatal(err)
	}
	rev := slices.Clone([]Tuple(asc))
	slices.Reverse(rev)
	if !equalTuples(rev, desc) {
		t.Fatalf("descending is not the reverse of ascending:\n  asc  %v\n  desc %v", asc, desc)
	}

	// Limit-only: the first k of the canonical sorted order.
	full, err := p.Eval(ctx, db)
	if err != nil {
		t.Fatal(err)
	}
	top2, err := p.Eval(ctx, db, WithLimit(2))
	if err != nil {
		t.Fatal(err)
	}
	if !equalTuples([]Tuple(top2), full[:2]) {
		t.Fatalf("limit-only Eval = %v, want %v", top2, full[:2])
	}

	// The ordered stream delivers the same sequence as ranked Eval.
	var streamed []Tuple
	seq, errf := p.AnswersErr(ctx, db, WithOrder("z", "y", "x"), WithLimit(3))
	for tup := range seq {
		streamed = append(streamed, tup)
	}
	if err := errf(); err != nil {
		t.Fatal(err)
	}
	if !equalTuples(streamed, want) {
		t.Fatalf("ranked stream = %v, want %v", streamed, want)
	}

	// Limit-only stream: an arbitrary prefix of exactly k answers.
	n := 0
	for range p.Answers(ctx, db, WithLimit(2)) {
		n++
	}
	if n != 2 {
		t.Fatalf("limit-only stream delivered %d answers, want 2", n)
	}

	// Bound-query forms agree.
	d, _, err := engine.RegisterDB("smoke", db)
	if err != nil {
		t.Fatal(err)
	}
	bans, err := p.Bind(d).Eval(ctx, WithOrder("z", "y", "x"), WithLimit(3))
	if err != nil {
		t.Fatal(err)
	}
	if !equalTuples([]Tuple(bans), want) {
		t.Fatalf("bound ranked Eval = %v, want %v", bans, want)
	}
	streamed = streamed[:0]
	bseq, berrf := p.Bind(d).AnswersErr(ctx, WithOrder("z", "y", "x"), WithLimit(3))
	for tup := range bseq {
		streamed = append(streamed, tup)
	}
	if err := berrf(); err != nil {
		t.Fatal(err)
	}
	if !equalTuples(streamed, want) {
		t.Fatalf("bound ranked stream = %v, want %v", streamed, want)
	}

	if st := p.IndexStats(); st.RankedEvals == 0 {
		t.Fatalf("ranked evaluations left no RankedEvals trace: %+v", st)
	}
}

// Invalid order variables surface ErrBadOrder from every ordered entry
// point: Eval returns it, the streams yield nothing and report it from
// the terminal-error accessor.
func TestEvalOptionsBadOrder(t *testing.T) {
	engine := NewEngine()
	ctx := context.Background()
	db := smokeGraph()
	p, err := engine.PrepareExact(ctx, MustParse("Q(x,y) :- E(x,y)"))
	if err != nil {
		t.Fatal(err)
	}

	if _, err := p.Eval(ctx, db, WithOrder("nope")); !errors.Is(err, ErrBadOrder) {
		t.Fatalf("unknown order var: got %v, want ErrBadOrder", err)
	}
	if _, err := p.Eval(ctx, db, WithOrder("x", "x")); !errors.Is(err, ErrBadOrder) {
		t.Fatalf("repeated order var: got %v, want ErrBadOrder", err)
	}
	seq, errf := p.AnswersErr(ctx, db, WithOrder("nope"))
	for range seq {
		t.Fatal("invalid order yielded an answer")
	}
	if err := errf(); !errors.Is(err, ErrBadOrder) {
		t.Fatalf("stream with unknown order var: got %v, want ErrBadOrder", err)
	}
}

// WithEvalParallelism is the per-call equivalent of the deprecated
// Parallel view: identical answers, with or without ranking, and it
// composes with the counting family (shared option config).
func TestEvalOptionsParallelism(t *testing.T) {
	engine := NewEngine()
	ctx := context.Background()
	db := workload.EvalBenchDB(300)
	p, err := engine.PrepareExact(ctx, workload.ChainQuery(4))
	if err != nil {
		t.Fatal(err)
	}

	serial, err := p.Eval(ctx, db)
	if err != nil {
		t.Fatal(err)
	}
	viaOption, err := p.Eval(ctx, db, WithEvalParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	viaView, err := p.Parallel(4).Eval(ctx, db)
	if err != nil {
		t.Fatal(err)
	}
	if !equalTuples([]Tuple(viaOption), serial) || !equalTuples([]Tuple(viaView), serial) {
		t.Fatalf("parallel answers diverge: serial %d, option %d, view %d",
			len(serial), len(viaOption), len(viaView))
	}

	// Ranked + parallel still matches ranked serial.
	rs, err := p.Eval(ctx, db, WithDescending(), WithLimit(10))
	if err != nil {
		t.Fatal(err)
	}
	rp, err := p.Eval(ctx, db, WithDescending(), WithLimit(10), WithEvalParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	if !equalTuples([]Tuple(rp), rs) {
		t.Fatalf("ranked parallel = %v, ranked serial = %v", rp, rs)
	}

	// Shared plumbing: WithTrace and WithEvalParallelism compose on a
	// counting call exactly like on an evaluation.
	res, err := p.Count(ctx, db, WithTrace(), WithEvalParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("WithTrace on Count left no trace")
	}
	if res.Count != uint64(len(serial)) {
		t.Fatalf("parallel traced Count = %d, want %d", res.Count, len(serial))
	}
}
