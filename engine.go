package cqapprox

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"cqapprox/internal/core"
	"cqapprox/internal/cqerr"
	"cqapprox/internal/eval"
	"cqapprox/internal/hom"
	"cqapprox/internal/obs"
)

// Engine is the long-lived entry point for services: it owns a cache of
// prepared queries keyed by the canonical form of (query, class,
// options), so the expensive static work — minimization and the
// Bell-number approximation search — is paid once per distinct query
// and every later Prepare of an equivalent query is a map lookup.
//
// An Engine is safe for concurrent use. Concurrent Prepares of the same
// key are deduplicated: one goroutine runs the search, the others wait
// for its result (unless their own context expires first).
//
// The zero value is not usable; construct with NewEngine.
type Engine struct {
	opt        Options // search defaults used by Prepare
	maxEntries int     // cache capacity; least-recently-used evicted beyond it
	par        int     // default evaluation worker budget (≤1 = serial); see WithParallelism

	mu      sync.Mutex
	cache   map[string]*list.Element // key → element in lru (Value: *cacheEntry)
	lru     *list.List               // front = most recently used
	pending map[string]*inflight
	hits    uint64
	misses  uint64

	// keyMemo maps a cheap syntactic normal form of (q, c, opt) to the
	// expensive canonical cache key, so repeated Prepares of a
	// syntactically identical query (the free Eval wrapper's hot path)
	// skip the canonical-form search. Pure accelerator: a memo miss
	// just recomputes; entries stay valid across ResetCache. Bounded
	// like the cache, with its own LRU list.
	keyMemo map[string]*list.Element // syn → element in memoLRU (Value: *memoEntry)
	memoLRU *list.List

	// The database registry: named snapshots with persistent shared
	// indexes (see RegisterDB in db.go). Bounded by maxDBs with LRU
	// eviction. Guarded by its own mutex so registry traffic — in
	// particular an UpdateDB copy-on-write fork, which is O(touched
	// relation) — never stalls prepare-cache hits or vice versa.
	dbMu         sync.Mutex
	maxDBs       int
	dbs          map[string]*list.Element // name → element in dbLRU (Value: *dbEntry)
	dbLRU        *list.List
	dbHits       uint64
	dbMisses     uint64
	dbRegistered uint64
	dbUpdates    uint64
	dbEvictions  uint64
}

// cacheEntry is the value stored in the cache's LRU list.
type cacheEntry struct {
	key string
	p   *PreparedQuery
}

// memoEntry is the value stored in the key memo's LRU list.
type memoEntry struct {
	syn string // syntactic normal form (memo key)
	key string // canonical cache key
}

// inflight tracks one in-progress Prepare so concurrent callers of the
// same key wait instead of duplicating the search.
type inflight struct {
	done chan struct{}
	p    *PreparedQuery
	err  error
}

// EngineOption configures NewEngine.
type EngineOption func(*Engine)

// WithOptions sets the approximation-search options Prepare uses
// (PrepareOpt overrides them per call).
func WithOptions(opt Options) EngineOption {
	return func(e *Engine) { e.opt = opt }
}

// WithCacheCapacity bounds the number of cached prepared queries;
// beyond it the least-recently-used entry is evicted. n <= 0 means
// unbounded.
func WithCacheCapacity(n int) EngineOption {
	return func(e *Engine) { e.maxEntries = n }
}

// WithParallelism sets the engine's default evaluation worker budget:
// every PreparedQuery the engine hands out evaluates morsel-driven
// parallel on up to n workers unless overridden per query with
// PreparedQuery.Parallel (or per binding with BoundQuery.Parallel).
// n <= 1 (the NewEngine default) keeps evaluations serial — the right
// choice for servers running many evaluations concurrently; a budget
// helps latency when single evaluations over large databases have
// cores to themselves. Answers are identical either way.
func WithParallelism(n int) EngineOption {
	return func(e *Engine) { e.par = n }
}

// DefaultCacheCapacity is the prepared-query cache bound of NewEngine
// unless overridden with WithCacheCapacity.
const DefaultCacheCapacity = 1024

// NewEngine returns an Engine with the documented search defaults and a
// cache bounded at DefaultCacheCapacity entries.
func NewEngine(opts ...EngineOption) *Engine {
	e := &Engine{
		opt:        DefaultOptions(),
		maxEntries: DefaultCacheCapacity,
		maxDBs:     DefaultDBCapacity,
		cache:      map[string]*list.Element{},
		lru:        list.New(),
		pending:    map[string]*inflight{},
		keyMemo:    map[string]*list.Element{},
		memoLRU:    list.New(),
	}
	e.newDBRegistry()
	for _, o := range opts {
		o(e)
	}
	return e
}

// defaultEngine backs the package-level free functions.
var defaultEngine = NewEngine()

// Default returns the process-wide engine used by the package-level
// Approximate/Eval free functions. Services should prefer their own
// NewEngine so cache capacity and options are under their control.
func Default() *Engine { return defaultEngine }

// Options returns the engine's configured search defaults (the options
// Prepare and PrepareExact use when none are given explicitly).
func (e *Engine) Options() Options { return e.opt }

// CacheStats is a snapshot of an engine's cache counters.
type CacheStats struct {
	Hits    uint64 // Prepares answered without re-running the search
	Misses  uint64 // Prepares that ran the full pipeline
	Entries int    // prepared queries currently cached

	// Indexes sums the indexed join runtime's counters over every
	// currently cached plan: hash indexes built over databases, rows
	// driven through index probes, and evaluations run. Counters of
	// evicted entries leave the sum with them — like Entries, this is
	// a view of the live cache, not an eternal total.
	Indexes IndexStats
}

// CacheStats returns a snapshot of the cache counters.
func (e *Engine) CacheStats() CacheStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := CacheStats{Hits: e.hits, Misses: e.misses, Entries: len(e.cache)}
	for el := e.lru.Front(); el != nil; el = el.Next() {
		is := el.Value.(*cacheEntry).p.IndexStats()
		s.Indexes.IndexBuilds += is.IndexBuilds
		s.Indexes.IndexProbes += is.IndexProbes
		s.Indexes.Evals += is.Evals
		s.Indexes.ParallelEvals += is.ParallelEvals
		s.Indexes.RankedEvals += is.RankedEvals
		s.Indexes.RankFallbacks += is.RankFallbacks
		s.Indexes.ExactCounts += is.ExactCounts
		s.Indexes.EstimatedCounts += is.EstimatedCounts
		s.Indexes.SampleBatches += is.SampleBatches
		s.Indexes.IncrementalEvals += is.IncrementalEvals
		s.Indexes.IncrFallbacks += is.IncrFallbacks
	}
	return s
}

// ResetCache drops every cached prepared query and zeroes the
// prepare-cache hit/miss counters — nothing else. Two things
// deliberately survive: the syntactic key memo (a pure accelerator
// whose entries stay valid — see keyMemo) and the database registry
// with its snapshots, warm indexes and counters (registered data is
// not cache; dropping it would break eval-by-name callers). In-flight
// Prepares are unaffected (they re-insert on completion). Use ResetAll
// to clear the memo and the registry too.
func (e *Engine) ResetCache() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cache = map[string]*list.Element{}
	e.lru = list.New()
	e.hits, e.misses = 0, 0
}

// ResetAll is ResetCache plus everything it leaves behind: the
// syntactic key memo is emptied and the database registry is cleared
// — every registration dropped, all registry counters zeroed.
// Snapshots already handed out remain valid (they own their data);
// only the engine forgets them. In-flight Prepares still re-insert on
// completion.
func (e *Engine) ResetAll() {
	e.mu.Lock()
	e.cache = map[string]*list.Element{}
	e.lru = list.New()
	e.hits, e.misses = 0, 0
	e.keyMemo = map[string]*list.Element{}
	e.memoLRU = list.New()
	e.mu.Unlock()

	e.dbMu.Lock()
	e.dbs = map[string]*list.Element{}
	e.dbLRU = list.New()
	e.dbHits, e.dbMisses, e.dbRegistered, e.dbUpdates, e.dbEvictions = 0, 0, 0, 0, 0
	e.dbMu.Unlock()
}

// CacheKey returns the cache key Prepare uses for (q, c, opt): a stable
// identifier for the prepared query, equal across alpha-equivalent
// inputs. A nil c keys the exact (unapproximated) preparation, matching
// PrepareExact called with the engine's default options (see Options).
// The key is an opaque byte string — transport layers should encode it
// (e.g. base64) before putting it on a wire.
//
// Over-budget class inputs are refused with ErrBudgetExceeded exactly
// as Prepare refuses them — before any canonical-form work is spent on
// a query the search would reject anyway.
func (e *Engine) CacheKey(q *Query, c Class, opt Options) (string, error) {
	if err := q.Validate(); err != nil {
		return "", err
	}
	if err := budgetCheck(q, c, opt); err != nil {
		return "", err
	}
	return e.memoizedKey(q, c, opt), nil
}

// budgetCheck is the shared up-front MaxVars refusal for class
// preparations: the Bell-number search (and even keying work) must not
// start on inputs it would refuse. Exact preparations pass — they have
// no search to protect and deliberately stay usable over budget.
func budgetCheck(q *Query, c Class, opt Options) error {
	if c == nil {
		return nil
	}
	if n, max := q.NumVars(), opt.WithDefaults().MaxVars; n > max {
		return core.BudgetError(n, max)
	}
	return nil
}

// Cached returns the prepared query stored under key (as returned by
// CacheKey), if any. A found entry counts as a use for LRU eviction but
// not as a cache hit in CacheStats — only Prepare records hits. Note
// the returned PreparedQuery carries the first preparer's query
// identity; use Prepare when the caller's own query text matters.
func (e *Engine) Cached(key string) (*PreparedQuery, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	el, ok := e.cache[key]
	if !ok {
		return nil, false
	}
	e.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).p, true
}

// Prepare runs the full static pipeline for q once — validate,
// minimize, search for the C-approximation, choose an evaluation plan —
// and returns a PreparedQuery that evaluates the approximation on any
// database via Eval/EvalBool/Answers. Results are cached: preparing a
// query equal up to variable renaming and atom order (same class and
// options) is a cache hit and skips the search entirely.
//
// ctx cancels the search mid-way with an ErrCanceled-wrapped error;
// cancellation is polled inside the candidate sweep and the
// homomorphism searches, so it is observed promptly even on large
// inputs.
func (e *Engine) Prepare(ctx context.Context, q *Query, c Class) (*PreparedQuery, error) {
	return e.PrepareOpt(ctx, q, c, e.opt)
}

// PrepareOpt is Prepare with explicit search options.
func (e *Engine) PrepareOpt(ctx context.Context, q *Query, c Class, opt Options) (*PreparedQuery, error) {
	if c == nil {
		return nil, fmt.Errorf("cqapprox: Prepare requires a class (use PrepareExact for plain evaluation)")
	}
	return e.prepare(ctx, q, c, opt)
}

// PrepareExact prepares q for evaluation as-is, with no approximation:
// the pipeline is validate → minimize → plan. Use it to serve the exact
// query through the same cached, context-aware, streaming surface.
func (e *Engine) PrepareExact(ctx context.Context, q *Query) (*PreparedQuery, error) {
	return e.prepare(ctx, q, nil, e.opt)
}

// The cache key for (q, c, opt) — built in memoizedKey — pairs the
// query's canonical form (CanonicalKey: equal iff alpha-equivalent)
// with the class identified by concrete type plus Name() (so distinct
// Class implementations sharing a display name never share entries;
// within one type, Name() must identify the class's semantics — see
// core.Class) and the options normalized by core's own rule (values
// core treats identically, e.g. MaxVars 0 vs the default, collide).

// memoizedKey returns the canonical cache key for (q, c, opt), going
// through the syntactic-key memo: only the first Prepare of each
// syntactic form pays the canonical-form search. The memo is bounded at
// four times the cache capacity with LRU eviction.
func (e *Engine) memoizedKey(q *Query, c Class, opt Options) string {
	class := "exact"
	if c != nil {
		class = fmt.Sprintf("%T:%s", c, c.Name())
	}
	opt = opt.WithDefaults()
	syn := fmt.Sprintf("%s\x00%s\x00%d/%d/%d",
		synNormalForm(q), class, opt.MaxVars, opt.MaxExtraAtoms, opt.FreshVars)
	e.mu.Lock()
	if el, ok := e.keyMemo[syn]; ok {
		e.memoLRU.MoveToFront(el)
		k := el.Value.(*memoEntry).key
		e.mu.Unlock()
		return k
	}
	e.mu.Unlock()
	key := fmt.Sprintf("%s\x00%s\x00%d/%d/%d",
		q.CanonicalKey(), class, opt.MaxVars, opt.MaxExtraAtoms, opt.FreshVars)
	e.mu.Lock()
	if _, ok := e.keyMemo[syn]; !ok {
		e.keyMemo[syn] = e.memoLRU.PushFront(&memoEntry{syn: syn, key: key})
		for limit := 4 * e.maxEntries; e.maxEntries > 0 && len(e.keyMemo) > limit; {
			back := e.memoLRU.Back()
			e.memoLRU.Remove(back)
			delete(e.keyMemo, back.Value.(*memoEntry).syn)
		}
	}
	e.mu.Unlock()
	return key
}

// synNormalForm is the cheap first-level key: variables renamed by
// first occurrence, atoms sorted, head name dropped. Not invariant
// under atom reordering (that is CanonicalKey's job) — merely a fast
// discriminator for byte-identical repeat queries.
func synNormalForm(q *Query) string {
	n := q.Rename() // returns a fresh copy; safe to overwrite the name
	n.Name = "Q"
	return n.SortAtoms().String()
}

func (e *Engine) prepare(ctx context.Context, q *Query, c Class, opt Options) (*PreparedQuery, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if ctx.Err() != nil {
		return nil, cqerr.Canceled(ctx)
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	// Refuse over-budget class inputs before the canonical-key work:
	// the search would refuse them anyway, and keying is not free.
	if err := budgetCheck(q, c, opt); err != nil {
		return nil, err
	}
	key := e.memoizedKey(q, c, opt)
	for {
		e.mu.Lock()
		if el, ok := e.cache[key]; ok {
			e.lru.MoveToFront(el)
			e.hits++
			p := el.Value.(*cacheEntry).p
			e.mu.Unlock()
			return p.forCaller(q), nil
		}
		if fl, ok := e.pending[key]; ok {
			e.mu.Unlock()
			select {
			case <-fl.done:
			case <-ctx.Done():
				return nil, cqerr.Canceled(ctx)
			}
			if fl.err == nil && fl.p != nil {
				e.mu.Lock()
				e.hits++
				e.mu.Unlock()
				return fl.p.forCaller(q), nil
			}
			// The leader failed. If it failed because of *its* context
			// we retry (ours may still be live); a genuine error is
			// shared by everyone waiting.
			if fl.err == nil || errIsCanceled(fl.err) {
				if ctx.Err() != nil {
					return nil, cqerr.Canceled(ctx)
				}
				continue
			}
			return nil, fl.err
		}
		fl := &inflight{done: make(chan struct{})}
		e.pending[key] = fl
		e.misses++
		e.mu.Unlock()

		// Run the pipeline panic-safely: whatever happens, the pending
		// entry is removed and fl.done closed, so waiters never block on
		// a leader that died. A panic re-raises after cleanup; waiters
		// see (nil, nil) and retry as leaders themselves.
		func() {
			defer func() {
				e.mu.Lock()
				delete(e.pending, key)
				if fl.err == nil && fl.p != nil {
					e.insertLocked(key, fl.p)
				}
				e.mu.Unlock()
				close(fl.done)
			}()
			fl.p, fl.err = e.build(ctx, q, c, opt)
		}()
		return fl.p, fl.err
	}
}

// insertLocked adds a cache entry as most-recently-used, evicting the
// least-recently-used beyond capacity. Callers hold e.mu.
func (e *Engine) insertLocked(key string, p *PreparedQuery) {
	if el, ok := e.cache[key]; ok {
		el.Value.(*cacheEntry).p = p
		e.lru.MoveToFront(el)
		return
	}
	e.cache[key] = e.lru.PushFront(&cacheEntry{key: key, p: p})
	for e.maxEntries > 0 && len(e.cache) > e.maxEntries {
		back := e.lru.Back()
		e.lru.Remove(back)
		delete(e.cache, back.Value.(*cacheEntry).key)
	}
}

// build runs the uncached pipeline: minimize, approximate (unless
// exact), plan.
func (e *Engine) build(ctx context.Context, q *Query, c Class, opt Options) (*PreparedQuery, error) {
	// Enforce the variable budget before minimization: minimization
	// itself runs exponential homomorphism searches, so an over-budget
	// query must be refused up front, exactly as core.Approximate does.
	// Exact prepares have no search to protect, but skip minimizing
	// over-budget queries too — the plain plan evaluates q as given,
	// matching the pre-engine Eval behavior.
	maxVars := opt.WithDefaults().MaxVars
	if n := q.NumVars(); n > maxVars {
		if c != nil {
			return nil, core.BudgetError(n, maxVars)
		}
		min := q.Rename() // canonical variable names, like the normal path
		min.Name = q.Name
		p := &PreparedQuery{src: q.Clone(), min: min, opt: opt, par: e.par}
		p.chosen = p.min
		t0 := time.Now()
		p.plan = eval.NewPlan(p.chosen)
		p.prep = []obs.Phase{{Name: "plan", NS: time.Since(t0).Nanoseconds()}}
		return p, nil
	}
	t0 := time.Now()
	min, err := hom.MinimizeCtx(ctx, q)
	if err != nil {
		return nil, err
	}
	minimizeNS := time.Since(t0).Nanoseconds()
	// Canonicalize the minimized query's variable names so a cached
	// entry carries nothing of the first preparer's identity: every
	// caller (after forCaller rebinds the head name) sees the same
	// deterministic rendering regardless of preparation order.
	min = min.Rename()
	min.Name = q.Name
	p := &PreparedQuery{
		src:   q.Clone(),
		min:   min,
		class: c,
		opt:   opt,
		par:   e.par,
	}
	p.prep = []obs.Phase{{Name: "minimize", NS: minimizeNS}}
	target := min
	if c != nil {
		t0 = time.Now()
		res, err := core.ApproximationsWithStatsCtx(ctx, min, c, opt)
		if err != nil {
			return nil, err
		}
		if len(res.Queries) == 0 {
			return nil, fmt.Errorf("cqapprox: no %s-query is contained in %v: %w", c.Name(), q, cqerr.ErrNotInClass)
		}
		p.prep = append(p.prep, obs.Phase{Name: "search", NS: time.Since(t0).Nanoseconds()})
		p.approxes = res.Queries
		p.inspected = res.CandidatesInspected
		target = res.Queries[0]
	}
	p.chosen = target
	t0 = time.Now()
	p.plan = eval.NewPlan(target)
	p.prep = append(p.prep, obs.Phase{Name: "plan", NS: time.Since(t0).Nanoseconds()})
	return p, nil
}

// errIsCanceled reports whether err wraps the cancellation sentinel.
func errIsCanceled(err error) bool {
	return errors.Is(err, cqerr.ErrCanceled)
}
