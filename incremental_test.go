package cqapprox

import (
	"context"
	"testing"

	"cqapprox/internal/workload"
)

// applyDiff replays a diff onto a copy of the previous answer set and
// compares against want — added/removed must reconstruct the new set
// exactly.
func applyDiff(t *testing.T, prev Answers, d *AnswerDiff, want Answers) {
	t.Helper()
	set := map[string]Tuple{}
	for _, a := range prev {
		set[string(a.Key())] = a
	}
	for _, r := range d.Removed {
		if _, ok := set[string(r.Key())]; !ok {
			t.Fatalf("diff removes %v which was not present", r)
		}
		delete(set, string(r.Key()))
	}
	for _, a := range d.Added {
		if _, ok := set[string(a.Key())]; ok {
			t.Fatalf("diff adds %v which was already present", a)
		}
		set[string(a.Key())] = a
	}
	if len(set) != len(want) {
		t.Fatalf("replayed %d answers, want %d", len(set), len(want))
	}
	for _, w := range want {
		if _, ok := set[string(w.Key())]; !ok {
			t.Fatalf("replayed set misses %v", w)
		}
	}
}

func TestIncrementalEvalMaintainsAnswers(t *testing.T) {
	ctx := context.Background()
	e := NewEngine()
	p, err := e.PrepareExact(ctx, workload.ChainQuery(3))
	if err != nil {
		t.Fatal(err)
	}
	db, _, err := e.RegisterDB("g", workload.EvalBenchDB(200))
	if err != nil {
		t.Fatal(err)
	}
	ie, err := p.Bind(db).Incremental(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !ie.Supported() {
		t.Fatal("chain plan should support incremental maintenance")
	}
	fresh, err := p.Bind(db).Eval(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(ie.Answers()) != len(fresh) {
		t.Fatalf("initial maintained set has %d answers, fresh eval %d", len(ie.Answers()), len(fresh))
	}

	// Drive updates through the engine registry and advance with the
	// atomic (prev, next, delta) triple from ApplyDB.
	deltas := []*Delta{
		NewDelta().Insert("E", 1000, 1001).Insert("E", 1001, 1002).Insert("E", 1002, 1003),
		NewDelta().Delete("E", 0, 1),
		NewDelta().Delete("E", 1000, 1001).Insert("E", 7, 0),
	}
	for i, d := range deltas {
		prev := ie.Answers()
		u, err := e.ApplyDB("g", d)
		if err != nil {
			t.Fatal(err)
		}
		if u.Prev.Version() != ie.Version() {
			t.Fatalf("step %d: ApplyDB prev version %d, state %d", i, u.Prev.Version(), ie.Version())
		}
		diff, err := ie.Advance(ctx, u.Next, u.Delta)
		if err != nil {
			t.Fatal(err)
		}
		if diff.Fallback {
			t.Fatalf("step %d: unexpected fallback: %s", i, diff.Reason)
		}
		want, err := p.Bind(u.Next).Eval(ctx)
		if err != nil {
			t.Fatal(err)
		}
		applyDiff(t, prev, diff, want)
		if diff.Version != u.Next.Version() || ie.Version() != u.Next.Version() {
			t.Fatalf("step %d: versions diverge: diff %d, state %d, db %d",
				i, diff.Version, ie.Version(), u.Next.Version())
		}
	}
	st := e.CacheStats()
	if st.Indexes.IncrementalEvals != uint64(len(deltas)) || st.Indexes.IncrFallbacks != 0 {
		t.Fatalf("cache stats = %+v, want %d incremental evals", st.Indexes, len(deltas))
	}

	// A wholesale replacement (nil delta) resynchronises with an exact
	// diff and counts as a fallback.
	prev := ie.Answers()
	repl, _, err := e.RegisterDB("g", workload.EvalBenchDB(50))
	if err != nil {
		t.Fatal(err)
	}
	diff, err := ie.Advance(ctx, repl, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !diff.Fallback {
		t.Fatal("replacement should report a fallback resync")
	}
	want, err := p.Bind(repl).Eval(ctx)
	if err != nil {
		t.Fatal(err)
	}
	applyDiff(t, prev, diff, want)
	if st := e.CacheStats(); st.Indexes.IncrFallbacks != 1 {
		t.Fatalf("fallbacks = %d, want 1", st.Indexes.IncrFallbacks)
	}
}

// Update forks the snapshot and advances in one step, without the
// engine registry.
func TestIncrementalEvalUpdate(t *testing.T) {
	ctx := context.Background()
	e := NewEngine()
	p, err := e.PrepareExact(ctx, workload.ChainQuery(2))
	if err != nil {
		t.Fatal(err)
	}
	s := NewStructure()
	s.Add("E", 1, 2)
	s.Add("E", 2, 3)
	ie, err := p.Bind(Snapshot(s)).Incremental(ctx)
	if err != nil {
		t.Fatal(err)
	}
	next, diff, err := ie.Update(ctx, NewDelta().Insert("E", 3, 4))
	if err != nil {
		t.Fatal(err)
	}
	if diff.Empty() || diff.Fallback {
		t.Fatalf("diff = %+v", diff)
	}
	want, err := p.Bind(next).Eval(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(ie.Answers()) != len(want) {
		t.Fatalf("maintained %d answers, fresh %d", len(ie.Answers()), len(want))
	}
	if ie.Database() != next {
		t.Fatal("Database() should return the advanced snapshot")
	}
}
