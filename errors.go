package cqapprox

import (
	"errors"

	"cqapprox/internal/cq"
	"cqapprox/internal/cqerr"
	"cqapprox/internal/eval"
)

// The typed error taxonomy. All long-running entry points wrap one of
// these sentinels, so callers branch with errors.Is instead of string
// matching:
//
//	p, err := engine.Prepare(ctx, q, cqapprox.TW(1))
//	switch {
//	case errors.Is(err, cqapprox.ErrCanceled):        // ctx expired
//	case errors.Is(err, cqapprox.ErrBudgetExceeded):  // raise Options.MaxVars
//	case errors.Is(err, cqapprox.ErrNotInClass):      // no C-query ⊆ q
//	}
var (
	// ErrCanceled: the context expired before the search or evaluation
	// finished. errors.Is also matches the context's own cause
	// (context.Canceled or context.DeadlineExceeded).
	ErrCanceled = cqerr.ErrCanceled

	// ErrBudgetExceeded: the input query exceeds Options.MaxVars; the
	// Bell-number search was refused rather than risking a
	// super-exponential run.
	ErrBudgetExceeded = cqerr.ErrBudgetExceeded

	// ErrNotInClass: no query of the requested class is contained in
	// the input (possible only for incompatible head arities).
	ErrNotInClass = cqerr.ErrNotInClass

	// ErrNotAcyclic: Yannakakis was invoked on a cyclic query.
	ErrNotAcyclic = eval.ErrNotAcyclic

	// ErrCountOverflow: an exact answer count does not fit in uint64.
	ErrCountOverflow = eval.ErrCountOverflow

	// ErrBadOrder: a WithOrder variable is not a distinct head variable
	// of the query. The wrapping error names the offending variable.
	ErrBadOrder = errors.New("cqapprox: order variable is not a head variable")
)

// ParseError is the positional syntax error returned by Parse: Offset
// is a byte offset into the input, Line and Col are 1-based. Obtain it
// with errors.As:
//
//	var perr *cqapprox.ParseError
//	if errors.As(err, &perr) { fmt.Println(perr.Line, perr.Col) }
type ParseError = cq.ParseError
