package cqapprox

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"cqapprox/internal/workload"
)

func testDB() *Structure {
	db := NewStructure()
	edges := [][2]int{{1, 2}, {2, 3}, {3, 1}, {4, 5}, {5, 4}, {7, 7}}
	for _, e := range edges {
		db.Add("E", e[0], e[1])
	}
	return db
}

// Preparing the same query twice must not re-run the approximation
// search: the second Prepare is a cache hit, observable both through
// CacheStats and through pointer identity of the PreparedQuery.
func TestEngineCacheHit(t *testing.T) {
	e := NewEngine()
	ctx := context.Background()
	q := MustParse("Q(x) :- E(x,y), E(y,z), E(z,x)")

	p1, err := e.Prepare(ctx, q, TW(1))
	if err != nil {
		t.Fatal(err)
	}
	if s := e.CacheStats(); s.Hits != 0 || s.Misses != 1 || s.Entries != 1 {
		t.Fatalf("after first Prepare: %+v", s)
	}
	if p1.CandidatesInspected() == 0 {
		t.Fatal("first Prepare should have run the search")
	}

	p2, err := e.Prepare(ctx, q, TW(1))
	if err != nil {
		t.Fatal(err)
	}
	if s := e.CacheStats(); s.Hits != 1 || s.Misses != 1 || s.Entries != 1 {
		t.Fatalf("after second Prepare: %+v", s)
	}
	if p2.CandidatesInspected() != 0 {
		t.Fatalf("cache hit must inspect no candidates, got %d", p2.CandidatesInspected())
	}
	if p1.Approx().String() != p2.Approx().String() {
		t.Fatal("cache hit returned a different approximation")
	}

	// Alpha-renamed, atom-reordered variant of the same query: still a
	// hit thanks to canonical cache keying — but Query() echoes the
	// caller's own text, not the first-prepared variant's.
	q3 := MustParse("P(a) :- E(c,a), E(a,b), E(b,c)")
	p3, err := e.Prepare(ctx, q3, TW(1))
	if err != nil {
		t.Fatal(err)
	}
	if s := e.CacheStats(); s.Hits != 2 {
		t.Fatalf("alpha-equivalent query must hit the cache, got %+v", s)
	}
	if p3.Query().String() != q3.String() {
		t.Fatalf("cache hit must echo the caller's query: got %v, want %v", p3.Query(), q3)
	}
	if p3.Approx().Name != "P_approx" || p3.Minimized().Name != "P" {
		t.Fatalf("cache hit must rename results after the caller's query: approx=%v minimized=%v",
			p3.Approx(), p3.Minimized())
	}
	// Deterministic rendering apart from the head name: variable names
	// are canonicalized at build time, so hit and miss agree.
	a1, a3 := p1.Approx(), p3.Approx()
	a3.Name = a1.Name
	if a1.String() != a3.String() {
		t.Fatalf("approximation rendering depends on preparation order: %v vs %v", a1, a3)
	}

	// Different class: a miss.
	if _, err := e.Prepare(ctx, q, TW(2)); err != nil {
		t.Fatal(err)
	}
	if s := e.CacheStats(); s.Misses != 2 || s.Entries != 2 {
		t.Fatalf("after TW(2) Prepare: %+v", s)
	}
}

func TestEnginePreparedEval(t *testing.T) {
	e := NewEngine()
	ctx := context.Background()
	q := MustParse("Q(x) :- E(x,y), E(y,z), E(z,x)")
	p, err := e.Prepare(ctx, q, TW(1))
	if err != nil {
		t.Fatal(err)
	}
	if !Contained(p.Approx(), q) {
		t.Fatal("approximation not contained in q")
	}
	if p.PlanMode() != "yannakakis" {
		t.Fatalf("TW(1) approximation should be acyclic, plan = %s", p.PlanMode())
	}
	db := testDB()
	approx, err := p.Eval(ctx, db)
	if err != nil {
		t.Fatal(err)
	}
	exact := NaiveEval(q, db)
	for _, tup := range approx {
		if !exact.Contains(tup) {
			t.Fatalf("unsound answer %v", tup)
		}
	}
	ok, err := p.EvalBool(ctx, db)
	if err != nil {
		t.Fatal(err)
	}
	if ok != (len(approx) > 0) {
		t.Fatalf("EvalBool=%v but %d answers", ok, len(approx))
	}
}

// PrepareExact serves the unapproximated query through the same cached
// prepared surface.
func TestEnginePrepareExact(t *testing.T) {
	e := NewEngine()
	ctx := context.Background()
	q := MustParse("Q(x,z) :- E(x,y), E(y,z)")
	p, err := e.PrepareExact(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if p.Class() != nil || p.Approximations() != nil {
		t.Fatal("exact prepare must not approximate")
	}
	db := testDB()
	got, err := p.Eval(ctx, db)
	if err != nil {
		t.Fatal(err)
	}
	want := NaiveEval(q, db)
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	// Same key → hit; also exercised by the free Eval wrapper.
	if _, err := e.PrepareExact(ctx, q); err != nil {
		t.Fatal(err)
	}
	if s := e.CacheStats(); s.Hits != 1 {
		t.Fatalf("want exact-prepare cache hit, got %+v", s)
	}
}

// Streaming answers must agree with materialised evaluation, support
// early break, and stop on cancellation.
func TestPreparedAnswersStreaming(t *testing.T) {
	e := NewEngine()
	ctx := context.Background()
	q := MustParse("Q(x,z) :- E(x,y), E(y,z)")
	p, err := e.PrepareExact(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	db := testDB()
	want, err := p.Eval(ctx, db)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	n := 0
	for tup := range p.Answers(ctx, db) {
		if !want.Contains(tup) {
			t.Fatalf("streamed wrong answer %v", tup)
		}
		k := tup.String()
		if seen[k] {
			t.Fatalf("duplicate streamed answer %v", tup)
		}
		seen[k] = true
		n++
	}
	if n != len(want) {
		t.Fatalf("streamed %d answers, want %d", n, len(want))
	}
	// Early break must not hang or panic.
	for range p.Answers(ctx, db) {
		break
	}
	// A pre-cancelled context yields nothing, and AnswersErr
	// distinguishes that truncation from a genuinely empty answer set.
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	seq2, errf := p.AnswersErr(canceled, db)
	for range seq2 {
		t.Fatal("cancelled stream must not yield")
	}
	if err := errf(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("truncated stream must report ErrCanceled, got %v", err)
	}
	seq3, errf3 := p.AnswersErr(ctx, db)
	for range seq3 {
	}
	if err := errf3(); err != nil {
		t.Fatalf("complete stream must report nil, got %v", err)
	}
}

// Cancellation mid-search must surface ErrCanceled promptly, and the
// failed Prepare must not poison the cache.
func TestPrepareCancellation(t *testing.T) {
	e := NewEngine(WithOptions(Options{MaxVars: 12}))
	// C9 against TW(1): a Bell(9)-sized candidate sweep, several
	// seconds uncancelled.
	q := workload.CycleQuery(9)

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := e.Prepare(ctx, q, TW(1))
		errc <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	start := time.Now()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("want ErrCanceled, got %v", err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cause should be context.Canceled: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancellation not observed within 5s")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("cancellation took %v after cancel", d)
	}
	if s := e.CacheStats(); s.Entries != 0 {
		t.Fatalf("failed Prepare must not be cached: %+v", s)
	}

	// The engine stays usable after a cancelled search.
	p, err := e.Prepare(context.Background(), MustParse("Q() :- E(x,y), E(y,x)"), TW(1))
	if err != nil || p == nil {
		t.Fatalf("engine unusable after cancellation: %v", err)
	}
}

// Deadline expiry maps to ErrCanceled too (with DeadlineExceeded as
// the cause).
func TestPrepareDeadline(t *testing.T) {
	e := NewEngine(WithOptions(Options{MaxVars: 12}))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := e.Prepare(ctx, workload.CycleQuery(9), TW(1))
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want ErrCanceled/DeadlineExceeded, got %v", err)
	}
}

// Concurrent Prepares of one key must run the search once; concurrent
// Evals must be race-free (run with -race).
func TestEngineConcurrent(t *testing.T) {
	e := NewEngine()
	q := MustParse("Q(x) :- E(x,y), E(y,z), E(z,x)")
	db := testDB()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := context.Background()
			p, err := e.Prepare(ctx, q, TW(1))
			if err != nil {
				t.Error(err)
				return
			}
			for j := 0; j < 3; j++ {
				if _, err := p.Eval(ctx, db); err != nil {
					t.Error(err)
					return
				}
				for range p.Answers(ctx, db) {
				}
			}
		}()
	}
	wg.Wait()
	s := e.CacheStats()
	if s.Misses != 1 {
		t.Fatalf("concurrent Prepare ran the search %d times", s.Misses)
	}
	if s.Hits != 15 {
		t.Fatalf("want 15 hits, got %+v", s)
	}
}

func TestEngineCacheEviction(t *testing.T) {
	e := NewEngine(WithCacheCapacity(2))
	ctx := context.Background()
	for i := 2; i <= 4; i++ {
		if _, err := e.Prepare(ctx, workload.CycleQuery(i), TW(1)); err != nil {
			t.Fatal(err)
		}
	}
	if s := e.CacheStats(); s.Entries != 2 || s.Misses != 3 {
		t.Fatalf("want 2 entries after eviction, got %+v", s)
	}
	// The first (evicted) query must re-run the search.
	if _, err := e.Prepare(ctx, workload.CycleQuery(2), TW(1)); err != nil {
		t.Fatal(err)
	}
	if s := e.CacheStats(); s.Misses != 4 {
		t.Fatalf("evicted entry should miss, got %+v", s)
	}
}

// Eviction is LRU, not FIFO: a recently-hit entry must survive an
// insertion that exceeds capacity, at the expense of the least recently
// used one.
func TestEngineCacheLRU(t *testing.T) {
	e := NewEngine(WithCacheCapacity(2))
	ctx := context.Background()
	qA, qB, qC := workload.CycleQuery(2), workload.CycleQuery(3), workload.CycleQuery(4)
	for _, q := range []*Query{qA, qB} {
		if _, err := e.Prepare(ctx, q, TW(1)); err != nil {
			t.Fatal(err)
		}
	}
	// Touch A: it becomes most recently used, so B is now the LRU
	// entry. Under FIFO, A (the oldest insertion) would be evicted
	// next regardless of this hit.
	if _, err := e.Prepare(ctx, qA, TW(1)); err != nil {
		t.Fatal(err)
	}
	if s := e.CacheStats(); s.Hits != 1 || s.Misses != 2 {
		t.Fatalf("after touching A: %+v", s)
	}
	// Insert C: capacity 2 forces one eviction — B, not A.
	if _, err := e.Prepare(ctx, qC, TW(1)); err != nil {
		t.Fatal(err)
	}
	if s := e.CacheStats(); s.Entries != 2 || s.Misses != 3 {
		t.Fatalf("after inserting C: %+v", s)
	}
	if _, err := e.Prepare(ctx, qA, TW(1)); err != nil {
		t.Fatal(err)
	}
	if s := e.CacheStats(); s.Hits != 2 {
		t.Fatalf("recently-hit A must survive the eviction (FIFO would drop it): %+v", s)
	}
	if _, err := e.Prepare(ctx, qB, TW(1)); err != nil {
		t.Fatal(err)
	}
	if s := e.CacheStats(); s.Misses != 4 {
		t.Fatalf("least-recently-used B must have been evicted: %+v", s)
	}

	// Cached (the by-key lookup the server's eval-by-key path uses)
	// counts as a use too, and CacheKey agrees with Prepare's keying.
	key, err := e.CacheKey(qA, TW(1), e.Options())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.Cached(key); !ok {
		t.Fatal("Cached must find the entry Prepare stored")
	}
	if _, err := e.Prepare(ctx, workload.CycleQuery(5), TW(1)); err != nil {
		t.Fatal(err)
	}
	if _, ok := e.Cached(key); !ok {
		t.Fatal("Cached lookup must protect A from the next eviction")
	}
	hitsBefore := e.CacheStats().Hits
	if _, ok := e.Cached(key); !ok {
		t.Fatal("entry vanished")
	}
	if got := e.CacheStats().Hits; got != hitsBefore {
		t.Fatalf("Cached must not count as a Prepare hit: %d -> %d", hitsBefore, got)
	}
}

func TestTypedErrors(t *testing.T) {
	e := NewEngine()
	ctx := context.Background()

	// Budget: an 11-variable query against the default MaxVars 10. The
	// refusal must be immediate — before minimization runs.
	big := workload.CycleQuery(11)
	start := time.Now()
	_, err := e.Prepare(ctx, big, TW(1))
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("budget refusal took %v; must fail before any search", d)
	}

	// PrepareExact has no search to protect: an over-budget query still
	// prepares (unminimized) and evaluates like the plain Eval path.
	pe, err := e.PrepareExact(ctx, big)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := pe.Minimized().String(), big.Rename().String(); got != want {
		t.Fatalf("over-budget exact prepare must skip minimization (canonically renamed): got %v, want %v", got, want)
	}
	if _, err := pe.Eval(ctx, testDB()); err != nil {
		t.Fatal(err)
	}

	// Parse errors carry positions.
	_, err = Parse("Q(x) :- E(x,")
	var perr *ParseError
	if !errors.As(err, &perr) {
		t.Fatalf("want *ParseError, got %T: %v", err, err)
	}
	if perr.Offset != len("Q(x) :- E(x,") || perr.Line != 1 {
		t.Fatalf("bad position: %+v", perr)
	}

	// Yannakakis on a cyclic query: ErrNotAcyclic.
	_, err = Yannakakis(MustParse("Q() :- E(x,y), E(y,z), E(z,x)"), testDB())
	if !errors.Is(err, ErrNotAcyclic) {
		t.Fatalf("want ErrNotAcyclic, got %v", err)
	}
}

// The free functions must keep working as wrappers over the default
// engine — and therefore benefit from its cache.
func TestFreeFunctionsUseDefaultEngine(t *testing.T) {
	q := MustParse(fmt.Sprintf("Q(%s) :- E(%s,free1), E(free1,free2), E(free2,%s)", "free0", "free0", "free0"))
	before := Default().CacheStats()
	a1, err := Approximate(q, TW(1), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Approximate(q, TW(1), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !Equivalent(a1, a2) {
		t.Fatal("repeated Approximate disagrees")
	}
	after := Default().CacheStats()
	if after.Hits <= before.Hits {
		t.Fatalf("second Approximate should hit the default cache: before %+v after %+v", before, after)
	}
}

// Index stats flow from the indexed runtime through the shared plan to
// PreparedQuery.IndexStats and, summed over the cache, to CacheStats.
func TestIndexStats(t *testing.T) {
	e := NewEngine()
	ctx := context.Background()
	q := MustParse("Q(x) :- E(x,y), E(y,z), E(z,x)")

	p, err := e.Prepare(ctx, q, TW(1))
	if err != nil {
		t.Fatal(err)
	}
	if s := p.IndexStats(); s.Evals != 0 {
		t.Fatalf("stats before any Eval: %+v", s)
	}
	db := testDB()
	if _, err := p.Eval(ctx, db); err != nil {
		t.Fatal(err)
	}
	s1 := p.IndexStats()
	if s1.Evals != 1 || s1.IndexBuilds == 0 || s1.IndexProbes == 0 {
		t.Fatalf("stats after Eval: %+v", s1)
	}
	if _, err := p.EvalBool(ctx, db); err != nil {
		t.Fatal(err)
	}
	if s2 := p.IndexStats(); s2.Evals != 2 || s2.IndexBuilds <= s1.IndexBuilds {
		t.Fatalf("stats after EvalBool: %+v", s2)
	}

	// A cache hit shares the plan, so its evaluations accumulate on the
	// same counters; the engine's CacheStats sums the live cache.
	p2, err := e.Prepare(ctx, q, TW(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p2.Eval(ctx, db); err != nil {
		t.Fatal(err)
	}
	if s := p.IndexStats(); s.Evals != 3 {
		t.Fatalf("shared plan should aggregate callers: %+v", s)
	}
	if cs := e.CacheStats(); cs.Indexes.Evals != 3 || cs.Indexes.IndexBuilds != p.IndexStats().IndexBuilds {
		t.Fatalf("engine cache stats: %+v", cs.Indexes)
	}
}
