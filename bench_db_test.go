package cqapprox

// E20: the database snapshot API. BenchmarkRegisteredDB measures warm
// BoundQuery.Eval — prepared queries evaluating against a registered
// snapshot whose index cache is already hot — over the same workloads
// and sizes as BenchmarkIndexedJoin, so the two benchmark families
// quantify exactly the cost the snapshot moves out of the per-call
// path (atom materialisation + per-call index builds). Tracked in the
// committed BENCH_eval.json baseline and gated by CI's benchcheck.
// cmd/experiments -run registereddb reports the speedup side by side.

import (
	"context"
	"fmt"
	"testing"

	"cqapprox/internal/workload"
)

func BenchmarkRegisteredDB(b *testing.B) {
	ctx := context.Background()
	engine := NewEngine()
	dbs := map[int]*Database{}
	for _, n := range []int{300, 1000, 3000} {
		d, _, err := engine.RegisterDB(fmt.Sprintf("bench%d", n), workload.EvalBenchDB(n))
		if err != nil {
			b.Fatal(err)
		}
		dbs[n] = d
	}
	for _, c := range workload.EvalBenchSuite() {
		p := preparedBenchCase(b, engine, c)
		for _, n := range c.Sizes {
			bq := p.Bind(dbs[n])
			if _, err := bq.Eval(ctx); err != nil { // warm the shared indexes outside the timer
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s/N%d", c.Name, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					ans, err := bq.Eval(ctx)
					if err != nil {
						b.Fatal(err)
					}
					if len(ans) == 0 {
						b.Fatal("no answers")
					}
				}
			})
		}
	}
}
