// Package client is the typed Go client for the cqapproxd HTTP API.
// It speaks exactly the wire types of package api, so anything the
// server can say, the client can decode — including the NDJSON answer
// stream and the stable error codes.
//
//	c := client.New("http://localhost:8080")
//	prep, err := c.Prepare(ctx, api.PrepareRequest{
//		Query: "Q(x) :- E(x,y), E(y,z), E(z,x)", Class: "TW1",
//	})
//	res, err := c.Eval(ctx, api.EvalRequest{Key: prep.Key, Database: db})
//
// Server-side failures surface as *client.APIError carrying the HTTP
// status and the decoded api.ErrorInfo.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"iter"
	"net/http"
	"strings"
	"time"

	"cqapprox/api"
)

// APIError is a non-2xx response decoded into the wire error envelope.
type APIError struct {
	Status int
	Info   api.ErrorInfo
}

func (e *APIError) Error() string {
	return fmt.Sprintf("cqapproxd: %s (%s, http %d)", e.Info.Message, e.Info.Code, e.Status)
}

// Client calls one cqapproxd server. The zero value is not usable;
// construct with New.
type Client struct {
	baseURL string
	http    *http.Client
}

// sharedTransport is the pooled keep-alive transport every client
// built by New shares. http.DefaultTransport caps idle connections at
// two per host — under scatter-gather fan-out (a coordinator hammering
// a handful of peers) that forces a fresh TCP handshake on nearly
// every call and, at load, exhausts ephemeral ports on TIME_WAIT
// sockets. One process-wide pool with a per-host allowance sized for
// fan-out traffic keeps coordinator→peer connections warm.
var sharedTransport = func() *http.Transport {
	t, ok := http.DefaultTransport.(*http.Transport)
	if !ok {
		return &http.Transport{MaxIdleConns: 512, MaxIdleConnsPerHost: 128}
	}
	t = t.Clone()
	t.MaxIdleConns = 512
	t.MaxIdleConnsPerHost = 128
	return t
}()

// Options tunes a client built by NewWith. The zero value matches New.
type Options struct {
	// Transport replaces the shared pooled transport (test doubles,
	// custom TLS, per-cluster pools). Nil keeps the shared pool.
	Transport http.RoundTripper
	// Timeout is the whole-call timeout of the underlying http.Client.
	// Zero means no client-side timeout (per-request contexts and the
	// server's deadlines still apply).
	Timeout time.Duration
}

// New returns a client for the server at baseURL (scheme://host[:port],
// no trailing slash needed). All clients built by New share one pooled
// keep-alive transport; use NewWith or WithHTTPClient to replace it.
func New(baseURL string) *Client {
	return NewWith(baseURL, Options{})
}

// NewWith is New with explicit options.
func NewWith(baseURL string, opts Options) *Client {
	rt := opts.Transport
	if rt == nil {
		rt = sharedTransport
	}
	return &Client{
		baseURL: strings.TrimRight(baseURL, "/"),
		http:    &http.Client{Transport: rt, Timeout: opts.Timeout},
	}
}

// WithHTTPClient replaces the underlying *http.Client (timeouts,
// transports, test doubles).
func (c *Client) WithHTTPClient(h *http.Client) *Client {
	c.http = h
	return c
}

// do posts body to path and decodes a 200 response into out (or any
// other status into an *APIError).
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.baseURL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeAPIError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func decodeAPIError(resp *http.Response) error {
	var envelope api.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil || envelope.Error == nil {
		return &APIError{Status: resp.StatusCode, Info: api.ErrorInfo{
			Code: api.CodeInternal, Message: fmt.Sprintf("undecodable error body (http %d)", resp.StatusCode),
		}}
	}
	return &APIError{Status: resp.StatusCode, Info: *envelope.Error}
}

// Prepare runs (or cache-hits) the static pipeline on the server and
// returns the plan summary, including the Key for later evaluations.
func (c *Client) Prepare(ctx context.Context, req api.PrepareRequest) (*api.PrepareResponse, error) {
	var out api.PrepareResponse
	if err := c.do(ctx, http.MethodPost, "/v1/prepare", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Explain returns the server's EXPLAIN view of a prepared (by Key) or
// inline query: the structured static plan plus its stable text
// rendering. Explaining an inline query prepares it server-side (or
// hits the prepare cache); no database is involved.
func (c *Client) Explain(ctx context.Context, req api.ExplainRequest) (*api.ExplainResponse, error) {
	var out api.ExplainResponse
	if err := c.do(ctx, http.MethodPost, "/v1/explain", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// RegisterDB registers (or replaces) a named database snapshot on the
// server. Later Eval/EvalBool/Stream requests may name it via
// api.EvalRequest.DB instead of shipping the database inline; those
// evaluations run against the server-side snapshot's persistent shared
// indexes.
func (c *Client) RegisterDB(ctx context.Context, req api.RegisterDBRequest) (*api.RegisterDBResponse, error) {
	var out api.RegisterDBResponse
	if err := c.do(ctx, http.MethodPost, "/v1/db", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Eval evaluates a prepared (by Key) or inline query on the request's
// database (inline, or registered by name via req.DB) and returns the
// materialized answer set. Set req.Parallelism to ask for a
// morsel-driven parallel evaluation (clamped server-side to its
// max-parallelism cap; answers identical at any setting). Set
// req.Order/req.Descending for ranked answers and req.Limit for only
// the first k of the order (early termination server-side where the
// plan admits the key).
func (c *Client) Eval(ctx context.Context, req api.EvalRequest) (*api.EvalResponse, error) {
	var out api.EvalResponse
	if err := c.do(ctx, http.MethodPost, "/v1/eval", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Count returns the number of answers without materializing them.
// With req.Estimate the server runs the sampling estimator under the
// request's epsilon/delta/seed knobs instead of exact counting; the
// response says which mode actually ran (exact shortcuts apply when
// the plan counts exactly for free).
func (c *Client) Count(ctx context.Context, req api.CountRequest) (*api.CountResponse, error) {
	var out api.CountResponse
	if err := c.do(ctx, http.MethodPost, "/v1/count", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// EvalBool reports answer existence only.
func (c *Client) EvalBool(ctx context.Context, req api.EvalRequest) (bool, error) {
	var out api.EvalBoolResponse
	if err := c.do(ctx, http.MethodPost, "/v1/eval/bool", req, &out); err != nil {
		return false, err
	}
	return out.Result, nil
}

// PeerRegisterDB pushes a shard slice (or a routed delta slice) of a
// sharded database to a peer node — the coordinator→peer half of the
// cluster protocol (POST /v1/peer/db). Not meant for end clients;
// peers store the slice under an internal shard-scoped name.
func (c *Client) PeerRegisterDB(ctx context.Context, req api.PeerDBRequest) (*api.RegisterDBResponse, error) {
	var out api.RegisterDBResponse
	if err := c.do(ctx, http.MethodPost, "/v1/peer/db", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// PeerEval runs one scatter-gather leg on a peer node (POST
// /v1/peer/eval): evaluate the forwarded query against the peer's
// shard slice of req.DB, in the mode the request selects.
func (c *Client) PeerEval(ctx context.Context, req api.PeerEvalRequest) (*api.PeerEvalResponse, error) {
	var out api.PeerEvalResponse
	if err := c.do(ctx, http.MethodPost, "/v1/peer/eval", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Stats fetches the server's cache and endpoint counters.
func (c *Client) Stats(ctx context.Context) (*api.StatsResponse, error) {
	var out api.StatsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Stream evaluates like Eval but consumes the server's NDJSON stream:
// the returned sequence yields answers as the server produces them,
// without waiting for — or materializing — the full set. Breaking out
// of the loop (or cancelling ctx) closes the response body, which
// cancels the server-side enumeration. Call the second return after
// the loop: nil means the stream completed (or the consumer broke);
// otherwise it is the transport failure or the server's terminal error
// line (an *APIError, e.g. code "canceled" on a server-side deadline).
// Set req.Order/req.Descending to stream in ranked order; with
// req.Limit the server ends the stream after Limit answer lines.
func (c *Client) Stream(ctx context.Context, req api.EvalRequest) (iter.Seq[[]int], func() error) {
	var terminal error
	seq := func(yield func([]int) bool) {
		buf, err := json.Marshal(req)
		if err != nil {
			terminal = err
			return
		}
		hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.baseURL+"/v1/stream", bytes.NewReader(buf))
		if err != nil {
			terminal = err
			return
		}
		hreq.Header.Set("Content-Type", "application/json")
		resp, err := c.http.Do(hreq)
		if err != nil {
			terminal = err
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			terminal = decodeAPIError(resp)
			return
		}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 64*1024), 16<<20)
		for sc.Scan() {
			line := bytes.TrimSpace(sc.Bytes())
			if len(line) == 0 {
				continue
			}
			if line[0] == '{' { // terminal error object from the server
				var envelope api.ErrorResponse
				if err := json.Unmarshal(line, &envelope); err == nil && envelope.Error != nil {
					terminal = &APIError{Status: http.StatusOK, Info: *envelope.Error}
				} else {
					terminal = fmt.Errorf("cqapproxd: undecodable stream trailer %q", line)
				}
				return
			}
			var tup []int
			if err := json.Unmarshal(line, &tup); err != nil {
				terminal = fmt.Errorf("cqapproxd: undecodable stream line %q: %w", line, err)
				return
			}
			if !yield(tup) {
				return // consumer broke: Body.Close cancels the server
			}
		}
		terminal = sc.Err()
	}
	return seq, func() error { return terminal }
}

// Subscribe opens a live query over a registered database (req.DB):
// the returned sequence yields the init frame (the full answer set in
// Added), then one exact diff frame per server-side update batch until
// the consumer breaks, ctx is cancelled, or the server ends the
// subscription. Breaking out of the loop closes the response body,
// which tears the subscription down server-side. Call the second
// return after the loop: nil means a clean end; otherwise it is the
// transport failure or the server's terminal frame error (an
// *APIError — e.g. code "slow_consumer" when the server's disconnect
// policy dropped this consumer; re-subscribe for a fresh init frame).
func (c *Client) Subscribe(ctx context.Context, req api.SubscribeRequest) (iter.Seq[api.DiffFrame], func() error) {
	var terminal error
	seq := func(yield func(api.DiffFrame) bool) {
		buf, err := json.Marshal(req)
		if err != nil {
			terminal = err
			return
		}
		hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.baseURL+"/v1/subscribe", bytes.NewReader(buf))
		if err != nil {
			terminal = err
			return
		}
		hreq.Header.Set("Content-Type", "application/json")
		resp, err := c.http.Do(hreq)
		if err != nil {
			terminal = err
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			terminal = decodeAPIError(resp)
			return
		}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 64*1024), 16<<20)
		for sc.Scan() {
			line := bytes.TrimSpace(sc.Bytes())
			if len(line) == 0 {
				continue
			}
			var f api.DiffFrame
			if err := json.Unmarshal(line, &f); err != nil {
				terminal = fmt.Errorf("cqapproxd: undecodable diff frame %q: %w", line, err)
				return
			}
			if f.Error != nil { // terminal frame: the server ended the subscription
				terminal = &APIError{Status: http.StatusOK, Info: *f.Error}
				return
			}
			if !yield(f) {
				return // consumer broke: Body.Close tears the subscription down
			}
		}
		terminal = sc.Err()
	}
	return seq, func() error { return terminal }
}
