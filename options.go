package cqapprox

import (
	"cqapprox/internal/count"
)

// The unified per-call option surface. Evaluation and counting share
// one internal option-config pattern: every knob is a function over
// optConfig, EvalOption and CountOption are aliases of the same
// underlying type, and the shared knobs (WithEvalParallelism,
// WithTrace) compose with either family. Knobs a call cannot honor are
// inert there: estimator accuracy knobs on Eval, ordering knobs on
// Count, WithTrace on Eval/Answers (whose signatures carry no trace —
// use EvalTrace, or Count's WithTrace, to observe one).

// optConfig is the resolved option set of one evaluation or counting
// call.
type optConfig struct {
	// Shared plumbing.
	trace  bool
	par    int
	parSet bool

	// Ranked evaluation (Eval/Answers).
	order []string
	desc  bool
	limit int

	// Counting accuracy (Count/EstimateCount).
	count count.Options
}

// EvalOption tunes one evaluation call (Eval, EvalBool, Answers,
// AnswersErr, and their BoundQuery equivalents).
type EvalOption = func(*optConfig)

// CountOption tunes Count and EstimateCount. It is the same underlying
// type as EvalOption: the shared knobs (WithEvalParallelism, WithTrace)
// apply to both families.
type CountOption = EvalOption

func optConfigOf(opts []EvalOption) optConfig {
	var c optConfig
	for _, opt := range opts {
		opt(&c)
	}
	return c
}

// parallelism resolves the call's worker budget: the option's value
// when WithEvalParallelism was given, otherwise the view default.
func (c *optConfig) parallelism(def int) int {
	if !c.parSet {
		return def
	}
	if c.par < 1 {
		return 1
	}
	return c.par
}

// ordered reports whether the call asked for a specific answer order
// (ranked enumeration, not just truncation).
func (c *optConfig) ordered() bool { return len(c.order) > 0 || c.desc }

// ranked reports whether the call needs the ranked machinery at all:
// an explicit order, a direction, or a limit worth terminating early
// for.
func (c *optConfig) ranked() bool { return c.ordered() || c.limit > 0 }

// WithOrder sorts the answers by the named head variables, most
// significant first (each must be a distinct head variable of the
// query); head positions not named are appended in query order to make
// the key total. With no WithOrder, ranked calls use the head's
// natural left-to-right order. Applies to Eval and Answers; Count and
// EvalBool ignore it.
func WithOrder(vars ...string) EvalOption {
	return func(c *optConfig) { c.order = append([]string{}, vars...) }
}

// WithDescending reverses the answer order (the full comparison flips,
// ties included). Applies to Eval and Answers.
func WithDescending() EvalOption {
	return func(c *optConfig) { c.desc = true }
}

// WithLimit stops the evaluation after the first k answers (in the
// requested order for Eval and ordered Answers; any-k for plain
// Answers streams, which keep their first-answer latency). k ≤ 0
// means unlimited. Lex-connex plans never pay for answers beyond the
// limit; untractable orders evaluate fully, sort, and truncate.
func WithLimit(k int) EvalOption {
	return func(c *optConfig) { c.limit = k }
}

// WithEvalParallelism runs the call morsel-driven parallel on up to n
// workers (n ≤ 1 means serial), overriding the view's budget
// (Parallel / the engine's WithParallelism) for this call only.
// Answers are byte-identical to serial evaluation. Applies to every
// evaluation and counting call.
func WithEvalParallelism(n int) EvalOption {
	return func(c *optConfig) { c.par = n; c.parSet = true }
}

// WithEpsilon sets the estimator's relative error target ε
// (default 0.1): with probability at least 1-δ the estimate is within
// a (1±ε) factor of the true count. Counting calls only.
func WithEpsilon(eps float64) CountOption {
	return func(c *optConfig) { c.count.Epsilon = eps }
}

// WithDelta sets the estimator's failure probability δ (default 0.05).
// Counting calls only.
func WithDelta(delta float64) CountOption {
	return func(c *optConfig) { c.count.Delta = delta }
}

// WithSeed fixes the estimator's random seed (default 1): identical
// prepared query, database, options and seed reproduce the estimate
// bit for bit. Counting calls only.
func WithSeed(seed int64) CountOption {
	return func(c *optConfig) { c.count.Seed = seed }
}

// WithMaxSamples caps the total samples one EstimateCount may draw
// (default 200000); batch sizes shrink to fit the cap. Counting calls
// only.
func WithMaxSamples(n int) CountOption {
	return func(c *optConfig) { c.count.MaxSamples = n }
}

// WithTrace attaches an execution trace to the call where the result
// can carry one: Count and EstimateCount report it in
// CountResult.Trace. Eval and Answers accept the option but have no
// trace slot — use EvalTrace for a traced evaluation. Off by default;
// untraced calls pay nothing for the machinery.
func WithTrace() CountOption {
	return func(c *optConfig) { c.trace = true }
}
