package cqapprox

// E22: the answer counting subsystem. BenchmarkCount measures warm
// BoundQuery.Count over the chain/star/cycle counting workloads — the
// full-join heads produce hundreds of thousands of answers at N=3000,
// all of which exact counting skips materializing (the -benchmem
// numbers stay flat in the answer count). BENCH_eval.json carries the
// baselines and CI's benchcheck gate compares against them;
// cmd/experiments -run count reports counting against full evaluation
// on the same workloads.

import (
	"context"
	"fmt"
	"testing"

	"cqapprox/internal/workload"
)

func BenchmarkCount(b *testing.B) {
	ctx := context.Background()
	engine := NewEngine()
	for _, c := range workload.CountBenchSuite() {
		p := preparedBenchCase(b, engine, c)
		for _, n := range c.Sizes {
			d, _, err := engine.RegisterDB(fmt.Sprintf("count%d", n), workload.EvalBenchDB(n))
			if err != nil {
				b.Fatal(err)
			}
			bound := p.Bind(d)
			res, err := bound.Count(ctx) // warm the snapshot caches
			if err != nil {
				b.Fatal(err)
			}
			if res.Count == 0 || res.Estimated {
				b.Fatalf("%s/N%d: warmup count = %+v", c.Name, n, res)
			}
			b.Run(fmt.Sprintf("%s/N%d", c.Name, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res, err := bound.Count(ctx)
					if err != nil {
						b.Fatal(err)
					}
					if res.Count == 0 {
						b.Fatal("zero count")
					}
				}
			})
		}
	}
}

// BenchmarkCountEstimate tracks the sampling estimator on the one
// counting workload whose head forces it (projecting the full-chain
// suite's shapes would shortcut to exact, so this uses the classic
// length-2 path projection at the largest size).
func BenchmarkCountEstimate(b *testing.B) {
	ctx := context.Background()
	engine := NewEngine()
	p, err := engine.PrepareExact(ctx, MustParse("Q(x,z) :- E(x,y), E(y,z)"))
	if err != nil {
		b.Fatal(err)
	}
	d, _, err := engine.RegisterDB("est", workload.EvalBenchDB(3000))
	if err != nil {
		b.Fatal(err)
	}
	bound := p.Bind(d)
	if _, err := bound.EstimateCount(ctx, WithSeed(1)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := bound.EstimateCount(ctx, WithSeed(int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		if !res.Estimated || res.Estimate == 0 {
			b.Fatalf("estimate = %+v", res)
		}
	}
}
