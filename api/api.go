// Package api defines the wire types of the cqapproxd HTTP/JSON API.
// The server (internal/server), the typed client (client), and the
// CLI's -json mode (cmd/cqapprox) all encode and decode exactly these
// types, so the three surfaces can never drift apart.
//
// Queries travel as strings in the library's rule notation
// ("Q(x) :- E(x,y)"); databases as a relation-name → tuple-list map;
// answers as plain integer tuples. Prepared queries are addressed by an
// opaque Key returned from /v1/prepare: the engine's canonical cache
// key, base64-encoded, stable across alpha-equivalent queries.
package api

import (
	"encoding/base64"
	"fmt"
	"strings"

	"cqapprox"
)

// Options mirrors cqapprox.Options on the wire. Fields are pointers so
// a request can override one knob while inheriting the server's
// configured defaults for the rest (0 is a meaningful value for
// MaxExtraAtoms/FreshVars, so absence must be distinguishable). A nil
// *Options means "all defaults".
type Options struct {
	MaxVars       *int `json:"max_vars,omitempty"`
	MaxExtraAtoms *int `json:"max_extra_atoms,omitempty"`
	FreshVars     *int `json:"fresh_vars,omitempty"`
}

// Int is a literal-pointer helper for building Options values.
func Int(n int) *int { return &n }

// ToOptions resolves o against the default options def: every absent
// field keeps def's value.
func (o *Options) ToOptions(def cqapprox.Options) cqapprox.Options {
	out := def
	if o == nil {
		return out
	}
	if o.MaxVars != nil {
		out.MaxVars = *o.MaxVars
	}
	if o.MaxExtraAtoms != nil {
		out.MaxExtraAtoms = *o.MaxExtraAtoms
	}
	if o.FreshVars != nil {
		out.FreshVars = *o.FreshVars
	}
	return out
}

// Database is a relational database on the wire: relation name →
// list of tuples. All tuples of one relation must have equal, nonzero
// length (the relation's arity).
type Database map[string][][]int

// ToStructure validates d and converts it to a relational structure.
func (d Database) ToStructure() (*cqapprox.Structure, error) {
	db := cqapprox.NewStructure()
	for rel, tuples := range d {
		if rel == "" {
			return nil, fmt.Errorf("database: empty relation name")
		}
		for i, t := range tuples {
			if len(t) == 0 {
				return nil, fmt.Errorf("database: relation %q tuple %d is empty", rel, i)
			}
			if len(t) != len(tuples[0]) {
				return nil, fmt.Errorf("database: relation %q mixes arities %d and %d",
					rel, len(tuples[0]), len(t))
			}
			db.Add(rel, t...)
		}
	}
	return db, nil
}

// FromAnswers converts an answer set to its wire form (never nil, so
// an empty set encodes as [] rather than null).
func FromAnswers(a cqapprox.Answers) [][]int {
	out := make([][]int, len(a))
	for i, t := range a {
		out[i] = []int(t)
	}
	return out
}

// PrepareRequest is the body of POST /v1/prepare. Exactly one of Class
// (a class name, see ParseClass) or Exact must be set: Exact prepares
// the query itself, without approximation. Options may accompany a
// Class only — exact preparations always run under the server's
// defaults (that is how the engine keys them), and the server rejects
// the combination rather than silently ignoring the options.
type PrepareRequest struct {
	Query     string   `json:"query"`
	Class     string   `json:"class,omitempty"`
	Exact     bool     `json:"exact,omitempty"`
	Options   *Options `json:"options,omitempty"`
	TimeoutMS int64    `json:"timeout_ms,omitempty"`
}

// PrepareResponse summarizes a prepared query: the static plan the
// engine cached, plus the Key that later Eval/Stream requests may pass
// instead of re-sending the query.
type PrepareResponse struct {
	Key                 string   `json:"key"`
	Query               string   `json:"query"`
	Minimized           string   `json:"minimized"`
	Class               string   `json:"class,omitempty"`
	Approximation       string   `json:"approximation,omitempty"`
	Approximations      []string `json:"approximations,omitempty"`
	Plan                string   `json:"plan"`
	CandidatesInspected int      `json:"candidates_inspected"`
	CacheHit            bool     `json:"cache_hit"`
}

// NewPrepareResponse builds the wire summary of a prepared query. key
// is the already-encoded wire key (see EncodeKey); the cache-hit flag
// comes from the PreparedQuery itself, so it agrees with CacheStats
// even under concurrent preparation.
func NewPrepareResponse(p *cqapprox.PreparedQuery, key string) *PrepareResponse {
	resp := &PrepareResponse{
		Key:                 key,
		Query:               p.Query().String(),
		Minimized:           p.Minimized().String(),
		Plan:                p.PlanMode(),
		CandidatesInspected: p.CandidatesInspected(),
		CacheHit:            p.CacheHit(),
	}
	if c := p.Class(); c != nil {
		resp.Class = c.Name()
		resp.Approximation = p.Approx().String()
		for _, a := range p.Approximations() {
			resp.Approximations = append(resp.Approximations, a.String())
		}
	}
	return resp
}

// RegisterDBRequest is the body of POST /v1/db: register (or replace)
// the database under Name, or — with Delta instead of Database — apply
// a change set copy-on-write to the existing registration. Later
// eval/stream requests may then carry the name in EvalRequest.DB
// instead of re-shipping the data — and every evaluation against the
// registered snapshot shares its persistent index cache. Database and
// Delta are mutually exclusive; a Delta against an unregistered name
// fails with unknown_db. Both forms notify the name's /v1/subscribe
// watchers: a delta propagates incrementally, a replacement forces a
// resynchronising re-evaluation.
type RegisterDBRequest struct {
	Name     string       `json:"name"`
	Database Database     `json:"database,omitempty"`
	Delta    *DeltaChange `json:"delta,omitempty"`
}

// DeltaChange is a database change set on the wire: facts to insert
// and facts to delete, per relation (same shape as Database). Deletes
// of absent facts and inserts of present ones are no-ops, matching
// cqapprox.Delta semantics.
type DeltaChange struct {
	Insert Database `json:"insert,omitempty"`
	Delete Database `json:"delete,omitempty"`
}

// ToDelta converts the wire change set to a library Delta.
func (dc *DeltaChange) ToDelta() (*cqapprox.Delta, error) {
	d := cqapprox.NewDelta()
	for rel, tuples := range dc.Insert {
		if rel == "" {
			return nil, fmt.Errorf("delta: empty relation name")
		}
		for _, t := range tuples {
			d.Insert(rel, t...)
		}
	}
	for rel, tuples := range dc.Delete {
		if rel == "" {
			return nil, fmt.Errorf("delta: empty relation name")
		}
		for _, t := range tuples {
			d.Delete(rel, t...)
		}
	}
	return d, nil
}

// RegisterDBResponse summarizes a successful registration or delta
// update.
type RegisterDBResponse struct {
	Name      string `json:"name"`
	Version   uint64 `json:"version"`           // process-unique snapshot version
	Relations int    `json:"relations"`         // relation symbols registered
	Facts     int    `json:"facts"`             // total tuples registered
	Replaced  bool   `json:"replaced"`          // a previous registration of Name existed
	Applied   bool   `json:"applied,omitempty"` // the request was a delta update
}

// PeerDBRequest is the body of POST /v1/peer/db — the coordinator →
// peer half of a sharded registration. Database carries the peer's
// shard slice of the named database (replicated relations in full,
// partitioned relations filtered to the tuples this peer owns); Delta
// carries the peer's routed slice of a /v1/db delta instead. The peer
// stores the slice under an internal shard-scoped name, so the
// client-visible registry never collides with shard slices.
type PeerDBRequest struct {
	Name     string       `json:"name"`
	Database Database     `json:"database,omitempty"`
	Delta    *DeltaChange `json:"delta,omitempty"`
}

// PeerEvalRequest is the body of POST /v1/peer/eval — one leg of a
// scatter-gather evaluation. The embedded request addresses the
// coordinator's chosen approximation (always Query + Exact: the
// coordinator never forwards a class, so every shard evaluates the
// identical query regardless of local search defaults) and names the
// sharded database via DB; Mode selects what comes back.
type PeerEvalRequest struct {
	CountRequest
	// Mode is "eval" (materialised answers), "bool" (existence) or
	// "count" (the count knobs of the embedded CountRequest apply).
	Mode string `json:"mode"`
}

// PeerEvalResponse is the body of a successful POST /v1/peer/eval;
// which fields are meaningful follows the request's Mode.
type PeerEvalResponse struct {
	Answers [][]int `json:"answers,omitempty"` // mode "eval"
	Result  bool    `json:"result,omitempty"`  // mode "bool"

	// The mode "count" fields, mirroring CountResponse.
	Count     uint64  `json:"count,omitempty"`
	Estimate  float64 `json:"estimate,omitempty"`
	Estimated bool    `json:"estimated,omitempty"`
	Mode      string  `json:"mode,omitempty"`
	Samples   int     `json:"samples,omitempty"`
	Batches   int     `json:"batches,omitempty"`
}

// EvalRequest is the body of POST /v1/eval, /v1/eval/bool and
// /v1/stream. The prepared query is named either by Key (from a prior
// prepare) or inline by Query plus Class/Exact/Options as in
// PrepareRequest; Key wins when both are present. The database is
// either shipped inline in Database or named by DB (registered earlier
// via POST /v1/db — evaluation then runs against the registered
// snapshot's persistent indexes); the two are mutually exclusive.
type EvalRequest struct {
	Key      string   `json:"key,omitempty"`
	Query    string   `json:"query,omitempty"`
	Class    string   `json:"class,omitempty"`
	Exact    bool     `json:"exact,omitempty"`
	Options  *Options `json:"options,omitempty"`
	Database Database `json:"database,omitempty"`
	DB       string   `json:"db,omitempty"`

	// Parallelism asks the server to evaluate morsel-driven parallel on
	// up to this many workers. 0 inherits the server's configured
	// default (serial unless its engine opted into parallelism); 1
	// forces serial. A budget helps latency for single large
	// evaluations; under concurrent traffic serial is usually right.
	// Whatever the origin, the effective budget is clamped to the
	// server's cap (see StatsResponse.Server.MaxParallelism); answers
	// are identical at any setting.
	Parallelism int   `json:"parallelism,omitempty"`
	TimeoutMS   int64 `json:"timeout_ms,omitempty"`

	// Trace asks the server to attach an execution trace of this one
	// evaluation (per-node semijoin rows, phase wall times, morsel and
	// worker accounting) to the response. Off by default; untraced
	// requests pay nothing. Rejected by /v1/stream (a stream response
	// carries no trace block).
	Trace bool `json:"trace,omitempty"`

	// Order asks for ranked answers: sort by these head variables, most
	// significant first (head positions not named are appended in query
	// order to make the key total). Plans whose join forest admits the
	// key stream it with early termination; others evaluate, sort and
	// truncate (see /v1/explain's "ranked" line and the ranked_evals /
	// rank_fallbacks stats). Descending reverses the order. Limit keeps
	// only the first Limit answers — ordered when Order or Descending is
	// set, an arbitrary prefix otherwise (/v1/stream then closes after
	// Limit lines). All three apply to /v1/eval and /v1/stream only;
	// /v1/eval/bool and /v1/count reject them.
	Order      []string `json:"order,omitempty"`
	Descending bool     `json:"descending,omitempty"`
	Limit      int      `json:"limit,omitempty"`
}

// EvalResponse is the body of a successful POST /v1/eval.
type EvalResponse struct {
	Answers [][]int `json:"answers"`
	Count   int     `json:"count"`
	// Trace is the execution trace, present only when the request set
	// EvalRequest.Trace.
	Trace *cqapprox.ExecTrace `json:"trace,omitempty"`
}

// EvalBoolResponse is the body of a successful POST /v1/eval/bool.
type EvalBoolResponse struct {
	Result bool                `json:"result"`
	Trace  *cqapprox.ExecTrace `json:"trace,omitempty"`
}

// CountRequest is the body of POST /v1/count: an EvalRequest (same
// query/database addressing, admission and parallelism semantics as
// /v1/eval) plus the counting knobs. With Estimate false the count is
// exact; with Estimate true the server may sample, and Epsilon/Delta
// set the (1±ε, 1-δ) accuracy target (server defaults: 0.1, 0.05).
// Seed pins the estimator's randomness for reproducible runs (absent
// means the default seed); MaxSamples caps the sampling effort.
type CountRequest struct {
	EvalRequest
	Estimate   bool    `json:"estimate,omitempty"`
	Epsilon    float64 `json:"epsilon,omitempty"`
	Delta      float64 `json:"delta,omitempty"`
	Seed       *int64  `json:"seed,omitempty"`
	MaxSamples int     `json:"max_samples,omitempty"`
}

// CountResponse is the body of a successful POST /v1/count.
type CountResponse struct {
	// Count is the answer count: exact when Estimated is false, the
	// rounded estimate otherwise.
	Count uint64 `json:"count"`
	// Estimate is the raw (possibly fractional) estimate; equals
	// float64(Count) for exact results.
	Estimate float64 `json:"estimate"`
	// Estimated reports whether sampling produced the result.
	Estimated bool `json:"estimated"`
	// Mode names the counting path: "exact-dp", "exact-eval",
	// "exact-enum" or "estimate".
	Mode string `json:"mode"`
	// Samples and Batches report the estimator's effort (zero when
	// exact).
	Samples int `json:"samples,omitempty"`
	Batches int `json:"batches,omitempty"`
	// Epsilon and Delta echo the accuracy target of an estimate.
	Epsilon float64 `json:"epsilon,omitempty"`
	Delta   float64 `json:"delta,omitempty"`
	// Trace is the execution trace, present only when the request set
	// EvalRequest.Trace.
	Trace *cqapprox.ExecTrace `json:"trace,omitempty"`
}

// ExplainRequest is the body of POST /v1/explain. The prepared query
// is addressed exactly as in EvalRequest — by Key from a prior
// prepare, or inline by Query plus Class/Exact/Options (Key wins when
// both are present). Explaining an inline query prepares it (or hits
// the prepare cache) and then renders the cached plan; no database is
// involved.
type ExplainRequest struct {
	Key       string   `json:"key,omitempty"`
	Query     string   `json:"query,omitempty"`
	Class     string   `json:"class,omitempty"`
	Exact     bool     `json:"exact,omitempty"`
	Options   *Options `json:"options,omitempty"`
	TimeoutMS int64    `json:"timeout_ms,omitempty"`
}

// ExplainResponse is the body of a successful POST /v1/explain: the
// structured plan description plus its stable text rendering.
type ExplainResponse struct {
	Key     string                `json:"key"`
	Explain *cqapprox.PlanExplain `json:"explain"`
	Text    string                `json:"text"`
}

// SubscribeRequest is the body of POST /v1/subscribe: register a live
// query over a registered database and stream answer diffs as updates
// land. The prepared query is addressed exactly as in EvalRequest (Key
// from a prior prepare, or inline Query plus Class/Exact/Options); the
// database must be registered — DB names it, inline databases cannot
// be subscribed to (nothing would ever update them). The response is
// an NDJSON stream of DiffFrame lines: first an init frame carrying
// the full current answer set, then one frame per update batch. The
// stream ends when the client disconnects, the server drains, or a
// terminal frame with Error set is pushed (e.g. slow_consumer under
// the disconnect policy). TimeoutMS bounds only the setup phase
// (prepare + initial evaluation); the subscription itself is
// unbounded.
type SubscribeRequest struct {
	Key     string   `json:"key,omitempty"`
	Query   string   `json:"query,omitempty"`
	Class   string   `json:"class,omitempty"`
	Exact   bool     `json:"exact,omitempty"`
	Options *Options `json:"options,omitempty"`
	DB      string   `json:"db"`

	// Parallelism is the worker budget for the initial evaluation and
	// any fallback re-evaluations, clamped like EvalRequest.Parallelism.
	Parallelism int   `json:"parallelism,omitempty"`
	TimeoutMS   int64 `json:"timeout_ms,omitempty"`
}

// DiffFrame is one line of a /v1/subscribe NDJSON stream: the exact
// answer-set change of one update batch. Applying Removed then Added
// to the previous state yields the answer set at Version. Special
// frames:
//
//   - Init: the first frame; Added is the complete current answer set
//     and Removed is empty (the client's starting state).
//   - Resync: the subscriber fell behind (queue overflow under the
//     resync policy) and updates were dropped; Added is again the
//     complete answer set — replace local state instead of patching.
//   - Error: terminal; the server is about to close the stream (e.g.
//     code slow_consumer under the disconnect policy). No answer data.
//
// Fallback reports that the server could not propagate the batch
// incrementally and re-evaluated instead (the diff is still exact);
// Reason says why.
type DiffFrame struct {
	Version  uint64     `json:"version"`
	Added    [][]int    `json:"added,omitempty"`
	Removed  [][]int    `json:"removed,omitempty"`
	Init     bool       `json:"init,omitempty"`
	Resync   bool       `json:"resync,omitempty"`
	Fallback bool       `json:"fallback,omitempty"`
	Reason   string     `json:"reason,omitempty"`
	Error    *ErrorInfo `json:"error,omitempty"`
}

// SubscriptionStats are the live-query counters of GET /v1/stats.
type SubscriptionStats struct {
	Active            int64  `json:"active"`              // currently connected subscribers
	Subscriptions     uint64 `json:"subscriptions"`       // subscriptions ever accepted
	Notifications     uint64 `json:"notifications"`       // diff frames pushed (init, diff and resync)
	Resyncs           uint64 `json:"resyncs"`             // resync frames after queue overflow
	SlowConsumerDrops uint64 `json:"slow_consumer_drops"` // subscribers disconnected as slow consumers
}

// ClassifyResponse is the -json output of cqapprox classify (the
// Theorem 5.1 trichotomy); the service may grow a matching endpoint.
type ClassifyResponse struct {
	Query      string       `json:"query"`
	Kind       string       `json:"kind"`
	LoopFreeTW map[int]bool `json:"loop_free_tw"`
}

// CacheStats mirrors cqapprox.CacheStats on the wire. The index
// counters sum the indexed join runtime's activity over every cached
// plan (hash indexes built per evaluation, rows driven through index
// probes, evaluations run).
type CacheStats struct {
	Hits         uint64 `json:"hits"`
	Misses       uint64 `json:"misses"`
	Entries      int    `json:"entries"`
	IndexBuilds  uint64 `json:"index_builds"`
	IndexProbes  uint64 `json:"index_probes"`
	IndexedEvals uint64 `json:"indexed_evals"`
	// ParallelEvals counts the evaluations that ran with a parallel
	// worker budget (requests whose clamped parallelism exceeded one).
	ParallelEvals uint64 `json:"parallel_evals"`
	// RankedEvals counts ordered evaluations streamed through a
	// lex-connex visit program; RankFallbacks counts ordered
	// evaluations whose key was untractable and fell back to
	// eval+sort+truncate.
	RankedEvals   uint64 `json:"ranked_evals"`
	RankFallbacks uint64 `json:"rank_fallbacks"`
	// The counting subsystem's activity: counts answered exactly,
	// counts answered by the sampling estimator, and the total
	// median-of-means batches those estimates ran.
	ExactCounts     uint64 `json:"exact_counts"`
	EstimatedCounts uint64 `json:"estimated_counts"`
	SampleBatches   uint64 `json:"sample_batches"`
	// The incremental maintenance subsystem's activity: subscription
	// updates propagated delta-incrementally through a reduced forest,
	// and updates that fell back to a full re-evaluation (naive plan,
	// delta past the budget, full replacement, resync).
	IncrementalEvals uint64 `json:"incremental_evals"`
	IncrFallbacks    uint64 `json:"incr_fallbacks"`
}

// EndpointStats are the per-endpoint request counters of GET /v1/stats.
// The latency distribution fields come from a fixed-bucket histogram
// (see internal/server's metrics): Min/Max are exact, the quantiles are
// nearest-rank upper bucket bounds. All are omitted until the endpoint
// has served at least one request.
type EndpointStats struct {
	Requests       int64   `json:"requests"`
	Errors         int64   `json:"errors"`
	Rejected       int64   `json:"rejected"`
	InFlight       int64   `json:"in_flight"`
	LatencyTotalMS float64 `json:"latency_total_ms"`
	LatencyMinMS   float64 `json:"latency_min_ms,omitempty"`
	LatencyMaxMS   float64 `json:"latency_max_ms,omitempty"`
	LatencyP50MS   float64 `json:"latency_p50_ms,omitempty"`
	LatencyP95MS   float64 `json:"latency_p95_ms,omitempty"`
	LatencyP99MS   float64 `json:"latency_p99_ms,omitempty"`
}

// DBRegistryStats mirrors cqapprox.DBStats on the wire: the engine's
// database registry counters plus the snapshot index-cache activity
// aggregated over every currently registered database.
type DBRegistryStats struct {
	Entries       int    `json:"entries"`
	Registered    uint64 `json:"registered"`
	Updates       uint64 `json:"updates"`
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Evictions     uint64 `json:"evictions"`
	Facts         int    `json:"facts"`
	Views         int    `json:"views"`
	IndexesCached int    `json:"indexes_cached"`
	IndexBuilds   uint64 `json:"index_builds"`
	IndexHits     uint64 `json:"index_hits"`
}

// ServerLimits reports the server's effective concurrency
// configuration: the admission-control semaphore sizes (defaulted from
// the host's GOMAXPROCS when not set explicitly; 0 means unbounded)
// and the per-request parallelism cap EvalRequest.Parallelism is
// clamped to.
type ServerLimits struct {
	MaxInflightPrepare int `json:"max_inflight_prepare"`
	MaxInflightEval    int `json:"max_inflight_eval"`
	MaxParallelism     int `json:"max_parallelism"`
}

// ClusterStats is the cluster block of GET /v1/stats, present only on
// nodes running with a peer list. The scatter counters live on the
// coordinator receiving the client traffic; PeerEvals/PeerDBPushes
// count the peer side.
type ClusterStats struct {
	Nodes int `json:"nodes"` // cluster size (peer list length)
	Self  int `json:"self"`  // this node's index in the peer list

	// ShardedDBs counts registered databases with a recorded placement;
	// ReplicatedRelations / PartitionedRelations sum their per-relation
	// placement decisions.
	ShardedDBs           int `json:"sharded_dbs"`
	ReplicatedRelations  int `json:"replicated_relations"`
	PartitionedRelations int `json:"partitioned_relations"`

	// The routing trichotomy's counters: evaluations fanned out to the
	// shards, evaluations answered from the local full copy because no
	// partitioned relation was involved, and evaluations that had to
	// fall back to the local full copy (≥2 partitioned occurrences,
	// traced requests, non-summable counts).
	ScatterEvals     uint64 `json:"scatter_evals"`
	RoutedLocal      uint64 `json:"routed_local"`
	ScatterFallbacks uint64 `json:"scatter_fallbacks"`

	// CountSums counts /v1/count requests answered by summing per-shard
	// counts; DeltaForwards counts per-shard delta pushes of /v1/db
	// updates; PeerErrors counts failed peer calls.
	CountSums     uint64 `json:"count_sums"`
	DeltaForwards uint64 `json:"delta_forwards"`
	PeerErrors    uint64 `json:"peer_errors"`

	// The peer side: scatter legs served and shard slices / deltas
	// accepted on /v1/peer/eval and /v1/peer/db.
	PeerEvals    uint64 `json:"peer_evals"`
	PeerDBPushes uint64 `json:"peer_db_pushes"`

	// Fanout is the latency distribution of whole scatter-gather
	// fan-outs (slowest shard to answer, merge included).
	Fanout EndpointStats `json:"fanout"`
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	Cache         CacheStats               `json:"cache"`
	DBs           DBRegistryStats          `json:"dbs"`
	Server        ServerLimits             `json:"server"`
	Subscriptions SubscriptionStats        `json:"subscriptions"`
	Endpoints     map[string]EndpointStats `json:"endpoints"`
	// Cluster is present only on cluster-configured nodes, keeping
	// single-node stats payloads byte-identical to earlier releases.
	Cluster *ClusterStats `json:"cluster,omitempty"`
}

// The stable error codes of ErrorInfo.Code. Each maps to a fixed HTTP
// status; see DESIGN.md §Service layer.
const (
	CodeBadRequest     = "bad_request"      // 400: malformed JSON / missing or invalid fields
	CodeParseError     = "parse_error"      // 400: query syntax error (Line/Col set)
	CodeUnknownKey     = "unknown_key"      // 404: key not in the cache (evicted or foreign)
	CodeUnknownDB      = "unknown_db"       // 404: db name not in the registry (evicted or never registered)
	CodeNotInClass     = "not_in_class"     // 422: no query of the class is contained in Q
	CodeBudgetExceeded = "budget_exceeded"  // 422: query exceeds Options.MaxVars
	CodeOverloaded     = "overloaded"       // 429: admission control rejected the request
	CodeInternal       = "internal"         // 500: unexpected failure
	CodeCanceled       = "canceled"         // 504: deadline expired mid-search/evaluation
	CodePeer           = "peer_unavailable" // 502: a cluster peer failed mid scatter-gather or delta forward

	// CodeSlowConsumer is pushed as a terminal DiffFrame.Error on a
	// /v1/subscribe stream (the response status is long committed at
	// 200): the subscriber's queue overflowed under the disconnect
	// policy and the server is closing the stream. Re-subscribe to
	// resume with a fresh init frame.
	CodeSlowConsumer = "slow_consumer"
)

// ErrorInfo is the error payload common to all endpoints.
type ErrorInfo struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	Line    int    `json:"line,omitempty"` // parse errors only
	Col     int    `json:"col,omitempty"`  // parse errors only
}

// ErrorResponse wraps ErrorInfo as the body of every non-2xx response
// (and, on /v1/stream, as a terminal NDJSON object line).
type ErrorResponse struct {
	Error *ErrorInfo `json:"error"`
}

// keyEncoding keeps wire keys URL- and JSON-safe: the engine's raw
// cache keys contain NUL separators and arbitrary canonical-form bytes.
var keyEncoding = base64.RawURLEncoding

// EncodeKey converts an engine cache key to its opaque wire form.
func EncodeKey(raw string) string { return keyEncoding.EncodeToString([]byte(raw)) }

// DecodeKey reverses EncodeKey.
func DecodeKey(key string) (string, error) {
	raw, err := keyEncoding.DecodeString(key)
	if err != nil {
		return "", fmt.Errorf("malformed key: %w", err)
	}
	return string(raw), nil
}

// ClassNames lists the class names ParseClass accepts.
func ClassNames() []string {
	return []string{"TW1", "TW2", "TW3", "AC", "HTW1", "HTW2", "GHTW1", "GHTW2"}
}

// ParseClass resolves a wire class name (case-insensitive) to the
// tractable class it denotes.
func ParseClass(name string) (cqapprox.Class, error) {
	switch strings.ToUpper(name) {
	case "TW1":
		return cqapprox.TW(1), nil
	case "TW2":
		return cqapprox.TW(2), nil
	case "TW3":
		return cqapprox.TW(3), nil
	case "AC":
		return cqapprox.AC(), nil
	case "HTW1":
		return cqapprox.HTW(1), nil
	case "HTW2":
		return cqapprox.HTW(2), nil
	case "GHTW1":
		return cqapprox.GHTW(1), nil
	case "GHTW2":
		return cqapprox.GHTW(2), nil
	default:
		return nil, fmt.Errorf("unknown class %q (want %s)",
			name, strings.Join(ClassNames(), ", "))
	}
}
