package cqapprox

import (
	"context"
	"fmt"
	"iter"

	"cqapprox/internal/eval"
	"cqapprox/internal/obs"
)

// PreparedQuery is the result of Engine.Prepare: a query whose static,
// NP-hard work (minimization, approximation search, plan selection) is
// already done. It is immutable and safe for concurrent use — a single
// PreparedQuery can serve Eval calls from many goroutines over many
// databases.
type PreparedQuery struct {
	src       *Query   // original query, as given
	min       *Query   // its minimization (the original itself for over-budget exact prepares)
	class     Class    // nil for PrepareExact
	opt       Options  // search options used
	approxes  []*Query // all minimized C-approximations; nil for exact
	chosen    *Query   // the query the plan evaluates
	plan      *eval.Plan
	par       int         // evaluation worker budget (≤1 = serial); see Parallel
	inspected int         // candidates inspected by the search (0 for exact)
	fromCache bool        // true when Prepare served this from the cache (see CacheHit)
	prep      []obs.Phase // prepare-phase wall times recorded by build (shared, immutable)
}

// Parallel returns a view of the prepared query whose evaluations run
// morsel-driven parallel on up to n workers (n ≤ 1 restores serial
// evaluation). The underlying plan and its statistics stay shared —
// only the worker budget differs — so the view is as cheap, immutable
// and goroutine-safe as the original, and answers are byte-identical
// to serial evaluation. The budget is inherited by Bind; naive
// (cyclic) plans ignore it.
//
// The engine-wide default budget (WithParallelism) applies when
// Parallel is never called.
//
// Deprecated: pass WithEvalParallelism(n) to the call instead — the
// per-call option composes with the rest of the EvalOption surface and
// needs no extra view value. Parallel remains as a thin wrapper for
// callers that want a reusable parallel view.
func (p *PreparedQuery) Parallel(n int) *PreparedQuery {
	if n < 1 {
		n = 1
	}
	if n == p.parallelism() {
		return p
	}
	cp := *p
	cp.par = n
	return &cp
}

// Parallelism reports the effective evaluation worker budget: 1 for
// serial (the default), or whatever Parallel / the engine's
// WithParallelism set.
func (p *PreparedQuery) Parallelism() int {
	if p.par < 1 {
		return 1
	}
	return p.par
}

// parallelism is the internal alias of Parallelism.
func (p *PreparedQuery) parallelism() int { return p.Parallelism() }

// Query returns a copy of the original query this PreparedQuery was
// requested for. On cache hits the engine rebinds this to the caller's
// own query (see forCaller), so it is always the query you passed in,
// not another caller's alpha-variant.
func (p *PreparedQuery) Query() *Query { return p.src.Clone() }

// forCaller returns a shallow copy of p with the caller's own query
// identity: src is rebound to q and the head predicate names of the
// minimized query and the approximations are renamed after q, so cache
// hits never leak the first preparer's query name. Variable names are
// already canonical (build renames them), so beyond the head name
// every caller sees identical renderings. The plan is shared untouched
// and the inspected counter zeroed: this caller's Prepare ran no
// search.
func (p *PreparedQuery) forCaller(q *Query) *PreparedQuery {
	cp := *p
	cp.src = q.Clone()
	cp.inspected = 0
	cp.fromCache = true
	if cp.min.Name != q.Name {
		m := cp.min.Clone()
		m.Name = q.Name
		cp.min = m
	}
	if len(cp.approxes) > 0 {
		name := q.Name + "_approx"
		if cp.approxes[0].Name != name {
			renamed := make([]*Query, len(cp.approxes))
			for i, a := range cp.approxes {
				r := a.Clone()
				r.Name = name
				renamed[i] = r
			}
			cp.approxes = renamed
		}
		cp.chosen = cp.approxes[0]
	} else {
		cp.chosen = cp.min
	}
	return &cp
}

// Minimized returns a copy of the minimized original query, with
// canonically renamed variables. One exception: an over-budget
// PrepareExact (more than Options.MaxVars variables) skips
// minimization to avoid the exponential core computation, and
// Minimized then returns the original unminimized (still canonically
// renamed).
func (p *PreparedQuery) Minimized() *Query { return p.min.Clone() }

// Class returns the target class, or nil for PrepareExact.
func (p *PreparedQuery) Class() Class { return p.class }

// Approx returns a copy of the query the plan evaluates: the chosen
// C-approximation, or the minimized original for PrepareExact.
func (p *PreparedQuery) Approx() *Query { return p.chosen.Clone() }

// Approximations returns copies of all minimized C-approximations the
// search found (the paper's C-APPR_min(Q)), in deterministic order; the
// first is the one Eval uses. Nil for PrepareExact.
func (p *PreparedQuery) Approximations() []*Query {
	if p.approxes == nil {
		return nil
	}
	out := make([]*Query, len(p.approxes))
	for i, a := range p.approxes {
		out[i] = a.Clone()
	}
	return out
}

// CandidatesInspected reports how many in-class candidate tableaux the
// approximation search examined (0 on PrepareExact and, by design, on
// every cache hit — the point of preparing once).
func (p *PreparedQuery) CandidatesInspected() int { return p.inspected }

// CacheHit reports whether the Prepare that returned this value was
// served from the engine's cache (including being handed an in-flight
// leader's result) instead of running the pipeline itself. It mirrors
// exactly the hit CacheStats recorded for that Prepare, even under
// concurrent preparation of the same key.
func (p *PreparedQuery) CacheHit() bool { return p.fromCache }

// PlanMode names the evaluation strategy the plan selected
// ("yannakakis" or "naive").
func (p *PreparedQuery) PlanMode() string { return p.plan.Mode().String() }

// IndexStats returns the cumulative indexed-runtime counters of this
// prepared query's plan: hash indexes built over databases, rows
// driven through index probes, and evaluations run. The plan is shared
// across every cache hit of the same key, so the counters aggregate
// all callers — the per-plan view of what Engine.CacheStats sums over
// the whole cache.
func (p *PreparedQuery) IndexStats() IndexStats { return p.plan.IndexStats() }

// rankSpec resolves the call's ordering options against the query's
// head: each WithOrder name must be a distinct head variable of the
// original query (repeated head variables resolve to their first
// position — later repeats compare equal anyway). The error wraps
// ErrBadOrder.
func (p *PreparedQuery) rankSpec(cfg *optConfig) (eval.RankSpec, error) {
	spec := eval.RankSpec{Desc: cfg.desc, Limit: cfg.limit}
	if len(cfg.order) == 0 {
		return spec, nil
	}
	head := p.src.Head
	seen := map[string]bool{}
	for _, name := range cfg.order {
		if seen[name] {
			return spec, fmt.Errorf("%w: %q named twice", ErrBadOrder, name)
		}
		seen[name] = true
		pos := -1
		for i, h := range head {
			if h == name {
				pos = i
				break
			}
		}
		if pos == -1 {
			return spec, fmt.Errorf("%w: %q is not a head variable of %s", ErrBadOrder, name, p.src.Name)
		}
		spec.Order = append(spec.Order, pos)
	}
	return spec, nil
}

// evalOn dispatches one materialising evaluation: ranked (ordered
// and/or limited — limit-only uses the head's natural ascending key,
// so early termination still applies) or the plain full evaluation.
func (p *PreparedQuery) evalOn(ctx context.Context, src eval.Source, opts []EvalOption) (Answers, error) {
	cfg := optConfigOf(opts)
	par := cfg.parallelism(p.parallelism())
	if !cfg.ranked() {
		return p.plan.EvalOn(ctx, src, par)
	}
	spec, err := p.rankSpec(&cfg)
	if err != nil {
		return nil, err
	}
	return p.plan.EvalRankedOn(ctx, src, par, spec)
}

// answersOn dispatches one streaming evaluation: explicitly ordered
// streams go through the ranked pipeline; limit-only streams keep the
// plain enumeration's first-answer latency and simply stop after k
// answers (an unordered prefix).
func (p *PreparedQuery) answersOn(ctx context.Context, src eval.Source, opts []EvalOption) (iter.Seq[Tuple], func() error) {
	cfg := optConfigOf(opts)
	par := cfg.parallelism(p.parallelism())
	if cfg.ordered() {
		spec, err := p.rankSpec(&cfg)
		if err != nil {
			return errSeq(err)
		}
		return p.plan.StreamRankedOn(ctx, src, par, spec)
	}
	seq, errf := p.plan.StreamOnErr(ctx, src, par)
	if cfg.limit > 0 {
		seq = truncateSeq(seq, cfg.limit)
	}
	return seq, errf
}

// errSeq is the empty stream carrying a terminal error (option
// validation failures on the streaming entry points).
func errSeq(err error) (iter.Seq[Tuple], func() error) {
	return func(func(Tuple) bool) {}, func() error { return err }
}

// truncateSeq stops a stream after the first k tuples.
func truncateSeq(seq iter.Seq[Tuple], k int) iter.Seq[Tuple] {
	return func(yield func(Tuple) bool) {
		n := 0
		for t := range seq {
			if !yield(t) {
				return
			}
			if n++; n >= k {
				return
			}
		}
	}
}

// Eval evaluates the prepared (approximated) query on db, returning
// the deduplicated answer set. Only per-database work happens here:
// O(|D|·|Q'|) plus output cost for acyclic plans. Options select the
// per-call behavior: WithOrder/WithDescending sort the answers under
// the requested key (plans whose join forest admits the key stream it
// directly out of the reduced forest; others evaluate, sort and
// truncate — Explain reports the classification), WithLimit(k) returns
// only the first k answers of the order with early termination where
// the plan allows, and WithEvalParallelism overrides the worker budget
// for this call. Without options the full answer set arrives in the
// default sorted order.
func (p *PreparedQuery) Eval(ctx context.Context, db *Structure, opts ...EvalOption) (Answers, error) {
	return p.evalOn(ctx, eval.NewSource(db), opts)
}

// EvalBool reports whether the prepared query has at least one answer
// on db. For acyclic plans this is a single semijoin pass, O(|D|·|Q'|).
// WithEvalParallelism applies; ordering options are meaningless for a
// Boolean result and are ignored.
func (p *PreparedQuery) EvalBool(ctx context.Context, db *Structure, opts ...EvalOption) (bool, error) {
	cfg := optConfigOf(opts)
	return p.plan.EvalBoolOn(ctx, eval.NewSource(db), cfg.parallelism(p.parallelism()))
}

// Answers streams the distinct answers of the prepared query on db one
// at a time without materialising the full result set — suitable for
// very large outputs:
//
//	for t := range p.Answers(ctx, db) {
//		process(t) // break any time
//	}
//
// Acyclic plans first run the Yannakakis semijoin reduction (O(|D|·|Q'|))
// so the enumeration only touches tuples that can participate in an
// answer. Plain streams arrive in discovery order; WithOrder /
// WithDescending switch to the ranked pipeline and deliver the key
// order, and WithLimit(k) ends the stream after k answers (ordered
// when an order was requested, any-k otherwise). Iteration ends early
// on ctx cancellation; every delivered tuple is a correct answer
// regardless. To distinguish a cancelled (truncated) stream from an
// exhausted one — or to see an order-validation error — use
// AnswersErr.
func (p *PreparedQuery) Answers(ctx context.Context, db *Structure, opts ...EvalOption) iter.Seq[Tuple] {
	seq, _ := p.answersOn(ctx, eval.NewSource(db), opts)
	return seq
}

// AnswersErr is Answers plus a terminal-error accessor: call the
// returned function after the loop — nil means the enumeration ran to
// completion (or the consumer broke), a non-nil ErrCanceled-wrapped
// error means cancellation truncated it (and an ErrBadOrder-wrapped
// error reports invalid WithOrder variables, before any answer):
//
//	seq, errf := p.AnswersErr(ctx, db)
//	for t := range seq { process(t) }
//	if err := errf(); err != nil { /* truncated */ }
func (p *PreparedQuery) AnswersErr(ctx context.Context, db *Structure, opts ...EvalOption) (iter.Seq[Tuple], func() error) {
	return p.answersOn(ctx, eval.NewSource(db), opts)
}

// Bind pairs the prepared query with a database snapshot, yielding the
// evaluation surface over the snapshot's persistent shared indexes:
//
//	d, _, _ := engine.RegisterDB("social", structure) // index once
//	b := p.Bind(d)
//	ans, err := b.Eval(ctx)     // probe-only once the cache is warm
//	ok, err := b.EvalBool(ctx)
//	for t := range b.Answers(ctx) { … }
//
// Where Eval(ctx, *Structure) re-derives hash indexes per call, a
// bound evaluation probes indexes owned by the snapshot — built on
// first use, then reused by every prepared query and every call that
// binds the same snapshot. Bind itself does no work; a BoundQuery is
// immutable and safe for concurrent use.
func (p *PreparedQuery) Bind(db *Database) *BoundQuery {
	return &BoundQuery{p: p, db: db}
}

// BoundQuery is a PreparedQuery bound to a Database snapshot: the
// fully static pairing of a compiled plan with indexed data. Both
// halves are immutable, so a BoundQuery may serve concurrent
// evaluations from many goroutines. Evaluations run through the same
// unified executor as the unbound forms — the only difference is the
// storage backend: views and hash indexes come from the snapshot's
// persistent shared cache instead of being derived per call.
type BoundQuery struct {
	p  *PreparedQuery
	db *Database
}

// Prepared returns the prepared query half of the binding.
func (b *BoundQuery) Prepared() *PreparedQuery { return b.p }

// Database returns the snapshot half of the binding.
func (b *BoundQuery) Database() *Database { return b.db }

// Parallel returns a view of the bound query evaluating on up to n
// workers; see PreparedQuery.Parallel. The binding inherits its
// prepared query's budget until overridden here.
//
// Deprecated: pass WithEvalParallelism(n) to the call instead; see
// PreparedQuery.Parallel.
func (b *BoundQuery) Parallel(n int) *BoundQuery {
	p := b.p.Parallel(n)
	if p == b.p {
		return b
	}
	return &BoundQuery{p: p, db: b.db}
}

// source returns the snapshot-backed storage backend of the binding.
func (b *BoundQuery) source() eval.Source {
	return eval.NewSnapshotSource(b.db.snap)
}

// Eval evaluates the bound query, returning the deduplicated answer
// set — identical to p.Eval against the equivalent structure, minus
// the per-call index builds. The same EvalOption surface applies; see
// PreparedQuery.Eval.
func (b *BoundQuery) Eval(ctx context.Context, opts ...EvalOption) (Answers, error) {
	return b.p.evalOn(ctx, b.source(), opts)
}

// EvalBool reports whether the bound query has at least one answer
// (a single probe-only semijoin pass for acyclic plans).
// WithEvalParallelism applies; ordering options are ignored.
func (b *BoundQuery) EvalBool(ctx context.Context, opts ...EvalOption) (bool, error) {
	cfg := optConfigOf(opts)
	return b.p.plan.EvalBoolOn(ctx, b.source(), cfg.parallelism(b.p.parallelism()))
}

// Answers streams the distinct answers of the bound query; see
// PreparedQuery.Answers for the contract and option behavior.
func (b *BoundQuery) Answers(ctx context.Context, opts ...EvalOption) iter.Seq[Tuple] {
	seq, _ := b.p.answersOn(ctx, b.source(), opts)
	return seq
}

// AnswersErr is Answers plus the terminal-error accessor; see
// PreparedQuery.AnswersErr.
func (b *BoundQuery) AnswersErr(ctx context.Context, opts ...EvalOption) (iter.Seq[Tuple], func() error) {
	return b.p.answersOn(ctx, b.source(), opts)
}
